# Convenience targets; everything is plain dune underneath.

.PHONY: all build test check bench examples clean doc

all: build

build:
	dune build @all

test:
	dune runtest

# Everything CI runs: build, the full test suite, and a differential fuzz
# smoke (100 seeds through oracle + SQL + Datalog + native 2PL, with the
# serializability battery on every schedule).
check:
	dune build @all
	dune runtest
	dune exec bin/dsched.exe -- check --fuzz 100

# Quick-scale run of every paper table/figure + ablations.
bench:
	dune exec bench/main.exe

# Paper-scale Figure 2 (240 s windows, 3 runs per point).
bench-paper:
	dune exec bench/main.exe -- figure2 --window 240 --runs 3

examples:
	dune exec examples/quickstart.exe
	dune exec examples/webshop.exe
	dune exec examples/sla_tiers.exe
	dune exec examples/relaxed_consistency.exe
	dune exec examples/recovery.exe

clean:
	dune clean
