(* Deterministic simulation testing harness (lib/dst): scenario codec and
   generator determinism, the swarm sweep with the full invariant battery,
   the test-only corruption injections, the delta-debugging shrinker, and
   the committed minimal repro as a regression. *)

open Ds_dst

let scenario_eq = Alcotest.testable Scenario.pp Scenario.equal

(* --- scenario codec ------------------------------------------------ *)

let scenario_roundtrip =
  QCheck2.Test.make ~name:"scenario JSON roundtrip"
    ~count:(Helpers.Config.qcheck_count 200)
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let s = Gen.of_seed seed in
      match Scenario.of_json (Scenario.to_json s) with
      | Ok s' -> Scenario.equal s s'
      | Error m -> QCheck2.Test.fail_reportf "decode failed: %s" m)

let test_inject_roundtrip () =
  (* Injections only enter via hand-written scenarios; their codec still
     has to roundtrip for replay files to work. *)
  List.iter
    (fun inject ->
      let s = { (Gen.of_seed 7) with Scenario.inject = Some inject } in
      match Scenario.of_json (Scenario.to_json s) with
      | Ok s' -> Alcotest.check scenario_eq "roundtrip with inject" s s'
      | Error m -> Alcotest.failf "decode failed: %s" m)
    [ Scenario.Dup_delivery 3; Scenario.Drop_rte 0; Scenario.Swap_rte 12 ]

let test_of_json_rejects_invalid () =
  let cases =
    [
      ("not an object", Ds_obs.Json.Str "hello");
      ( "unknown protocol",
        Scenario.to_json { (Gen.of_seed 1) with Scenario.protocol = "fcfs" } );
      ( "zero clients",
        Scenario.to_json { (Gen.of_seed 1) with Scenario.clients = 0 } );
    ]
  in
  List.iter
    (fun (what, json) ->
      match Scenario.of_json json with
      | Ok _ -> Alcotest.failf "%s was accepted" what
      | Error _ -> ())
    cases

(* --- generator ------------------------------------------------------ *)

let test_generator_deterministic () =
  List.iter
    (fun i ->
      let seed = Gen.scenario_seed ~base:99 i in
      Alcotest.check scenario_eq
        (Printf.sprintf "of_seed %d is stable" seed)
        (Gen.of_seed seed) (Gen.of_seed seed);
      Alcotest.(check int)
        "scenario_seed is a pure function" seed
        (Gen.scenario_seed ~base:99 i))
    [ 0; 1; 2; 17; 1000 ]

let test_generator_valid_and_diverse () =
  let scenarios =
    List.init 100 (fun i -> Gen.of_seed (Gen.scenario_seed ~base:5 i))
  in
  List.iter
    (fun s ->
      match Scenario.validate s with
      | Ok () -> ()
      | Error m -> Alcotest.failf "generated invalid scenario: %s" m)
    scenarios;
  let distinct f = List.sort_uniq compare (List.map f scenarios) in
  (* The sweep has to actually cover the cross-product dimensions. *)
  Alcotest.(check bool) "several protocols" true
    (List.length (distinct (fun s -> s.Scenario.protocol)) >= 3);
  Alcotest.(check bool) "several worker counts" true
    (List.length (distinct (fun s -> s.Scenario.workers)) >= 3);
  Alcotest.(check bool) "faulty and fault-free plans" true
    (List.length
       (distinct (fun s -> Ds_core.Faults.is_none s.Scenario.faults))
    = 2);
  Alcotest.(check bool) "checkpointing on and off" true
    (List.length (distinct (fun s -> s.Scenario.checkpoint = None)) = 2);
  Alcotest.(check bool) "bounded and unbounded queues" true
    (List.length (distinct (fun s -> s.Scenario.queue_cap = None)) = 2);
  Alcotest.(check bool) "replicated and unreplicated runs" true
    (List.length (distinct (fun s -> s.Scenario.repl = None)) = 2);
  List.iter
    (fun s ->
      Alcotest.(check bool) "generator never injects" true
        (s.Scenario.inject = None);
      match s.Scenario.repl with
      | None -> ()
      | Some _ ->
        Alcotest.(check int) "replication only at one shard" 1
          s.Scenario.shards;
        Alcotest.(check bool) "replication excludes the crash fault" true
          (s.Scenario.faults.Ds_core.Faults.crash_at_cycle = None))
    scenarios

(* --- swarm sweep ---------------------------------------------------- *)

let test_swarm_invariants_hold () =
  (* The PR-smoke sweep: DS_SWARM_N scenarios (default 25), every invariant
     on every scenario, zero failures expected against the real stack. *)
  let n = Helpers.Config.swarm_n () in
  let report = Swarm.run ~shrink:false ~n ~seed:11 () in
  let failed = Swarm.failed report in
  if failed <> [] then begin
    let r = List.hd failed in
    let name, detail =
      List.hd (Runner.failures r.Swarm.outcome)
    in
    Alcotest.failf "%d/%d scenarios failed; first: %s [%s: %s]"
      (List.length failed) n
      (Scenario.to_string r.Swarm.outcome.Runner.scenario)
      name detail
  end;
  List.iter
    (fun r ->
      Alcotest.(check int) "complete battery on every scenario"
        (List.length Invariant.names)
        (List.length r.Swarm.outcome.Runner.invariants))
    report.Swarm.results

let test_swarm_report_deterministic () =
  let render () =
    Ds_obs.Json.to_string
      (Swarm.report_json (Swarm.run ~shrink:false ~n:8 ~seed:3 ()))
  in
  Alcotest.(check string) "same n+seed => byte-identical report" (render ())
    (render ())

let test_replay_bit_identical () =
  (* A reported scenario seed is the repro token: replaying it must
     reproduce the same counters and verdicts exactly. *)
  let seed = Gen.scenario_seed ~base:11 4 in
  let render () =
    Ds_obs.Json.to_string
      (Swarm.result_json
         (Swarm.replay ~shrink:false ~scenario_seed:seed (Gen.of_seed seed)))
  in
  Alcotest.(check string) "replay is bit-identical" (render ()) (render ())

(* --- injections ----------------------------------------------------- *)

(* Fully explicit known-bad scenario (fault-free, no crash) so every
   injected corruption lands inside the compared schedule window. *)
let base_bad =
  {
    Scenario.seed = 12345;
    clients = 8;
    duration = 1.0;
    n_objects = 300;
    stmts_per_txn = 2;
    access = Scenario.Uniform;
    sla_mix = false;
    protocol = "ss2pl-sql";
    workers = 2;
    shards = 1;
    faults = Ds_core.Faults.none;
    checkpoint = None;
    queue_cap = None;
    hedging = false;
    inject = Some (Scenario.Dup_delivery 17);
    repl = None;
  }

let test_inject_dup_delivery_fails () =
  let outcome = Runner.run base_bad in
  let failed = List.map fst (Runner.failures outcome) in
  Alcotest.(check bool)
    (Printf.sprintf "conflict-equivalence among %s"
       (String.concat "," failed))
    true
    (List.mem "conflict-equivalence" failed)

let test_inject_drop_rte_fails () =
  let outcome =
    Runner.run { base_bad with Scenario.inject = Some (Scenario.Drop_rte 5) }
  in
  (* The merged order then delivers a request the rte log never admitted. *)
  Alcotest.(check bool) "dropping an rte entry trips the battery" true
    (Runner.failures outcome <> [])

let test_inject_swap_rte_fails () =
  (* A contended workload guarantees adjacent conflicting rte pairs for the
     swap to target. *)
  let outcome =
    Runner.run
      {
        base_bad with
        Scenario.n_objects = 20;
        inject = Some (Scenario.Swap_rte 9);
      }
  in
  Alcotest.(check bool) "swapping conflicting rte entries trips the battery"
    true
    (Runner.failures outcome <> [])

(* --- sharded scenarios ---------------------------------------------- *)

let test_sharded_scenario_battery () =
  (* A sharded scenario with a mid-run crash exercises the whole DST path:
     segment-directory journalling, per-lane recovery, the stamp-merged rte
     and the cross-shard equivalence clause. *)
  let s =
    {
      base_bad with
      Scenario.clients = 12;
      shards = 4;
      inject = None;
      faults =
        { Ds_core.Faults.none with Ds_core.Faults.crash_at_cycle = Some 10 };
    }
  in
  let outcome = Runner.run s in
  Alcotest.(check bool) "crashed" true
    (outcome.Runner.stats.Ds_core.Middleware.crashes = 1);
  Alcotest.(check int) "ran sharded" 4
    outcome.Runner.stats.Ds_core.Middleware.shards;
  match Runner.failures outcome with
  | [] -> ()
  | fs ->
    Alcotest.failf "sharded scenario failed the battery: %s"
      (String.concat "; " (List.map (fun (n, d) -> n ^ ": " ^ d) fs))

let test_shrinker_single_shard () =
  (* The injected failure survives dropping to one shard, so the ladder's
     single-shard rung must take it there. *)
  let start = { base_bad with Scenario.shards = 2 } in
  let outcome = Runner.run start in
  let failed = List.map fst (Runner.failures outcome) in
  Alcotest.(check bool) "sharded starting scenario fails" true (failed <> []);
  let r = Shrink.shrink start ~failed in
  Alcotest.(check int) "collapsed to one shard" 1 r.Shrink.shrunk.Scenario.shards

(* --- replicated scenarios ------------------------------------------- *)

(* Partition-then-promote: sync replication over a partitioned link, primary
   killed mid-run. The full battery — including the failover durability
   audit — must hold against the real stack. *)
let repl_partition_scenario =
  {
    base_bad with
    Scenario.duration = 2.0;
    inject = None;
    checkpoint = Some 10;
    faults =
      { Ds_core.Faults.none with Ds_core.Faults.pcrash_at_cycle = Some 25 };
    repl =
      Some
        {
          Scenario.repl_sync = true;
          repl_link =
            {
              Ds_replica.Link.none with
              Ds_replica.Link.drop_rate = 0.02;
              partition_at = Some 0.3;
              partition_for = 0.5;
            };
        };
  }

let test_repl_scenario_battery () =
  let outcome = Runner.run repl_partition_scenario in
  Alcotest.(check int) "failed over" 1
    outcome.Runner.stats.Ds_core.Middleware.failovers;
  Alcotest.(check int) "promoted to epoch 1" 1
    outcome.Runner.stats.Ds_core.Middleware.repl_epoch;
  match Runner.failures outcome with
  | [] -> ()
  | fs ->
    Alcotest.failf "replicated scenario failed the battery: %s"
      (String.concat "; " (List.map (fun (n, d) -> n ^ ": " ^ d) fs))

let test_repl_codec_roundtrip () =
  match Scenario.of_json (Scenario.to_json repl_partition_scenario) with
  | Ok s' ->
    Alcotest.check scenario_eq "repl dimension roundtrips"
      repl_partition_scenario s'
  | Error m -> Alcotest.failf "decode failed: %s" m

let test_shrinker_strips_replication () =
  (* The acceptance demo for the repl rungs: a seeded partition-then-promote
     failure (injected duplicate delivery, so the bug survives every
     transformation) must shrink through drop-pcrash, clean-repl-link and
     drop-repl down to an unreplicated minimal repro. *)
  let start =
    {
      repl_partition_scenario with
      Scenario.seed = 4242;
      inject = Some (Scenario.Dup_delivery 17);
    }
  in
  let outcome = Runner.run start in
  let failed = List.map fst (Runner.failures outcome) in
  Alcotest.(check bool) "replicated starting scenario fails" true (failed <> []);
  let r = Shrink.shrink start ~failed in
  Alcotest.(check bool) "pcrash dropped" true
    (r.Shrink.shrunk.Scenario.faults.Ds_core.Faults.pcrash_at_cycle = None);
  Alcotest.(check bool) "replication dropped" true
    (r.Shrink.shrunk.Scenario.repl = None)

(* --- shrinker ------------------------------------------------------- *)

let test_shrinker_minimizes () =
  (* The acceptance demo: a seeded known-bad scenario (injected duplicate
     delivery) must shrink to a minimal configuration while preserving the
     failure. *)
  let outcome = Runner.run base_bad in
  let failed = List.map fst (Runner.failures outcome) in
  Alcotest.(check bool) "starting scenario fails" true (failed <> []);
  let r = Shrink.shrink base_bad ~failed in
  let s = r.Shrink.shrunk in
  Alcotest.(check bool) "shrunk scenario still fails" true
    (List.exists
       (fun (name, _) -> List.mem name failed)
       (Runner.failures r.Shrink.outcome));
  Alcotest.(check int) "collapsed to one client" 1 s.Scenario.clients;
  Alcotest.(check int) "collapsed to one worker" 1 s.Scenario.workers;
  Alcotest.(check int) "collapsed to one stmt per txn" 1 s.Scenario.stmts_per_txn;
  Alcotest.(check bool) "fault plan emptied" true
    (Ds_core.Faults.is_none s.Scenario.faults);
  Alcotest.(check bool) "duration halved to the floor" true
    (s.Scenario.duration <= 0.5);
  Alcotest.(check bool) "repro is a handful of transactions" true
    (r.Shrink.outcome.Runner.stats.Ds_core.Middleware.committed_txns <= 20);
  Alcotest.(check bool) "search bounded" true (r.Shrink.runs <= 120)

let test_shrinker_rejects_passing_scenario () =
  match Shrink.shrink (Gen.of_seed 42) ~failed:[ "serializability" ] with
  | _ -> Alcotest.fail "shrinking a passing scenario should raise"
  | exception Invalid_argument _ -> ()

(* --- committed minimal repro ---------------------------------------- *)

let repro_path = "data/shrunk_dup_delivery.json"

let repl_repro_path = "data/shrunk_repl_partition.json"

let test_committed_repl_repro_matches () =
  (* The shrinker's output on the seeded partition-then-promote failure is
     committed as a file; shrinking the same start scenario must land on it
     exactly (the search is deterministic), and it must still fail. *)
  let text = In_channel.with_open_text repl_repro_path In_channel.input_all in
  match Scenario.of_json (Ds_obs.Json.of_string text) with
  | Error m -> Alcotest.failf "%s did not decode: %s" repl_repro_path m
  | Ok committed ->
    Alcotest.(check bool) "repro dropped the replication dimension" true
      (committed.Scenario.repl = None
      && committed.Scenario.faults.Ds_core.Faults.pcrash_at_cycle = None);
    Alcotest.(check int) "repro is minimal: one client" 1
      committed.Scenario.clients;
    let start =
      {
        repl_partition_scenario with
        Scenario.seed = 4242;
        inject = Some (Scenario.Dup_delivery 17);
      }
    in
    let outcome = Runner.run start in
    let failed = List.map fst (Runner.failures outcome) in
    let r = Shrink.shrink start ~failed in
    Alcotest.check scenario_eq "shrink reproduces the committed repro"
      committed r.Shrink.shrunk;
    let replayed = Runner.run committed in
    Alcotest.(check (list string))
      "committed repro fails conflict-equivalence and nothing else"
      [ "conflict-equivalence" ]
      (List.map fst (Runner.failures replayed))

let test_committed_repro_still_fails () =
  (* Regression: the shrunk repro emitted by the shrinker (committed as a
     file, same format 'dsched swarm --replay FILE' reads) keeps failing
     exactly the invariant it was minimized for. *)
  let text = In_channel.with_open_text repro_path In_channel.input_all in
  match Scenario.of_json (Ds_obs.Json.of_string text) with
  | Error m -> Alcotest.failf "%s did not decode: %s" repro_path m
  | Ok scenario ->
    Alcotest.(check bool) "repro is minimal: one client" true
      (scenario.Scenario.clients = 1);
    let outcome = Runner.run scenario in
    let failed = List.map fst (Runner.failures outcome) in
    Alcotest.(check (list string))
      "fails conflict-equivalence and nothing else"
      [ "conflict-equivalence" ] failed

let tests =
  [
    QCheck_alcotest.to_alcotest scenario_roundtrip;
    Alcotest.test_case "inject codec roundtrip" `Quick test_inject_roundtrip;
    Alcotest.test_case "of_json rejects invalid scenarios" `Quick
      test_of_json_rejects_invalid;
    Alcotest.test_case "generator is deterministic" `Quick
      test_generator_deterministic;
    Alcotest.test_case "generator covers the cross-product" `Quick
      test_generator_valid_and_diverse;
    Alcotest.test_case "swarm: all invariants hold" `Slow
      test_swarm_invariants_hold;
    Alcotest.test_case "swarm: report deterministic" `Quick
      test_swarm_report_deterministic;
    Alcotest.test_case "swarm: replay bit-identical" `Quick
      test_replay_bit_identical;
    Alcotest.test_case "inject: duplicate delivery caught" `Quick
      test_inject_dup_delivery_fails;
    Alcotest.test_case "inject: dropped rte entry caught" `Quick
      test_inject_drop_rte_fails;
    Alcotest.test_case "inject: swapped rte entries caught" `Quick
      test_inject_swap_rte_fails;
    Alcotest.test_case "sharded scenario passes the battery" `Quick
      test_sharded_scenario_battery;
    Alcotest.test_case "replicated scenario passes the battery" `Quick
      test_repl_scenario_battery;
    Alcotest.test_case "repl dimension codec roundtrip" `Quick
      test_repl_codec_roundtrip;
    Alcotest.test_case "shrinker strips the replication dimension" `Slow
      test_shrinker_strips_replication;
    Alcotest.test_case "committed repl repro matches the shrinker" `Slow
      test_committed_repl_repro_matches;
    Alcotest.test_case "shrinker collapses shards" `Slow
      test_shrinker_single_shard;
    Alcotest.test_case "shrinker minimizes a known-bad scenario" `Slow
      test_shrinker_minimizes;
    Alcotest.test_case "shrinker rejects a passing scenario" `Quick
      test_shrinker_rejects_passing_scenario;
    Alcotest.test_case "committed shrunk repro still fails" `Quick
      test_committed_repro_still_fails;
  ]
