(* Fault injection and graceful degradation: the fault plan parser, the
   backend failure hook, retry/backoff with dead-lettering, SLA-aware load
   shedding, client disconnects, and live mid-run crash recovery.  The
   end-to-end properties here are the robustness contract: under a nonzero
   fault plan the middleware still terminates, still commits work, and the
   executed schedule (rte) still passes the full serializability battery. *)

open Ds_core
open Ds_model

let small_spec =
  { Ds_workload.Spec.paper_default with Ds_workload.Spec.n_objects = 2000 }

let mixed_spec =
  {
    small_spec with
    Ds_workload.Spec.sla_mix =
      [ (Sla.premium, 0.2); (Sla.standard, 0.5); (Sla.free, 0.3) ];
  }

(* Fault runs disable wall-clock charging (determinism across machines) and
   enable the realistic client contract: aborted transactions are redone. *)
let cfg ?(n_clients = 12) ?(duration = 4.) ?(spec = small_spec)
    ?(faults = Faults.none) () =
  {
    Middleware.default_config with
    Middleware.n_clients;
    duration;
    spec;
    charge_scheduler_time = false;
    faults;
    client_redo = true;
    batch_timeout = Some 0.25;
  }

let plan_exn s =
  match Faults.plan_of_string s with
  | Ok p -> p
  | Error e -> Alcotest.failf "plan %S rejected: %s" s e

(* --- plan parsing -------------------------------------------------------- *)

let test_plan_parse () =
  let p =
    plan_exn "batch=0.1,stall=0.05,stall-dur=0.2,poison=0.01,disconnect=0.02,crash=40"
  in
  Alcotest.(check (float 1e-9)) "batch" 0.1 p.Faults.batch_fail_rate;
  Alcotest.(check (float 1e-9)) "stall" 0.05 p.Faults.stall_rate;
  Alcotest.(check (float 1e-9)) "stall-dur" 0.2 p.Faults.stall_duration;
  Alcotest.(check (float 1e-9)) "poison" 0.01 p.Faults.poison_rate;
  Alcotest.(check (float 1e-9)) "disconnect" 0.02 p.Faults.disconnect_rate;
  Alcotest.(check (option int)) "crash" (Some 40) p.Faults.crash_at_cycle;
  (* every key optional; spec round-trips through plan_to_string *)
  let partial = plan_exn "batch=0.5" in
  Alcotest.(check (float 1e-9)) "partial batch" 0.5 partial.Faults.batch_fail_rate;
  Alcotest.(check (float 1e-9)) "partial stall defaults" 0. partial.Faults.stall_rate;
  Alcotest.(check bool) "partial plan is not none" false (Faults.is_none partial);
  Alcotest.(check bool) "empty spec is the zero plan" true
    (Faults.is_none (plan_exn ""));
  let roundtripped = plan_exn (Faults.plan_to_string p) in
  Alcotest.(check string) "round-trip" (Faults.plan_to_string p)
    (Faults.plan_to_string roundtripped)

let test_plan_rejects () =
  let rejected s =
    match Faults.plan_of_string s with
    | Error _ -> ()
    | Ok p -> (
      match Faults.validate p with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "plan %S should have been rejected" s)
  in
  rejected "bogus=1";
  rejected "batch";
  rejected "batch=lots";
  rejected "batch=1.5";
  rejected "poison=-0.1";
  rejected "crash=0";
  (* worker-scoped knobs are rates/durations too *)
  rejected "wcrash=1.5";
  rejected "wdeath=-0.1";
  rejected "wstall=two";
  rejected "wstall-dur=-1"

let test_plan_parse_worker_faults () =
  let p = plan_exn "wcrash=0.1,wdeath=0.05,wstall=0.2,wstall-dur=0.3" in
  Alcotest.(check (float 1e-9)) "wcrash" 0.1 p.Faults.worker_crash_rate;
  Alcotest.(check (float 1e-9)) "wdeath" 0.05 p.Faults.worker_death_rate;
  Alcotest.(check (float 1e-9)) "wstall" 0.2 p.Faults.worker_stall_rate;
  Alcotest.(check (float 1e-9)) "wstall-dur" 0.3 p.Faults.worker_stall_duration;
  Alcotest.(check bool) "plan has worker faults" true
    (Faults.has_worker_faults p);
  Alcotest.(check bool) "zero plan has none" false
    (Faults.has_worker_faults Faults.none);
  Alcotest.(check bool) "process knobs untouched" true
    (p.Faults.batch_fail_rate = 0. && p.Faults.crash_at_cycle = None);
  let roundtripped = plan_exn (Faults.plan_to_string p) in
  Alcotest.(check string) "worker keys round-trip" (Faults.plan_to_string p)
    (Faults.plan_to_string roundtripped)

(* --- backend fault hook --------------------------------------------------- *)

let test_backend_hook_fail () =
  let engine = Ds_sim.Engine.create () in
  let backend = Ds_server.Backend.create engine Ds_server.Cost_model.default in
  let reqs =
    [ Request.v 1 1 Op.Read 1; Request.v 1 2 Op.Write 2; Request.v 1 3 Op.Read 3 ]
  in
  Ds_server.Backend.set_fault_hook backend (fun r ->
      if Request.key r = (1, 2) then `Fail else `Ok);
  let seen = ref [] in
  let result = ref None in
  Ds_server.Backend.execute_seq_result backend reqs
    ~on_each:(fun r -> seen := Request.key r :: !seen)
    (fun res -> result := Some res);
  Ds_sim.Engine.run engine;
  Alcotest.(check (list (pair int int))) "prefix delivered" [ (1, 1) ] !seen;
  match !result with
  | Some (`Failed r) ->
    Alcotest.(check (pair int int)) "failed request reported" (1, 2)
      (Request.key r)
  | Some `Completed -> Alcotest.fail "batch should have failed"
  | None -> Alcotest.fail "batch never finished"

let test_backend_hook_stall () =
  let finish engine hook =
    let backend =
      Ds_server.Backend.create engine Ds_server.Cost_model.default
    in
    Ds_server.Backend.set_fault_hook backend hook;
    let at = ref nan in
    Ds_server.Backend.execute_seq_result backend
      [ Request.v 1 1 Op.Read 1 ]
      ~on_each:(fun _ -> ())
      (fun _ -> at := Ds_sim.Engine.now engine);
    Ds_sim.Engine.run engine;
    !at
  in
  let plain = finish (Ds_sim.Engine.create ()) (fun _ -> `Ok) in
  let stalled = finish (Ds_sim.Engine.create ()) (fun _ -> `Stall 0.5) in
  Alcotest.(check (float 1e-9)) "stall adds exactly its duration" 0.5
    (stalled -. plain)

(* --- retry/backoff and dead-lettering ------------------------------------ *)

let test_transient_failures_retried () =
  let s = Middleware.run (cfg ~faults:(plan_exn "batch=0.1") ()) in
  Alcotest.(check bool) "failures injected" true (s.Middleware.injected_failures > 0);
  Alcotest.(check bool) "batches retried" true (s.Middleware.retries > 0);
  Alcotest.(check bool) "work still commits" true (s.Middleware.committed_txns > 0)

let test_stalls_trip_timeout () =
  let s = Middleware.run (cfg ~faults:(plan_exn "stall=0.2,stall-dur=2.0") ()) in
  Alcotest.(check bool) "stalls injected" true (s.Middleware.injected_stalls > 0);
  Alcotest.(check bool) "timeouts fired" true (s.Middleware.timeouts > 0);
  Alcotest.(check bool) "work still commits" true (s.Middleware.committed_txns > 0)

let test_poison_dead_lettered () =
  let s, sched =
    Middleware.run_full (cfg ~faults:(plan_exn "poison=0.02") ())
  in
  let rels = Scheduler.relations sched in
  Alcotest.(check bool) "poison gave up on" true (s.Middleware.dead_lettered > 0);
  Alcotest.(check int) "dead relation matches the counter"
    s.Middleware.dead_lettered
    (Relations.dead_count rels);
  (* a poison request burns through the whole retry budget first *)
  Alcotest.(check bool) "retries preceded dead-lettering" true
    (s.Middleware.retries >= s.Middleware.dead_lettered);
  Alcotest.(check bool) "unaffected work commits" true
    (s.Middleware.committed_txns > 0)

let backoff_monotone_capped =
  (* The regression behind the exponent clamp: 2^attempt overflows a native
     int past attempt 61, which made large attempt counts wrap to garbage
     delays. For any base/cap and attempts 0..1000 the ladder must be
     monotone non-decreasing and never exceed the cap. *)
  QCheck2.Test.make ~name:"retry backoff is monotone and capped (0..1000)"
    ~count:(Helpers.Config.qcheck_count 200)
    QCheck2.Gen.(
      triple (float_range 0.001 2.0) (float_range 0.5 120.0) (int_range 0 999))
    (fun (base, cap, attempt) ->
      let b n = Faults.backoff ~base ~cap ~attempt:n in
      let this = b attempt and next = b (attempt + 1) in
      if this > next then
        QCheck2.Test.fail_reportf "not monotone at %d: %g > %g" attempt this
          next
      else if this > cap || next > cap then
        QCheck2.Test.fail_reportf "cap %g exceeded at %d: %g / %g" cap attempt
          this next
      else if this < 0. then
        QCheck2.Test.fail_reportf "negative backoff %g at %d" this attempt
      else true)

let test_backoff_endpoints () =
  Alcotest.(check (float 1e-9)) "attempt 0 pays the base" 0.01
    (Faults.backoff ~base:0.01 ~cap:10. ~attempt:0);
  Alcotest.(check (float 1e-9)) "deep attempts saturate at the cap" 10.
    (Faults.backoff ~base:0.01 ~cap:10. ~attempt:1000);
  Alcotest.(check (float 1e-9)) "negative attempts clamp to the base" 0.01
    (Faults.backoff ~base:0.01 ~cap:10. ~attempt:(-5))

let test_retries_beat_no_retries () =
  (* The acceptance scenario: transient batch failures plus one mid-run
     crash.  With retries on, the middleware must commit strictly more
     transactions than a no-retry build of the same run (where every
     transient failure aborts the transaction outright). *)
  let base = cfg ~faults:(plan_exn "batch=0.15,crash=40") ~duration:10. () in
  let with_retry = Middleware.run base in
  let without = Middleware.run { base with Middleware.max_retries = 0 } in
  Alcotest.(check bool) "crash survived" true (with_retry.Middleware.crashes = 1);
  Alcotest.(check bool)
    (Printf.sprintf "retries commit strictly more (%d > %d)"
       with_retry.Middleware.committed_txns without.Middleware.committed_txns)
    true
    (with_retry.Middleware.committed_txns > without.Middleware.committed_txns)

(* --- overload: bounded queue, shedding, backpressure ---------------------- *)

let test_bounded_queue_sheds_by_tier () =
  let config =
    {
      (cfg ~spec:mixed_spec ~n_clients:24 ()) with
      Middleware.queue_capacity = Some 4;
    }
  in
  let s = Middleware.run config in
  Alcotest.(check bool) "backpressure applied" true
    (s.Middleware.backpressure_waits > 0);
  Alcotest.(check bool) "least urgent work shed" true (s.Middleware.shed_txns > 0);
  Alcotest.(check bool) "shed transactions were aborted" true
    (s.Middleware.aborted_txns >= s.Middleware.shed_txns);
  Alcotest.(check bool) "system stays live under overload" true
    (s.Middleware.committed_txns > 0)

let test_shed_victim_is_least_urgent () =
  let sched = Scheduler.create Builtin.ss2pl_ocaml in
  let req ta sla = { (Request.v ta 1 Op.Read ta) with Request.sla } in
  Alcotest.(check bool) "premium accepted" true
    (Scheduler.submit_bounded sched ~capacity:2 (req 1 Sla.premium) = `Accepted);
  Alcotest.(check bool) "free accepted" true
    (Scheduler.submit_bounded sched ~capacity:2 (req 2 Sla.free) = `Accepted);
  (* full queue + more urgent arrival: the free request is the victim *)
  (match Scheduler.submit_bounded sched ~capacity:2 (req 3 Sla.standard) with
  | `Accepted_shed v -> Alcotest.(check int) "free tier shed" 2 v.Request.ta
  | `Accepted -> Alcotest.fail "queue was full; expected a shed"
  | `Rejected -> Alcotest.fail "standard outranks free; expected a shed");
  (* full queue + no strictly-more-urgent arrival: backpressure instead *)
  match Scheduler.submit_bounded sched ~capacity:2 (req 4 Sla.standard) with
  | `Rejected -> ()
  | _ -> Alcotest.fail "equal urgency must not evict"

(* Pins the tie-break inside the victim tier: among equally-urgent queued
   requests the most recently queued one is shed, so earlier arrivals keep
   their place in line and repeated overload drains the queue from the
   tail deterministically. *)
let test_shed_tie_break_is_most_recent () =
  let sched = Scheduler.create Builtin.ss2pl_ocaml in
  let req ta sla = { (Request.v ta 1 Op.Read ta) with Request.sla } in
  List.iter
    (fun (ta, sla) ->
      match Scheduler.submit_bounded sched ~capacity:3 (req ta sla) with
      | `Accepted -> ()
      | _ -> Alcotest.fail "queue below capacity must accept")
    [ (1, Sla.premium); (2, Sla.free); (3, Sla.free) ];
  (match Scheduler.submit_bounded sched ~capacity:3 (req 4 Sla.standard) with
  | `Accepted_shed v ->
    Alcotest.(check int) "newest free entry shed first" 3 v.Request.ta
  | _ -> Alcotest.fail "queue was full; expected a shed");
  (* The surviving free request is next in line for the same tie-break. *)
  match Scheduler.submit_bounded sched ~capacity:3 (req 5 Sla.premium) with
  | `Accepted_shed v ->
    Alcotest.(check int) "older free entry shed second" 2 v.Request.ta
  | _ -> Alcotest.fail "queue was full again; expected a shed"

(* --- client disconnects --------------------------------------------------- *)

let test_disconnects_cleaned_up () =
  let s = Middleware.run (cfg ~faults:(plan_exn "disconnect=0.3") ()) in
  Alcotest.(check bool) "disconnects injected" true (s.Middleware.disconnects > 0);
  Alcotest.(check bool) "their transactions aborted" true
    (s.Middleware.aborted_txns >= s.Middleware.disconnects);
  Alcotest.(check bool) "other clients unaffected" true
    (s.Middleware.committed_txns > 0)

(* --- crash recovery ------------------------------------------------------- *)

let rte_report sched =
  let log = Relations.rte_requests (Scheduler.relations sched) in
  Ds_check.Serializability.check_committed
    (Ds_check.Conflict_graph.events_of_requests log)

let with_tmp_journal f =
  let path = Filename.temp_file "ds_faults" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let crash_cfg path =
  {
    (cfg ~faults:(plan_exn "batch=0.1,poison=0.01,crash=25") ~duration:6. ()) with
    Middleware.journal_path = Some path;
  }

let test_crash_recovery_end_to_end () =
  with_tmp_journal (fun path ->
      let s, sched = Middleware.run_full (crash_cfg path) in
      Alcotest.(check int) "one crash survived" 1 s.Middleware.crashes;
      Alcotest.(check bool) "run continued past the crash" true
        (s.Middleware.committed_txns > 0);
      (* the rte log is one continuous schedule across the crash, and its
         committed projection passes the full battery *)
      let report = rte_report sched in
      Alcotest.(check bool) "schedule non-trivial" true
        (report.Ds_check.Serializability.events > 200);
      Alcotest.(check bool)
        (Format.asprintf "post-recovery schedule clean: %a"
           Ds_check.Serializability.pp_report report)
        true
        (Ds_check.Serializability.is_clean report);
      (* the journal survives the run: dead-letters are durable facts *)
      let recovered = Journal.recover path in
      Alcotest.(check bool) "journal replayable after the run" true
        (recovered.Journal.replayed > 0);
      Alcotest.(check int) "dead-letters durable in the journal"
        (Relations.dead_count (Scheduler.relations sched))
        (List.length recovered.Journal.dead))

let test_crash_recovery_deterministic () =
  (* Same seed, same plan => identical deterministic outcomes, crash and
     recovery included.  Wall-clock-measured stats fields (cycle times,
     scheduler time) are real measurements and legitimately vary; everything
     the simulation decides must not. *)
  let run () =
    with_tmp_journal (fun path ->
        let s, sched = Middleware.run_full (crash_cfg path) in
        let rte =
          List.map Request.key (Relations.rte_requests (Scheduler.relations sched))
        in
        (s, rte))
  in
  let a, rte_a = run () in
  let b, rte_b = run () in
  let counters s =
    Middleware.
      [
        s.committed_txns;
        s.committed_stmts;
        s.aborted_txns;
        s.cycles;
        s.retries;
        s.timeouts;
        s.injected_failures;
        s.injected_stalls;
        s.shed_txns;
        s.backpressure_waits;
        s.dead_lettered;
        s.disconnects;
        s.crashes;
      ]
  in
  Alcotest.(check (list int)) "identical counters" (counters a) (counters b);
  Alcotest.(check (list (pair int int))) "identical executed schedule" rte_a rte_b

let test_fault_free_runs_unchanged () =
  (* The robustness machinery must be invisible when the plan is zero: a
     default-config run and a run with every fault knob present but the
     plan [Faults.none] produce identical schedules. *)
  let plain =
    Middleware.run
      { Middleware.default_config with Middleware.charge_scheduler_time = false }
  in
  let armed =
    Middleware.run
      {
        Middleware.default_config with
        Middleware.charge_scheduler_time = false;
        faults = Faults.none;
        max_retries = 7;
        batch_timeout = Some 10.;
      }
  in
  Alcotest.(check int) "same commits" plain.Middleware.committed_txns
    armed.Middleware.committed_txns;
  Alcotest.(check int) "same aborts" plain.Middleware.aborted_txns
    armed.Middleware.aborted_txns;
  Alcotest.(check int) "no fault counters tripped" 0
    (armed.Middleware.retries + armed.Middleware.timeouts
    + armed.Middleware.dead_lettered + armed.Middleware.crashes)

(* --- faults x parallelism ------------------------------------------------- *)

(* Failures injected mid-batch on a 4-worker pool: a worker's request failing
   does not corrupt the other workers' sub-batches — retries and
   dead-lettering behave as at K=1, and the merged parallel schedule is still
   serializable and conflict-equivalent to the admitted order. *)
let test_parallel_faults_end_to_end () =
  let config =
    {
      (cfg ~faults:(plan_exn "batch=0.1,stall=0.05,stall-dur=0.1,poison=0.01")
         ~duration:6. ()) with
      Middleware.workers = 4;
    }
  in
  let s, sched = Middleware.run_full config in
  Alcotest.(check int) "ran with 4 workers" 4 s.Middleware.workers;
  Alcotest.(check bool) "still commits under faults" true
    (s.Middleware.committed_txns > 0);
  Alcotest.(check bool) "faults actually fired" true
    (s.Middleware.injected_failures + s.Middleware.injected_stalls > 0);
  Alcotest.(check bool) "failures recovered via retry or dead-letter" true
    (s.Middleware.retries > 0 || s.Middleware.dead_lettered > 0);
  let report = rte_report sched in
  Alcotest.(check bool)
    (Format.asprintf "faulty parallel schedule clean: %a"
       Ds_check.Serializability.pp_report report)
    true
    (Ds_check.Serializability.is_clean report);
  let rels = Scheduler.relations sched in
  let rte = Relations.rte_requests rels in
  let by_key = Hashtbl.create (2 * List.length rte) in
  List.iter (fun r -> Hashtbl.replace by_key (Request.key r) r) rte;
  let merged =
    List.filter_map
      (fun key -> Hashtbl.find_opt by_key key)
      (Relations.execution_order rels)
  in
  let eq = Ds_check.Equivalence.check ~reference:rte ~candidate:merged () in
  Alcotest.(check bool)
    (Format.asprintf "assignment order conflict-equivalent under faults: %a"
       Ds_check.Equivalence.pp_report eq)
    true
    (Ds_check.Equivalence.is_equivalent eq)

(* Crash + journal recovery with a 4-worker pool: the restored scheduler
   re-registers the workers relation, the run continues committing on all
   workers, and the continuous rte log stays clean across the crash. *)
let test_parallel_crash_recovery () =
  with_tmp_journal (fun path ->
      let config = { (crash_cfg path) with Middleware.workers = 4 } in
      let s, sched = Middleware.run_full config in
      Alcotest.(check int) "one crash survived" 1 s.Middleware.crashes;
      Alcotest.(check bool) "run continued past the crash" true
        (s.Middleware.committed_txns > 0);
      let rels = Scheduler.relations sched in
      Alcotest.(check int) "workers re-registered after recovery" 4
        (Relations.worker_count rels);
      Alcotest.(check bool) "assignments logged after recovery" true
        (Relations.assignment_count rels > 0);
      let report = rte_report sched in
      Alcotest.(check bool)
        (Format.asprintf "post-recovery parallel schedule clean: %a"
           Ds_check.Serializability.pp_report report)
        true
        (Ds_check.Serializability.is_clean report);
      let recovered = Journal.recover path in
      Alcotest.(check bool) "journal replayable after the run" true
        (recovered.Journal.replayed > 0))

(* Worker faults, a process crash, and checkpointed recovery together are
   still a deterministic simulation: same seed, same plan => identical
   supervision decisions and identical executed schedule. *)
let test_worker_faults_checkpoint_deterministic () =
  let run () =
    with_tmp_journal (fun path ->
        let config =
          {
            (cfg
               ~faults:(plan_exn "wcrash=0.2,wstall=0.3,wstall-dur=0.05,crash=25")
               ~duration:5. ()) with
            Middleware.workers = 4;
            journal_path = Some path;
            checkpoint_interval = Some 10;
            hedging = true;
          }
        in
        let s, sched = Middleware.run_full config in
        let rte =
          List.map Request.key
            (Relations.rte_requests (Scheduler.relations sched))
        in
        (s, rte))
  in
  let a, rte_a = run () in
  let b, rte_b = run () in
  Alcotest.(check bool) "supervisor exercised" true
    (a.Middleware.worker_crashes > 0 && a.Middleware.reassigned_classes > 0);
  Alcotest.(check bool) "checkpoints written" true
    (a.Middleware.checkpoints > 0);
  Alcotest.(check int) "crash survived" 1 a.Middleware.crashes;
  Alcotest.(check bool) "checkpointed recovery skipped a prefix" true
    (a.Middleware.recovery_skipped > 0);
  let counters s =
    Middleware.
      [
        s.committed_txns;
        s.aborted_txns;
        s.cycles;
        s.crashes;
        s.worker_crashes;
        s.worker_deaths;
        s.worker_stalls;
        s.reassigned_classes;
        s.hedged_classes;
        s.checkpoints;
        s.recovery_replayed;
        s.recovery_skipped;
      ]
  in
  Alcotest.(check (list int)) "identical supervision counters" (counters a)
    (counters b);
  Alcotest.(check (list (pair int int))) "identical executed schedule" rte_a
    rte_b

let tests =
  [
    Alcotest.test_case "fault plan parses" `Quick test_plan_parse;
    Alcotest.test_case "fault plan rejects bad specs" `Quick test_plan_rejects;
    Alcotest.test_case "fault plan parses worker knobs" `Quick
      test_plan_parse_worker_faults;
    Alcotest.test_case "backend hook fails the suffix" `Quick
      test_backend_hook_fail;
    Alcotest.test_case "backend hook stalls a request" `Quick
      test_backend_hook_stall;
    Alcotest.test_case "transient failures are retried" `Quick
      test_transient_failures_retried;
    QCheck_alcotest.to_alcotest backoff_monotone_capped;
    Alcotest.test_case "backoff endpoints" `Quick test_backoff_endpoints;
    Alcotest.test_case "stalls trip the batch timeout" `Quick
      test_stalls_trip_timeout;
    Alcotest.test_case "poison requests are dead-lettered" `Quick
      test_poison_dead_lettered;
    Alcotest.test_case "retries beat no-retries under faults" `Quick
      test_retries_beat_no_retries;
    Alcotest.test_case "bounded queue sheds and pushes back" `Quick
      test_bounded_queue_sheds_by_tier;
    Alcotest.test_case "shed victim is the least urgent" `Quick
      test_shed_victim_is_least_urgent;
    Alcotest.test_case "shed tie-break is deterministic" `Quick
      test_shed_tie_break_is_most_recent;
    Alcotest.test_case "disconnects are cleaned up" `Quick
      test_disconnects_cleaned_up;
    Alcotest.test_case "crash recovery end to end" `Quick
      test_crash_recovery_end_to_end;
    Alcotest.test_case "crash recovery is deterministic" `Quick
      test_crash_recovery_deterministic;
    Alcotest.test_case "fault-free runs are unchanged" `Quick
      test_fault_free_runs_unchanged;
    Alcotest.test_case "faults on 4-worker pool stay clean" `Quick
      test_parallel_faults_end_to_end;
    Alcotest.test_case "crash recovery with 4 workers" `Quick
      test_parallel_crash_recovery;
    Alcotest.test_case "worker faults + checkpoints deterministic" `Quick
      test_worker_faults_checkpoint_deterministic;
  ]
