(* CLI argument validation: the strict positive-int converter behind
   --checkpoint and --shards (the --workers treatment from the checkpoint
   PR), and the replication flag preconditions. These run the real dsched
   binary — the tests execute from _build/default/test, next to bin/. *)

let dsched_exe = Filename.concat ".." (Filename.concat "bin" "dsched.exe")

let dsched args =
  let out = Filename.temp_file "dsched_cli" ".out" in
  let code =
    Sys.command
      (Printf.sprintf "%s %s >%s 2>&1" dsched_exe args (Filename.quote out))
  in
  let text = In_channel.with_open_text out In_channel.input_all in
  Sys.remove out;
  (code, text)

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  nn = 0 || at 0

let check_rejected ~flag ~needle args =
  let code, text = dsched args in
  Alcotest.(check bool)
    (Printf.sprintf "%s rejected (exit %d)" flag code)
    true (code <> 0);
  Alcotest.(check bool)
    (Printf.sprintf "%s error mentions %S (got: %s)" flag needle text)
    true (contains ~needle text)

let test_checkpoint_rejects_nonpositive () =
  check_rejected ~flag:"--checkpoint 0" ~needle:"--checkpoint must be positive"
    "run --duration 0.1 --journal /tmp/x.journal --checkpoint 0";
  check_rejected ~flag:"--checkpoint -3" ~needle:"--checkpoint must be positive"
    "run --duration 0.1 --journal /tmp/x.journal --checkpoint=-3"

let test_checkpoint_rejects_nonnumeric () =
  check_rejected ~flag:"--checkpoint four"
    ~needle:"--checkpoint must be a positive integer"
    "run --duration 0.1 --journal /tmp/x.journal --checkpoint four"

let test_shards_rejects_nonpositive () =
  check_rejected ~flag:"--shards 0" ~needle:"--shards must be positive"
    "run --duration 0.1 --shards 0";
  check_rejected ~flag:"--shards -2" ~needle:"--shards must be positive"
    "run --duration 0.1 --shards=-2"

let test_shards_rejects_nonnumeric () =
  check_rejected ~flag:"--shards many"
    ~needle:"--shards must be a positive integer"
    "run --duration 0.1 --shards many"

let test_repl_flag_preconditions () =
  (* The standby needs a primary journal to mirror, and a fault plan for the
     link needs a standby to run it against. *)
  check_rejected ~flag:"--standby without --journal" ~needle:"--journal"
    "run --duration 0.1 --standby /tmp/ds_cli_standby.d";
  check_rejected ~flag:"--repl-faults without --standby" ~needle:"--standby"
    "run --duration 0.1 --journal /tmp/x.journal --repl-faults drop=0.1"

let tests =
  [
    Alcotest.test_case "--checkpoint rejects non-positive values" `Quick
      test_checkpoint_rejects_nonpositive;
    Alcotest.test_case "--checkpoint rejects non-numeric values" `Quick
      test_checkpoint_rejects_nonnumeric;
    Alcotest.test_case "--shards rejects non-positive values" `Quick
      test_shards_rejects_nonpositive;
    Alcotest.test_case "--shards rejects non-numeric values" `Quick
      test_shards_rejects_nonnumeric;
    Alcotest.test_case "replication flags validate their prerequisites" `Quick
      test_repl_flag_preconditions;
  ]
