(* Tests for Ds_relal: values, schemas, tables, plans, evaluation,
   optimizer. *)

open Ds_relal

let v_int i = Value.Int i
let v_str s = Value.Str s

let test_value_compare () =
  Alcotest.(check int) "int eq" 0 (Value.compare (v_int 3) (v_int 3));
  Alcotest.(check bool) "int/float numeric" true
    (Value.equal (v_int 1) (Value.Float 1.0));
  Alcotest.(check bool) "null smallest" true
    (Value.compare Value.Null (Value.Bool false) < 0);
  Alcotest.(check bool) "cross-type rank" true
    (Value.compare (Value.Bool true) (v_int 0) < 0);
  Alcotest.(check bool) "str order" true
    (Value.compare (v_str "a") (v_str "b") < 0)

let value_hash_consistent =
  QCheck2.Test.make ~name:"Value: equal implies same hash" ~count:300
    QCheck2.Gen.(pair int int)
    (fun (a, b) ->
      let va = v_int a and vb = Value.Float (float_of_int b) in
      (not (Value.equal va vb)) || Value.hash va = Value.hash vb)

let test_schema_find () =
  let s =
    Schema.of_list
      [
        Schema.column ~rel:"a" "ta" Schema.Tint;
        Schema.column ~rel:"b" "ta" Schema.Tint;
        Schema.column ~rel:"a" "obj" Schema.Tint;
      ]
  in
  Alcotest.(check bool) "qualified" true
    (Schema.find s ~rel:(Some "b") ~name:"ta" = Ok 1);
  Alcotest.(check bool) "unqualified ambiguous" true
    (Schema.find s ~rel:None ~name:"ta" = Error `Ambiguous);
  Alcotest.(check bool) "unqualified unique" true
    (Schema.find s ~rel:None ~name:"obj" = Ok 2);
  Alcotest.(check bool) "case-insensitive" true
    (Schema.find s ~rel:(Some "A") ~name:"OBJ" = Ok 2);
  Alcotest.(check bool) "unknown" true
    (Schema.find s ~rel:None ~name:"zz" = Error `Unknown)

let mk_table name rows =
  let t =
    Table.create ~name
      (Schema.of_list
         [ Schema.column "k" Schema.Tint; Schema.column "v" Schema.Tstr ])
  in
  List.iter (fun (k, v) -> Table.insert t [| v_int k; v_str v |]) rows;
  t

let test_table_basics () =
  let t = mk_table "t" [ (1, "a"); (2, "b"); (3, "c") ] in
  Alcotest.(check int) "count" 3 (Table.row_count t);
  let deleted = Table.delete_where t (fun row -> row.(0) = v_int 2) in
  Alcotest.(check int) "deleted" 1 deleted;
  Alcotest.(check int) "count after" 2 (Table.row_count t);
  let touched = Table.update_where t (fun row -> row.(0) = v_int 3) (fun row -> row.(1) <- v_str "z") in
  Alcotest.(check int) "updated" 1 touched;
  Alcotest.(check bool) "updated value" true
    (List.exists (fun r -> r.(1) = v_str "z") (Table.rows t));
  Alcotest.check_raises "arity check"
    (Invalid_argument "Table.insert(t): arity 1, schema wants 2") (fun () ->
      Table.insert t [| v_int 9 |])

let test_table_index () =
  let t = mk_table "t" [ (1, "a"); (2, "b"); (1, "c") ] in
  Table.create_index t [ 0 ];
  Alcotest.(check bool) "has index" true (Table.has_index t [ 0 ]);
  let hits = Table.probe t [ 0 ] [ v_int 1 ] in
  Alcotest.(check int) "probe hits" 2 (List.length hits);
  (* Index survives mutation via lazy rebuild. *)
  Table.insert t [| v_int 1; v_str "d" |];
  Alcotest.(check int) "probe after insert" 3
    (List.length (Table.probe t [ 0 ] [ v_int 1 ]));
  ignore (Table.delete_where t (fun row -> row.(1) = v_str "a"));
  Alcotest.(check int) "probe after delete" 2
    (List.length (Table.probe t [ 0 ] [ v_int 1 ]));
  Alcotest.check_raises "unknown index"
    (Invalid_argument "Table.probe(t): no such index") (fun () ->
      ignore (Table.probe t [ 1 ] [ v_str "a" ]))

let test_ordered_index () =
  let t = mk_table "t" [ (5, "a"); (1, "b"); (3, "c"); (3, "d"); (9, "e") ] in
  Table.insert t [| Value.Null; v_str "n" |];
  Table.create_ordered_index t 0;
  Alcotest.(check bool) "declared" true (Table.has_ordered_index t 0);
  let vals rows = List.map (fun r -> r.(1)) rows in
  Alcotest.(check (list (of_pp Value.pp))) "closed range"
    [ v_str "b"; v_str "c"; v_str "d" ]
    (vals (Table.range_probe t 0 ~lo:(Some (v_int 1, true)) ~hi:(Some (v_int 3, true))));
  Alcotest.(check (list (of_pp Value.pp))) "exclusive bounds"
    [ v_str "c"; v_str "d" ]
    (vals (Table.range_probe t 0 ~lo:(Some (v_int 1, false)) ~hi:(Some (v_int 5, false))));
  (* Unbounded below must not leak NULL rows. *)
  Alcotest.(check int) "null excluded" 3
    (List.length (Table.range_probe t 0 ~lo:None ~hi:(Some (v_int 3, true))));
  Alcotest.(check int) "unbounded both" 5
    (List.length (Table.range_probe t 0 ~lo:None ~hi:None));
  (* Mutation invalidates; rebuild picks up new rows. *)
  Table.insert t [| v_int 2; v_str "z" |];
  Alcotest.(check int) "after insert" 4
    (List.length (Table.range_probe t 0 ~lo:None ~hi:(Some (v_int 3, true))))

let test_range_filter_via_index () =
  (* Filter over an ordered-indexed scan must agree with the plain path. *)
  let t = mk_table "t" [] in
  let rng = Ds_sim.Rng.create 12 in
  for i = 1 to 200 do
    let v = if Ds_sim.Rng.int rng 10 = 0 then Value.Null else v_int (Ds_sim.Rng.int rng 50) in
    Table.insert t [| v; v_str (string_of_int i) |]
  done;
  Table.create_ordered_index t 0;
  let plan =
    Ra.Filter
      ( Ra.And
          ( Ra.Cmp (Ra.Geq, Ra.Col 0, Ra.Const (v_int 10)),
            Ra.Cmp (Ra.Lt, Ra.Col 0, Ra.Const (v_int 20)) ),
        Ra.Scan (t, None) )
  in
  let sort rows = List.sort compare (List.map Array.to_list rows) in
  Eval.use_table_indexes := true;
  let fast = sort (Eval.run plan) in
  Eval.use_table_indexes := false;
  let slow = sort (Eval.run plan) in
  Eval.use_table_indexes := true;
  Alcotest.(check bool) "identical" true (fast = slow);
  Alcotest.(check bool) "non-empty" true (fast <> [])

let run = Eval.run

let test_filter_three_valued () =
  let t = mk_table "t" [ (1, "a"); (2, "b") ] in
  Table.insert t [| Value.Null; v_str "n" |];
  (* k > 1 is NULL for the null row: excluded (not an error). *)
  let plan = Ra.Filter (Ra.Cmp (Ra.Gt, Ra.Col 0, Ra.Const (v_int 1)), Ra.Scan (t, None)) in
  Alcotest.(check int) "null filtered out" 1 (List.length (run plan));
  (* IS NULL finds it. *)
  let plan2 = Ra.Filter (Ra.Is_null (Ra.Col 0), Ra.Scan (t, None)) in
  Alcotest.(check int) "is null" 1 (List.length (run plan2));
  (* NOT (k > 1) also excludes the null row: NOT NULL = NULL. *)
  let plan3 =
    Ra.Filter
      (Ra.Not (Ra.Cmp (Ra.Gt, Ra.Col 0, Ra.Const (v_int 1))), Ra.Scan (t, None))
  in
  Alcotest.(check int) "not of null" 1 (List.length (run plan3))

let test_kleene_logic () =
  let row = [| Value.Null; Value.Bool true; Value.Bool false |] in
  let ev e = Eval.eval_expr ~row e in
  Alcotest.(check bool) "null and false = false" true
    (ev (Ra.And (Ra.Col 0, Ra.Col 2)) = Value.Bool false);
  Alcotest.(check bool) "null and true = null" true
    (ev (Ra.And (Ra.Col 0, Ra.Col 1)) = Value.Null);
  Alcotest.(check bool) "null or true = true" true
    (ev (Ra.Or (Ra.Col 0, Ra.Col 1)) = Value.Bool true);
  Alcotest.(check bool) "null or false = null" true
    (ev (Ra.Or (Ra.Col 0, Ra.Col 2)) = Value.Null);
  Alcotest.(check bool) "in-list with null" true
    (ev (Ra.In_list (Ra.Const (v_int 5), [ v_int 1; Value.Null ])) = Value.Null)

let test_arith () =
  let ev e = Eval.eval_expr ~row:[||] e in
  Alcotest.(check bool) "int div" true
    (ev (Ra.Arith (Ra.Div, Ra.Const (v_int 7), Ra.Const (v_int 2))) = v_int 3);
  Alcotest.(check bool) "div by zero is null" true
    (ev (Ra.Arith (Ra.Div, Ra.Const (v_int 7), Ra.Const (v_int 0))) = Value.Null);
  Alcotest.(check bool) "mixed float" true
    (ev (Ra.Arith (Ra.Add, Ra.Const (v_int 1), Ra.Const (Value.Float 0.5)))
    = Value.Float 1.5);
  Alcotest.check_raises "type error" (Ra.Type_error "arithmetic on non-numeric values 'a' and 1")
    (fun () -> ignore (ev (Ra.Arith (Ra.Add, Ra.Const (v_str "a"), Ra.Const (v_int 1)))))

let test_joins () =
  let l = mk_table "l" [ (1, "a"); (2, "b"); (3, "c") ] in
  let r = mk_table "r" [ (2, "x"); (3, "y"); (3, "z") ] in
  let join kind =
    Ra.Join
      {
        Ra.kind;
        lkeys = [ Ra.Col 0 ];
        rkeys = [ Ra.Col 0 ];
        residual = None;
        left = Ra.Scan (l, None);
        right = Ra.Scan (r, None);
      }
  in
  Alcotest.(check int) "inner" 3 (List.length (run (join Ra.Inner)));
  let left_rows = run (join Ra.Left) in
  Alcotest.(check int) "left" 4 (List.length left_rows);
  Alcotest.(check bool) "left pads nulls" true
    (List.exists (fun row -> row.(2) = Value.Null) left_rows);
  Alcotest.(check int) "semi" 2 (List.length (run (join Ra.Semi)));
  let anti = run (join Ra.Anti) in
  Alcotest.(check int) "anti" 1 (List.length anti);
  Alcotest.(check bool) "anti row" true ((List.hd anti).(0) = v_int 1)

let test_join_null_keys () =
  let l = mk_table "l" [ (1, "a") ] in
  Table.insert l [| Value.Null; v_str "n" |];
  let r = mk_table "r" [ (1, "x") ] in
  Table.insert r [| Value.Null; v_str "m" |];
  let join kind =
    Ra.Join
      {
        Ra.kind;
        lkeys = [ Ra.Col 0 ];
        rkeys = [ Ra.Col 0 ];
        residual = None;
        left = Ra.Scan (l, None);
        right = Ra.Scan (r, None);
      }
  in
  (* NULL keys never match: inner join yields only the 1-1 pair. *)
  Alcotest.(check int) "inner skips nulls" 1 (List.length (run (join Ra.Inner)));
  (* ...but the null-keyed left row survives an anti join (NOT EXISTS). *)
  Alcotest.(check int) "anti keeps null row" 1 (List.length (run (join Ra.Anti)))

let test_set_ops () =
  let a = mk_table "a" [ (1, "x"); (2, "y"); (2, "y") ] in
  let b = mk_table "b" [ (2, "y"); (3, "z") ] in
  let sa = Ra.Scan (a, None) and sb = Ra.Scan (b, None) in
  Alcotest.(check int) "union all" 5 (List.length (run (Ra.Union_all (sa, sb))));
  Alcotest.(check int) "union distinct" 3 (List.length (run (Ra.Union (sa, sb))));
  Alcotest.(check int) "except" 1 (List.length (run (Ra.Except (sa, sb))));
  Alcotest.(check int) "intersect" 1 (List.length (run (Ra.Intersect (sa, sb))));
  Alcotest.(check int) "distinct" 2 (List.length (run (Ra.Distinct sa)))

let test_sort_limit () =
  let t = mk_table "t" [ (3, "c"); (1, "a"); (2, "b") ] in
  let sorted = run (Ra.Sort ([ (Ra.Col 0, `Desc) ], Ra.Scan (t, None))) in
  Alcotest.(check bool) "desc" true ((List.hd sorted).(0) = v_int 3);
  let limited = run (Ra.Limit (2, Ra.Sort ([ (Ra.Col 0, `Asc) ], Ra.Scan (t, None)))) in
  Alcotest.(check int) "limit" 2 (List.length limited)

let test_group () =
  let t = mk_table "t" [ (1, "a"); (1, "b"); (2, "c") ] in
  let plan =
    Ra.Group
      {
        Ra.keys = [ (Ra.Col 0, Schema.column "k" Schema.Tint) ];
        aggs =
          [
            (Ra.Count_star, Schema.column "n" Schema.Tint);
            (Ra.Max (Ra.Col 1), Schema.column "m" Schema.Tstr);
          ];
        input = Ra.Scan (t, None);
      }
  in
  let rows = run plan in
  Alcotest.(check int) "groups" 2 (List.length rows);
  let g1 = List.find (fun r -> r.(0) = v_int 1) rows in
  Alcotest.(check bool) "count" true (g1.(1) = v_int 2);
  Alcotest.(check bool) "max" true (g1.(2) = v_str "b");
  (* Aggregate over empty input without keys yields one row. *)
  let empty = mk_table "e" [] in
  let agg_empty =
    Ra.Group
      {
        Ra.keys = [];
        aggs =
          [
            (Ra.Count_star, Schema.column "n" Schema.Tint);
            (Ra.Sum (Ra.Col 0), Schema.column "s" Schema.Tint);
          ];
        input = Ra.Scan (empty, None);
      }
  in
  match run agg_empty with
  | [ [| n; s |] ] ->
    Alcotest.(check bool) "count 0" true (n = v_int 0);
    Alcotest.(check bool) "sum null" true (s = Value.Null)
  | _ -> Alcotest.fail "expected a single row"

let test_correlated_exists () =
  let l = mk_table "l" [ (1, "a"); (2, "b") ] in
  let r = mk_table "r" [ (2, "x") ] in
  (* SELECT * FROM l WHERE EXISTS (SELECT * FROM r WHERE r.k = l.k) *)
  let sub =
    Ra.Filter (Ra.Cmp (Ra.Eq, Ra.Col 0, Ra.Outer (1, 0)), Ra.Scan (r, None))
  in
  let plan = Ra.Filter (Ra.Exists sub, Ra.Scan (l, None)) in
  let rows = run plan in
  Alcotest.(check int) "one row" 1 (List.length rows);
  Alcotest.(check bool) "the right row" true ((List.hd rows).(0) = v_int 2)

let test_optimizer_equivalence_listing_shapes () =
  (* Filter over cross becomes a join; result sets agree at all levels. *)
  let l = mk_table "l" [ (1, "a"); (2, "b"); (3, "c") ] in
  let r = mk_table "r" [ (2, "x"); (3, "y") ] in
  let plan =
    Ra.Filter
      ( Ra.And
          ( Ra.Cmp (Ra.Eq, Ra.Col 0, Ra.Col 2),
            Ra.Cmp (Ra.Neq, Ra.Col 1, Ra.Col 3) ),
        Ra.Cross (Ra.Scan (l, None), Ra.Scan (r, None)) )
  in
  let reference = run plan in
  let optimized = Optimizer.optimize ~level:`Full plan in
  Alcotest.(check bool) "plan changed" true (optimized <> plan);
  let has_join =
    let rec walk = function
      | Ra.Join _ -> true
      | Ra.Filter (_, p) | Ra.Distinct p | Ra.Limit (_, p) | Ra.Sort (_, p) ->
        walk p
      | Ra.Cross (a, b)
      | Ra.Union_all (a, b)
      | Ra.Union (a, b)
      | Ra.Except (a, b)
      | Ra.Intersect (a, b) -> walk a || walk b
      | Ra.Project (_, p) -> walk p
      | Ra.Group g -> walk g.Ra.input
      | Ra.Scan _ | Ra.Values _ -> false
    in
    walk optimized
  in
  Alcotest.(check bool) "join detected" true has_join;
  let sort rows = List.sort compare (List.map Array.to_list rows) in
  Alcotest.(check bool) "same result" true
    (sort (run optimized) = sort reference)

let test_optimizer_decorrelates_not_exists () =
  let l = mk_table "l" [ (1, "a"); (2, "b") ] in
  let r = mk_table "r" [ (2, "x") ] in
  let sub =
    Ra.Filter (Ra.Cmp (Ra.Eq, Ra.Col 0, Ra.Outer (1, 0)), Ra.Scan (r, None))
  in
  let plan = Ra.Filter (Ra.Not (Ra.Exists sub), Ra.Scan (l, None)) in
  let optimized = Optimizer.optimize ~level:`Full plan in
  let is_anti =
    match optimized with Ra.Join { Ra.kind = Ra.Anti; _ } -> true | _ -> false
  in
  Alcotest.(check bool) "anti join" true is_anti;
  let rows = run optimized in
  Alcotest.(check int) "result" 1 (List.length rows);
  Alcotest.(check bool) "kept row 1" true ((List.hd rows).(0) = v_int 1)

let test_factor_common_disjunction () =
  let a = Ra.Cmp (Ra.Eq, Ra.Col 0, Ra.Col 1) in
  let b = Ra.Cmp (Ra.Gt, Ra.Col 2, Ra.Const (v_int 0)) in
  let c = Ra.Is_null (Ra.Col 3) in
  let e = Ra.Or (Ra.And (a, b), Ra.And (a, c)) in
  let factored = Optimizer.factor_common_disjunction e in
  (match factored with
  | Ra.And (a', Ra.Or (b', c')) ->
    Alcotest.(check bool) "common pulled out" true (a' = a && b' = b && c' = c)
  | _ -> Alcotest.fail "expected A and (B or C)");
  (* Verify semantic equivalence on random rows. *)
  let rng = Ds_sim.Rng.create 5 in
  for _ = 1 to 100 do
    let row =
      Array.init 4 (fun _ ->
          if Ds_sim.Rng.int rng 5 = 0 then Value.Null
          else v_int (Ds_sim.Rng.int rng 3))
    in
    let x = Eval.eval_expr ~row e and y = Eval.eval_expr ~row factored in
    if not (x = y) then
      Alcotest.failf "mismatch on %s vs %s"
        (Value.to_string x) (Value.to_string y)
  done

let test_as_int_non_finite () =
  Alcotest.(check (option int)) "nan" None (Value.as_int (Value.Float Float.nan));
  Alcotest.(check (option int)) "inf" None
    (Value.as_int (Value.Float Float.infinity));
  Alcotest.(check (option int)) "neg inf" None
    (Value.as_int (Value.Float Float.neg_infinity));
  Alcotest.(check (option int)) "finite float" (Some 3)
    (Value.as_int (Value.Float 3.0));
  Alcotest.(check (option int)) "int" (Some 7) (Value.as_int (v_int 7))

let test_sum_domains () =
  (* SUM folds ints in the int domain and only widens to Float when a float
     flows in — an integral float total must stay Float, and big int sums
     must stay exact past 2^53. *)
  let sum_over ty vals =
    let t = Table.create ~name:"s" (Schema.of_list [ Schema.column "x" ty ]) in
    List.iter (fun v -> Table.insert t [| v |]) vals;
    match
      run
        (Ra.Group
           {
             Ra.keys = [];
             aggs = [ (Ra.Sum (Ra.Col 0), Schema.column "s" ty) ];
             input = Ra.Scan (t, None);
           })
    with
    | [ [| s |] ] -> s
    | _ -> Alcotest.fail "expected a single aggregate row"
  in
  let value = Alcotest.of_pp Value.pp in
  Alcotest.check value "integral float total stays Float" (Value.Float 4.0)
    (sum_over Schema.Tfloat [ Value.Float 2.5; Value.Float 1.5 ]);
  Alcotest.check value "all-int stays Int" (v_int 6)
    (sum_over Schema.Tint [ v_int 1; v_int 2; v_int 3 ]);
  Alcotest.check value "mixed widens to Float" (Value.Float 3.5)
    (sum_over Schema.Tfloat [ v_int 3; Value.Float 0.5 ]);
  let big = 1 lsl 60 in
  Alcotest.check value "int sum exact beyond 2^53" (v_int (big + 1))
    (sum_over Schema.Tint [ v_int big; v_int 1 ]);
  Alcotest.check value "nulls ignored" (v_int 5)
    (sum_over Schema.Tint [ Value.Null; v_int 5; Value.Null ]);
  Alcotest.check value "all-null is NULL" Value.Null
    (sum_over Schema.Tint [ Value.Null ])

let index_consistency_prop =
  (* Under random interleavings of every mutation the table supports, a hash
     probe must equal the predicate scan (in insertion order) and a range
     probe must equal the scan sorted by value — in both maintenance modes,
     with identical contents across modes. *)
  QCheck2.Test.make
    ~name:"probe/range_probe = full scan under random mutations" ~count:60
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 5 40))
    (fun (seed, nops) ->
      let run_mode incremental =
        let saved = !Table.incremental_maintenance in
        Table.incremental_maintenance := incremental;
        Fun.protect
          ~finally:(fun () -> Table.incremental_maintenance := saved)
          (fun () ->
            let t =
              Table.create ~name:"p"
                (Schema.of_list
                   [
                     Schema.column "k" Schema.Tint; Schema.column "v" Schema.Tint;
                   ])
            in
            Table.create_index t [ 0 ];
            Table.create_ordered_index t 1;
            let rng = Ds_sim.Rng.create seed in
            let mk_row () =
              [| v_int (Ds_sim.Rng.int rng 8); v_int (Ds_sim.Rng.int rng 40) |]
            in
            let dumps = ref [] in
            let check_probes () =
              for k = 0 to 7 do
                let via_index =
                  List.map Array.to_list (Table.probe t [ 0 ] [ v_int k ])
                and via_scan =
                  List.filter_map
                    (fun row ->
                      if Value.equal row.(0) (v_int k) then
                        Some (Array.to_list row)
                      else None)
                    (Table.rows t)
                in
                if via_index <> via_scan then failwith "hash probe <> scan"
              done;
              let lo = Ds_sim.Rng.int rng 40 in
              let hi = lo + Ds_sim.Rng.int rng 15 in
              let via_index =
                List.map Array.to_list
                  (Table.range_probe t 1
                     ~lo:(Some (v_int lo, true))
                     ~hi:(Some (v_int hi, true)))
              and via_scan =
                List.map Array.to_list
                  (List.stable_sort
                     (fun a b -> Value.compare a.(1) b.(1))
                     (List.filter
                        (fun row ->
                          Value.compare row.(1) (v_int lo) >= 0
                          && Value.compare row.(1) (v_int hi) <= 0)
                        (Table.rows t)))
              in
              if via_index <> via_scan then failwith "range probe <> scan";
              dumps := List.map Array.to_list (Table.rows t) :: !dumps
            in
            for _ = 1 to nops do
              (match Ds_sim.Rng.int rng 12 with
              | 0 | 1 | 2 | 3 -> Table.insert t (mk_row ())
              | 4 | 5 ->
                Table.insert_many t
                  (List.init (1 + Ds_sim.Rng.int rng 6) (fun _ -> mk_row ()))
              | 6 | 7 ->
                let k = v_int (Ds_sim.Rng.int rng 8) in
                ignore
                  (Table.delete_where t (fun row -> Value.equal row.(0) k))
              | 8 | 9 ->
                let k = v_int (Ds_sim.Rng.int rng 8) in
                let v = v_int (Ds_sim.Rng.int rng 40) in
                ignore
                  (Table.update_where t
                     (fun row -> Value.equal row.(0) k)
                     (fun row -> row.(1) <- v))
              | 10 ->
                (* Bulk churn to cross the compaction threshold. *)
                Table.insert_many t (List.init 80 (fun _ -> mk_row ()));
                ignore
                  (Table.delete_where t (fun row ->
                       Value.compare row.(1) (v_int 20) < 0))
              | _ -> if Ds_sim.Rng.int rng 4 = 0 then Table.clear t);
              check_probes ()
            done;
            List.rev !dumps)
      in
      run_mode true = run_mode false)

let optimizer_preserves_filter_semantics =
  (* Random conjunctive/disjunctive filters over a cross product evaluate the
     same optimized and unoptimized. *)
  QCheck2.Test.make ~name:"optimizer preserves filter-over-cross semantics"
    ~count:60
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 1 6))
    (fun (seed, nrows) ->
      let rng = Ds_sim.Rng.create seed in
      let mk name =
        let t =
          Table.create ~name
            (Schema.of_list
               [ Schema.column "x" Schema.Tint; Schema.column "y" Schema.Tint ])
        in
        for _ = 1 to nrows do
          let cell () =
            if Ds_sim.Rng.int rng 6 = 0 then Value.Null
            else v_int (Ds_sim.Rng.int rng 4)
          in
          Table.insert t [| cell (); cell () |]
        done;
        t
      in
      let l = mk "l" and r = mk "r" in
      let rec rand_expr depth =
        if depth = 0 then
          Ra.Cmp
            ( (match Ds_sim.Rng.int rng 3 with
              | 0 -> Ra.Eq
              | 1 -> Ra.Lt
              | _ -> Ra.Neq),
              Ra.Col (Ds_sim.Rng.int rng 4),
              if Ds_sim.Rng.bool rng then Ra.Col (Ds_sim.Rng.int rng 4)
              else Ra.Const (v_int (Ds_sim.Rng.int rng 4)) )
        else
          match Ds_sim.Rng.int rng 3 with
          | 0 -> Ra.And (rand_expr (depth - 1), rand_expr (depth - 1))
          | 1 -> Ra.Or (rand_expr (depth - 1), rand_expr (depth - 1))
          | _ -> Ra.Not (rand_expr (depth - 1))
      in
      let plan =
        Ra.Filter
          (rand_expr 3, Ra.Cross (Ra.Scan (l, None), Ra.Scan (r, None)))
      in
      let sort rows = List.sort compare (List.map Array.to_list rows) in
      let reference = sort (run plan) in
      List.for_all
        (fun level ->
          sort (run (Optimizer.optimize ~level plan)) = reference)
        [ `None; `Basic; `Full ])

let tests =
  [
    Alcotest.test_case "value compare" `Quick test_value_compare;
    QCheck_alcotest.to_alcotest value_hash_consistent;
    Alcotest.test_case "schema find" `Quick test_schema_find;
    Alcotest.test_case "table basics" `Quick test_table_basics;
    Alcotest.test_case "table index" `Quick test_table_index;
    Alcotest.test_case "ordered index" `Quick test_ordered_index;
    Alcotest.test_case "range filter via index" `Quick test_range_filter_via_index;
    Alcotest.test_case "filter 3VL" `Quick test_filter_three_valued;
    Alcotest.test_case "kleene logic" `Quick test_kleene_logic;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "joins" `Quick test_joins;
    Alcotest.test_case "join null keys" `Quick test_join_null_keys;
    Alcotest.test_case "set ops" `Quick test_set_ops;
    Alcotest.test_case "sort limit" `Quick test_sort_limit;
    Alcotest.test_case "group/aggregates" `Quick test_group;
    Alcotest.test_case "correlated exists" `Quick test_correlated_exists;
    Alcotest.test_case "optimizer join detection" `Quick
      test_optimizer_equivalence_listing_shapes;
    Alcotest.test_case "optimizer decorrelation" `Quick
      test_optimizer_decorrelates_not_exists;
    Alcotest.test_case "factor common disjunction" `Quick
      test_factor_common_disjunction;
    QCheck_alcotest.to_alcotest optimizer_preserves_filter_semantics;
    Alcotest.test_case "as_int non-finite" `Quick test_as_int_non_finite;
    Alcotest.test_case "sum domains" `Quick test_sum_domains;
    QCheck_alcotest.to_alcotest index_consistency_prop;
  ]
