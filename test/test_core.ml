(* Tests for Ds_core: relations, protocols (with cross-formulation
   equivalence), scheduler cycle, triggers, rule language, Table 1/2. *)

open Ds_core
open Ds_model
open Ds_relal

(* --- relations (Table 2) ------------------------------------------- *)

let test_table2_schema () =
  let s = Relations.schema ~extended:false in
  let names = Array.to_list (Array.map (fun (c : Schema.column) -> c.Schema.name) s) in
  Alcotest.(check (list string)) "exactly the paper's attributes"
    [ "id"; "ta"; "intrata"; "operation"; "object" ]
    names;
  let rels = Relations.create () in
  Alcotest.(check (list string)) "all scheduler tables registered"
    [
      "assignment";
      "dead";
      "failover";
      "history";
      "replication";
      "requests";
      "rte";
      "shard_assignment";
      "shards";
      "supervision";
      "workers";
    ]
    (Ds_sql.Catalog.names rels.Relations.catalog)

let test_request_roundtrip () =
  let reqs =
    [
      Request.v 3 1 Op.Read 42;
      Request.v 3 2 Op.Write 17;
      Request.terminal 3 3 Op.Commit;
    ]
  in
  List.iter
    (fun r ->
      let row = Relations.row_of_request ~extended:false r in
      let r' = Relations.request_of_row ~extended:false row in
      Alcotest.(check bool) "roundtrip" true
        (Request.key r = Request.key r'
        && Op.equal r.Request.op r'.Request.op
        && r.Request.obj = r'.Request.obj))
    reqs;
  (* Extended columns preserve SLA weight and arrival. *)
  let r =
    Request.make ~sla:Sla.premium ~arrival:1.5 ~id:9 ~ta:1 ~intrata:1
      ~op:Op.Read ~obj:3 ()
  in
  let r' =
    Relations.request_of_row ~extended:true
      (Relations.row_of_request ~extended:true r)
  in
  Alcotest.(check bool) "sla roundtrip" true
    (r'.Request.sla.Sla.tier = Sla.Premium
    && r'.Request.sla.Sla.weight = Sla.premium.Sla.weight
    && r'.Request.arrival = 1.5)

let test_move_to_history () =
  let rels = Relations.create () in
  Relations.insert_pending_batch rels
    [ Request.v 1 1 Op.Read 10; Request.v 1 2 Op.Write 11; Request.v 2 1 Op.Read 12 ];
  let moved = Relations.move_to_history rels [ (2, 1); (1, 1) ] in
  Alcotest.(check int) "moved" 2 (List.length moved);
  Alcotest.(check (list (pair int int))) "order preserved"
    [ (2, 1); (1, 1) ]
    (List.map Request.key moved);
  Alcotest.(check int) "pending left" 1 (Relations.pending_count rels);
  Alcotest.(check int) "history" 2 (Relations.history_count rels);
  Alcotest.(check int) "rte mirrors history" 2 (Table.row_count rels.Relations.rte);
  (* Unknown keys ignored. *)
  Alcotest.(check int) "unknown ignored" 0
    (List.length (Relations.move_to_history rels [ (9, 9) ]))

let test_prune_history () =
  let rels = Relations.create () in
  let rows r = Relations.row_of_request ~extended:false r in
  List.iter
    (fun r -> Table.insert rels.Relations.history (rows r))
    [
      Request.v 1 1 Op.Read 10;
      Request.terminal 1 2 Op.Commit;
      Request.v 2 1 Op.Write 20;
    ];
  let removed = Relations.prune_history rels in
  Alcotest.(check int) "removed finished txn rows" 2 removed;
  Alcotest.(check int) "kept active txn" 1 (Relations.history_count rels)

(* --- protocol equivalence ------------------------------------------ *)

let load_case rels ~pending ~history =
  Relations.clear rels;
  List.iter
    (fun r ->
      Table.insert rels.Relations.history
        (Relations.row_of_request ~extended:false r))
    history;
  Relations.insert_pending_batch rels pending

let qualify proto ~pending ~history =
  let sched = Scheduler.create proto in
  load_case (Scheduler.relations sched) ~pending ~history;
  let qualified, _ = Scheduler.cycle sched in
  List.map Request.key qualified

(* All five SS2PL formulations must agree on random request batches. *)
let ss2pl_equivalence =
  QCheck2.Test.make ~name:"SS2PL: SQL(3 levels) = Datalog = OCaml oracle"
    ~count:60
    QCheck2.Gen.(triple small_int (int_range 1 8) (int_range 1 12))
    (fun (seed, n_txns, n_objects) ->
      let rng = Ds_sim.Rng.create seed in
      let all = Helpers.random_requests rng ~n_txns ~ops_per_txn:4 ~n_objects in
      (* Random split into history and pending, txn-wise to stay realistic. *)
      let history, pending =
        List.partition (fun (r : Request.t) -> r.Request.ta mod 2 = 0) all
      in
      let reference = Oracle.ss2pl_qualify ~pending ~history in
      List.for_all
        (fun proto -> qualify proto ~pending ~history = reference)
        [
          Builtin.ss2pl_sql;
          Builtin.ss2pl_sql_at `Basic;
          Builtin.ss2pl_sql_at `None;
          Builtin.ss2pl_datalog;
        ])

let test_ss2pl_blocks_locked () =
  (* T1 read-locked 10 (uncommitted); T2 wrote 20 (uncommitted);
     T5 wrote 50 and committed. *)
  let history =
    [
      Request.v 1 1 Op.Read 10;
      Request.v 2 1 Op.Write 20;
      Request.v 5 1 Op.Write 50;
      Request.terminal 5 2 Op.Commit;
    ]
  in
  let pending =
    [
      Request.v 3 1 Op.Write 10;
      (* blocked: read lock by T1 *)
      Request.v 4 1 Op.Read 20;
      (* blocked: write lock by T2 *)
      Request.v 6 1 Op.Read 50;
      (* free: T5 committed *)
      Request.v 1 2 Op.Write 10;
      (* own lock: allowed *)
      Request.terminal 7 1 Op.Commit;
      (* terminals always qualify *)
    ]
  in
  let q = qualify Builtin.ss2pl_sql ~pending ~history in
  Alcotest.(check (list (pair int int)))
    "expected qualifying set"
    [ (1, 2); (6, 1); (7, 1) ]
    (Helpers.sorted_keys q)

let test_ss2pl_pending_conflicts () =
  (* Two pending writes on one object: lower TA wins. *)
  let pending = [ Request.v 9 1 Op.Write 5; Request.v 8 1 Op.Write 5 ] in
  let q = qualify Builtin.ss2pl_sql ~pending ~history:[] in
  Alcotest.(check (list (pair int int))) "lower ta first" [ (8, 1) ] q;
  (* Read-read pending never conflicts. *)
  let pending = [ Request.v 9 1 Op.Read 5; Request.v 8 1 Op.Read 5 ] in
  let q = qualify Builtin.ss2pl_sql ~pending ~history:[] in
  Alcotest.(check int) "both reads pass" 2 (List.length q)

let test_ss2pl_ordered_protocol () =
  (* Plain Listing 1 lets intrata 2 overtake a blocked intrata 1; the ordered
     variant does not. *)
  let history = [ Request.v 1 1 Op.Write 10 ] in
  let pending = [ Request.v 2 1 Op.Write 10; Request.v 2 2 Op.Read 30 ] in
  let plain = qualify Builtin.ss2pl_sql ~pending ~history in
  Alcotest.(check (list (pair int int))) "plain overtakes" [ (2, 2) ] plain;
  List.iter
    (fun proto ->
      let ordered = qualify proto ~pending ~history in
      Alcotest.(check (list (pair int int)))
        ("no overtaking: " ^ proto.Protocol.name) [] ordered)
    [ Builtin.ss2pl_ordered_sql; Builtin.ss2pl_ordered_datalog ]

let test_ordered_equivalence_sql_datalog () =
  let rng = Ds_sim.Rng.create 31 in
  for _ = 1 to 20 do
    let all = Helpers.random_requests rng ~n_txns:6 ~ops_per_txn:4 ~n_objects:8 in
    let history, pending =
      List.partition (fun (r : Request.t) -> r.Request.ta mod 2 = 0) all
    in
    let a = qualify Builtin.ss2pl_ordered_sql ~pending ~history in
    let b = qualify Builtin.ss2pl_ordered_datalog ~pending ~history in
    if a <> b then
      Alcotest.failf "ordered SQL and Datalog disagree: %d vs %d keys"
        (List.length a) (List.length b)
  done

let test_read_committed_relaxation () =
  (* Reads are not blocked by read locks, writers do not wait for readers. *)
  let history = [ Request.v 1 1 Op.Read 10 ] in
  let pending = [ Request.v 2 1 Op.Write 10 ] in
  Alcotest.(check int) "ss2pl blocks writer on read lock" 0
    (List.length (qualify Builtin.ss2pl_sql ~pending ~history));
  Alcotest.(check int) "read-committed lets writer through" 1
    (List.length (qualify Builtin.read_committed_sql ~pending ~history));
  (* But dirty reads stay impossible: write lock blocks a read. *)
  let history = [ Request.v 1 1 Op.Write 10 ] in
  let pending = [ Request.v 2 1 Op.Read 10 ] in
  Alcotest.(check int) "no dirty read" 0
    (List.length (qualify Builtin.read_committed_sql ~pending ~history));
  (* SQL and Datalog variants agree. *)
  let rng = Ds_sim.Rng.create 77 in
  for _ = 1 to 20 do
    let all = Helpers.random_requests rng ~n_txns:6 ~ops_per_txn:4 ~n_objects:8 in
    let history, pending =
      List.partition (fun (r : Request.t) -> r.Request.ta mod 2 = 0) all
    in
    let a = qualify Builtin.read_committed_sql ~pending ~history in
    let b = qualify Builtin.read_committed_datalog ~pending ~history in
    if a <> b then Alcotest.fail "read-committed SQL and Datalog disagree"
  done

let test_rationing () =
  let proto = Builtin.rationing ~threshold:100 in
  (* Category A (obj < 100): full SS2PL -> read lock blocks writer. *)
  let history = [ Request.v 1 1 Op.Read 50 ] in
  let pending = [ Request.v 2 1 Op.Write 50 ] in
  Alcotest.(check int) "A-object strict" 0
    (List.length (qualify proto ~pending ~history));
  (* Category C (obj >= 100): the same situation is allowed. *)
  let history = [ Request.v 1 1 Op.Read 500 ] in
  let pending = [ Request.v 2 1 Op.Write 500 ] in
  Alcotest.(check int) "C-object relaxed" 1
    (List.length (qualify proto ~pending ~history));
  (* Write-write still ordered even on C objects. *)
  let history = [ Request.v 1 1 Op.Write 500 ] in
  let pending = [ Request.v 2 1 Op.Write 500 ] in
  Alcotest.(check int) "C-object write-write blocked" 0
    (List.length (qualify proto ~pending ~history))

let test_reader_offload () =
  (* Reads pass everything: uncommitted writer locks, pending writes. *)
  let history = [ Request.v 1 1 Op.Write 10 ] in
  let pending = [ Request.v 2 1 Op.Read 10; Request.v 3 1 Op.Write 10 ] in
  let q = qualify Builtin.reader_offload ~pending ~history in
  Alcotest.(check (list (pair int int))) "read passes, write blocked"
    [ (2, 1) ]
    (Helpers.sorted_keys q);
  (* Writes still write-write ordered among themselves when unlocked. *)
  let pending = [ Request.v 5 1 Op.Write 20; Request.v 4 1 Op.Write 20 ] in
  let q = qualify Builtin.reader_offload ~pending ~history:[] in
  Alcotest.(check (list (pair int int))) "lower-ta write wins" [ (4, 1) ] q;
  (* A pending read never blocks a write (unlike SS2PL). *)
  let pending = [ Request.v 4 1 Op.Read 30; Request.v 5 1 Op.Write 30 ] in
  Alcotest.(check int) "write ignores pending read" 2
    (List.length (qualify Builtin.reader_offload ~pending ~history:[]))

let test_rationing_dynamic () =
  (* The category boundary moves at runtime, between cycles, on a live
     scheduler. *)
  let proto, set_threshold = Builtin.rationing_dynamic ~initial_threshold:100 () in
  let sched = Scheduler.create ~prune_history_each_cycle:false proto in
  let rels = Scheduler.relations sched in
  let situation () =
    Relations.clear rels;
    Table.insert rels.Relations.history
      (Relations.row_of_request ~extended:false (Request.v 1 1 Op.Read 50));
    Scheduler.submit sched (Request.v 2 1 Op.Write 50)
  in
  situation ();
  let q, _ = Scheduler.cycle sched in
  Alcotest.(check int) "object 50 strict under threshold 100" 0 (List.length q);
  (* Lower the boundary: object 50 becomes category C -> relaxed. *)
  set_threshold 10;
  situation ();
  let q, _ = Scheduler.cycle sched in
  Alcotest.(check int) "object 50 relaxed under threshold 10" 1 (List.length q);
  (* And back. *)
  set_threshold 1000;
  situation ();
  let q, _ = Scheduler.cycle sched in
  Alcotest.(check int) "strict again" 0 (List.length q)

let test_fcfs_and_sla_ordering () =
  let sched = Scheduler.create ~extended:true Builtin.sla_ordered in
  let mk sla ta obj =
    Request.make ~sla ~arrival:(float_of_int ta) ~id:ta ~ta ~intrata:1
      ~op:Op.Read ~obj ()
  in
  List.iter (Scheduler.submit sched)
    [ mk Sla.free 1 10; mk Sla.premium 2 20; mk Sla.standard 3 30 ];
  let qualified, _ = Scheduler.cycle sched in
  Alcotest.(check (list int)) "premium first"
    [ 2; 3; 1 ]
    (List.map (fun (r : Request.t) -> r.Request.ta) qualified);
  (* FCFS keeps id order regardless of class. *)
  let sched = Scheduler.create ~extended:true Builtin.fcfs in
  List.iter (Scheduler.submit sched)
    [ mk Sla.free 1 10; mk Sla.premium 2 20 ];
  let qualified, _ = Scheduler.cycle sched in
  Alcotest.(check (list int)) "fcfs id order" [ 1; 2 ]
    (List.map (fun (r : Request.t) -> r.Request.ta) qualified)

(* --- scheduler cycle -------------------------------------------------- *)

let test_cycle_stats_and_requeue () =
  let sched = Scheduler.create Builtin.ss2pl_sql in
  List.iter (Scheduler.submit sched)
    [ Request.v 1 1 Op.Write 5; Request.v 2 1 Op.Write 5 ];
  let q1, s1 = Scheduler.cycle sched in
  Alcotest.(check int) "drained both" 2 s1.Scheduler.drained;
  Alcotest.(check int) "one qualified" 1 s1.Scheduler.qualified;
  Alcotest.(check (list (pair int int))) "t1 won" [ (1, 1) ]
    (List.map Request.key q1);
  (* Second cycle: T2 still blocked by T1's (uncommitted) write lock now in
     history. *)
  let q2, _ = Scheduler.cycle sched in
  Alcotest.(check int) "still blocked" 0 (List.length q2);
  (* After T1 commits, T2 unblocks. *)
  Scheduler.submit sched (Request.terminal 1 2 Op.Commit);
  let q3, _ = Scheduler.cycle sched in
  Alcotest.(check bool) "commit qualified" true
    (List.exists (fun r -> Request.key r = (1, 2)) q3);
  let q4, _ = Scheduler.cycle sched in
  Alcotest.(check (list (pair int int))) "t2 unblocked" [ (2, 1) ]
    (List.map Request.key q4);
  Alcotest.(check int) "cycles counted" 4 (Scheduler.cycles_run sched)

let test_passthrough_mode () =
  let sched = Scheduler.create Builtin.ss2pl_sql in
  List.iter (Scheduler.submit sched)
    [ Request.v 1 1 Op.Write 5; Request.v 2 1 Op.Write 5 ];
  let q, s = Scheduler.cycle ~passthrough:true sched in
  Alcotest.(check int) "everything forwarded" 2 (List.length q);
  Alcotest.(check (float 0.)) "no query time" 0. s.Scheduler.times.Scheduler.query;
  Alcotest.(check int) "nothing retained" 0 (Scheduler.pending_count sched)

let test_passthrough_preserves_tables () =
  (* Passthrough must be a pure FIFO drain: pre-existing scheduler-database
     state (a history row from an earlier qualified request, a pending row
     from a blocked one) stays exactly as it was, and the batch comes back in
     submission order even when it is full of conflicts. *)
  let sched = Scheduler.create Builtin.ss2pl_sql in
  Scheduler.submit sched (Request.v 7 1 Op.Write 99);
  ignore (Scheduler.cycle sched);
  (* T7 holds 99 in history *)
  Scheduler.submit sched (Request.v 8 1 Op.Write 99);
  ignore (Scheduler.cycle sched);
  (* T8 blocked, stays pending *)
  let rels = Scheduler.relations sched in
  let pending_before = Relations.pending_count rels in
  let history_before = Relations.history_count rels in
  Alcotest.(check int) "setup: one pending" 1 pending_before;
  let batch =
    [
      Request.v 1 1 Op.Write 5;
      Request.v 2 1 Op.Write 5;
      Request.v 3 1 Op.Read 5;
      Request.terminal 1 2 Op.Commit;
    ]
  in
  List.iter (Scheduler.submit sched) batch;
  let q, _ = Scheduler.cycle ~passthrough:true sched in
  Alcotest.(check (list (pair int int))) "fifo submission order"
    (List.map Request.key batch) (List.map Request.key q);
  Alcotest.(check int) "queue drained" 0 (Scheduler.queue_length sched);
  Alcotest.(check int) "pending untouched" pending_before
    (Relations.pending_count rels);
  Alcotest.(check int) "history untouched" history_before
    (Relations.history_count rels);
  (* Back in scheduling mode, the pre-existing blocked request is still
     there and still blocked by T7's write lock. *)
  let q, _ = Scheduler.cycle sched in
  Alcotest.(check int) "t8 still blocked" 0 (List.length q)

let test_abort_txn_releases () =
  let sched = Scheduler.create Builtin.ss2pl_sql in
  (* T1 writes 5 and stalls; T2 waits on it. *)
  Scheduler.submit sched (Request.v 1 1 Op.Write 5);
  ignore (Scheduler.cycle sched);
  Scheduler.submit sched (Request.v 2 1 Op.Write 5);
  let q, _ = Scheduler.cycle sched in
  Alcotest.(check int) "blocked" 0 (List.length q);
  let dropped = Scheduler.abort_txn sched 1 in
  Alcotest.(check int) "nothing pending for t1" 0 dropped;
  let q, _ = Scheduler.cycle sched in
  Alcotest.(check (list (pair int int))) "released" [ (2, 1) ]
    (List.map Request.key q)

let test_abort_txn_drops_pending () =
  (* abort_txn on a transaction with a *pending* (blocked) request: the row
     is dropped from [requests], its logical locks are released, and a
     previously blocked conflicting request qualifies on the next cycle. *)
  let sched = Scheduler.create Builtin.ss2pl_sql in
  Scheduler.submit sched (Request.v 3 1 Op.Write 7);
  ignore (Scheduler.cycle sched);
  (* T3 holds 7 *)
  Scheduler.submit sched (Request.v 1 1 Op.Write 5);
  ignore (Scheduler.cycle sched);
  (* T1 holds 5 *)
  Scheduler.submit sched (Request.v 1 2 Op.Write 7);
  (* T1 blocked by T3 *)
  Scheduler.submit sched (Request.v 2 1 Op.Write 5);
  (* T2 blocked by T1 *)
  let q, _ = Scheduler.cycle sched in
  Alcotest.(check int) "both blocked" 0 (List.length q);
  Alcotest.(check int) "both pending" 2 (Scheduler.pending_count sched);
  let dropped = Scheduler.abort_txn sched 1 in
  Alcotest.(check int) "t1's pending request dropped" 1 dropped;
  Alcotest.(check int) "only t2 left pending" 1 (Scheduler.pending_count sched);
  let q, _ = Scheduler.cycle sched in
  Alcotest.(check (list (pair int int))) "t2 acquired t1's released lock"
    [ (2, 1) ]
    (List.map Request.key q)

let test_abort_marker_lifecycle () =
  (* Markers use a reserved sentinel (negative INTRATA/id), round-trip
     through [history], never collide with real requests — even ones using
     intrata 999 and billion-range ids, the encoding old markers forged —
     and pruning sweeps the aborted transaction away. *)
  let sched = Scheduler.create ~prune_history_each_cycle:false Builtin.ss2pl_sql in
  let rels = Scheduler.relations sched in
  Scheduler.submit sched
    (Request.make ~id:1_000_000_002 ~ta:1 ~intrata:999 ~op:Op.Write ~obj:5 ());
  let q, _ = Scheduler.cycle sched in
  Alcotest.(check int) "hostile ids still schedule" 1 (List.length q);
  ignore (Scheduler.abort_txn sched 1);
  let hist = Relations.history_requests rels in
  let markers = List.filter Request.is_abort_marker hist in
  Alcotest.(check int) "exactly one marker" 1 (List.length markers);
  let m = List.hd markers in
  Alcotest.(check int) "marker carries the ta" 1 m.Request.ta;
  Alcotest.(check bool) "marker distinct from every real row" true
    (List.for_all
       (fun r -> Request.is_abort_marker r || r.Request.id <> m.Request.id)
       hist);
  Alcotest.check_raises "markers can't enter requests"
    (Invalid_argument "Relations: abort markers belong in history, not requests")
    (fun () -> Relations.insert_pending rels (Request.abort_marker ~ta:2 ~seq:0 ()));
  let removed = Relations.prune_history rels in
  Alcotest.(check bool) "prune swept the aborted txn" true (removed >= 2);
  Alcotest.(check int) "history empty" 0 (Relations.history_count rels)

(* --- trigger ----------------------------------------------------------- *)

let test_trigger () =
  Alcotest.(check bool) "time due" true
    (Trigger.due (Trigger.Time_lapse 0.01) ~queue_len:0 ~elapsed:0.02);
  Alcotest.(check bool) "time not due" false
    (Trigger.due (Trigger.Time_lapse 0.01) ~queue_len:100 ~elapsed:0.001);
  Alcotest.(check bool) "fill due" true
    (Trigger.due (Trigger.Fill_level 10) ~queue_len:10 ~elapsed:0.);
  Alcotest.(check bool) "hybrid either" true
    (Trigger.due (Trigger.Hybrid (0.01, 10)) ~queue_len:10 ~elapsed:0.);
  Alcotest.(check (option (float 0.))) "period" (Some 0.01)
    (Trigger.period (Trigger.Time_lapse 0.01));
  Alcotest.(check (option (float 0.))) "fill has no period" None
    (Trigger.period (Trigger.Fill_level 5))

(* --- rule language ------------------------------------------------------ *)

let test_rule_lang_parse () =
  let def =
    Rule_lang.parse
      {|# premium customers first
protocol premium-first
guarantee serializable
rules ss2pl
order by weight desc, arrival asc
limit 200|}
  in
  Alcotest.(check string) "name" "premium-first" def.Rule_lang.name;
  Alcotest.(check bool) "rules" true (def.Rule_lang.rules = `Builtin "ss2pl");
  Alcotest.(check bool) "order" true
    (def.Rule_lang.order_by
    = [ (Rule_lang.Weight, `Desc); (Rule_lang.Arrival, `Asc) ]);
  Alcotest.(check (option int)) "limit" (Some 200) def.Rule_lang.limit

let test_rule_lang_errors () =
  let expect src =
    match Rule_lang.parse src with
    | exception Rule_lang.Rule_error _ -> ()
    | _ -> Alcotest.failf "expected rule error: %s" src
  in
  expect "rules ss2pl";
  (* no protocol name *)
  expect "protocol p";
  (* no rules *)
  expect "protocol p\nrules nope\nbogus directive";
  expect "protocol p\nrules ss2pl\nlimit -1";
  expect "protocol p\nrules ss2pl\norder weight"

let test_rule_lang_compile_and_run () =
  let proto =
    Rule_lang.compile
      {|protocol premium-first
guarantee serializable
rules ss2pl
order by weight desc
limit 2|}
  in
  let sched = Scheduler.create ~extended:true proto in
  let mk sla ta =
    Request.make ~sla ~id:ta ~ta ~intrata:1 ~op:Op.Read ~obj:(100 + ta) ()
  in
  List.iter (Scheduler.submit sched)
    [ mk Sla.free 1; mk Sla.premium 2; mk Sla.standard 3 ];
  let q, _ = Scheduler.cycle sched in
  Alcotest.(check (list int)) "weighted, limited" [ 2; 3 ]
    (List.map (fun (r : Request.t) -> r.Request.ta) q)

let test_rule_lang_inline_datalog () =
  let proto =
    Rule_lang.compile
      ({|protocol my-rc
guarantee read-committed
rules datalog {
|} ^ Datalog_rules.read_committed ^ {|
}|})
  in
  let history = [ Request.v 1 1 Op.Read 10 ] in
  let pending = [ Request.v 2 1 Op.Write 10 ] in
  Alcotest.(check int) "behaves like read-committed" 1
    (List.length (qualify proto ~pending ~history))

(* --- related work / productivity ---------------------------------------- *)

let test_table1 () =
  let s = Related.render_table () in
  List.iter
    (fun name ->
      Alcotest.(check bool) ("row " ^ name) true (Helpers.contains s name))
    [ "EQMS"; "Ganymed"; "WLMS"; "C-JDBC"; "GP"; "WebQoS"; "QShuffler"; "this work" ];
  (* The paper's point: no related approach is declarative. *)
  List.iter
    (fun (a : Related.approach) ->
      Alcotest.(check bool) "not declarative" false a.Related.features.Related.declarative)
    Related.paper_rows;
  Alcotest.(check bool) "ours is" true
    Related.declarative_scheduler.Related.features.Related.declarative

let test_spec_loc_comparison () =
  (* The productivity claim: the declarative specs are much smaller than the
     imperative implementation. *)
  let sql = Builtin.ss2pl_sql.Protocol.spec_loc in
  let datalog = Builtin.ss2pl_datalog.Protocol.spec_loc in
  let ocaml = Builtin.ss2pl_ocaml.Protocol.spec_loc in
  Alcotest.(check bool) "datalog < sql" true (datalog < sql);
  Alcotest.(check bool) "sql < ocaml" true (sql < ocaml)

let test_oracle_loc_honest () =
  (* implementation_loc must track the actual source file size. *)
  let file = "../lib/core/oracle.ml" in
  if Sys.file_exists file then begin
    let ic = open_in file in
    let n = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then incr n
       done
     with End_of_file -> close_in ic);
    Alcotest.(check bool) "within 20% of recorded count" true
      (abs (!n - Oracle.implementation_loc) < Oracle.implementation_loc / 5)
  end

(* Relaxation is monotone: dropping blocking rules can only admit more.
   c2pl <= ss2pl <= read-committed <= reader-offload, as sets of qualified
   keys, on any batch. *)
let protocol_monotonicity =
  QCheck2.Test.make ~name:"protocol relaxation chain is monotone" ~count:60
    QCheck2.Gen.(triple small_int (int_range 1 8) (int_range 1 10))
    (fun (seed, n_txns, n_objects) ->
      let rng = Ds_sim.Rng.create seed in
      let all = Helpers.random_requests rng ~n_txns ~ops_per_txn:4 ~n_objects in
      let history, pending =
        List.partition (fun (r : Request.t) -> r.Request.ta mod 2 = 0) all
      in
      let keys proto = Helpers.sorted_keys (qualify proto ~pending ~history) in
      let subset a b = List.for_all (fun k -> List.mem k b) a in
      let c2pl = keys Builtin.c2pl in
      let ss2pl = keys Builtin.ss2pl_sql in
      let rc = keys Builtin.read_committed_sql in
      let ro = keys Builtin.reader_offload in
      let all_pending = Helpers.sorted_keys (List.map Request.key pending) in
      subset c2pl ss2pl && subset ss2pl rc && subset rc ro
      && subset ro all_pending)

(* --- conservative 2PL ----------------------------------------------------- *)

let test_c2pl_all_or_nothing () =
  (* T2's write on 5 conflicts with T1's pending write; under C2PL the whole
     of T2 waits, including its independent read. *)
  let pending =
    [
      Request.v 1 1 Op.Write 5;
      Request.v 2 1 Op.Write 5;
      Request.v 2 2 Op.Read 9;
      Request.terminal 2 3 Op.Commit;
      Request.v 3 1 Op.Read 7;
    ]
  in
  let q = qualify Builtin.c2pl ~pending ~history:[] in
  Alcotest.(check (list (pair int int))) "only T1 and T3 admitted"
    [ (1, 1); (3, 1) ]
    (Helpers.sorted_keys q);
  (* Listing 1 by contrast admits T2's non-conflicting read. *)
  let q = qualify Builtin.ss2pl_sql ~pending ~history:[] in
  Alcotest.(check bool) "ss2pl admits T2's read" true
    (List.mem (2, 2) q);
  (* Held locks block the whole transaction too. *)
  let history = [ Request.v 9 1 Op.Read 7 ] in
  let pending = [ Request.v 10 1 Op.Write 7; Request.v 10 2 Op.Read 50 ] in
  Alcotest.(check int) "blocked by history lock" 0
    (List.length (qualify Builtin.c2pl ~pending ~history))

let test_batch_sim_progress () =
  let s =
    Batch_sim.run
      {
        Batch_sim.default_config with
        Batch_sim.arrival_rate = 10.;
        duration = 3.;
        spec = { Ds_workload.Spec.small with Ds_workload.Spec.n_objects = 100 };
      }
  in
  Alcotest.(check bool) "offered txns" true (s.Batch_sim.offered_txns > 10);
  Alcotest.(check bool) "completions happen" true (s.Batch_sim.completed_txns > 0);
  Alcotest.(check bool) "completions bounded by offers" true
    (s.Batch_sim.completed_txns <= s.Batch_sim.offered_txns);
  (* Determinism. *)
  let s2 =
    Batch_sim.run
      {
        Batch_sim.default_config with
        Batch_sim.arrival_rate = 10.;
        duration = 3.;
        spec = { Ds_workload.Spec.small with Ds_workload.Spec.n_objects = 100 };
      }
  in
  Alcotest.(check int) "deterministic" s.Batch_sim.completed_txns
    s2.Batch_sim.completed_txns

(* --- adaptive consistency ------------------------------------------------ *)

let test_adaptive_switching () =
  let adaptive =
    Adaptive.make ~strict:Builtin.ss2pl_ocaml ~relaxed:Builtin.read_committed_sql
      ~high_watermark:5 ~low_watermark:1 ()
  in
  let sched = Scheduler.create (Adaptive.protocol adaptive) in
  Alcotest.(check bool) "starts strict" true (Adaptive.mode adaptive = `Strict);
  (* Low load: one conflicting pair; strict semantics visible (writer blocked
     by a read lock in history). *)
  let rels = Scheduler.relations sched in
  Table.insert rels.Relations.history
    (Relations.row_of_request ~extended:false (Request.v 1 1 Op.Read 10));
  Scheduler.submit sched (Request.v 2 1 Op.Write 10);
  let q, _ = Scheduler.cycle sched in
  Alcotest.(check int) "strict blocks writer" 0 (List.length q);
  (* The blocked request stays pending; pile more on until the backlog
     crosses the watermark -> relaxed mode lets the writer through. *)
  for ta = 3 to 8 do
    Scheduler.submit sched (Request.v ta 1 Op.Read (100 + ta))
  done;
  let q, stats = Scheduler.cycle sched in
  Alcotest.(check bool) "watermark crossed" true
    (stats.Scheduler.pending_before + stats.Scheduler.drained >= 5);
  Alcotest.(check bool) "switched to relaxed" true
    (Adaptive.mode adaptive = `Relaxed);
  Alcotest.(check bool) "writer released under relaxed rules" true
    (List.exists (fun r -> Request.key r = (2, 1)) q);
  (* Backlog drained: next cycle falls back to strict. *)
  let _, _ = Scheduler.cycle sched in
  Alcotest.(check bool) "recovered to strict" true
    (Adaptive.mode adaptive = `Strict);
  Alcotest.(check int) "two switches" 2 (Adaptive.switches adaptive)

let test_adaptive_hysteresis () =
  (* A bursty load whose backlog oscillates INSIDE the hysteresis band must
     not flap the protocol: switches happen only when the load genuinely
     crosses a watermark, and the scheduler settles back to strict once the
     burst drains. *)
  let adaptive =
    Adaptive.make ~strict:Builtin.ss2pl_ocaml ~relaxed:Builtin.read_committed_sql
      ~high_watermark:8 ~low_watermark:2 ()
  in
  let sched = Scheduler.create (Adaptive.protocol adaptive) in
  let next_ta = ref 0 in
  (* [load n] runs one cycle with n independent reads in the queue; they all
     qualify, so the backlog seen by the adaptive protocol is exactly n. *)
  let load n =
    for _ = 1 to n do
      incr next_ta;
      Scheduler.submit sched (Request.v !next_ta 1 Op.Read (1000 + !next_ta))
    done;
    ignore (Scheduler.cycle sched)
  in
  let burst () =
    load 12;
    (* cross the high watermark *)
    Alcotest.(check bool) "burst switches to relaxed" true
      (Adaptive.mode adaptive = `Relaxed);
    (* mid-band load (between low=2 and high=8): mode must hold *)
    for _ = 1 to 10 do
      load 5;
      Alcotest.(check bool) "mid-band holds relaxed" true
        (Adaptive.mode adaptive = `Relaxed)
    done;
    load 0;
    (* drain below the low watermark *)
    Alcotest.(check bool) "drain recovers strict" true
      (Adaptive.mode adaptive = `Strict);
    for _ = 1 to 10 do
      load 5;
      Alcotest.(check bool) "mid-band holds strict" true
        (Adaptive.mode adaptive = `Strict)
    done
  in
  burst ();
  burst ();
  (* 44 cycles, 40 of them inside the band: exactly two switches per burst *)
  Alcotest.(check int) "no flapping: two switches per burst" 4
    (Adaptive.switches adaptive);
  Alcotest.(check bool) "ends strict" true (Adaptive.mode adaptive = `Strict)

let test_adaptive_validation () =
  match
    Adaptive.make ~strict:Builtin.ss2pl_sql ~relaxed:Builtin.read_committed_sql
      ~high_watermark:1 ~low_watermark:5 ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected watermark validation error"

(* --- overhead probe ------------------------------------------------------ *)

let test_overhead_probe () =
  let setup =
    { Overhead_probe.default_setup with Overhead_probe.n_clients = 40 }
  in
  let m = Overhead_probe.measure ~runs:2 setup Builtin.ss2pl_ocaml in
  Alcotest.(check int) "one pending per client" 40 m.Overhead_probe.pending;
  Alcotest.(check bool) "history populated" true (m.Overhead_probe.history > 100);
  Alcotest.(check bool) "most qualify at low contention" true
    (m.Overhead_probe.qualified > 20);
  Alcotest.(check bool) "time positive" true (m.Overhead_probe.cycle_time > 0.);
  let amortized = Overhead_probe.amortized_overhead m ~total_stmts:4000 in
  Alcotest.(check bool) "amortized scales" true
    (amortized > 0. && amortized < 10.)

let tests =
  [
    Alcotest.test_case "table 2 schema" `Quick test_table2_schema;
    Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
    Alcotest.test_case "move to history" `Quick test_move_to_history;
    Alcotest.test_case "prune history" `Quick test_prune_history;
    QCheck_alcotest.to_alcotest ss2pl_equivalence;
    Alcotest.test_case "ss2pl blocks on locks" `Quick test_ss2pl_blocks_locked;
    Alcotest.test_case "ss2pl pending conflicts" `Quick test_ss2pl_pending_conflicts;
    Alcotest.test_case "ss2pl ordered variant" `Quick test_ss2pl_ordered_protocol;
    Alcotest.test_case "ordered sql=datalog" `Quick test_ordered_equivalence_sql_datalog;
    Alcotest.test_case "read committed relaxation" `Quick
      test_read_committed_relaxation;
    Alcotest.test_case "consistency rationing" `Quick test_rationing;
    Alcotest.test_case "dynamic rationing threshold" `Quick test_rationing_dynamic;
    Alcotest.test_case "reader offload" `Quick test_reader_offload;
    Alcotest.test_case "fcfs and sla ordering" `Quick test_fcfs_and_sla_ordering;
    Alcotest.test_case "cycle stats and requeue" `Quick test_cycle_stats_and_requeue;
    Alcotest.test_case "passthrough mode" `Quick test_passthrough_mode;
    Alcotest.test_case "passthrough preserves tables" `Quick
      test_passthrough_preserves_tables;
    Alcotest.test_case "abort releases locks" `Quick test_abort_txn_releases;
    Alcotest.test_case "abort drops pending + unblocks" `Quick
      test_abort_txn_drops_pending;
    Alcotest.test_case "abort marker lifecycle" `Quick
      test_abort_marker_lifecycle;
    Alcotest.test_case "trigger conditions" `Quick test_trigger;
    Alcotest.test_case "rule lang parse" `Quick test_rule_lang_parse;
    Alcotest.test_case "rule lang errors" `Quick test_rule_lang_errors;
    Alcotest.test_case "rule lang compile/run" `Quick test_rule_lang_compile_and_run;
    Alcotest.test_case "rule lang inline datalog" `Quick test_rule_lang_inline_datalog;
    Alcotest.test_case "table 1" `Quick test_table1;
    Alcotest.test_case "spec size comparison" `Quick test_spec_loc_comparison;
    Alcotest.test_case "oracle loc honest" `Quick test_oracle_loc_honest;
    QCheck_alcotest.to_alcotest protocol_monotonicity;
    Alcotest.test_case "c2pl all-or-nothing" `Quick test_c2pl_all_or_nothing;
    Alcotest.test_case "batch sim progress" `Quick test_batch_sim_progress;
    Alcotest.test_case "adaptive switching" `Quick test_adaptive_switching;
    Alcotest.test_case "adaptive hysteresis" `Quick test_adaptive_hysteresis;
    Alcotest.test_case "adaptive validation" `Quick test_adaptive_validation;
    Alcotest.test_case "overhead probe" `Quick test_overhead_probe;
  ]
