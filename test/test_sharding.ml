(* Sharded middleware: routing, the cross-shard barrier, S=1 identity with
   the single-scheduler path, merged-schedule checking and crash recovery
   across journal segments. *)

open Ds_core
open Ds_model

let spec ?(access = Ds_workload.Spec.Uniform) ?(n_objects = 400) () =
  {
    Ds_workload.Spec.small with
    Ds_workload.Spec.n_objects;
    access;
    selects_per_txn = 3;
    updates_per_txn = 3;
  }

let cfg ?(shards = 1) ?(n_clients = 12) ?(duration = 2.) ?spec:(sp = spec ())
    () =
  {
    Middleware.default_config with
    Middleware.n_clients;
    duration;
    spec = sp;
    shards;
    charge_scheduler_time = false;
  }

let keys rs = List.map Request.key rs

(* Delivery-order candidate schedule, resolved against the merged rte the
   same way the swarm runner builds its [merged]. *)
let merged_schedule (h : Middleware.handle) =
  let by_key =
    Hashtbl.create (2 * List.length h.Middleware.merged_rte)
  in
  List.iter
    (fun r -> Hashtbl.replace by_key (Request.key r) r)
    h.Middleware.merged_rte;
  List.filter_map
    (fun key -> Hashtbl.find_opt by_key key)
    h.Middleware.merged_execution_order

let check_clean ?(allow_reorder = false) ~shards (h : Middleware.handle) =
  let report =
    Ds_check.Equivalence.check_sharded ~shards ~shard_of:h.Middleware.shard_of
      ~reference:h.Middleware.merged_rte ~candidate:(merged_schedule h) ()
  in
  let fatal =
    List.filter
      (fun v ->
        match v with
        | Ds_check.Equivalence.Conflict_reordered _ -> not allow_reorder
        | _ -> true)
      report.Ds_check.Equivalence.violations
  in
  if fatal <> [] then
    Alcotest.failf "sharded checker found violations: %a"
      Ds_check.Equivalence.pp_report
      { report with Ds_check.Equivalence.violations = fatal }

let check_serializable rte =
  let report =
    Ds_check.Serializability.check_committed
      (Ds_check.Conflict_graph.events_of_requests rte)
  in
  if not (Ds_check.Serializability.is_clean report) then
    Alcotest.failf "merged rte not serializable: %a"
      Ds_check.Serializability.pp_report report

(* shards=1 must be the single-scheduler middleware, bit for bit: same
   deterministic counters, same rte sequence, same delivery order. *)
let test_s1_identity () =
  let stats_a, sched = Middleware.run_full (cfg ()) in
  let stats_b, h = Middleware.run_sharded (cfg ()) in
  Alcotest.(check int) "committed" stats_a.Middleware.committed_txns
    stats_b.Middleware.committed_txns;
  Alcotest.(check int) "stmts" stats_a.Middleware.committed_stmts
    stats_b.Middleware.committed_stmts;
  Alcotest.(check int) "aborted" stats_a.Middleware.aborted_txns
    stats_b.Middleware.aborted_txns;
  Alcotest.(check int) "cycles" stats_a.Middleware.cycles
    stats_b.Middleware.cycles;
  Alcotest.(check int) "one lane" 1
    (Array.length h.Middleware.lane_schedulers);
  Alcotest.(check int) "no global traffic" 0 stats_b.Middleware.global_lane_txns;
  Alcotest.(check int) "no deferrals" 0 stats_b.Middleware.shard_deferrals;
  let rels = Scheduler.relations sched in
  Alcotest.(check (list (pair int int)))
    "identical rte"
    (keys (Relations.rte_requests rels))
    (keys h.Middleware.merged_rte);
  Alcotest.(check (list (pair int int)))
    "identical delivery order"
    (Relations.execution_order rels)
    h.Middleware.merged_execution_order

let test_run_full_rejects_shards () =
  Alcotest.check_raises "run_full refuses shards > 1"
    (Invalid_argument "Middleware.run_full: shards > 1 requires run_sharded")
    (fun () -> ignore (Middleware.run_full (cfg ~shards:2 ())))

(* A perfectly partitioned workload (groups = shards, no escapes) routes
   every transaction to its home shard lane; the global lane stays idle. *)
let test_partitioned_routing () =
  let sp = spec ~access:(Ds_workload.Spec.Partitioned (4, 0.)) () in
  let stats, h = Middleware.run_sharded (cfg ~shards:4 ~spec:sp ()) in
  Alcotest.(check bool) "commits happen" true
    (stats.Middleware.committed_txns > 0);
  Alcotest.(check int) "global lane idle" 0 stats.Middleware.global_lane_txns;
  (* every executed request's transaction was routed to a shard lane owning
     exactly its objects' group *)
  List.iter
    (fun (r : Request.t) ->
      match (h.Middleware.shard_of r.Request.ta, r.Request.obj) with
      | Some lane, Some o ->
        if lane >= 4 then Alcotest.failf "ta %d escalated needlessly" r.Request.ta;
        Alcotest.(check int)
          (Printf.sprintf "object %d in lane %d's group" o lane)
          lane (o mod 4)
      | Some _, None -> ()
      | None, _ -> Alcotest.failf "ta %d never routed" r.Request.ta)
    h.Middleware.merged_rte;
  (* the per-lane rte logs cover 4 distinct shard lanes *)
  let lanes_used =
    List.sort_uniq compare
      (List.filter_map
         (fun (r : Request.t) -> h.Middleware.shard_of r.Request.ta)
         h.Middleware.merged_rte)
  in
  Alcotest.(check (list int)) "all shard lanes used" [ 0; 1; 2; 3 ] lanes_used;
  check_clean ~shards:4 h;
  check_serializable h.Middleware.merged_rte

(* Mixed traffic: escapes force some transactions onto the global lane, and
   the drain barrier must still yield one serializable merged schedule. *)
let test_mixed_traffic_barrier () =
  let sp = spec ~access:(Ds_workload.Spec.Partitioned (2, 0.3)) () in
  let stats, h = Middleware.run_sharded (cfg ~shards:2 ~spec:sp ()) in
  Alcotest.(check bool) "commits happen" true
    (stats.Middleware.committed_txns > 0);
  Alcotest.(check bool) "global lane used" true
    (stats.Middleware.global_lane_txns > 0);
  let shard_routed =
    List.exists
      (fun (r : Request.t) ->
        match h.Middleware.shard_of r.Request.ta with
        | Some l -> l < 2
        | None -> false)
      h.Middleware.merged_rte
  in
  Alcotest.(check bool) "shard lanes used too" true shard_routed;
  check_clean ~shards:2 h;
  check_serializable h.Middleware.merged_rte

(* Uniform access over many objects makes nearly every transaction span both
   groups: the global lane carries the run and still checks out. *)
let test_global_heavy () =
  let stats, h = Middleware.run_sharded (cfg ~shards:2 ()) in
  Alcotest.(check bool) "commits happen" true
    (stats.Middleware.committed_txns > 0);
  Alcotest.(check bool) "mostly global" true
    (stats.Middleware.global_lane_txns > 0);
  check_clean ~shards:2 h;
  check_serializable h.Middleware.merged_rte

let test_sharded_determinism () =
  let sp = spec ~access:(Ds_workload.Spec.Partitioned (2, 0.3)) () in
  let a, ha = Middleware.run_sharded (cfg ~shards:2 ~spec:sp ()) in
  let b, hb = Middleware.run_sharded (cfg ~shards:2 ~spec:sp ()) in
  Alcotest.(check int) "same commits" a.Middleware.committed_txns
    b.Middleware.committed_txns;
  Alcotest.(check int) "same global traffic" a.Middleware.global_lane_txns
    b.Middleware.global_lane_txns;
  Alcotest.(check (list (pair int int)))
    "same merged rte"
    (keys ha.Middleware.merged_rte)
    (keys hb.Middleware.merged_rte)

(* The declarative view: every lane carries the shards relation and the
   routed transactions land in shard_assignment rows of their own lane. *)
let test_shard_relations () =
  let sp = spec ~access:(Ds_workload.Spec.Partitioned (2, 0.3)) () in
  let _, h = Middleware.run_sharded (cfg ~shards:2 ~spec:sp ()) in
  Array.iteri
    (fun i sched ->
      let rels = Scheduler.relations sched in
      Alcotest.(check int)
        (Printf.sprintf "lane %d shards rows" i)
        3 (* 2 shard lanes + the global lane row *)
        (Relations.shard_count rels))
    h.Middleware.lane_schedulers;
  let total_assigned =
    Array.fold_left
      (fun acc sched ->
        acc + Relations.shard_assignment_count (Scheduler.relations sched))
      0 h.Middleware.lane_schedulers
  in
  Alcotest.(check bool) "shard_assignment populated" true (total_assigned > 0)

(* Crash mid-run with S=2: every lane's journal segment recovers, the
   admission clock survives, and the whole run still checks out (set-level;
   conflicting pairs may legitimately reorder across the crash). *)
let test_sharded_crash_recovery () =
  let sp = spec ~access:(Ds_workload.Spec.Partitioned (2, 0.3)) () in
  let config =
    {
      (cfg ~shards:2 ~duration:3. ~spec:sp ()) with
      Middleware.faults =
        { Ds_core.Faults.none with Ds_core.Faults.crash_at_cycle = Some 8 };
      client_redo = true;
    }
  in
  let stats, h = Middleware.run_sharded config in
  Alcotest.(check int) "crashed once" 1 stats.Middleware.crashes;
  Alcotest.(check bool) "commits after recovery" true
    (stats.Middleware.committed_txns > 0);
  Alcotest.(check bool) "replayed journal lines" true
    (stats.Middleware.recovery_replayed > 0);
  check_clean ~allow_reorder:true ~shards:2 h;
  (* stamps stay strictly increasing across the crash: the merged rte has no
     duplicate keys *)
  let ks = keys h.Middleware.merged_rte in
  Alcotest.(check int) "no duplicate executions"
    (List.length (List.sort_uniq compare ks))
    (List.length ks)

(* Sharded runs with a journal write a segment directory; recover_dir merges
   the per-lane histories back into one stamped order. *)
let test_segment_dir_layout () =
  let dir = Filename.temp_file "dsched_test" ".journal.d" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Ds_core.Journal.is_segment_dir dir then begin
        List.iter
          (fun p -> try Sys.remove p with Sys_error _ -> ())
          (Ds_core.Journal.segment_paths dir);
        (try Sys.remove (Filename.concat dir "MANIFEST") with Sys_error _ -> ());
        try Sys.rmdir dir with Sys_error _ -> ()
      end)
    (fun () ->
      let sp = spec ~access:(Ds_workload.Spec.Partitioned (2, 0.3)) () in
      let config =
        { (cfg ~shards:2 ~spec:sp ()) with Middleware.journal_path = Some dir }
      in
      let _, h = Middleware.run_sharded config in
      Alcotest.(check bool) "manifest dir written" true
        (Ds_core.Journal.is_segment_dir dir);
      Alcotest.(check int) "segments per lane" 3
        (List.length (Ds_core.Journal.segment_paths dir));
      let recovered = Ds_core.Journal.recover_dir dir in
      (* the merged history replays in stamp order: its data rows are exactly
         the merged rte's prefix set (rte = executed; history may hold
         admitted-but-unexecuted tails) *)
      let hist_keys =
        List.sort_uniq compare
          (List.filter_map
             (fun ((r : Request.t), _) ->
               if Request.is_abort_marker r then None else Some (Request.key r))
             recovered.Ds_core.Journal.history_stamped)
      in
      List.iter
        (fun (r : Request.t) ->
          if not (List.mem (Request.key r) hist_keys) then
            Alcotest.failf "executed request %s missing from merged recovery"
              (Request.to_string r))
        h.Middleware.merged_rte;
      (* stamped entries arrive in non-decreasing stamp order *)
      let stamps =
        List.filter_map snd recovered.Ds_core.Journal.history_stamped
      in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a <= b && sorted rest
        | _ -> true
      in
      Alcotest.(check bool) "merged history in stamp order" true (sorted stamps))

let tests =
  [
    Alcotest.test_case "S=1 identical to run_full" `Quick test_s1_identity;
    Alcotest.test_case "run_full rejects shards>1" `Quick
      test_run_full_rejects_shards;
    Alcotest.test_case "partitioned workload routes by group" `Quick
      test_partitioned_routing;
    Alcotest.test_case "mixed traffic crosses the barrier" `Quick
      test_mixed_traffic_barrier;
    Alcotest.test_case "global-heavy traffic stays serializable" `Quick
      test_global_heavy;
    Alcotest.test_case "sharded runs are deterministic" `Quick
      test_sharded_determinism;
    Alcotest.test_case "shards/shard_assignment relations" `Quick
      test_shard_relations;
    Alcotest.test_case "crash recovery across segments" `Quick
      test_sharded_crash_recovery;
    Alcotest.test_case "journal segment directory" `Quick
      test_segment_dir_layout;
  ]
