(* Tests for Ds_check: event normalization, conflict-graph construction,
   the serializability/strictness/rigor/commit-order predicates, and the
   checker run against real Native_sim and Middleware schedules. *)

open Ds_check
open Ds_core
open Ds_model

(* Shorthand event-sequence builders. A schedule is written as a list of
   (ta, op, obj) triples; terminals use obj (-1). *)
let entry ta op obj = { Ds_server.Schedule.ta; op; obj; value = 0 }

let events triples =
  Conflict_graph.events_of_schedule
    (List.map (fun (ta, op, obj) -> entry ta op obj) triples)

let r ta obj = (ta, Op.Read, obj)
let w ta obj = (ta, Op.Write, obj)
let c ta = (ta, Op.Commit, -1)
let a ta = (ta, Op.Abort, -1)

(* --- event normalization ---------------------------------------------- *)

let test_events_of_schedule () =
  let es = events [ r 1 10; w 2 20; c 1 ] in
  Alcotest.(check int) "count" 3 (List.length es);
  let e0 = List.nth es 0 and e2 = List.nth es 2 in
  Alcotest.(check int) "pos 0" 0 e0.Conflict_graph.pos;
  Alcotest.(check int) "ta" 1 e0.Conflict_graph.ta;
  Alcotest.(check (option int)) "data op keeps obj" (Some 10)
    e0.Conflict_graph.obj;
  Alcotest.(check (option int)) "terminal drops obj" None
    e2.Conflict_graph.obj;
  Alcotest.(check int) "positions are sequential" 2 e2.Conflict_graph.pos

let test_events_of_requests () =
  let reqs =
    [
      Request.v 1 1 Op.Write 5;
      Request.v 2 1 Op.Read 5;
      Request.terminal 1 2 Op.Commit;
    ]
  in
  let es = Conflict_graph.events_of_requests reqs in
  Alcotest.(check (list int)) "tas in order" [ 1; 2; 1 ]
    (List.map (fun e -> e.Conflict_graph.ta) es);
  Alcotest.(check (option int)) "obj carried" (Some 5)
    (List.nth es 0).Conflict_graph.obj

let test_committed_projection () =
  (* T2 never commits, T3 aborts: only T1's events survive. *)
  let es = events [ w 1 1; w 2 2; r 3 3; c 1; a 3 ] in
  let committed = Conflict_graph.committed_projection es in
  Alcotest.(check (list int)) "only committed ta" [ 1; 1 ]
    (List.map (fun e -> e.Conflict_graph.ta) committed)

(* --- conflict graph ---------------------------------------------------- *)

let test_edge_kinds () =
  (* r1(x) w2(x): rw.  w1(y) r2(y): wr.  w1(z) w2(z): ww. *)
  let g = Conflict_graph.build (events [ r 1 1; w 2 1; w 1 2; r 2 2; w 1 3; w 2 3 ]) in
  let kinds =
    List.map
      (fun (e : Conflict_graph.edge) ->
        (e.Conflict_graph.obj, Conflict_graph.conflict_to_string e.Conflict_graph.kind))
      (Conflict_graph.edges g)
    |> List.sort compare
  in
  (* All three edges are 1 -> 2; the earliest (smallest dst_pos) conflict per
     (src, dst) pair is the representative, but every kind appears via the
     per-object scan before dedup — here each object gives a distinct pair
     ordering, so dedup keeps the rw edge (earliest dst). *)
  Alcotest.(check int) "two nodes" 2 (List.length (Conflict_graph.nodes g));
  Alcotest.(check (list (pair int string))) "representative edge"
    [ (1, "rw") ] kinds;
  Alcotest.(check (list int)) "successors" [ 2 ] (Conflict_graph.successors g 1)

let test_edge_kinds_distinct_pairs () =
  (* Distinct transaction pairs so each kind survives dedup. *)
  let g =
    Conflict_graph.build
      (events [ r 1 1; w 2 1; w 3 2; r 4 2; w 5 3; w 6 3 ])
  in
  let kinds =
    List.map
      (fun (e : Conflict_graph.edge) ->
        ( e.Conflict_graph.src,
          e.Conflict_graph.dst,
          Conflict_graph.conflict_to_string e.Conflict_graph.kind ))
      (Conflict_graph.edges g)
  in
  Alcotest.(check (list (triple int int string))) "each kind"
    [ (1, 2, "rw"); (3, 4, "wr"); (5, 6, "ww") ]
    kinds

let test_reads_do_not_conflict () =
  let g = Conflict_graph.build (events [ r 1 1; r 2 1; r 3 1 ]) in
  Alcotest.(check int) "no rr edges" 0 (Conflict_graph.edge_count g)

let test_same_txn_no_edge () =
  let g = Conflict_graph.build (events [ w 1 1; r 1 1; w 1 1 ]) in
  Alcotest.(check int) "no self edges" 0 (Conflict_graph.edge_count g)

let test_transitive_ww_edges () =
  (* w1 w2 w3 on one object: all three ordered pairs, including 1 -> 3. *)
  let g = Conflict_graph.build (events [ w 1 9; w 2 9; w 3 9 ]) in
  let pairs =
    List.map
      (fun (e : Conflict_graph.edge) -> (e.Conflict_graph.src, e.Conflict_graph.dst))
      (Conflict_graph.edges g)
  in
  Alcotest.(check (list (pair int int))) "all ordered pairs"
    [ (1, 2); (1, 3); (2, 3) ] pairs

let test_find_cycle () =
  let acyclic = Conflict_graph.build (events [ w 1 1; w 2 1; w 2 2; w 3 2 ]) in
  Alcotest.(check bool) "chain acyclic" true
    (Conflict_graph.find_cycle acyclic = None);
  let cyclic = Conflict_graph.build (events [ w 1 1; w 2 1; w 2 2; w 1 2 ]) in
  match Conflict_graph.find_cycle cyclic with
  | None -> Alcotest.fail "cycle expected"
  | Some cycle ->
    Alcotest.(check (list int)) "witness members" [ 1; 2 ]
      (List.sort Int.compare cycle)

(* --- serializability predicates ---------------------------------------- *)

let violations es = (Serializability.check es).Serializability.violations

let test_serial_clean () =
  let report =
    Serializability.check (events [ w 1 1; r 1 2; c 1; w 2 1; r 2 2; c 2 ])
  in
  Alcotest.(check bool) "clean" true (Serializability.is_clean report);
  Alcotest.(check int) "txns" 2 report.Serializability.txns;
  Alcotest.(check int) "committed" 2 report.Serializability.committed

let test_nonserializable_witness () =
  (* The classic lost-update interleaving: w1(x) w2(x) w2(y) w1(y) c1 c2. *)
  let vs = violations (events [ w 1 1; w 2 1; w 2 2; w 1 2; c 1; c 2 ]) in
  let cycle =
    List.find_map
      (function Serializability.Cycle c -> Some c | _ -> None)
      vs
  in
  match cycle with
  | None -> Alcotest.fail "expected a witness cycle"
  | Some c ->
    Alcotest.(check (list int)) "witness is {1,2}" [ 1; 2 ]
      (List.sort Int.compare c)

let test_strictness_violation () =
  (* T2 reads x while T1's write of x is uncommitted (dirty read). *)
  let vs = Serializability.strict (events [ w 1 1; r 2 1; c 1; c 2 ]) in
  (match vs with
  | [ Serializability.Dirty_access { writer; accessor; obj; _ } ] ->
    Alcotest.(check int) "writer" 1 writer;
    Alcotest.(check int) "accessor" 2 accessor;
    Alcotest.(check int) "object" 1 obj
  | _ -> Alcotest.failf "expected one dirty access, got %d" (List.length vs));
  (* Dirty write (overwrite before commit) is equally non-strict. *)
  Alcotest.(check int) "dirty write flagged" 1
    (List.length (Serializability.strict (events [ w 1 1; w 2 1; c 1; c 2 ])));
  (* Waiting for the commit makes it strict. *)
  Alcotest.(check int) "read after commit ok" 0
    (List.length (Serializability.strict (events [ w 1 1; c 1; r 2 1; c 2 ])))

let test_rigor_violation () =
  (* r1(x) w2(x) c1 c2: strict (no dirty data) but not rigorous — T2
     overwrote x while T1's read lock was live. *)
  let es = events [ r 1 1; w 2 1; c 1; c 2 ] in
  Alcotest.(check int) "strict holds" 0 (List.length (Serializability.strict es));
  (match Serializability.rigorous es with
  | [ Serializability.Unrigorous { reader; writer; obj; _ } ] ->
    Alcotest.(check int) "reader" 1 reader;
    Alcotest.(check int) "writer" 2 writer;
    Alcotest.(check int) "object" 1 obj
  | vs -> Alcotest.failf "expected one rigor violation, got %d" (List.length vs));
  (* The full battery reports exactly that one violation. *)
  Alcotest.(check int) "only violation" 1 (List.length (violations es));
  (* Writing after the reader committed is rigorous. *)
  Alcotest.(check int) "write after reader commit ok" 0
    (List.length (Serializability.rigorous (events [ r 1 1; c 1; w 2 1; c 2 ])))

let test_commit_disorder () =
  (* Conflict edge 1 -> 2 but T2 commits first. *)
  let es = events [ r 1 1; w 2 1; c 2; c 1 ] in
  (match Serializability.commit_ordered es with
  | [ Serializability.Commit_disorder { first; second; obj } ] ->
    Alcotest.(check int) "edge src" 1 first;
    Alcotest.(check int) "edge dst" 2 second;
    Alcotest.(check int) "object" 1 obj
  | vs ->
    Alcotest.failf "expected one commit disorder, got %d" (List.length vs));
  Alcotest.(check int) "ordered commits ok" 0
    (List.length
       (Serializability.commit_ordered (events [ r 1 1; w 2 1; c 1; c 2 ])))

let test_check_committed_ignores_in_flight () =
  (* An rte log that ends mid-transaction: T2's dangling write must not count
     against the committed projection. *)
  let es = events [ w 1 1; c 1; w 2 1 ] in
  let report = Serializability.check_committed es in
  Alcotest.(check bool) "clean" true (Serializability.is_clean report);
  Alcotest.(check int) "only T1 survives" 1 report.Serializability.txns

let test_pp_report_mentions_cycle () =
  let report = Serializability.check (events [ w 1 1; w 2 1; w 2 2; w 1 2 ]) in
  let s = Format.asprintf "%a" Serializability.pp_report report in
  Alcotest.(check bool) "report names the cycle" true
    (Helpers.contains s "cycle")

(* --- real schedules: native server ------------------------------------- *)

let native_cfg ~seed ~policy =
  {
    Ds_server.Native_sim.default_config with
    Ds_server.Native_sim.n_clients = 12;
    duration = 0.5;
    seed;
    log_schedule = true;
    deadlock_policy = policy;
    spec =
      { Ds_workload.Spec.paper_default with Ds_workload.Spec.n_objects = 200 };
  }

let test_native_schedules_clean () =
  (* The native SS2PL server's committed schedule (now including commit
     points) must pass the full battery — serializable, strict, rigorous,
     commit-ordered — across 50 seeds and both deadlock policies. *)
  for seed = 1 to 50 do
    let policy = if seed mod 2 = 0 then `Detection else `Wound_wait in
    let s = Ds_server.Native_sim.run (native_cfg ~seed ~policy) in
    let report =
      Serializability.check
        (Conflict_graph.events_of_schedule s.Ds_server.Native_sim.schedule)
    in
    if not (Serializability.is_clean report) then
      Alcotest.failf "seed %d (%s): %a" seed
        (match policy with `Detection -> "detection" | `Wound_wait -> "wound-wait")
        Serializability.pp_report report
  done

let test_native_commit_points_logged () =
  let s = Ds_server.Native_sim.run (native_cfg ~seed:7 ~policy:`Detection) in
  let commits =
    List.length
      (List.filter
         (fun (e : Ds_server.Schedule.entry) ->
           Op.equal e.Ds_server.Schedule.op Op.Commit)
         s.Ds_server.Native_sim.schedule)
  in
  Alcotest.(check int) "one commit entry per committed txn"
    s.Ds_server.Native_sim.committed_txns commits

(* --- real schedules: declarative middleware ----------------------------- *)

let middleware_cfg ~seed ~protocol =
  {
    Middleware.default_config with
    Middleware.n_clients = 10;
    duration = 2.0;
    seed;
    protocol;
    spec =
      { Ds_workload.Spec.paper_default with Ds_workload.Spec.n_objects = 500 };
  }

let check_middleware ~seed ~protocol =
  let stats, sched = Middleware.run_full (middleware_cfg ~seed ~protocol) in
  let report =
    Serializability.check_committed
      (Conflict_graph.events_of_requests
         (Relations.rte_requests (Scheduler.relations sched)))
  in
  if not (Serializability.is_clean report) then
    Alcotest.failf "seed %d under %s: %a" seed protocol.Protocol.name
      Serializability.pp_report report;
  stats

let test_middleware_schedules_clean () =
  (* Full middleware runs: the rte log's committed projection passes the
     battery. The cheap OCaml oracle covers many seeds; the SQL and Datalog
     formulations get spot checks (they are orders of magnitude slower). *)
  let committed = ref 0 in
  for seed = 1 to 50 do
    let stats = check_middleware ~seed ~protocol:Builtin.ss2pl_ocaml in
    committed := !committed + stats.Middleware.committed_txns
  done;
  Alcotest.(check bool) "workload actually commits" true (!committed > 0)

let test_middleware_sql_datalog_clean () =
  List.iter
    (fun protocol ->
      List.iter
        (fun seed -> ignore (check_middleware ~seed ~protocol))
        [ 1; 2 ])
    [ Builtin.ss2pl_sql; Builtin.ss2pl_datalog ]

(* --- randomized: checker vs random interleavings ------------------------ *)

let serial_always_clean_prop =
  (* Random serial schedules (transactions executed back to back): always
     clean, however contended the operations. *)
  QCheck2.Test.make ~name:"serial schedules are always clean" ~count:100
    QCheck2.Gen.(
      pair (int_range 2 6)
        (list_size (int_range 1 5) (pair (int_range 1 8) bool)))
    (fun (n_txns, ops) ->
      let body ta =
        List.map (fun (obj, wr) -> if wr then w ta obj else r ta obj) ops
        @ [ c ta ]
      in
      let es =
        events (List.concat_map body (List.init n_txns (fun i -> i + 1)))
      in
      Serializability.is_clean (Serializability.check es))

let tests =
  [
    Alcotest.test_case "events of schedule" `Quick test_events_of_schedule;
    Alcotest.test_case "events of requests" `Quick test_events_of_requests;
    Alcotest.test_case "committed projection" `Quick test_committed_projection;
    Alcotest.test_case "edge kinds" `Quick test_edge_kinds;
    Alcotest.test_case "edge kinds (distinct pairs)" `Quick
      test_edge_kinds_distinct_pairs;
    Alcotest.test_case "reads do not conflict" `Quick test_reads_do_not_conflict;
    Alcotest.test_case "same txn no edge" `Quick test_same_txn_no_edge;
    Alcotest.test_case "transitive ww edges" `Quick test_transitive_ww_edges;
    Alcotest.test_case "find cycle" `Quick test_find_cycle;
    Alcotest.test_case "serial is clean" `Quick test_serial_clean;
    Alcotest.test_case "non-serializable witness" `Quick
      test_nonserializable_witness;
    Alcotest.test_case "strictness violation" `Quick test_strictness_violation;
    Alcotest.test_case "rigor violation" `Quick test_rigor_violation;
    Alcotest.test_case "commit disorder" `Quick test_commit_disorder;
    Alcotest.test_case "committed projection ignores in-flight" `Quick
      test_check_committed_ignores_in_flight;
    Alcotest.test_case "report mentions cycle" `Quick test_pp_report_mentions_cycle;
    Alcotest.test_case "native schedules clean (50 seeds)" `Slow
      test_native_schedules_clean;
    Alcotest.test_case "native commit points logged" `Quick
      test_native_commit_points_logged;
    Alcotest.test_case "middleware schedules clean (50 seeds)" `Slow
      test_middleware_schedules_clean;
    Alcotest.test_case "middleware sql+datalog clean" `Slow
      test_middleware_sql_datalog_clean;
    QCheck_alcotest.to_alcotest serial_always_clean_prop;
  ]
