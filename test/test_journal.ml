(* Write-ahead journal and crash recovery. *)

open Ds_core
open Ds_model

let with_journal_file f =
  let path = Filename.temp_file "ds_journal" ".log" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let sorted_pending rels =
  Helpers.sorted_keys (List.map Request.key (Relations.pending rels))

let test_roundtrip () =
  with_journal_file (fun path ->
      let journal = Journal.open_ path in
      let sched = Scheduler.create ~journal Builtin.ss2pl_sql in
      (* Two conflicting writers plus an independent read. *)
      List.iter (Scheduler.submit sched)
        [
          Request.v 1 1 Op.Write 5;
          Request.v 2 1 Op.Write 5;
          Request.v 3 1 Op.Read 9;
        ];
      ignore (Scheduler.cycle sched);
      (* T2 still pending; abort T1 to release its lock, then crash. *)
      ignore (Scheduler.abort_txn sched 1);
      Journal.close journal;
      let recovered = Journal.recover path in
      Alcotest.(check int) "one request still pending" 1
        (List.length recovered.Journal.pending);
      Alcotest.(check (list int)) "abort recorded" [ 1 ] recovered.Journal.aborted;
      Alcotest.(check bool) "replayed something" true
        (recovered.Journal.replayed >= 5);
      (* Restore into a fresh scheduler: same pending set, and the next SS2PL
         cycle makes the same decision the live scheduler would (T2 unblocked
         because T1 aborted). *)
      let fresh = Scheduler.create Builtin.ss2pl_sql in
      Journal.restore recovered (Scheduler.relations fresh);
      Alcotest.(check (list (pair int int))) "pending restored" [ (2, 1) ]
        (sorted_pending (Scheduler.relations fresh));
      let q, _ = Scheduler.cycle fresh in
      Alcotest.(check (list (pair int int))) "t2 qualifies after recovery"
        [ (2, 1) ]
        (List.map Request.key q))

let test_torn_tail_tolerated () =
  with_journal_file (fun path ->
      let journal = Journal.open_ path in
      let sched = Scheduler.create ~journal Builtin.ss2pl_sql in
      Scheduler.submit sched (Request.v 1 1 Op.Read 5);
      ignore (Scheduler.cycle sched);
      Journal.close journal;
      (* Simulate a crash mid-write. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "S 99,99,1,r";
      close_out oc;
      let recovered = Journal.recover path in
      Alcotest.(check int) "torn line ignored" 0
        (List.length recovered.Journal.pending);
      Alcotest.(check int) "history intact" 1
        (List.length recovered.Journal.history))

let test_mid_file_corruption_rejected () =
  with_journal_file (fun path ->
      let oc = open_out path in
      output_string oc "S 1,1,1,r,5,standard,0.0\nGARBAGE LINE\nQ 1 1\n";
      close_out oc;
      match Journal.recover path with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "corruption in the middle must be rejected")

let test_unknown_qualified_rejected () =
  with_journal_file (fun path ->
      let oc = open_out path in
      output_string oc "Q 7 1\nS 1,1,1,r,5,standard,0.0\n";
      close_out oc;
      match Journal.recover path with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "Q without S must be rejected")

let test_sync_kill_points () =
  (* The durability contract of [open_ ~sync:true]: after a cycle's flush
     returns, a kill at ANY later byte offset must recover that cycle's
     history.  Drive a scheduler, record the durable size and the qualified
     history after every cycle, then for each recorded boundary truncate a
     copy of the journal at the boundary itself and a few bytes past it
     (a torn next line) and recover. *)
  with_journal_file (fun path ->
      let journal = Journal.open_ ~sync:true path in
      let sched = Scheduler.create ~journal Builtin.ss2pl_sql in
      let rng = Ds_sim.Rng.create 11 in
      let reqs =
        Helpers.random_requests rng ~n_txns:8 ~ops_per_txn:3 ~n_objects:5
      in
      let checkpoints = ref [] in
      List.iteri
        (fun i r ->
          Scheduler.submit sched r;
          if i mod 4 = 3 then begin
            ignore (Scheduler.cycle sched);
            let hist =
              List.map Request.key (Journal.recover path).Journal.history
            in
            checkpoints := (Journal.size journal, hist) :: !checkpoints
          end)
        reqs;
      Journal.close journal;
      let full_size = (Unix.stat path).Unix.st_size in
      Alcotest.(check bool) "several checkpoints" true
        (List.length !checkpoints >= 3);
      let copy = Filename.temp_file "ds_journal" ".kill" in
      Fun.protect
        ~finally:(fun () -> Sys.remove copy)
        (fun () ->
          List.iter
            (fun (boundary, hist) ->
              List.iter
                (fun kill ->
                  let kill = min kill full_size in
                  let contents =
                    In_channel.with_open_bin path In_channel.input_all
                  in
                  Out_channel.with_open_bin copy (fun oc ->
                      Out_channel.output_string oc
                        (String.sub contents 0 kill));
                  let recovered = Journal.recover copy in
                  let got =
                    List.map Request.key recovered.Journal.history
                  in
                  (* the synced cycle's history is a prefix of whatever the
                     kill point preserved *)
                  let rec is_prefix xs ys =
                    match (xs, ys) with
                    | [], _ -> true
                    | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
                    | _ :: _, [] -> false
                  in
                  Alcotest.(check bool)
                    (Printf.sprintf
                       "kill at byte %d keeps the cycle synced at %d" kill
                       boundary)
                    true (is_prefix hist got))
                [ boundary; boundary + 1; boundary + 7 ])
            !checkpoints))

let journal_matches_live_state =
  QCheck2.Test.make ~name:"recovered pending = live pending" ~count:40
    QCheck2.Gen.(pair small_int (int_range 1 6))
    (fun (seed, n_txns) ->
      with_journal_file (fun path ->
          let journal = Journal.open_ path in
          let sched = Scheduler.create ~journal Builtin.ss2pl_sql in
          let rng = Ds_sim.Rng.create seed in
          let reqs =
            Helpers.random_requests rng ~n_txns ~ops_per_txn:4 ~n_objects:6
          in
          List.iteri
            (fun i r ->
              Scheduler.submit sched r;
              if i mod 3 = 2 then ignore (Scheduler.cycle sched))
            reqs;
          ignore (Scheduler.cycle sched);
          Journal.close journal;
          let recovered = Journal.recover path in
          let fresh = Relations.create () in
          Journal.restore recovered fresh;
          sorted_pending fresh = sorted_pending (Scheduler.relations sched)))

let tests =
  [
    Alcotest.test_case "journal roundtrip + recovery decision" `Quick
      test_roundtrip;
    Alcotest.test_case "torn tail tolerated" `Quick test_torn_tail_tolerated;
    Alcotest.test_case "mid-file corruption rejected" `Quick
      test_mid_file_corruption_rejected;
    Alcotest.test_case "Q without S rejected" `Quick test_unknown_qualified_rejected;
    Alcotest.test_case "sync survives any kill point" `Quick test_sync_kill_points;
    QCheck_alcotest.to_alcotest journal_matches_live_state;
  ]
