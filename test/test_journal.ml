(* Write-ahead journal and crash recovery. *)

open Ds_core
open Ds_model

let with_journal_file f =
  let path = Filename.temp_file "ds_journal" ".log" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let sorted_pending rels =
  Helpers.sorted_keys (List.map Request.key (Relations.pending rels))

let test_roundtrip () =
  with_journal_file (fun path ->
      let journal = Journal.open_ path in
      let sched = Scheduler.create ~journal Builtin.ss2pl_sql in
      (* Two conflicting writers plus an independent read. *)
      List.iter (Scheduler.submit sched)
        [
          Request.v 1 1 Op.Write 5;
          Request.v 2 1 Op.Write 5;
          Request.v 3 1 Op.Read 9;
        ];
      ignore (Scheduler.cycle sched);
      (* T2 still pending; abort T1 to release its lock, then crash. *)
      ignore (Scheduler.abort_txn sched 1);
      Journal.close journal;
      let recovered = Journal.recover path in
      Alcotest.(check int) "one request still pending" 1
        (List.length recovered.Journal.pending);
      Alcotest.(check (list int)) "abort recorded" [ 1 ] recovered.Journal.aborted;
      Alcotest.(check bool) "replayed something" true
        (recovered.Journal.replayed >= 5);
      (* Restore into a fresh scheduler: same pending set, and the next SS2PL
         cycle makes the same decision the live scheduler would (T2 unblocked
         because T1 aborted). *)
      let fresh = Scheduler.create Builtin.ss2pl_sql in
      Journal.restore recovered (Scheduler.relations fresh);
      Alcotest.(check (list (pair int int))) "pending restored" [ (2, 1) ]
        (sorted_pending (Scheduler.relations fresh));
      let q, _ = Scheduler.cycle fresh in
      Alcotest.(check (list (pair int int))) "t2 qualifies after recovery"
        [ (2, 1) ]
        (List.map Request.key q))

let test_torn_tail_tolerated () =
  with_journal_file (fun path ->
      let journal = Journal.open_ path in
      let sched = Scheduler.create ~journal Builtin.ss2pl_sql in
      Scheduler.submit sched (Request.v 1 1 Op.Read 5);
      ignore (Scheduler.cycle sched);
      Journal.close journal;
      (* Simulate a crash mid-write. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "S 99,99,1,r";
      close_out oc;
      let recovered = Journal.recover path in
      Alcotest.(check int) "torn line ignored" 0
        (List.length recovered.Journal.pending);
      Alcotest.(check int) "history intact" 1
        (List.length recovered.Journal.history))

let test_mid_file_corruption_rejected () =
  with_journal_file (fun path ->
      let oc = open_out path in
      output_string oc "S 1,1,1,r,5,standard,0.0\nGARBAGE LINE\nQ 1 1\n";
      close_out oc;
      match Journal.recover path with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "corruption in the middle must be rejected")

let test_unknown_qualified_rejected () =
  with_journal_file (fun path ->
      let oc = open_out path in
      output_string oc "Q 7 1\nS 1,1,1,r,5,standard,0.0\n";
      close_out oc;
      match Journal.recover path with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "Q without S must be rejected")

let test_sync_kill_points () =
  (* The durability contract of [open_ ~sync:true]: after a cycle's flush
     returns, a kill at ANY later byte offset must recover that cycle's
     history.  Drive a scheduler, record the durable size and the qualified
     history after every cycle, then for each recorded boundary truncate a
     copy of the journal at the boundary itself and a few bytes past it
     (a torn next line) and recover. *)
  with_journal_file (fun path ->
      let journal = Journal.open_ ~sync:true path in
      let sched = Scheduler.create ~journal Builtin.ss2pl_sql in
      let rng = Ds_sim.Rng.create 11 in
      let reqs =
        Helpers.random_requests rng ~n_txns:8 ~ops_per_txn:3 ~n_objects:5
      in
      let checkpoints = ref [] in
      List.iteri
        (fun i r ->
          Scheduler.submit sched r;
          if i mod 4 = 3 then begin
            ignore (Scheduler.cycle sched);
            let hist =
              List.map Request.key (Journal.recover path).Journal.history
            in
            checkpoints := (Journal.size journal, hist) :: !checkpoints
          end)
        reqs;
      Journal.close journal;
      let full_size = (Unix.stat path).Unix.st_size in
      Alcotest.(check bool) "several checkpoints" true
        (List.length !checkpoints >= 3);
      let copy = Filename.temp_file "ds_journal" ".kill" in
      Fun.protect
        ~finally:(fun () -> Sys.remove copy)
        (fun () ->
          List.iter
            (fun (boundary, hist) ->
              List.iter
                (fun kill ->
                  let kill = min kill full_size in
                  let contents =
                    In_channel.with_open_bin path In_channel.input_all
                  in
                  Out_channel.with_open_bin copy (fun oc ->
                      Out_channel.output_string oc
                        (String.sub contents 0 kill));
                  let recovered = Journal.recover copy in
                  let got =
                    List.map Request.key recovered.Journal.history
                  in
                  (* the synced cycle's history is a prefix of whatever the
                     kill point preserved *)
                  let rec is_prefix xs ys =
                    match (xs, ys) with
                    | [], _ -> true
                    | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
                    | _ :: _, [] -> false
                  in
                  Alcotest.(check bool)
                    (Printf.sprintf
                       "kill at byte %d keeps the cycle synced at %d" kill
                       boundary)
                    true (is_prefix hist got))
                [ boundary; boundary + 1; boundary + 7 ])
            !checkpoints))

let journal_matches_live_state =
  QCheck2.Test.make ~name:"recovered pending = live pending" ~count:40
    QCheck2.Gen.(pair small_int (int_range 1 6))
    (fun (seed, n_txns) ->
      with_journal_file (fun path ->
          let journal = Journal.open_ path in
          let sched = Scheduler.create ~journal Builtin.ss2pl_sql in
          let rng = Ds_sim.Rng.create seed in
          let reqs =
            Helpers.random_requests rng ~n_txns ~ops_per_txn:4 ~n_objects:6
          in
          List.iteri
            (fun i r ->
              Scheduler.submit sched r;
              if i mod 3 = 2 then ignore (Scheduler.cycle sched))
            reqs;
          ignore (Scheduler.cycle sched);
          Journal.close journal;
          let recovered = Journal.recover path in
          let fresh = Relations.create () in
          Journal.restore recovered fresh;
          sorted_pending fresh = sorted_pending (Scheduler.relations sched)))

(* --- checkpoints -------------------------------------------------- *)

(* Drives [cycles] scheduler cycles of short committed write transactions
   under SS2PL, with transaction 1 holding a write lock on object 0 forever
   so every seventh transaction stays blocked — the recovered pending set
   is nonempty and checkpoint snapshots carry real live state. *)
let drive_blocked path ~cycles ~checkpoint_every =
  let journal = Journal.open_ path in
  let sched =
    match checkpoint_every with
    | Some n -> Scheduler.create ~journal ~checkpoint_every:n Builtin.ss2pl_sql
    | None -> Scheduler.create ~journal Builtin.ss2pl_sql
  in
  Scheduler.submit sched (Request.v 1 1 Op.Write 0);
  let ta = ref 1 in
  for _ = 1 to cycles do
    for _ = 1 to 3 do
      incr ta;
      Scheduler.submit sched (Request.v !ta 1 Op.Write (!ta mod 7));
      Scheduler.submit sched (Request.terminal !ta 2 Op.Commit)
    done;
    ignore (Scheduler.cycle sched)
  done;
  Journal.close journal

let pending_keys (r : Journal.recovered) =
  Helpers.sorted_keys (List.map Request.key r.Journal.pending)

let test_checkpoint_suffix_recovery () =
  with_journal_file (fun path ->
      drive_blocked path ~cycles:20 ~checkpoint_every:(Some 3);
      let r = Journal.recover path in
      (match r.Journal.checkpoint_cycle with
      | Some c ->
        Alcotest.(check bool) "recent watermark" true (c >= 15)
      | None -> Alcotest.fail "recovery did not use a checkpoint");
      Alcotest.(check bool) "prefix skipped, not replayed" true
        (r.Journal.skipped > r.Journal.replayed);
      Alcotest.(check bool) "blocked writers recovered as pending" true
        (List.length r.Journal.pending > 0);
      Alcotest.(check int) "no corruption" 0 r.Journal.corrupt_dropped)

let last_index_of hay needle =
  let nn = String.length needle in
  let rec go i =
    if i < 0 then None
    else if String.sub hay i nn = needle then Some i
    else go (i - 1)
  in
  go (String.length hay - nn)

let test_torn_checkpoint_previous_block () =
  (* The journal ends in a checkpoint block (cycles divisible by the
     interval).  Tearing that block's END must send recovery back to the
     previous complete block — and since the torn snapshot was redundant
     (its state is already in the log), the recovered state is unchanged. *)
  with_journal_file (fun path ->
      drive_blocked path ~cycles:18 ~checkpoint_every:(Some 3);
      let r_full = Journal.recover path in
      let full_cycle =
        match r_full.Journal.checkpoint_cycle with
        | Some c -> c
        | None -> Alcotest.fail "no checkpoint in full journal"
      in
      let contents = In_channel.with_open_bin path In_channel.input_all in
      let cut =
        match last_index_of contents " C END " with
        | Some i -> (
          match String.rindex_from_opt contents i '\n' with
          | Some j -> j + 1
          | None -> 0)
        | None -> Alcotest.fail "no C END in journal"
      in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (String.sub contents 0 cut));
      let r = Journal.recover path in
      (match r.Journal.checkpoint_cycle with
      | Some c ->
        Alcotest.(check bool)
          (Printf.sprintf "fell back to an earlier block (%d < %d)" c
             full_cycle)
          true (c < full_cycle)
      | None -> Alcotest.fail "torn block did not fall back to a checkpoint");
      Alcotest.(check (list (pair int int))) "pending unchanged"
        (pending_keys r_full) (pending_keys r))

let test_crc_repair_truncates () =
  with_journal_file (fun path ->
      drive_blocked path ~cycles:6 ~checkpoint_every:(Some 3);
      let clean = Journal.recover path in
      (* A crash mid-append: one framed record whose checksum does not match
         its payload, then half of a next line. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "!deadbeef S 99,99,1,w,5,standard,0.0\n!0000";
      close_out oc;
      let dirty_size = (Unix.stat path).Unix.st_size in
      let r = Journal.recover ~repair:true path in
      Alcotest.(check int) "corrupt tail dropped" 2 r.Journal.corrupt_dropped;
      Alcotest.(check bool) "trusted prefix shorter than the file" true
        (r.Journal.valid_bytes < dirty_size);
      Alcotest.(check int) "file physically truncated to the trusted prefix"
        r.Journal.valid_bytes
        (Unix.stat path).Unix.st_size;
      Alcotest.(check (list (pair int int)))
        "recovered state = last valid prefix" (pending_keys clean)
        (pending_keys r);
      let again = Journal.recover path in
      Alcotest.(check int) "repaired journal is clean" 0
        again.Journal.corrupt_dropped)

let test_kill_mid_record_with_checkpoints () =
  (* Truncating mid-record after the last checkpoint: the torn record is
     dropped by its checksum, the checkpoint is still used, and a repair
     pass leaves a clean journal one record shorter. *)
  with_journal_file (fun path ->
      drive_blocked path ~cycles:10 ~checkpoint_every:(Some 3);
      let full = Journal.recover path in
      let contents = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (String.sub contents 0 (String.length contents - 5)));
      let r = Journal.recover ~repair:true path in
      Alcotest.(check int) "torn record dropped" 1 r.Journal.corrupt_dropped;
      Alcotest.(check bool) "still recovered from a checkpoint" true
        (r.Journal.checkpoint_cycle <> None);
      let again = Journal.recover path in
      Alcotest.(check int) "clean after repair" 0 again.Journal.corrupt_dropped;
      Alcotest.(check int) "one fewer record than the full journal"
        (full.Journal.replayed - 1)
        again.Journal.replayed)

let checkpoint_equals_full_replay =
  (* Two schedulers in lockstep over the same submissions, one journal with
     checkpoints, one without.  Checkpointed recovery replays a snapshot
     plus a suffix; full replay replays everything — the scheduler-visible
     state must be identical: same pending set, and a restored fresh
     scheduler makes the same next-cycle qualification decisions. *)
  QCheck2.Test.make
    ~name:"recover(checkpoint + suffix) = full replay (scheduler state)"
    ~count:30
    QCheck2.Gen.(pair small_int (int_range 2 8))
    (fun (seed, n_txns) ->
      let drive path checkpoint_every =
        let journal = Journal.open_ path in
        let sched =
          match checkpoint_every with
          | Some n ->
            Scheduler.create ~journal ~checkpoint_every:n Builtin.ss2pl_sql
          | None -> Scheduler.create ~journal Builtin.ss2pl_sql
        in
        let rng = Ds_sim.Rng.create seed in
        let reqs =
          Helpers.random_requests rng ~n_txns ~ops_per_txn:4 ~n_objects:6
        in
        List.iteri
          (fun i r ->
            Scheduler.submit sched r;
            if i mod 3 = 2 then ignore (Scheduler.cycle sched))
          reqs;
        ignore (Scheduler.cycle sched);
        Journal.close journal
      in
      with_journal_file (fun cp_path ->
          with_journal_file (fun full_path ->
              drive cp_path (Some 2);
              drive full_path None;
              let rc = Journal.recover cp_path in
              let rf = Journal.recover full_path in
              if rc.Journal.checkpoint_cycle = None then
                QCheck2.Test.fail_report
                  "checkpointed journal recovered without a checkpoint";
              let observe r =
                let fresh = Scheduler.create Builtin.ss2pl_sql in
                Journal.restore r (Scheduler.relations fresh);
                let pending = sorted_pending (Scheduler.relations fresh) in
                let q, _ = Scheduler.cycle fresh in
                (pending, List.map Request.key q)
              in
              observe rc = observe rf)))

let test_repair_empty_journal () =
  (* --repair on a zero-byte journal: nothing to drop, nothing to truncate,
     fully empty recovered state. *)
  with_journal_file (fun path ->
      Out_channel.with_open_bin path (fun _ -> ());
      let r = Journal.recover ~repair:true path in
      Alcotest.(check int) "nothing replayed" 0 r.Journal.replayed;
      Alcotest.(check int) "nothing dropped" 0 r.Journal.corrupt_dropped;
      Alcotest.(check bool) "no checkpoint" true
        (r.Journal.checkpoint_cycle = None);
      Alcotest.(check int) "no pending" 0 (List.length r.Journal.pending);
      Alcotest.(check int) "no history" 0 (List.length r.Journal.history);
      Alcotest.(check int) "no dead letters" 0 (List.length r.Journal.dead);
      Alcotest.(check int) "file still empty" 0 (Unix.stat path).Unix.st_size;
      (* Restoring the empty state into fresh relations is a no-op. *)
      let fresh = Scheduler.create Builtin.ss2pl_sql in
      Journal.restore r (Scheduler.relations fresh);
      Alcotest.(check int) "restored pending empty" 0
        (List.length (Relations.pending (Scheduler.relations fresh))))

let test_repair_checkpoint_only_journal () =
  (* A journal holding nothing but one checkpoint block (empty snapshot):
     recovery uses the checkpoint, replays no suffix, and a repair pass
     changes nothing. *)
  with_journal_file (fun path ->
      let j = Journal.open_ path in
      Journal.checkpoint j ~cycle:1;
      Journal.close j;
      let size = (Unix.stat path).Unix.st_size in
      let r = Journal.recover ~repair:true path in
      Alcotest.(check bool) "checkpoint used" true
        (r.Journal.checkpoint_cycle = Some 1);
      Alcotest.(check int) "no suffix replayed" 0 r.Journal.replayed;
      Alcotest.(check int) "nothing dropped" 0 r.Journal.corrupt_dropped;
      Alcotest.(check int) "no pending" 0 (List.length r.Journal.pending);
      Alcotest.(check int) "repair left the file intact" size
        (Unix.stat path).Unix.st_size;
      let fresh = Scheduler.create Builtin.ss2pl_sql in
      Journal.restore r (Scheduler.relations fresh);
      let q, _ = Scheduler.cycle fresh in
      Alcotest.(check int) "restored scheduler qualifies nothing" 0
        (List.length q))

(* --- sharded journal segments --------------------------------------------- *)

let with_segment_dir ~shards f =
  let dir = Filename.temp_file "ds_journal" ".seg.d" in
  Sys.remove dir;
  let paths = Journal.init_segment_dir dir ~shards in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths;
      (try Sys.remove (Filename.concat dir "MANIFEST") with Sys_error _ -> ());
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir paths)

let test_stamped_roundtrip () =
  with_journal_file (fun path ->
      let j = Journal.open_ path in
      let r1 = Request.v 1 1 Op.Write 5 and r2 = Request.v 2 1 Op.Read 9 in
      Journal.log_submit j r1;
      Journal.log_submit j r2;
      Journal.log_qualified_stamped j [ ((1, 1), 7); ((2, 1), 3) ];
      Journal.close j;
      let r = Journal.recover path in
      let stamps =
        List.map (fun (req, g) -> (Request.key req, g)) r.Journal.history_stamped
      in
      Alcotest.(check (list (pair (pair int int) (option int))))
        "gseq stamps survive the roundtrip"
        [ ((1, 1), Some 7); ((2, 1), Some 3) ]
        stamps;
      (* The unstamped view is unchanged: plain history in file order. *)
      Alcotest.(check (list (pair int int)))
        "plain history still in file order"
        [ (1, 1); (2, 1) ]
        (List.map Request.key r.Journal.history))

let test_unstamped_records_sort_last () =
  with_journal_file (fun path ->
      let j = Journal.open_ path in
      Journal.log_submit j (Request.v 1 1 Op.Write 5);
      Journal.log_submit j (Request.v 2 1 Op.Read 9);
      (* A legacy (unstamped) Q record followed by a stamped one. *)
      Journal.log_qualified j [ (1, 1) ];
      Journal.log_qualified_stamped j [ ((2, 1), 0) ];
      Journal.close j;
      let r = Journal.recover path in
      Alcotest.(check (list (pair (pair int int) (option int))))
        "unstamped entry carries no gseq"
        [ ((1, 1), None); ((2, 1), Some 0) ]
        (List.map
           (fun (req, g) -> (Request.key req, g))
           r.Journal.history_stamped))

let test_segment_dir_merges_by_gseq () =
  with_segment_dir ~shards:2 (fun dir paths ->
      (* Interleaved admissions across lanes: shard 0 stamps 0 and 2, the
         global lane stamps 1. Shard 1 never opened its segment — a lane
         that admitted nothing leaves no file, and recovery must not care. *)
      let shard0 = List.nth paths 0 and global = List.nth paths 2 in
      let j0 = Journal.open_ shard0 in
      Journal.log_submit j0 (Request.v 1 1 Op.Write 5);
      Journal.log_qualified_stamped j0 [ ((1, 1), 0) ];
      Journal.log_submit j0 (Request.v 3 1 Op.Read 9);
      Journal.log_qualified_stamped j0 [ ((3, 1), 2) ];
      Journal.close j0;
      let jg = Journal.open_ global in
      Journal.log_submit jg (Request.v 2 1 Op.Write 7);
      Journal.log_qualified_stamped jg [ ((2, 1), 1) ];
      Journal.close jg;
      Alcotest.(check bool) "manifest makes it a segment dir" true
        (Journal.is_segment_dir dir);
      let r = Journal.recover_dir dir in
      Alcotest.(check (list (pair int int)))
        "merged history interleaves lanes by gseq"
        [ (1, 1); (2, 1); (3, 1) ]
        (List.map Request.key r.Journal.history);
      Alcotest.(check bool) "replay counted across segments" true
        (r.Journal.replayed >= 6))

let test_segment_mid_corruption_names_segment () =
  with_segment_dir ~shards:2 (fun dir paths ->
      (* Shard 0 carries garbage in the middle of its log — unrepairable
         (only tails may be truncated), and the error must say which segment
         is bad so the operator knows what to restore. *)
      let shard0 = List.nth paths 0 and global = List.nth paths 2 in
      let oc = open_out shard0 in
      output_string oc "S 1,1,1,r,5,standard,0.0\nGARBAGE LINE\nQ 1 1\n";
      close_out oc;
      let jg = Journal.open_ global in
      Journal.log_submit jg (Request.v 2 1 Op.Write 7);
      Journal.log_qualified_stamped jg [ ((2, 1), 0) ];
      Journal.close jg;
      let names_segment m =
        let needle = Filename.basename shard0 in
        let nh = String.length m and nn = String.length needle in
        let rec at i = i + nn <= nh && (String.sub m i nn = needle || at (i + 1)) in
        at 0
      in
      (match Journal.recover_dir dir with
      | exception Failure m ->
        Alcotest.(check bool)
          (Printf.sprintf "error names the bad segment (got: %s)" m)
          true (names_segment m)
      | _ -> Alcotest.fail "mid-segment corruption must be refused");
      (* --repair doesn't paper over it either: truncation only ever drops a
         torn tail, never a corrupt middle. *)
      match Journal.recover_segments ~repair:true dir with
      | exception Failure m ->
        Alcotest.(check bool) "repair error names the segment too" true
          (names_segment m)
      | _ -> Alcotest.fail "repair must refuse mid-segment corruption")

let test_segment_torn_tail_isolated () =
  with_segment_dir ~shards:2 (fun dir paths ->
      (* A crash tears the last record of shard 0 only; siblings must
         recover untouched, and --repair truncates just the torn segment. *)
      let shard0 = List.nth paths 0 and global = List.nth paths 2 in
      let j0 = Journal.open_ shard0 in
      Journal.log_submit j0 (Request.v 1 1 Op.Write 5);
      Journal.log_qualified_stamped j0 [ ((1, 1), 0) ];
      Journal.close j0;
      let oc = open_out_gen [ Open_append ] 0o644 shard0 in
      output_string oc "S 99,99,1,r";
      close_out oc;
      let jg = Journal.open_ global in
      Journal.log_submit jg (Request.v 2 1 Op.Write 7);
      Journal.log_qualified_stamped jg [ ((2, 1), 1) ];
      Journal.close jg;
      let segs = Journal.recover_segments ~repair:true dir in
      let seg name = List.assoc name segs in
      Alcotest.(check int) "torn tail dropped in the bad segment" 1
        (seg (Filename.basename shard0)).Journal.corrupt_dropped;
      Alcotest.(check int) "sibling segment replays clean" 0
        (seg (Filename.basename global)).Journal.corrupt_dropped;
      (* The merged view still interleaves both lanes' history... *)
      let r = Journal.recover_dir dir in
      Alcotest.(check (list (pair int int)))
        "merged history survives the torn sibling"
        [ (1, 1); (2, 1) ]
        (List.map Request.key r.Journal.history);
      (* ...and the repair physically truncated the torn tail. *)
      let again = Journal.recover_segments dir in
      Alcotest.(check int) "repaired segment is clean on re-read" 0
        (List.assoc (Filename.basename shard0) again).Journal.corrupt_dropped)

let test_segment_dir_rejects_bad_manifest () =
  with_segment_dir ~shards:2 (fun dir _paths ->
      let oc = open_out_bin (Filename.concat dir "MANIFEST") in
      output_string oc "not a manifest\n";
      close_out oc;
      Alcotest.(check bool) "garbage manifest refused" true
        (try
           ignore (Journal.recover_dir dir);
           false
         with Failure _ -> true);
      Alcotest.check_raises "single shard refused"
        (Invalid_argument "Journal.init_segment_dir: needs at least 2 shards")
        (fun () -> ignore (Journal.init_segment_dir dir ~shards:1)))

let tests =
  [
    Alcotest.test_case "journal roundtrip + recovery decision" `Quick
      test_roundtrip;
    Alcotest.test_case "torn tail tolerated" `Quick test_torn_tail_tolerated;
    Alcotest.test_case "mid-file corruption rejected" `Quick
      test_mid_file_corruption_rejected;
    Alcotest.test_case "Q without S rejected" `Quick test_unknown_qualified_rejected;
    Alcotest.test_case "sync survives any kill point" `Quick test_sync_kill_points;
    QCheck_alcotest.to_alcotest journal_matches_live_state;
    Alcotest.test_case "checkpoint suffix recovery" `Quick
      test_checkpoint_suffix_recovery;
    Alcotest.test_case "torn checkpoint falls back a block" `Quick
      test_torn_checkpoint_previous_block;
    Alcotest.test_case "crc repair truncates the corrupt tail" `Quick
      test_crc_repair_truncates;
    Alcotest.test_case "mid-record kill with checkpoints" `Quick
      test_kill_mid_record_with_checkpoints;
    Alcotest.test_case "repair on an empty journal" `Quick
      test_repair_empty_journal;
    Alcotest.test_case "repair on a checkpoint-only journal" `Quick
      test_repair_checkpoint_only_journal;
    QCheck_alcotest.to_alcotest checkpoint_equals_full_replay;
    Alcotest.test_case "gseq stamps roundtrip" `Quick test_stamped_roundtrip;
    Alcotest.test_case "unstamped records sort last" `Quick
      test_unstamped_records_sort_last;
    Alcotest.test_case "segment dir merges by gseq" `Quick
      test_segment_dir_merges_by_gseq;
    Alcotest.test_case "mid-segment corruption names the segment" `Quick
      test_segment_mid_corruption_names_segment;
    Alcotest.test_case "torn segment tail doesn't block siblings" `Quick
      test_segment_torn_tail_isolated;
    Alcotest.test_case "segment dir rejects bad manifest" `Quick
      test_segment_dir_rejects_bad_manifest;
  ]
