(* Shared helpers for the test suite. *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  if n = 0 then true
  else begin
    let rec loop i =
      if i + n > h then false
      else if String.sub haystack i n = needle then true
      else loop (i + 1)
    in
    loop 0
  end

(* Deterministic request-batch generator used by several suites: random
   pending/history request sets with controlled conflicts. *)
open Ds_model

let random_requests rng ~n_txns ~ops_per_txn ~n_objects =
  let id = ref 0 in
  List.concat_map
    (fun ta ->
      List.init ops_per_txn (fun i ->
          incr id;
          let op =
            if i = ops_per_txn - 1 && Ds_sim.Rng.float rng < 0.3 then
              if Ds_sim.Rng.bool rng then Op.Commit else Op.Abort
            else if Ds_sim.Rng.bool rng then Op.Read
            else Op.Write
          in
          match op with
          | Op.Commit | Op.Abort ->
            Request.make ~id:!id ~ta ~intrata:(i + 1) ~op ()
          | Op.Read | Op.Write ->
            Request.make ~id:!id ~ta ~intrata:(i + 1) ~op
              ~obj:(Ds_sim.Rng.int rng n_objects) ()))
    (List.init n_txns (fun i -> i + 1))

(* Sorted (ta, intrata) pairs for set comparison. *)
let sorted_keys keys =
  List.sort_uniq
    (fun (a1, a2) (b1, b2) ->
      match Int.compare a1 b1 with 0 -> Int.compare a2 b2 | c -> c)
    keys

(* Shrink-friendly QCheck2 batch generator: a batch is a list of
   (ta, op-tag, obj) triples over small ranges, so QCheck's integrated
   shrinking reduces a failing batch to a minimal one (fewer requests,
   smaller transaction/object ids) instead of mutating an opaque seed.
   Tags: 0 = read, 1 = write, 2 = commit, 3 = abort. Intrata counters are
   assigned per transaction in batch order, like a real submission stream. *)
let batch_gen ?(max_txns = 6) ?(max_objects = 8) ?(max_len = 24) () =
  QCheck2.Gen.(
    list_size (int_bound max_len)
      (triple (int_range 1 max_txns) (int_bound 3) (int_bound (max_objects - 1))))

let requests_of_triples triples =
  let next_intrata = Hashtbl.create 8 in
  let id = ref 0 in
  List.map
    (fun (ta, tag, obj) ->
      incr id;
      let intrata =
        let n = 1 + Option.value ~default:0 (Hashtbl.find_opt next_intrata ta) in
        Hashtbl.replace next_intrata ta n;
        n
      in
      match tag with
      | 0 -> Request.make ~id:!id ~ta ~intrata ~op:Op.Read ~obj ()
      | 1 -> Request.make ~id:!id ~ta ~intrata ~op:Op.Write ~obj ()
      | 2 -> Request.make ~id:!id ~ta ~intrata ~op:Op.Commit ()
      | _ -> Request.make ~id:!id ~ta ~intrata ~op:Op.Abort ())
    triples

(* All environment knobs the test suites honour, in one place (documented
   in README.md). Every parser fails loudly on a malformed value — a typo
   silently falling back to the default would void the coverage CI thinks
   it has (e.g. the whole middleware suite running at K=1 when the job
   meant K=4). *)
module Config = struct
  let pos_int_env name ~default =
    match Sys.getenv_opt name with
    | None -> default
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some n ->
        failwith
          (Printf.sprintf "%s must be a positive integer, got %d" name n)
      | None ->
        failwith
          (Printf.sprintf "%s must be a positive integer, got %S" name s))

  (* Pool size for the middleware-driven suites: CI runs the tests at both
     DS_WORKERS=1 (default) and DS_WORKERS=4. *)
  let workers () = pos_int_env "DS_WORKERS" ~default:1

  (* Scenarios the swarm smoke test runs; CI's PR job uses the default,
     the nightly job raises it. *)
  let swarm_n () = pos_int_env "DS_SWARM_N" ~default:25

  (* Multiplier on property-test case counts, for soak runs
     (DS_QCHECK_FACTOR=10 runs every property 10x longer). *)
  let qcheck_factor () = pos_int_env "DS_QCHECK_FACTOR" ~default:1

  let qcheck_count base = base * qcheck_factor ()
end

(* Backwards-compatible alias; new code should use [Config.workers]. *)
let env_workers = Config.workers
