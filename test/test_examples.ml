(* The examples/ directory is documentation that compiles — these tests keep
   it running. Each example is executed as a subprocess (dune builds them as
   test dependencies); a test asserts a clean exit plus a few key output
   lines that capture what the example demonstrates, not exact counters. *)

let run_example name =
  let path = Filename.concat "../examples" (name ^ ".exe") in
  if not (Sys.file_exists path) then
    Alcotest.failf "example binary %s not found (cwd %s)" path (Sys.getcwd ());
  let ic = Unix.open_process_in (Filename.quote path ^ " 2>&1") in
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (status, Buffer.contents buf)

let check_example name key_lines () =
  let status, output = run_example name in
  (match status with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n ->
    Alcotest.failf "%s exited with %d; output:\n%s" name n output
  | Unix.WSIGNALED n | Unix.WSTOPPED n ->
    Alcotest.failf "%s killed by signal %d; output:\n%s" name n output);
  List.iter
    (fun line ->
      if not (Helpers.contains output line) then
        Alcotest.failf "%s output is missing %S; output:\n%s" name line output)
    key_lines

let tests =
  [
    Alcotest.test_case "quickstart runs" `Quick
      (check_example "quickstart"
         [
           "protocol: ss2pl-sql";
           "incoming requests";
           "read-committed drops read locks";
         ]);
    Alcotest.test_case "sla_tiers runs" `Quick
      (check_example "sla_tiers"
         [
           "premium-first (rule language):";
           "ss2pl + fcfs order (baseline):";
           "under the declarative SLA rule";
         ]);
    Alcotest.test_case "relaxed_consistency runs" `Quick
      (check_example "relaxed_consistency"
         [
           "holiday-rush workload:";
           "rationing-1000";
           "throughput: ss2pl";
         ]);
    Alcotest.test_case "webshop runs" `Quick
      (check_example "webshop"
         [
           "protocol: webshop";
           "plain SS2PL on the same batch";
           "stock-range guarantees";
         ]);
    Alcotest.test_case "recovery runs" `Quick
      (check_example "recovery"
         [
           "*** crash";
           "recovered:";
           "after T1 commits, T2 unblocks";
         ]);
  ]
