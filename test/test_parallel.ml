(* Tests for the conflict-class parallel backend: partition properties,
   worker-pool execution semantics, the declarative workers/assignment
   relations, conflict equivalence of merged schedules, and the per-worker
   metrics report. *)

open Ds_model
open Ds_server
open Ds_core

let req id ta intrata op obj = Request.make ~id ~ta ~intrata ~op ~obj ()
let terminal id ta intrata op = Request.make ~id ~ta ~intrata ~op ()

(* --- partition: qcheck property ----------------------------------- *)

let partition_is_true_partition =
  QCheck2.Test.make ~name:"conflict-class partition is a true partition"
    ~count:300
    (Helpers.batch_gen ())
    (fun triples ->
      let batch = Helpers.requests_of_triples triples in
      let classes = Partition.partition batch in
      (* Every request lands in exactly one class. *)
      let scattered =
        List.concat_map (fun c -> c.Partition.requests) classes
      in
      let multiset rs = List.sort compare (List.map Request.key rs) in
      if multiset scattered <> multiset batch then
        QCheck2.Test.fail_report "not a partition of the batch";
      (* No two requests in different classes conflict or share a TA. *)
      let cls_of = Partition.class_of classes in
      List.iteri
        (fun i a ->
          List.iteri
            (fun j b ->
              if i < j && (Request.conflicts a b || a.Request.ta = b.Request.ta)
              then
                if cls_of a <> cls_of b then
                  QCheck2.Test.fail_reportf
                    "related requests (%d,%d) and (%d,%d) in different classes"
                    a.Request.ta a.Request.intrata b.Request.ta
                    b.Request.intrata)
            batch)
        batch;
      (* Batch order is preserved within every class. *)
      let pos = Hashtbl.create 32 in
      List.iteri (fun i r -> Hashtbl.replace pos (Request.key r) i) batch;
      List.iter
        (fun c ->
          let ps = List.map (fun r -> Hashtbl.find pos (Request.key r)) c.Partition.requests in
          if List.sort compare ps <> ps then
            QCheck2.Test.fail_report "batch order not preserved in a class")
        classes;
      true)

let test_partition_empty () =
  Alcotest.(check int) "empty batch partitions to no classes" 0
    (List.length (Partition.partition []))

let test_partition_single_txn () =
  (* One transaction touching disjoint objects: same-TA requests must stay
     in one class regardless of object overlap, in batch order. *)
  let batch =
    [ req 1 7 1 Op.Read 10; req 2 7 2 Op.Write 20; terminal 3 7 3 Op.Commit ]
  in
  match Partition.partition batch with
  | [ c ] ->
    Alcotest.(check (list (pair int int)))
      "single class holds the whole txn in order"
      (List.map Request.key batch)
      (List.map Request.key c.Partition.requests)
  | classes ->
    Alcotest.failf "single-txn batch split into %d classes"
      (List.length classes)

let test_partition_fully_conflicting () =
  (* Distinct transactions all writing one object: one class, batch order
     preserved — the parallel backend degrades to sequential here. *)
  let qcheck_conflicting =
    QCheck2.Test.make ~name:"fully-conflicting batch is one class"
      ~count:(Helpers.Config.qcheck_count 100)
      QCheck2.Gen.(int_range 2 12)
      (fun n ->
        let batch = List.init n (fun i -> req (i + 1) (i + 1) 1 Op.Write 5) in
        match Partition.partition batch with
        | [ c ] ->
          List.map Request.key c.Partition.requests = List.map Request.key batch
        | _ -> false)
  in
  match QCheck2.Test.check_exn qcheck_conflicting with
  | () -> ()
  | exception QCheck2.Test.Test_fail (name, _) -> Alcotest.fail name

let test_partition_examples () =
  (* Two independent writers, one shared-object pair, one read-only group. *)
  let batch =
    [
      req 1 1 1 Op.Write 10;
      req 2 2 1 Op.Write 20;
      req 3 3 1 Op.Write 10;
      (* conflicts with id 1 *)
      req 4 4 1 Op.Read 30;
      req 5 5 1 Op.Read 30;
      (* read-read: no edge *)
    ]
  in
  let classes = Partition.partition batch in
  Alcotest.(check int) "4 classes" 4 (List.length classes);
  let cls_of = Partition.class_of classes in
  Alcotest.(check bool) "w-w same class" true
    (cls_of (List.nth batch 0) = cls_of (List.nth batch 2));
  Alcotest.(check bool) "r-r different classes" true
    (cls_of (List.nth batch 3) <> cls_of (List.nth batch 4));
  Alcotest.(check (list int)) "ids in first-appearance order" [ 0; 1; 2; 3 ]
    (List.map (fun c -> c.Partition.id) classes)

(* --- worker pool -------------------------------------------------- *)

let run_pool ~workers batch =
  let engine = Ds_sim.Engine.create () in
  let pool = Worker_pool.create engine Cost_model.default ~workers in
  let deliveries = ref [] in
  let result = ref None in
  Worker_pool.execute pool batch
    ~on_each:(fun ~worker ~cls ~pos r -> deliveries := (worker, cls, pos, r) :: !deliveries)
    (fun res -> result := Some res);
  Ds_sim.Engine.run engine;
  (pool, Ds_sim.Engine.now engine, List.rev !deliveries, !result)

let independent_batch n =
  List.init n (fun i -> req (i + 1) (i + 1) 1 Op.Write (100 + i))

let test_pool_speedup () =
  let batch = independent_batch 16 in
  let _, t1, d1, r1 = run_pool ~workers:1 batch in
  let _, t4, d4, r4 = run_pool ~workers:4 batch in
  Alcotest.(check bool) "k1 completed" true (r1 = Some `Completed);
  Alcotest.(check bool) "k4 completed" true (r4 = Some `Completed);
  Alcotest.(check int) "k1 delivers all" 16 (List.length d1);
  Alcotest.(check int) "k4 delivers all" 16 (List.length d4);
  Alcotest.(check bool)
    (Printf.sprintf "independent batch >=2x faster on 4 workers (%.4f vs %.4f)"
       t1 t4)
    true
    (t4 <= t1 /. 2.)

let test_pool_conflicts_serialize () =
  (* All five requests write the same object: one class, one worker, batch
     order preserved — no speedup possible. *)
  let batch = List.init 5 (fun i -> req (i + 1) (i + 1) 1 Op.Write 7) in
  let _, t1, _, _ = run_pool ~workers:1 batch in
  let _, t4, d4, _ = run_pool ~workers:4 batch in
  Alcotest.(check (float 1e-9)) "conflicting batch gains nothing" t1 t4;
  let workers = List.sort_uniq compare (List.map (fun (w, _, _, _) -> w) d4) in
  Alcotest.(check int) "single worker used" 1 (List.length workers);
  Alcotest.(check (list (pair int int))) "batch order preserved"
    (List.map Request.key batch)
    (List.map (fun (_, _, _, r) -> Request.key r) d4)

let test_pool_batch_barrier () =
  (* Batch 2 conflicts with batch 1 on object 5; with the barrier, every
     batch-1 delivery precedes every batch-2 delivery of that object. *)
  let engine = Ds_sim.Engine.create () in
  let pool = Worker_pool.create engine Cost_model.default ~workers:4 in
  let batch1 =
    [ req 1 1 1 Op.Write 5; req 2 2 1 Op.Write 6; req 3 3 1 Op.Write 7 ]
  in
  let batch2 = [ req 4 4 1 Op.Read 5; req 5 5 1 Op.Write 8 ] in
  let order = ref [] in
  let record r = order := Request.key r :: !order in
  Worker_pool.execute pool batch1
    ~on_each:(fun ~worker:_ ~cls:_ ~pos:_ r -> record r)
    (fun _ -> ());
  Worker_pool.execute pool batch2
    ~on_each:(fun ~worker:_ ~cls:_ ~pos:_ r -> record r)
    (fun _ -> ());
  Ds_sim.Engine.run engine;
  let order = List.rev !order in
  Alcotest.(check int) "all delivered" 5 (List.length order);
  let idx k =
    let rec go i = function
      | [] -> -1
      | x :: rest -> if x = k then i else go (i + 1) rest
    in
    go 0 order
  in
  List.iter
    (fun k1 ->
      List.iter
        (fun k2 ->
          Alcotest.(check bool) "cross-batch order" true (idx k1 < idx k2))
        (List.map Request.key batch2))
    (List.map Request.key batch1);
  Alcotest.(check int) "two batches drained" 2 (Worker_pool.batch_count pool)

let test_pool_empty_batch () =
  let _, _, deliveries, result = run_pool ~workers:4 [] in
  Alcotest.(check bool) "empty batch completes" true (result = Some `Completed);
  Alcotest.(check int) "nothing delivered" 0 (List.length deliveries)

let test_pool_failure () =
  let engine = Ds_sim.Engine.create () in
  let pool = Worker_pool.create engine Cost_model.default ~workers:4 in
  let batch = independent_batch 8 in
  let poison = Request.key (List.nth batch 3) in
  Worker_pool.set_fault_hook pool (fun r ->
      if Request.key r = poison then `Fail else `Ok);
  let delivered = ref [] in
  let result = ref None in
  Worker_pool.execute pool batch
    ~on_each:(fun ~worker:_ ~cls:_ ~pos:_ r -> delivered := Request.key r :: !delivered)
    (fun res -> result := Some res);
  Ds_sim.Engine.run engine;
  (match !result with
  | Some (`Failed r) ->
    Alcotest.(check (pair int int)) "failed request reported" poison (Request.key r)
  | _ -> Alcotest.fail "expected `Failed");
  Alcotest.(check bool) "poison never delivered" false
    (List.mem poison !delivered);
  (* The pool keeps draining and stays usable for the retry. *)
  Alcotest.(check int) "batch drained" 1 (Worker_pool.batch_count pool)

let test_pool_k1_matches_backend () =
  (* K=1 must be the plain sequential backend: same completion time, same
     executed count. *)
  let batch =
    [
      req 1 1 1 Op.Write 1; req 2 1 2 Op.Read 2; terminal 3 1 3 Op.Commit;
      req 4 2 1 Op.Write 1;
    ]
  in
  let engine_b = Ds_sim.Engine.create () in
  let backend = Backend.create engine_b Cost_model.default in
  Backend.execute_seq backend batch ~on_each:(fun _ -> ()) (fun () -> ());
  Ds_sim.Engine.run engine_b;
  let _, t_pool, deliveries, _ = run_pool ~workers:1 batch in
  Alcotest.(check (float 1e-12)) "identical completion time"
    (Ds_sim.Engine.now engine_b) t_pool;
  Alcotest.(check (list (pair int int))) "batch order delivery"
    (List.map Request.key batch)
    (List.map (fun (_, _, _, r) -> Request.key r) deliveries);
  List.iter
    (fun (w, _, _, _) -> Alcotest.(check int) "worker 0" 0 w)
    deliveries

(* --- middleware end-to-end with workers=4 ------------------------- *)

let middleware_run ?(workers = 4) ?metrics () =
  Middleware.run_full
    {
      Middleware.default_config with
      Middleware.n_clients = 15;
      duration = 3.0;
      workers;
      charge_scheduler_time = false;
      spec =
        { Ds_workload.Spec.paper_default with Ds_workload.Spec.n_objects = 2000 };
      metrics;
    }

let merged_schedule sched =
  let rels = Scheduler.relations sched in
  let rte = Relations.rte_requests rels in
  let by_key = Hashtbl.create (2 * List.length rte) in
  List.iter (fun r -> Hashtbl.replace by_key (Request.key r) r) rte;
  ( rte,
    List.filter_map
      (fun key -> Hashtbl.find_opt by_key key)
      (Relations.execution_order rels) )

let test_middleware_parallel_clean () =
  let s, sched = middleware_run () in
  Alcotest.(check bool) "made progress" true (s.Middleware.committed_txns > 0);
  Alcotest.(check int) "ran with 4 workers" 4 s.Middleware.workers;
  Alcotest.(check bool) "batches drained" true
    (s.Middleware.batches_dispatched > 0);
  let rte, merged = merged_schedule sched in
  let report =
    Ds_check.Serializability.check_committed
      (Ds_check.Conflict_graph.events_of_requests rte)
  in
  Alcotest.(check bool) "rte checker-clean" true
    (Ds_check.Serializability.is_clean report);
  let eq = Ds_check.Equivalence.check ~reference:rte ~candidate:merged () in
  Alcotest.(check bool)
    (Format.asprintf "merged conflict-equivalent to admitted order: %a"
       Ds_check.Equivalence.pp_report eq)
    true
    (Ds_check.Equivalence.is_equivalent eq)

let test_assignment_relations_sql () =
  let _, sched = middleware_run () in
  let rels = Scheduler.relations sched in
  Alcotest.(check int) "workers relation has 4 rows" 4
    (Relations.worker_count rels);
  Alcotest.(check bool) "assignment rows logged" true
    (Relations.assignment_count rels > 0);
  (* Declarative access: the placement is queryable like requests/history. *)
  (match
     Ds_sql.Exec.exec_script rels.Relations.catalog
       "SELECT worker, COUNT(*) FROM assignment GROUP BY worker"
   with
  | Ds_sql.Exec.Rows (_, rows) ->
    Alcotest.(check bool) "every worker ran work" true (List.length rows >= 2)
  | _ -> Alcotest.fail "expected rows from assignment");
  match
    Ds_sql.Exec.exec_script rels.Relations.catalog "SELECT * FROM workers"
  with
  | Ds_sql.Exec.Rows (_, rows) ->
    Alcotest.(check int) "workers rows via SQL" 4 (List.length rows)
  | _ -> Alcotest.fail "expected rows from workers"

let test_assignment_relations_datalog () =
  let _, sched = middleware_run () in
  let rels = Scheduler.relations sched in
  let program =
    Ds_datalog.Dl_parser.parse_program
      "busy(W) :- assignment(_, _, W, _, _, _)."
  in
  let engine = Ds_datalog.Dl_engine.create program in
  Ds_datalog.Dl_engine.load_rows engine "assignment"
    (Relations.table_facts rels "assignment");
  let busy = Ds_datalog.Dl_engine.query engine "busy" in
  Alcotest.(check bool) "datalog sees busy workers" true
    (List.length busy >= 2 && List.length busy <= 4)

let test_metrics_report_per_worker () =
  let m = Ds_obs.Metrics.create () in
  let _ = middleware_run ~metrics:m () in
  let rendered = Ds_obs.Metrics.render m in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "metrics report mentions %S" needle)
        true
        (Helpers.contains rendered needle))
    [ "parallel backend: 4 worker(s)"; "makespan"; "worker 0"; "worker 3"; "util" ];
  match Ds_obs.Metrics.parallel m with
  | None -> Alcotest.fail "parallel metrics not set"
  | Some p ->
    Alcotest.(check int) "four worker rows" 4
      (List.length p.Ds_obs.Metrics.per_worker);
    Alcotest.(check bool) "positive makespan" true
      (p.Ds_obs.Metrics.makespan_mean > 0.)

let test_workers_one_no_parallel_noise () =
  (* The K=1 configuration must not change observable output formats. *)
  let s, _ = middleware_run ~workers:1 () in
  let rendered = Format.asprintf "%a" Middleware.pp_stats s in
  Alcotest.(check bool) "no parallel clause at K=1" false
    (Helpers.contains rendered "parallel(")

(* --- supervision: worker faults, reassignment, hedging ------------ *)

let keys_once name keys =
  let sorted = List.sort compare keys in
  let rec dup = function
    | a :: (b :: _ as rest) -> if a = b then true else dup rest
    | _ -> false
  in
  Alcotest.(check bool) (name ^ ": no duplicate delivery") false (dup sorted)

let test_pool_crash_reassigns () =
  (* Worker 0 crashes before starting anything; its queued classes must all
     run elsewhere, each request delivered exactly once. *)
  let engine = Ds_sim.Engine.create () in
  let pool = Worker_pool.create engine Cost_model.default ~workers:4 in
  Worker_pool.set_worker_fault_hook pool
    (Some
       (fun ~alive:_ -> [ Worker_pool.Crash { worker = 0; after = 0 } ]));
  let events = ref [] in
  Worker_pool.set_event_hook pool (Some (fun e -> events := e :: !events));
  let batch = independent_batch 12 in
  let delivered = ref [] in
  let result = ref None in
  Worker_pool.execute pool batch
    ~on_each:(fun ~worker ~cls:_ ~pos:_ r ->
      delivered := (worker, Request.key r) :: !delivered)
    (fun res -> result := Some res);
  Ds_sim.Engine.run engine;
  Alcotest.(check bool) "completed" true (!result = Some `Completed);
  Alcotest.(check int) "all delivered" 12 (List.length !delivered);
  keys_once "crash" (List.map snd !delivered);
  Alcotest.(check int) "one crash counted" 1 (Worker_pool.worker_crashes pool);
  Alcotest.(check bool) "classes reassigned" true
    (Worker_pool.reassigned_classes pool > 0);
  Alcotest.(check bool) "nothing ran on the crashed worker" true
    (List.for_all (fun (w, _) -> w <> 0) !delivered);
  Alcotest.(check bool) "crash event observed" true
    (List.exists
       (function Worker_pool.Worker_crashed { worker = 0 } -> true | _ -> false)
       !events);
  (* The crash was per-batch: worker 0 rejoins for the next one. *)
  Worker_pool.set_worker_fault_hook pool None;
  Alcotest.(check (list int)) "all alive again" [ 0; 1; 2; 3 ]
    (List.sort compare (Worker_pool.alive_workers pool))

let test_pool_death_is_permanent () =
  let engine = Ds_sim.Engine.create () in
  let pool = Worker_pool.create engine Cost_model.default ~workers:3 in
  Worker_pool.set_worker_fault_hook pool
    (Some (fun ~alive -> if List.mem 1 alive then [ Worker_pool.Die { worker = 1 } ] else []));
  let delivered = ref [] in
  let run_batch batch =
    Worker_pool.execute pool batch
      ~on_each:(fun ~worker ~cls:_ ~pos:_ r ->
        delivered := (worker, Request.key r) :: !delivered)
      (fun _ -> ());
    Ds_sim.Engine.run engine
  in
  run_batch (independent_batch 6);
  run_batch
    (List.init 6 (fun i -> req (100 + i) (100 + i) 1 Op.Write (500 + i)));
  Alcotest.(check int) "one death" 1 (Worker_pool.worker_deaths pool);
  Alcotest.(check (list int)) "worker 1 stays dead" [ 1 ]
    (Worker_pool.dead_workers pool);
  Alcotest.(check int) "both batches fully delivered" 12
    (List.length !delivered);
  keys_once "death" (List.map snd !delivered);
  Alcotest.(check bool) "dead worker never delivers" true
    (List.for_all (fun (w, _) -> w <> 1) !delivered)

let test_pool_stall_hedged_exactly_once () =
  (* Worker 0 turns straggler; the deadline declares it stuck and hedging
     races its classes on survivors. First-wins dedup keeps every request
     single-delivery. *)
  let engine = Ds_sim.Engine.create () in
  let pool = Worker_pool.create engine Cost_model.default ~workers:2 in
  Worker_pool.set_deadline_factor pool (Some 2.);
  Worker_pool.set_hedging pool true;
  Worker_pool.set_worker_fault_hook pool
    (Some (fun ~alive:_ -> [ Worker_pool.Slow { worker = 0; delay = 1.0 } ]));
  let delivered = ref [] in
  let result = ref None in
  Worker_pool.execute pool (independent_batch 8)
    ~on_each:(fun ~worker:_ ~cls:_ ~pos:_ r ->
      delivered := Request.key r :: !delivered)
    (fun res -> result := Some res);
  Ds_sim.Engine.run engine;
  Alcotest.(check bool) "completed" true (!result = Some `Completed);
  Alcotest.(check int) "all delivered" 8 (List.length !delivered);
  keys_once "hedge" !delivered;
  Alcotest.(check bool) "stall detected" true
    (Worker_pool.worker_stalls_detected pool > 0);
  Alcotest.(check bool) "hedges dispatched" true
    (Worker_pool.hedged_classes pool > 0)

let test_pool_hedge_single_finish () =
  (* Regression: after a hedge completes the batch, the slow primary's late
     copy must not complete it a second time — the next batch would be
     dispatched twice. Count continuation firings across two batches. *)
  let engine = Ds_sim.Engine.create () in
  let pool = Worker_pool.create engine Cost_model.default ~workers:2 in
  Worker_pool.set_deadline_factor pool (Some 1.5);
  Worker_pool.set_hedging pool true;
  Worker_pool.set_worker_fault_hook pool
    (Some (fun ~alive:_ -> [ Worker_pool.Slow { worker = 0; delay = 2.0 } ]));
  let finishes = ref 0 in
  Worker_pool.execute pool (independent_batch 6)
    ~on_each:(fun ~worker:_ ~cls:_ ~pos:_ _ -> ())
    (fun _ -> incr finishes);
  Worker_pool.execute pool
    (List.init 4 (fun i -> req (50 + i) (50 + i) 1 Op.Write (300 + i)))
    ~on_each:(fun ~worker:_ ~cls:_ ~pos:_ _ -> ())
    (fun _ -> incr finishes);
  Ds_sim.Engine.run engine;
  Alcotest.(check int) "each batch finishes exactly once" 2 !finishes;
  Alcotest.(check int) "two batches drained" 2 (Worker_pool.batch_count pool)

let test_pool_conflict_order_survives_crash () =
  (* A crashing worker must not reorder conflicting requests: classes are
     reassigned whole, so in-class (= conflict) order is preserved. *)
  let engine = Ds_sim.Engine.create () in
  let pool = Worker_pool.create engine Cost_model.default ~workers:3 in
  Worker_pool.set_worker_fault_hook pool
    (Some (fun ~alive:_ -> [ Worker_pool.Crash { worker = 1; after = 0 } ]));
  (* three conflict classes of two ordered writes each *)
  let batch =
    List.concat_map
      (fun c ->
        [
          req ((c * 10) + 1) ((c * 10) + 1) 1 Op.Write c;
          req ((c * 10) + 2) ((c * 10) + 2) 1 Op.Write c;
        ])
      [ 0; 1; 2 ]
  in
  let delivered = ref [] in
  Worker_pool.execute pool batch
    ~on_each:(fun ~worker:_ ~cls:_ ~pos:_ r -> delivered := r :: !delivered)
    (fun _ -> ());
  Ds_sim.Engine.run engine;
  let order = List.rev !delivered in
  Alcotest.(check int) "all delivered" 6 (List.length order);
  let eq = Ds_check.Equivalence.check ~reference:batch ~candidate:order () in
  Alcotest.(check bool) "conflict-equivalent to batch order" true
    (Ds_check.Equivalence.is_equivalent eq)

let test_middleware_worker_faults_clean () =
  (* End-to-end: injected worker crashes and stalls at K=4, supervisor
     reassigning and hedging — the merged schedule must stay checker-clean
     and conflict-equivalent, and the supervision relation queryable. *)
  let s, sched =
    Middleware.run_full
      {
        Middleware.default_config with
        Middleware.n_clients = 15;
        duration = 3.0;
        workers = 4;
        charge_scheduler_time = false;
        hedging = true;
        faults =
          {
            Ds_core.Faults.none with
            Ds_core.Faults.worker_crash_rate = 0.2;
            worker_stall_rate = 0.3;
            worker_stall_duration = 0.05;
          };
        spec =
          {
            Ds_workload.Spec.paper_default with
            Ds_workload.Spec.n_objects = 2000;
          };
      }
  in
  Alcotest.(check bool) "made progress" true (s.Middleware.committed_txns > 0);
  Alcotest.(check bool) "crashes injected" true (s.Middleware.worker_crashes > 0);
  Alcotest.(check bool) "classes reassigned" true
    (s.Middleware.reassigned_classes > 0);
  let rte, merged = merged_schedule sched in
  let report =
    Ds_check.Serializability.check_committed
      (Ds_check.Conflict_graph.events_of_requests rte)
  in
  Alcotest.(check bool) "rte checker-clean under worker faults" true
    (Ds_check.Serializability.is_clean report);
  let eq = Ds_check.Equivalence.check ~reference:rte ~candidate:merged () in
  Alcotest.(check bool) "merged conflict-equivalent under worker faults" true
    (Ds_check.Equivalence.is_equivalent eq);
  let rels = Scheduler.relations sched in
  match
    Ds_sql.Exec.exec_script rels.Relations.catalog
      "SELECT event, COUNT(*) FROM supervision GROUP BY event"
  with
  | Ds_sql.Exec.Rows (_, rows) ->
    Alcotest.(check bool) "supervision rows via SQL" true
      (List.length rows >= 1)
  | _ -> Alcotest.fail "expected rows from supervision"

let tests =
  [
    QCheck_alcotest.to_alcotest partition_is_true_partition;
    Alcotest.test_case "partition examples" `Quick test_partition_examples;
    Alcotest.test_case "partition of the empty batch" `Quick
      test_partition_empty;
    Alcotest.test_case "partition keeps a single txn together" `Quick
      test_partition_single_txn;
    Alcotest.test_case "fully-conflicting batch is one class" `Quick
      test_partition_fully_conflicting;
    Alcotest.test_case "pool speedup on independent batch" `Quick
      test_pool_speedup;
    Alcotest.test_case "conflicting batch serializes" `Quick
      test_pool_conflicts_serialize;
    Alcotest.test_case "cross-batch barrier ordering" `Quick
      test_pool_batch_barrier;
    Alcotest.test_case "empty batch" `Quick test_pool_empty_batch;
    Alcotest.test_case "worker failure reported early" `Quick test_pool_failure;
    Alcotest.test_case "K=1 pool = sequential backend" `Quick
      test_pool_k1_matches_backend;
    Alcotest.test_case "middleware @4 workers checker-clean" `Quick
      test_middleware_parallel_clean;
    Alcotest.test_case "workers/assignment via SQL" `Quick
      test_assignment_relations_sql;
    Alcotest.test_case "assignment via datalog" `Quick
      test_assignment_relations_datalog;
    Alcotest.test_case "metrics report per-worker rows" `Quick
      test_metrics_report_per_worker;
    Alcotest.test_case "K=1 output unchanged" `Quick
      test_workers_one_no_parallel_noise;
    Alcotest.test_case "crash reassigns unstarted classes" `Quick
      test_pool_crash_reassigns;
    Alcotest.test_case "permanent death removes the worker" `Quick
      test_pool_death_is_permanent;
    Alcotest.test_case "stuck worker hedged, exactly-once" `Quick
      test_pool_stall_hedged_exactly_once;
    Alcotest.test_case "hedged batch finishes exactly once" `Quick
      test_pool_hedge_single_finish;
    Alcotest.test_case "conflict order survives a crash" `Quick
      test_pool_conflict_order_survives_crash;
    Alcotest.test_case "middleware worker faults checker-clean" `Quick
      test_middleware_worker_faults_clean;
  ]
