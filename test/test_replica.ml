(* Hot-standby replication (lib/replica): seeded link-fault determinism,
   partition hold/release semantics, the journal-streaming session protocol
   (watermark convergence, divergence detection), epoch-fenced failover both
   mid-run (pcrash) and offline (dsched failover), and the failover
   durability checker. *)

open Ds_core
open Ds_replica

let small_spec =
  { Ds_workload.Spec.paper_default with Ds_workload.Spec.n_objects = 2000 }

let cfg ?(n_clients = 12) ?(duration = 3.) ?(faults = Faults.none)
    ~journal_path () =
  {
    Middleware.default_config with
    Middleware.n_clients;
    duration;
    spec = small_spec;
    charge_scheduler_time = false;
    faults;
    client_redo = true;
    batch_timeout = Some 0.25;
    journal_path = Some journal_path;
    checkpoint_interval = Some 10;
  }

let temp_name suffix =
  let p = Filename.temp_file "ds_replica_test" suffix in
  Sys.remove p;
  p

let rm_f p = try Sys.remove p with Sys_error _ -> ()

let with_session_run ?faults ~mode ~plan f =
  let journal = temp_name ".journal" in
  let dir = temp_name ".repl.d" in
  let cleanup () =
    rm_f journal;
    rm_f (Session.standby_path_of dir);
    rm_f (Filename.concat dir "REPL");
    try Sys.rmdir dir with Sys_error _ -> ()
  in
  Fun.protect ~finally:cleanup (fun () ->
      let session = Session.create ~mode ~plan ~seed:7 ~dir () in
      let config =
        {
          (cfg ?faults ~journal_path:journal ()) with
          Middleware.repl = Some (Session.hooks session);
        }
      in
      let stats = Middleware.run config in
      Session.close session;
      f ~stats ~session ~dir)

(* --- link ----------------------------------------------------------------- *)

let lossy =
  {
    Link.none with
    Link.drop_rate = 0.2;
    dup_rate = 0.1;
    reorder_rate = 0.2;
    delay_rate = 0.1;
    spike_delay = 0.05;
  }

let drain link ~until =
  let out = ref [] in
  let t = ref 0.0 in
  while !t <= until do
    out := !out @ Link.deliver link ~now:!t;
    t := !t +. 0.005
  done;
  !out

let test_link_deterministic () =
  let run () =
    let link = Link.create lossy (Ds_sim.Rng.create 42) in
    for lsn = 1 to 200 do
      Link.send link
        ~now:(float_of_int lsn *. 0.01)
        ~epoch:0 ~lsn
        ~payload:(Printf.sprintf "r%d" lsn)
    done;
    List.map
      (fun m -> (m.Link.m_lsn, m.Link.m_payload))
      (drain link ~until:10.)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "delivered something" true (a <> []);
  Alcotest.(check bool) "same seed, same faulty delivery sequence" true (a = b)

let test_link_partition_holds () =
  let plan =
    { Link.none with Link.partition_at = Some 1.0; partition_for = 1.0 }
  in
  let link = Link.create plan (Ds_sim.Rng.create 5) in
  Link.send link ~now:1.2 ~epoch:0 ~lsn:1 ~payload:"held";
  Alcotest.(check bool) "link is down mid-partition" true (Link.down link ~now:1.5);
  Alcotest.(check (list int)) "nothing delivered while partitioned" []
    (List.map (fun m -> m.Link.m_lsn) (Link.deliver link ~now:1.9));
  Alcotest.(check bool) "held copies counted" true (Link.held link > 0);
  Alcotest.(check (list int)) "released after the heal" [ 1 ]
    (List.map (fun m -> m.Link.m_lsn) (Link.deliver link ~now:2.5))

(* --- session -------------------------------------------------------------- *)

let test_session_converges () =
  with_session_run ~mode:Session.Async ~plan:lossy
    (fun ~stats ~session ~dir:_ ->
      Alcotest.(check bool) "work committed" true
        (stats.Middleware.committed_txns > 0);
      Alcotest.(check bool) "journal streamed" true
        (Session.primary_lsn session > 0);
      (* The post-run settle loop retransmits everything a lossy (but never
         partitioned) link dropped: the mirror must be fully caught up. *)
      Alcotest.(check int) "zero lag at close" 0 (Session.lag session);
      Alcotest.(check int) "watermark reached the head"
        (Session.primary_lsn session)
        (Session.watermark session);
      Alcotest.(check bool) "losses actually exercised retransmission" true
        (Session.retransmits session > 0);
      Alcotest.(check bool) "checkpoint hashes compared" true
        (Session.hash_checks session > 0);
      Alcotest.(check int) "no divergence" 0 (Session.divergences session);
      Alcotest.(check int) "never promoted" 0 stats.Middleware.failovers;
      (* The standby mirror is a valid journal in its own right. *)
      let r = Journal.recover (Session.standby_path session) in
      Alcotest.(check int) "standby replays clean" 0
        r.Journal.corrupt_dropped;
      Alcotest.(check int) "standby still at epoch 0" 0 r.Journal.epoch)

let test_session_pcrash_fails_over () =
  with_session_run ~mode:Session.Async ~plan:lossy
    ~faults:{ Faults.none with Faults.pcrash_at_cycle = Some 8 }
    (fun ~stats ~session ~dir:_ ->
      Alcotest.(check int) "exactly one failover" 1 stats.Middleware.failovers;
      Alcotest.(check int) "promoted to epoch 1" 1 stats.Middleware.repl_epoch;
      Alcotest.(check bool) "session knows it was promoted" true
        (Session.promoted session);
      Alcotest.(check bool) "the promoted run kept committing" true
        (stats.Middleware.committed_txns > 0);
      Alcotest.(check int) "no divergence across the promotion" 0
        stats.Middleware.repl_divergences;
      (* The promoted standby journal carries the new epoch durably. *)
      let r = Journal.recover (Session.standby_path session) in
      Alcotest.(check int) "epoch stamped in the journal" 1 r.Journal.epoch)

let test_offline_promotion_monotonic_epoch () =
  with_session_run ~mode:Session.Sync ~plan:Link.none
    (fun ~stats:_ ~session:_ ~dir ->
      Alcotest.(check bool) "session dir is recognizable" true
        (Session.is_repl_dir dir);
      Alcotest.(check bool) "manifest records the mode" true
        (Session.mode_of_dir dir = Session.Sync);
      let first = Failover.promote dir in
      Alcotest.(check int) "first offline promotion is epoch 1" 1
        first.Failover.epoch;
      Alcotest.(check bool) "promoted state holds the mirrored history" true
        (first.Failover.recovered.Journal.replayed > 0);
      (* A second promotion (say the first new primary also died) must fence
         the previous epoch behind a strictly larger one. *)
      let second = Failover.promote dir in
      Alcotest.(check int) "epochs are monotonic" 2 second.Failover.epoch)

(* --- failover durability checker ----------------------------------------- *)

let test_check_failover_classification () =
  let acked = [ (1, 5); (2, 8); (3, 15) ] in
  let survived ta = ta = 1 in
  let r =
    Ds_check.Equivalence.check_failover ~sync:false ~watermark:10 ~acked
      ~survived ()
  in
  Alcotest.(check int) "acked counted" 3 r.Ds_check.Equivalence.acked;
  Alcotest.(check int) "survivors counted" 1
    r.Ds_check.Equivalence.survived_acked;
  Alcotest.(check (list (pair int int)))
    "loss at/below the watermark is isolated"
    [ (2, 8) ]
    r.Ds_check.Equivalence.lost_below_watermark;
  Alcotest.(check (list (pair int int)))
    "loss above the watermark is isolated"
    [ (3, 15) ]
    r.Ds_check.Equivalence.lost_above_watermark;
  (* Below-watermark loss is a bug in either mode. *)
  Alcotest.(check bool) "below-watermark loss always fails" false
    (Ds_check.Equivalence.failover_ok r)

let test_check_failover_async_window () =
  (* Loss strictly above the watermark: async's documented window, a sync
     violation. *)
  let acked = [ (1, 5); (3, 15) ] in
  let survived ta = ta = 1 in
  let async =
    Ds_check.Equivalence.check_failover ~sync:false ~watermark:10 ~acked
      ~survived ()
  in
  Alcotest.(check bool) "async tolerates above-watermark loss" true
    (Ds_check.Equivalence.failover_ok async);
  let sync =
    Ds_check.Equivalence.check_failover ~sync:true ~watermark:10 ~acked
      ~survived ()
  in
  Alcotest.(check bool) "sync refuses any acked loss" false
    (Ds_check.Equivalence.failover_ok sync);
  let clean =
    Ds_check.Equivalence.check_failover ~sync:true ~watermark:10
      ~acked:[ (1, 5); (2, 8) ]
      ~survived:(fun _ -> true)
      ()
  in
  Alcotest.(check bool) "full survival passes sync" true
    (Ds_check.Equivalence.failover_ok clean)

let tests =
  [
    Alcotest.test_case "link: seeded faults are deterministic" `Quick
      test_link_deterministic;
    Alcotest.test_case "link: partition holds then releases" `Quick
      test_link_partition_holds;
    Alcotest.test_case "session: lossy link converges to zero lag" `Quick
      test_session_converges;
    Alcotest.test_case "session: pcrash promotes under a fresh epoch" `Quick
      test_session_pcrash_fails_over;
    Alcotest.test_case "failover: offline promotion, monotonic epochs" `Quick
      test_offline_promotion_monotonic_epoch;
    Alcotest.test_case "check_failover: watermark classification" `Quick
      test_check_failover_classification;
    Alcotest.test_case "check_failover: async window vs sync zero-loss" `Quick
      test_check_failover_async_window;
  ]
