let () =
  Alcotest.run "declarative_scheduling"
    [
      ("util", Test_util.tests);
      ("stats", Test_stats.tests);
      ("sim", Test_sim.tests);
      ("model", Test_model.tests);
      ("relal", Test_relal.tests);
      ("sql", Test_sql.tests);
      ("sql-random", Test_sql_random.tests);
      ("datalog", Test_datalog.tests);
      ("workload", Test_workload.tests);
      ("server", Test_server.tests);
      ("core", Test_core.tests);
      ("journal", Test_journal.tests);
      ("faults", Test_faults.tests);
      ("replica", Test_replica.tests);
      ("cli", Test_cli.tests);
      ("parallel", Test_parallel.tests);
      ("check", Test_check.tests);
      ("differential", Test_differential.tests);
      ("obs", Test_obs.tests);
      ("integration", Test_integration.tests);
      ("sharding", Test_sharding.tests);
      ("edges", Test_edges.tests);
      ("swarm", Test_swarm.tests);
      ("examples", Test_examples.tests);
    ]
