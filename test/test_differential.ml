(* Differential fuzzing of the scheduler formulations (Ds_check.Differential):
   the SQL (base + extended schema) and Datalog SS2PL formulations must agree
   with the hand-coded OCaml oracle cycle by cycle, and every produced
   schedule must pass the serializability battery. *)

open Ds_check
open Ds_core

let quick_config =
  {
    Differential.default_config with
    Differential.include_native = false;
  }

(* --- the main acceptance run ------------------------------------------- *)

let test_fuzz_100 () =
  (* 100 deterministic iterations, native 2PL server included: every subject
     formulation agrees with the oracle and every schedule is clean. *)
  let seeds = List.init 100 (fun i -> i + 1) in
  let s = Differential.run ~seeds () in
  if s.Differential.failed <> [] then
    Alcotest.failf "%a" Differential.pp_summary s;
  Alcotest.(check int) "all clean" 100 s.Differential.clean_runs;
  Alcotest.(check bool) "meaningful volume" true
    (s.Differential.total_executed > 1000)

let test_outcome_reproducible () =
  let a = Differential.run_one ~config:quick_config ~seed:3 () in
  let b = Differential.run_one ~config:quick_config ~seed:3 () in
  Alcotest.(check int) "same cycles" a.Differential.cycles b.Differential.cycles;
  Alcotest.(check int) "same executed" a.Differential.executed
    b.Differential.executed;
  Alcotest.(check int) "same commits" a.Differential.committed_txns
    b.Differential.committed_txns

let test_progress_accounting () =
  let o = Differential.run_one ~config:quick_config ~seed:1 () in
  Alcotest.(check bool) "clean" true (Differential.clean o);
  Alcotest.(check bool) "executed something" true (o.Differential.executed > 0);
  Alcotest.(check int) "every txn accounted" quick_config.Differential.n_txns
    (o.Differential.committed_txns + o.Differential.aborted_txns)

let test_trace_check_is_observation_only () =
  (* The trace cross-check (trace commit order vs rte commit order) is on by
     default; disabling it must not change any outcome field — tracing is
     pure observation. *)
  Alcotest.(check bool) "on by default" true
    Differential.default_config.Differential.check_trace;
  let with_trace = Differential.run_one ~config:quick_config ~seed:7 () in
  let without =
    Differential.run_one
      ~config:{ quick_config with Differential.check_trace = false }
      ~seed:7 ()
  in
  Alcotest.(check bool) "both clean" true
    (Differential.clean with_trace && Differential.clean without);
  Alcotest.(check int) "same cycles" with_trace.Differential.cycles
    without.Differential.cycles;
  Alcotest.(check int) "same executed" with_trace.Differential.executed
    without.Differential.executed;
  Alcotest.(check int) "same commits" with_trace.Differential.committed_txns
    without.Differential.committed_txns

(* --- the harness catches wrong protocols -------------------------------- *)

let test_catches_read_committed () =
  (* Self-test: a subject running read-committed (write locks only) must be
     caught — either it diverges from the SS2PL oracle or its schedule fails
     the rigor battery. If the harness passes a weaker protocol across all
     these contended seeds, it cannot be trusted to validate SS2PL. *)
  let subjects = [ ("read-committed", false, Builtin.read_committed_sql) ] in
  let caught = ref false in
  let seed = ref 1 in
  while (not !caught) && !seed <= 20 do
    let o = Differential.run_one ~config:quick_config ~subjects ~seed:!seed () in
    if not (Differential.clean o) then caught := true;
    incr seed
  done;
  Alcotest.(check bool) "weaker protocol detected" true !caught

let test_catches_reordering () =
  (* A protocol that ignores conflicts entirely (fcfs qualifies everything in
     arrival order) must diverge from the SS2PL oracle on a contended seed. *)
  let subjects = [ ("fcfs", false, Builtin.fcfs) ] in
  let caught = ref false in
  let seed = ref 1 in
  while (not !caught) && !seed <= 20 do
    let o = Differential.run_one ~config:quick_config ~subjects ~seed:!seed () in
    if not (Differential.clean o) then caught := true;
    incr seed
  done;
  Alcotest.(check bool) "different protocol detected" true !caught

(* --- parallel-vs-sequential oracle -------------------------------------- *)

let test_parallel_oracle_lockstep () =
  (* The lockstep mode replays the oracle's admitted batches through the
     conflict-class worker pool at several widths and demands exact conflict
     equivalence, a clean serializability battery, and identical final table
     state.  All subject formulations (SQL base, SQL extended, Datalog) stay
     in the run, so one seed covers 3+ protocols x 3 pool widths. *)
  let config =
    { quick_config with Differential.parallel_workers = [ 2; 4; 8 ] }
  in
  List.iter
    (fun seed ->
      let o = Differential.run_one ~config ~seed () in
      if not (Differential.clean o) then
        Alcotest.failf "seed %d: %a" seed
          (Fmt.list Differential.pp_failure)
          o.Differential.failures)
    [ 1; 2; 5; 11; 23 ]

let test_parallel_oracle_is_observation_only () =
  (* Replaying through the pool must not perturb the differential run itself:
     with the mode disabled every outcome field is unchanged. *)
  Alcotest.(check bool) "parallel oracle on by default" true
    (Differential.default_config.Differential.parallel_workers <> []);
  let with_parallel = Differential.run_one ~config:quick_config ~seed:9 () in
  let without =
    Differential.run_one
      ~config:{ quick_config with Differential.parallel_workers = [] }
      ~seed:9 ()
  in
  Alcotest.(check bool) "both clean" true
    (Differential.clean with_parallel && Differential.clean without);
  Alcotest.(check int) "same cycles" with_parallel.Differential.cycles
    without.Differential.cycles;
  Alcotest.(check int) "same executed" with_parallel.Differential.executed
    without.Differential.executed;
  Alcotest.(check int) "same commits" with_parallel.Differential.committed_txns
    without.Differential.committed_txns

(* --- randomized configurations ----------------------------------------- *)

let config_gen =
  QCheck2.Gen.(
    let size = int_range 2 8 in
    pair (pair size (int_range 8 24)) (pair (int_range 1 4) small_int))

let random_config_prop =
  QCheck2.Test.make ~name:"differential clean across random configs" ~count:30
    config_gen
    (fun ((n_txns, n_objects), (per_txn, seed)) ->
      let config =
        {
          quick_config with
          Differential.n_txns;
          n_objects;
          selects_per_txn = per_txn;
          updates_per_txn = per_txn;
        }
      in
      let o = Differential.run_one ~config ~seed:(seed + 1) () in
      Differential.clean o)

let tests =
  [
    Alcotest.test_case "fuzz 100 iterations clean" `Slow test_fuzz_100;
    Alcotest.test_case "outcome reproducible" `Quick test_outcome_reproducible;
    Alcotest.test_case "progress accounting" `Quick test_progress_accounting;
    Alcotest.test_case "trace check is observation-only" `Quick
      test_trace_check_is_observation_only;
    Alcotest.test_case "catches read-committed" `Quick test_catches_read_committed;
    Alcotest.test_case "catches fcfs" `Quick test_catches_reordering;
    Alcotest.test_case "parallel-vs-sequential lockstep" `Quick
      test_parallel_oracle_lockstep;
    Alcotest.test_case "parallel oracle is observation-only" `Quick
      test_parallel_oracle_is_observation_only;
    QCheck_alcotest.to_alcotest random_config_prop;
  ]
