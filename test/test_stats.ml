(* Tests for Ds_stats. *)

open Ds_stats

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let test_summary () =
  let s = Summary.create () in
  Alcotest.(check int) "empty count" 0 (Summary.count s);
  Alcotest.(check (float 0.)) "empty mean" 0. (Summary.mean s);
  List.iter (Summary.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Summary.count s);
  Alcotest.(check bool) "mean" true (feq (Summary.mean s) 5.);
  (* Sample variance of this classic set is 32/7. *)
  Alcotest.(check bool) "variance" true (feq (Summary.variance s) (32. /. 7.));
  Alcotest.(check (float 0.)) "min" 2. (Summary.min s);
  Alcotest.(check (float 0.)) "max" 9. (Summary.max s);
  Alcotest.(check (float 0.)) "sum" 40. (Summary.sum s)

let summary_merge_prop =
  QCheck2.Test.make ~name:"Summary.merge = concat" ~count:200
    QCheck2.Gen.(pair (list (float_bound_inclusive 100.)) (list (float_bound_inclusive 100.)))
    (fun (xs, ys) ->
      let a = Summary.create () and b = Summary.create () and c = Summary.create () in
      List.iter (Summary.add a) xs;
      List.iter (Summary.add b) ys;
      List.iter (Summary.add c) (xs @ ys);
      let m = Summary.merge a b in
      Summary.count m = Summary.count c
      && feq ~eps:1e-6 (Summary.mean m) (Summary.mean c)
      && feq ~eps:1e-4 (Summary.variance m) (Summary.variance c))

let test_histogram () =
  let h = Histogram.create () in
  Alcotest.(check (float 0.)) "empty quantile" 0. (Histogram.quantile h 0.5);
  for i = 1 to 1000 do
    Histogram.add h (float_of_int i /. 1000.)
  done;
  Alcotest.(check int) "count" 1000 (Histogram.count h);
  let p50 = Histogram.median h in
  Alcotest.(check bool) "median within bucket error" true
    (p50 > 0.4 && p50 < 0.65);
  let p99 = Histogram.p99 h in
  Alcotest.(check bool) "p99 near 0.99" true (p99 > 0.85 && p99 < 1.15);
  Alcotest.(check bool) "mean" true (feq ~eps:1e-6 (Histogram.mean h) 0.5005)

let test_histogram_errors () =
  let h = Histogram.create () in
  let rejects name x =
    Alcotest.check_raises name
      (Invalid_argument "Histogram.add: negative or non-finite") (fun () ->
        Histogram.add h x)
  in
  rejects "negative" (-1.);
  rejects "nan" Float.nan;
  rejects "infinity" Float.infinity;
  rejects "neg infinity" Float.neg_infinity;
  Alcotest.(check int) "nothing recorded" 0 (Histogram.count h);
  Alcotest.check_raises "bad quantile" (Invalid_argument "Histogram.quantile")
    (fun () -> ignore (Histogram.quantile h 1.5))

let histogram_quantile_monotone =
  QCheck2.Test.make ~name:"Histogram quantiles are monotone" ~count:100
    QCheck2.Gen.(list_size (int_range 1 200) (float_bound_inclusive 1000.))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (fun x -> Histogram.add h (Float.abs x)) xs;
      let qs =
        List.map (Histogram.quantile h) [ 0.; 0.1; 0.5; 0.9; 0.99; 1.0 ]
      in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
        | _ -> true
      in
      mono qs)

(* The same sample rule as Histogram.quantile: the ceil(q*n)-th smallest
   sample, 1-indexed. *)
let naive_quantile xs q =
  let arr = Array.of_list xs in
  Array.sort compare arr;
  let n = Array.length arr in
  let target = max 1 (int_of_float (ceil (q *. float_of_int n))) in
  arr.(target - 1)

let histogram_quantile_vs_sorted =
  QCheck2.Test.make
    ~name:"Histogram.quantile within bucket error of sorted reference"
    ~count:300
    QCheck2.Gen.(list_size (int_range 1 300) (float_range 1e-3 1e3))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) xs;
      (* Buckets are geometric with 20/decade, so the midpoint estimate is
         within half a bucket (10^(1/40)) of the true sample; allow a full
         bucket (10^(1/20) ~ 1.122) for boundary rounding. *)
      let tol = Float.pow 10. (1. /. 20.) in
      List.for_all
        (fun q ->
          let est = Histogram.quantile h q in
          let truth = naive_quantile xs q in
          est >= truth /. tol && est <= truth *. tol)
        [ 0.; 0.1; 0.5; 0.9; 0.99; 1.0 ])

(* The two ends of the quantile range pin down the fixed edge-case bugs:
   q = 0. must land in the bucket of the smallest sample (not an empty
   prefix), and q = 1. must land in the bucket holding max_observed. *)
let histogram_quantile_extremes =
  QCheck2.Test.make
    ~name:"Histogram.quantile endpoints bucket-consistent with min/max"
    ~count:300
    QCheck2.Gen.(list_size (int_range 1 300) (float_range 1e-3 1e3))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) xs;
      let tol = Float.pow 10. (1. /. 20.) in
      let lo = Histogram.quantile h 0. in
      let hi = Histogram.quantile h 1.0 in
      let mn = List.fold_left Float.min Float.infinity xs in
      let mx = Histogram.max_observed h in
      lo >= mn /. tol && lo <= mn *. tol
      && hi >= mx /. tol
      && hi <= mx *. tol)

let histogram_merge_prop =
  QCheck2.Test.make ~name:"Histogram.merge_into = concat" ~count:200
    QCheck2.Gen.(
      pair
        (list (float_range 1e-6 1e3))
        (list (float_range 1e-6 1e3)))
    (fun (xs, ys) ->
      let a = Histogram.create ()
      and b = Histogram.create ()
      and c = Histogram.create () in
      List.iter (Histogram.add a) xs;
      List.iter (Histogram.add b) ys;
      List.iter (Histogram.add c) (xs @ ys);
      Histogram.merge_into ~dst:a b;
      Histogram.count a = Histogram.count c
      && feq ~eps:1e-9 (Histogram.mean a) (Histogram.mean c)
      && List.for_all
           (fun q -> feq (Histogram.quantile a q) (Histogram.quantile c q))
           [ 0.1; 0.5; 0.99 ])

let run_average_prop =
  QCheck2.Test.make ~name:"Run_average.mean = naive mean per key" ~count:200
    QCheck2.Gen.(
      list_size (int_range 1 100)
        (pair (int_range 0 3) (float_bound_inclusive 100.)))
    (fun obs ->
      let r = Run_average.create () in
      List.iter (fun (key, v) -> Run_average.observe r ~key v) obs;
      List.for_all
        (fun key ->
          let vs = List.filter_map
              (fun (k, v) -> if k = key then Some v else None) obs
          in
          match vs with
          | [] -> true
          | _ ->
            let naive =
              List.fold_left ( +. ) 0. vs /. float_of_int (List.length vs)
            in
            Run_average.runs r ~key = List.length vs
            && feq ~eps:1e-6 (Run_average.mean r ~key) naive)
        [ 0; 1; 2; 3 ])

let throughput_prop =
  QCheck2.Test.make ~name:"Throughput series sums to total" ~count:200
    QCheck2.Gen.(list (float_bound_inclusive 50.))
    (fun times ->
      let t = Throughput.create ~window:1.0 () in
      List.iter (Throughput.record t) times;
      let series_sum = List.fold_left (fun acc (_, n) -> acc + n) 0 (Throughput.series t) in
      Throughput.total t = List.length times
      && series_sum = Throughput.total t
      && Throughput.in_range t 0. 51. = Throughput.total t)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.add a) [ 0.1; 0.2 ];
  List.iter (Histogram.add b) [ 10.; 20. ];
  Histogram.merge_into ~dst:a b;
  Alcotest.(check int) "merged count" 4 (Histogram.count a);
  Alcotest.(check bool) "max" true (feq (Histogram.max_observed a) 20.)

let test_counter () =
  let reg = Counter.create_registry () in
  let c = Counter.counter reg "commits" in
  Counter.incr c;
  Counter.add c 4;
  Alcotest.(check int) "value" 5 (Counter.value c);
  Alcotest.(check bool) "same counter" true (Counter.counter reg "commits" == c);
  let d = Counter.counter reg "aborts" in
  Counter.incr d;
  Alcotest.(check (list (pair string int)))
    "dump sorted"
    [ ("aborts", 1); ("commits", 5) ]
    (Counter.dump reg);
  Counter.reset_all reg;
  Alcotest.(check int) "reset" 0 (Counter.value c)

let test_throughput () =
  let t = Throughput.create ~window:1.0 () in
  Throughput.record t 0.5;
  Throughput.record t 0.9;
  Throughput.record t 2.1;
  Throughput.record_n t 2.2 3;
  Alcotest.(check int) "total" 6 (Throughput.total t);
  Alcotest.(check (list (pair (float 0.) int)))
    "series with gap"
    [ (0., 2); (1., 0); (2., 4) ]
    (Throughput.series t);
  Alcotest.(check int) "in_range" 2 (Throughput.in_range t 0. 1.)

let test_throughput_rate () =
  let t = Throughput.create ~window:1.0 () in
  Alcotest.(check (float 0.)) "empty rate" 0. (Throughput.rate t);
  (* All events at one timestamp: the span is zero, so there is no defined
     rate — the old behavior returned the raw count here. *)
  Throughput.record_n t 5.0 4;
  Alcotest.(check (float 0.)) "zero-span rate" 0. (Throughput.rate t);
  Throughput.record t 7.0;
  Alcotest.(check (float 1e-9)) "spanned rate" 2.5 (Throughput.rate t)

let test_run_average () =
  let r = Run_average.create () in
  Run_average.observe r ~key:10 1.0;
  Run_average.observe r ~key:10 3.0;
  Run_average.observe r ~key:20 5.0;
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Run_average.mean r ~key:10);
  Alcotest.(check int) "runs" 2 (Run_average.runs r ~key:10);
  (match Run_average.rows r with
  | [ (10, m1, _, 2); (20, m2, _, 1) ] ->
    Alcotest.(check bool) "rows" true (feq m1 2.0 && feq m2 5.0)
  | _ -> Alcotest.fail "unexpected rows");
  Alcotest.check_raises "missing key" Not_found (fun () ->
      ignore (Run_average.mean r ~key:99))

let tests =
  [
    Alcotest.test_case "summary" `Quick test_summary;
    QCheck_alcotest.to_alcotest summary_merge_prop;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "histogram errors" `Quick test_histogram_errors;
    QCheck_alcotest.to_alcotest histogram_quantile_monotone;
    QCheck_alcotest.to_alcotest histogram_quantile_vs_sorted;
    QCheck_alcotest.to_alcotest histogram_quantile_extremes;
    QCheck_alcotest.to_alcotest histogram_merge_prop;
    QCheck_alcotest.to_alcotest run_average_prop;
    QCheck_alcotest.to_alcotest throughput_prop;
    Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
    Alcotest.test_case "counter registry" `Quick test_counter;
    Alcotest.test_case "throughput windows" `Quick test_throughput;
    Alcotest.test_case "throughput rate span rule" `Quick test_throughput_rate;
    Alcotest.test_case "run average" `Quick test_run_average;
  ]
