(* Tests for Ds_model. *)

open Ds_model

let test_op () =
  Alcotest.(check (option char)) "roundtrip r" (Some 'r')
    (Option.map Op.to_char (Op.of_char 'r'));
  List.iter
    (fun op ->
      Alcotest.(check bool) "roundtrip all" true
        (Op.of_char (Op.to_char op) = Some op))
    Op.all;
  Alcotest.(check (option Alcotest.reject)) "bad char" None
    (Option.map (fun _ -> assert false) (Op.of_char 'x'));
  Alcotest.(check bool) "rw conflict" true (Op.conflicts Op.Read Op.Write);
  Alcotest.(check bool) "rr no conflict" false (Op.conflicts Op.Read Op.Read);
  Alcotest.(check bool) "commit never conflicts" false
    (Op.conflicts Op.Commit Op.Write);
  Alcotest.(check bool) "terminal" true (Op.is_terminal Op.Abort);
  Alcotest.(check bool) "data" true (Op.is_data Op.Write)

let test_request_constructors () =
  let r = Request.v 3 2 Op.Read 42 in
  Alcotest.(check (pair int int)) "key" (3, 2) (Request.key r);
  Alcotest.(check bool) "conflict w/w same obj" true
    (Request.conflicts (Request.v 1 1 Op.Write 5) (Request.v 2 1 Op.Write 5));
  Alcotest.(check bool) "no conflict same txn" false
    (Request.conflicts (Request.v 1 1 Op.Write 5) (Request.v 1 2 Op.Read 5));
  Alcotest.(check bool) "no conflict r/r" false
    (Request.conflicts (Request.v 1 1 Op.Read 5) (Request.v 2 1 Op.Read 5));
  Alcotest.(check bool) "terminal no obj conflict" false
    (Request.conflicts (Request.terminal 1 3 Op.Commit) (Request.v 2 1 Op.Write 5));
  Alcotest.check_raises "data op needs object"
    (Invalid_argument "Request.make: data operation requires an object")
    (fun () -> ignore (Request.make ~id:1 ~ta:1 ~intrata:1 ~op:Op.Read ()));
  Alcotest.check_raises "terminal carries no object"
    (Invalid_argument "Request.make: terminal operation carries no object")
    (fun () -> ignore (Request.make ~id:1 ~ta:1 ~intrata:1 ~op:Op.Commit ~obj:3 ()))

let test_abort_markers () =
  Alcotest.check_raises "negative intrata reserved"
    (Invalid_argument "Request.make: negative INTRATA is reserved for abort markers")
    (fun () -> ignore (Request.make ~id:1 ~ta:1 ~intrata:(-1) ~op:Op.Commit ()));
  let m = Request.abort_marker ~ta:4 ~seq:2 () in
  Alcotest.(check bool) "marker flagged" true (Request.is_abort_marker m);
  Alcotest.(check bool) "marker id negative" true (m.Request.id < 0);
  Alcotest.(check bool) "marker intrata negative" true (m.Request.intrata < 0);
  (* A legal workload may use intrata 999 and billion-range ids — the old
     forged-marker encoding — without being mistaken for a marker. *)
  let r = Request.make ~id:1_000_000_001 ~ta:9 ~intrata:999 ~op:Op.Commit () in
  Alcotest.(check bool) "real request never a marker" false
    (Request.is_abort_marker r);
  (* Distinct seqs give distinct marker identities. *)
  let m' = Request.abort_marker ~ta:4 ~seq:3 () in
  Alcotest.(check bool) "seq disambiguates" false (m.Request.id = m'.Request.id)

let test_txn () =
  let t =
    Txn.make ~ta:7
      [ (Op.Read, Some 1); (Op.Write, Some 2); (Op.Commit, None) ]
  in
  Alcotest.(check int) "length" 3 (Txn.length t);
  Alcotest.(check bool) "commits" true (Txn.commits t);
  Alcotest.(check (list int)) "read set" [ 1 ] (Txn.read_set t);
  Alcotest.(check (list int)) "write set" [ 2 ] (Txn.write_set t);
  Alcotest.(check int) "intrata numbering" 2
    (List.nth t.Txn.requests 1).Request.intrata;
  Alcotest.check_raises "must end terminal"
    (Invalid_argument "Txn.make: transaction must end in commit or abort")
    (fun () -> ignore (Txn.make ~ta:1 [ (Op.Read, Some 1) ]));
  Alcotest.check_raises "terminal must be last"
    (Invalid_argument "Txn.make: terminal operation before end of transaction")
    (fun () ->
      ignore (Txn.make ~ta:1 [ (Op.Commit, None); (Op.Commit, None) ]));
  Alcotest.check_raises "non-empty"
    (Invalid_argument "Txn.make: empty transaction") (fun () ->
      ignore (Txn.make ~ta:1 []))

let test_sla () =
  Alcotest.(check bool) "premium most urgent" true
    (Sla.compare_urgency Sla.premium Sla.free < 0);
  Alcotest.(check bool) "tier roundtrip" true
    (List.for_all
       (fun t -> Sla.tier_of_string (Sla.tier_to_string t) = Some t)
       Sla.all_tiers);
  Alcotest.(check (option Alcotest.reject)) "unknown tier" None
    (Option.map (fun _ -> assert false) (Sla.tier_of_string "gold"));
  Alcotest.(check bool) "weights ordered" true
    (Sla.premium.Sla.weight > Sla.standard.Sla.weight
    && Sla.standard.Sla.weight > Sla.free.Sla.weight)

let tests =
  [
    Alcotest.test_case "op" `Quick test_op;
    Alcotest.test_case "request" `Quick test_request_constructors;
    Alcotest.test_case "abort markers" `Quick test_abort_markers;
    Alcotest.test_case "txn" `Quick test_txn;
    Alcotest.test_case "sla" `Quick test_sla;
  ]
