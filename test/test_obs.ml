(* The trace-validation battery for Ds_obs: sink semantics, span-tree
   invariants (including under fault injection and a mid-run crash), export
   round trips, the traces relation, metrics, and the no-observer-effect
   guarantee. *)

open Ds_obs
open Ds_core
open Ds_workload

(* Ds_workload has its own (request-stream) Trace; we mean the sink. *)
module Trace = Ds_obs.Trace

let ev ?(at = 0.) ?(seq = 0) ?(op = 'r') ?(obj = 0) ?(arg = -1)
    ?(tier = "standard") kind ta =
  { Trace.at; ta; seq; kind; op; obj; arg; tier }

(* --- sink semantics ----------------------------------------------------- *)

let test_sink_basics () =
  let tr = Trace.create () in
  Alcotest.(check bool) "enabled" true (Trace.enabled tr);
  Alcotest.(check bool) "is_on Some" true (Trace.is_on (Some tr));
  Alcotest.(check bool) "is_on None" false (Trace.is_on None);
  Trace.emit (Some tr) Trace.Enqueued ~ta:1 ~seq:0 ~op:'r' ~obj:7 ~tier:"free"
    ();
  Alcotest.(check int) "one event" 1 (Trace.count tr);
  (match Trace.events tr with
  | [ e ] ->
    Alcotest.(check int) "ta" 1 e.Trace.ta;
    Alcotest.(check int) "obj" 7 e.Trace.obj;
    Alcotest.(check int) "arg default" (-1) e.Trace.arg;
    Alcotest.(check string) "tier" "free" e.Trace.tier
  | _ -> Alcotest.fail "expected one event");
  Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (Trace.count tr)

let test_disabled_sink_records_nothing () =
  let tr = Trace.create ~enabled:false () in
  Alcotest.(check bool) "is_on disabled" false (Trace.is_on (Some tr));
  Trace.emit (Some tr) Trace.Commit ~ta:1 ~seq:(-1) ();
  Trace.emit_txn (Some tr) Trace.Abort ~ta:2;
  Alcotest.(check int) "nothing recorded" 0 (Trace.count tr);
  Trace.set_enabled tr true;
  Trace.emit_txn (Some tr) Trace.Commit ~ta:3;
  Alcotest.(check int) "re-enabled records" 1 (Trace.count tr);
  (* None sink: emission is a no-op, not an error. *)
  Trace.emit None Trace.Commit ~ta:1 ~seq:0 ()

let test_kind_string_roundtrip () =
  let kinds =
    [
      Trace.Enqueued; Trace.Drained; Trace.Sched_admit; Trace.Sched_defer;
      Trace.Dispatched; Trace.Lock_wait; Trace.Lock_grant; Trace.Exec_start;
      Trace.Exec_done; Trace.Commit; Trace.Abort; Trace.Retry;
      Trace.Dead_letter;
    ]
  in
  List.iter
    (fun k ->
      match Trace.kind_of_string (Trace.kind_to_string k) with
      | Some k' when k = k' -> ()
      | _ -> Alcotest.failf "kind %s did not round trip" (Trace.kind_to_string k))
    kinds;
  Alcotest.(check bool) "unknown kind" true
    (Trace.kind_of_string "bogus" = None);
  Alcotest.(check bool) "terminals" true
    (List.for_all Trace.is_terminal [ Trace.Commit; Trace.Abort; Trace.Dead_letter ]
    && not (Trace.is_terminal Trace.Retry))

(* --- span trees and validation ------------------------------------------ *)

let test_span_build () =
  let events =
    [
      ev ~at:0.0 Trace.Enqueued 1;
      ev ~at:0.1 Trace.Sched_admit 1;
      ev ~at:0.2 Trace.Exec_start 1;
      ev ~at:0.3 Trace.Exec_done 1;
      ev ~at:0.1 ~seq:0 Trace.Enqueued 2;
      ev ~at:0.4 ~seq:(-1) ~op:'c' Trace.Commit 1;
    ]
  in
  match Span.build events with
  | [ t1; t2 ] ->
    Alcotest.(check int) "ordered by ta" 1 t1.Span.ta;
    Alcotest.(check int) "second tree" 2 t2.Span.ta;
    Alcotest.(check bool) "terminal" true (t1.Span.terminal = Some Trace.Commit);
    Alcotest.(check bool) "no terminal yet" true (t2.Span.terminal = None);
    Alcotest.(check (float 1e-9)) "latency" 0.4
      (Option.get (Span.latency t1));
    Alcotest.(check bool) "open tree has no latency" true
      (Span.latency t2 = None);
    Alcotest.(check int) "one request span" 1 (List.length t1.Span.spans);
    Alcotest.(check bool) "render mentions commit" true
      (String.length (Span.render t1) > 0)
  | trees -> Alcotest.failf "expected 2 trees, got %d" (List.length trees)

let test_validate_rejects_time_travel () =
  let events =
    [ ev ~at:1.0 Trace.Enqueued 1; ev ~at:0.5 Trace.Sched_admit 1 ]
  in
  match Span.validate events with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "backwards timestamps must be rejected"

let test_validate_rejects_double_terminal () =
  let events =
    [
      ev ~at:0.0 Trace.Enqueued 1;
      ev ~at:0.1 ~seq:(-1) ~op:'c' Trace.Commit 1;
      ev ~at:0.2 ~seq:(-1) ~op:'a' Trace.Abort 1;
    ]
  in
  match Span.validate events with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "two terminals must be rejected"

let test_validate_rejects_unadmitted_exec () =
  let events = [ ev ~at:0.0 Trace.Enqueued 1; ev ~at:0.1 Trace.Exec_start 1 ] in
  match Span.validate events with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "exec without admission must be rejected"

let test_validate_accepts_ties () =
  (* The discrete-event clock legitimately produces equal timestamps. *)
  let events =
    [
      ev ~at:0.5 Trace.Enqueued 1;
      ev ~at:0.5 Trace.Sched_admit 1;
      ev ~at:0.5 Trace.Exec_start 1;
      ev ~at:0.5 ~seq:(-1) ~op:'c' Trace.Commit 1;
    ]
  in
  match Span.validate events with
  | Ok () -> ()
  | Error e -> Alcotest.failf "ties must be legal: %s" e

(* --- JSON ---------------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\nd");
        ("n", Json.Num 3.25);
        ("i", Json.Num 42.);
        ("l", Json.List [ Json.Null; Json.Bool true; Json.Bool false ]);
        ("o", Json.Obj [ ("empty", Json.List []) ]);
      ]
  in
  Alcotest.(check bool) "roundtrip" true
    (Json.of_string (Json.to_string v) = v);
  Alcotest.(check bool) "unicode escape" true
    (Json.of_string {|"A"|} = Json.Str "A");
  Alcotest.(check bool) "nested access" true
    (Option.bind (Json.mem "n" v) Json.num = Some 3.25)

let test_json_errors () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "should not parse: %s" s)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ]

let json_number_roundtrip =
  QCheck2.Test.make ~name:"Json number printing is lossless" ~count:500
    QCheck2.Gen.(float_range (-1e9) 1e9)
    (fun f ->
      match Json.of_string (Json.to_string (Json.Num f)) with
      | Json.Num g -> Float.equal f g
      | _ -> false)

(* --- a seeded middleware run to trace ------------------------------------ *)

let chaos_plan =
  {
    Faults.none with
    Faults.batch_fail_rate = 0.1;
    stall_rate = 0.05;
    stall_duration = 0.05;
    poison_rate = 0.02;
    disconnect_rate = 0.02;
  }

let mw_config ?(faults = Faults.none) ?(seed = 42) ?trace ?metrics () =
  {
    Middleware.default_config with
    Middleware.n_clients = 8;
    duration = 2.0;
    spec = { Spec.small with Spec.n_objects = 64 };
    seed;
    faults;
    (* Wall-clock cycle charging is non-deterministic; everything here
       compares seeded runs. *)
    charge_scheduler_time = false;
    trace;
    metrics;
  }

let traced_run ?faults ?seed () =
  let tr = Trace.create () in
  let stats = Middleware.run (mw_config ?faults ?seed ~trace:tr ()) in
  (stats, Trace.events tr)

let test_middleware_trace_valid () =
  let stats, events = traced_run () in
  Alcotest.(check bool) "committed something" true
    (stats.Middleware.committed_txns > 0);
  Alcotest.(check bool) "events recorded" true (events <> []);
  (match Span.validate events with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid trace: %s" e);
  (* Terminals in the trace match the stats counters: one tree per ta that
     reached a terminal, committed trees = committed transactions. *)
  let trees = Span.build events in
  let commits =
    List.length
      (List.filter (fun t -> t.Span.terminal = Some Trace.Commit) trees)
  in
  Alcotest.(check int) "trace commits = stats commits"
    stats.Middleware.committed_txns commits

let test_faulty_trace_valid () =
  let stats, events = traced_run ~faults:chaos_plan ~seed:7 () in
  (match Span.validate events with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid chaos trace: %s" e);
  Alcotest.(check bool) "chaos actually injected" true
    (stats.Middleware.injected_failures > 0 || stats.Middleware.retries > 0);
  (* Retries appear between dispatch and the terminal, never after one. *)
  let trees = Span.build events in
  List.iter
    (fun t ->
      match t.Span.terminal with
      | None -> ()
      | Some _ ->
        let saw_terminal = ref false in
        List.iter
          (fun (e : Trace.event) ->
            if Trace.is_terminal e.Trace.kind then saw_terminal := true
            else if !saw_terminal then
              Alcotest.failf "ta %d: %s after terminal" t.Span.ta
                (Trace.kind_to_string e.Trace.kind))
          (List.concat_map (fun (s : Span.span) -> s.Span.events) t.Span.spans
          @ t.Span.txn_events))
    trees

let test_crash_trace_valid () =
  (* A mid-run crash plus journal recovery must still yield a well-formed
     trace; the recovered scheduler keeps emitting into the same sink. *)
  let _, events =
    traced_run
      ~faults:{ chaos_plan with Faults.crash_at_cycle = Some 20 }
      ~seed:11 ()
  in
  match Span.validate events with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid post-crash trace: %s" e

let trace_invariants_prop =
  QCheck2.Test.make
    ~name:"middleware traces well-formed across seeds and fault rates"
    ~count:12
    QCheck2.Gen.(
      pair (int_range 1 1000)
        (pair (float_bound_inclusive 0.15) (float_bound_inclusive 0.05)))
    (fun (seed, (batch_fail_rate, poison_rate)) ->
      let faults =
        { Faults.none with Faults.batch_fail_rate; poison_rate }
      in
      let _, events = traced_run ~faults ~seed () in
      match Span.validate events with Ok () -> true | Error _ -> false)

(* --- no observer effect -------------------------------------------------- *)

(* mean_cycle_time / p95_cycle_time / scheduler_time are wall-clock
   measurements; everything else must be bit-identical. *)
let deterministic (s : Middleware.stats) =
  {
    s with
    Middleware.mean_cycle_time = 0.;
    p95_cycle_time = 0.;
    scheduler_time = 0.;
  }

let test_no_observer_effect () =
  let plain = Middleware.run (mw_config ~faults:chaos_plan ()) in
  let traced, events = traced_run ~faults:chaos_plan () in
  Alcotest.(check bool) "tracing changes nothing" true
    (deterministic plain = deterministic traced);
  Alcotest.(check bool) "but did record" true (events <> [])

let test_disabled_sink_full_run () =
  (* The overhead regression: a disabled sink through a whole run records
     zero events and leaves the stats untouched. *)
  let plain = Middleware.run (mw_config ()) in
  let tr = Trace.create ~enabled:false () in
  let gated = Middleware.run (mw_config ~trace:tr ()) in
  Alcotest.(check int) "no events" 0 (Trace.count tr);
  Alcotest.(check bool) "identical stats" true
    (deterministic plain = deterministic gated)

(* --- export / load ------------------------------------------------------- *)

let test_export_roundtrips () =
  let _, events = traced_run ~faults:chaos_plan () in
  Alcotest.(check bool) "jsonl roundtrip" true
    (Export.load_string (Export.to_jsonl events) = events);
  Alcotest.(check bool) "chrome roundtrip" true
    (Export.load_string (Export.to_chrome events) = events)

let test_export_files () =
  let _, events = traced_run () in
  let check_file path =
    Export.save path events;
    let loaded = Export.load path in
    Sys.remove path;
    Alcotest.(check bool) (path ^ " roundtrip") true (loaded = events)
  in
  check_file (Filename.temp_file "dsched_trace" ".json");
  check_file (Filename.temp_file "dsched_trace" ".jsonl")

(* --- the traces relation ------------------------------------------------- *)

let test_traces_relation () =
  let _, events = traced_run () in
  let table = Export.to_table events in
  let catalog = Ds_sql.Catalog.create () in
  Ds_sql.Catalog.register catalog table;
  let query stmt =
    match Ds_sql.Exec.exec_script catalog stmt with
    | Ds_sql.Exec.Rows (_, rows) -> rows
    | _ -> Alcotest.failf "expected rows from %s" stmt
  in
  (match query "SELECT COUNT(*) FROM traces" with
  | [ [| Ds_relal.Value.Int n |] ] ->
    Alcotest.(check int) "row per event" (List.length events) n
  | _ -> Alcotest.fail "count query shape");
  (* Terminal accounting via SQL agrees with the span trees. *)
  let sql_commits =
    match query "SELECT COUNT(*) FROM traces WHERE kind = 'commit'" with
    | [ [| Ds_relal.Value.Int n |] ] -> n
    | _ -> Alcotest.fail "commit count shape"
  in
  let tree_commits =
    List.length
      (List.filter
         (fun t -> t.Span.terminal = Some Trace.Commit)
         (Span.build events))
  in
  Alcotest.(check int) "sql commits = tree commits" tree_commits sql_commits

(* --- metrics ------------------------------------------------------------- *)

let test_metrics_online () =
  let m = Metrics.create () in
  let stats =
    Middleware.run (mw_config ~metrics:m ())
  in
  let cycle_rows = Metrics.cycles m in
  Alcotest.(check int) "row per cycle" stats.Middleware.cycles
    (List.length cycle_rows);
  List.iter
    (fun (r : Metrics.cycle_row) ->
      if r.Metrics.admit_ratio < 0. || r.Metrics.admit_ratio > 1. then
        Alcotest.failf "cycle %d: admit ratio %f out of range" r.Metrics.cycle
          r.Metrics.admit_ratio)
    cycle_rows;
  (match Metrics.tier_quantiles m with
  | [] -> Alcotest.fail "no tier rows despite commits"
  | rows ->
    List.iter
      (fun (_, n, p50, p95, p99) ->
        Alcotest.(check bool) "n > 0" true (n > 0);
        Alcotest.(check bool) "quantiles ordered" true
          (p50 <= p95 +. 1e-9 && p95 <= p99 +. 1e-9))
      rows);
  Alcotest.(check bool) "render" true (String.length (Metrics.render m) > 0)

let test_metrics_offline_agrees () =
  (* Online tier histograms and the offline trace-derived view measure the
     same latencies: same tiers, same sample counts. *)
  let m = Metrics.create () in
  let tr = Trace.create () in
  let _ = Middleware.run (mw_config ~trace:tr ~metrics:m ()) in
  let online = Metrics.tier_quantiles m in
  let offline = Metrics.latency_rows (Trace.events tr) in
  let shape rows = List.map (fun (tier, n, _, _, _) -> (tier, n)) rows in
  (* Offline counts every terminated transaction; online only commits inside
     the measurement window, so offline dominates per tier. *)
  List.iter
    (fun (tier, n_online) ->
      match List.assoc_opt tier (shape offline) with
      | Some n_offline when n_offline >= n_online -> ()
      | Some n_offline ->
        Alcotest.failf "tier %s: offline %d < online %d" tier n_offline n_online
      | None -> Alcotest.failf "tier %s missing offline" tier)
    (shape online)

let test_lock_wait_offenders () =
  let events =
    [
      ev ~at:0.0 ~obj:5 ~arg:2 Trace.Lock_wait 1;
      ev ~at:0.3 ~obj:5 Trace.Lock_grant 1;
      ev ~at:0.1 ~obj:9 ~arg:1 Trace.Lock_wait 2;
      ev ~at:0.2 ~obj:9 Trace.Lock_grant 2;
      (* an unmatched wait contributes nothing *)
      ev ~at:0.5 ~obj:9 ~arg:1 Trace.Lock_wait 3;
    ]
  in
  match Metrics.lock_wait_offenders events with
  | [ (5, w5, 1); (9, w9, 1) ] ->
    Alcotest.(check bool) "sorted by total wait" true
      (Float.abs (w5 -. 0.3) < 1e-9 && Float.abs (w9 -. 0.1) < 1e-9)
  | rows -> Alcotest.failf "unexpected offender rows (%d)" (List.length rows)

(* --- the native lock-based server ---------------------------------------- *)

let test_native_trace_valid () =
  let tr = Trace.create () in
  let stats =
    Ds_server.Native_sim.run
      {
        Ds_server.Native_sim.default_config with
        Ds_server.Native_sim.n_clients = 10;
        duration = 0.5;
        seed = 5;
        spec = { Spec.small with Spec.n_objects = 24 };
        trace = Some tr;
      }
  in
  Alcotest.(check bool) "committed" true
    (stats.Ds_server.Native_sim.committed_txns > 0);
  let events = Trace.events tr in
  Alcotest.(check bool) "events" true (events <> []);
  (match Span.validate events with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid native trace: %s" e);
  (* Contended native runs block on locks; waits must pair with grants or a
     terminal (an aborted waiter never gets the grant). *)
  Alcotest.(check bool) "saw lock traffic" true
    (List.exists (fun (e : Trace.event) -> e.Trace.kind = Trace.Lock_wait) events)

let tests =
  [
    Alcotest.test_case "sink basics" `Quick test_sink_basics;
    Alcotest.test_case "disabled sink records nothing" `Quick
      test_disabled_sink_records_nothing;
    Alcotest.test_case "kind string roundtrip" `Quick test_kind_string_roundtrip;
    Alcotest.test_case "span build" `Quick test_span_build;
    Alcotest.test_case "validate: time travel" `Quick
      test_validate_rejects_time_travel;
    Alcotest.test_case "validate: double terminal" `Quick
      test_validate_rejects_double_terminal;
    Alcotest.test_case "validate: unadmitted exec" `Quick
      test_validate_rejects_unadmitted_exec;
    Alcotest.test_case "validate: equal timestamps" `Quick
      test_validate_accepts_ties;
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json errors" `Quick test_json_errors;
    QCheck_alcotest.to_alcotest json_number_roundtrip;
    Alcotest.test_case "middleware trace valid" `Quick
      test_middleware_trace_valid;
    Alcotest.test_case "trace valid under faults" `Quick test_faulty_trace_valid;
    Alcotest.test_case "trace valid across crash" `Quick test_crash_trace_valid;
    QCheck_alcotest.to_alcotest trace_invariants_prop;
    Alcotest.test_case "no observer effect" `Quick test_no_observer_effect;
    Alcotest.test_case "disabled sink full run" `Quick
      test_disabled_sink_full_run;
    Alcotest.test_case "export roundtrips" `Quick test_export_roundtrips;
    Alcotest.test_case "export files" `Quick test_export_files;
    Alcotest.test_case "traces relation" `Quick test_traces_relation;
    Alcotest.test_case "metrics online" `Quick test_metrics_online;
    Alcotest.test_case "metrics offline agrees" `Quick
      test_metrics_offline_agrees;
    Alcotest.test_case "lock wait offenders" `Quick test_lock_wait_offenders;
    Alcotest.test_case "native trace valid" `Quick test_native_trace_valid;
  ]
