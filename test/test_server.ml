(* Tests for Ds_server: lock manager, deadlock detection, CPU resource,
   schedule logs, native multi-user simulation and single-user replay. *)

open Ds_server
open Ds_model

(* --- lock manager ------------------------------------------------- *)

let test_lock_basic () =
  let lm = Lock_manager.create () in
  Alcotest.(check bool) "S grant" true
    (Lock_manager.acquire lm ~txn:1 ~obj:7 ~mode:Lock_manager.S = Lock_manager.Granted);
  Alcotest.(check bool) "S/S compatible" true
    (Lock_manager.acquire lm ~txn:2 ~obj:7 ~mode:Lock_manager.S = Lock_manager.Granted);
  Alcotest.(check bool) "X blocks" true
    (Lock_manager.acquire lm ~txn:3 ~obj:7 ~mode:Lock_manager.X = Lock_manager.Blocked);
  Alcotest.(check (option int)) "waiting on" (Some 7)
    (Lock_manager.waiting_on lm ~txn:3);
  Alcotest.(check (list int)) "blockers" [ 1; 2 ] (Lock_manager.blockers lm ~txn:3);
  let granted = Lock_manager.release_all lm ~txn:1 in
  Alcotest.(check (list (pair int int))) "not yet" [] granted;
  let granted = Lock_manager.release_all lm ~txn:2 in
  Alcotest.(check (list (pair int int))) "now granted" [ (3, 7) ] granted;
  Alcotest.(check bool) "holds X" true
    (Lock_manager.holds lm ~txn:3 ~obj:7 ~mode:Lock_manager.X)

let test_lock_reentrant () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~txn:1 ~obj:1 ~mode:Lock_manager.X);
  Alcotest.(check bool) "re-acquire X" true
    (Lock_manager.acquire lm ~txn:1 ~obj:1 ~mode:Lock_manager.X = Lock_manager.Granted);
  Alcotest.(check bool) "S under X" true
    (Lock_manager.acquire lm ~txn:1 ~obj:1 ~mode:Lock_manager.S = Lock_manager.Granted);
  Alcotest.(check int) "held one lock" 1 (Lock_manager.held_count lm ~txn:1)

let test_lock_upgrade () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~txn:1 ~obj:1 ~mode:Lock_manager.S);
  Alcotest.(check bool) "sole-holder upgrade" true
    (Lock_manager.acquire lm ~txn:1 ~obj:1 ~mode:Lock_manager.X = Lock_manager.Granted);
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~txn:1 ~obj:1 ~mode:Lock_manager.S);
  ignore (Lock_manager.acquire lm ~txn:2 ~obj:1 ~mode:Lock_manager.S);
  Alcotest.(check bool) "contended upgrade blocks" true
    (Lock_manager.acquire lm ~txn:1 ~obj:1 ~mode:Lock_manager.X = Lock_manager.Blocked);
  (* Upgrade wins over a queued plain request when the other holder leaves. *)
  Alcotest.(check bool) "third waits" true
    (Lock_manager.acquire lm ~txn:3 ~obj:1 ~mode:Lock_manager.X = Lock_manager.Blocked);
  let granted = Lock_manager.release_all lm ~txn:2 in
  Alcotest.(check (list (pair int int))) "upgrade granted first" [ (1, 1) ] granted;
  Alcotest.(check bool) "t1 now X" true
    (Lock_manager.holds lm ~txn:1 ~obj:1 ~mode:Lock_manager.X)

let test_lock_fifo () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~txn:1 ~obj:1 ~mode:Lock_manager.X);
  ignore (Lock_manager.acquire lm ~txn:2 ~obj:1 ~mode:Lock_manager.S);
  ignore (Lock_manager.acquire lm ~txn:3 ~obj:1 ~mode:Lock_manager.S);
  (* Later S requests must not starve the queue order; both S grants arrive
     together when X releases. *)
  let granted = Lock_manager.release_all lm ~txn:1 in
  Alcotest.(check (list (pair int int))) "both readers granted"
    [ (2, 1); (3, 1) ] granted;
  (* An S arriving while an X waits queues behind it (no reader barging). *)
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~txn:1 ~obj:1 ~mode:Lock_manager.S);
  ignore (Lock_manager.acquire lm ~txn:2 ~obj:1 ~mode:Lock_manager.X);
  Alcotest.(check bool) "reader queues behind writer" true
    (Lock_manager.acquire lm ~txn:3 ~obj:1 ~mode:Lock_manager.S = Lock_manager.Blocked)

let test_lock_blocked_twice () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~txn:1 ~obj:1 ~mode:Lock_manager.X);
  ignore (Lock_manager.acquire lm ~txn:2 ~obj:1 ~mode:Lock_manager.X);
  Alcotest.check_raises "double block"
    (Invalid_argument "Lock_manager.acquire: transaction already blocked")
    (fun () -> ignore (Lock_manager.acquire lm ~txn:2 ~obj:2 ~mode:Lock_manager.S))

let test_release_cancels_waiters () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~txn:1 ~obj:1 ~mode:Lock_manager.X);
  ignore (Lock_manager.acquire lm ~txn:2 ~obj:1 ~mode:Lock_manager.X);
  ignore (Lock_manager.acquire lm ~txn:3 ~obj:1 ~mode:Lock_manager.X);
  (* Aborting the queued txn 2 must not grant anything (1 still holds). *)
  Alcotest.(check (list (pair int int))) "abort waiter" []
    (Lock_manager.release_all lm ~txn:2);
  let granted = Lock_manager.release_all lm ~txn:1 in
  Alcotest.(check (list (pair int int))) "3 skips cancelled 2" [ (3, 1) ] granted

(* Random lock workout with a model invariant: never two incompatible
   grants on one object. *)
let lock_invariant_prop =
  QCheck2.Test.make ~name:"lock manager never grants conflicting locks"
    ~count:100
    QCheck2.Gen.(pair small_int (list_size (int_range 10 80) (triple (int_range 1 5) (int_range 1 4) bool)))
    (fun (_, ops) ->
      let lm = Lock_manager.create () in
      let held = Hashtbl.create 16 in
      (* (txn, obj) -> mode *)
      let blocked = Hashtbl.create 16 in
      let ok = ref true in
      let check_invariant obj =
        let holders =
          Hashtbl.fold
            (fun (t, o) m acc -> if o = obj then (t, m) :: acc else acc)
            held []
        in
        let xs = List.filter (fun (_, m) -> m = Lock_manager.X) holders in
        if List.length xs > 1 then ok := false;
        if xs <> [] && List.length holders > 1 then ok := false
      in
      List.iter
        (fun (txn, obj, release) ->
          if release then begin
            let granted = Lock_manager.release_all lm ~txn in
            Hashtbl.filter_map_inplace
              (fun (t, _) m -> if t = txn then None else Some m)
              held;
            Hashtbl.remove blocked txn;
            List.iter
              (fun (t, o) ->
                (* The lock manager tells us the granted mode implicitly:
                   query holds. *)
                let m =
                  if Lock_manager.holds lm ~txn:t ~obj:o ~mode:Lock_manager.X
                  then Lock_manager.X
                  else Lock_manager.S
                in
                Hashtbl.replace held (t, o) m;
                Hashtbl.remove blocked t;
                check_invariant o)
              granted
          end
          else if not (Hashtbl.mem blocked txn) then begin
            let mode =
              if (txn + obj) mod 2 = 0 then Lock_manager.X else Lock_manager.S
            in
            match Lock_manager.acquire lm ~txn ~obj ~mode with
            | Lock_manager.Granted ->
              let effective =
                if Lock_manager.holds lm ~txn ~obj ~mode:Lock_manager.X then
                  Lock_manager.X
                else Lock_manager.S
              in
              Hashtbl.replace held (txn, obj) effective;
              check_invariant obj
            | Lock_manager.Blocked -> Hashtbl.replace blocked txn obj
          end)
        ops;
      !ok)

(* Strictness at the lock layer: a granted lock stays held until the holder
   itself calls release_all (commit/abort) — no other transaction's acquires
   or releases can take it away. *)
let lock_persistence_prop =
  QCheck2.Test.make ~name:"locks persist until the holder releases" ~count:100
    QCheck2.Gen.(
      list_size (int_range 10 80)
        (triple (int_range 1 5) (int_range 1 4) bool))
    (fun ops ->
      let lm = Lock_manager.create () in
      let held = Hashtbl.create 16 in
      (* (txn, obj) -> mode *)
      let blocked = Hashtbl.create 16 in
      let ok = ref true in
      let effective_mode txn obj =
        if Lock_manager.holds lm ~txn ~obj ~mode:Lock_manager.X then
          Lock_manager.X
        else Lock_manager.S
      in
      let still_held () =
        Hashtbl.iter
          (fun (txn, obj) mode ->
            if not (Lock_manager.holds lm ~txn ~obj ~mode) then ok := false)
          held
      in
      List.iter
        (fun (txn, obj, release) ->
          if release then begin
            let granted = Lock_manager.release_all lm ~txn in
            Hashtbl.filter_map_inplace
              (fun (t, _) m -> if t = txn then None else Some m)
              held;
            Hashtbl.remove blocked txn;
            List.iter
              (fun (t, o) ->
                Hashtbl.replace held (t, o) (effective_mode t o);
                Hashtbl.remove blocked t)
              granted
          end
          else if not (Hashtbl.mem blocked txn) then begin
            let mode =
              if (txn + obj) mod 2 = 0 then Lock_manager.X else Lock_manager.S
            in
            match Lock_manager.acquire lm ~txn ~obj ~mode with
            | Lock_manager.Granted ->
              Hashtbl.replace held (txn, obj) (effective_mode txn obj)
            | Lock_manager.Blocked -> Hashtbl.replace blocked txn obj
          end;
          (* After *every* step, everything the model says is held must still
             be held with at least its granted mode. *)
          still_held ())
        ops;
      !ok)

(* After every deadlock resolution (victim releases everything), the
   waits-for graph must be cycle-free — otherwise a deadlock survives its own
   "resolution" and the victims starve. *)
let deadlock_resolution_prop =
  QCheck2.Test.make ~name:"waits-for acyclic after every deadlock resolution"
    ~count:100
    QCheck2.Gen.(
      list_size (int_range 20 100)
        (triple (int_range 1 6) (int_range 1 3) bool))
    (fun ops ->
      let lm = Lock_manager.create () in
      let blocked = Hashtbl.create 16 in
      let ok = ref true in
      let successors txn = Lock_manager.blockers lm ~txn in
      let unblock_granted granted =
        List.iter (fun (t, _) -> Hashtbl.remove blocked t) granted
      in
      List.iter
        (fun (txn, obj, release) ->
          if release then
            unblock_granted (Lock_manager.release_all lm ~txn)
          else if not (Hashtbl.mem blocked txn) then begin
            let mode =
              if (txn * 7 + obj) mod 3 = 0 then Lock_manager.S
              else Lock_manager.X
            in
            match Lock_manager.acquire lm ~txn ~obj ~mode with
            | Lock_manager.Granted -> ()
            | Lock_manager.Blocked -> (
              Hashtbl.replace blocked txn obj;
              (* A deadlock can only appear when someone blocks; resolve it
                 the way Native_sim does — abort victims until no cycle is
                 left through the requester (one block can close several
                 cycles at once, one per holder of the contended lock). *)
              let resolved = ref false in
              let rec resolve () =
                match Deadlock.find_cycle ~successors txn with
                | None -> ()
                | Some cycle ->
                  resolved := true;
                  let victim = Deadlock.pick_victim cycle in
                  Hashtbl.remove blocked victim;
                  unblock_granted (Lock_manager.release_all lm ~txn:victim);
                  if victim <> txn then resolve ()
              in
              resolve ();
              (* Post-resolution invariant: no blocked transaction is in a
                 waits-for cycle any more. *)
              if !resolved then
                List.iter
                  (fun t ->
                    if Deadlock.find_cycle ~successors t <> None then
                      ok := false)
                  (Lock_manager.blocked_txns lm))
          end)
        ops;
      !ok)

(* --- deadlock ------------------------------------------------------ *)

let test_deadlock_cycle () =
  let edges = [ (1, [ 2 ]); (2, [ 3 ]); (3, [ 1 ]); (4, [ 1 ]) ] in
  let successors n = Option.value ~default:[] (List.assoc_opt n edges) in
  (match Deadlock.find_cycle ~successors 1 with
  | Some cycle ->
    Alcotest.(check bool) "cycle members" true
      (List.sort Int.compare cycle = [ 1; 2; 3 ]);
    Alcotest.(check int) "victim is youngest" 3 (Deadlock.pick_victim cycle)
  | None -> Alcotest.fail "cycle expected");
  (* 4 -> 1 -> 2 -> 3 has no cycle through 4. *)
  Alcotest.(check bool) "no cycle through 4" true
    (Deadlock.find_cycle ~successors 4 = None)

let test_deadlock_via_locks () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~txn:1 ~obj:1 ~mode:Lock_manager.X);
  ignore (Lock_manager.acquire lm ~txn:2 ~obj:2 ~mode:Lock_manager.X);
  ignore (Lock_manager.acquire lm ~txn:1 ~obj:2 ~mode:Lock_manager.X);
  ignore (Lock_manager.acquire lm ~txn:2 ~obj:1 ~mode:Lock_manager.X);
  let successors txn = Lock_manager.blockers lm ~txn in
  match Deadlock.find_cycle ~successors 2 with
  | Some cycle ->
    Alcotest.(check bool) "both in cycle" true
      (List.sort Int.compare cycle = [ 1; 2 ])
  | None -> Alcotest.fail "deadlock expected"

(* --- cpu ------------------------------------------------------------ *)

let test_cpu_fcfs () =
  let e = Ds_sim.Engine.create () in
  let cpu = Cpu.create e ~n_cores:1 in
  let done_at = ref [] in
  Cpu.submit cpu ~work:1.0 (fun () -> done_at := ("a", Ds_sim.Engine.now e) :: !done_at);
  Cpu.submit cpu ~work:0.5 (fun () -> done_at := ("b", Ds_sim.Engine.now e) :: !done_at);
  Ds_sim.Engine.run e;
  Alcotest.(check (list (pair string (float 1e-9))))
    "fcfs completion order"
    [ ("a", 1.0); ("b", 1.5) ]
    (List.rev !done_at);
  Alcotest.(check (float 1e-9)) "busy" 1.5 (Cpu.busy_time cpu)

let test_cpu_two_cores () =
  let e = Ds_sim.Engine.create () in
  let cpu = Cpu.create e ~n_cores:2 in
  let finish = ref 0. in
  Cpu.submit cpu ~work:1.0 (fun () -> finish := Float.max !finish (Ds_sim.Engine.now e));
  Cpu.submit cpu ~work:1.0 (fun () -> finish := Float.max !finish (Ds_sim.Engine.now e));
  Ds_sim.Engine.run e;
  Alcotest.(check (float 1e-9)) "parallel" 1.0 !finish

(* --- schedule log ---------------------------------------------------- *)

let entry ta op obj = { Schedule.ta; op; obj; value = ta }

let test_schedule_acyclic () =
  let ok =
    [ entry 1 Op.Write 5; entry 1 Op.Commit (-1); entry 2 Op.Write 5 ]
  in
  Alcotest.(check bool) "serial is acyclic" true
    (Schedule.conflict_graph_acyclic ok = Ok ());
  let bad =
    [
      entry 1 Op.Write 5;
      entry 2 Op.Write 5;
      (* 1 -> 2 *)
      entry 2 Op.Write 6;
      entry 1 Op.Write 6;
      (* 2 -> 1: cycle *)
    ]
  in
  match Schedule.conflict_graph_acyclic bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "cycle must be detected"

let test_schedule_filter () =
  let log = Schedule.create () in
  List.iter (Schedule.append log)
    [ entry 1 Op.Read 1; entry 2 Op.Read 2; entry 1 Op.Write 3 ];
  Alcotest.(check int) "length" 3 (Schedule.length log);
  let only1 = Schedule.filter log (fun ta -> ta = 1) in
  Alcotest.(check int) "filtered" 2 (List.length only1)

(* --- native sim and replay ------------------------------------------- *)

let small_cfg n =
  {
    Native_sim.default_config with
    Native_sim.n_clients = n;
    duration = 2.0;
    spec = { Ds_workload.Spec.paper_default with Ds_workload.Spec.n_objects = 5000 };
    log_schedule = true;
  }

let test_native_single_client () =
  let s = Native_sim.run (small_cfg 1) in
  Alcotest.(check int) "no lock waits" 0 s.Native_sim.lock_waits;
  Alcotest.(check int) "no deadlocks" 0 s.Native_sim.deadlocks;
  Alcotest.(check bool) "commits happened" true (s.Native_sim.committed_txns > 0);
  Alcotest.(check int) "stmts = txns * 40"
    (s.Native_sim.committed_txns * 40)
    s.Native_sim.committed_stmts

let test_native_determinism () =
  let a = Native_sim.run (small_cfg 20) in
  let b = Native_sim.run (small_cfg 20) in
  Alcotest.(check int) "same commits" a.Native_sim.committed_txns
    b.Native_sim.committed_txns;
  Alcotest.(check int) "same deadlocks" a.Native_sim.deadlocks
    b.Native_sim.deadlocks;
  let c =
    Native_sim.run { (small_cfg 20) with Native_sim.seed = 99 }
  in
  Alcotest.(check bool) "different seed differs" true
    (c.Native_sim.committed_stmts <> a.Native_sim.committed_stmts
    || c.Native_sim.deadlocks <> a.Native_sim.deadlocks)

let test_native_schedule_serializable () =
  (* The native scheduler enforces SS2PL; its committed schedule must be
     conflict-serializable. Contended setup to make this meaningful. *)
  let cfg =
    {
      (small_cfg 30) with
      Native_sim.spec =
        { Ds_workload.Spec.paper_default with Ds_workload.Spec.n_objects = 300 };
    }
  in
  let s = Native_sim.run cfg in
  Alcotest.(check bool) "had contention" true (s.Native_sim.lock_waits > 0);
  match Schedule.conflict_graph_acyclic s.Native_sim.schedule with
  | Ok () -> ()
  | Error (a, b) -> Alcotest.failf "conflict cycle between %d and %d" a b

let test_native_contention_grows () =
  let t1 = Native_sim.run (small_cfg 1) in
  let t40 = Native_sim.run (small_cfg 40) in
  Alcotest.(check bool) "waits grow with clients" true
    (t40.Native_sim.lock_waits > t1.Native_sim.lock_waits)

let contended_cfg n =
  {
    (small_cfg n) with
    Native_sim.spec =
      { Ds_workload.Spec.paper_default with Ds_workload.Spec.n_objects = 250 };
  }

let test_mpl_admission () =
  let unlimited = Native_sim.run (contended_cfg 60) in
  let limited =
    Native_sim.run { (contended_cfg 60) with Native_sim.mpl = Some 5 }
  in
  Alcotest.(check bool)
    (Printf.sprintf "MPL avoids thrashing (%d vs %d stmts)"
       limited.Native_sim.committed_stmts unlimited.Native_sim.committed_stmts)
    true
    (limited.Native_sim.committed_stmts > unlimited.Native_sim.committed_stmts);
  (* Deadlock *rate* per committed transaction drops; absolute counts can
     rise simply because far more transactions get through. *)
  let rate (s : Native_sim.stats) =
    float_of_int s.Native_sim.deadlocks
    /. float_of_int (max 1 s.Native_sim.committed_txns)
  in
  Alcotest.(check bool) "lower deadlock rate under MPL" true
    (rate limited < rate unlimited)

let test_wound_wait () =
  let cfg =
    { (contended_cfg 40) with Native_sim.deadlock_policy = `Wound_wait }
  in
  let s = Native_sim.run cfg in
  Alcotest.(check int) "no detection-based aborts" 0 s.Native_sim.deadlocks;
  Alcotest.(check bool) "wounds happen under contention" true
    (s.Native_sim.wounds > 0);
  Alcotest.(check bool) "still makes progress" true
    (s.Native_sim.committed_txns > 0);
  (* Wound-wait preserves SS2PL: the committed schedule stays conflict-
     serializable. *)
  match Schedule.conflict_graph_acyclic s.Native_sim.schedule with
  | Ok () -> ()
  | Error (a, b) -> Alcotest.failf "conflict cycle between %d and %d" a b

let test_replay_agreement () =
  let s = Native_sim.run (small_cfg 10) in
  let arithmetic = Replay.single_user_time Cost_model.default s.Native_sim.schedule in
  let simulated =
    Replay.single_user_time_simulated Cost_model.default s.Native_sim.schedule
  in
  Alcotest.(check (float 1e-6)) "replay agreement" arithmetic simulated;
  (* SU time must be below the MU window (the schedule committed in it). *)
  Alcotest.(check bool) "SU below MU" true (arithmetic < 2.0)

let test_store_faithfulness () =
  (* The strongest end-to-end check of the locking machinery: the multi-user
     run's final data must equal a sequential replay of its committed
     schedule on a fresh store. Any locking bug (conflicting grants, lost
     rollback, schedule-log gap) breaks this. Contended setup so aborts,
     restarts and wound/rollback paths all fire. *)
  List.iter
    (fun policy ->
      let cfg =
        {
          (contended_cfg 30) with
          Native_sim.deadlock_policy = policy;
          duration = 2.0;
        }
      in
      let s = Native_sim.run cfg in
      let fresh =
        Row_store.create ~n_rows:(Row_store.n_rows s.Native_sim.final_store)
      in
      Replay.apply_to_store fresh s.Native_sim.schedule;
      let differing = Row_store.diff fresh s.Native_sim.final_store in
      if differing <> [] then
        Alcotest.failf "store mismatch on %d rows (first: %d) under %s"
          (List.length differing) (List.hd differing)
          (match policy with `Detection -> "detection" | `Wound_wait -> "wound-wait");
      Alcotest.(check bool) "writes happened" true
        (Row_store.writes s.Native_sim.final_store > 0))
    [ `Detection; `Wound_wait ]

(* Randomized generalisation of test_store_faithfulness: across random
   seeds, client counts, contention levels and both deadlock policies, the
   multi-user run's final store equals a sequential replay of its committed
   schedule on a fresh store. *)
let store_replay_prop =
  QCheck2.Test.make ~name:"final store equals schedule replay (random cfgs)"
    ~count:15
    QCheck2.Gen.(
      triple (int_range 1 10_000) (int_range 2 25)
        (pair (int_range 100 2_000) bool))
    (fun (seed, n_clients, (n_objects, wound)) ->
      let cfg =
        {
          Native_sim.default_config with
          Native_sim.n_clients;
          duration = 0.5;
          seed;
          log_schedule = true;
          deadlock_policy = (if wound then `Wound_wait else `Detection);
          spec =
            {
              Ds_workload.Spec.paper_default with
              Ds_workload.Spec.n_objects;
            };
        }
      in
      let s = Native_sim.run cfg in
      let fresh =
        Row_store.create ~n_rows:(Row_store.n_rows s.Native_sim.final_store)
      in
      Replay.apply_to_store fresh s.Native_sim.schedule;
      Row_store.diff fresh s.Native_sim.final_store = [])

let test_row_store_unit () =
  let st = Row_store.create ~n_rows:10 in
  Alcotest.(check int) "initial" 0 (Row_store.read st 3);
  Row_store.write st 3 42;
  Alcotest.(check int) "written" 42 (Row_store.read st 3);
  Alcotest.(check int) "reads counted" 2 (Row_store.reads st);
  Alcotest.(check int) "writes counted" 1 (Row_store.writes st);
  let other = Row_store.create ~n_rows:10 in
  Alcotest.(check (list int)) "diff" [ 3 ] (Row_store.diff st other);
  Alcotest.(check bool) "checksums differ" true
    (Row_store.checksum st <> Row_store.checksum other);
  Alcotest.check_raises "bounds" (Invalid_argument "Row_store: row out of range")
    (fun () -> ignore (Row_store.read st 10))

let test_backend_batch () =
  let e = Ds_sim.Engine.create () in
  let b = Backend.create e Cost_model.default in
  let reqs =
    [
      Request.v 1 1 Op.Read 5;
      Request.v 1 2 Op.Write 6;
      Request.terminal 1 3 Op.Commit;
    ]
  in
  let finished = ref 0. in
  Backend.execute_batch b reqs (fun () -> finished := Ds_sim.Engine.now e);
  Ds_sim.Engine.run e;
  let expect = (2. *. 0.000353) +. 0.0005 in
  Alcotest.(check (float 1e-9)) "batch cost" expect !finished;
  Alcotest.(check int) "stmt count" 2 (Backend.executed_stmts b);
  (* Empty batch still calls back. *)
  let called = ref false in
  Backend.execute_batch b [] (fun () -> called := true);
  Ds_sim.Engine.run e;
  Alcotest.(check bool) "empty batch callback" true !called

let tests =
  [
    Alcotest.test_case "lock basic" `Quick test_lock_basic;
    Alcotest.test_case "lock reentrant" `Quick test_lock_reentrant;
    Alcotest.test_case "lock upgrade" `Quick test_lock_upgrade;
    Alcotest.test_case "lock fifo" `Quick test_lock_fifo;
    Alcotest.test_case "lock double-block" `Quick test_lock_blocked_twice;
    Alcotest.test_case "release cancels waiters" `Quick test_release_cancels_waiters;
    QCheck_alcotest.to_alcotest lock_invariant_prop;
    QCheck_alcotest.to_alcotest lock_persistence_prop;
    QCheck_alcotest.to_alcotest deadlock_resolution_prop;
    Alcotest.test_case "deadlock cycle" `Quick test_deadlock_cycle;
    Alcotest.test_case "deadlock via locks" `Quick test_deadlock_via_locks;
    Alcotest.test_case "cpu fcfs" `Quick test_cpu_fcfs;
    Alcotest.test_case "cpu two cores" `Quick test_cpu_two_cores;
    Alcotest.test_case "schedule acyclicity check" `Quick test_schedule_acyclic;
    Alcotest.test_case "schedule filter" `Quick test_schedule_filter;
    Alcotest.test_case "native single client" `Quick test_native_single_client;
    Alcotest.test_case "native determinism" `Quick test_native_determinism;
    Alcotest.test_case "native schedule serializable" `Slow
      test_native_schedule_serializable;
    Alcotest.test_case "native contention grows" `Quick test_native_contention_grows;
    Alcotest.test_case "mpl admission control" `Slow test_mpl_admission;
    Alcotest.test_case "wound-wait policy" `Slow test_wound_wait;
    Alcotest.test_case "replay agreement" `Quick test_replay_agreement;
    Alcotest.test_case "row store unit" `Quick test_row_store_unit;
    Alcotest.test_case "store faithfulness (MU = replay)" `Slow
      test_store_faithfulness;
    QCheck_alcotest.to_alcotest store_replay_prop;
    Alcotest.test_case "backend batch" `Quick test_backend_batch;
  ]
