(* End-to-end integration tests: the full middleware loop (Figure 1), its
   correctness guarantees, determinism and the experiment harnesses. *)

open Ds_core
open Ds_model
open Ds_relal

let small_spec = { Ds_workload.Spec.paper_default with Ds_workload.Spec.n_objects = 2000 }

let cfg ?(protocol = Builtin.ss2pl_ocaml) ?(n_clients = 15) ?(duration = 3.) () =
  {
    Middleware.default_config with
    Middleware.n_clients;
    duration;
    spec = small_spec;
    protocol;
    charge_scheduler_time = false;
    (* keep integration runs deterministic across machines *)
    workers = Helpers.Config.workers ();
    (* CI exercises this whole suite at DS_WORKERS=1 and DS_WORKERS=4 *)
  }

let test_middleware_progress () =
  let s = Middleware.run (cfg ()) in
  Alcotest.(check bool) "commits happen" true (s.Middleware.committed_txns > 0);
  Alcotest.(check bool) "cycles ran" true (s.Middleware.cycles > 0);
  Alcotest.(check int) "stmts per txn" (s.Middleware.committed_txns * 40)
    s.Middleware.committed_stmts

let test_middleware_serializable_execution () =
  (* Run the middleware with the SS2PL protocol on a contended workload and
     check that the executed schedule (the rte table) is conflict-
     serializable. *)
  let config =
    {
      (cfg ~protocol:Builtin.ss2pl_sql ~n_clients:12 ~duration:2. ()) with
      Middleware.spec = { small_spec with Ds_workload.Spec.n_objects = 400 };
      (* stress the protocol *)
      starvation_cycles = 20;
    }
  in
  let _, sched = Middleware.run_full config in
  (* Extract the executed schedule from the rte table. Starvation-aborted
     transactions never reached the server in full, but their executed
     prefixes held logical locks, so they participate in the check. *)
  let rels = Scheduler.relations sched in
  let entries =
    List.map
      (fun row ->
        let r = Relations.request_of_row ~extended:false row in
        {
          Ds_server.Schedule.ta = r.Request.ta;
          op = r.Request.op;
          obj = Option.value ~default:(-1) r.Request.obj;
          value = 0;
        })
      (Table.rows rels.Relations.rte)
  in
  Alcotest.(check bool) "schedule non-trivial" true (List.length entries > 100);
  match Ds_server.Schedule.conflict_graph_acyclic entries with
  | Ok () -> ()
  | Error (a, b) ->
    Alcotest.failf "middleware produced conflict cycle between %d and %d" a b

let test_middleware_determinism () =
  let a = Middleware.run (cfg ()) in
  let b = Middleware.run (cfg ()) in
  Alcotest.(check int) "same commits" a.Middleware.committed_txns
    b.Middleware.committed_txns;
  Alcotest.(check int) "same cycles" a.Middleware.cycles b.Middleware.cycles

let test_middleware_passthrough_faster () =
  let strict = Middleware.run (cfg ~protocol:Builtin.ss2pl_ocaml ()) in
  let pass =
    Middleware.run { (cfg ()) with Middleware.passthrough = true }
  in
  Alcotest.(check bool) "passthrough at least as fast" true
    (pass.Middleware.committed_txns >= strict.Middleware.committed_txns);
  Alcotest.(check int) "passthrough never aborts" 0 pass.Middleware.aborted_txns

let test_middleware_relaxed_beats_strict_under_contention () =
  let contended =
    { small_spec with Ds_workload.Spec.n_objects = 150 }
  in
  let base = cfg ~n_clients:20 ~duration:2.5 () in
  let strict =
    Middleware.run
      { base with Middleware.spec = contended; protocol = Builtin.ss2pl_ocaml }
  in
  let relaxed =
    Middleware.run
      {
        base with
        Middleware.spec = contended;
        protocol = Builtin.read_committed_sql;
      }
  in
  Alcotest.(check bool)
    (Printf.sprintf "relaxed (%d) >= strict (%d)"
       relaxed.Middleware.committed_txns strict.Middleware.committed_txns)
    true
    (relaxed.Middleware.committed_txns >= strict.Middleware.committed_txns)

let test_middleware_sla_tiers () =
  let spec =
    {
      small_spec with
      Ds_workload.Spec.sla_mix = [ (Sla.premium, 0.2); (Sla.free, 0.8) ];
      n_objects = 5000;
    }
  in
  let config =
    {
      (cfg ~n_clients:20 ~duration:3. ()) with
      Middleware.spec;
      protocol = Builtin.sla_ordered;
      extended_relations = true;
    }
  in
  let s = Middleware.run config in
  match
    ( List.find_opt (fun (t, _, _, _) -> t = Sla.Premium) s.Middleware.latency_by_tier,
      List.find_opt (fun (t, _, _, _) -> t = Sla.Free) s.Middleware.latency_by_tier )
  with
  | Some (_, prem_mean, _, prem_n), Some (_, free_mean, _, free_n) ->
    Alcotest.(check bool) "both tiers committed" true (prem_n > 0 && free_n > 0);
    Alcotest.(check bool)
      (Printf.sprintf "premium (%.3fs) <= free (%.3fs)" prem_mean free_mean)
      true
      (prem_mean <= free_mean *. 1.1)
  | _ -> Alcotest.fail "expected both tiers in the result"

let test_trigger_policies_complete () =
  (* All trigger policies make progress. *)
  List.iter
    (fun trigger ->
      let s = Middleware.run { (cfg ~duration:2. ()) with Middleware.trigger } in
      Alcotest.(check bool)
        (Format.asprintf "progress under %a" Trigger.pp trigger)
        true
        (s.Middleware.committed_txns > 0))
    [
      Trigger.Time_lapse 0.005;
      Trigger.Fill_level 10;
      Trigger.Hybrid (0.02, 15);
    ]

let test_fill_trigger_never_wedges () =
  (* Regression: a pure fill-level trigger whose threshold exceeds what the
     closed loop can ever queue (15 clients, one outstanding request each,
     threshold 50) used to leave the middleware waiting forever on a cycle
     that could not fire.  The fallback timer must keep the loop draining.
     The fallback tick is deliberately slow (50ms), so a 40-statement
     transaction needs ~2 virtual seconds end to end — give the run enough
     time for several. *)
  let s =
    Middleware.run
      { (cfg ~duration:8. ()) with Middleware.trigger = Trigger.Fill_level 50 }
  in
  Alcotest.(check bool) "cycles fired despite unreachable fill level" true
    (s.Middleware.cycles > 0);
  Alcotest.(check bool) "work committed" true (s.Middleware.committed_txns > 0)

let test_middleware_intrinsic_aborts () =
  (* Workload transactions that end in ABORT flow through the middleware:
     they must not be counted as commits, must release their logical locks,
     and the system keeps making progress. *)
  let spec = { small_spec with Ds_workload.Spec.abort_fraction = 0.5 } in
  let config = { (cfg ~n_clients:10 ~duration:3. ()) with Middleware.spec } in
  let s, sched = Middleware.run_full config in
  Alcotest.(check bool) "still commits" true (s.Middleware.committed_txns > 0);
  (* Roughly half the finished transactions aborted: commits should be well
     below what a 0-abort run achieves. *)
  let no_aborts = Middleware.run (cfg ~n_clients:10 ~duration:3. ()) in
  Alcotest.(check bool) "fewer commits with aborts" true
    (s.Middleware.committed_txns < no_aborts.Middleware.committed_txns);
  (* Abort markers made it into the execution log. *)
  let rels = Scheduler.relations sched in
  let abort_rows =
    List.filter
      (fun row -> row.(3) = Ds_relal.Value.Str "a")
      (Table.rows rels.Relations.rte)
  in
  Alcotest.(check bool) "aborts executed" true (List.length abort_rows > 0)

let test_middleware_adaptive_under_load () =
  (* End-to-end: the adaptive protocol must commit at least as much as plain
     SS2PL on a contended workload, and must actually switch modes. *)
  let contended = { small_spec with Ds_workload.Spec.n_objects = 300 } in
  let base =
    {
      (cfg ~n_clients:20 ~duration:2.5 ()) with
      Middleware.spec = contended;
      starvation_cycles = 25;
    }
  in
  let strict =
    Middleware.run { base with Middleware.protocol = Builtin.ss2pl_ocaml }
  in
  let adaptive =
    Adaptive.make ~strict:Builtin.ss2pl_ocaml
      ~relaxed:Builtin.read_committed_sql ~high_watermark:10 ~low_watermark:3 ()
  in
  let s =
    Middleware.run { base with Middleware.protocol = Adaptive.protocol adaptive }
  in
  Alcotest.(check bool) "switched at least once" true
    (Adaptive.switches adaptive > 0);
  Alcotest.(check bool)
    (Printf.sprintf "adaptive (%d) >= strict (%d)" s.Middleware.committed_txns
       strict.Middleware.committed_txns)
    true
    (s.Middleware.committed_txns >= strict.Middleware.committed_txns)

let test_native_vs_declarative_experiment_shape () =
  (* A miniature of the paper's experiment: both measurement harnesses
     produce sane, comparable numbers. *)
  let native =
    Ds_server.Native_sim.run
      {
        Ds_server.Native_sim.default_config with
        Ds_server.Native_sim.n_clients = 50;
        duration = 2.;
        spec = small_spec;
        log_schedule = true;
      }
  in
  let su =
    Ds_server.Replay.single_user_time Ds_server.Cost_model.default
      native.Ds_server.Native_sim.schedule
  in
  Alcotest.(check bool) "MU/SU ratio >= 1" true (2. /. su >= 1.);
  let probe =
    Overhead_probe.measure ~runs:2
      { Overhead_probe.default_setup with Overhead_probe.n_clients = 50 }
      Builtin.ss2pl_sql
  in
  let amortized =
    Overhead_probe.amortized_overhead probe
      ~total_stmts:native.Ds_server.Native_sim.committed_stmts
  in
  Alcotest.(check bool) "amortized overhead finite and positive" true
    (amortized > 0. && Float.is_finite amortized)

let tests =
  [
    Alcotest.test_case "middleware progress" `Quick test_middleware_progress;
    Alcotest.test_case "middleware serializable execution" `Slow
      test_middleware_serializable_execution;
    Alcotest.test_case "middleware determinism" `Quick test_middleware_determinism;
    Alcotest.test_case "passthrough faster" `Quick test_middleware_passthrough_faster;
    Alcotest.test_case "relaxed beats strict under contention" `Slow
      test_middleware_relaxed_beats_strict_under_contention;
    Alcotest.test_case "sla tiers" `Slow test_middleware_sla_tiers;
    Alcotest.test_case "trigger policies complete" `Quick
      test_trigger_policies_complete;
    Alcotest.test_case "fill trigger never wedges" `Quick
      test_fill_trigger_never_wedges;
    Alcotest.test_case "intrinsic aborts flow through" `Quick
      test_middleware_intrinsic_aborts;
    Alcotest.test_case "adaptive under load" `Slow
      test_middleware_adaptive_under_load;
    Alcotest.test_case "experiment harness shape" `Slow
      test_native_vs_declarative_experiment_shape;
  ]
