(* Relaxed consistency during load spikes (paper 1: "reduced consistency
   criteria may be used during times of high load"; 2: consistency
   rationing).

     dune exec examples/relaxed_consistency.exe

   A shop in holiday rush: every client runs long mixed transactions over a
   modest object space, so locks pile up everywhere. We run the identical
   workload under:
     - full SS2PL                 (every object serializable),
     - read committed             (no read locks at all),
     - consistency rationing      (only objects < 1000 serializable: the
                                   stock/payment range; the rest relaxed).
   The declarative scheduler switches between them by swapping the protocol
   value — the adaptive consistency idea of 5. *)

open Ds_core
open Ds_workload

let holiday_rush =
  {
    Spec.paper_default with
    Spec.n_objects = 3_000;
    selects_per_txn = 20;
    updates_per_txn = 20;
  }

let run (protocol : Protocol.t) =
  let cfg =
    {
      Middleware.default_config with
      Middleware.n_clients = 60;
      duration = 8.;
      spec = holiday_rush;
      protocol;
      trigger = Trigger.Hybrid (0.01, 60);
      starvation_cycles = 40;
    }
  in
  let s = Middleware.run cfg in
  Printf.printf "%-22s  committed=%-5d aborted=%-5d p95=%6.1f ms\n"
    protocol.Protocol.name s.Middleware.committed_txns s.Middleware.aborted_txns
    (1000. *. s.Middleware.p95_txn_latency);
  s.Middleware.committed_txns

let () =
  Printf.printf "holiday-rush workload: %s\n\n"
    (Format.asprintf "%a" Spec.pp holiday_rush);
  let strict = run Builtin.ss2pl_sql in
  let relaxed = run Builtin.read_committed_sql in
  let rationed = run (Builtin.rationing ~threshold:1000) in
  Printf.printf
    "\nthroughput: ss2pl %d  ->  read-committed %d  ->  rationing %d txns\n"
    strict relaxed rationed;
  Printf.printf
    "dropping read locks helps some; rationing helps most, because write\n\
     locks and write-write ordering dominate, and rationing relaxes both for\n\
     everything outside the stock/payment range (objects < 1000) - each is a\n\
     protocol *query*, not new scheduler code.\n"
