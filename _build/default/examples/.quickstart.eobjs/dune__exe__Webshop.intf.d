examples/webshop.mli:
