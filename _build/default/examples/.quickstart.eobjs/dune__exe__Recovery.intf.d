examples/recovery.mli:
