examples/webshop.ml: Builtin Ds_core Ds_model Ds_relal Format List Op Printf Protocol Relations Request Rule_lang Scheduler
