examples/quickstart.ml: Builtin Ds_core Ds_model Ds_sql Format List Op Printf Protocol Relations Request Scheduler
