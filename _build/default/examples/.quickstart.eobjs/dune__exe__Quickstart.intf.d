examples/quickstart.mli:
