examples/relaxed_consistency.mli:
