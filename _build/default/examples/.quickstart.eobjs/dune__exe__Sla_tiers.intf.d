examples/sla_tiers.mli:
