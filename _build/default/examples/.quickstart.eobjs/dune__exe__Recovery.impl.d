examples/recovery.ml: Builtin Ds_core Ds_model Filename Journal List Op Printf Relations Request Scheduler String Sys
