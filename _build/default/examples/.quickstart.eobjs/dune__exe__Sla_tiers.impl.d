examples/sla_tiers.ml: Builtin Ds_core Ds_model Ds_workload Float Format List Middleware Printf Rule_lang Sla Spec Trigger
