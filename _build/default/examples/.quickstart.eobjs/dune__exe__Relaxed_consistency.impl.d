examples/relaxed_consistency.ml: Builtin Ds_core Ds_workload Format Middleware Printf Protocol Spec Trigger
