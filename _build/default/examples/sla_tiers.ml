(* SLA tiers: premium vs free customers (the paper's 1 motivating example).

     dune exec examples/sla_tiers.exe

   A web shop serves 20% premium and 80% free customers through the
   declarative middleware. The scheduling policy is written in the rule
   language: SS2PL for correctness, ordered by SLA weight. We compare
   response times against plain FCFS ordering. *)

open Ds_core
open Ds_model
open Ds_workload

let spec =
  {
    Spec.paper_default with
    Spec.n_objects = 10_000;
    selects_per_txn = 8;
    updates_per_txn = 4;
    sla_mix = [ (Sla.premium, 0.2); (Sla.free, 0.8) ];
  }

let premium_first =
  Rule_lang.compile
    {|# premium requests overtake free ones inside every batch
protocol premium-first
guarantee serializable
rules ss2pl
order by weight desc, arrival asc|}

let run name protocol =
  let cfg =
    {
      Middleware.default_config with
      Middleware.n_clients = 80;
      duration = 8.;
      spec;
      protocol;
      extended_relations = true;
      trigger = Trigger.Hybrid (0.01, 80);
      charge_scheduler_time = true;
    }
  in
  let s = Middleware.run cfg in
  Printf.printf "\n%s: %d committed, %d cycles\n" name
    s.Middleware.committed_txns s.Middleware.cycles;
  List.iter
    (fun (tier, mean, p95, n) ->
      Printf.printf "  %-8s  n=%-4d  mean=%6.1f ms   p95=%6.1f ms\n"
        (Sla.tier_to_string tier) n (1000. *. mean) (1000. *. p95))
    s.Middleware.latency_by_tier;
  s

let () =
  Printf.printf "workload: %s\n"
    (Format.asprintf "%a" Spec.pp spec);
  let sla = run "premium-first (rule language)" premium_first in
  let fcfs = run "ss2pl + fcfs order (baseline)" Builtin.ss2pl_sql in
  let mean_of tier (s : Middleware.stats) =
    match List.find_opt (fun (t, _, _, _) -> t = tier) s.Middleware.latency_by_tier with
    | Some (_, mean, _, _) -> mean
    | None -> nan
  in
  let speedup =
    mean_of Sla.Premium fcfs /. Float.max 1e-9 (mean_of Sla.Premium sla)
  in
  Printf.printf
    "\npremium mean latency improves %.2fx under the declarative SLA rule\n"
    speedup;
  Printf.printf
    "(one ORDER BY line in the protocol; no scheduler code was changed)\n"
