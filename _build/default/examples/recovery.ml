(* Crash recovery: the scheduler's write-ahead journal in action.

     dune exec examples/recovery.exe

   A scheduler journals every submit / qualification / abort. We "crash" it
   mid-workload (including a torn final write), recover the journal into a
   fresh scheduler, and show that the recovered scheduler makes exactly the
   decision the lost one would have made. *)

open Ds_core
open Ds_model

let journal_path = Filename.temp_file "dsched_demo" ".journal"

let () =
  (* --- before the crash -------------------------------------------- *)
  let journal = Journal.open_ journal_path in
  let sched = Scheduler.create ~journal Builtin.ss2pl_sql in
  Printf.printf "journal: %s\n\n" journal_path;

  List.iter (Scheduler.submit sched)
    [
      Request.v 1 1 Op.Write 10;  (* T1 takes the write lock on 10 *)
      Request.v 2 1 Op.Write 10;  (* T2 must wait for it *)
      Request.v 3 1 Op.Read 77;   (* unrelated *)
    ];
  let q, _ = Scheduler.cycle sched in
  Printf.printf "executed before crash: %s\n"
    (String.concat ", " (List.map Request.to_string q));
  (* T9 hogged something for too long once; the middleware had aborted it. *)
  ignore (Scheduler.abort_txn sched 9);

  (* --- the crash ----------------------------------------------------- *)
  Journal.close journal;
  let oc = open_out_gen [ Open_append ] 0o644 journal_path in
  output_string oc "S 4,4,1,w";  (* torn write: power went out mid-line *)
  close_out oc;
  Printf.printf "\n*** crash (with a torn trailing journal write) ***\n\n";

  (* --- recovery ------------------------------------------------------ *)
  let recovered = Journal.recover journal_path in
  Printf.printf "recovered: %d entries, %d pending, %d in history\n"
    recovered.Journal.replayed
    (List.length recovered.Journal.pending)
    (List.length recovered.Journal.history);
  let fresh = Scheduler.create Builtin.ss2pl_sql in
  Journal.restore recovered (Scheduler.relations fresh);
  Printf.printf "still pending after restore: %s\n"
    (String.concat ", "
       (List.map Request.to_string (Relations.pending (Scheduler.relations fresh))));

  (* The recovered scheduler remembers T1's lock: T2 stays blocked... *)
  let q, _ = Scheduler.cycle fresh in
  Printf.printf "first cycle after recovery qualifies: %d request(s)\n"
    (List.length q);
  (* ...until T1 commits, exactly as the lost scheduler would have decided. *)
  Scheduler.submit fresh (Request.terminal 1 2 Op.Commit);
  ignore (Scheduler.cycle fresh);
  let q, _ = Scheduler.cycle fresh in
  Printf.printf "after T1 commits, T2 unblocks: %s\n"
    (String.concat ", " (List.map Request.to_string q));
  Sys.remove journal_path
