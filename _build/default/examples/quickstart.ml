(* Quickstart: the declarative scheduler in five steps.

     dune exec examples/quickstart.exe

   1. create a scheduler programmed with a declarative protocol (the paper's
      Listing 1, i.e. strong 2PL as a SQL query);
   2. submit concurrent client requests to the incoming queue;
   3. run a scheduler cycle: requests become rows, the protocol query picks
      the executable subset, qualified requests move to the history;
   4. peek at the scheduler's relations with plain SQL;
   5. swap in a different protocol — two lines, no scheduler code. *)

open Ds_core
open Ds_model

let banner title = Printf.printf "\n--- %s ---\n" title

let show r = Printf.printf "  %s\n" (Request.to_string r)

let () =
  (* 1. A scheduler programmed with Listing 1. *)
  let sched = Scheduler.create Builtin.ss2pl_sql in
  Printf.printf "protocol: %s\n"
    (Format.asprintf "%a" Protocol.pp (Scheduler.protocol sched));

  (* 2. Three clients race: T1 reads object 7, T2 wants to write it, T3
        works elsewhere. *)
  banner "incoming requests";
  let batch =
    [
      Request.v 1 1 Op.Read 7;
      Request.v 2 1 Op.Write 7;
      Request.v 3 1 Op.Write 99;
    ]
  in
  List.iter show batch;
  List.iter (Scheduler.submit sched) batch;

  (* 3. One cycle: T2's write must wait for T1 (SS2PL), everything else
        runs. *)
  let qualified, stats = Scheduler.cycle sched in
  banner "qualified by SS2PL";
  List.iter show qualified;
  Printf.printf "  (%d of %d; protocol query took %.2f ms)\n"
    stats.Scheduler.qualified stats.Scheduler.drained
    (1000. *. stats.Scheduler.times.Scheduler.query);

  (* 4. The scheduler state is just tables — inspect it with SQL. *)
  banner "scheduler state (SQL)";
  let rels = Scheduler.relations sched in
  let schema, rows =
    Ds_sql.Exec.query rels.Relations.catalog
      "SELECT ta, intrata, operation, object FROM requests ORDER BY id"
  in
  Printf.printf "still pending:\n%s" (Ds_sql.Exec.render schema rows);

  (* T1 commits; its locks disappear from the logical lock table and T2's
     write qualifies on the next cycle. *)
  Scheduler.submit sched (Request.terminal 1 2 Op.Commit);
  ignore (Scheduler.cycle sched);
  let unblocked, _ = Scheduler.cycle sched in
  banner "after T1 commits";
  List.iter show unblocked;

  (* 5. Changing the protocol is changing a value, not rewriting a
        scheduler. *)
  banner "same system, relaxed protocol";
  let relaxed = Scheduler.create Builtin.read_committed_sql in
  List.iter (Scheduler.submit relaxed)
    [ Request.v 1 1 Op.Read 7; Request.v 2 1 Op.Write 7 ];
  let q, _ = Scheduler.cycle relaxed in
  List.iter show q;
  Printf.printf
    "  (read-committed drops read locks: the write no longer waits)\n"
