(* A small web shop scheduled by an application-specific protocol written
   entirely in the rule language with inline Datalog — the "novel
   application-specific consistency protocols" of the paper's abstract.

     dune exec examples/webshop.exe

   Object space:
     0 ..  999   stock counters   (must be serializable: no overselling)
     1000 .. 1999  user baskets   (single-owner: only write-write ordered)
     2000 ..       catalog pages  (read-mostly: never block)

   The protocol below encodes exactly that, in ~15 lines of rules. *)

open Ds_core
open Ds_model

let shop_protocol =
  Rule_lang.compile
    {|protocol webshop
guarantee custom:shop
rules datalog {
  % finished transactions hold no locks
  finished(TA) :- history_terminal(_, TA, _, 'c').
  finished(TA) :- history_terminal(_, TA, _, 'a').
  wlocked(O, TA) :- history(_, TA, _, 'w', O), not finished(TA).
  rlocked(O, TA) :- history(_, TA, _, 'r', O), not finished(TA).

  % stock range: full SS2PL
  blocked(TA, I) :- requests(_, TA, I, _, O), O < 1000, wlocked(O, T2), TA <> T2.
  blocked(TA, I) :- requests(_, TA, I, 'w', O), O < 1000, rlocked(O, T2), TA <> T2.
  blocked(TA, I) :- requests(_, TA, I, 'w', O), O < 1000, requests(_, T1, _, _, O), TA > T1.
  blocked(TA, I) :- requests(_, TA, I, _, O), O < 1000, requests(_, T1, _, 'w', O), TA > T1.

  % basket range: write-write ordering only
  blocked(TA, I) :- requests(_, TA, I, 'w', O), O >= 1000, O < 2000, wlocked(O, T2), TA <> T2.
  blocked(TA, I) :- requests(_, TA, I, 'w', O), O >= 1000, O < 2000, requests(_, T1, _, 'w', O), TA > T1.

  % catalog range (>= 2000): never blocked
  qualified(TA, I) :- requests(_, TA, I, _, _), not blocked(TA, I).
  qualified(TA, I) :- terminal_requests(_, TA, I, _).
}|}

(* An admin transaction (T10) has updated catalog page 2042 and not yet
   committed — under strict locking that blocks every browser. *)
let admin_history = [ Request.v 10 1 Op.Write 2042 ]

(* Three shoppers interleave: Alice buys (stock 5 + her basket 1001),
   Bob also wants stock 5, Carol only browses the catalog. *)
let shopping_batch =
  [
    Request.v 1 1 Op.Read 5;      (* Alice checks stock *)
    Request.v 1 2 Op.Write 1001;  (* Alice updates her basket *)
    Request.v 2 1 Op.Write 5;     (* Bob decrements the same stock *)
    Request.v 2 2 Op.Write 1002;  (* Bob's own basket *)
    Request.v 3 1 Op.Read 2042;   (* Carol browses *)
    Request.v 3 2 Op.Read 2097;   (* ... more browsing *)
  ]

let () =
  Printf.printf "protocol: %s\n\n"
    (Format.asprintf "%a" Protocol.pp shop_protocol);
  let load_history sched =
    let rels = Scheduler.relations sched in
    List.iter
      (fun r ->
        Ds_relal.Table.insert rels.Relations.history
          (Relations.row_of_request ~extended:false r))
      admin_history
  in
  let sched = Scheduler.create shop_protocol in
  load_history sched;
  List.iter (Scheduler.submit sched) shopping_batch;
  let qualified, stats = Scheduler.cycle sched in
  Printf.printf "batch of %d, qualified %d under the shop protocol:\n"
    stats.Scheduler.drained stats.Scheduler.qualified;
  List.iter (fun r -> Printf.printf "  %s\n" (Request.to_string r)) qualified;
  Printf.printf
    "\nBob's write on stock 5 waits for Alice (serializable range); the\n\
     baskets and Carol's catalog reads go through immediately, even though\n\
     an uncommitted admin write touched page 2042.\n\n";
  (* Compare against one-size-fits-all SS2PL on the same batch. *)
  let strict = Scheduler.create Builtin.ss2pl_sql in
  load_history strict;
  List.iter (Scheduler.submit strict) shopping_batch;
  let q2, _ = Scheduler.cycle strict in
  Printf.printf "plain SS2PL on the same batch qualifies only %d request(s):\n"
    (List.length q2);
  List.iter (fun r -> Printf.printf "  %s\n" (Request.to_string r)) q2;
  Printf.printf
    "\n(under SS2PL Carol's read of page 2042 waits for the admin commit;\n\
     the shop protocol keeps the stock-range guarantees and lets it through)\n"
