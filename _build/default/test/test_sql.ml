(* Tests for Ds_sql: lexer, parser, compilation and execution, including the
   paper's Listing 1. *)

open Ds_sql
open Ds_relal

let fresh_db () =
  let cat = Catalog.create () in
  ignore
    (Exec.exec_script cat
       {|
CREATE TABLE emp (id INT, name TEXT, dept INT, salary INT);
CREATE TABLE dept (id INT, dname TEXT);
INSERT INTO emp VALUES (1, 'ann', 10, 100);
INSERT INTO emp VALUES (2, 'bob', 10, 200);
INSERT INTO emp VALUES (3, 'cleo', 20, 300);
INSERT INTO emp (id, name) VALUES (4, 'dan');
INSERT INTO dept VALUES (10, 'eng');
INSERT INTO dept VALUES (30, 'hr');
|});
  cat

let rows cat sql = snd (Exec.query cat sql)

let ints row = Array.to_list row

let test_lexer () =
  let toks = Lexer.tokenize "SELECT x, 'it''s' FROM t -- c\n WHERE y <= 4.5 /* z */ <> !=" in
  let kinds = List.map fst toks in
  Alcotest.(check bool) "keywords uppercased" true
    (List.mem (Token.Kw "SELECT") kinds);
  Alcotest.(check bool) "ident lowercased" true
    (List.mem (Token.Ident "x") kinds);
  Alcotest.(check bool) "string escape" true
    (List.mem (Token.Str_lit "it's") kinds);
  Alcotest.(check bool) "float" true (List.mem (Token.Float_lit 4.5) kinds);
  Alcotest.(check bool) "neq normalized" true
    (List.length (List.filter (fun t -> t = Token.Sym "<>") kinds) = 2)

let test_lexer_errors () =
  Alcotest.(check bool) "unterminated string" true
    (try
       ignore (Lexer.tokenize "SELECT 'oops");
       false
     with Lexer.Lex_error _ -> true);
  Alcotest.(check bool) "bad char" true
    (try
       ignore (Lexer.tokenize "SELECT @");
       false
     with Lexer.Lex_error _ -> true)

let test_parser_shapes () =
  (match Parser.parse_stmt "SELECT a, b AS c FROM t WHERE a = 1 ORDER BY 1 DESC LIMIT 3" with
  | Ast.Select_stmt { Ast.body = Ast.Select b; order_by = [ (Ast.Int_lit 1, false) ]; limit = Some 3; _ } ->
    Alcotest.(check int) "items" 2 (List.length b.Ast.items)
  | _ -> Alcotest.fail "unexpected shape");
  (match Parser.parse_stmt "INSERT INTO t (a) VALUES (1), (2)" with
  | Ast.Insert { columns = Some [ "a" ]; source = `Values [ _; _ ]; _ } -> ()
  | _ -> Alcotest.fail "insert shape");
  match Parser.parse_stmt "UPDATE t SET a = a + 1 WHERE b IS NOT NULL" with
  | Ast.Update { sets = [ ("a", _) ]; where = Some (Ast.Is_null (_, true)); _ } -> ()
  | _ -> Alcotest.fail "update shape"

let test_parser_errors () =
  let expect_fail sql =
    match Parser.parse_stmt sql with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %s" sql
  in
  expect_fail "SELECT FROM";
  expect_fail "SELECT * FROM t WHERE";
  expect_fail "SELECT (SELECT a FROM t) FROM t";
  expect_fail "SELECT * FROM t LIMIT x";
  expect_fail "WITH x AS SELECT 1 SELECT 2"

let test_basic_select () =
  let cat = fresh_db () in
  Alcotest.(check int) "all rows" 4 (List.length (rows cat "SELECT * FROM emp"));
  let r = rows cat "SELECT name FROM emp WHERE salary > 150 ORDER BY salary DESC" in
  Alcotest.(check bool) "filter + order" true
    (List.map ints r = [ [ Value.Str "cleo" ]; [ Value.Str "bob" ] ]);
  let r = rows cat "SELECT id + 100 AS shifted FROM emp WHERE id = 1" in
  Alcotest.(check bool) "projection arith" true
    (List.map ints r = [ [ Value.Int 101 ] ])

let test_null_handling () =
  let cat = fresh_db () in
  Alcotest.(check int) "null dept excluded by =" 0
    (List.length (rows cat "SELECT * FROM emp WHERE dept = NULL"));
  Alcotest.(check int) "is null" 1
    (List.length (rows cat "SELECT * FROM emp WHERE dept IS NULL"));
  Alcotest.(check int) "is not null" 3
    (List.length (rows cat "SELECT * FROM emp WHERE dept IS NOT NULL"))

let test_joins_sql () =
  let cat = fresh_db () in
  let r = rows cat "SELECT e.name, d.dname FROM emp e, dept d WHERE e.dept = d.id ORDER BY e.name" in
  Alcotest.(check int) "inner via where" 2 (List.length r);
  let r =
    rows cat
      "SELECT e.name, d.dname FROM emp e LEFT JOIN dept d ON e.dept = d.id ORDER BY e.id"
  in
  Alcotest.(check int) "left join row count" 4 (List.length r);
  let nulls = List.filter (fun row -> row.(1) = Value.Null) r in
  Alcotest.(check int) "unmatched padded" 2 (List.length nulls);
  let r = rows cat "SELECT e.id FROM emp e JOIN dept d ON e.dept = d.id AND d.dname = 'eng' ORDER BY e.id" in
  Alcotest.(check int) "join with residual" 2 (List.length r)

let test_exists_in () =
  let cat = fresh_db () in
  let r =
    rows cat
      "SELECT name FROM emp e WHERE EXISTS (SELECT * FROM dept d WHERE d.id = e.dept) ORDER BY name"
  in
  Alcotest.(check int) "exists" 2 (List.length r);
  let r =
    rows cat
      "SELECT name FROM emp e WHERE NOT EXISTS (SELECT * FROM dept d WHERE d.id = e.dept) ORDER BY name"
  in
  (* cleo (dept 20 unmatched) and dan (dept NULL). *)
  Alcotest.(check int) "not exists" 2 (List.length r);
  let r = rows cat "SELECT name FROM emp WHERE dept IN (SELECT id FROM dept)" in
  Alcotest.(check int) "in subquery" 2 (List.length r);
  let r = rows cat "SELECT name FROM emp WHERE id IN (1, 3)" in
  Alcotest.(check int) "in list" 2 (List.length r)

let test_set_ops_sql () =
  let cat = fresh_db () in
  Alcotest.(check int) "union all" 6
    (List.length (rows cat "(SELECT id FROM emp) UNION ALL (SELECT id FROM dept)"));
  Alcotest.(check int) "union" 6
    (List.length (rows cat "(SELECT id FROM emp) UNION (SELECT id FROM dept)"));
  Alcotest.(check int) "except" 3
    (List.length
       (rows cat "(SELECT dept FROM emp) EXCEPT (SELECT 99)"));
  (* except dedups: depts 10,10,20,NULL -> 10,20,NULL *)
  Alcotest.(check int) "intersect" 1
    (List.length (rows cat "(SELECT dept FROM emp) INTERSECT (SELECT id FROM dept)"))

let test_group_by_sql () =
  let cat = fresh_db () in
  let r =
    rows cat
      "SELECT dept, COUNT(*) AS n, SUM(salary) AS s FROM emp GROUP BY dept ORDER BY dept"
  in
  (* NULL group first (Value ordering puts NULL smallest). *)
  Alcotest.(check int) "groups" 3 (List.length r);
  let g10 = List.find (fun row -> row.(0) = Value.Int 10) r in
  Alcotest.(check bool) "count/sum" true
    (g10.(1) = Value.Int 2 && g10.(2) = Value.Int 300);
  let r =
    rows cat
      "SELECT dept FROM emp GROUP BY dept HAVING COUNT(*) > 1"
  in
  Alcotest.(check int) "having" 1 (List.length r);
  let r = rows cat "SELECT COUNT(salary) FROM emp" in
  Alcotest.(check bool) "count skips nulls" true
    (List.hd r = [| Value.Int 3 |]);
  let r = rows cat "SELECT AVG(salary) FROM emp" in
  Alcotest.(check bool) "avg" true (List.hd r = [| Value.Float 200. |])

let test_cte () =
  let cat = fresh_db () in
  let r =
    rows cat
      {|WITH rich AS (SELECT * FROM emp WHERE salary >= 200),
            names AS (SELECT name FROM rich)
        SELECT * FROM names ORDER BY name|}
  in
  Alcotest.(check bool) "cte chain" true
    (List.map ints r = [ [ Value.Str "bob" ]; [ Value.Str "cleo" ] ])

let test_dml () =
  let cat = fresh_db () in
  (match Exec.exec cat "UPDATE emp SET salary = salary * 2 WHERE dept = 10" with
  | Exec.Affected 2 -> ()
  | _ -> Alcotest.fail "update count");
  let r = rows cat "SELECT salary FROM emp WHERE id = 1" in
  Alcotest.(check bool) "updated" true (List.hd r = [| Value.Int 200 |]);
  (match Exec.exec cat "DELETE FROM emp WHERE salary IS NULL" with
  | Exec.Affected 1 -> ()
  | _ -> Alcotest.fail "delete count");
  (match Exec.exec cat "INSERT INTO emp SELECT id + 100, name, dept, salary FROM emp" with
  | Exec.Affected 3 -> ()
  | _ -> Alcotest.fail "insert-select count");
  Alcotest.(check int) "final count" 6 (List.length (rows cat "SELECT * FROM emp"))

let test_ddl () =
  let cat = Catalog.create () in
  (match Exec.exec cat "CREATE TABLE t (a INT, b TEXT)" with
  | Exec.Done -> ()
  | _ -> Alcotest.fail "create");
  (match Exec.exec cat "CREATE INDEX ON t (a)" with
  | Exec.Done -> ()
  | _ -> Alcotest.fail "index");
  Alcotest.(check bool) "duplicate create fails" true
    (try
       ignore (Exec.exec cat "CREATE TABLE t (x INT)");
       false
     with Exec.Exec_error _ -> true);
  (match Exec.exec cat "DROP TABLE t" with
  | Exec.Done -> ()
  | _ -> Alcotest.fail "drop");
  Alcotest.(check bool) "unknown table" true
    (try
       ignore (Exec.exec cat "SELECT * FROM t");
       false
     with Compile.Compile_error _ -> true)

let test_compile_errors () =
  let cat = fresh_db () in
  let expect sql =
    try
      ignore (Exec.exec cat sql);
      Alcotest.failf "expected compile error for %s" sql
    with Compile.Compile_error _ -> ()
  in
  expect "SELECT zz FROM emp";
  expect "SELECT e.name FROM emp e, emp e2 WHERE name = 'ann'" |> ignore;
  expect "SELECT name FROM emp GROUP BY dept";
  expect "(SELECT id, name FROM emp) UNION (SELECT id FROM dept)";
  expect "SELECT name FROM emp WHERE dept IN (SELECT id, dname FROM dept)"

(* --- Listing 1 --------------------------------------------------- *)

let listing1_db () =
  let cat = Catalog.create () in
  ignore
    (Exec.exec_script cat
       {|
CREATE TABLE requests (id INT, ta INT, intrata INT, operation TEXT, object INT);
CREATE TABLE history  (id INT, ta INT, intrata INT, operation TEXT, object INT);
INSERT INTO history VALUES (1, 1, 1, 'r', 10);
INSERT INTO history VALUES (2, 2, 1, 'w', 20);
INSERT INTO history VALUES (3, 5, 1, 'w', 50);
INSERT INTO history VALUES (4, 5, 2, 'c', NULL);
INSERT INTO requests VALUES (10, 3, 1, 'w', 10);
INSERT INTO requests VALUES (11, 3, 2, 'r', 30);
INSERT INTO requests VALUES (12, 4, 1, 'r', 20);
INSERT INTO requests VALUES (13, 1, 2, 'w', 11);
INSERT INTO requests VALUES (14, 6, 1, 'r', 50);
INSERT INTO requests VALUES (15, 7, 1, 'c', NULL);
|});
  cat

let expected_listing1 = [ 11; 13; 14; 15 ]
(* 10 blocked by T1's read lock on 10; 12 blocked by T2's write lock on 20;
   14 fine because T5 committed (lock released); 15 is a terminal op. *)

let test_listing1_semantics () =
  let cat = listing1_db () in
  List.iter
    (fun level ->
      let plan = Exec.prepare ~optimize:level cat Ds_core.Queries.ss2pl in
      let result =
        Exec.run_plan plan
        |> List.map (fun row -> match row.(0) with Value.Int i -> i | _ -> -1)
        |> List.sort Int.compare
      in
      Alcotest.(check (list int))
        (Printf.sprintf "listing1 at level %s"
           (match level with `None -> "none" | `Basic -> "basic" | `Full -> "full"))
        expected_listing1 result)
    [ `None; `Basic; `Full ]

let test_listing1_optimizer_shrinks_plan () =
  let cat = listing1_db () in
  let p_none = Exec.prepare ~optimize:`None cat Ds_core.Queries.ss2pl in
  let p_full = Exec.prepare ~optimize:`Full cat Ds_core.Queries.ss2pl in
  (* Decorrelation removes the nested correlated Exists from the main
     filter path; plan shapes must differ. *)
  Alcotest.(check bool) "plans differ" true (p_none <> p_full)

let test_listing1_table_index_agreement () =
  (* Joins probing the persistent table index must produce exactly the same
     rows as ephemeral hashing. *)
  let cat = listing1_db () in
  ignore (Exec.exec cat "CREATE INDEX ON history (ta)");
  ignore (Exec.exec cat "CREATE INDEX ON requests (object)");
  let plan = Exec.prepare ~optimize:`Full cat Ds_core.Queries.ss2pl in
  let sort rows = List.sort compare (List.map Array.to_list rows) in
  Eval.use_table_indexes := true;
  let with_index = sort (Exec.run_plan plan) in
  Eval.use_table_indexes := false;
  let without_index = sort (Exec.run_plan plan) in
  Eval.use_table_indexes := true;
  Alcotest.(check bool) "identical results" true (with_index = without_index);
  Alcotest.(check int) "expected cardinality" 4 (List.length with_index)

let test_precedence () =
  let cat = fresh_db () in
  (* AND binds tighter than OR. *)
  Alcotest.(check int) "and over or" 3
    (List.length
       (rows cat "SELECT * FROM emp WHERE dept = 20 OR dept = 10 AND salary >= 100"));
  (* NOT binds tighter than AND. *)
  Alcotest.(check int) "not over and" 1
    (List.length
       (rows cat "SELECT * FROM emp WHERE NOT dept = 10 AND salary = 300"));
  (* Multiplication over addition; unary minus. *)
  let r = rows cat "SELECT 2 + 3 * 4, -(2 + 3), 10 - 2 - 3" in
  Alcotest.(check bool) "arithmetic" true
    (List.hd r = [| Value.Int 14; Value.Int (-5); Value.Int 5 |]);
  (* Comparison chains do not associate: a = b = c is a parse error in our
     grammar (comparison is non-associative). *)
  match Parser.parse_stmt "SELECT * FROM emp WHERE 1 = 1 = 1" with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "chained comparison must not parse"

let test_between () =
  let cat = fresh_db () in
  Alcotest.(check int) "between inclusive" 2
    (List.length (rows cat "SELECT * FROM emp WHERE salary BETWEEN 100 AND 200"));
  Alcotest.(check int) "not between" 1
    (List.length (rows cat "SELECT * FROM emp WHERE salary NOT BETWEEN 100 AND 200"));
  (* NULL salary is neither between nor not-between (3VL). *)
  Alcotest.(check int) "null excluded from between" 3
    (List.length (rows cat "SELECT * FROM emp WHERE salary BETWEEN 0 AND 999"));
  Alcotest.(check int) "null excluded from not-between" 0
    (List.length (rows cat "SELECT * FROM emp WHERE salary NOT BETWEEN 0 AND 999"));
  (* BETWEEN binds tighter than the surrounding AND. *)
  Alcotest.(check int) "between within conjunction" 1
    (List.length
       (rows cat "SELECT * FROM emp WHERE salary BETWEEN 100 AND 300 AND dept = 20"))

let test_case_expressions () =
  let cat = fresh_db () in
  (* Searched form. *)
  let r =
    rows cat
      {|SELECT name, CASE WHEN salary >= 250 THEN 'high'
                          WHEN salary >= 150 THEN 'mid'
                          ELSE 'low' END AS band
        FROM emp WHERE salary IS NOT NULL ORDER BY id|}
  in
  Alcotest.(check bool) "bands" true
    (List.map (fun row -> row.(1)) r
    = [ Value.Str "low"; Value.Str "mid"; Value.Str "high" ]);
  (* Simple (operand) form. *)
  let r =
    rows cat
      "SELECT CASE dept WHEN 10 THEN 'eng' WHEN 20 THEN 'sales' END AS d FROM emp ORDER BY id"
  in
  Alcotest.(check bool) "operand form with null default" true
    (List.map (fun row -> row.(0)) r
    = [ Value.Str "eng"; Value.Str "eng"; Value.Str "sales"; Value.Null ]);
  (* CASE in WHERE and ORDER BY. *)
  let r =
    rows cat
      {|SELECT name FROM emp
        WHERE CASE WHEN dept IS NULL THEN FALSE ELSE dept < 15 END
        ORDER BY CASE name WHEN 'bob' THEN 0 ELSE 1 END, name|}
  in
  Alcotest.(check bool) "where + order by case" true
    (List.map (fun row -> row.(0)) r = [ Value.Str "bob"; Value.Str "ann" ]);
  (* Missing WHEN arm is a parse error. *)
  match Parser.parse_stmt "SELECT CASE ELSE 1 END FROM emp" with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "CASE without WHEN must fail"

let test_ordered_index_sql () =
  let cat = fresh_db () in
  (match Exec.exec cat "CREATE ORDERED INDEX ON emp (salary)" with
  | Exec.Done -> ()
  | _ -> Alcotest.fail "create ordered index");
  let r = rows cat "SELECT name FROM emp WHERE salary >= 150 AND salary < 300 ORDER BY name" in
  Alcotest.(check int) "range via index" 1 (List.length r);
  Alcotest.(check bool) "multi-column rejected" true
    (try
       ignore (Exec.exec cat "CREATE ORDERED INDEX ON emp (salary, dept)");
       false
     with Parser.Parse_error _ | Exec.Exec_error _ -> true)

let test_prepared_params () =
  let cat = fresh_db () in
  let p =
    Exec.prepare_params cat
      "SELECT name FROM emp WHERE salary > ? AND dept = ? ORDER BY name"
  in
  Exec.bind p 0 (Value.Int 50);
  Exec.bind p 1 (Value.Int 10);
  Alcotest.(check int) "both in dept 10" 2 (List.length (Exec.run_prepared p));
  Exec.bind p 0 (Value.Int 150);
  Alcotest.(check int) "rebound" 1 (List.length (Exec.run_prepared p));
  Alcotest.(check bool) "unknown placeholder rejected" true
    (try
       Exec.bind p 2 (Value.Int 0);
       false
     with Exec.Exec_error _ -> true);
  (* Unbound placeholders behave as NULL (three-valued comparison). *)
  let q = Exec.prepare_params cat "SELECT * FROM emp WHERE salary > ?" in
  Alcotest.(check int) "unbound = NULL filters everything" 0
    (List.length (Exec.run_prepared q))

let test_explain () =
  let cat = fresh_db () in
  match Exec.exec cat "EXPLAIN SELECT e.name FROM emp e, dept d WHERE e.dept = d.id" with
  | Exec.Rows (schema, rows) ->
    Alcotest.(check int) "one plan column" 1 (Schema.arity schema);
    let text =
      String.concat "\n"
        (List.map
           (fun row -> match row.(0) with Value.Str s -> s | _ -> "")
           rows)
    in
    Alcotest.(check bool) "shows a join" true (Helpers.contains text "INNERJoin");
    Alcotest.(check bool) "shows the scans" true (Helpers.contains text "Scan(emp AS e)")
  | _ -> Alcotest.fail "EXPLAIN must return rows"

let test_explain_analyze () =
  let cat = fresh_db () in
  match
    Exec.exec cat
      "EXPLAIN ANALYZE SELECT e.name FROM emp e, dept d WHERE e.dept = d.id"
  with
  | Exec.Rows (_, rows) ->
    let text =
      String.concat "\n"
        (List.map (fun r -> match r.(0) with Value.Str s -> s | _ -> "") rows)
    in
    Alcotest.(check bool) "has rows counts" true (Helpers.contains text "rows=");
    Alcotest.(check bool) "join cardinality" true
      (Helpers.contains text "INNERJoin  rows=2");
    Alcotest.(check bool) "timings present" true (Helpers.contains text "ms")
  | _ -> Alcotest.fail "EXPLAIN ANALYZE must return rows"

let test_profile_agrees_with_eval () =
  let cat = listing1_db () in
  let plan = Exec.prepare ~optimize:`Full cat Ds_core.Queries.ss2pl in
  let rows, stats = Profile.run plan in
  let sort rows = List.sort compare (List.map Array.to_list rows) in
  Alcotest.(check bool) "profiled rows = plain rows" true
    (sort rows = sort (Exec.run_plan plan));
  Alcotest.(check int) "root cardinality recorded" (List.length rows)
    stats.Profile.rows

let test_render () =
  let cat = fresh_db () in
  let schema, rs = Exec.query cat "SELECT id, name FROM emp WHERE id = 1" in
  let s = Exec.render schema rs in
  Alcotest.(check bool) "has name" true (Helpers.contains s "ann");
  Alcotest.(check bool) "has header" true (Helpers.contains s "name")

let tests =
  [
    Alcotest.test_case "lexer" `Quick test_lexer;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "parser shapes" `Quick test_parser_shapes;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "basic select" `Quick test_basic_select;
    Alcotest.test_case "null handling" `Quick test_null_handling;
    Alcotest.test_case "joins" `Quick test_joins_sql;
    Alcotest.test_case "exists/in" `Quick test_exists_in;
    Alcotest.test_case "set operations" `Quick test_set_ops_sql;
    Alcotest.test_case "group by" `Quick test_group_by_sql;
    Alcotest.test_case "cte" `Quick test_cte;
    Alcotest.test_case "dml" `Quick test_dml;
    Alcotest.test_case "ddl" `Quick test_ddl;
    Alcotest.test_case "compile errors" `Quick test_compile_errors;
    Alcotest.test_case "listing1 semantics (all levels)" `Quick
      test_listing1_semantics;
    Alcotest.test_case "listing1 optimizer changes plan" `Quick
      test_listing1_optimizer_shrinks_plan;
    Alcotest.test_case "listing1 table-index agreement" `Quick
      test_listing1_table_index_agreement;
    Alcotest.test_case "operator precedence" `Quick test_precedence;
    Alcotest.test_case "between" `Quick test_between;
    Alcotest.test_case "case expressions" `Quick test_case_expressions;
    Alcotest.test_case "ordered index (sql)" `Quick test_ordered_index_sql;
    Alcotest.test_case "prepared parameters" `Quick test_prepared_params;
    Alcotest.test_case "explain" `Quick test_explain;
    Alcotest.test_case "explain analyze" `Quick test_explain_analyze;
    Alcotest.test_case "profile agrees with eval" `Quick test_profile_agrees_with_eval;
    Alcotest.test_case "render" `Quick test_render;
  ]
