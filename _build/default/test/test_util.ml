(* Tests for Ds_util: Vec and Tablefmt. *)

open Ds_util

let test_vec_basic () =
  let v = Vec.create () in
  Alcotest.(check bool) "fresh is empty" true (Vec.is_empty v);
  Vec.push v 1;
  Vec.push v 2;
  Vec.push v 3;
  Alcotest.(check int) "length" 3 (Vec.length v);
  Alcotest.(check int) "get 0" 1 (Vec.get v 0);
  Alcotest.(check int) "last" 3 (Vec.last v);
  Vec.set v 1 9;
  Alcotest.(check (list int)) "to_list" [ 1; 9; 3 ] (Vec.to_list v);
  Alcotest.(check int) "pop" 3 (Vec.pop v);
  Alcotest.(check int) "length after pop" 2 (Vec.length v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1; 2 ] in
  Alcotest.check_raises "get out of range"
    (Invalid_argument "Vec: index out of bounds") (fun () ->
      ignore (Vec.get v 2));
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty")
    (fun () -> ignore (Vec.pop (Vec.create ())))

let test_vec_grow () =
  let v = Vec.create () in
  for i = 0 to 999 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 1000 (Vec.length v);
  Alcotest.(check int) "sum" (999 * 1000 / 2) (Vec.fold_left ( + ) 0 v)

let test_vec_swap_remove () =
  let v = Vec.of_list [ 10; 20; 30; 40 ] in
  let removed = Vec.swap_remove v 1 in
  Alcotest.(check int) "removed" 20 removed;
  Alcotest.(check (list int)) "after" [ 10; 40; 30 ] (Vec.to_list v)

let test_vec_misc () =
  let v = Vec.of_list [ 3; 1; 2 ] in
  Vec.sort Int.compare v;
  Alcotest.(check (list int)) "sort" [ 1; 2; 3 ] (Vec.to_list v);
  let w = Vec.map string_of_int v in
  Alcotest.(check (list string)) "map" [ "1"; "2"; "3" ] (Vec.to_list w);
  let f = Vec.filter (fun x -> x > 1) v in
  Alcotest.(check (list int)) "filter" [ 2; 3 ] (Vec.to_list f);
  Vec.append v f;
  Alcotest.(check (list int)) "append" [ 1; 2; 3; 2; 3 ] (Vec.to_list v);
  Vec.truncate v 2;
  Alcotest.(check (list int)) "truncate" [ 1; 2 ] (Vec.to_list v)

let vec_model =
  QCheck2.Test.make ~name:"Vec.push/to_list agrees with list model" ~count:200
    QCheck2.Gen.(list int)
    (fun xs ->
      let v = Vec.create () in
      List.iter (Vec.push v) xs;
      Vec.to_list v = xs && Vec.length v = List.length xs)

let vec_of_array_roundtrip =
  QCheck2.Test.make ~name:"Vec array roundtrip" ~count:200
    QCheck2.Gen.(array int)
    (fun a -> Vec.to_array (Vec.of_array a) = a)

let test_tablefmt () =
  let t = Tablefmt.create ~aligns:[ Tablefmt.Left; Tablefmt.Right ] [ "a"; "bb" ] in
  Tablefmt.add_row t [ "xx"; "1" ];
  Tablefmt.add_sep t;
  Tablefmt.add_row t [ "y"; "22" ];
  let s = Tablefmt.render t in
  Alcotest.(check bool) "contains header" true
    (Helpers.contains s "| a  | bb |");
  Alcotest.(check bool) "right-aligned" true
    (Helpers.contains s "| xx |  1 |")

let test_tablefmt_arity () =
  let t = Tablefmt.create [ "a" ] in
  Alcotest.check_raises "arity"
    (Invalid_argument "Tablefmt.add_row: arity mismatch") (fun () ->
      Tablefmt.add_row t [ "x"; "y" ])

let tests =
  [
    Alcotest.test_case "vec basic" `Quick test_vec_basic;
    Alcotest.test_case "vec bounds" `Quick test_vec_bounds;
    Alcotest.test_case "vec grow" `Quick test_vec_grow;
    Alcotest.test_case "vec swap_remove" `Quick test_vec_swap_remove;
    Alcotest.test_case "vec sort/map/filter/append/truncate" `Quick test_vec_misc;
    QCheck_alcotest.to_alcotest vec_model;
    QCheck_alcotest.to_alcotest vec_of_array_roundtrip;
    Alcotest.test_case "tablefmt render" `Quick test_tablefmt;
    Alcotest.test_case "tablefmt arity" `Quick test_tablefmt_arity;
  ]
