(* Tests for Ds_datalog. *)

open Ds_datalog
open Ds_relal

let vi i = Value.Int i
let vs s = Value.Str s

let engine_of src = Dl_engine.create (Dl_parser.parse_program src)

let sorted_rows rows = List.sort compare (List.map Array.to_list rows)

let test_parser () =
  let p =
    Dl_parser.parse_program
      {|% comment
edge(1, 2).
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z), X <> Z.
labelled(X, 'hot') :- edge(X, _).|}
  in
  Alcotest.(check int) "rules" 4 (List.length p);
  match List.nth p 2 with
  | { Dl_ast.head = { Dl_ast.pred = "path"; args = [ Dl_ast.Var "X"; Dl_ast.Var "Z" ] }; body } ->
    Alcotest.(check int) "body literals" 3 (List.length body)
  | _ -> Alcotest.fail "rule shape"

let test_parser_errors () =
  let expect src =
    match Dl_parser.parse_program src with
    | exception Dl_parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error: %s" src
  in
  expect "p(X) :- q(X)";
  (* missing period *)
  expect "p(X :- q(X).";
  expect "p(X) :- 'lit.";
  expect "p(X) :- X.";
  (* bare term, no comparison *)
  ()

let test_transitive_closure () =
  let e = engine_of {|path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).|} in
  List.iter
    (fun (a, b) -> Dl_engine.add_fact e "edge" [ vi a; vi b ])
    [ (1, 2); (2, 3); (3, 4) ];
  let paths = sorted_rows (Dl_engine.query e "path") in
  Alcotest.(check int) "path count" 6 (List.length paths);
  Alcotest.(check bool) "1 reaches 4" true
    (List.mem [ vi 1; vi 4 ] paths)

let test_incremental_facts_invalidate () =
  let e = engine_of {|path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).|} in
  Dl_engine.add_fact e "edge" [ vi 1; vi 2 ];
  Alcotest.(check int) "one path" 1 (List.length (Dl_engine.query e "path"));
  Dl_engine.add_fact e "edge" [ vi 2; vi 3 ];
  Alcotest.(check int) "recomputed" 3 (List.length (Dl_engine.query e "path"));
  Dl_engine.clear_facts e;
  Alcotest.(check int) "cleared" 0 (List.length (Dl_engine.query e "path"))

let test_negation_stratified () =
  let e =
    engine_of
      {|reachable(X, Y) :- edge(X, Y).
reachable(X, Z) :- reachable(X, Y), edge(Y, Z).
node(X) :- edge(X, _).
node(Y) :- edge(_, Y).
isolated_from_one(X) :- node(X), not reachable(1, X).|}
  in
  List.iter
    (fun (a, b) -> Dl_engine.add_fact e "edge" [ vi a; vi b ])
    [ (1, 2); (3, 4) ];
  let iso = sorted_rows (Dl_engine.query e "isolated_from_one") in
  Alcotest.(check bool) "3 and 4 unreachable, 1 too (no self edge)" true
    (iso = [ [ vi 1 ]; [ vi 3 ]; [ vi 4 ] ]);
  let strata = Dl_engine.strata e in
  Alcotest.(check int) "two strata" 2 (List.length strata)

let test_not_stratifiable () =
  match engine_of "p(X) :- q(X), not p(X).\nq(1)." with
  | exception Dl_engine.Datalog_error _ -> ()
  | _ -> Alcotest.fail "expected stratification error"

let test_safety_errors () =
  let expect src =
    match engine_of src with
    | exception Dl_engine.Datalog_error _ -> ()
    | _ -> Alcotest.failf "expected safety error: %s" src
  in
  expect "p(X) :- q(Y).";
  (* head var unbound *)
  expect "p(X) :- q(X), not r(Z).";
  (* negated var unbound *)
  expect "p(X) :- q(X), Z > 1.";
  (* compared var unbound *)
  expect "p(_) :- q(X).";
  (* wildcard in head *)
  expect "p(X) :- q(X), not r(_)."
(* wildcard under negation *)

let test_arity_errors () =
  (match engine_of "p(X) :- q(X).\np(X, Y) :- q(X), q(Y)." with
  | exception Dl_engine.Datalog_error _ -> ()
  | _ -> Alcotest.fail "inconsistent arity");
  let e = engine_of "p(X) :- q(X)." in
  match Dl_engine.add_fact e "q" [ vi 1; vi 2 ] with
  | exception Dl_engine.Datalog_error _ -> ()
  | _ -> Alcotest.fail "fact arity"

let test_idb_facts_rejected () =
  let e = engine_of "p(X) :- q(X)." in
  match Dl_engine.add_fact e "p" [ vi 1 ] with
  | exception Dl_engine.Datalog_error _ -> ()
  | _ -> Alcotest.fail "expected rejection of IDB fact"

let test_comparisons_and_strings () =
  let e =
    engine_of
      {|big(X) :- val(X, N), N >= 10.
hot(X) :- tag(X, 'hot').|}
  in
  Dl_engine.add_fact e "val" [ vs "a"; vi 5 ];
  Dl_engine.add_fact e "val" [ vs "b"; vi 15 ];
  Dl_engine.add_fact e "tag" [ vs "b"; vs "hot" ];
  Alcotest.(check bool) "big" true
    (sorted_rows (Dl_engine.query e "big") = [ [ vs "b" ] ]);
  Alcotest.(check bool) "hot" true
    (sorted_rows (Dl_engine.query e "hot") = [ [ vs "b" ] ])

let test_same_generation () =
  (* A classic recursive benchmark program. *)
  let e =
    engine_of
      {|sg(X, Y) :- sibling(X, Y).
sg(X, Y) :- parent(X, XP), sg(XP, YP), parent(Y, YP).|}
  in
  List.iter
    (fun (c, p) -> Dl_engine.add_fact e "parent" [ vs c; vs p ])
    [ ("c1", "b1"); ("c2", "b2"); ("b1", "a"); ("b2", "a") ];
  Dl_engine.add_fact e "sibling" [ vs "b1"; vs "b2" ];
  let sg = sorted_rows (Dl_engine.query e "sg") in
  Alcotest.(check bool) "cousins same generation" true
    (List.mem [ vs "c1"; vs "c2" ] sg)

let semi_naive_matches_reference =
  (* On random small graphs, transitive closure from the engine equals a
     plain OCaml fixpoint. *)
  QCheck2.Test.make ~name:"datalog TC = reference fixpoint" ~count:100
    QCheck2.Gen.(list_size (int_range 0 30) (pair (int_range 0 8) (int_range 0 8)))
    (fun edges ->
      let e = engine_of "path(X, Y) :- edge(X, Y).\npath(X, Z) :- path(X, Y), edge(Y, Z)." in
      List.iter (fun (a, b) -> Dl_engine.add_fact e "edge" [ vi a; vi b ]) edges;
      let got =
        List.sort_uniq compare
          (List.map
             (fun t -> match t with [| Value.Int a; Value.Int b |] -> (a, b) | _ -> (-1, -1))
             (Dl_engine.query e "path"))
      in
      (* reference *)
      let module PS = Set.Make (struct
        type t = int * int

        let compare = compare
      end) in
      let edges_u = List.sort_uniq compare edges in
      let step s =
        PS.fold
          (fun (a, b) acc ->
            List.fold_left
              (fun acc (c, d) -> if b = c then PS.add (a, d) acc else acc)
              acc edges_u)
          s s
      in
      let rec fix s =
        let s' = step s in
        if PS.equal s s' then s else fix s'
      in
      let expect = PS.elements (fix (PS.of_list edges_u)) in
      got = expect)

let test_rule_count_and_pp () =
  let src = Ds_core.Datalog_rules.ss2pl in
  let e = engine_of src in
  Alcotest.(check int) "ss2pl rule count" 11 (Dl_engine.rule_count e);
  let r = Dl_parser.parse_rule "p(X) :- q(X, 'a'), not r(X), X > 1." in
  let printed = Format.asprintf "%a" Dl_ast.pp_rule r in
  Alcotest.(check string) "pretty printing"
    "p(X) :- q(X, 'a'), not r(X), X > 1." printed

let tests =
  [
    Alcotest.test_case "parser" `Quick test_parser;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
    Alcotest.test_case "fact invalidation" `Quick test_incremental_facts_invalidate;
    Alcotest.test_case "stratified negation" `Quick test_negation_stratified;
    Alcotest.test_case "not stratifiable" `Quick test_not_stratifiable;
    Alcotest.test_case "safety errors" `Quick test_safety_errors;
    Alcotest.test_case "arity errors" `Quick test_arity_errors;
    Alcotest.test_case "idb facts rejected" `Quick test_idb_facts_rejected;
    Alcotest.test_case "comparisons and strings" `Quick test_comparisons_and_strings;
    Alcotest.test_case "same generation" `Quick test_same_generation;
    QCheck_alcotest.to_alcotest semi_naive_matches_reference;
    Alcotest.test_case "rule count / pp" `Quick test_rule_count_and_pp;
  ]
