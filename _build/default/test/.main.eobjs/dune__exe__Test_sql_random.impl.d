test/test_sql_random.ml: Array Catalog Char Ds_relal Ds_sim Ds_sql Eval Exec Fun List Printf QCheck2 QCheck_alcotest String Table Value
