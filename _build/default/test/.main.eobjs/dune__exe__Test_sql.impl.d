test/test_sql.ml: Alcotest Array Ast Catalog Compile Ds_core Ds_relal Ds_sql Eval Exec Helpers Int Lexer List Parser Printf Profile Schema String Token Value
