test/test_relal.ml: Alcotest Array Ds_relal Ds_sim Eval List Optimizer QCheck2 QCheck_alcotest Ra Schema Table Value
