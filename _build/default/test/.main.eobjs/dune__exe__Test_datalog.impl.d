test/test_datalog.ml: Alcotest Array Dl_ast Dl_engine Dl_parser Ds_core Ds_datalog Ds_relal Format List QCheck2 QCheck_alcotest Set Value
