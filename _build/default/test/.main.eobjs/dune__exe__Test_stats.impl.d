test/test_stats.ml: Alcotest Counter Ds_stats Float Histogram List QCheck2 QCheck_alcotest Run_average Summary Throughput
