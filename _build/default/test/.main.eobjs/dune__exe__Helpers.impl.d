test/helpers.ml: Ds_model Ds_sim Int List Op Request String
