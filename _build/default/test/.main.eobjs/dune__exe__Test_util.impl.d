test/test_util.ml: Alcotest Ds_util Helpers Int List QCheck2 QCheck_alcotest Tablefmt Vec
