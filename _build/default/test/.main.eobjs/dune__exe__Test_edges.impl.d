test/test_edges.ml: Alcotest Array Ds_core Ds_datalog Ds_relal Ds_server Ds_sim Ds_stats Eval Float Format List Ra Schema String Table Value
