test/test_journal.ml: Alcotest Builtin Ds_core Ds_model Ds_sim Filename Fun Helpers Journal List Op QCheck2 QCheck_alcotest Relations Request Scheduler Sys
