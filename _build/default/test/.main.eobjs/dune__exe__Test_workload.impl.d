test/test_workload.ml: Alcotest Ds_model Ds_sim Ds_workload Filename Float Fun Generator Int List Op Printf QCheck2 QCheck_alcotest Request Sla Spec Sys Trace Txn
