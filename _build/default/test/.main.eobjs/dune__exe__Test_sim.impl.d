test/test_sim.ml: Alcotest Array Dist Ds_sim Engine Event_heap Float Fun Hashtbl Int List Option QCheck2 QCheck_alcotest Rng
