test/test_model.ml: Alcotest Ds_model List Op Option Request Sla Txn
