test/main.mli:
