(* Edge-case sweep across libraries: small behaviours not covered by the
   per-module suites (error paths, printers, boundary values). *)

open Ds_relal

(* --- stats ----------------------------------------------------------- *)

let test_histogram_merge_incompatible () =
  let a = Ds_stats.Histogram.create ~buckets_per_decade:10 () in
  let b = Ds_stats.Histogram.create ~buckets_per_decade:20 () in
  Alcotest.check_raises "shape mismatch"
    (Invalid_argument "Histogram.merge_into: incompatible shapes") (fun () ->
      Ds_stats.Histogram.merge_into ~dst:a b)

let test_throughput_rate () =
  let t = Ds_stats.Throughput.create () in
  Alcotest.(check (float 0.)) "empty rate" 0. (Ds_stats.Throughput.rate t);
  Ds_stats.Throughput.record t 0.;
  Ds_stats.Throughput.record t 10.;
  Alcotest.(check (float 1e-9)) "rate over span" 0.2 (Ds_stats.Throughput.rate t)

let test_summary_single () =
  let s = Ds_stats.Summary.create () in
  Ds_stats.Summary.add s 5.;
  Alcotest.(check (float 0.)) "variance of one sample" 0.
    (Ds_stats.Summary.variance s);
  Alcotest.check_raises "min of empty" (Invalid_argument "Summary.min: empty")
    (fun () -> ignore (Ds_stats.Summary.min (Ds_stats.Summary.create ())))

(* --- sim ------------------------------------------------------------- *)

let test_zipf_validation () =
  Alcotest.(check bool) "theta >= 1 rejected" true
    (try
       ignore (Ds_sim.Dist.Zipf.create ~n:10 ~theta:1.0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "n <= 0 rejected" true
    (try
       ignore (Ds_sim.Dist.Zipf.create ~n:0 ~theta:0.5);
       false
     with Invalid_argument _ -> true)

let test_rng_errors () =
  let r = Ds_sim.Rng.create 1 in
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int: bound <= 0")
    (fun () -> ignore (Ds_sim.Rng.int r 0));
  Alcotest.check_raises "bad range" (Invalid_argument "Rng.range: hi < lo")
    (fun () -> ignore (Ds_sim.Rng.range r 5 4));
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Ds_sim.Rng.pick r [||]))

let test_rng_copy () =
  let a = Ds_sim.Rng.create 9 in
  ignore (Ds_sim.Rng.int63 a);
  let b = Ds_sim.Rng.copy a in
  Alcotest.(check bool) "copy continues identically" true
    (List.init 10 (fun _ -> Ds_sim.Rng.int63 a)
    = List.init 10 (fun _ -> Ds_sim.Rng.int63 b))

(* --- relal ----------------------------------------------------------- *)

let test_value_printing () =
  Alcotest.(check string) "null" "NULL" (Value.to_string Value.Null);
  Alcotest.(check string) "str quoted" "'x'" (Value.to_string (Value.Str "x"));
  Alcotest.(check string) "bool" "TRUE" (Value.to_string (Value.Bool true));
  Alcotest.(check string) "float" "2.5" (Value.to_string (Value.Float 2.5))

let test_expr_pp () =
  let e =
    Ra.And
      ( Ra.Cmp (Ra.Eq, Ra.Col 0, Ra.Const (Value.Int 3)),
        Ra.Not (Ra.Is_null (Ra.Col 1)) )
  in
  Alcotest.(check string) "rendering" "(($0 = 3) AND (NOT ($1 IS NULL)))"
    (Format.asprintf "%a" Ra.pp_expr e)

let test_refers_outer () =
  let inner = Ra.Cmp (Ra.Eq, Ra.Col 0, Ra.Outer (1, 2)) in
  Alcotest.(check bool) "direct" true (Ra.refers_outer ~depth:1 inner);
  (* The same reference inside an Exists belongs to the subquery's own
     enclosing row, not ours. *)
  let t = Table.create ~name:"t" (Schema.of_list [ Schema.column "a" Schema.Tint ]) in
  let wrapped = Ra.Exists (Ra.Filter (inner, Ra.Scan (t, None))) in
  Alcotest.(check bool) "shielded by exists" false
    (Ra.refers_outer ~depth:1 wrapped);
  let deep = Ra.Exists (Ra.Filter (Ra.Cmp (Ra.Eq, Ra.Col 0, Ra.Outer (2, 1)), Ra.Scan (t, None))) in
  Alcotest.(check bool) "depth-2 escapes one exists" true
    (Ra.refers_outer ~depth:1 deep)

let test_aggregate_null_handling () =
  let t =
    Table.create ~name:"t" (Schema.of_list [ Schema.column "v" Schema.Tint ])
  in
  List.iter (Table.insert t) [ [| Value.Int 1 |]; [| Value.Null |]; [| Value.Int 3 |] ];
  let agg fn = Ra.Group { Ra.keys = []; aggs = [ (fn, Schema.column "x" Schema.Tint) ]; input = Ra.Scan (t, None) } in
  let one plan = (List.hd (Eval.run plan)).(0) in
  Alcotest.(check bool) "count(*) counts nulls" true
    (one (agg Ra.Count_star) = Value.Int 3);
  Alcotest.(check bool) "count(v) skips nulls" true
    (one (agg (Ra.Count (Ra.Col 0))) = Value.Int 2);
  Alcotest.(check bool) "sum skips nulls" true
    (one (agg (Ra.Sum (Ra.Col 0))) = Value.Int 4);
  Alcotest.(check bool) "min skips nulls" true
    (one (agg (Ra.Min (Ra.Col 0))) = Value.Int 1);
  Alcotest.(check bool) "avg of remaining" true
    (one (agg (Ra.Avg (Ra.Col 0))) = Value.Float 2.)

let test_schema_pp () =
  let s = Ds_core.Relations.schema ~extended:false in
  Alcotest.(check string) "schema rendering"
    "(id INT, ta INT, intrata INT, operation TEXT, object INT)"
    (Format.asprintf "%a" Schema.pp s)

(* --- datalog ---------------------------------------------------------- *)

let test_datalog_wildcards_distinct () =
  (* Each wildcard is a fresh variable: p(_, _) matches (1, 2). *)
  let e =
    Ds_datalog.Dl_engine.create
      (Ds_datalog.Dl_parser.parse_program "hit(X) :- src(X, _, _).")
  in
  Ds_datalog.Dl_engine.add_fact e "src"
    [ Value.Int 7; Value.Int 1; Value.Int 2 ];
  Alcotest.(check int) "wildcards independent" 1
    (List.length (Ds_datalog.Dl_engine.query e "hit"))

let test_datalog_clear_one_pred () =
  let e =
    Ds_datalog.Dl_engine.create
      (Ds_datalog.Dl_parser.parse_program "out(X) :- a(X).\nout(X) :- b(X).")
  in
  Ds_datalog.Dl_engine.add_fact e "a" [ Value.Int 1 ];
  Ds_datalog.Dl_engine.add_fact e "b" [ Value.Int 2 ];
  Alcotest.(check int) "both" 2 (List.length (Ds_datalog.Dl_engine.query e "out"));
  Ds_datalog.Dl_engine.clear_facts ~pred:"a" e;
  Alcotest.(check int) "one left" 1
    (List.length (Ds_datalog.Dl_engine.query e "out"))

(* --- server ------------------------------------------------------------ *)

let test_cost_model () =
  let c = Ds_server.Cost_model.default in
  Alcotest.(check bool) "locking costs more" true
    (Ds_server.Cost_model.stmt_cost c ~locking:true
    > Ds_server.Cost_model.stmt_cost c ~locking:false)

let test_replay_empty () =
  Alcotest.(check (float 1e-12)) "empty schedule = one commit"
    Ds_server.Cost_model.default.Ds_server.Cost_model.commit_service
    (Ds_server.Replay.single_user_time Ds_server.Cost_model.default [])

let test_lock_blocked_txns () =
  let lm = Ds_server.Lock_manager.create () in
  ignore (Ds_server.Lock_manager.acquire lm ~txn:1 ~obj:1 ~mode:Ds_server.Lock_manager.X);
  ignore (Ds_server.Lock_manager.acquire lm ~txn:2 ~obj:1 ~mode:Ds_server.Lock_manager.S);
  Alcotest.(check (list int)) "blocked set" [ 2 ]
    (Ds_server.Lock_manager.blocked_txns lm);
  Alcotest.(check int) "total held" 1 (Ds_server.Lock_manager.total_held lm)

(* --- core -------------------------------------------------------------- *)

let test_trigger_to_string () =
  Alcotest.(check string) "time" "time(10ms)"
    (Ds_core.Trigger.to_string (Ds_core.Trigger.Time_lapse 0.01));
  Alcotest.(check string) "fill" "fill(25)"
    (Ds_core.Trigger.to_string (Ds_core.Trigger.Fill_level 25));
  Alcotest.(check string) "hybrid" "hybrid(5ms,9)"
    (Ds_core.Trigger.to_string (Ds_core.Trigger.Hybrid (0.005, 9)))

let test_protocol_registry () =
  Alcotest.(check bool) "find known" true
    (Ds_core.Builtin.find "ss2pl-datalog" <> None);
  Alcotest.(check bool) "find unknown" true (Ds_core.Builtin.find "nope" = None);
  (* Every registered protocol has a distinct name. *)
  let names =
    List.map (fun (p : Ds_core.Protocol.t) -> p.Ds_core.Protocol.name)
      Ds_core.Builtin.all
  in
  Alcotest.(check int) "names unique"
    (List.length names)
    (List.length (List.sort_uniq String.compare names))

let test_spec_loc () =
  Alcotest.(check int) "counts non-empty lines" 2
    (Ds_core.Queries.spec_loc "a\n\n  \nb");
  Alcotest.(check int) "empty" 0 (Ds_core.Queries.spec_loc "\n  \n")

let test_amortized_zero_qualified () =
  let m =
    {
      Ds_core.Overhead_probe.n_clients = 1;
      pending = 1;
      history = 0;
      qualified = 0;
      cycle_time = 0.001;
      query_time = 0.001;
    }
  in
  Alcotest.(check bool) "infinite when nothing qualifies" true
    (Float.is_integer
       (Ds_core.Overhead_probe.amortized_overhead m ~total_stmts:10)
    = false
    || Ds_core.Overhead_probe.amortized_overhead m ~total_stmts:10 = infinity)

let tests =
  [
    Alcotest.test_case "histogram merge incompatible" `Quick
      test_histogram_merge_incompatible;
    Alcotest.test_case "throughput rate" `Quick test_throughput_rate;
    Alcotest.test_case "summary single" `Quick test_summary_single;
    Alcotest.test_case "zipf validation" `Quick test_zipf_validation;
    Alcotest.test_case "rng errors" `Quick test_rng_errors;
    Alcotest.test_case "rng copy" `Quick test_rng_copy;
    Alcotest.test_case "value printing" `Quick test_value_printing;
    Alcotest.test_case "expr pretty printing" `Quick test_expr_pp;
    Alcotest.test_case "refers_outer depths" `Quick test_refers_outer;
    Alcotest.test_case "aggregate null handling" `Quick test_aggregate_null_handling;
    Alcotest.test_case "schema pretty printing" `Quick test_schema_pp;
    Alcotest.test_case "datalog wildcards" `Quick test_datalog_wildcards_distinct;
    Alcotest.test_case "datalog clear one pred" `Quick test_datalog_clear_one_pred;
    Alcotest.test_case "cost model" `Quick test_cost_model;
    Alcotest.test_case "replay empty" `Quick test_replay_empty;
    Alcotest.test_case "lock blocked txns" `Quick test_lock_blocked_txns;
    Alcotest.test_case "trigger to_string" `Quick test_trigger_to_string;
    Alcotest.test_case "protocol registry" `Quick test_protocol_registry;
    Alcotest.test_case "spec_loc" `Quick test_spec_loc;
    Alcotest.test_case "amortized zero qualified" `Quick
      test_amortized_zero_qualified;
  ]
