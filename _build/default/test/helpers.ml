(* Shared helpers for the test suite. *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  if n = 0 then true
  else begin
    let rec loop i =
      if i + n > h then false
      else if String.sub haystack i n = needle then true
      else loop (i + 1)
    in
    loop 0
  end

(* Deterministic request-batch generator used by several suites: random
   pending/history request sets with controlled conflicts. *)
open Ds_model

let random_requests rng ~n_txns ~ops_per_txn ~n_objects =
  let id = ref 0 in
  List.concat_map
    (fun ta ->
      List.init ops_per_txn (fun i ->
          incr id;
          let op =
            if i = ops_per_txn - 1 && Ds_sim.Rng.float rng < 0.3 then
              if Ds_sim.Rng.bool rng then Op.Commit else Op.Abort
            else if Ds_sim.Rng.bool rng then Op.Read
            else Op.Write
          in
          match op with
          | Op.Commit | Op.Abort ->
            Request.make ~id:!id ~ta ~intrata:(i + 1) ~op ()
          | Op.Read | Op.Write ->
            Request.make ~id:!id ~ta ~intrata:(i + 1) ~op
              ~obj:(Ds_sim.Rng.int rng n_objects) ()))
    (List.init n_txns (fun i -> i + 1))

(* Sorted (ta, intrata) pairs for set comparison. *)
let sorted_keys keys =
  List.sort_uniq
    (fun (a1, a2) (b1, b2) ->
      match Int.compare a1 b1 with 0 -> Int.compare a2 b2 | c -> c)
    keys
