(* Tests for Ds_sim: RNG, distributions, event heap, engine. *)

open Ds_sim

let test_rng_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  let xs = List.init 100 (fun _ -> Rng.int63 a) in
  let ys = List.init 100 (fun _ -> Rng.int63 b) in
  Alcotest.(check bool) "same seed, same stream" true (xs = ys);
  let c = Rng.create 124 in
  let zs = List.init 100 (fun _ -> Rng.int63 c) in
  Alcotest.(check bool) "different seed differs" true (xs <> zs)

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let s1 = Rng.split a in
  let s2 = Rng.split a in
  let xs = List.init 50 (fun _ -> Rng.int63 s1) in
  let ys = List.init 50 (fun _ -> Rng.int63 s2) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let rng_int_bounds =
  QCheck2.Test.make ~name:"Rng.int within bounds" ~count:500
    QCheck2.Gen.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Rng.int r bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let rng_float_unit =
  QCheck2.Test.make ~name:"Rng.float in [0,1)" ~count:200 QCheck2.Gen.small_int
    (fun seed ->
      let r = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let f = Rng.float r in
        if f < 0. || f >= 1. then ok := false
      done;
      !ok)

let test_rng_uniformity () =
  (* Coarse chi-square-free check: each of 10 cells gets 5-20% of draws. *)
  let r = Rng.create 99 in
  let cells = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 10 in
    cells.(v) <- cells.(v) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "cell within bounds" true (c > 500 && c < 2000))
    cells

let test_shuffle_permutes () =
  let r = Rng.create 3 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check bool) "is permutation" true (sorted = Array.init 100 Fun.id);
  Alcotest.(check bool) "actually moved" true (a <> Array.init 100 Fun.id)

let test_dist_means () =
  let r = Rng.create 11 in
  let sample_mean d n =
    let acc = ref 0. in
    for _ = 1 to n do
      acc := !acc +. Dist.sample d r
    done;
    !acc /. float_of_int n
  in
  Alcotest.(check (float 1e-12)) "constant" 5. (sample_mean (Dist.Constant 5.) 10);
  let m = sample_mean (Dist.Exponential 2.) 20_000 in
  Alcotest.(check bool) "exponential mean" true (Float.abs (m -. 2.) < 0.1);
  let u = sample_mean (Dist.Uniform (1., 3.)) 20_000 in
  Alcotest.(check bool) "uniform mean" true (Float.abs (u -. 2.) < 0.05);
  let n = sample_mean (Dist.Normal (10., 1.)) 20_000 in
  Alcotest.(check bool) "normal mean" true (Float.abs (n -. 10.) < 0.1)

let test_zipf () =
  let r = Rng.create 17 in
  let g = Dist.Zipf.create ~n:1000 ~theta:0.9 in
  let counts = Hashtbl.create 64 in
  for _ = 1 to 20_000 do
    let v = Dist.Zipf.sample g r in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 1000);
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let c0 = Option.value ~default:0 (Hashtbl.find_opt counts 0) in
  let c500 = Option.value ~default:0 (Hashtbl.find_opt counts 500) in
  Alcotest.(check bool) "hot key dominates" true (c0 > 50 * max 1 c500);
  (* theta = 0 degenerates to uniform *)
  let u = Dist.Zipf.create ~n:10 ~theta:0. in
  let seen = Array.make 10 0 in
  for _ = 1 to 1000 do
    let v = Dist.Zipf.sample u r in
    seen.(v) <- 1 + seen.(v)
  done;
  Alcotest.(check bool) "uniform hits all" true (Array.for_all (fun c -> c > 0) seen)

let test_heap_ordering () =
  let h = Event_heap.create () in
  let order = [ 5.; 1.; 3.; 2.; 4. ] in
  List.iter (fun t -> ignore (Event_heap.push h ~time:t t)) order;
  let popped = ref [] in
  let rec drain () =
    match Event_heap.pop h with
    | Some (_, v) ->
      popped := v :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (float 0.))) "sorted" [ 1.; 2.; 3.; 4.; 5. ]
    (List.rev !popped)

let test_heap_fifo_ties () =
  let h = Event_heap.create () in
  ignore (Event_heap.push h ~time:1. "a");
  ignore (Event_heap.push h ~time:1. "b");
  ignore (Event_heap.push h ~time:1. "c");
  let next () = snd (Option.get (Event_heap.pop h)) in
  Alcotest.(check string) "fifo 1" "a" (next ());
  Alcotest.(check string) "fifo 2" "b" (next ());
  Alcotest.(check string) "fifo 3" "c" (next ())

let test_heap_cancel () =
  let h = Event_heap.create () in
  let _t1 = Event_heap.push h ~time:1. "a" in
  let t2 = Event_heap.push h ~time:2. "b" in
  let _t3 = Event_heap.push h ~time:3. "c" in
  Event_heap.cancel t2;
  Alcotest.(check int) "size after cancel" 2 (Event_heap.size h);
  Alcotest.(check (option (float 0.))) "peek" (Some 1.) (Event_heap.peek_time h);
  let vs = ref [] in
  let rec drain () =
    match Event_heap.pop h with
    | Some (_, v) ->
      vs := v :: !vs;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "cancelled skipped" [ "a"; "c" ] (List.rev !vs)

let heap_sorted_prop =
  QCheck2.Test.make ~name:"Event_heap pops in time order" ~count:200
    QCheck2.Gen.(list (float_bound_inclusive 1000.))
    (fun ts ->
      let h = Event_heap.create () in
      List.iter (fun t -> ignore (Event_heap.push h ~time:(Float.abs t) ())) ts;
      let rec drain last =
        match Event_heap.pop h with
        | None -> true
        | Some (t, ()) -> t >= last && drain t
      in
      drain neg_infinity)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~after:2. (fun () -> log := "b" :: !log));
  ignore (Engine.schedule e ~after:1. (fun () -> log := "a" :: !log));
  ignore
    (Engine.schedule e ~after:1. (fun () ->
         (* events scheduled during execution run in order *)
         ignore (Engine.schedule e ~after:0. (fun () -> log := "a2" :: !log))));
  Engine.run e;
  Alcotest.(check (list string)) "order" [ "a"; "a2"; "b" ] (List.rev !log);
  Alcotest.(check (float 0.)) "clock at end" 2. (Engine.now e)

let test_engine_run_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule e ~after:1. (fun () -> incr fired));
  ignore (Engine.schedule e ~after:5. (fun () -> incr fired));
  Engine.run_until e ~until:3.;
  Alcotest.(check int) "only first fired" 1 !fired;
  Alcotest.(check (float 0.)) "clock clamped" 3. (Engine.now e);
  Alcotest.(check int) "one pending" 1 (Engine.pending e)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let tok = Engine.schedule e ~after:1. (fun () -> fired := true) in
  Engine.cancel tok;
  Engine.run e;
  Alcotest.(check bool) "cancelled did not fire" false !fired

let test_engine_errors () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      ignore (Engine.schedule e ~after:(-1.) (fun () -> ())));
  ignore (Engine.schedule e ~after:1. (fun () -> ()));
  Engine.run e;
  Alcotest.check_raises "past schedule"
    (Invalid_argument "Engine.schedule_at: time in the past") (fun () ->
      ignore (Engine.schedule_at e ~time:0.5 (fun () -> ())))

let tests =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    QCheck_alcotest.to_alcotest rng_int_bounds;
    QCheck_alcotest.to_alcotest rng_float_unit;
    Alcotest.test_case "rng uniformity" `Quick test_rng_uniformity;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
    Alcotest.test_case "distribution means" `Slow test_dist_means;
    Alcotest.test_case "zipf" `Quick test_zipf;
    Alcotest.test_case "heap ordering" `Quick test_heap_ordering;
    Alcotest.test_case "heap fifo ties" `Quick test_heap_fifo_ties;
    Alcotest.test_case "heap cancel" `Quick test_heap_cancel;
    QCheck_alcotest.to_alcotest heap_sorted_prop;
    Alcotest.test_case "engine ordering" `Quick test_engine_ordering;
    Alcotest.test_case "engine run_until" `Quick test_engine_run_until;
    Alcotest.test_case "engine cancel" `Quick test_engine_cancel;
    Alcotest.test_case "engine errors" `Quick test_engine_errors;
  ]
