(* Whole-pipeline property tests: random SQL queries over random data must
   (a) produce identical results at every optimizer level and with/without
   table-index probing, and (b) never crash the engine. The generator emits
   query *text*, so the lexer, parser, binder, optimizer and evaluator are
   all on the path. *)

open Ds_sql
open Ds_relal

let columns = [ "a"; "b"; "c" ]

(* Random database: two three-column tables with small value domains (so
   joins and filters actually select) and some NULLs. *)
let build_db rng =
  let cat = Catalog.create () in
  let mk name rows =
    ignore
      (Exec.exec cat
         (Printf.sprintf "CREATE TABLE %s (a INT, b INT, c TEXT)" name));
    let t = Catalog.find cat name in
    for _ = 1 to rows do
      let cell () =
        if Ds_sim.Rng.int rng 6 = 0 then Value.Null
        else Value.Int (Ds_sim.Rng.int rng 4)
      in
      let s () =
        if Ds_sim.Rng.int rng 6 = 0 then Value.Null
        else Value.Str (String.make 1 (Char.chr (Char.code 'p' + Ds_sim.Rng.int rng 3)))
      in
      Table.insert t [| cell (); cell (); s () |]
    done;
    (* Declare indexes so both probe paths (hash join, range scan) get
       exercised. *)
    Table.create_index t [ 0 ];
    Table.create_index t [ 1 ];
    Table.create_ordered_index t 0;
    Table.create_ordered_index t 1
  in
  mk "s" (Ds_sim.Rng.int rng 8);
  mk "t" (1 + Ds_sim.Rng.int rng 8);
  cat

let rand_const rng =
  match Ds_sim.Rng.int rng 5 with
  | 0 -> "NULL"
  | 1 -> Printf.sprintf "'%c'" (Char.chr (Char.code 'p' + Ds_sim.Rng.int rng 3))
  | _ -> string_of_int (Ds_sim.Rng.int rng 4)

let rand_ref rng aliases =
  let alias = Ds_sim.Rng.pick rng (Array.of_list aliases) in
  let col = Ds_sim.Rng.pick rng (Array.of_list columns) in
  alias ^ "." ^ col

let rec rand_pred rng aliases depth =
  if depth = 0 || Ds_sim.Rng.int rng 3 = 0 then begin
    match Ds_sim.Rng.int rng 6 with
    | 0 -> Printf.sprintf "%s IS NULL" (rand_ref rng aliases)
    | 1 -> Printf.sprintf "%s IS NOT NULL" (rand_ref rng aliases)
    | 2 ->
      Printf.sprintf "%s IN (%s, %s)" (rand_ref rng aliases) (rand_const rng)
        (rand_const rng)
    | 3 ->
      Printf.sprintf "%s %s %s" (rand_ref rng aliases)
        (Ds_sim.Rng.pick rng [| "="; "<>"; "<"; "<="; ">"; ">=" |])
        (rand_ref rng aliases)
    | _ ->
      Printf.sprintf "%s %s %s" (rand_ref rng aliases)
        (Ds_sim.Rng.pick rng [| "="; "<>"; "<" |])
        (rand_const rng)
  end
  else begin
    match Ds_sim.Rng.int rng 4 with
    | 0 ->
      Printf.sprintf "(%s AND %s)"
        (rand_pred rng aliases (depth - 1))
        (rand_pred rng aliases (depth - 1))
    | 1 ->
      Printf.sprintf "(%s OR %s)"
        (rand_pred rng aliases (depth - 1))
        (rand_pred rng aliases (depth - 1))
    | 2 -> Printf.sprintf "(NOT %s)" (rand_pred rng aliases (depth - 1))
    | _ ->
      (* Correlated (NOT) EXISTS: exercises decorrelation. *)
      let neg = if Ds_sim.Rng.bool rng then "NOT " else "" in
      Printf.sprintf "%sEXISTS (SELECT * FROM t sub WHERE sub.a = %s%s)" neg
        (rand_ref rng aliases)
        (if Ds_sim.Rng.bool rng then
           Printf.sprintf " AND sub.b %s %s"
             (Ds_sim.Rng.pick rng [| "="; "<>" |])
             (rand_const rng)
         else "")
  end

let rand_query rng =
  match Ds_sim.Rng.int rng 4 with
  | 0 ->
    (* single-table select with order/limit *)
    Printf.sprintf "SELECT * FROM s x WHERE %s ORDER BY 1, 2, 3 LIMIT %d"
      (rand_pred rng [ "x" ] 2)
      (1 + Ds_sim.Rng.int rng 10)
  | 1 ->
    (* join *)
    Printf.sprintf
      "SELECT x.a, y.b FROM s x, t y WHERE x.%s = y.%s AND %s ORDER BY 1, 2"
      (Ds_sim.Rng.pick rng [| "a"; "b" |])
      (Ds_sim.Rng.pick rng [| "a"; "b" |])
      (rand_pred rng [ "x"; "y" ] 1)
  | 2 ->
    (* aggregate *)
    Printf.sprintf
      "SELECT x.a, COUNT(*) n, SUM(x.b) s2 FROM s x WHERE %s GROUP BY x.a \
       ORDER BY 1, 2, 3"
      (rand_pred rng [ "x" ] 1)
  | _ ->
    (* set operation *)
    Printf.sprintf
      "(SELECT a, b FROM s WHERE %s) %s (SELECT a, b FROM t WHERE %s) ORDER \
       BY 1, 2"
      (rand_pred rng [ "s" ] 1)
      (Ds_sim.Rng.pick rng [| "UNION"; "UNION ALL"; "EXCEPT"; "INTERSECT" |])
      (rand_pred rng [ "t" ] 1)

let normalize rows = List.map Array.to_list rows

let pipeline_equivalence =
  QCheck2.Test.make ~name:"random SQL: all optimizer levels and index modes agree"
    ~count:250 QCheck2.Gen.int (fun seed ->
      let rng = Ds_sim.Rng.create seed in
      let cat = build_db rng in
      let sql = rand_query rng in
      let run level indexes =
        Eval.use_table_indexes := indexes;
        Fun.protect
          ~finally:(fun () -> Eval.use_table_indexes := true)
          (fun () ->
            let _, rows = Exec.query ~optimize:level cat sql in
            normalize rows)
      in
      let reference = run `None true in
      let ok =
        List.for_all
          (fun (level, indexes) -> run level indexes = reference)
          [ (`Basic, true); (`Full, true); (`Full, false) ]
      in
      if not ok then
        QCheck2.Test.fail_reportf "optimizer levels disagree on:@.%s" sql
      else true)

let tests = [ QCheck_alcotest.to_alcotest pipeline_equivalence ]
