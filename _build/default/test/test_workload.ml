(* Tests for Ds_workload. *)

open Ds_model
open Ds_workload

let gen_of ?(spec = Spec.paper_default) seed =
  Generator.create spec (Ds_sim.Rng.create seed)

let test_paper_shape () =
  let g = gen_of 1 in
  let t = Generator.next_txn g ~ta:5 in
  Alcotest.(check int) "41 requests (40 stmts + commit)" 41 (Txn.length t);
  let reads, writes =
    List.partition
      (fun (r : Request.t) -> Op.equal r.Request.op Op.Read)
      (Txn.data_requests t)
  in
  Alcotest.(check int) "20 selects" 20 (List.length reads);
  Alcotest.(check int) "20 updates" 20 (List.length writes);
  Alcotest.(check bool) "commits" true (Txn.commits t);
  Alcotest.(check int) "ta" 5 t.Txn.ta

let test_distinct_objects () =
  let g = gen_of 2 in
  for ta = 1 to 50 do
    let t = Generator.next_txn g ~ta in
    let objs =
      List.filter_map (fun (r : Request.t) -> r.Request.obj) t.Txn.requests
    in
    let uniq = List.sort_uniq Int.compare objs in
    Alcotest.(check int) "objects distinct within txn" (List.length objs)
      (List.length uniq);
    List.iter
      (fun o ->
        Alcotest.(check bool) "in range" true (o >= 0 && o < 100_000))
      objs
  done

let test_determinism () =
  let a = Generator.txns (gen_of 3) ~first_ta:1 5 in
  let b = Generator.txns (gen_of 3) ~first_ta:1 5 in
  Alcotest.(check bool) "same seed, same workload" true
    (List.for_all2
       (fun (x : Txn.t) (y : Txn.t) ->
         List.for_all2 Request.equal x.Txn.requests y.Txn.requests)
       a b)

let test_order_modes () =
  let spec = { Spec.paper_default with Spec.order = Spec.Reads_first } in
  let t = Generator.next_txn (gen_of 4 ~spec) ~ta:1 in
  let kinds = List.map (fun (r : Request.t) -> r.Request.op) (Txn.data_requests t) in
  let first20 = List.filteri (fun i _ -> i < 20) kinds in
  Alcotest.(check bool) "reads first" true
    (List.for_all (Op.equal Op.Read) first20);
  let spec = { Spec.paper_default with Spec.order = Spec.Interleaved } in
  let t = Generator.next_txn (gen_of 4 ~spec) ~ta:1 in
  (match Txn.data_requests t with
  | a :: b :: _ ->
    Alcotest.(check bool) "alternates" true
      (Op.equal a.Request.op Op.Read && Op.equal b.Request.op Op.Write)
  | _ -> Alcotest.fail "too short")

let test_abort_fraction () =
  let spec = { Spec.small with Spec.abort_fraction = 1.0 } in
  let t = Generator.next_txn (gen_of 5 ~spec) ~ta:1 in
  Alcotest.(check bool) "aborts" true (not (Txn.commits t))

let test_sla_mix () =
  let spec =
    { Spec.small with Spec.sla_mix = [ (Sla.premium, 1.); (Sla.free, 1.) ] }
  in
  let g = gen_of 6 ~spec in
  let tiers =
    List.init 200 (fun i ->
        (Generator.next_txn g ~ta:(i + 1)).Txn.sla.Sla.tier)
  in
  let premium = List.length (List.filter (fun t -> t = Sla.Premium) tiers) in
  Alcotest.(check bool) "roughly balanced" true (premium > 60 && premium < 140)

let test_hotspot () =
  let spec = Spec.contended in
  let g = gen_of 7 ~spec in
  let hits = ref 0 and total = ref 0 in
  for ta = 1 to 50 do
    let t = Generator.next_txn g ~ta in
    List.iter
      (fun (r : Request.t) ->
        match r.Request.obj with
        | Some o ->
          incr total;
          if o < 100 then incr hits
        | None -> ())
      t.Txn.requests
  done;
  let frac = float_of_int !hits /. float_of_int !total in
  Alcotest.(check bool) "hot fraction near 0.75" true (frac > 0.6 && frac < 0.9)

let test_interleave () =
  let t1 = Txn.make ~ta:1 [ (Op.Read, Some 1); (Op.Commit, None) ] in
  let t2 = Txn.make ~ta:2 [ (Op.Read, Some 2); (Op.Read, Some 3); (Op.Commit, None) ] in
  let stream = Generator.interleave [ t1; t2 ] in
  let tas = List.map (fun (r : Request.t) -> r.Request.ta) stream in
  Alcotest.(check (list int)) "round robin" [ 1; 2; 1; 2; 2 ] tas

let test_validate () =
  let bad = { Spec.paper_default with Spec.n_objects = 10 } in
  (match Spec.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "distinct objects must not fit");
  (match Spec.validate { Spec.small with Spec.abort_fraction = 1.5 } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bad abort fraction");
  match Spec.validate { Spec.small with Spec.sla_mix = [] } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "empty sla mix"

let test_read_only_fraction () =
  let spec = { Spec.small with Spec.read_only_fraction = 0.5 } in
  let g = gen_of 11 ~spec in
  let read_only = ref 0 and total = 200 in
  for ta = 1 to total do
    let t = Generator.next_txn g ~ta in
    Alcotest.(check int) "same statement count" 7 (Txn.length t);
    if Txn.write_set t = [] then incr read_only
  done;
  Alcotest.(check bool)
    (Printf.sprintf "about half read-only (%d/200)" !read_only)
    true
    (!read_only > 60 && !read_only < 140)

let test_trace_roundtrip () =
  let g = gen_of 9 ~spec:Spec.small in
  let stream = Generator.interleave (Generator.txns g ~first_ta:1 5) in
  let path = Filename.temp_file "ds_trace" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save path stream;
      let loaded = Trace.load path in
      Alcotest.(check int) "count" (List.length stream) (List.length loaded);
      List.iter2
        (fun (a : Request.t) (b : Request.t) ->
          Alcotest.(check bool) "request preserved" true
            (Request.key a = Request.key b
            && Op.equal a.Request.op b.Request.op
            && a.Request.obj = b.Request.obj
            && a.Request.sla.Sla.tier = b.Request.sla.Sla.tier))
        stream loaded)

let test_trace_line_roundtrip () =
  let r =
    Request.make ~sla:Sla.premium ~arrival:1.25 ~id:7 ~ta:3 ~intrata:2
      ~op:Op.Write ~obj:99 ()
  in
  let r' = Trace.request_of_line ~lineno:2 (Trace.line_of_request r) in
  Alcotest.(check bool) "roundtrip" true
    (Request.key r = Request.key r'
    && r'.Request.obj = Some 99
    && r'.Request.sla.Sla.tier = Sla.Premium
    && Float.abs (r'.Request.arrival -. 1.25) < 1e-6);
  let t = Request.terminal 3 5 Op.Commit in
  let t' = Trace.request_of_line ~lineno:2 (Trace.line_of_request t) in
  Alcotest.(check bool) "terminal has no object" true (t'.Request.obj = None)

let test_trace_malformed () =
  let expect line =
    match Trace.request_of_line ~lineno:3 line with
    | exception Trace.Malformed (_, 3) -> ()
    | _ -> Alcotest.failf "expected Malformed for %S" line
  in
  expect "1,2,3";
  expect "x,1,1,r,5,standard,0.0";
  expect "1,1,1,z,5,standard,0.0";
  expect "1,1,1,r,,standard,0.0";
  (* data op without object *)
  expect "1,1,1,r,5,standard,xyz"

let txn_ids_unique =
  QCheck2.Test.make ~name:"request ids unique within txn" ~count:100
    QCheck2.Gen.small_int (fun seed ->
      let t = Generator.next_txn (gen_of seed ~spec:Spec.small) ~ta:3 in
      let ids = List.map (fun (r : Request.t) -> r.Request.id) t.Txn.requests in
      List.length (List.sort_uniq Int.compare ids) = List.length ids)

let tests =
  [
    Alcotest.test_case "paper shape" `Quick test_paper_shape;
    Alcotest.test_case "distinct objects" `Quick test_distinct_objects;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "order modes" `Quick test_order_modes;
    Alcotest.test_case "abort fraction" `Quick test_abort_fraction;
    Alcotest.test_case "sla mix" `Quick test_sla_mix;
    Alcotest.test_case "hotspot access" `Quick test_hotspot;
    Alcotest.test_case "interleave" `Quick test_interleave;
    Alcotest.test_case "spec validation" `Quick test_validate;
    Alcotest.test_case "read-only fraction" `Quick test_read_only_fraction;
    Alcotest.test_case "trace roundtrip" `Quick test_trace_roundtrip;
    Alcotest.test_case "trace line roundtrip" `Quick test_trace_line_roundtrip;
    Alcotest.test_case "trace malformed" `Quick test_trace_malformed;
    QCheck_alcotest.to_alcotest txn_ids_unique;
  ]
