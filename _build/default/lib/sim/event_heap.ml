type token = { mutable live : bool; cancelled_count : int ref }

type 'a entry = { time : float; seq : int; payload : 'a; tok : token }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  mutable seq : int;
  cancelled : int ref;
}

let create () = { data = [||]; len = 0; seq = 0; cancelled = ref 0 }

let size h = h.len - !(h.cancelled)

let is_empty h = size h = 0

let lt a b = a.time < b.time || (Float.equal a.time b.time && a.seq < b.seq)

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt h.data.(i) h.data.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && lt h.data.(l) h.data.(!smallest) then smallest := l;
  if r < h.len && lt h.data.(r) h.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h ~time payload =
  let tok = { live = true; cancelled_count = h.cancelled } in
  let entry = { time; seq = h.seq; payload; tok } in
  h.seq <- h.seq + 1;
  if h.len = Array.length h.data then begin
    let cap = max 16 (2 * h.len) in
    let data = Array.make cap entry in
    Array.blit h.data 0 data 0 h.len;
    h.data <- data
  end;
  h.data.(h.len) <- entry;
  h.len <- h.len + 1;
  sift_up h (h.len - 1);
  tok

let cancel tok =
  if tok.live then begin
    tok.live <- false;
    incr tok.cancelled_count
  end

let pop_raw h =
  if h.len = 0 then None
  else begin
    let top = h.data.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.data.(0) <- h.data.(h.len);
      sift_down h 0
    end;
    Some top
  end

let rec pop h =
  match pop_raw h with
  | None -> None
  | Some e ->
    if e.tok.live then Some (e.time, e.payload)
    else begin
      decr h.cancelled;
      pop h
    end

let rec peek_time h =
  if h.len = 0 then None
  else
    let top = h.data.(0) in
    if top.tok.live then Some top.time
    else begin
      (* Drop the dead head so peek stays cheap. *)
      ignore (pop_raw h);
      decr h.cancelled;
      peek_time h
    end
