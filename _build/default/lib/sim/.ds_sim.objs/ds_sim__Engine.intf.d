lib/sim/engine.mli: Event_heap
