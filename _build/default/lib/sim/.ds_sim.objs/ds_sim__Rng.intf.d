lib/sim/rng.mli:
