(** Random distributions over a {!Rng.t} stream. *)

type t =
  | Constant of float
  | Uniform of float * float  (** inclusive lo, exclusive hi *)
  | Exponential of float  (** mean *)
  | Normal of float * float  (** mean, stddev; truncated at 0 *)

val sample : t -> Rng.t -> float
val mean : t -> float
val pp : Format.formatter -> t -> unit

(** Zipf-distributed integers over [0, n): skew [theta] in (0, 1) typical;
    [theta = 0.] degenerates to uniform. Uses the standard rejection-free
    inverse-harmonic approximation with precomputed normalization. *)
module Zipf : sig
  type gen

  val create : n:int -> theta:float -> gen
  val sample : gen -> Rng.t -> int
end
