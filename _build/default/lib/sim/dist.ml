type t =
  | Constant of float
  | Uniform of float * float
  | Exponential of float
  | Normal of float * float

let sample d rng =
  match d with
  | Constant c -> c
  | Uniform (lo, hi) -> lo +. (Rng.float rng *. (hi -. lo))
  | Exponential mean ->
    let u = Rng.float rng in
    (* Guard against log 0. *)
    let u = if u <= 0. then epsilon_float else u in
    -.mean *. log u
  | Normal (mu, sigma) ->
    (* Box–Muller; truncated at 0 because all durations are non-negative. *)
    let u1 = Float.max epsilon_float (Rng.float rng) in
    let u2 = Rng.float rng in
    let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
    Float.max 0. (mu +. (sigma *. z))

let mean = function
  | Constant c -> c
  | Uniform (lo, hi) -> (lo +. hi) /. 2.
  | Exponential m -> m
  | Normal (mu, _) -> mu

let pp ppf = function
  | Constant c -> Format.fprintf ppf "const(%g)" c
  | Uniform (lo, hi) -> Format.fprintf ppf "uniform(%g,%g)" lo hi
  | Exponential m -> Format.fprintf ppf "exp(mean=%g)" m
  | Normal (mu, sigma) -> Format.fprintf ppf "normal(%g,%g)" mu sigma

module Zipf = struct
  type gen = { n : int; theta : float; zetan : float; alpha : float; eta : float }

  let zeta n theta =
    let acc = ref 0. in
    for i = 1 to n do
      acc := !acc +. (1. /. Float.pow (float_of_int i) theta)
    done;
    !acc

  let create ~n ~theta =
    if n <= 0 then invalid_arg "Zipf.create: n <= 0";
    if theta < 0. || theta >= 1. then invalid_arg "Zipf.create: theta in [0,1)";
    if theta = 0. then { n; theta; zetan = 0.; alpha = 0.; eta = 0. }
    else begin
      let zetan = zeta n theta in
      let zeta2 = zeta 2 theta in
      let alpha = 1. /. (1. -. theta) in
      let eta =
        (1. -. Float.pow (2. /. float_of_int n) (1. -. theta))
        /. (1. -. (zeta2 /. zetan))
      in
      { n; theta; zetan; alpha; eta }
    end

  (* Gray et al.'s quick Zipf sampler ("Quickly generating billion-record
     synthetic databases", SIGMOD '94). *)
  let sample g rng =
    if g.theta = 0. then Rng.int rng g.n
    else begin
      let u = Rng.float rng in
      let uz = u *. g.zetan in
      if uz < 1. then 0
      else if uz < 1. +. Float.pow 0.5 g.theta then 1
      else
        let v =
          float_of_int g.n
          *. Float.pow ((g.eta *. u) -. g.eta +. 1.) g.alpha
        in
        let i = int_of_float v in
        if i >= g.n then g.n - 1 else i
    end
end
