(** Deterministic splittable PRNG (SplitMix64). Every experiment takes an
    explicit seed so runs are exactly reproducible; [split] derives
    statistically independent streams for per-client generators. *)

type t

val create : int -> t

(** An independent stream derived from [t]'s current state. *)
val split : t -> t

val copy : t -> t

(** Uniform in [0, 2^62). *)
val int63 : t -> int

(** [int t bound] uniform in [0, bound). @raise Invalid_argument if
    [bound <= 0]. *)
val int : t -> int -> int

(** Uniform in [0, 1). *)
val float : t -> float

val bool : t -> bool

(** [range t lo hi] uniform integer in [lo, hi] inclusive. *)
val range : t -> int -> int -> int

(** Fisher–Yates shuffle (in place). *)
val shuffle : t -> 'a array -> unit

(** [pick t arr] uniform element. @raise Invalid_argument on empty array. *)
val pick : t -> 'a array -> 'a
