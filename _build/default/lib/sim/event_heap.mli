(** Binary min-heap of timestamped events. Ties on the timestamp break by
    insertion sequence number, which makes simulation runs fully
    deterministic. *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool

(** [push h ~time x] returns a token usable with {!cancel}. *)
type token

val push : 'a t -> time:float -> 'a -> token

(** O(1) lazy cancellation: the entry is skipped when popped. *)
val cancel : token -> unit

(** Earliest (time, payload); cancelled entries are transparently dropped. *)
val pop : 'a t -> (float * 'a) option

val peek_time : 'a t -> float option
