type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  { state = mix64 seed }

let copy t = { state = t.state }

let int63 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Rejection sampling to avoid modulo bias. *)
  let max_v = (1 lsl 62) - 1 in
  let limit = max_v - (max_v mod bound) in
  let rec loop () =
    let v = int63 t in
    if v >= limit then loop () else v mod bound
  in
  loop ()

let float t =
  (* 53 random bits scaled into [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0

let bool t = Int64.logand (next_int64 t) 1L = 1L

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: hi < lo";
  lo + int t (hi - lo + 1)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))
