lib/workload/spec.ml: Ds_model Format List Printf Sla
