lib/workload/trace.mli: Ds_model Request
