lib/workload/generator.mli: Ds_model Ds_sim Request Rng Sla Spec Txn
