lib/workload/trace.ml: Ds_model Format Fun List Op Printf Request Sla String
