lib/workload/generator.ml: Array Dist Ds_model Ds_sim Hashtbl List Op Option Rng Spec Txn
