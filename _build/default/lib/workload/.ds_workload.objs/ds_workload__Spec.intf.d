lib/workload/spec.mli: Ds_model Format Sla
