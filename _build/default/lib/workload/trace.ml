open Ds_model

exception Malformed of string * int

let fail lineno fmt =
  Format.kasprintf (fun s -> raise (Malformed (s, lineno))) fmt

let header = "id,ta,intrata,operation,object,sla,arrival"

let line_of_request (r : Request.t) =
  Printf.sprintf "%d,%d,%d,%c,%s,%s,%.6f" r.Request.id r.Request.ta
    r.Request.intrata
    (Op.to_char r.Request.op)
    (match r.Request.obj with Some o -> string_of_int o | None -> "")
    (Sla.tier_to_string r.Request.sla.Sla.tier)
    r.Request.arrival

let request_of_line ~lineno line =
  match String.split_on_char ',' (String.trim line) with
  | [ id; ta; intrata; op; obj; sla; arrival ] ->
    let int_field name v =
      match int_of_string_opt v with
      | Some n -> n
      | None -> fail lineno "field %s: expected integer, got %S" name v
    in
    let op =
      if String.length op = 1 then
        match Op.of_char op.[0] with
        | Some op -> op
        | None -> fail lineno "unknown operation %S" op
      else fail lineno "operation must be one character, got %S" op
    in
    let obj =
      match String.trim obj with
      | "" -> None
      | v -> Some (int_field "object" v)
    in
    let sla =
      match Sla.tier_of_string (String.trim sla) with
      | Some Sla.Premium -> Sla.premium
      | Some Sla.Free -> Sla.free
      | Some Sla.Standard | None -> Sla.standard
    in
    let arrival =
      match float_of_string_opt arrival with
      | Some f -> f
      | None -> fail lineno "field arrival: expected float, got %S" arrival
    in
    (try
       Request.make ~sla ~arrival ~id:(int_field "id" id)
         ~ta:(int_field "ta" ta)
         ~intrata:(int_field "intrata" intrata)
         ~op ?obj ()
     with Invalid_argument msg -> fail lineno "%s" msg)
  | _ -> fail lineno "expected 7 comma-separated fields"

let to_channel oc requests =
  output_string oc header;
  output_char oc '\n';
  List.iter
    (fun r ->
      output_string oc (line_of_request r);
      output_char oc '\n')
    requests

let of_channel ic =
  let requests = ref [] in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       let trimmed = String.trim line in
       if trimmed = "" || (!lineno = 1 && trimmed = header) then ()
       else requests := request_of_line ~lineno:!lineno trimmed :: !requests
     done
   with End_of_file -> ());
  List.rev !requests

let save path requests =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> to_channel oc requests)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_channel ic)
