(** Transaction generation from a {!Spec}. Generation is deterministic in the
    RNG stream, so a seed fully determines a workload. *)

open Ds_model
open Ds_sim

type t

val create : Spec.t -> Rng.t -> t

(** [next_txn t ~ta] draws the next transaction, numbered [ta]. *)
val next_txn : t -> ta:int -> Txn.t

(** [txns t ~first_ta n] draws [n] transactions numbered consecutively. *)
val txns : t -> first_ta:int -> int -> Txn.t list

(** Flattens transactions into an arrival-interleaved request stream: the
    requests of concurrently-issued transactions alternate round-robin, the
    shape an external scheduler's incoming queue sees when many clients
    submit at once. *)
val interleave : Txn.t list -> Request.t list

(** Draws an SLA class according to the spec's mix. *)
val draw_sla : t -> Sla.t
