(** Request traces: save and load request streams as CSV, so experiments can
    run from recorded workloads — the "pre-scheduled workloads" the paper's
    naive approach consumes (§5), and a way to feed identical inputs to
    different protocols.

    Format: one request per line, header included:

    {v
    id,ta,intrata,operation,object,sla,arrival
    1,1,1,r,42,standard,0.000
    2,1,2,w,17,standard,0.001
    3,1,3,c,,standard,0.002
    v}

    [object] is empty for commit/abort. Unknown SLA names default to
    [standard]. *)

open Ds_model

exception Malformed of string * int  (** message, 1-based line *)

val to_channel : out_channel -> Request.t list -> unit
val of_channel : in_channel -> Request.t list
val save : string -> Request.t list -> unit
val load : string -> Request.t list

(** Render/parse a single request (exposed for tests). *)
val line_of_request : Request.t -> string

val request_of_line : lineno:int -> string -> Request.t
