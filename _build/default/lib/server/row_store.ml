type t = { data : int array; mutable reads : int; mutable writes : int }

let create ~n_rows =
  if n_rows <= 0 then invalid_arg "Row_store.create: n_rows <= 0";
  { data = Array.make n_rows 0; reads = 0; writes = 0 }

let n_rows t = Array.length t.data

let check t row =
  if row < 0 || row >= Array.length t.data then
    invalid_arg "Row_store: row out of range"

let read t row =
  check t row;
  t.reads <- t.reads + 1;
  t.data.(row)

let write t row v =
  check t row;
  t.writes <- t.writes + 1;
  t.data.(row) <- v

let reads t = t.reads

let writes t = t.writes

let checksum t =
  let acc = ref 0 in
  Array.iteri (fun i v -> if v <> 0 then acc := !acc lxor ((i * 1_000_003) + v)) t.data;
  !acc

let diff a b =
  if n_rows a <> n_rows b then invalid_arg "Row_store.diff: different sizes";
  let out = ref [] in
  for i = n_rows a - 1 downto 0 do
    if a.data.(i) <> b.data.(i) then out := i :: !out
  done;
  !out
