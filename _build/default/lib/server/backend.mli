(** Server facade for the middleware architecture (Figure 1): when the
    declarative scheduler has already decided the execution order, the server
    runs the qualified requests as a batch job with its own scheduler
    disabled ("use the schedules produced by our declaratively programmed
    component", §1). *)

open Ds_model
open Ds_sim

type t

val create : Engine.t -> Cost_model.t -> t

(** [execute_batch t requests k] charges the CPU for every data statement
    (without the lock path) and every terminal operation in [requests], then
    calls [k] at batch completion time. *)
val execute_batch : t -> Request.t list -> (unit -> unit) -> unit

(** [execute_seq t requests ~on_each k] executes the batch in order, calling
    [on_each req] at each request's own completion time and [k] at the end.
    This preserves the schedule's intra-batch ordering, which is what makes
    SLA-priority ordering observable in response times. *)
val execute_seq :
  t -> Request.t list -> on_each:(Request.t -> unit) -> (unit -> unit) -> unit

(** Statements executed so far (data operations only). *)
val executed_stmts : t -> int

val cpu : t -> Cpu.t
