(** Service-time model of the simulated server.

    The defaults are calibrated against §4.2.2: in single-user mode the
    paper's server processed 550 055 statements in 194 s, i.e. ≈ 0.353 ms per
    statement on its 2.8 GHz single-core machine. Absolute values only set
    the time scale; the experiments report ratios and shapes. *)

open Ds_sim

type t = {
  n_cores : int;  (** server CPU cores (paper machine: 1) *)
  stmt_service : float;  (** CPU seconds to execute one read/write statement *)
  commit_service : float;  (** commit bookkeeping *)
  lock_overhead : float;
      (** extra CPU per statement in multi-user mode: latching, lock table
          maintenance — the per-statement component of scheduling overhead *)
  deadlock_check_cost : float;  (** CPU per waits-for search *)
  abort_cost_per_stmt : float;  (** rollback CPU per statement undone *)
  restart_delay : float;  (** client backoff before retrying an aborted txn *)
  think_time : Dist.t;  (** client pause between transactions *)
}

val default : t

(** [stmt_cost t ~locking] is the CPU demand of one statement with or without
    the multi-user lock path. *)
val stmt_cost : t -> locking:bool -> float
