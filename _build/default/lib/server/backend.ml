open Ds_model
open Ds_sim

type t = {
  engine : Engine.t;
  cpu_ : Cpu.t;
  cost : Cost_model.t;
  mutable executed : int;
}

let create engine cost =
  { engine; cpu_ = Cpu.create engine ~n_cores:cost.Cost_model.n_cores; cost; executed = 0 }

let execute_batch t requests k =
  let work =
    List.fold_left
      (fun acc (r : Request.t) ->
        match r.Request.op with
        | Op.Read | Op.Write -> acc +. Cost_model.stmt_cost t.cost ~locking:false
        | Op.Commit | Op.Abort -> acc +. t.cost.Cost_model.commit_service)
      0. requests
  in
  let data =
    List.length (List.filter (fun r -> Request.is_data r) requests)
  in
  if requests = [] then
    ignore (Engine.schedule t.engine ~after:0. k)
  else
    Cpu.submit t.cpu_ ~work (fun () ->
        t.executed <- t.executed + data;
        k ())

let request_work t (r : Request.t) =
  match r.Request.op with
  | Op.Read | Op.Write -> Cost_model.stmt_cost t.cost ~locking:false
  | Op.Commit | Op.Abort -> t.cost.Cost_model.commit_service

let execute_seq t requests ~on_each k =
  let rec step = function
    | [] -> k ()
    | r :: rest ->
      Cpu.submit t.cpu_ ~work:(request_work t r) (fun () ->
          if Request.is_data r then t.executed <- t.executed + 1;
          on_each r;
          step rest)
  in
  if requests = [] then ignore (Engine.schedule t.engine ~after:0. k)
  else step requests

let executed_stmts t = t.executed

let cpu t = t.cpu_
