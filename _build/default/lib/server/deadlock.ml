let find_cycle ~successors start =
  (* DFS from [start]; we only care about cycles that pass through [start],
     which is the transaction that just blocked (any new cycle must contain
     the new edge). *)
  let visited = Hashtbl.create 16 in
  let rec dfs path txn =
    if Hashtbl.mem visited txn then None
    else begin
      Hashtbl.add visited txn ();
      let rec try_succ = function
        | [] -> None
        | s :: rest ->
          if s = start then Some (List.rev (txn :: path))
          else (
            match dfs (txn :: path) s with
            | Some c -> Some c
            | None -> try_succ rest)
      in
      try_succ (successors txn)
    end
  in
  dfs [] start

let pick_victim cycle =
  match cycle with
  | [] -> invalid_arg "Deadlock.pick_victim: empty cycle"
  | first :: rest -> List.fold_left max first rest
