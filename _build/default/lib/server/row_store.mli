(** The server's data: the single 100 000-row table of §4.2.1, reduced to one
    integer payload per row. Enough to make execution *observable*: the
    faithfulness test checks that the multi-user run's final state equals a
    sequential replay of the committed schedule, which only holds if locking,
    rollback and the schedule log are all correct. *)

type t

val create : n_rows:int -> t
val n_rows : t -> int

(** @raise Invalid_argument on out-of-range rows. *)
val read : t -> int -> int

val write : t -> int -> int -> unit
val reads : t -> int
val writes : t -> int

(** Order-independent digest of the current contents. *)
val checksum : t -> int

(** Rows whose value differs between two stores (for diagnostics). *)
val diff : t -> t -> int list
