(** Single-user replay (§4.1/§4.2.1): the logged multi-user schedule is rerun
    as one transaction holding an exclusive table lock, with row locking
    disabled. The run time is the lower bound the paper divides by in
    Figure 2. *)

val single_user_time : Cost_model.t -> Schedule.entry list -> float

(** Replays through the simulator rather than arithmetically (used by tests
    to confirm both agree). *)
val single_user_time_simulated : Cost_model.t -> Schedule.entry list -> float

(** Applies a logged schedule to a store sequentially. Under a correct
    strict-2PL run, applying the committed schedule to a fresh store must
    yield the multi-user run's final state. *)
val apply_to_store : Row_store.t -> Schedule.entry list -> unit
