lib/server/cost_model.mli: Dist Ds_sim
