lib/server/replay.mli: Cost_model Row_store Schedule
