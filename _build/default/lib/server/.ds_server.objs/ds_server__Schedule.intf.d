lib/server/schedule.mli: Ds_model Op
