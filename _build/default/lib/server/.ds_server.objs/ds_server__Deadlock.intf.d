lib/server/deadlock.mli:
