lib/server/schedule.ml: Ds_model Ds_util Hashtbl List Op
