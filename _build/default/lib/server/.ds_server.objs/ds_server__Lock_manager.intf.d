lib/server/lock_manager.mli:
