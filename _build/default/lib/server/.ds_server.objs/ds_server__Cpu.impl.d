lib/server/cpu.ml: Array Ds_sim Engine Float
