lib/server/row_store.ml: Array
