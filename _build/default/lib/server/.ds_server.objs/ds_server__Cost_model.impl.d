lib/server/cost_model.ml: Dist Ds_sim
