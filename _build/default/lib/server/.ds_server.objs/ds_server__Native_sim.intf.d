lib/server/native_sim.mli: Cost_model Ds_workload Format Row_store Schedule Spec
