lib/server/backend.ml: Cost_model Cpu Ds_model Ds_sim Engine List Op Request
