lib/server/lock_manager.ml: Hashtbl Int List Option
