lib/server/cpu.mli: Ds_sim Engine
