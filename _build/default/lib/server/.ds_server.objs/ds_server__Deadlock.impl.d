lib/server/deadlock.ml: Hashtbl List
