lib/server/backend.mli: Cost_model Cpu Ds_model Ds_sim Engine Request
