lib/server/row_store.mli:
