lib/server/replay.ml: Cost_model Cpu Ds_model Ds_sim List Row_store Schedule
