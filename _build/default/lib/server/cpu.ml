open Ds_sim

type t = {
  engine : Engine.t;
  free_at : float array;  (* per-core next-free time *)
  mutable busy : float;
}

let create engine ~n_cores =
  if n_cores <= 0 then invalid_arg "Cpu.create: n_cores <= 0";
  { engine; free_at = Array.make n_cores 0.; busy = 0. }

let submit t ~work k =
  if work < 0. then invalid_arg "Cpu.submit: negative work";
  let now = Engine.now t.engine in
  (* Earliest-free core gets the job (FCFS across one queue). *)
  let core = ref 0 in
  Array.iteri (fun i f -> if f < t.free_at.(!core) then core := i) t.free_at;
  let start = Float.max now t.free_at.(!core) in
  let finish = start +. work in
  t.free_at.(!core) <- finish;
  t.busy <- t.busy +. work;
  ignore (Engine.schedule_at t.engine ~time:finish k)

let busy_time t = t.busy

let utilization t =
  let now = Engine.now t.engine in
  if now <= 0. then 0.
  else t.busy /. (now *. float_of_int (Array.length t.free_at))
