open Ds_sim

type t = {
  n_cores : int;
  stmt_service : float;
  commit_service : float;
  lock_overhead : float;
  deadlock_check_cost : float;
  abort_cost_per_stmt : float;
  restart_delay : float;
  think_time : Dist.t;
}

let default =
  {
    n_cores = 1;
    stmt_service = 0.000353;
    commit_service = 0.0005;
    lock_overhead = 0.00004;
    deadlock_check_cost = 0.00002;
    abort_cost_per_stmt = 0.0002;
    restart_delay = 0.005;
    think_time = Dist.Constant 0.;
  }

let stmt_cost t ~locking =
  if locking then t.stmt_service +. t.lock_overhead else t.stmt_service
