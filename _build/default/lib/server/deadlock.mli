(** Waits-for-graph cycle detection. The native scheduler calls this whenever
    a transaction blocks; a returned cycle triggers victim selection. *)

(** [find_cycle ~successors start] follows waits-for edges from [start] and
    returns a cycle containing [start] if one exists (as the list of
    transactions on it, starting and ending implicitly at [start]). *)
val find_cycle : successors:(int -> int list) -> int -> int list option

(** Youngest transaction (largest id) on the cycle: the default victim. *)
val pick_victim : int list -> int
