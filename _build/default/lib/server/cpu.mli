(** The server's CPU(s) as a simulated FCFS resource. Statements queue in
    submission order; a statement occupies one core for its service demand.
    Lock *waiting* consumes no CPU — which is exactly why lock thrashing
    shows up as collapsing throughput: blocked clients leave the CPU idle. *)

open Ds_sim

type t

val create : Engine.t -> n_cores:int -> t

(** [submit t ~work k] enqueues a job needing [work] CPU-seconds; [k] runs at
    completion (in simulated time). *)
val submit : t -> work:float -> (unit -> unit) -> unit

(** Accumulated busy CPU-seconds across cores. *)
val busy_time : t -> float

(** Utilization over [0, now], per core. *)
val utilization : t -> float
