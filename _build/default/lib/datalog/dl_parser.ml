open Ds_relal

exception Parse_error of string * int

type token =
  | Tident of string  (** lowercase: predicate or symbol constant *)
  | Tvar of string
  | Twild
  | Tint of int
  | Tfloat of float
  | Tstr of string
  | Tsym of string  (** ( ) , . :- = <> < <= > >= *)
  | Teof

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let emit t p = out := (t, p) :: !out in
  let is_lower c = c >= 'a' && c <= 'z' in
  let is_upper c = c >= 'A' && c <= 'Z' in
  let is_ident c =
    is_lower c || is_upper c || (c >= '0' && c <= '9') || c = '_'
  in
  let is_digit c = c >= '0' && c <= '9' in
  let rec loop i =
    if i >= n then emit Teof i
    else
      let c = src.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then loop (i + 1)
      else if c = '%' then begin
        let rec eol j = if j >= n || src.[j] = '\n' then j else eol (j + 1) in
        loop (eol i)
      end
      else if c = '_' && (i + 1 >= n || not (is_ident src.[i + 1])) then begin
        emit Twild i;
        loop (i + 1)
      end
      else if is_lower c || is_upper c || c = '_' then begin
        let rec fin j = if j < n && is_ident src.[j] then fin (j + 1) else j in
        let j = fin (i + 1) in
        let word = String.sub src i (j - i) in
        if is_upper c || c = '_' then emit (Tvar word) i
        else if word = "not" then emit (Tsym "not") i
        else emit (Tident word) i;
        loop j
      end
      else if is_digit c then begin
        let rec fin j = if j < n && is_digit src.[j] then fin (j + 1) else j in
        let j = fin (i + 1) in
        if j < n && src.[j] = '.' && j + 1 < n && is_digit src.[j + 1] then begin
          let k = fin (j + 1) in
          emit (Tfloat (float_of_string (String.sub src i (k - i)))) i;
          loop k
        end
        else begin
          emit (Tint (int_of_string (String.sub src i (j - i)))) i;
          loop j
        end
      end
      else if c = '\'' then begin
        let buf = Buffer.create 8 in
        let rec fin j =
          if j >= n then raise (Parse_error ("unterminated string", i))
          else if src.[j] = '\'' then j + 1
          else begin
            Buffer.add_char buf src.[j];
            fin (j + 1)
          end
        in
        let j = fin (i + 1) in
        emit (Tstr (Buffer.contents buf)) i;
        loop j
      end
      else begin
        let two = if i + 1 < n then String.sub src i 2 else "" in
        match two with
        | ":-" | "<>" | "<=" | ">=" | "!=" ->
          emit (Tsym (if two = "!=" then "<>" else two)) i;
          loop (i + 2)
        | _ -> (
          match c with
          | '(' | ')' | ',' | '.' | '=' | '<' | '>' ->
            emit (Tsym (String.make 1 c)) i;
            loop (i + 1)
          | _ -> raise (Parse_error (Printf.sprintf "unexpected character %C" c, i)))
      end
  in
  loop 0;
  List.rev !out

type state = { mutable toks : (token * int) list }

let err st msg =
  let pos = match st.toks with (_, p) :: _ -> p | [] -> -1 in
  raise (Parse_error (msg, pos))

let peek st = match st.toks with (t, _) :: _ -> t | [] -> Teof

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let eat_sym st s =
  match peek st with
  | Tsym x when x = s -> advance st
  | _ -> err st (Printf.sprintf "expected '%s'" s)

let try_sym st s =
  match peek st with
  | Tsym x when x = s ->
    advance st;
    true
  | _ -> false

let parse_term st =
  match peek st with
  | Tvar v ->
    advance st;
    Dl_ast.Var v
  | Twild ->
    advance st;
    Dl_ast.Wildcard
  | Tint i ->
    advance st;
    Dl_ast.Const (Value.Int i)
  | Tfloat f ->
    advance st;
    Dl_ast.Const (Value.Float f)
  | Tstr s ->
    advance st;
    Dl_ast.Const (Value.Str s)
  | Tident s ->
    advance st;
    Dl_ast.Const (Value.Str s)
  | _ -> err st "expected a term"

let parse_atom st =
  match peek st with
  | Tident pred ->
    advance st;
    eat_sym st "(";
    let rec args acc =
      let t = parse_term st in
      if try_sym st "," then args (t :: acc) else List.rev (t :: acc)
    in
    let args = if try_sym st ")" then [] else (
      let a = args [] in
      eat_sym st ")";
      a)
    in
    { Dl_ast.pred; args }
  | _ -> err st "expected a predicate"

let cmp_of_sym = function
  | "=" -> Some Dl_ast.Eq
  | "<>" -> Some Dl_ast.Neq
  | "<" -> Some Dl_ast.Lt
  | "<=" -> Some Dl_ast.Leq
  | ">" -> Some Dl_ast.Gt
  | ">=" -> Some Dl_ast.Geq
  | _ -> None

let parse_literal st =
  match peek st with
  | Tsym "not" ->
    advance st;
    Dl_ast.Neg (parse_atom st)
  | Tident _ -> (
    (* Could be an atom or a symbol constant in a comparison; predicates are
       always followed by '('. *)
    match st.toks with
    | (Tident _, _) :: (Tsym "(", _) :: _ -> Dl_ast.Pos (parse_atom st)
    | _ ->
      let a = parse_term st in
      (match peek st with
      | Tsym s when cmp_of_sym s <> None ->
        advance st;
        let b = parse_term st in
        Dl_ast.Cmp (Option.get (cmp_of_sym s), a, b)
      | _ -> err st "expected a comparison operator"))
  | _ ->
    let a = parse_term st in
    (match peek st with
    | Tsym s when cmp_of_sym s <> None ->
      advance st;
      let b = parse_term st in
      Dl_ast.Cmp (Option.get (cmp_of_sym s), a, b)
    | _ -> err st "expected a comparison operator")

let parse_rule_inner st =
  let head = parse_atom st in
  let body =
    if try_sym st ":-" then begin
      let rec loop acc =
        let l = parse_literal st in
        if try_sym st "," then loop (l :: acc) else List.rev (l :: acc)
      in
      loop []
    end
    else []
  in
  eat_sym st ".";
  { Dl_ast.head; body }

let parse_program src =
  let st = { toks = tokenize src } in
  let rec loop acc =
    match peek st with
    | Teof -> List.rev acc
    | _ -> loop (parse_rule_inner st :: acc)
  in
  loop []

let parse_rule src =
  let st = { toks = tokenize src } in
  let r = parse_rule_inner st in
  match peek st with
  | Teof -> r
  | _ -> err st "trailing input after rule"
