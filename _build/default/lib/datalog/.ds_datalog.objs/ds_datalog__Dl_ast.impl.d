lib/datalog/dl_ast.ml: Ds_relal Format List Value
