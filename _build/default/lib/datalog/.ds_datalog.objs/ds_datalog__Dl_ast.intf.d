lib/datalog/dl_ast.mli: Ds_relal Format Value
