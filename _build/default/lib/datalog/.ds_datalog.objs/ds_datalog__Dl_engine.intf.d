lib/datalog/dl_engine.mli: Dl_ast Ds_relal Value
