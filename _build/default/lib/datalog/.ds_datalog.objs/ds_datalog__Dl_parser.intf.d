lib/datalog/dl_parser.mli: Dl_ast
