lib/datalog/dl_engine.ml: Array Dl_ast Ds_relal Format Fun Hashtbl List Option String Value
