lib/datalog/dl_parser.ml: Buffer Dl_ast Ds_relal List Option Printf String Value
