open Ds_relal

type term = Var of string | Wildcard | Const of Value.t

type cmp = Eq | Neq | Lt | Leq | Gt | Geq

type atom = { pred : string; args : term list }

type literal = Pos of atom | Neg of atom | Cmp of cmp * term * term

type rule = { head : atom; body : literal list }

type program = rule list

let pp_term ppf = function
  | Var v -> Format.pp_print_string ppf v
  | Wildcard -> Format.pp_print_char ppf '_'
  | Const v -> Value.pp ppf v

let pp_atom ppf { pred; args } =
  Format.fprintf ppf "%s(%a)" pred
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_term)
    args

let cmp_to_string = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Leq -> "<="
  | Gt -> ">"
  | Geq -> ">="

let pp_literal ppf = function
  | Pos a -> pp_atom ppf a
  | Neg a -> Format.fprintf ppf "not %a" pp_atom a
  | Cmp (c, a, b) ->
    Format.fprintf ppf "%a %s %a" pp_term a (cmp_to_string c) pp_term b

let pp_rule ppf { head; body } =
  match body with
  | [] -> Format.fprintf ppf "%a." pp_atom head
  | _ ->
    Format.fprintf ppf "%a :- %a." pp_atom head
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_literal)
      body

let vars_of terms =
  List.fold_left
    (fun acc t ->
      match t with
      | Var v -> if List.mem v acc then acc else acc @ [ v ]
      | Wildcard | Const _ -> acc)
    [] terms
