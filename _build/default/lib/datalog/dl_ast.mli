(** Datalog abstract syntax: stratified Datalog with negation and comparison
    built-ins. Values are {!Ds_relal.Value} so tables can be loaded as fact
    relations directly. *)

open Ds_relal

type term =
  | Var of string  (** starts with an uppercase letter *)
  | Wildcard  (** [_], a fresh variable per occurrence *)
  | Const of Value.t

type cmp = Eq | Neq | Lt | Leq | Gt | Geq

type atom = { pred : string; args : term list }

type literal =
  | Pos of atom
  | Neg of atom  (** [not p(...)]; arguments must be bound *)
  | Cmp of cmp * term * term  (** both sides must be bound *)

type rule = { head : atom; body : literal list }

type program = rule list

val pp_term : Format.formatter -> term -> unit
val pp_atom : Format.formatter -> atom -> unit
val pp_literal : Format.formatter -> literal -> unit
val pp_rule : Format.formatter -> rule -> unit

(** Variables of a term list, in first-occurrence order, wildcards excluded. *)
val vars_of : term list -> string list
