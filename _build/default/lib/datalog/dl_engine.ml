open Ds_relal
open Dl_ast

exception Datalog_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Datalog_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Tuple sets                                                         *)
(* ------------------------------------------------------------------ *)

module Tuple_key = struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec loop i =
      i >= Array.length a || (Value.equal a.(i) b.(i) && loop (i + 1))
    in
    loop 0

  let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t
end

module Tup_tbl = Hashtbl.Make (Tuple_key)

type rel = { mutable tuples : Value.t array list; set : unit Tup_tbl.t }

let rel_create () = { tuples = []; set = Tup_tbl.create 64 }

let rel_mem r t = Tup_tbl.mem r.set t

let rel_add r t =
  if not (rel_mem r t) then begin
    Tup_tbl.add r.set t ();
    r.tuples <- t :: r.tuples;
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* Engine state                                                       *)
(* ------------------------------------------------------------------ *)

type t = {
  program : rule list;
  arities : (string, int) Hashtbl.t;
  strata_of : (string, int) Hashtbl.t;  (* IDB predicates only *)
  n_strata : int;
  edb : (string, rel) Hashtbl.t;
  mutable derived : (string, rel) Hashtbl.t option;  (* None = stale *)
}

let is_idb program pred = List.exists (fun r -> r.head.pred = pred) program

(* ------------------------------------------------------------------ *)
(* Static checks                                                      *)
(* ------------------------------------------------------------------ *)

let check_arities program =
  let arities = Hashtbl.create 16 in
  let note pred n =
    match Hashtbl.find_opt arities pred with
    | None -> Hashtbl.add arities pred n
    | Some m ->
      if m <> n then
        fail "predicate %s used with arities %d and %d" pred m n
  in
  List.iter
    (fun r ->
      note r.head.pred (List.length r.head.args);
      List.iter
        (function
          | Pos a | Neg a -> note a.pred (List.length a.args)
          | Cmp _ -> ())
        r.body)
    program;
  arities

let check_safety program =
  List.iter
    (fun r ->
      let positive_vars =
        List.concat_map
          (function Pos a -> vars_of a.args | Neg _ | Cmp _ -> [])
          r.body
      in
      let bound v = List.mem v positive_vars in
      List.iter
        (fun v ->
          if not (bound v) then
            fail "unsafe rule (head variable %s unbound): %s" v
              (Format.asprintf "%a" pp_rule r))
        (vars_of r.head.args);
      List.iter
        (function
          | Pos _ -> ()
          | Neg a ->
            List.iter
              (fun v ->
                if not (bound v) then
                  fail "unsafe rule (variable %s in negated literal unbound)" v)
              (vars_of a.args)
          | Cmp (_, x, y) ->
            List.iter
              (fun v ->
                if not (bound v) then
                  fail "unsafe rule (variable %s in comparison unbound)" v)
              (vars_of [ x; y ]))
        r.body;
      (* Wildcards in head or negated literals are almost always bugs. *)
      if List.exists (fun t -> t = Wildcard) r.head.args then
        fail "wildcard in rule head";
      List.iter
        (function
          | Neg a when List.exists (fun t -> t = Wildcard) a.args ->
            fail "wildcard in negated literal (quantify explicitly)"
          | Neg _ | Pos _ | Cmp _ -> ())
        r.body)
    program

(* Stratum assignment by relaxation; raises if recursion passes through
   negation. *)
let stratify program =
  let idb =
    List.sort_uniq String.compare (List.map (fun r -> r.head.pred) program)
  in
  let strata = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace strata p 0) idb;
  let n = List.length idb in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed do
    changed := false;
    incr rounds;
    if !rounds > n + 1 then
      fail "program is not stratifiable (recursion through negation)";
    List.iter
      (fun r ->
        let h = Hashtbl.find strata r.head.pred in
        List.iter
          (fun lit ->
            let bump pred delta =
              match Hashtbl.find_opt strata pred with
              | None -> () (* EDB: stratum 0 *)
              | Some s ->
                if h < s + delta then begin
                  Hashtbl.replace strata r.head.pred (s + delta);
                  changed := true
                end
            in
            match lit with
            | Pos a -> bump a.pred 0
            | Neg a -> bump a.pred 1
            | Cmp _ -> ())
          r.body)
      program
  done;
  strata

let create program =
  let arities = check_arities program in
  check_safety program;
  let strata_of = stratify program in
  let n_strata =
    Hashtbl.fold (fun _ s acc -> max acc (s + 1)) strata_of 1
  in
  {
    program;
    arities;
    strata_of;
    n_strata;
    edb = Hashtbl.create 16;
    derived = None;
  }

(* ------------------------------------------------------------------ *)
(* Facts                                                              *)
(* ------------------------------------------------------------------ *)

let edb_rel t pred =
  match Hashtbl.find_opt t.edb pred with
  | Some r -> r
  | None ->
    let r = rel_create () in
    Hashtbl.add t.edb pred r;
    r

let add_fact_row t pred row =
  if is_idb t.program pred then
    fail "cannot add facts to derived predicate %s" pred;
  (match Hashtbl.find_opt t.arities pred with
  | Some n when n <> Array.length row ->
    fail "fact %s has arity %d, expected %d" pred (Array.length row) n
  | Some _ | None -> ());
  ignore (rel_add (edb_rel t pred) row);
  t.derived <- None

let add_fact t pred values = add_fact_row t pred (Array.of_list values)

let load_rows t pred rows = List.iter (add_fact_row t pred) rows

let clear_facts ?pred t =
  (match pred with
  | Some p -> Hashtbl.remove t.edb p
  | None -> Hashtbl.reset t.edb);
  t.derived <- None

(* ------------------------------------------------------------------ *)
(* Evaluation                                                         *)
(* ------------------------------------------------------------------ *)

type binding = (string * Value.t) list

let lookup (b : binding) v = List.assoc_opt v b

(* Match one tuple against atom args under a binding; None if clash. *)
let match_tuple (b : binding) args tuple =
  let rec loop b args i =
    match args with
    | [] -> Some b
    | arg :: rest -> (
      let cell = tuple.(i) in
      match arg with
      | Wildcard -> loop b rest (i + 1)
      | Const v -> if Value.equal v cell then loop b rest (i + 1) else None
      | Var name -> (
        match lookup b name with
        | Some v -> if Value.equal v cell then loop b rest (i + 1) else None
        | None -> loop ((name, cell) :: b) rest (i + 1)))
  in
  loop b args 0

let ground (b : binding) = function
  | Const v -> v
  | Var name -> (
    match lookup b name with
    | Some v -> v
    | None -> fail "internal: unbound variable %s at evaluation" name)
  | Wildcard -> fail "internal: wildcard grounding"

let cmp_holds c a b =
  let r = Value.compare a b in
  match c with
  | Eq -> r = 0
  | Neq -> r <> 0
  | Lt -> r < 0
  | Leq -> r <= 0
  | Gt -> r > 0
  | Geq -> r >= 0

(* Statically-known bound argument positions for each body literal: constants
   plus variables bound by preceding positive literals. These drive the
   hash-join indexes below. *)
let bound_positions_per_literal rule =
  let prebound = Hashtbl.create 8 in
  let per_literal =
    List.map
      (fun lit ->
        match lit with
        | Pos atom ->
          let positions =
            List.mapi
              (fun i arg ->
                match arg with
                | Const _ -> Some i
                | Var v when Hashtbl.mem prebound v -> Some i
                | Var _ | Wildcard -> None)
              atom.args
            |> List.filter_map Fun.id
          in
          List.iter
            (function Var v -> Hashtbl.replace prebound v () | Const _ | Wildcard -> ())
            atom.args;
          positions
        | Neg _ | Cmp _ -> [])
      rule.body
  in
  Array.of_list per_literal

(* Hash index over a tuple list on the given positions. *)
let build_index positions tuples =
  let tbl = Tup_tbl.create 64 in
  List.iter
    (fun tuple ->
      let key = Array.of_list (List.map (fun i -> tuple.(i)) positions) in
      let prev = Option.value ~default:[] (Tup_tbl.find_opt tbl key) in
      Tup_tbl.replace tbl key (tuple :: prev))
    tuples;
  tbl

let eval t =
  let derived = Hashtbl.create 16 in
  let rel_of pred =
    match Hashtbl.find_opt derived pred with
    | Some r -> r
    | None -> (
      match Hashtbl.find_opt t.edb pred with
      | Some r -> r
      | None ->
        let r = rel_create () in
        (* Register unknown predicates as empty so joins see them. *)
        if is_idb t.program pred then Hashtbl.add derived pred r
        else Hashtbl.add t.edb pred r;
        r)
  in
  List.iter
    (fun r -> Hashtbl.replace derived r.head.pred (rel_create ()))
    t.program;
  for stratum = 0 to t.n_strata - 1 do
    let rules =
      List.filter
        (fun r -> Hashtbl.find t.strata_of r.head.pred = stratum)
        t.program
    in
    let in_stratum pred =
      match Hashtbl.find_opt t.strata_of pred with
      | Some s -> s = stratum
      | None -> false
    in
    (* Evaluate one rule. [delta_at] selects which same-stratum positive
       literal (by index) must use the delta relation; [None] = use full
       relations everywhere (first round). *)
    let eval_rule delta delta_at rule =
      let results = ref [] in
      let bound_pos = bound_positions_per_literal rule in
      (* Per-literal hash index, built lazily on first visit: the source
         tuple list of a literal is stable within one eval_rule call. *)
      let indexes = Array.make (Array.length bound_pos) None in
      let rec go b lits idx =
        match lits with
        | [] ->
          let tuple = Array.of_list (List.map (ground b) rule.head.args) in
          results := tuple :: !results
        | Pos atom :: rest ->
          let source () =
            if delta_at = Some idx then
              match Hashtbl.find_opt delta atom.pred with
              | Some r -> r.tuples
              | None -> []
            else (rel_of atom.pred).tuples
          in
          let candidates =
            match bound_pos.(idx) with
            | [] -> source ()
            | positions ->
              let index =
                match indexes.(idx) with
                | Some ix -> ix
                | None ->
                  let ix = build_index positions (source ()) in
                  indexes.(idx) <- Some ix;
                  ix
              in
              let args = Array.of_list atom.args in
              let key =
                Array.of_list (List.map (fun p -> ground b args.(p)) positions)
              in
              Option.value ~default:[] (Tup_tbl.find_opt index key)
          in
          List.iter
            (fun tuple ->
              match match_tuple b atom.args tuple with
              | Some b' -> go b' rest (idx + 1)
              | None -> ())
            candidates
        | Neg atom :: rest ->
          let key = Array.of_list (List.map (ground b) atom.args) in
          if not (rel_mem (rel_of atom.pred) key) then go b rest (idx + 1)
        | Cmp (c, x, y) :: rest ->
          if cmp_holds c (ground b x) (ground b y) then go b rest (idx + 1)
      in
      go [] rule.body 0;
      !results
    in
    (* Round 0: naive evaluation against everything known so far. *)
    let delta = Hashtbl.create 16 in
    List.iter
      (fun rule ->
        List.iter
          (fun tuple ->
            if rel_add (rel_of rule.head.pred) tuple then begin
              let d =
                match Hashtbl.find_opt delta rule.head.pred with
                | Some r -> r
                | None ->
                  let r = rel_create () in
                  Hashtbl.add delta rule.head.pred r;
                  r
              in
              ignore (rel_add d tuple)
            end)
          (eval_rule (Hashtbl.create 0) None rule))
      rules;
    (* Semi-naive rounds: re-fire rules through each same-stratum positive
       literal bound to the last delta. *)
    let continue_ = ref (Hashtbl.length delta > 0) in
    while !continue_ do
      let next_delta = Hashtbl.create 16 in
      List.iter
        (fun rule ->
          List.iteri
            (fun idx lit ->
              match lit with
              | Pos atom when in_stratum atom.pred ->
                List.iter
                  (fun tuple ->
                    if rel_add (rel_of rule.head.pred) tuple then begin
                      let d =
                        match Hashtbl.find_opt next_delta rule.head.pred with
                        | Some r -> r
                        | None ->
                          let r = rel_create () in
                          Hashtbl.add next_delta rule.head.pred r;
                          r
                      in
                      ignore (rel_add d tuple)
                    end)
                  (eval_rule delta (Some idx) rule)
              | Pos _ | Neg _ | Cmp _ -> ())
            rule.body)
        rules;
      Hashtbl.reset delta;
      Hashtbl.iter (Hashtbl.add delta) next_delta;
      continue_ := Hashtbl.length delta > 0
    done
  done;
  derived

let ensure t =
  match t.derived with
  | Some d -> d
  | None ->
    let d = eval t in
    t.derived <- Some d;
    d

let query t pred =
  let d = ensure t in
  match Hashtbl.find_opt d pred with
  | Some r -> List.rev r.tuples
  | None -> (
    match Hashtbl.find_opt t.edb pred with
    | Some r -> List.rev r.tuples
    | None -> [])

let strata t =
  let buckets = Array.make t.n_strata [] in
  Hashtbl.iter (fun p s -> buckets.(s) <- p :: buckets.(s)) t.strata_of;
  Array.to_list (Array.map (List.sort String.compare) buckets)
  |> List.filter (fun l -> l <> [])

let rule_count t = List.length t.program
