(** Stratified Datalog evaluation: bottom-up and semi-naive. Facts (the EDB) are added after compilation; derived relations are
    cached until the facts change. *)

open Ds_relal

exception Datalog_error of string

type t

(** Checks arity consistency, rule safety (head, negated and compared
    variables must be bound by positive body literals) and stratifiability
    (no recursion through negation). @raise Datalog_error otherwise. *)
val create : Dl_ast.program -> t

val add_fact : t -> string -> Value.t list -> unit
val add_fact_row : t -> string -> Value.t array -> unit

(** Bulk load (e.g. from [Ds_relal.Table.rows]). *)
val load_rows : t -> string -> Value.t array list -> unit

(** Removes all facts of one predicate (or all with [None]). *)
val clear_facts : ?pred:string -> t -> unit

(** Tuples of a predicate (EDB or derived), evaluating if needed. Unknown
    predicates yield []. *)
val query : t -> string -> Value.t array list

(** Predicates grouped by stratum, lowest first (EDB predicates excluded). *)
val strata : t -> string list list

(** Number of rules (the paper's "lines of code" productivity metric). *)
val rule_count : t -> int
