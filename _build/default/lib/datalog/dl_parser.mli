(** Datalog surface syntax.

    {v
    % line comment
    finished(TA)    :- history(_, TA, _, 'c', _).
    wlocked(O, TA)  :- history(_, TA, _, 'w', O), not finished(TA).
    blocked(TA, I)  :- requests(_, TA, I, _, O), wlocked(O, T2), TA <> T2.
    qualified(TA,I) :- requests(_, TA, I, _, _), not blocked(TA, I).
    v}

    Identifiers starting uppercase are variables; [_] is a wildcard; numbers,
    ['strings'] and lowercase bare words (symbols) are constants. Rules end
    with a period. *)

exception Parse_error of string * int

val parse_program : string -> Dl_ast.program
val parse_rule : string -> Dl_ast.rule
