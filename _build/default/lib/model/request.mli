(** Scheduler requests.

    This is exactly the record of the paper's Table 2 — ID, TA, INTRATA,
    Operation, Object — extended with the SLA class and arrival time needed
    by the QoS protocols and the simulator. *)

type t = {
  id : int;  (** consecutive request number, unique per run *)
  ta : int;  (** transaction number *)
  intrata : int;  (** request number within its transaction, starting at 1 *)
  op : Op.t;
  obj : int option;  (** object number; [None] for commit/abort *)
  sla : Sla.t;
  arrival : float;  (** arrival time at the middleware, seconds *)
}

val make :
  ?sla:Sla.t -> ?arrival:float -> id:int -> ta:int -> intrata:int -> op:Op.t ->
  ?obj:int -> unit -> t

(** [v ta intrata op obj] — terse constructor used pervasively in tests:
    id defaults to a per-call counter-free [ta * 1000 + intrata]. *)
val v : int -> int -> Op.t -> int -> t

(** Terminal request (commit/abort) shorthand. *)
val terminal : int -> int -> Op.t -> t

val equal : t -> t -> bool

(** Orders by [id] (arrival order). *)
val compare : t -> t -> int

(** [key r] is the pair (TA, INTRATA) which identifies a request within a
    workload, mirroring the paper's [QualifiedSS2PLOps] result shape. *)
val key : t -> int * int

(** Two requests conflict iff they belong to different transactions, both are
    data operations on the same object, and at least one is a write. *)
val conflicts : t -> t -> bool

val is_terminal : t -> bool
val is_data : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
