(** Request operation kinds (paper, Table 2: read / write / abort / commit). *)

type t = Read | Write | Abort | Commit

val equal : t -> t -> bool
val compare : t -> t -> int

(** Single-character encoding used by the paper's SQL query ('r', 'w', 'a',
    'c'). *)
val to_char : t -> char

val of_char : char -> t option
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** [is_terminal op] is true for [Abort] and [Commit]: operations that end a
    transaction. *)
val is_terminal : t -> bool

(** [is_data op] is true for [Read] and [Write]: operations that touch an
    object. *)
val is_data : t -> bool

(** Classical read/write conflict relation: two data operations on the same
    object conflict iff at least one of them is a write. Terminal operations
    never conflict. *)
val conflicts : t -> t -> bool

val all : t list
