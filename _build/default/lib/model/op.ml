type t = Read | Write | Abort | Commit

let equal a b =
  match (a, b) with
  | Read, Read | Write, Write | Abort, Abort | Commit, Commit -> true
  | (Read | Write | Abort | Commit), _ -> false

let rank = function Read -> 0 | Write -> 1 | Abort -> 2 | Commit -> 3

let compare a b = Int.compare (rank a) (rank b)

let to_char = function Read -> 'r' | Write -> 'w' | Abort -> 'a' | Commit -> 'c'

let of_char = function
  | 'r' -> Some Read
  | 'w' -> Some Write
  | 'a' -> Some Abort
  | 'c' -> Some Commit
  | _ -> None

let to_string = function
  | Read -> "read"
  | Write -> "write"
  | Abort -> "abort"
  | Commit -> "commit"

let pp ppf op = Format.pp_print_string ppf (to_string op)

let is_terminal = function Abort | Commit -> true | Read | Write -> false

let is_data = function Read | Write -> true | Abort | Commit -> false

let conflicts a b =
  match (a, b) with
  | Write, (Read | Write) | Read, Write -> true
  | Read, Read -> false
  | (Abort | Commit), _ | _, (Abort | Commit) -> false

let all = [ Read; Write; Abort; Commit ]
