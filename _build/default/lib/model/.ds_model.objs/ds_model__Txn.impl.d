lib/model/txn.ml: Format Int List Op Request Sla
