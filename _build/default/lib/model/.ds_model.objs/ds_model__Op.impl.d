lib/model/op.ml: Format Int
