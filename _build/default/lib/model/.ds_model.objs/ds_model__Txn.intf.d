lib/model/txn.mli: Format Op Request Sla
