lib/model/sla.mli: Format
