lib/model/request.mli: Format Op Sla
