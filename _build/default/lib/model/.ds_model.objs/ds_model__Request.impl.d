lib/model/request.ml: Float Format Int Op Option Sla
