lib/model/op.mli: Format
