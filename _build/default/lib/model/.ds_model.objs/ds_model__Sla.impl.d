lib/model/sla.ml: Float Format Int Option
