type tier = Premium | Standard | Free

type t = { tier : tier; weight : int; deadline_ms : float option }

let premium = { tier = Premium; weight = 100; deadline_ms = Some 200. }

let standard = { tier = Standard; weight = 10; deadline_ms = Some 1000. }

let free = { tier = Free; weight = 1; deadline_ms = None }

let tier_rank = function Premium -> 0 | Standard -> 1 | Free -> 2

let equal a b =
  tier_rank a.tier = tier_rank b.tier
  && a.weight = b.weight
  && Option.equal Float.equal a.deadline_ms b.deadline_ms

let compare a b =
  let c = Int.compare (tier_rank a.tier) (tier_rank b.tier) in
  if c <> 0 then c
  else
    let c = Int.compare b.weight a.weight in
    if c <> 0 then c
    else Option.compare Float.compare a.deadline_ms b.deadline_ms

let compare_urgency a b = Int.compare (tier_rank a.tier) (tier_rank b.tier)

let tier_to_string = function
  | Premium -> "premium"
  | Standard -> "standard"
  | Free -> "free"

let tier_of_string = function
  | "premium" -> Some Premium
  | "standard" -> Some Standard
  | "free" -> Some Free
  | _ -> None

let pp ppf t =
  Format.fprintf ppf "%s(w=%d%a)" (tier_to_string t.tier) t.weight
    (fun ppf -> function
      | None -> ()
      | Some d -> Format.fprintf ppf ", d=%.0fms" d)
    t.deadline_ms

let all_tiers = [ Premium; Standard; Free ]
