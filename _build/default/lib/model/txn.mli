(** Transactions: ordered sequences of requests sharing a TA number and ending
    in a terminal operation. *)

type t = {
  ta : int;
  sla : Sla.t;
  requests : Request.t list;  (** in INTRATA order, terminal op last *)
}

(** [make ~ta ~sla ops] numbers the operations 1..n, appends nothing — the
    caller supplies the terminal op in [ops]. [ops] are [(op, obj option)]
    pairs. Request [id]s are [ta*1000 + intrata].
    @raise Invalid_argument if the sequence is empty, if a non-final request
    is terminal, or if the final request is not terminal. *)
val make : ta:int -> ?sla:Sla.t -> (Op.t * int option) list -> t

(** Read/write data operations of the transaction. *)
val data_requests : t -> Request.t list

(** The terminal request. *)
val terminal : t -> Request.t

val commits : t -> bool
val length : t -> int

(** Objects read (resp. written) by the transaction, deduplicated. *)
val read_set : t -> int list

val write_set : t -> int list
val pp : Format.formatter -> t -> unit
