type t = { ta : int; sla : Sla.t; requests : Request.t list }

let make ~ta ?(sla = Sla.standard) ops =
  if ops = [] then invalid_arg "Txn.make: empty transaction";
  let n = List.length ops in
  let requests =
    List.mapi
      (fun i (op, obj) ->
        let intrata = i + 1 in
        if Op.is_terminal op && intrata < n then
          invalid_arg "Txn.make: terminal operation before end of transaction";
        if (not (Op.is_terminal op)) && intrata = n then
          invalid_arg "Txn.make: transaction must end in commit or abort";
        Request.make ~sla ~id:((ta * 1000) + intrata) ~ta ~intrata ~op ?obj ())
      ops
  in
  { ta; sla; requests }

let data_requests t = List.filter Request.is_data t.requests

let terminal t = List.nth t.requests (List.length t.requests - 1)

let commits t = Op.equal (terminal t).op Op.Commit

let length t = List.length t.requests

let objects_of op_filter t =
  List.filter_map
    (fun (r : Request.t) -> if op_filter r.op then r.obj else None)
    t.requests
  |> List.sort_uniq Int.compare

let read_set = objects_of (Op.equal Op.Read)

let write_set = objects_of (Op.equal Op.Write)

let pp ppf t =
  Format.fprintf ppf "T%d(%a)" t.ta
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       Request.pp)
    t.requests
