type t = {
  id : int;
  ta : int;
  intrata : int;
  op : Op.t;
  obj : int option;
  sla : Sla.t;
  arrival : float;
}

let make ?(sla = Sla.standard) ?(arrival = 0.) ~id ~ta ~intrata ~op ?obj () =
  (match (op, obj) with
  | (Op.Read | Op.Write), None ->
    invalid_arg "Request.make: data operation requires an object"
  | (Op.Abort | Op.Commit), Some _ ->
    invalid_arg "Request.make: terminal operation carries no object"
  | _ -> ());
  { id; ta; intrata; op; obj; sla; arrival }

let v ta intrata op obj =
  make ~id:((ta * 1000) + intrata) ~ta ~intrata ~op ~obj ()

let terminal ta intrata op =
  make ~id:((ta * 1000) + intrata) ~ta ~intrata ~op ()

let equal a b =
  a.id = b.id && a.ta = b.ta && a.intrata = b.intrata && Op.equal a.op b.op
  && Option.equal Int.equal a.obj b.obj
  && Sla.equal a.sla b.sla
  && Float.equal a.arrival b.arrival

let compare a b = Int.compare a.id b.id

let key r = (r.ta, r.intrata)

let is_terminal r = Op.is_terminal r.op

let is_data r = Op.is_data r.op

let conflicts a b =
  a.ta <> b.ta
  &&
  match (a.obj, b.obj) with
  | Some oa, Some ob -> oa = ob && Op.conflicts a.op b.op
  | None, _ | _, None -> false

let pp ppf r =
  Format.fprintf ppf "#%d %c%d[%a]" r.id (Op.to_char r.op) r.ta
    (fun ppf -> function
      | Some o -> Format.fprintf ppf "x%d" o
      | None -> Format.pp_print_string ppf "-")
    r.obj

let to_string r = Format.asprintf "%a" pp r
