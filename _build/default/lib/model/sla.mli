(** Service-level classes. The paper motivates SLAs with "premium vs. free
    customers in Web applications" (§1); we model a three-tier scheme plus a
    per-class weight and optional response-time target, which is what the
    SLA-aware protocols in {!Ds_core} consume. *)

type tier = Premium | Standard | Free

type t = {
  tier : tier;
  weight : int;  (** relative scheduling weight, higher = more urgent *)
  deadline_ms : float option;
      (** response-time target; [None] = best effort *)
}

val premium : t
val standard : t
val free : t

val equal : t -> t -> bool
val compare : t -> t -> int

(** Orders by descending urgency: [Premium < Standard < Free]. *)
val compare_urgency : t -> t -> int

val tier_to_string : tier -> string
val tier_of_string : string -> tier option
val pp : Format.formatter -> t -> unit
val all_tiers : tier list
