open Ds_relal

type t = (string, Table.t) Hashtbl.t

exception Unknown_table of string

let create () = Hashtbl.create 16

let key name = String.lowercase_ascii name

let register t table = Hashtbl.replace t (key (Table.name table)) table

let find_opt t name = Hashtbl.find_opt t (key name)

let find t name =
  match find_opt t name with Some table -> table | None -> raise (Unknown_table name)

let drop t name = Hashtbl.remove t (key name)

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t [] |> List.sort String.compare
