(** Named table registry: the database a SQL session runs against. *)

open Ds_relal

type t

exception Unknown_table of string

val create : unit -> t

(** Registers under [Table.name]; replaces an existing entry. *)
val register : t -> Table.t -> unit

(** Case-insensitive lookup. @raise Unknown_table *)
val find : t -> string -> Table.t

val find_opt : t -> string -> Table.t option
val drop : t -> string -> unit
val names : t -> string list
