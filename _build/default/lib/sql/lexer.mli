(** Hand-written SQL lexer. Supports [--] line comments and [/* */] block
    comments; string literals use single quotes with [''] escaping. *)

exception Lex_error of string * int  (** message, byte offset *)

(** Tokens with their starting byte offsets; ends with [(Eof, _)]. *)
val tokenize : string -> (Token.t * int) list
