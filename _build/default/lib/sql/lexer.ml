exception Lex_error of string * int

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let emit tok pos = out := (tok, pos) :: !out in
  let rec skip_block_comment i depth =
    if i + 1 >= n then raise (Lex_error ("unterminated comment", i))
    else if src.[i] = '*' && src.[i + 1] = '/' then
      if depth = 1 then i + 2 else skip_block_comment (i + 2) (depth - 1)
    else if src.[i] = '/' && src.[i + 1] = '*' then
      skip_block_comment (i + 2) (depth + 1)
    else skip_block_comment (i + 1) depth
  in
  let rec loop i =
    if i >= n then emit Token.Eof i
    else
      let c = src.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then loop (i + 1)
      else if c = '-' && i + 1 < n && src.[i + 1] = '-' then begin
        let rec eol j = if j >= n || src.[j] = '\n' then j else eol (j + 1) in
        loop (eol (i + 2))
      end
      else if c = '/' && i + 1 < n && src.[i + 1] = '*' then
        loop (skip_block_comment (i + 2) 1)
      else if is_ident_start c then begin
        let rec fin j = if j < n && is_ident_char src.[j] then fin (j + 1) else j in
        let j = fin (i + 1) in
        let word = String.sub src i (j - i) in
        if Token.is_keyword word then emit (Token.Kw (String.uppercase_ascii word)) i
        else emit (Token.Ident (String.lowercase_ascii word)) i;
        loop j
      end
      else if is_digit c then begin
        let rec fin j = if j < n && is_digit src.[j] then fin (j + 1) else j in
        let j = fin (i + 1) in
        if j < n && src.[j] = '.' && j + 1 < n && is_digit src.[j + 1] then begin
          let k = fin (j + 1) in
          emit (Token.Float_lit (float_of_string (String.sub src i (k - i)))) i;
          loop k
        end
        else begin
          emit (Token.Int_lit (int_of_string (String.sub src i (j - i)))) i;
          loop j
        end
      end
      else if c = '\'' then begin
        let buf = Buffer.create 16 in
        let rec fin j =
          if j >= n then raise (Lex_error ("unterminated string literal", i))
          else if src.[j] = '\'' then
            if j + 1 < n && src.[j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              fin (j + 2)
            end
            else j + 1
          else begin
            Buffer.add_char buf src.[j];
            fin (j + 1)
          end
        in
        let j = fin (i + 1) in
        emit (Token.Str_lit (Buffer.contents buf)) i;
        loop j
      end
      else begin
        let two = if i + 1 < n then String.sub src i 2 else "" in
        match two with
        | "<>" | "<=" | ">=" | "!=" ->
          emit (Token.Sym (if two = "!=" then "<>" else two)) i;
          loop (i + 2)
        | _ -> (
          match c with
          | '(' | ')' | ',' | '.' | ';' | '=' | '<' | '>' | '+' | '-' | '*'
          | '/' | '%' | '?' ->
            emit (Token.Sym (String.make 1 c)) i;
            loop (i + 1)
          | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, i)))
      end
  in
  loop 0;
  List.rev !out
