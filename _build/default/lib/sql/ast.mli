(** SQL abstract syntax. The subset is dictated by what scheduling protocols
    need (the paper's Listing 1 plus DML for the scheduler's bookkeeping):
    SELECT with WITH/CTEs, joins, correlated (NOT) EXISTS, IN, set operations,
    grouping/aggregates, ORDER BY/LIMIT; INSERT / DELETE / UPDATE;
    CREATE/DROP TABLE. *)

type binop =
  | Eq | Neq | Lt | Leq | Gt | Geq
  | Add | Sub | Mul | Div | Mod
  | And | Or

type agg = Count_star | Count | Sum | Min | Max | Avg

type expr =
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Bool_lit of bool
  | Null_lit
  | Ref of string option * string  (** [qualifier.]name *)
  | Placeholder of int  (** [?], numbered left to right from 0 *)
  | Bin of binop * expr * expr
  | Neg of expr  (** unary minus *)
  | Not of expr
  | Is_null of expr * bool  (** [true] = IS NOT NULL *)
  | Exists of full_query
  | In_list of expr * expr list * bool  (** [true] = NOT IN *)
  | In_query of expr * full_query * bool
  | Agg_call of agg * expr option
  | Case of expr option * (expr * expr) list * expr option
      (** [CASE [e] WHEN w THEN r ... [ELSE d] END]; the operand form
          compares [e] against each [w] *)

and select_item =
  | Item of expr * string option  (** expr [AS alias] *)
  | Star  (** [*] *)
  | Rel_star of string  (** [alias.*] *)

and join_kind = Jinner | Jleft

and from_item =
  | From_table of string * string option  (** name [AS alias] *)
  | From_sub of full_query * string  (** (query) AS alias *)
  | From_join of from_item * join_kind * from_item * expr option  (** ON *)

and select_body = {
  distinct : bool;
  items : select_item list;
  from : from_item list;  (** comma-separated; empty = one-row dual *)
  where : expr option;
  group_by : expr list;
  having : expr option;
}

and set_op = Union | Except | Intersect

and query =
  | Select of select_body
  | Set_op of set_op * bool * query * query  (** op, ALL?, left, right *)

and order_key = expr * bool  (** expr, ascending? *)

and full_query = {
  withs : (string * full_query) list;
  body : query;
  order_by : order_key list;
  limit : int option;
}

type column_def = string * Ds_relal.Schema.ty

type stmt =
  | Select_stmt of full_query
  | Explain of { analyze : bool; query : full_query }
  | Insert of {
      table : string;
      columns : string list option;
      source : [ `Values of expr list list | `Query of full_query ];
    }
  | Delete of { table : string; where : expr option }
  | Update of { table : string; sets : (string * expr) list; where : expr option }
  | Create_table of { name : string; cols : column_def list }
  | Create_index of { table : string; cols : string list; ordered : bool }
  | Drop_table of string

val pp_expr : Format.formatter -> expr -> unit
