type t =
  | Ident of string
  | Kw of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Sym of string
  | Eof

let keywords =
  [
    "SELECT"; "FROM"; "WHERE"; "GROUP"; "BY"; "HAVING"; "ORDER"; "ASC"; "DESC";
    "LIMIT"; "DISTINCT"; "AS"; "WITH"; "UNION"; "EXCEPT"; "INTERSECT"; "ALL";
    "AND"; "OR"; "NOT"; "IS"; "NULL"; "TRUE"; "FALSE"; "EXISTS"; "IN"; "BETWEEN";
    "JOIN"; "LEFT"; "INNER"; "OUTER"; "ON"; "CROSS";
    "INSERT"; "INTO"; "VALUES"; "DELETE"; "UPDATE"; "SET";
    "CREATE"; "DROP"; "TABLE"; "INDEX"; "ORDERED"; "EXPLAIN"; "ANALYZE";
    "COUNT"; "SUM"; "MIN"; "MAX"; "AVG";
    "CASE"; "WHEN"; "THEN"; "ELSE"; "END";
    "INT"; "INTEGER"; "FLOAT"; "REAL"; "TEXT"; "VARCHAR"; "BOOL"; "BOOLEAN";
  ]

let keyword_set =
  let tbl = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.replace tbl k ()) keywords;
  tbl

let is_keyword s = Hashtbl.mem keyword_set (String.uppercase_ascii s)

let to_string = function
  | Ident s -> s
  | Kw s -> s
  | Int_lit i -> string_of_int i
  | Float_lit f -> Printf.sprintf "%g" f
  | Str_lit s -> "'" ^ s ^ "'"
  | Sym s -> s
  | Eof -> "<eof>"

let pp ppf t = Format.pp_print_string ppf (to_string t)
