open Ds_relal

exception Compile_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Compile_error s)) fmt

type env = {
  catalog : Catalog.t;
  (* CTEs in scope: name -> compiled plan (inlined at each reference). *)
  ctes : (string * Ra.plan) list;
  (* Placeholder cells, allocated on first use; shared with the caller so a
     prepared plan can be re-parameterized. *)
  params : (int, Value.t ref) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* Helpers                                                            *)
(* ------------------------------------------------------------------ *)

let binop_cmp : Ast.binop -> Ra.cmp option = function
  | Ast.Eq -> Some Ra.Eq
  | Ast.Neq -> Some Ra.Neq
  | Ast.Lt -> Some Ra.Lt
  | Ast.Leq -> Some Ra.Leq
  | Ast.Gt -> Some Ra.Gt
  | Ast.Geq -> Some Ra.Geq
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.And | Ast.Or -> None

let binop_arith : Ast.binop -> Ra.arith option = function
  | Ast.Add -> Some Ra.Add
  | Ast.Sub -> Some Ra.Sub
  | Ast.Mul -> Some Ra.Mul
  | Ast.Div -> Some Ra.Div
  | Ast.Mod -> Some Ra.Mod
  | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Leq | Ast.Gt | Ast.Geq | Ast.And | Ast.Or ->
    None

(* Lift an already-compiled expression one scope deeper: its current-row
   references become references to the first enclosing row. Used when a probe
   expression is moved inside a subquery (IN lowering). [d] tracks how many
   Exists boundaries we have descended into within the expression itself. *)
let lift_expr e =
  let rec in_expr d = function
    | Ra.Col i -> if d = 0 then Ra.Outer (1, i) else Ra.Col i
    | Ra.Outer (k, i) -> if k > d then Ra.Outer (k + 1, i) else Ra.Outer (k, i)
    | (Ra.Const _ | Ra.Param _) as e -> e
    | Ra.Cmp (c, a, b) -> Ra.Cmp (c, in_expr d a, in_expr d b)
    | Ra.Arith (o, a, b) -> Ra.Arith (o, in_expr d a, in_expr d b)
    | Ra.And (a, b) -> Ra.And (in_expr d a, in_expr d b)
    | Ra.Or (a, b) -> Ra.Or (in_expr d a, in_expr d b)
    | Ra.Not e -> Ra.Not (in_expr d e)
    | Ra.Is_null e -> Ra.Is_null (in_expr d e)
    | Ra.In_list (e, vs) -> Ra.In_list (in_expr d e, vs)
    | Ra.Case (arms, default) ->
      Ra.Case
        ( List.map (fun (c, r) -> (in_expr d c, in_expr d r)) arms,
          in_expr d default )
    | Ra.Exists p -> Ra.Exists (in_plan (d + 1) p)
  and in_plan d = function
    | (Ra.Scan _ | Ra.Values _) as p -> p
    | Ra.Filter (e, p) -> Ra.Filter (in_expr d e, in_plan d p)
    | Ra.Project (cols, p) ->
      Ra.Project (List.map (fun (e, c) -> (in_expr d e, c)) cols, in_plan d p)
    | Ra.Cross (l, r) -> Ra.Cross (in_plan d l, in_plan d r)
    | Ra.Join j ->
      Ra.Join
        {
          j with
          lkeys = List.map (in_expr d) j.lkeys;
          rkeys = List.map (in_expr d) j.rkeys;
          residual = Option.map (in_expr d) j.residual;
          left = in_plan d j.left;
          right = in_plan d j.right;
        }
    | Ra.Union_all (l, r) -> Ra.Union_all (in_plan d l, in_plan d r)
    | Ra.Union (l, r) -> Ra.Union (in_plan d l, in_plan d r)
    | Ra.Except (l, r) -> Ra.Except (in_plan d l, in_plan d r)
    | Ra.Intersect (l, r) -> Ra.Intersect (in_plan d l, in_plan d r)
    | Ra.Distinct p -> Ra.Distinct (in_plan d p)
    | Ra.Limit (n, p) -> Ra.Limit (n, in_plan d p)
    | Ra.Sort (keys, p) ->
      Ra.Sort (List.map (fun (e, dir) -> (in_expr d e, dir)) keys, in_plan d p)
    | Ra.Group { keys; aggs; input } ->
      let map_agg = function
        | Ra.Count_star -> Ra.Count_star
        | Ra.Count e -> Ra.Count (in_expr d e)
        | Ra.Sum e -> Ra.Sum (in_expr d e)
        | Ra.Min e -> Ra.Min (in_expr d e)
        | Ra.Max e -> Ra.Max (in_expr d e)
        | Ra.Avg e -> Ra.Avg (in_expr d e)
      in
      Ra.Group
        {
          keys = List.map (fun (e, c) -> (in_expr d e, c)) keys;
          aggs = List.map (fun (a, c) -> (map_agg a, c)) aggs;
          input = in_plan d input;
        }
  in
  in_expr 0 e

(* Best-effort output type inference for projected columns (display only). *)
let rec infer_ty (schemas : Schema.t list) (e : Ra.expr) : Schema.ty =
  match e with
  | Ra.Col i -> (
    match schemas with
    | s :: _ when i < Schema.arity s -> s.(i).Schema.ty
    | _ -> Schema.Tint)
  | Ra.Outer (d, i) -> (
    match List.nth_opt schemas d with
    | Some s when i < Schema.arity s -> s.(i).Schema.ty
    | _ -> Schema.Tint)
  | Ra.Const (Value.Int _) -> Schema.Tint
  | Ra.Const (Value.Float _) -> Schema.Tfloat
  | Ra.Const (Value.Str _) -> Schema.Tstr
  | Ra.Const (Value.Bool _) -> Schema.Tbool
  | Ra.Const Value.Null -> Schema.Tint
  | Ra.Param _ -> Schema.Tint
  | Ra.Cmp _ | Ra.And _ | Ra.Or _ | Ra.Not _ | Ra.Is_null _ | Ra.Exists _
  | Ra.In_list _ -> Schema.Tbool
  | Ra.Arith (_, a, b) -> (
    match (infer_ty schemas a, infer_ty schemas b) with
    | Schema.Tfloat, _ | _, Schema.Tfloat -> Schema.Tfloat
    | _ -> Schema.Tint)
  | Ra.Case (arms, default) -> (
    match arms with
    | (_, r) :: _ -> infer_ty schemas r
    | [] -> infer_ty schemas default)

(* ------------------------------------------------------------------ *)
(* Expression compilation                                             *)
(* ------------------------------------------------------------------ *)

(* [scopes]: head is the current row's schema, tail the enclosing rows'. *)
let rec compile_expr env (scopes : Schema.t list) (e : Ast.expr) : Ra.expr =
  match e with
  | Ast.Int_lit i -> Ra.Const (Value.Int i)
  | Ast.Float_lit f -> Ra.Const (Value.Float f)
  | Ast.Str_lit s -> Ra.Const (Value.Str s)
  | Ast.Bool_lit b -> Ra.Const (Value.Bool b)
  | Ast.Null_lit -> Ra.Const Value.Null
  | Ast.Ref (rel, name) -> resolve scopes ~rel ~name
  | Ast.Placeholder k ->
    let cell =
      match Hashtbl.find_opt env.params k with
      | Some cell -> cell
      | None ->
        let cell = ref Value.Null in
        Hashtbl.add env.params k cell;
        cell
    in
    Ra.Param cell
  | Ast.Bin (op, a, b) -> (
    match op with
    | Ast.And -> Ra.And (compile_expr env scopes a, compile_expr env scopes b)
    | Ast.Or -> Ra.Or (compile_expr env scopes a, compile_expr env scopes b)
    | _ -> (
      match binop_cmp op with
      | Some c -> Ra.Cmp (c, compile_expr env scopes a, compile_expr env scopes b)
      | None ->
        let o = Option.get (binop_arith op) in
        Ra.Arith (o, compile_expr env scopes a, compile_expr env scopes b)))
  | Ast.Neg e ->
    Ra.Arith (Ra.Sub, Ra.Const (Value.Int 0), compile_expr env scopes e)
  | Ast.Not e -> Ra.Not (compile_expr env scopes e)
  | Ast.Is_null (e, negated) ->
    let x = Ra.Is_null (compile_expr env scopes e) in
    if negated then Ra.Not x else x
  | Ast.Exists q -> Ra.Exists (compile_full_query env ~outer:scopes q)
  | Ast.In_list (e, items, negated) ->
    let probe = compile_expr env scopes e in
    let consts =
      List.map
        (fun item ->
          match compile_expr env scopes item with
          | Ra.Const v -> v
          | _ -> fail "IN list elements must be constants")
        items
    in
    let x = Ra.In_list (probe, consts) in
    if negated then Ra.Not x else x
  | Ast.In_query (e, q, negated) ->
    (* e IN (SELECT c FROM ...)  ~>  EXISTS (SELECT ... WHERE c = e') *)
    let probe = compile_expr env scopes e in
    let sub = compile_full_query env ~outer:scopes q in
    let sub_schema = Ra.schema_of sub in
    if Schema.arity sub_schema <> 1 then
      fail "IN subquery must return exactly one column";
    let filtered = Ra.Filter (Ra.Cmp (Ra.Eq, Ra.Col 0, lift_expr probe), sub) in
    let x = Ra.Exists filtered in
    if negated then Ra.Not x else x
  | Ast.Case (operand, arms, default) ->
    let default =
      match default with
      | Some d -> compile_expr env scopes d
      | None -> Ra.Const Value.Null
    in
    let arms =
      match operand with
      | None ->
        List.map
          (fun (w, r) -> (compile_expr env scopes w, compile_expr env scopes r))
          arms
      | Some e ->
        (* Simple form: compare the operand against each WHEN value. The
           operand expression is duplicated per arm; fine for the small
           expressions protocols use. *)
        let op = compile_expr env scopes e in
        List.map
          (fun (w, r) ->
            (Ra.Cmp (Ra.Eq, op, compile_expr env scopes w), compile_expr env scopes r))
          arms
    in
    Ra.Case (arms, default)
  | Ast.Agg_call _ -> fail "aggregate used outside SELECT list or HAVING"

and resolve scopes ~rel ~name =
  let rec loop depth = function
    | [] -> (
      match rel with
      | Some r -> fail "unknown column %s.%s" r name
      | None -> fail "unknown column %s" name)
    | s :: rest -> (
      match Schema.find s ~rel ~name with
      | Ok i -> if depth = 0 then Ra.Col i else Ra.Outer (depth, i)
      | Error `Ambiguous ->
        (match rel with
        | Some r -> fail "ambiguous column %s.%s" r name
        | None -> fail "ambiguous column %s" name)
      | Error `Unknown -> loop (depth + 1) rest)
  in
  loop 0 scopes

(* ------------------------------------------------------------------ *)
(* FROM clause                                                        *)
(* ------------------------------------------------------------------ *)

(* Identity projection renaming all columns to qualifier [rel], preserving
   column names. *)
and requalified_view rel plan =
  let s = Ra.schema_of plan in
  let cols =
    Array.to_list
      (Array.mapi
         (fun i (c : Schema.column) ->
           (Ra.Col i, { c with Schema.rel = Some rel }))
         s)
  in
  Ra.Project (cols, plan)

and compile_from_item env ~outer (f : Ast.from_item) : Ra.plan =
  match f with
  | Ast.From_table (name, alias) -> (
    let alias = Option.value ~default:name alias in
    match List.assoc_opt name env.ctes with
    | Some plan -> requalified_view alias plan
    | None -> (
      match Catalog.find_opt env.catalog name with
      | Some t -> Ra.Scan (t, Some alias)
      | None -> fail "unknown table %s" name))
  | Ast.From_sub (q, alias) ->
    requalified_view alias (compile_full_query env ~outer q)
  | Ast.From_join (l, kind, r, on) -> (
    let pl = compile_from_item env ~outer l in
    let pr = compile_from_item env ~outer r in
    let left_arity = Schema.arity (Ra.schema_of pl) in
    let joined_schema = Schema.concat (Ra.schema_of pl) (Ra.schema_of pr) in
    match kind with
    | Ast.Jinner -> (
      match on with
      | None -> Ra.Cross (pl, pr)
      | Some on ->
        let pred = compile_expr env (joined_schema :: outer) on in
        Ra.Filter (pred, Ra.Cross (pl, pr)))
    | Ast.Jleft ->
      let lkeys, rkeys, residual =
        match on with
        | None -> ([], [], None)
        | Some on ->
          let pred = compile_expr env (joined_schema :: outer) on in
          Optimizer.split_join_on ~left_arity pred
      in
      Ra.Join { kind = Ra.Left; lkeys; rkeys; residual; left = pl; right = pr })

(* ------------------------------------------------------------------ *)
(* SELECT bodies                                                      *)
(* ------------------------------------------------------------------ *)

and compile_select env ~outer (b : Ast.select_body) : Ra.plan =
  let from_plan =
    match b.from with
    | [] -> Ra.Values ([||], [ [||] ])
    | f :: rest ->
      List.fold_left
        (fun acc f -> Ra.Cross (acc, compile_from_item env ~outer f))
        (compile_from_item env ~outer f)
        rest
  in
  let row_schema = Ra.schema_of from_plan in
  let scopes = row_schema :: outer in
  let filtered =
    match b.where with
    | None -> from_plan
    | Some w -> Ra.Filter (compile_expr env scopes w, from_plan)
  in
  let has_aggregates =
    let rec expr_has_agg = function
      | Ast.Agg_call _ -> true
      | Ast.Bin (_, a, b) -> expr_has_agg a || expr_has_agg b
      | Ast.Neg e | Ast.Not e | Ast.Is_null (e, _) -> expr_has_agg e
      | Ast.In_list (e, items, _) -> List.exists expr_has_agg (e :: items)
      | Ast.In_query (e, _, _) -> expr_has_agg e
      | Ast.Case (operand, arms, default) ->
        Option.fold ~none:false ~some:expr_has_agg operand
        || List.exists (fun (w, r) -> expr_has_agg w || expr_has_agg r) arms
        || Option.fold ~none:false ~some:expr_has_agg default
      | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _ | Ast.Bool_lit _
      | Ast.Null_lit | Ast.Ref _ | Ast.Placeholder _ | Ast.Exists _ -> false
    in
    b.group_by <> []
    || Option.fold ~none:false ~some:expr_has_agg b.having
    || List.exists
         (function Ast.Item (e, _) -> expr_has_agg e | Ast.Star | Ast.Rel_star _ -> false)
         b.items
  in
  let plan =
    if has_aggregates then compile_aggregate env ~scopes ~filtered b
    else compile_plain env ~scopes ~row_schema ~filtered b
  in
  if b.distinct then Ra.Distinct plan else plan

and item_name i (item : Ast.select_item) =
  match item with
  | Ast.Item (_, Some alias) -> alias
  | Ast.Item (Ast.Ref (_, name), None) -> name
  | Ast.Item (_, None) -> Printf.sprintf "col%d" i
  | Ast.Star | Ast.Rel_star _ -> assert false

and compile_plain env ~scopes ~row_schema ~filtered (b : Ast.select_body) =
  match b.items with
  | [ Ast.Star ] -> filtered (* SELECT * keeps the row as is *)
  | items ->
    let cols =
      List.concat
        (List.mapi
           (fun i item ->
             match item with
             | Ast.Star ->
               Array.to_list
                 (Array.mapi (fun j (c : Schema.column) -> (Ra.Col j, c)) row_schema)
             | Ast.Rel_star rel ->
               let matching =
                 List.filteri
                   (fun _ ((_, c) : Ra.expr * Schema.column) ->
                     match c.Schema.rel with
                     | Some r -> String.lowercase_ascii r = String.lowercase_ascii rel
                     | None -> false)
                   (Array.to_list
                      (Array.mapi
                         (fun j (c : Schema.column) -> ((Ra.Col j : Ra.expr), c))
                         row_schema))
               in
               if matching = [] then fail "%s.* matches no columns" rel
               else matching
             | Ast.Item (e, _) ->
               let compiled = compile_expr env scopes e in
               let name = item_name i item in
               let ty = infer_ty scopes compiled in
               [ (compiled, Schema.column name ty) ])
           items)
    in
    Ra.Project (cols, filtered)

and compile_aggregate env ~scopes ~filtered (b : Ast.select_body) =
  (* Collect every syntactically distinct aggregate call from the SELECT list
     and HAVING. *)
  let agg_calls = ref [] in
  let note e =
    let rec walk = function
      | Ast.Agg_call _ as a ->
        if not (List.exists (fun x -> x = a) !agg_calls) then
          agg_calls := !agg_calls @ [ a ]
      | Ast.Bin (_, x, y) ->
        walk x;
        walk y
      | Ast.Neg x | Ast.Not x | Ast.Is_null (x, _) -> walk x
      | Ast.In_list (x, items, _) -> List.iter walk (x :: items)
      | Ast.In_query (x, _, _) -> walk x
      | Ast.Case (operand, arms, default) ->
        Option.iter walk operand;
        List.iter
          (fun (w, r) ->
            walk w;
            walk r)
          arms;
        Option.iter walk default
      | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _ | Ast.Bool_lit _
      | Ast.Null_lit | Ast.Ref _ | Ast.Placeholder _ | Ast.Exists _ -> ()
    in
    walk e
  in
  List.iter
    (function
      | Ast.Item (e, _) -> note e
      | Ast.Star | Ast.Rel_star _ -> fail "* not allowed with GROUP BY / aggregates")
    b.items;
  Option.iter note b.having;
  let keys =
    List.mapi
      (fun i e ->
        let compiled = compile_expr env scopes e in
        let name =
          match e with Ast.Ref (_, n) -> n | _ -> Printf.sprintf "k%d" i
        in
        (compiled, Schema.column name (infer_ty scopes compiled)))
      b.group_by
  in
  let compile_agg (a : Ast.expr) =
    match a with
    | Ast.Agg_call (Ast.Count_star, _) -> Ra.Count_star
    | Ast.Agg_call (fn, Some arg) -> (
      let e = compile_expr env scopes arg in
      match fn with
      | Ast.Count -> Ra.Count e
      | Ast.Sum -> Ra.Sum e
      | Ast.Min -> Ra.Min e
      | Ast.Max -> Ra.Max e
      | Ast.Avg -> Ra.Avg e
      | Ast.Count_star -> assert false)
    | _ -> fail "malformed aggregate"
  in
  let aggs =
    List.mapi
      (fun i a ->
        let ty =
          match a with
          | Ast.Agg_call ((Ast.Count_star | Ast.Count), _) -> Schema.Tint
          | Ast.Agg_call (Ast.Avg, _) -> Schema.Tfloat
          | _ -> Schema.Tint
        in
        (compile_agg a, Schema.column (Printf.sprintf "agg%d" i) ty))
      !agg_calls
  in
  let group = Ra.Group { keys; aggs; input = filtered } in
  let nkeys = List.length keys in
  (* Rewrite post-aggregation expressions over the Group output row:
     a group-by expression becomes its key column, an aggregate its agg
     column. *)
  let rec rewrite (e : Ast.expr) : Ra.expr =
    let key_index =
      List.find_index (fun g -> g = e) b.group_by
    in
    match key_index with
    | Some i -> Ra.Col i
    | None -> (
      match List.find_index (fun a -> a = e) !agg_calls with
      | Some i -> Ra.Col (nkeys + i)
      | None -> (
        match e with
        | Ast.Int_lit i -> Ra.Const (Value.Int i)
        | Ast.Float_lit f -> Ra.Const (Value.Float f)
        | Ast.Str_lit s -> Ra.Const (Value.Str s)
        | Ast.Bool_lit b -> Ra.Const (Value.Bool b)
        | Ast.Null_lit -> Ra.Const Value.Null
        | Ast.Bin (op, a, b) -> (
          match op with
          | Ast.And -> Ra.And (rewrite a, rewrite b)
          | Ast.Or -> Ra.Or (rewrite a, rewrite b)
          | _ -> (
            match binop_cmp op with
            | Some c -> Ra.Cmp (c, rewrite a, rewrite b)
            | None -> Ra.Arith (Option.get (binop_arith op), rewrite a, rewrite b)))
        | Ast.Neg x -> Ra.Arith (Ra.Sub, Ra.Const (Value.Int 0), rewrite x)
        | Ast.Not x -> Ra.Not (rewrite x)
        | Ast.Is_null (x, neg) ->
          let r = Ra.Is_null (rewrite x) in
          if neg then Ra.Not r else r
        | Ast.Placeholder _ -> fail "placeholders not allowed after GROUP BY"
        | Ast.Ref (_, n) ->
          fail "column %s must appear in GROUP BY or inside an aggregate" n
        | _ -> fail "unsupported expression over aggregated result"))
  in
  let group_schema = Ra.schema_of group in
  let having_filtered =
    match b.having with
    | None -> group
    | Some h -> Ra.Filter (rewrite h, group)
  in
  let cols =
    List.mapi
      (fun i item ->
        match item with
        | Ast.Item (e, _) ->
          let compiled = rewrite e in
          (compiled, Schema.column (item_name i item) (infer_ty [ group_schema ] compiled))
        | Ast.Star | Ast.Rel_star _ -> assert false)
      b.items
  in
  Ra.Project (cols, having_filtered)

(* ------------------------------------------------------------------ *)
(* Queries                                                            *)
(* ------------------------------------------------------------------ *)

and compile_set_query env ~outer (q : Ast.query) : Ra.plan =
  match q with
  | Ast.Select b -> compile_select env ~outer b
  | Ast.Set_op (op, all, l, r) ->
    let pl = compile_set_query env ~outer l in
    let pr = compile_set_query env ~outer r in
    let la = Schema.arity (Ra.schema_of pl)
    and ra = Schema.arity (Ra.schema_of pr) in
    if la <> ra then
      fail "set operation arity mismatch: %d vs %d columns" la ra;
    (match (op, all) with
    | Ast.Union, true -> Ra.Union_all (pl, pr)
    | Ast.Union, false -> Ra.Union (pl, pr)
    | Ast.Except, _ -> Ra.Except (pl, pr)
    | Ast.Intersect, _ -> Ra.Intersect (pl, pr))

and compile_full_query env ?(outer = []) (q : Ast.full_query) : Ra.plan =
  (* CTEs see earlier CTEs but not enclosing-query columns. *)
  let env =
    List.fold_left
      (fun env (name, cq) ->
        let plan = compile_full_query env ~outer:[] cq in
        { env with ctes = (name, plan) :: env.ctes })
      env q.withs
  in
  let body = compile_set_query env ~outer q.body in
  let sorted =
    match q.order_by with [] -> body | keys -> compile_order env body keys
  in
  match q.limit with None -> sorted | Some n -> Ra.Limit (n, sorted)

(* ORDER BY keys resolve against the output columns (including aliases) and,
   as in standard SQL, may also reference underlying FROM columns that were
   not projected. The latter are carried through the projection as hidden
   columns, used for sorting, then dropped. *)
and compile_order env body keys =
  let out_schema = Ra.schema_of body in
  let compile_key (e, asc) =
    let dir = if asc then `Asc else `Desc in
    match e with
    | Ast.Int_lit n ->
      if n < 1 || n > Schema.arity out_schema then
        fail "ORDER BY position %d out of range" n;
      (`Output (Ra.Col (n - 1)), dir)
    | e -> (
      match compile_expr env [ out_schema ] e with
      | compiled -> (`Output compiled, dir)
      | exception Compile_error _ -> (`Underlying e, dir))
  in
  let compiled = List.map compile_key keys in
  if List.for_all (function `Output _, _ -> true | _ -> false) compiled then
    Ra.Sort
      ( List.map
          (function `Output k, dir -> (k, dir) | `Underlying _, _ -> assert false)
          compiled,
        body )
  else begin
    (* Need hidden sort columns; only possible directly above a projection. *)
    match body with
    | Ra.Project (cols, sub) ->
      let sub_schema = Ra.schema_of sub in
      let n_visible = List.length cols in
      let hidden = ref [] in
      let keys =
        List.map
          (fun (k, dir) ->
            match k with
            | `Output (Ra.Col i) -> ((Ra.Col i : Ra.expr), dir)
            | `Output e -> (e, dir)
            | `Underlying ast ->
              let compiled = compile_expr env [ sub_schema ] ast in
              let pos = n_visible + List.length !hidden in
              hidden :=
                !hidden
                @ [
                    ( compiled,
                      Schema.column
                        (Printf.sprintf "__sort%d" (List.length !hidden))
                        (infer_ty [ sub_schema ] compiled) );
                  ];
              (Ra.Col pos, dir))
          compiled
      in
      let extended = Ra.Project (cols @ !hidden, sub) in
      let sorted = Ra.Sort (keys, extended) in
      (* Drop the hidden columns again. *)
      let visible =
        List.mapi (fun i (_, c) -> ((Ra.Col i : Ra.expr), c)) cols
      in
      Ra.Project (visible, sorted)
    | _ ->
      fail
        "ORDER BY column not in the select list (unsupported over DISTINCT or \
         set operations)"
  end

(* ------------------------------------------------------------------ *)
(* Entry points                                                       *)
(* ------------------------------------------------------------------ *)

let fresh_env catalog = { catalog; ctes = []; params = Hashtbl.create 4 }

let compile_query_params catalog q =
  let env = fresh_env catalog in
  let plan = compile_full_query env ~outer:[] q in
  (plan, env.params)

let compile_query catalog q = fst (compile_query_params catalog q)

let compile_predicate catalog schema e =
  compile_expr (fresh_env catalog) [ schema ] e

let const_value e =
  let compiled = compile_expr (fresh_env (Catalog.create ())) [ [||] ] e in
  match compiled with
  | Ra.Const v -> v
  | e -> (
    try Eval.eval_expr ~row:[||] e
    with _ -> fail "expected a constant expression")
