(** Statement execution against a {!Catalog}: the "database" a declarative
    scheduler runs its protocol queries on. *)

open Ds_relal

type result =
  | Rows of Schema.t * Value.t array list  (** SELECT *)
  | Affected of int  (** INSERT/DELETE/UPDATE row count *)
  | Done  (** DDL *)

exception Exec_error of string

(** [exec ?optimize cat sql] parses, compiles, optimizes (default [`Full])
    and runs one statement. *)
val exec : ?optimize:Optimizer.level -> Catalog.t -> string -> result

(** SELECT only; @raise Exec_error if the statement is not a query. *)
val query : ?optimize:Optimizer.level -> Catalog.t -> string -> Schema.t * Value.t array list

(** Runs a semicolon-separated script, returning the last result. *)
val exec_script : ?optimize:Optimizer.level -> Catalog.t -> string -> result

(** Compile a query once for repeated execution (the scheduler compiles its
    protocol query at configuration time, then re-runs it every cycle). *)
val prepare : ?optimize:Optimizer.level -> Catalog.t -> string -> Ra.plan

(** A prepared statement with [?] placeholders. *)
type prepared

(** @raise Exec_error if the query uses no placeholders it later binds. *)
val prepare_params : ?optimize:Optimizer.level -> Catalog.t -> string -> prepared

val prepared_plan : prepared -> Ra.plan

(** [bind p k v] sets placeholder [k] (0-based, left to right).
    @raise Exec_error on an unknown placeholder index. *)
val bind : prepared -> int -> Value.t -> unit

val run_prepared : prepared -> Value.t array list

val run_plan : Ra.plan -> Value.t array list

(** Renders a result set as an ASCII table (for the CLI and examples). *)
val render : Schema.t -> Value.t array list -> string
