(** Binder and lowering: SQL AST → {!Ds_relal.Ra} plans.

    Name resolution is lexically scoped: references first resolve against the
    current SELECT's FROM row, then against enclosing queries (producing
    [Ra.Outer] references, i.e. correlated subqueries).

    Deviations from full SQL, documented for users:
    - [IN (subquery)] lowers to an equality-filtered [EXISTS], so a NULL probe
      value yields FALSE rather than UNKNOWN (indistinguishable in WHERE) and
      [NOT IN] over a subquery containing NULLs yields TRUE for non-matching
      rows rather than UNKNOWN;
    - CTEs cannot reference columns of enclosing queries (as in standard SQL);
    - set operations require equal arity but do not coerce types. *)

open Ds_relal

exception Compile_error of string

val compile_query : Catalog.t -> Ast.full_query -> Ra.plan

(** Like {!compile_query}, also returning the placeholder cells ([?]s,
    numbered left to right from 0) so the caller can bind them before
    evaluation. *)
val compile_query_params :
  Catalog.t -> Ast.full_query -> Ra.plan * (int, Value.t ref) Hashtbl.t

(** [compile_predicate cat schema e] compiles a boolean expression against a
    single-row scope (used for DELETE/UPDATE WHERE). *)
val compile_predicate : Catalog.t -> Schema.t -> Ast.expr -> Ra.expr

(** Compile a constant expression (INSERT VALUES); evaluated immediately. *)
val const_value : Ast.expr -> Value.t
