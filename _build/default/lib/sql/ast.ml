type binop =
  | Eq | Neq | Lt | Leq | Gt | Geq
  | Add | Sub | Mul | Div | Mod
  | And | Or

type agg = Count_star | Count | Sum | Min | Max | Avg

type expr =
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Bool_lit of bool
  | Null_lit
  | Ref of string option * string
  | Placeholder of int
  | Bin of binop * expr * expr
  | Neg of expr
  | Not of expr
  | Is_null of expr * bool
  | Exists of full_query
  | In_list of expr * expr list * bool
  | In_query of expr * full_query * bool
  | Agg_call of agg * expr option
  | Case of expr option * (expr * expr) list * expr option

and select_item = Item of expr * string option | Star | Rel_star of string

and join_kind = Jinner | Jleft

and from_item =
  | From_table of string * string option
  | From_sub of full_query * string
  | From_join of from_item * join_kind * from_item * expr option

and select_body = {
  distinct : bool;
  items : select_item list;
  from : from_item list;
  where : expr option;
  group_by : expr list;
  having : expr option;
}

and set_op = Union | Except | Intersect

and query = Select of select_body | Set_op of set_op * bool * query * query

and order_key = expr * bool

and full_query = {
  withs : (string * full_query) list;
  body : query;
  order_by : order_key list;
  limit : int option;
}

type column_def = string * Ds_relal.Schema.ty

type stmt =
  | Select_stmt of full_query
  | Explain of { analyze : bool; query : full_query }
  | Insert of {
      table : string;
      columns : string list option;
      source : [ `Values of expr list list | `Query of full_query ];
    }
  | Delete of { table : string; where : expr option }
  | Update of { table : string; sets : (string * expr) list; where : expr option }
  | Create_table of { name : string; cols : column_def list }
  | Create_index of { table : string; cols : string list; ordered : bool }
  | Drop_table of string

let binop_to_string = function
  | Eq -> "=" | Neq -> "<>" | Lt -> "<" | Leq -> "<=" | Gt -> ">" | Geq -> ">="
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | And -> "AND" | Or -> "OR"

let rec pp_expr ppf = function
  | Int_lit i -> Format.pp_print_int ppf i
  | Float_lit f -> Format.fprintf ppf "%g" f
  | Str_lit s -> Format.fprintf ppf "'%s'" s
  | Bool_lit b -> Format.pp_print_string ppf (if b then "TRUE" else "FALSE")
  | Null_lit -> Format.pp_print_string ppf "NULL"
  | Placeholder k -> Format.fprintf ppf "?%d" k
  | Ref (None, n) -> Format.pp_print_string ppf n
  | Ref (Some q, n) -> Format.fprintf ppf "%s.%s" q n
  | Bin (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_to_string op) pp_expr b
  | Neg e -> Format.fprintf ppf "(-%a)" pp_expr e
  | Not e -> Format.fprintf ppf "(NOT %a)" pp_expr e
  | Is_null (e, false) -> Format.fprintf ppf "(%a IS NULL)" pp_expr e
  | Is_null (e, true) -> Format.fprintf ppf "(%a IS NOT NULL)" pp_expr e
  | Exists _ -> Format.pp_print_string ppf "EXISTS(...)"
  | In_list (e, _, neg) ->
    Format.fprintf ppf "(%a %sIN (...))" pp_expr e (if neg then "NOT " else "")
  | In_query (e, _, neg) ->
    Format.fprintf ppf "(%a %sIN (SELECT ...))" pp_expr e (if neg then "NOT " else "")
  | Case _ -> Format.pp_print_string ppf "CASE ... END"
  | Agg_call (Count_star, _) -> Format.pp_print_string ppf "COUNT(*)"
  | Agg_call (agg, e) ->
    let name =
      match agg with
      | Count -> "COUNT" | Sum -> "SUM" | Min -> "MIN" | Max -> "MAX"
      | Avg -> "AVG" | Count_star -> assert false
    in
    Format.fprintf ppf "%s(%a)" name
      (fun ppf -> function
        | Some e -> pp_expr ppf e
        | None -> Format.pp_print_string ppf "*")
      e
