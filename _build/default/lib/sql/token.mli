(** SQL tokens. Keywords are recognized case-insensitively by the lexer and
    carried as [Kw]; identifiers are lower-cased ([Ident]). *)

type t =
  | Ident of string
  | Kw of string  (** upper-cased keyword *)
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Sym of string  (** punctuation / operator: ( ) , . ; = <> < <= > >= + - * / % *)
  | Eof

val keywords : string list
val is_keyword : string -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
