exception Parse_error of string * int

type state = { mutable toks : (Token.t * int) list; mutable n_params : int }

let err st msg =
  let pos = match st.toks with (_, p) :: _ -> p | [] -> -1 in
  raise (Parse_error (msg, pos))

let peek st = match st.toks with (t, _) :: _ -> t | [] -> Token.Eof

let peek2 st = match st.toks with _ :: (t, _) :: _ -> t | _ -> Token.Eof

let peek3 st = match st.toks with _ :: _ :: (t, _) :: _ -> t | _ -> Token.Eof

let advance st =
  match st.toks with (_ :: rest) -> st.toks <- rest | [] -> ()

let eat_kw st kw =
  match peek st with
  | Token.Kw k when k = kw -> advance st
  | t -> err st (Printf.sprintf "expected %s, found %s" kw (Token.to_string t))

let try_kw st kw =
  match peek st with
  | Token.Kw k when k = kw ->
    advance st;
    true
  | _ -> false

let eat_sym st sym =
  match peek st with
  | Token.Sym s when s = sym -> advance st
  | t -> err st (Printf.sprintf "expected '%s', found %s" sym (Token.to_string t))

let try_sym st sym =
  match peek st with
  | Token.Sym s when s = sym ->
    advance st;
    true
  | _ -> false

let ident st =
  match peek st with
  | Token.Ident name ->
    advance st;
    name
  | t -> err st (Printf.sprintf "expected identifier, found %s" (Token.to_string t))

(* ------------------------------------------------------------------ *)
(* Expressions                                                        *)
(* ------------------------------------------------------------------ *)

let agg_of_kw = function
  | "COUNT" -> Some Ast.Count
  | "SUM" -> Some Ast.Sum
  | "MIN" -> Some Ast.Min
  | "MAX" -> Some Ast.Max
  | "AVG" -> Some Ast.Avg
  | _ -> None

let rec parse_or st =
  let left = parse_and st in
  if try_kw st "OR" then Ast.Bin (Ast.Or, left, parse_or st) else left

and parse_and st =
  let left = parse_not st in
  if try_kw st "AND" then Ast.Bin (Ast.And, left, parse_and st) else left

and parse_not st =
  if try_kw st "NOT" then Ast.Not (parse_not st) else parse_comparison st

and parse_comparison st =
  let left = parse_additive st in
  match peek st with
  | Token.Sym "=" ->
    advance st;
    Ast.Bin (Ast.Eq, left, parse_additive st)
  | Token.Sym "<>" ->
    advance st;
    Ast.Bin (Ast.Neq, left, parse_additive st)
  | Token.Sym "<" ->
    advance st;
    Ast.Bin (Ast.Lt, left, parse_additive st)
  | Token.Sym "<=" ->
    advance st;
    Ast.Bin (Ast.Leq, left, parse_additive st)
  | Token.Sym ">" ->
    advance st;
    Ast.Bin (Ast.Gt, left, parse_additive st)
  | Token.Sym ">=" ->
    advance st;
    Ast.Bin (Ast.Geq, left, parse_additive st)
  | Token.Kw "IS" ->
    advance st;
    let negated = try_kw st "NOT" in
    eat_kw st "NULL";
    Ast.Is_null (left, negated)
  | Token.Kw "NOT" when peek2 st = Token.Kw "IN" ->
    advance st;
    advance st;
    parse_in st left true
  | Token.Kw "IN" ->
    advance st;
    parse_in st left false
  | Token.Kw "NOT" when peek2 st = Token.Kw "BETWEEN" ->
    advance st;
    advance st;
    Ast.Not (parse_between st left)
  | Token.Kw "BETWEEN" ->
    advance st;
    parse_between st left
  | _ -> left

(* x BETWEEN lo AND hi desugars to x >= lo AND x <= hi (x is duplicated;
   expressions are pure). *)
and parse_between st left =
  let lo = parse_additive st in
  eat_kw st "AND";
  let hi = parse_additive st in
  Ast.Bin (Ast.And, Ast.Bin (Ast.Geq, left, lo), Ast.Bin (Ast.Leq, left, hi))

and parse_in st left negated =
  eat_sym st "(";
  match peek st with
  | Token.Kw "SELECT" | Token.Kw "WITH" ->
    let q = parse_full_query st in
    eat_sym st ")";
    Ast.In_query (left, q, negated)
  | _ ->
    let rec items acc =
      let e = parse_or st in
      if try_sym st "," then items (e :: acc) else List.rev (e :: acc)
    in
    let vs = items [] in
    eat_sym st ")";
    Ast.In_list (left, vs, negated)

and parse_additive st =
  let left = parse_multiplicative st in
  let rec loop left =
    match peek st with
    | Token.Sym "+" ->
      advance st;
      loop (Ast.Bin (Ast.Add, left, parse_multiplicative st))
    | Token.Sym "-" ->
      advance st;
      loop (Ast.Bin (Ast.Sub, left, parse_multiplicative st))
    | _ -> left
  in
  loop left

and parse_multiplicative st =
  let left = parse_unary st in
  let rec loop left =
    match peek st with
    | Token.Sym "*" ->
      advance st;
      loop (Ast.Bin (Ast.Mul, left, parse_unary st))
    | Token.Sym "/" ->
      advance st;
      loop (Ast.Bin (Ast.Div, left, parse_unary st))
    | Token.Sym "%" ->
      advance st;
      loop (Ast.Bin (Ast.Mod, left, parse_unary st))
    | _ -> left
  in
  loop left

and parse_unary st =
  if try_sym st "-" then Ast.Neg (parse_unary st) else parse_primary st

and parse_primary st =
  match peek st with
  | Token.Int_lit i ->
    advance st;
    Ast.Int_lit i
  | Token.Float_lit f ->
    advance st;
    Ast.Float_lit f
  | Token.Str_lit s ->
    advance st;
    Ast.Str_lit s
  | Token.Kw "NULL" ->
    advance st;
    Ast.Null_lit
  | Token.Kw "TRUE" ->
    advance st;
    Ast.Bool_lit true
  | Token.Kw "FALSE" ->
    advance st;
    Ast.Bool_lit false
  | Token.Kw "EXISTS" ->
    advance st;
    eat_sym st "(";
    let q = parse_full_query st in
    eat_sym st ")";
    Ast.Exists q
  | Token.Kw "CASE" ->
    advance st;
    let operand =
      match peek st with Token.Kw "WHEN" -> None | _ -> Some (parse_or st)
    in
    let rec arms acc =
      if try_kw st "WHEN" then begin
        let w = parse_or st in
        eat_kw st "THEN";
        let r = parse_or st in
        arms ((w, r) :: acc)
      end
      else List.rev acc
    in
    let arms = arms [] in
    if arms = [] then err st "CASE requires at least one WHEN arm";
    let default = if try_kw st "ELSE" then Some (parse_or st) else None in
    eat_kw st "END";
    Ast.Case (operand, arms, default)
  | Token.Kw kw when agg_of_kw kw <> None ->
    advance st;
    eat_sym st "(";
    let agg = Option.get (agg_of_kw kw) in
    if agg = Ast.Count && try_sym st "*" then begin
      eat_sym st ")";
      Ast.Agg_call (Ast.Count_star, None)
    end
    else begin
      let e = parse_or st in
      eat_sym st ")";
      Ast.Agg_call (agg, Some e)
    end
  | Token.Sym "?" ->
    advance st;
    let k = st.n_params in
    st.n_params <- st.n_params + 1;
    Ast.Placeholder k
  | Token.Sym "(" -> (
    advance st;
    match peek st with
    | Token.Kw "SELECT" | Token.Kw "WITH" ->
      err st "scalar subqueries are not supported (use EXISTS or IN)"
    | _ ->
      let e = parse_or st in
      eat_sym st ")";
      e)
  | Token.Ident name -> (
    advance st;
    if try_sym st "." then Ast.Ref (Some name, ident st) else Ast.Ref (None, name))
  | t -> err st (Printf.sprintf "unexpected token %s in expression" (Token.to_string t))

(* ------------------------------------------------------------------ *)
(* Queries                                                            *)
(* ------------------------------------------------------------------ *)

and parse_select_items st =
  let item () =
    match (peek st, peek2 st, peek3 st) with
    | Token.Sym "*", _, _ ->
      advance st;
      Ast.Star
    | Token.Ident rel, Token.Sym ".", Token.Sym "*" ->
      advance st;
      advance st;
      advance st;
      Ast.Rel_star rel
    | _ ->
      let e = parse_or st in
      let alias =
        if try_kw st "AS" then Some (ident st)
        else
          match peek st with
          | Token.Ident a ->
            advance st;
            Some a
          | _ -> None
      in
      Ast.Item (e, alias)
  in
  let rec loop acc =
    let i = item () in
    if try_sym st "," then loop (i :: acc) else List.rev (i :: acc)
  in
  loop []

and parse_from_primary st =
  match peek st with
  | Token.Sym "(" ->
    advance st;
    let q = parse_full_query st in
    eat_sym st ")";
    let alias =
      if try_kw st "AS" then ident st
      else
        match peek st with
        | Token.Ident a ->
          advance st;
          a
        | _ -> err st "subquery in FROM requires an alias"
    in
    Ast.From_sub (q, alias)
  | _ ->
    let name = ident st in
    let alias =
      if try_kw st "AS" then Some (ident st)
      else
        match peek st with
        | Token.Ident a ->
          advance st;
          Some a
        | _ -> None
    in
    Ast.From_table (name, alias)

and parse_from_item st =
  let left = parse_from_primary st in
  let rec joins left =
    match peek st with
    | Token.Kw "JOIN" ->
      advance st;
      let right = parse_from_primary st in
      let on = if try_kw st "ON" then Some (parse_or st) else None in
      joins (Ast.From_join (left, Ast.Jinner, right, on))
    | Token.Kw "INNER" ->
      advance st;
      eat_kw st "JOIN";
      let right = parse_from_primary st in
      let on = if try_kw st "ON" then Some (parse_or st) else None in
      joins (Ast.From_join (left, Ast.Jinner, right, on))
    | Token.Kw "LEFT" ->
      advance st;
      ignore (try_kw st "OUTER");
      eat_kw st "JOIN";
      let right = parse_from_primary st in
      let on = if try_kw st "ON" then Some (parse_or st) else None in
      joins (Ast.From_join (left, Ast.Jleft, right, on))
    | Token.Kw "CROSS" ->
      advance st;
      eat_kw st "JOIN";
      let right = parse_from_primary st in
      joins (Ast.From_join (left, Ast.Jinner, right, None))
    | _ -> left
  in
  joins left

and parse_select_body st =
  eat_kw st "SELECT";
  let distinct = try_kw st "DISTINCT" in
  let items = parse_select_items st in
  let from =
    if try_kw st "FROM" then begin
      let rec loop acc =
        let f = parse_from_item st in
        if try_sym st "," then loop (f :: acc) else List.rev (f :: acc)
      in
      loop []
    end
    else []
  in
  let where = if try_kw st "WHERE" then Some (parse_or st) else None in
  let group_by =
    if try_kw st "GROUP" then begin
      eat_kw st "BY";
      let rec loop acc =
        let e = parse_or st in
        if try_sym st "," then loop (e :: acc) else List.rev (e :: acc)
      in
      loop []
    end
    else []
  in
  let having = if try_kw st "HAVING" then Some (parse_or st) else None in
  { Ast.distinct; items; from; where; group_by; having }

(* A set-operation operand: a SELECT body or a parenthesized set query. *)
and parse_set_operand st =
  match peek st with
  | Token.Kw "SELECT" -> Ast.Select (parse_select_body st)
  | Token.Sym "(" ->
    advance st;
    let q = parse_set_query st in
    eat_sym st ")";
    q
  | t -> err st (Printf.sprintf "expected SELECT or '(', found %s" (Token.to_string t))

and parse_set_query st =
  let left = parse_set_operand st in
  let rec loop left =
    let op =
      match peek st with
      | Token.Kw "UNION" -> Some Ast.Union
      | Token.Kw "EXCEPT" -> Some Ast.Except
      | Token.Kw "INTERSECT" -> Some Ast.Intersect
      | _ -> None
    in
    match op with
    | None -> left
    | Some op ->
      advance st;
      let all = try_kw st "ALL" in
      let right = parse_set_operand st in
      loop (Ast.Set_op (op, all, left, right))
  in
  loop left

and parse_full_query st =
  let withs =
    if try_kw st "WITH" then begin
      let rec loop acc =
        let name = ident st in
        eat_kw st "AS";
        eat_sym st "(";
        let q = parse_full_query st in
        eat_sym st ")";
        let acc = (name, q) :: acc in
        if try_sym st "," then loop acc else List.rev acc
      in
      loop []
    end
    else []
  in
  let body = parse_set_query st in
  let order_by =
    if try_kw st "ORDER" then begin
      eat_kw st "BY";
      let rec loop acc =
        let e = parse_or st in
        let asc =
          if try_kw st "DESC" then false
          else begin
            ignore (try_kw st "ASC");
            true
          end
        in
        let acc = (e, asc) :: acc in
        if try_sym st "," then loop acc else List.rev acc
      in
      loop []
    end
    else []
  in
  let limit =
    if try_kw st "LIMIT" then begin
      match peek st with
      | Token.Int_lit n ->
        advance st;
        Some n
      | _ -> err st "expected integer after LIMIT"
    end
    else None
  in
  { Ast.withs; body; order_by; limit }

(* ------------------------------------------------------------------ *)
(* Statements                                                         *)
(* ------------------------------------------------------------------ *)

let parse_ty st =
  match peek st with
  | Token.Kw ("INT" | "INTEGER") ->
    advance st;
    Ds_relal.Schema.Tint
  | Token.Kw ("FLOAT" | "REAL") ->
    advance st;
    Ds_relal.Schema.Tfloat
  | Token.Kw ("TEXT" | "VARCHAR") ->
    advance st;
    if try_sym st "(" then begin
      (match peek st with
      | Token.Int_lit _ -> advance st
      | _ -> err st "expected length");
      eat_sym st ")"
    end;
    Ds_relal.Schema.Tstr
  | Token.Kw ("BOOL" | "BOOLEAN") ->
    advance st;
    Ds_relal.Schema.Tbool
  | t -> err st (Printf.sprintf "expected a type, found %s" (Token.to_string t))

let parse_statement st =
  match peek st with
  | Token.Kw "SELECT" | Token.Kw "WITH" | Token.Sym "(" ->
    Ast.Select_stmt (parse_full_query st)
  | Token.Kw "EXPLAIN" ->
    advance st;
    let analyze = try_kw st "ANALYZE" in
    Ast.Explain { analyze; query = parse_full_query st }
  | Token.Kw "INSERT" ->
    advance st;
    eat_kw st "INTO";
    let table = ident st in
    let columns =
      if peek st = Token.Sym "(" then begin
        advance st;
        let rec loop acc =
          let c = ident st in
          if try_sym st "," then loop (c :: acc) else List.rev (c :: acc)
        in
        let cols = loop [] in
        eat_sym st ")";
        Some cols
      end
      else None
    in
    let source =
      if try_kw st "VALUES" then begin
        let tuple () =
          eat_sym st "(";
          let rec loop acc =
            let e = parse_or st in
            if try_sym st "," then loop (e :: acc) else List.rev (e :: acc)
          in
          let vs = loop [] in
          eat_sym st ")";
          vs
        in
        let rec tuples acc =
          let t = tuple () in
          if try_sym st "," then tuples (t :: acc) else List.rev (t :: acc)
        in
        `Values (tuples [])
      end
      else `Query (parse_full_query st)
    in
    Ast.Insert { table; columns; source }
  | Token.Kw "DELETE" ->
    advance st;
    eat_kw st "FROM";
    let table = ident st in
    let where = if try_kw st "WHERE" then Some (parse_or st) else None in
    Ast.Delete { table; where }
  | Token.Kw "UPDATE" ->
    advance st;
    let table = ident st in
    eat_kw st "SET";
    let rec sets acc =
      let col = ident st in
      eat_sym st "=";
      let e = parse_or st in
      let acc = (col, e) :: acc in
      if try_sym st "," then sets acc else List.rev acc
    in
    let sets = sets [] in
    let where = if try_kw st "WHERE" then Some (parse_or st) else None in
    Ast.Update { table; sets; where }
  | Token.Kw "CREATE" -> (
    advance st;
    match peek st with
    | Token.Kw "ORDERED" ->
      advance st;
      eat_kw st "INDEX";
      eat_kw st "ON";
      let table = ident st in
      eat_sym st "(";
      let col = ident st in
      eat_sym st ")";
      Ast.Create_index { table; cols = [ col ]; ordered = true }
    | Token.Kw "TABLE" ->
      advance st;
      let name = ident st in
      eat_sym st "(";
      let rec cols acc =
        let c = ident st in
        let ty = parse_ty st in
        let acc = (c, ty) :: acc in
        if try_sym st "," then cols acc else List.rev acc
      in
      let cols = cols [] in
      eat_sym st ")";
      Ast.Create_table { name; cols }
    | Token.Kw "INDEX" ->
      advance st;
      eat_kw st "ON";
      let table = ident st in
      eat_sym st "(";
      let rec cols acc =
        let c = ident st in
        if try_sym st "," then cols (c :: acc) else List.rev (c :: acc)
      in
      let cols = cols [] in
      eat_sym st ")";
      Ast.Create_index { table; cols; ordered = false }
    | t -> err st (Printf.sprintf "expected TABLE or INDEX, found %s" (Token.to_string t)))
  | Token.Kw "DROP" ->
    advance st;
    eat_kw st "TABLE";
    Ast.Drop_table (ident st)
  | t -> err st (Printf.sprintf "unexpected token %s at start of statement" (Token.to_string t))

let finish st what =
  ignore (try_sym st ";");
  match peek st with
  | Token.Eof -> ()
  | t ->
    err st (Printf.sprintf "trailing input after %s: %s" what (Token.to_string t))

let parse_stmt src =
  let st = { toks = Lexer.tokenize src; n_params = 0 } in
  let s = parse_statement st in
  finish st "statement";
  s

let parse_script src =
  let st = { toks = Lexer.tokenize src; n_params = 0 } in
  let rec loop acc =
    match peek st with
    | Token.Eof -> List.rev acc
    | Token.Sym ";" ->
      advance st;
      loop acc
    | _ ->
      let s = parse_statement st in
      (match peek st with
      | Token.Sym ";" | Token.Eof -> ()
      | t -> err st (Printf.sprintf "expected ';', found %s" (Token.to_string t)));
      loop (s :: acc)
  in
  loop []

let parse_query src =
  let st = { toks = Lexer.tokenize src; n_params = 0 } in
  let q = parse_full_query st in
  finish st "query";
  q

let parse_expr src =
  let st = { toks = Lexer.tokenize src; n_params = 0 } in
  let e = parse_or st in
  (match peek st with
  | Token.Eof -> ()
  | t -> err st (Printf.sprintf "trailing input after expression: %s" (Token.to_string t)));
  e
