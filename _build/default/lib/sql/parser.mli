(** Recursive-descent SQL parser over {!Lexer} tokens.

    Notes on the accepted grammar:
    - set operations (UNION / EXCEPT / INTERSECT) associate left and share one
      precedence level; use parentheses to group (as the paper's Listing 1
      does);
    - ORDER BY accepts expressions or 1-based output column positions;
    - scalar subqueries are not supported (subqueries appear under EXISTS, IN
      and FROM). *)

exception Parse_error of string * int  (** message, byte offset *)

val parse_stmt : string -> Ast.stmt

(** Semicolon-separated script; empty statements ignored. *)
val parse_script : string -> Ast.stmt list

(** Convenience: parse a query (SELECT / WITH...) only. *)
val parse_query : string -> Ast.full_query

(** Parse a standalone scalar/boolean expression (used by the rule DSL). *)
val parse_expr : string -> Ast.expr
