open Ds_relal

type result =
  | Rows of Schema.t * Value.t array list
  | Affected of int
  | Done

exception Exec_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Exec_error s)) fmt

let run_select ~optimize catalog q =
  let plan = Compile.compile_query catalog q in
  let plan = Optimizer.optimize ~level:optimize plan in
  (Ra.schema_of plan, Eval.run plan)

let row_of_values table columns values =
  let schema = Table.schema table in
  let arity = Schema.arity schema in
  match columns with
  | None ->
    if List.length values <> arity then
      fail "INSERT into %s: %d values for %d columns" (Table.name table)
        (List.length values) arity;
    Array.of_list values
  | Some cols ->
    if List.length cols <> List.length values then
      fail "INSERT into %s: column/value count mismatch" (Table.name table);
    let row = Array.make arity Value.Null in
    List.iter2
      (fun col v ->
        match Schema.find schema ~rel:None ~name:col with
        | Ok i -> row.(i) <- v
        | Error `Unknown -> fail "INSERT: unknown column %s" col
        | Error `Ambiguous -> fail "INSERT: ambiguous column %s" col)
      cols values;
    row

let exec_stmt ~optimize catalog (stmt : Ast.stmt) =
  match stmt with
  | Ast.Select_stmt q ->
    let schema, rows = run_select ~optimize catalog q in
    Rows (schema, rows)
  | Ast.Explain { analyze; query } ->
    let plan = Compile.compile_query catalog query in
    let plan = Optimizer.optimize ~level:optimize plan in
    let text =
      if analyze then
        let _, stats = Profile.run plan in
        Profile.render stats
      else Format.asprintf "%a" Ra.pp_plan plan
    in
    let rows =
      String.split_on_char '\n' text
      |> List.filter (fun l -> String.trim l <> "")
      |> List.map (fun line -> [| Value.Str line |])
    in
    Rows ([| Schema.column "plan" Schema.Tstr |], rows)
  | Ast.Insert { table; columns; source } -> (
    let t = Catalog.find catalog table in
    match source with
    | `Values tuples ->
      let rows =
        List.map
          (fun exprs -> row_of_values t columns (List.map Compile.const_value exprs))
          tuples
      in
      Table.insert_many t rows;
      Affected (List.length rows)
    | `Query q ->
      let _, rows = run_select ~optimize catalog q in
      let rows = List.map (fun r -> row_of_values t columns (Array.to_list r)) rows in
      Table.insert_many t rows;
      Affected (List.length rows))
  | Ast.Delete { table; where } -> (
    let t = Catalog.find catalog table in
    match where with
    | None ->
      let n = Table.row_count t in
      Table.clear t;
      Affected n
    | Some w ->
      let schema = Schema.requalify table (Table.schema t) in
      let pred = Compile.compile_predicate catalog schema w in
      Affected (Table.delete_where t (fun row -> Eval.truthy (Eval.eval_expr ~row pred))))
  | Ast.Update { table; sets; where } ->
    let t = Catalog.find catalog table in
    let schema = Schema.requalify table (Table.schema t) in
    let pred =
      match where with
      | None -> Ra.Const (Value.Bool true)
      | Some w -> Compile.compile_predicate catalog schema w
    in
    let compiled_sets =
      List.map
        (fun (col, e) ->
          match Schema.find schema ~rel:None ~name:col with
          | Ok i -> (i, Compile.compile_predicate catalog schema e)
          | Error `Unknown -> fail "UPDATE: unknown column %s" col
          | Error `Ambiguous -> fail "UPDATE: ambiguous column %s" col)
        sets
    in
    Affected
      (Table.update_where t
         (fun row -> Eval.truthy (Eval.eval_expr ~row pred))
         (fun row ->
           let news =
             List.map (fun (i, e) -> (i, Eval.eval_expr ~row e)) compiled_sets
           in
           List.iter (fun (i, v) -> row.(i) <- v) news))
  | Ast.Create_table { name; cols } ->
    if Catalog.find_opt catalog name <> None then
      fail "table %s already exists" name;
    let schema =
      Schema.of_list (List.map (fun (n, ty) -> Schema.column n ty) cols)
    in
    Catalog.register catalog (Table.create ~name schema);
    Done
  | Ast.Create_index { table; cols; ordered } ->
    let t = Catalog.find catalog table in
    let positions =
      List.map
        (fun c ->
          match Schema.find (Table.schema t) ~rel:None ~name:c with
          | Ok i -> i
          | Error `Unknown -> fail "CREATE INDEX: unknown column %s" c
          | Error `Ambiguous -> fail "CREATE INDEX: ambiguous column %s" c)
        cols
    in
    (match (ordered, positions) with
    | false, _ -> Table.create_index t positions
    | true, [ col ] -> Table.create_ordered_index t col
    | true, _ -> fail "ORDERED INDEX takes exactly one column");
    Done
  | Ast.Drop_table name ->
    if Catalog.find_opt catalog name = None then fail "unknown table %s" name;
    Catalog.drop catalog name;
    Done

let exec ?(optimize = `Full) catalog sql =
  exec_stmt ~optimize catalog (Parser.parse_stmt sql)

let query ?(optimize = `Full) catalog sql =
  match exec ~optimize catalog sql with
  | Rows (schema, rows) -> (schema, rows)
  | Affected _ | Done -> fail "expected a SELECT statement"

let exec_script ?(optimize = `Full) catalog sql =
  let stmts = Parser.parse_script sql in
  List.fold_left (fun _ stmt -> exec_stmt ~optimize catalog stmt) Done stmts

let prepare ?(optimize = `Full) catalog sql =
  let q = Parser.parse_query sql in
  Optimizer.optimize ~level:optimize (Compile.compile_query catalog q)

type prepared = { plan : Ra.plan; params : (int, Value.t ref) Hashtbl.t }

let prepare_params ?(optimize = `Full) catalog sql =
  let q = Parser.parse_query sql in
  let plan, params = Compile.compile_query_params catalog q in
  { plan = Optimizer.optimize ~level:optimize plan; params }

let prepared_plan p = p.plan

let bind p k v =
  match Hashtbl.find_opt p.params k with
  | Some cell -> cell := v
  | None -> fail "no placeholder ?%d in prepared statement" k

let run_prepared p = Eval.run p.plan

let run_plan plan = Eval.run plan

let render schema rows =
  let headers =
    Array.to_list
      (Array.map
         (fun (c : Schema.column) ->
           match c.Schema.rel with
           | Some r -> r ^ "." ^ c.Schema.name
           | None -> c.Schema.name)
         schema)
  in
  let table = Ds_util.Tablefmt.create headers in
  List.iter
    (fun row ->
      Ds_util.Tablefmt.add_row table
        (Array.to_list
           (Array.map
              (fun v ->
                match v with
                | Value.Str s -> s (* unquoted for display *)
                | v -> Value.to_string v)
              row)))
    rows;
  Ds_util.Tablefmt.render table
