lib/sql/catalog.mli: Ds_relal Table
