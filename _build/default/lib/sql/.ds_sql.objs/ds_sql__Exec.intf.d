lib/sql/exec.mli: Catalog Ds_relal Optimizer Ra Schema Value
