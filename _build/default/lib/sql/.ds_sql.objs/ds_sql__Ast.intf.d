lib/sql/ast.mli: Ds_relal Format
