lib/sql/catalog.ml: Ds_relal Hashtbl List String Table
