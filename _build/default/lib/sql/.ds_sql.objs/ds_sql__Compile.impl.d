lib/sql/compile.ml: Array Ast Catalog Ds_relal Eval Format Hashtbl List Optimizer Option Printf Ra Schema String Value
