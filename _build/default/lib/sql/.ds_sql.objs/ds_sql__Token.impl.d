lib/sql/token.ml: Format Hashtbl List Printf String
