lib/sql/ast.ml: Ds_relal Format
