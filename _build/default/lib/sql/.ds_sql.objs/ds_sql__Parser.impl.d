lib/sql/parser.ml: Ast Ds_relal Lexer List Option Printf Token
