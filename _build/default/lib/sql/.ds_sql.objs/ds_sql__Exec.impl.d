lib/sql/exec.ml: Array Ast Catalog Compile Ds_relal Ds_util Eval Format Hashtbl List Optimizer Parser Profile Ra Schema String Table Value
