lib/sql/token.mli: Format
