lib/sql/compile.mli: Ast Catalog Ds_relal Hashtbl Ra Schema Value
