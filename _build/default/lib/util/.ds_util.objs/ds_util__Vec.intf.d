lib/util/vec.mli:
