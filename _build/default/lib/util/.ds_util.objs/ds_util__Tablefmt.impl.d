lib/util/tablefmt.ml: Array Buffer List String
