lib/util/tablefmt.mli:
