(** Plain-text table rendering for experiment reports (paper-style tables). *)

type align = Left | Right | Center

type t

(** [create headers] starts a table with the given column headers. All rows
    must have the same arity as [headers]. *)
val create : ?aligns:align list -> string list -> t

val add_row : t -> string list -> unit

(** Adds a horizontal separator line at the current position. *)
val add_sep : t -> unit

(** Renders with box-drawing in ASCII ([+---+] style). *)
val render : t -> string

(** [print t] renders to stdout followed by a newline. *)
val print : t -> unit
