type align = Left | Right | Center

type line = Row of string list | Sep

type t = {
  headers : string list;
  aligns : align list;
  mutable lines : line list; (* reversed *)
}

let create ?aligns headers =
  let aligns =
    match aligns with
    | Some a ->
      if List.length a <> List.length headers then
        invalid_arg "Tablefmt.create: aligns arity mismatch";
      a
    | None -> List.map (fun _ -> Left) headers
  in
  { headers; aligns; lines = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Tablefmt.add_row: arity mismatch";
  t.lines <- Row row :: t.lines

let add_sep t = t.lines <- Sep :: t.lines

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = width - n in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
      let l = fill / 2 in
      String.make l ' ' ^ s ^ String.make (fill - l) ' '

let render t =
  let lines = List.rev t.lines in
  let widths = Array.of_list (List.map String.length t.headers) in
  let update row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter (function Row r -> update r | Sep -> ()) lines;
  let buf = Buffer.create 256 in
  let sep_line () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let data_line row =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        let align = List.nth t.aligns i in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad align widths.(i) cell);
        Buffer.add_string buf " |")
      row;
    Buffer.add_char buf '\n'
  in
  sep_line ();
  data_line t.headers;
  sep_line ();
  List.iter (function Row r -> data_line r | Sep -> sep_line ()) lines;
  sep_line ();
  Buffer.contents buf

let print t = print_string (render t)
