(** Online summary statistics (Welford's algorithm): mean, variance, min, max
    over a stream of floats, in O(1) memory. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int

(** 0.0 when empty. *)
val mean : t -> float

(** Unbiased sample variance; 0.0 with fewer than two samples. *)
val variance : t -> float

val stddev : t -> float

(** @raise Invalid_argument when empty. *)
val min : t -> float

val max : t -> float
val sum : t -> float
val clear : t -> unit

(** [merge a b] is a fresh summary equivalent to having observed both
    streams. *)
val merge : t -> t -> t

val pp : Format.formatter -> t -> unit
