(** Averaging a keyed metric over repeated experiment runs, as the paper does
    ("averaged results over multiple runs"). Keys are the x-axis points of a
    sweep (e.g. client counts). *)

type t

val create : unit -> t

(** [observe t ~key value] records one run's measurement at [key]. *)
val observe : t -> key:int -> float -> unit

(** Mean over runs at [key]; @raise Not_found if never observed. *)
val mean : t -> key:int -> float

val stddev : t -> key:int -> float
val runs : t -> key:int -> int

(** Sorted [(key, mean, stddev, runs)] rows. *)
val rows : t -> (int * float * float * int) list
