type t = { mutable v : int }

type registry = (string, t) Hashtbl.t

let create_registry () = Hashtbl.create 16

let counter reg name =
  match Hashtbl.find_opt reg name with
  | Some c -> c
  | None ->
    let c = { v = 0 } in
    Hashtbl.add reg name c;
    c

let incr c = c.v <- c.v + 1

let add c n = c.v <- c.v + n

let value c = c.v

let reset c = c.v <- 0

let reset_all reg = Hashtbl.iter (fun _ c -> reset c) reg

let dump reg =
  Hashtbl.fold (fun name c acc -> (name, c.v) :: acc) reg []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_registry ppf reg =
  List.iter (fun (name, v) -> Format.fprintf ppf "%s=%d@ " name v) (dump reg)
