type t = (int, Summary.t) Hashtbl.t

let create () = Hashtbl.create 16

let summary t key =
  match Hashtbl.find_opt t key with
  | Some s -> s
  | None ->
    let s = Summary.create () in
    Hashtbl.add t key s;
    s

let observe t ~key v = Summary.add (summary t key) v

let find t key =
  match Hashtbl.find_opt t key with Some s -> s | None -> raise Not_found

let mean t ~key = Summary.mean (find t key)

let stddev t ~key = Summary.stddev (find t key)

let runs t ~key = Summary.count (find t key)

let rows t =
  Hashtbl.fold
    (fun key s acc -> (key, Summary.mean s, Summary.stddev s, Summary.count s) :: acc)
    t []
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> Int.compare a b)
