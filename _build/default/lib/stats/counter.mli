(** Named monotonic counters grouped in a registry, for experiment
    bookkeeping (statements executed, deadlocks, aborts, ...). *)

type t

type registry

val create_registry : unit -> registry

(** [counter reg name] returns the counter registered under [name], creating
    it at zero on first use. *)
val counter : registry -> string -> t

val incr : t -> unit
val add : t -> int -> unit
val value : t -> int
val reset : t -> unit
val reset_all : registry -> unit

(** All counters as [(name, value)], sorted by name. *)
val dump : registry -> (string * int) list

val pp_registry : Format.formatter -> registry -> unit
