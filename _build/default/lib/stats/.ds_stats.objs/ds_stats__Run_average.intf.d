lib/stats/run_average.mli:
