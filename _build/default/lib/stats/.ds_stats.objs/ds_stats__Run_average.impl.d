lib/stats/run_average.ml: Hashtbl Int List Summary
