lib/stats/throughput.ml: Hashtbl List Option
