lib/stats/throughput.mli:
