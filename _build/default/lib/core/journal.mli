(** Write-ahead journal for the scheduler state.

    In the paper's architecture the request relations live in a DBMS and are
    durable; our embedded relations are not, so a middleware crash would lose
    the pending backlog. The journal records every state transition as one
    line:

    {v
    S id,ta,intrata,op,obj,sla,arrival    request submitted (Trace format)
    Q ta intrata                          request qualified -> history
    A ta                                  transaction aborted by the scheduler
    P                                     history pruned
    v}

    Recovery replays a journal — possibly truncated mid-write by a crash —
    into a fresh relation set: submitted-but-unqualified requests are pending
    again, qualified ones are back in history, and a trailing partial line is
    ignored. The replay is protocol-independent: scheduling decisions are
    facts in the log, not re-derived. *)

open Ds_model

type t

(** [open_ path] appends to [path] (created if missing). *)
val open_ : string -> t

val close : t -> unit
val log_submit : t -> Request.t -> unit
val log_qualified : t -> (int * int) list -> unit
val log_abort : t -> int -> unit
val log_prune : t -> unit

(** Flushes buffered entries to the OS (called by the scheduler at the end of
    every cycle). *)
val flush : t -> unit

type recovered = {
  pending : Request.t list;  (** submitted, not yet qualified, not aborted *)
  history : Request.t list;  (** qualified, in qualification order *)
  aborted : int list;  (** transactions aborted by the middleware *)
  replayed : int;  (** journal lines applied *)
}

(** Replays a journal file. Unparseable trailing data is tolerated (torn
    write); unparseable data in the middle raises [Failure]. *)
val recover : string -> recovered

(** Rebuilds a relation set from a recovery result: pending requests are
    reinserted into [requests]; the history is restored in order, with abort
    markers for aborted transactions. *)
val restore : recovered -> Relations.t -> unit
