(** A small specialized scheduler-programming language (research objective 4
    and §5: "a suitable declarative scheduler language which is more succinct
    than SQL").

    A protocol definition layers ordering and admission control over a
    consistency rule set, which is either a named built-in or an inline
    Datalog program:

    {v
    protocol premium-first
    guarantee serializable
    rules ss2pl
    order by weight desc, arrival asc
    limit 200
    v}

    {v
    protocol no-read-locks
    guarantee read-committed
    rules datalog {
      finished(TA) :- history_terminal(_, TA, _, 'c').
      ...
      qualified(TA, I) :- requests(_, TA, I, _, _), not blocked(TA, I).
    }
    v}

    Fields available to [order by]: [id], [ta], [intrata], [object],
    [weight], [arrival]. Named rule sets: [ss2pl], [ss2pl-ordered],
    [read-committed], [fcfs] (each resolves to its SQL built-in). *)

exception Rule_error of string

(** Parses a protocol definition and compiles it to a runnable protocol. *)
val compile : string -> Protocol.t

(** The parsed form, exposed for tests. *)
type order_field = Id | Ta | Intrata | Object_ | Weight | Arrival

type definition = {
  name : string;
  guarantee : Protocol.guarantee;
  rules : [ `Builtin of string | `Datalog of string ];
  order_by : (order_field * [ `Asc | `Desc ]) list;
  limit : int option;
}

val parse : string -> definition
