open Ds_model

exception Rule_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Rule_error s)) fmt

type order_field = Id | Ta | Intrata | Object_ | Weight | Arrival

type definition = {
  name : string;
  guarantee : Protocol.guarantee;
  rules : [ `Builtin of string | `Datalog of string ];
  order_by : (order_field * [ `Asc | `Desc ]) list;
  limit : int option;
}

let field_of_string = function
  | "id" -> Id
  | "ta" -> Ta
  | "intrata" -> Intrata
  | "object" -> Object_
  | "weight" -> Weight
  | "arrival" -> Arrival
  | s -> fail "unknown order field %s" s

let guarantee_of_string = function
  | "serializable" -> Protocol.Serializable
  | "read-committed" -> Protocol.Read_committed
  | "fifo" -> Protocol.Fifo_only
  | s -> (
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "custom" ->
      Protocol.Custom (String.sub s (i + 1) (String.length s - i - 1))
    | _ -> fail "unknown guarantee %s" s)

(* Extract an inline datalog block: everything between '{' and the matching
   final '}'. *)
let extract_block text start =
  match String.index_from_opt text start '{' with
  | None -> fail "rules datalog: expected '{'"
  | Some open_idx -> (
    match String.rindex_opt text '}' with
    | None -> fail "rules datalog: missing closing '}'"
    | Some close_idx when close_idx > open_idx ->
      (String.sub text (open_idx + 1) (close_idx - open_idx - 1), close_idx + 1)
    | Some _ -> fail "rules datalog: missing closing '}'")

let words line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let parse text =
  (* Pull out any datalog block first so its lines are not parsed as
     directives. *)
  let datalog_block = ref None in
  let text =
    match
      (* find "datalog" keyword followed by '{' *)
      let re_start =
        let rec find i =
          if i + 7 > String.length text then None
          else if String.sub text i 7 = "datalog" then Some i
          else find (i + 1)
        in
        find 0
      in
      re_start
    with
    | Some i when String.contains_from text i '{' ->
      let block, after = extract_block text i in
      datalog_block := Some block;
      String.sub text 0 i ^ "datalog-inline" ^ String.sub text after (String.length text - after)
    | Some _ | None -> text
  in
  let name = ref None in
  let guarantee = ref Protocol.Serializable in
  let rules = ref None in
  let order_by = ref [] in
  let limit = ref None in
  let parse_order rest =
    (* rest: "by weight desc, arrival asc" *)
    match rest with
    | "by" :: spec ->
      let spec = String.concat " " spec in
      let keys = String.split_on_char ',' spec in
      order_by :=
        List.map
          (fun k ->
            match words k with
            | [ f ] -> (field_of_string f, `Asc)
            | [ f; "asc" ] -> (field_of_string f, `Asc)
            | [ f; "desc" ] -> (field_of_string f, `Desc)
            | _ -> fail "malformed order key %S" k)
          keys
    | _ -> fail "expected 'order by ...'"
  in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         let line =
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line
         in
         match words (String.lowercase_ascii line) with
         | [] -> ()
         | "protocol" :: n :: [] -> name := Some n
         | "guarantee" :: g :: [] -> guarantee := guarantee_of_string g
         | "rules" :: "datalog-inline" :: [] -> (
           match !datalog_block with
           | Some b -> rules := Some (`Datalog b)
           | None -> fail "internal: datalog block missing")
         | "rules" :: r :: [] -> rules := Some (`Builtin r)
         | "order" :: rest -> parse_order rest
         | "limit" :: n :: [] -> (
           match int_of_string_opt n with
           | Some v when v > 0 -> limit := Some v
           | _ -> fail "limit expects a positive integer")
         | w :: _ -> fail "unknown directive %s" w);
  let name = match !name with Some n -> n | None -> fail "missing 'protocol <name>'" in
  let rules =
    match !rules with Some r -> r | None -> fail "missing 'rules <set>'"
  in
  { name; guarantee = !guarantee; rules; order_by = !order_by; limit = !limit }

let base_protocol def =
  match def.rules with
  | `Datalog program ->
    Protocol.of_datalog ~name:(def.name ^ "-rules") ~guarantee:def.guarantee
      program
  | `Builtin "ss2pl" -> Builtin.ss2pl_sql
  | `Builtin "ss2pl-ordered" -> Builtin.ss2pl_ordered_sql
  | `Builtin "read-committed" -> Builtin.read_committed_sql
  | `Builtin "fcfs" -> Builtin.fcfs
  | `Builtin other -> fail "unknown rule set %s" other

let field_value (r : Request.t) = function
  | Id -> float_of_int r.Request.id
  | Ta -> float_of_int r.Request.ta
  | Intrata -> float_of_int r.Request.intrata
  | Object_ -> float_of_int (Option.value ~default:(-1) r.Request.obj)
  | Weight -> float_of_int r.Request.sla.Sla.weight
  | Arrival -> r.Request.arrival

let compile text =
  let def = parse text in
  let base = base_protocol def in
  let spec_loc = Queries.spec_loc text in
  let prepare rels =
    let run_base = base.Protocol.prepare rels in
    fun () ->
      let keys = run_base () in
      if def.order_by = [] && def.limit = None then keys
      else begin
        (* Re-associate keys with full requests for field-based ordering.
           Qualified requests moved nowhere yet: they are still pending. *)
        let by_key = Hashtbl.create 64 in
        List.iter
          (fun (r : Request.t) -> Hashtbl.replace by_key (Request.key r) r)
          (Relations.pending rels);
        let reqs = List.filter_map (Hashtbl.find_opt by_key) keys in
        let cmp a b =
          let rec go = function
            | [] -> Int.compare a.Request.id b.Request.id
            | (f, dir) :: rest ->
              let va = field_value a f and vb = field_value b f in
              let c = Float.compare va vb in
              let c = match dir with `Asc -> c | `Desc -> -c in
              if c <> 0 then c else go rest
          in
          go def.order_by
        in
        let sorted = List.stable_sort cmp reqs in
        let limited =
          match def.limit with
          | None -> sorted
          | Some n ->
            let rec take k = function
              | [] -> []
              | _ when k = 0 -> []
              | x :: rest -> x :: take (k - 1) rest
            in
            take n sorted
        in
        List.map Request.key limited
      end
  in
  {
    Protocol.name = def.name;
    description = "rule-language protocol";
    guarantee = def.guarantee;
    language = base.Protocol.language;
    spec_loc;
    prepare;
  }
