(** Adaptive consistency (the paper's §5 outlook: "an adaptive consistency
    scheduler which varies the applied consistency protocols based on
    metadata and business application requirements", citing Finkelstein et
    al.'s principles for inconsistency).

    The adaptive protocol watches the scheduler's own metadata — the size of
    the pending-requests backlog at cycle time, a direct measure of how much
    the strict protocol is blocking — and switches from the strict to the
    relaxed rule set when the backlog crosses a high watermark, falling back
    once it drains below a low watermark (hysteresis prevents flapping). *)

type t

(** @raise Invalid_argument unless [low_watermark <= high_watermark]. *)
val make :
  ?name:string ->
  strict:Protocol.t ->
  relaxed:Protocol.t ->
  high_watermark:int ->
  low_watermark:int ->
  unit ->
  t

val protocol : t -> Protocol.t

(** Mode currently in force (as of the last cycle). *)
val mode : t -> [ `Strict | `Relaxed ]

(** Number of mode changes so far. *)
val switches : t -> int

(** Convenience: SS2PL that degrades to read-committed under load. *)
val ss2pl_with_relief : high_watermark:int -> low_watermark:int -> t
