(** End-to-end middleware simulation (the architecture of Figure 1): clients
    connect to the scheduler, client workers buffer their requests in the
    incoming queue, a trigger periodically fires the scheduler cycle, and
    qualified requests are executed by the server as a batch with its own
    scheduling disabled. Results return to the clients, which then submit
    their next request (closed loop).

    Scheduler cycles run for real on the embedded relational engine; the
    measured wall-clock time of each cycle is charged to the simulated clock
    (configurable), so throughput reflects genuine declarative-scheduling
    overhead rather than a model of it.

    Transactions whose pending request makes no progress for
    [starvation_cycles] scheduler cycles are aborted and retried with a fresh
    transaction number — the middleware analogue of the native scheduler's
    deadlock handling. *)

open Ds_model
open Ds_workload

type config = {
  n_clients : int;
  duration : float;  (** virtual seconds *)
  spec : Spec.t;
  cost : Ds_server.Cost_model.t;
  seed : int;
  protocol : Protocol.t;
  trigger : Trigger.t;
  extended_relations : bool;
  charge_scheduler_time : bool;
  prune_history : bool;
  starvation_cycles : int;
  passthrough : bool;  (** non-scheduling mode (§3.3) *)
}

val default_config : config

type stats = {
  committed_txns : int;
  committed_stmts : int;
  aborted_txns : int;
  cycles : int;
  mean_cycle_time : float;  (** real seconds per scheduler cycle *)
  p95_cycle_time : float;
  mean_batch : float;  (** qualified requests per cycle *)
  mean_pending : float;  (** pending-table size at cycle start *)
  scheduler_time : float;  (** total real time spent in cycles *)
  mean_txn_latency : float;
  p95_txn_latency : float;
  latency_by_tier : (Sla.tier * float * float * int) list;
      (** (tier, mean, p95, committed txns) *)
}

val run : config -> stats

(** Like {!run}, also returning the scheduler so callers can inspect the
    relations afterwards (e.g. the [rte] execution log). *)
val run_full : config -> stats * Scheduler.t

val pp_stats : Format.formatter -> stats -> unit
