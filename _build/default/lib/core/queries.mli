(** The declarative protocol specifications, as SQL text.

    [ss2pl] is the paper's Listing 1 verbatim (modulo whitespace). The others
    demonstrate the flexibility claim of §1/§2: each is a small textual edit
    of the SS2PL rules, not a scheduler reimplementation. *)

(** Strong 2PL (Listing 1): pending requests executable without violating
    SS2PL given the locks implied by [history]. No ORDER BY (as in the
    paper); callers order by request id. *)
val ss2pl : string

(** SS2PL plus intra-transaction ordering: a request is additionally blocked
    while an earlier request (lower INTRATA) of the same transaction is still
    pending. Drops the paper's "each transaction accesses an object only
    once / whole-transaction batch" assumption. *)
val ss2pl_ordered : string

(** Relaxed consistency in the spirit of read committed: read locks are not
    tracked, writers never wait for readers, and pending reads are not
    blocked by later pending reads; reads still cannot see uncommitted
    writes. *)
val read_committed : string

(** Consistency rationing (cf. Kraska et al., discussed in §2): objects below
    [threshold] are category A and scheduled under full SS2PL; objects at or
    above it are category C and only write-write ordered. *)
val rationing : threshold:int -> string

(** Same protocol with the threshold left as a [?] placeholder (all
    occurrences), so the category boundary can be moved at runtime without
    recompiling — the "adaptable relaxed consistency" of §2. *)
val rationing_parameterized : string

(** Conservative 2PL (static locking): a transaction's requests qualify only
    all-or-nothing — when none of its pending objects conflicts with a held
    lock or with a lower-numbered pending transaction. Deadlock-free by
    construction; meant for whole-transaction batches (the paper's
    pre-scheduled workloads). *)
val c2pl : string

(** Reader offload in the spirit of Ganymed (paper 2: "an algorithm
    differentiating between update and read-only transactions"): reads are
    served as if from a snapshot replica — they never take locks and are
    never blocked — while writes remain write-write ordered against locks
    and each other. *)
val reader_offload : string

(** SS2PL with SLA ordering: qualified requests ordered by descending SLA
    weight, then arrival, then id. Requires extended relations. *)
val sla_ordered : string

(** FCFS: everything qualifies, in arrival (id) order. *)
val fcfs : string

(** Non-empty source lines of a specification (the paper's §3.4 productivity
    metric). *)
val spec_loc : string -> int
