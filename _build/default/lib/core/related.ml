type features = {
  performance : bool;
  qos : bool;
  declarative : bool;
  flexible : bool;
  high_scalability : bool;
}

type approach = {
  name : string;
  reference : string;
  features : features;
  summary : string;
}

let f p q d fl hs =
  { performance = p; qos = q; declarative = d; flexible = fl; high_scalability = hs }

let paper_rows =
  [
    {
      name = "EQMS";
      reference = "Schroeder et al. [20,21]";
      features = f true true false false false;
      summary = "external queue management; MPL tuning; external prioritization";
    };
    {
      name = "Ganymed";
      reference = "Plattner & Alonso [19]";
      features = f true false false false true;
      summary = "replication middleware separating update and read-only txns";
    };
    {
      name = "WLMS";
      reference = "Krompass et al. [16]";
      features = f true true false false false;
      summary = "SLO-aware workload management for OLTP/BI mixes";
    };
    {
      name = "C-JDBC";
      reference = "Cecchet et al. [4]";
      features = f true false false false true;
      summary = "RAIDb database clustering middleware";
    };
    {
      name = "GP";
      reference = "Elnikety et al. [7]";
      features = f true false false false false;
      summary = "gatekeeper proxy: admission control + request scheduling";
    };
    {
      name = "WebQoS";
      reference = "Bhatti & Friedrich [2]";
      features = f true true false true false;
      summary = "server QoS with pluggable scheduling policies";
    };
    {
      name = "QShuffler";
      reference = "Ahmad et al. [1]";
      features = f true false false false false;
      summary = "query-interaction-aware batch scheduling for BI";
    };
  ]

let declarative_scheduler =
  {
    name = "this work";
    reference = "Tilgner [EDBT'10 workshops]";
    features = f true true true true true;
    summary = "protocols as queries over request relations";
  }

let mark b = if b then "+" else "-"

let render_table () =
  let open Ds_util in
  let t =
    Tablefmt.create
      ~aligns:
        [
          Tablefmt.Left; Tablefmt.Center; Tablefmt.Center; Tablefmt.Center;
          Tablefmt.Center; Tablefmt.Center;
        ]
      [ "Approach"; "P"; "QoS"; "D"; "F"; "HS" ]
  in
  List.iter
    (fun a ->
      Tablefmt.add_row t
        [
          a.name;
          mark a.features.performance;
          mark a.features.qos;
          mark a.features.declarative;
          mark a.features.flexible;
          mark a.features.high_scalability;
        ])
    paper_rows;
  Tablefmt.add_sep t;
  let a = declarative_scheduler in
  Tablefmt.add_row t
    [
      a.name;
      mark a.features.performance;
      mark a.features.qos;
      mark a.features.declarative;
      mark a.features.flexible;
      mark a.features.high_scalability;
    ];
  Tablefmt.render t
