type state = { mutable mode : [ `Strict | `Relaxed ]; mutable switches : int }

type t = { proto : Protocol.t; state : state }

let make ?name ~(strict : Protocol.t) ~(relaxed : Protocol.t) ~high_watermark
    ~low_watermark () =
  if low_watermark > high_watermark then
    invalid_arg "Adaptive.make: low_watermark > high_watermark";
  let name =
    Option.value name
      ~default:
        (Printf.sprintf "adaptive(%s->%s)" strict.Protocol.name
           relaxed.Protocol.name)
  in
  let state = { mode = `Strict; switches = 0 } in
  let prepare rels =
    let run_strict = strict.Protocol.prepare rels in
    let run_relaxed = relaxed.Protocol.prepare rels in
    fun () ->
      let backlog = Relations.pending_count rels in
      let next_mode =
        match state.mode with
        | `Strict when backlog >= high_watermark -> `Relaxed
        | `Relaxed when backlog <= low_watermark -> `Strict
        | m -> m
      in
      if next_mode <> state.mode then begin
        state.mode <- next_mode;
        state.switches <- state.switches + 1
      end;
      match state.mode with
      | `Strict -> run_strict ()
      | `Relaxed -> run_relaxed ()
  in
  let proto =
    {
      Protocol.name;
      description =
        Printf.sprintf
          "runs %s; degrades to %s when the pending backlog exceeds %d, \
           recovers below %d"
          strict.Protocol.name relaxed.Protocol.name high_watermark
          low_watermark;
      guarantee = Protocol.Custom "adaptive";
      language = strict.Protocol.language;
      spec_loc = strict.Protocol.spec_loc + relaxed.Protocol.spec_loc;
      prepare;
    }
  in
  { proto; state }

let protocol t = t.proto

let mode t = t.state.mode

let switches t = t.state.switches

let ss2pl_with_relief ~high_watermark ~low_watermark =
  make ~strict:Builtin.ss2pl_sql ~relaxed:Builtin.read_committed_sql
    ~high_watermark ~low_watermark ()
