let ss2pl_sql_at level =
  Protocol.of_sql ~optimize:level
    ~description:"Strong 2PL via the paper's Listing 1"
    ~name:
      (match level with
      | `Full -> "ss2pl-sql"
      | `Basic -> "ss2pl-sql-basic"
      | `None -> "ss2pl-sql-noopt")
    ~guarantee:Protocol.Serializable ~ordered:false Queries.ss2pl

let ss2pl_sql = ss2pl_sql_at `Full

let ss2pl_datalog =
  Protocol.of_datalog ~description:"Strong 2PL as a Datalog program"
    ~name:"ss2pl-datalog" ~guarantee:Protocol.Serializable Datalog_rules.ss2pl

let ss2pl_ocaml =
  Protocol.of_fn ~description:"Hand-coded strong 2PL (imperative baseline)"
    ~name:"ss2pl-ocaml" ~guarantee:Protocol.Serializable
    ~spec_loc:Oracle.implementation_loc Oracle.ss2pl_qualify

let ss2pl_ordered_sql =
  Protocol.of_sql ~description:"SS2PL + intra-transaction ordering"
    ~name:"ss2pl-ordered-sql" ~guarantee:Protocol.Serializable ~ordered:false
    Queries.ss2pl_ordered

let ss2pl_ordered_datalog =
  Protocol.of_datalog ~description:"SS2PL + intra-transaction ordering"
    ~name:"ss2pl-ordered-datalog" ~guarantee:Protocol.Serializable
    Datalog_rules.ss2pl_ordered

let read_committed_sql =
  Protocol.of_sql ~description:"Relaxed consistency: no read locks"
    ~name:"read-committed-sql" ~guarantee:Protocol.Read_committed ~ordered:false
    Queries.read_committed

let read_committed_datalog =
  Protocol.of_datalog ~description:"Relaxed consistency: no read locks"
    ~name:"read-committed-datalog" ~guarantee:Protocol.Read_committed
    Datalog_rules.read_committed

let rationing ~threshold =
  Protocol.of_sql
    ~description:
      (Printf.sprintf
         "Consistency rationing: SS2PL below object %d, relaxed above" threshold)
    ~name:(Printf.sprintf "rationing-%d" threshold)
    ~guarantee:(Protocol.Custom "rationed") ~ordered:false
    (Queries.rationing ~threshold)

let rationing_dynamic ~initial_threshold () =
  let proto, set =
    Protocol.of_sql_dynamic
      ~description:"Consistency rationing with a runtime-tunable boundary"
      ~name:"rationing-dynamic" ~guarantee:(Protocol.Custom "rationed")
      ~ordered:false
      ~initial:(Ds_relal.Value.Int initial_threshold)
      Queries.rationing_parameterized
  in
  (proto, fun threshold -> set (Ds_relal.Value.Int threshold))

let c2pl =
  Protocol.of_sql
    ~description:"Conservative 2PL: a transaction runs only when all its locks are free"
    ~name:"c2pl" ~guarantee:Protocol.Serializable ~ordered:false Queries.c2pl

let reader_offload =
  Protocol.of_sql
    ~description:"Reads as if from a snapshot replica; writes w-w ordered"
    ~name:"reader-offload" ~guarantee:(Protocol.Custom "reader-offload")
    ~ordered:false Queries.reader_offload

let sla_ordered =
  Protocol.of_sql ~description:"SS2PL ordered by SLA weight, then arrival"
    ~name:"sla-ordered" ~guarantee:Protocol.Serializable ~ordered:true
    Queries.sla_ordered

let fcfs =
  Protocol.of_sql ~description:"First come, first served (no isolation)"
    ~name:"fcfs" ~guarantee:Protocol.Fifo_only ~ordered:true Queries.fcfs

let all =
  [
    ss2pl_sql;
    ss2pl_sql_at `Basic;
    ss2pl_sql_at `None;
    ss2pl_datalog;
    ss2pl_ocaml;
    ss2pl_ordered_sql;
    ss2pl_ordered_datalog;
    read_committed_sql;
    read_committed_datalog;
    c2pl;
    reader_offload;
    rationing ~threshold:1000;
    sla_ordered;
    fcfs;
  ]

let find name =
  List.find_opt (fun (p : Protocol.t) -> p.Protocol.name = name) all
