(** Scheduling protocols.

    A protocol is a declarative specification (SQL over the scheduler
    relations, a Datalog program over the request facts, or — for baselines —
    a hand-coded OCaml function) that, given the pending [requests] and the
    [history], decides which pending requests are qualified for execution and
    in what order. *)

open Ds_model

type guarantee =
  | Serializable
  | Read_committed
  | Fifo_only  (** ordering only, no isolation guarantee *)
  | Custom of string

type t = {
  name : string;
  description : string;
  guarantee : guarantee;
  language : [ `Sql | `Datalog | `Ocaml ];
  spec_loc : int;  (** size of the specification (paper §3.4 metric) *)
  prepare : Relations.t -> unit -> (int * int) list;
      (** compile once against a relation set; the returned thunk is the
          per-cycle qualifier, yielding (TA, INTRATA) keys in execution
          order *)
}

(** [of_sql ~name ~guarantee ~ordered sql] builds a protocol from a query
    over [requests]/[history] returning (at least) [ta] and [intrata]
    columns. When [ordered] is false the result is sorted by request id
    (column [id] must be in the output). [optimize] selects the plan
    rewriting level (ablation A2). *)
val of_sql :
  ?optimize:Ds_relal.Optimizer.level ->
  ?description:string ->
  name:string ->
  guarantee:guarantee ->
  ordered:bool ->
  string ->
  t

(** [of_sql_dynamic] is {!of_sql} for a query containing [?] placeholders.
    Also returns a setter that binds *every* placeholder to the given value —
    the placeholders stand for one logical parameter (e.g. the rationing
    threshold) — across every scheduler the protocol has been prepared
    against, taking effect from the next cycle. The initial value is
    [initial]. *)
val of_sql_dynamic :
  ?optimize:Ds_relal.Optimizer.level ->
  ?description:string ->
  name:string ->
  guarantee:guarantee ->
  ordered:bool ->
  initial:Ds_relal.Value.t ->
  string ->
  t * (Ds_relal.Value.t -> unit)

(** [of_datalog ~name ~guarantee program] builds a protocol from a Datalog
    program deriving [qualified(TA, INTRATA)]. Facts are loaded per cycle as
    [requests/5], [terminal_requests/4], [history/5] and
    [history_terminal/4] (data operations carry their object; terminal
    operations appear in the [*_terminal] relations without one). Results
    are ordered by request id. *)
val of_datalog :
  ?description:string -> name:string -> guarantee:guarantee -> string -> t

(** Hand-coded protocol (the paper's state-of-the-art baseline). [spec_loc]
    should be the line count of the imperative implementation. *)
val of_fn :
  ?description:string ->
  name:string ->
  guarantee:guarantee ->
  spec_loc:int ->
  (pending:Request.t list -> history:Request.t list -> (int * int) list) ->
  t

val guarantee_to_string : guarantee -> string
val pp : Format.formatter -> t -> unit
