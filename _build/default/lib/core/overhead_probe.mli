(** The §4.3 measurement: declarative scheduling overhead at a given client
    count, without a running system. The [requests] table is filled with one
    in-flight request per concurrently active client, the [history] table
    with the uncommitted prefixes of those transactions ("filled with half of
    the requests of the corresponding workload, without requests of committed
    transactions"), and one full scheduler cycle is timed. *)

open Ds_workload

type setup = {
  n_clients : int;
  spec : Spec.t;
  seed : int;
  (* Each active transaction has executed a random prefix; the mean prefix
     fraction is 0.5 to match the paper's "half of the requests". *)
  mean_progress : float;
}

val default_setup : setup

type measurement = {
  n_clients : int;
  pending : int;  (** requests-table rows at query time *)
  history : int;  (** history-table rows at query time *)
  qualified : int;  (** tuples returned by the protocol query *)
  cycle_time : float;  (** seconds for the full drain/insert/query/move cycle *)
  query_time : float;  (** seconds for the protocol query alone *)
}

(** [measure ?runs setup protocol] fills the tables per [setup] and times
    [runs] full cycles on fresh table fills, returning the mean. *)
val measure : ?runs:int -> setup -> Protocol.t -> measurement

(** Amortized total scheduling overhead for a workload of [total_stmts]
    statements, as computed in §4.3.2: the scheduler must run
    [total_stmts / qualified_per_run] times, each costing [cycle_time]. *)
val amortized_overhead : measurement -> total_stmts:int -> float
