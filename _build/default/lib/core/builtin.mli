(** The protocol library shipped with the scheduler. *)

(** Listing 1, verbatim, through the SQL engine. *)
val ss2pl_sql : Protocol.t

(** Same protocol at a given optimizer level (ablation A2). *)
val ss2pl_sql_at : Ds_relal.Optimizer.level -> Protocol.t

(** SS2PL as a Datalog program (ablation A3). *)
val ss2pl_datalog : Protocol.t

(** Hand-coded SS2PL (the imperative state of the art; also the oracle). *)
val ss2pl_ocaml : Protocol.t

(** SS2PL plus intra-transaction ordering (SQL / Datalog). *)
val ss2pl_ordered_sql : Protocol.t

val ss2pl_ordered_datalog : Protocol.t

(** Relaxed consistency (read-committed style), SQL and Datalog. *)
val read_committed_sql : Protocol.t

val read_committed_datalog : Protocol.t

(** Consistency rationing: SS2PL for objects below [threshold], write-write
    ordering only above. *)
val rationing : threshold:int -> Protocol.t

(** Rationing with a runtime-adjustable threshold ([?] placeholder): the
    returned setter moves the category boundary from the next cycle on —
    "adaptable relaxed consistency" (§2). *)
val rationing_dynamic : initial_threshold:int -> unit -> Protocol.t * (int -> unit)

(** Conservative 2PL: all-or-nothing per transaction; deadlock-free. *)
val c2pl : Protocol.t

(** Ganymed-style reader offload: reads never block; writes stay
    write-write ordered. *)
val reader_offload : Protocol.t

(** SS2PL with SLA-weight ordering (needs extended relations). *)
val sla_ordered : Protocol.t

(** FCFS passthrough ordering (no isolation). *)
val fcfs : Protocol.t

(** All fixed protocols, for the registry/CLI. *)
val all : Protocol.t list

(** Lookup by name. *)
val find : string -> Protocol.t option
