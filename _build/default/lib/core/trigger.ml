type t = Time_lapse of float | Fill_level of int | Hybrid of float * int

let due t ~queue_len ~elapsed =
  match t with
  | Time_lapse dt -> elapsed >= dt
  | Fill_level k -> queue_len >= k
  | Hybrid (dt, k) -> elapsed >= dt || queue_len >= k

let period = function
  | Time_lapse dt | Hybrid (dt, _) -> Some dt
  | Fill_level _ -> None

let to_string = function
  | Time_lapse dt -> Printf.sprintf "time(%gms)" (1000. *. dt)
  | Fill_level k -> Printf.sprintf "fill(%d)" k
  | Hybrid (dt, k) -> Printf.sprintf "hybrid(%gms,%d)" (1000. *. dt) k

let pp ppf t = Format.pp_print_string ppf (to_string t)
