open Ds_model
open Ds_workload

type setup = { n_clients : int; spec : Spec.t; seed : int; mean_progress : float }

let default_setup =
  { n_clients = 300; spec = Spec.paper_default; seed = 42; mean_progress = 0.5 }

type measurement = {
  n_clients : int;
  pending : int;
  history : int;
  qualified : int;
  cycle_time : float;
  query_time : float;
}

(* One active transaction per client: a random executed prefix (uniform in
   [0, 2 * mean_progress * length], so the mean matches) goes to history;
   the first unexecuted request is the client's pending request. *)
let fill setup sched run_idx =
  let rng = Ds_sim.Rng.create (setup.seed + (1000 * run_idx)) in
  let gen = Generator.create setup.spec rng in
  let rels = Scheduler.relations sched in
  Relations.clear rels;
  let n_stmts = Spec.statements_per_txn setup.spec - 1 in
  let max_prefix =
    min n_stmts (int_of_float (2. *. setup.mean_progress *. float_of_int n_stmts))
  in
  for c = 1 to setup.n_clients do
    let txn = Generator.next_txn gen ~ta:c in
    let prefix_len = Ds_sim.Rng.int rng (max_prefix + 1) in
    (* The executed prefix is history; the first unexecuted request is the
       client's pending request (closed-loop clients issue one at a time). *)
    let rec walk i = function
      | [] -> ()
      | (r : Request.t) :: rest ->
        if i < prefix_len then begin
          Ds_relal.Table.insert rels.Relations.history
            (Relations.row_of_request ~extended:rels.Relations.extended r);
          walk (i + 1) rest
        end
        else Scheduler.submit sched r
    in
    walk 0 txn.Txn.requests
  done

let measure ?(runs = 5) setup protocol =
  if runs <= 0 then invalid_arg "Overhead_probe.measure: runs <= 0";
  let sched = Scheduler.create ~prune_history_each_cycle:false protocol in
  let acc_cycle = ref 0. and acc_query = ref 0. in
  let acc_qualified = ref 0 and acc_pending = ref 0 and acc_history = ref 0 in
  for run_idx = 1 to runs do
    fill setup sched run_idx;
    let pending_queue = Scheduler.queue_length sched in
    let history = Relations.history_count (Scheduler.relations sched) in
    let _, stats = Scheduler.cycle sched in
    acc_cycle := !acc_cycle +. Scheduler.total_time stats.Scheduler.times;
    acc_query := !acc_query +. stats.Scheduler.times.Scheduler.query;
    acc_qualified := !acc_qualified + stats.Scheduler.qualified;
    acc_pending := !acc_pending + pending_queue;
    acc_history := !acc_history + history
  done;
  let f = float_of_int runs in
  {
    n_clients = setup.n_clients;
    pending = !acc_pending / runs;
    history = !acc_history / runs;
    qualified = !acc_qualified / runs;
    cycle_time = !acc_cycle /. f;
    query_time = !acc_query /. f;
  }

let amortized_overhead m ~total_stmts =
  if m.qualified <= 0 then infinity
  else
    let runs_needed =
      float_of_int total_stmts /. float_of_int m.qualified
    in
    runs_needed *. m.cycle_time
