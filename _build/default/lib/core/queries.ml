(* The SS2PL query is the paper's Listing 1, verbatim modulo whitespace. *)
let ss2pl =
  {|WITH RLockedObjects AS
 (SELECT a.object, a.ta, a.Operation
  FROM history a
  WHERE NOT EXISTS
   (SELECT * FROM history b
    WHERE (a.ta=b.ta AND a.object=b.object AND b.operation='w')
       OR (a.ta=b.ta AND (b.operation='a' OR b.operation='c')))),
WLockedObjects AS
 (SELECT DISTINCT a.object, a.ta, a.operation
  FROM history a LEFT JOIN
   (SELECT ta FROM history
    WHERE operation='a' OR operation='c') AS finishedTAs
  ON a.ta = finishedTAs.ta
  WHERE a.operation='w' AND finishedTAs.ta IS NULL),
OperationsOnWLockedObjects AS
 (SELECT r.ta, r.intrata
  FROM requests r, WLockedObjects wlo
  WHERE r.object=wlo.object AND r.ta<>wlo.ta),
OperationsOnRLockedObjects AS
 (SELECT wOpsOnRLObj.ta, wOpsOnRLObj.intrata
  FROM requests wOpsOnRLObj, RLockedObjects rl
  WHERE wOpsOnRLObj.object=rl.object
    AND wOpsOnRLObj.operation='w'
    AND wOpsOnRLObj.ta<>rl.ta),
OpsOnSameObjAsPriorSelectOps AS
 (SELECT r2.ta, r2.intrata
  FROM requests r2, requests r1
  WHERE r2.object=r1.object AND r2.ta>r1.ta
    AND ((r1.operation='w') OR (r2.operation='w'))),
QualifiedSS2PLOps AS
 ((SELECT ta, intrata FROM requests)
  EXCEPT (
   (SELECT * FROM OperationsOnWLockedObjects)
   UNION ALL
   (SELECT * FROM OpsOnSameObjAsPriorSelectOps)
   UNION ALL
   (SELECT * FROM OperationsOnRLockedObjects)))
SELECT r2.*
FROM requests r2, QualifiedSS2PLOps ss2PL
WHERE r2.ta=ss2PL.ta AND r2.intrata=ss2PL.intrata|}

(* Textual rule editing: find [marker] in [text] and replace its first
   occurrence by [replacement]. Deriving protocol variants as small edits of
   the SS2PL rules is the paper's flexibility argument made concrete. *)
let splice text ~marker ~replacement =
  let n = String.length marker in
  let rec find i =
    if i + n > String.length text then invalid_arg "queries: marker not found"
    else if String.sub text i n = marker then i
    else find (i + 1)
  in
  let idx = find 0 in
  String.sub text 0 idx ^ replacement
  ^ String.sub text (idx + n) (String.length text - idx - n)

let ss2pl_ordered =
  (* One extra blocking rule: requests behind an earlier pending request of
     the same transaction wait for it. *)
  let base =
    splice ss2pl
      ~marker:"   UNION ALL\n   (SELECT * FROM OperationsOnRLockedObjects)"
      ~replacement:
        "   UNION ALL\n   (SELECT * FROM OperationsOnRLockedObjects)\n\
        \   UNION ALL\n\
        \   (SELECT * FROM EarlierPendingSameTA)"
  in
  splice base ~marker:"QualifiedSS2PLOps AS"
    ~replacement:
      {|EarlierPendingSameTA AS
 (SELECT r2.ta, r2.intrata
  FROM requests r2, requests r1
  WHERE r2.ta=r1.ta AND r2.intrata>r1.intrata),
QualifiedSS2PLOps AS|}

let read_committed =
  {|WITH WLockedObjects AS
 (SELECT DISTINCT a.object, a.ta, a.operation
  FROM history a LEFT JOIN
   (SELECT ta FROM history
    WHERE operation='a' OR operation='c') AS finishedTAs
  ON a.ta = finishedTAs.ta
  WHERE a.operation='w' AND finishedTAs.ta IS NULL),
OperationsOnWLockedObjects AS
 (SELECT r.ta, r.intrata
  FROM requests r, WLockedObjects wlo
  WHERE r.object=wlo.object AND r.ta<>wlo.ta),
OpsAfterPriorPendingWrites AS
 (SELECT r2.ta, r2.intrata
  FROM requests r2, requests r1
  WHERE r2.object=r1.object AND r2.ta>r1.ta
    AND r1.operation='w'),
QualifiedOps AS
 ((SELECT ta, intrata FROM requests)
  EXCEPT (
   (SELECT * FROM OperationsOnWLockedObjects)
   UNION ALL
   (SELECT * FROM OpsAfterPriorPendingWrites)))
SELECT r2.*
FROM requests r2, QualifiedOps q
WHERE r2.ta=q.ta AND r2.intrata=q.intrata|}

let rationing_body t =
  {|WITH RLockedObjects AS
 (SELECT a.object, a.ta, a.Operation
  FROM history a
  WHERE a.object < |} ^ t
  ^ {| AND NOT EXISTS
   (SELECT * FROM history b
    WHERE (a.ta=b.ta AND a.object=b.object AND b.operation='w')
       OR (a.ta=b.ta AND (b.operation='a' OR b.operation='c')))),
WLockedObjects AS
 (SELECT DISTINCT a.object, a.ta, a.operation
  FROM history a LEFT JOIN
   (SELECT ta FROM history
    WHERE operation='a' OR operation='c') AS finishedTAs
  ON a.ta = finishedTAs.ta
  WHERE a.operation='w' AND finishedTAs.ta IS NULL),
OperationsOnWLockedObjects AS
 (SELECT r.ta, r.intrata
  FROM requests r, WLockedObjects wlo
  WHERE r.object=wlo.object AND r.ta<>wlo.ta
    AND (r.object < |} ^ t
  ^ {| OR r.operation='w')),
OperationsOnRLockedObjects AS
 (SELECT w.ta, w.intrata
  FROM requests w, RLockedObjects rl
  WHERE w.object=rl.object AND w.operation='w' AND w.ta<>rl.ta),
OpsOnSameObjAsPriorSelectOps AS
 (SELECT r2.ta, r2.intrata
  FROM requests r2, requests r1
  WHERE r2.object=r1.object AND r2.ta>r1.ta
    AND ((r2.object < |} ^ t
  ^ {| AND (r1.operation='w' OR r2.operation='w'))
      OR (r1.operation='w' AND r2.operation='w'))),
QualifiedOps AS
 ((SELECT ta, intrata FROM requests)
  EXCEPT (
   (SELECT * FROM OperationsOnWLockedObjects)
   UNION ALL
   (SELECT * FROM OpsOnSameObjAsPriorSelectOps)
   UNION ALL
   (SELECT * FROM OperationsOnRLockedObjects)))
SELECT r2.*
FROM requests r2, QualifiedOps q
WHERE r2.ta=q.ta AND r2.intrata=q.intrata|}

let c2pl =
  {|WITH RLockedObjects AS
 (SELECT a.object, a.ta, a.Operation
  FROM history a
  WHERE NOT EXISTS
   (SELECT * FROM history b
    WHERE (a.ta=b.ta AND a.object=b.object AND b.operation='w')
       OR (a.ta=b.ta AND (b.operation='a' OR b.operation='c')))),
WLockedObjects AS
 (SELECT DISTINCT a.object, a.ta, a.operation
  FROM history a LEFT JOIN
   (SELECT ta FROM history
    WHERE operation='a' OR operation='c') AS finishedTAs
  ON a.ta = finishedTAs.ta
  WHERE a.operation='w' AND finishedTAs.ta IS NULL),
BlockedTxns AS
 ((SELECT DISTINCT r.ta FROM requests r, WLockedObjects wlo
   WHERE r.object=wlo.object AND r.ta<>wlo.ta)
  UNION
  (SELECT DISTINCT r.ta FROM requests r, RLockedObjects rl
   WHERE r.object=rl.object AND r.operation='w' AND r.ta<>rl.ta)
  UNION
  (SELECT DISTINCT r2.ta FROM requests r2, requests r1
   WHERE r2.object=r1.object AND r2.ta>r1.ta
     AND (r1.operation='w' OR r2.operation='w')))
SELECT r2.*
FROM requests r2
WHERE NOT EXISTS (SELECT * FROM BlockedTxns b WHERE b.ta = r2.ta)|}

let reader_offload =
  {|WITH WLockedObjects AS
 (SELECT DISTINCT a.object, a.ta, a.operation
  FROM history a LEFT JOIN
   (SELECT ta FROM history
    WHERE operation='a' OR operation='c') AS finishedTAs
  ON a.ta = finishedTAs.ta
  WHERE a.operation='w' AND finishedTAs.ta IS NULL),
WriteOpsOnWLockedObjects AS
 (SELECT r.ta, r.intrata
  FROM requests r, WLockedObjects wlo
  WHERE r.object=wlo.object AND r.ta<>wlo.ta AND r.operation='w'),
PendingWriteWrite AS
 (SELECT r2.ta, r2.intrata
  FROM requests r2, requests r1
  WHERE r2.object=r1.object AND r2.ta>r1.ta
    AND r1.operation='w' AND r2.operation='w'),
QualifiedOps AS
 ((SELECT ta, intrata FROM requests)
  EXCEPT (
   (SELECT * FROM WriteOpsOnWLockedObjects)
   UNION ALL
   (SELECT * FROM PendingWriteWrite)))
SELECT r2.*
FROM requests r2, QualifiedOps q
WHERE r2.ta=q.ta AND r2.intrata=q.intrata|}

let rationing ~threshold = rationing_body (string_of_int threshold)

let rationing_parameterized = rationing_body "?"

let sla_ordered =
  ss2pl ^ "\nORDER BY r2.weight DESC, r2.arrival ASC, r2.id ASC"

let fcfs = "SELECT * FROM requests ORDER BY id"

let spec_loc text =
  String.split_on_char '\n' text
  |> List.filter (fun line -> String.trim line <> "")
  |> List.length
