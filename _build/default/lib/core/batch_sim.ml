open Ds_model
open Ds_sim
open Ds_workload

type config = {
  arrival_rate : float;
  duration : float;
  spec : Spec.t;
  cost : Ds_server.Cost_model.t;
  seed : int;
  protocol : Protocol.t;
  cycle_period : float;
  charge_scheduler_time : bool;
}

let default_config =
  {
    arrival_rate = 20.;
    duration = 10.;
    spec = Spec.paper_default;
    cost = Ds_server.Cost_model.default;
    seed = 42;
    protocol = Builtin.ss2pl_ocaml;
    cycle_period = 0.01;
    charge_scheduler_time = true;
  }

type stats = {
  offered_txns : int;
  completed_txns : int;
  completed_stmts : int;
  mean_latency : float;
  p95_latency : float;
  cycles : int;
  mean_cycle_time : float;
  peak_backlog : int;
  residual_pending : int;
}

type open_txn = { arrived : float; mutable remaining : int; data_stmts : int }

let run (cfg : config) =
  if cfg.arrival_rate <= 0. then invalid_arg "Batch_sim.run: arrival_rate <= 0";
  (match Spec.validate cfg.spec with
  | Ok () -> ()
  | Error m -> invalid_arg ("Batch_sim.run: " ^ m));
  let engine = Engine.create () in
  let master = Rng.create cfg.seed in
  let arrival_rng = Rng.split master in
  let gen = Generator.create cfg.spec (Rng.split master) in
  let sched = Scheduler.create cfg.protocol in
  let backend = Ds_server.Backend.create engine cfg.cost in
  let in_flight : (int, open_txn) Hashtbl.t = Hashtbl.create 256 in
  let latencies = Ds_stats.Histogram.create () in
  let cycle_times = Ds_stats.Summary.create () in
  let offered = ref 0 in
  let completed = ref 0 in
  let completed_stmts = ref 0 in
  let peak_backlog = ref 0 in
  let ta_counter = ref 0 in
  let req_counter = ref 0 in
  (* Poisson arrivals: a whole transaction enters the queue at once. *)
  let rec arrive () =
    if Engine.now engine <= cfg.duration then begin
      incr offered;
      incr ta_counter;
      let txn = Generator.next_txn gen ~ta:!ta_counter in
      let now = Engine.now engine in
      Hashtbl.replace in_flight !ta_counter
        {
          arrived = now;
          remaining = Txn.length txn;
          data_stmts = List.length (Txn.data_requests txn);
        };
      List.iter
        (fun (r : Request.t) ->
          incr req_counter;
          Scheduler.submit sched
            { r with Request.id = !req_counter; arrival = now })
        txn.Txn.requests;
      let gap = Dist.sample (Dist.Exponential (1. /. cfg.arrival_rate)) arrival_rng in
      ignore (Engine.schedule engine ~after:gap arrive)
    end
  in
  let deliver (r : Request.t) =
    match Hashtbl.find_opt in_flight r.Request.ta with
    | None -> ()
    | Some t ->
      t.remaining <- t.remaining - 1;
      if t.remaining = 0 then begin
        Hashtbl.remove in_flight r.Request.ta;
        let now = Engine.now engine in
        if now <= cfg.duration then begin
          incr completed;
          completed_stmts := !completed_stmts + t.data_stmts;
          Ds_stats.Histogram.add latencies (now -. t.arrived)
        end
      end
  in
  let rec tick () =
    if Scheduler.queue_length sched > 0 || Scheduler.pending_count sched > 0
    then begin
      let qualified, stats = Scheduler.cycle sched in
      let dt = Scheduler.total_time stats.Scheduler.times in
      Ds_stats.Summary.add cycle_times dt;
      peak_backlog :=
        max !peak_backlog
          (stats.Scheduler.pending_before + stats.Scheduler.drained);
      let dispatch_delay = if cfg.charge_scheduler_time then dt else 0. in
      ignore
        (Engine.schedule engine ~after:dispatch_delay (fun () ->
             Ds_server.Backend.execute_seq backend qualified ~on_each:deliver
               (fun () -> ())))
    end;
    if Engine.now engine < cfg.duration then
      ignore (Engine.schedule engine ~after:cfg.cycle_period tick)
  in
  ignore (Engine.schedule engine ~after:0. arrive);
  ignore (Engine.schedule engine ~after:cfg.cycle_period tick);
  Engine.run_until engine ~until:cfg.duration;
  {
    offered_txns = !offered;
    completed_txns = !completed;
    completed_stmts = !completed_stmts;
    mean_latency = Ds_stats.Histogram.mean latencies;
    p95_latency = Ds_stats.Histogram.p95 latencies;
    cycles = Scheduler.cycles_run sched;
    mean_cycle_time = Ds_stats.Summary.mean cycle_times;
    peak_backlog = !peak_backlog;
    residual_pending = Scheduler.pending_count sched;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "offered=%d completed=%d stmts=%d latency(mean=%.3fs p95=%.3fs) cycles=%d \
     cycle=%.2fms backlog(peak=%d residual=%d)"
    s.offered_txns s.completed_txns s.completed_stmts s.mean_latency
    s.p95_latency s.cycles
    (1000. *. s.mean_cycle_time)
    s.peak_backlog s.residual_pending
