(** SS2PL and variants as Datalog programs — the "specialized, more succinct
    scheduler language" direction of the paper's §5 (Datalog is one of the
    candidate languages named in §3.1).

    Fact schema (loaded per cycle by {!Protocol.of_datalog}):
    - [requests(Id, Ta, Intrata, Op, Obj)] — pending data operations;
    - [terminal_requests(Id, Ta, Intrata, Op)] — pending commits/aborts;
    - [history(Id, Ta, Intrata, Op, Obj)] — executed data operations;
    - [history_terminal(Id, Ta, Intrata, Op)] — executed commits/aborts.

    Each program derives [qualified(Ta, Intrata)]. *)

val ss2pl : string
val ss2pl_ordered : string
val read_committed : string
