(** The related-approaches comparison of the paper's Table 1, as data. Each
    approach is encoded with the five feature axes the paper uses
    (performance, QoS, declarativity, flexibility, high scalability), so the
    table can be regenerated — and our own system classified — from code. *)

type features = {
  performance : bool;  (** P: improves/ensures performance *)
  qos : bool;  (** QoS: supports quality-of-service targets *)
  declarative : bool;  (** D: protocols defined declaratively *)
  flexible : bool;  (** F: protocols changeable without recoding *)
  high_scalability : bool;  (** HS: targets very high user counts *)
}

type approach = {
  name : string;
  reference : string;  (** citation key in the paper *)
  features : features;
  summary : string;
}

(** The seven systems of Table 1, in the paper's row order. *)
val paper_rows : approach list

(** This system's row (P, QoS, D, F, HS all +). *)
val declarative_scheduler : approach

(** Renders Table 1 (paper rows plus ours) as ASCII. *)
val render_table : unit -> string
