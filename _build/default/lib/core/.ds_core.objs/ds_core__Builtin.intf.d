lib/core/builtin.mli: Ds_relal Protocol
