lib/core/trigger.mli: Format
