lib/core/queries.ml: List String
