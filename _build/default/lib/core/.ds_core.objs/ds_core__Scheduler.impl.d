lib/core/scheduler.ml: Array Ds_model Ds_relal Journal List Op Option Protocol Queue Relations Request Unix
