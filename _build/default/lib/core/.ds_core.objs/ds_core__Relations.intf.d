lib/core/relations.mli: Ds_model Ds_relal Ds_sql Request Schema Table Value
