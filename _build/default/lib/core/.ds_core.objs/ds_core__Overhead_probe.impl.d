lib/core/overhead_probe.ml: Ds_model Ds_relal Ds_sim Ds_workload Generator Relations Request Scheduler Spec Txn
