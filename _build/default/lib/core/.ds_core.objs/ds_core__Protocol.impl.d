lib/core/protocol.ml: Array Ds_datalog Ds_model Ds_relal Ds_sql Eval Format Hashtbl Int List Op Printf Queries Ra Relations Request Schema String Value
