lib/core/journal.mli: Ds_model Relations Request
