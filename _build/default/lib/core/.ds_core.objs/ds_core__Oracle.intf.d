lib/core/oracle.mli: Ds_model Request
