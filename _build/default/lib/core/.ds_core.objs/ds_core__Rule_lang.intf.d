lib/core/rule_lang.mli: Protocol
