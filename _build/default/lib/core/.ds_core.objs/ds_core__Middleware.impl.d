lib/core/middleware.ml: Array Builtin Ds_model Ds_server Ds_sim Ds_stats Ds_workload Engine Format Generator Hashtbl List Op Protocol Request Rng Scheduler Sla Spec Trigger Txn
