lib/core/adaptive.mli: Protocol
