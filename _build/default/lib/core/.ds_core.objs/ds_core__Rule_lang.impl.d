lib/core/rule_lang.ml: Builtin Ds_model Float Format Hashtbl Int List Option Protocol Queries Relations Request Sla String
