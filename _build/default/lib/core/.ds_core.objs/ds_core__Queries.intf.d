lib/core/queries.mli:
