lib/core/middleware.mli: Ds_model Ds_server Ds_workload Format Protocol Scheduler Sla Spec Trigger
