lib/core/relations.ml: Array Ds_model Ds_relal Ds_sql Hashtbl List Op Request Schema Sla String Table Value
