lib/core/builtin.ml: Datalog_rules Ds_relal List Oracle Printf Protocol Queries
