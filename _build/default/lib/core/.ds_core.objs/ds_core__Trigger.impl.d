lib/core/trigger.ml: Format Printf
