lib/core/adaptive.ml: Builtin Option Printf Protocol Relations
