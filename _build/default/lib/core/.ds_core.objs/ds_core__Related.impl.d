lib/core/related.ml: Ds_util List Tablefmt
