lib/core/datalog_rules.mli:
