lib/core/protocol.mli: Ds_model Ds_relal Format Relations Request
