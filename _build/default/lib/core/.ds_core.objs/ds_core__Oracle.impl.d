lib/core/oracle.ml: Ds_model Hashtbl Int List Op Option Request Set
