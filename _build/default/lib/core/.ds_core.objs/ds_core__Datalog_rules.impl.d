lib/core/datalog_rules.ml:
