lib/core/scheduler.mli: Ds_model Journal Protocol Relations Request
