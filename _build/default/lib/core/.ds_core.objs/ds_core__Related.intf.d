lib/core/related.mli:
