lib/core/batch_sim.ml: Builtin Dist Ds_model Ds_server Ds_sim Ds_stats Ds_workload Engine Format Generator Hashtbl List Protocol Request Rng Scheduler Spec Txn
