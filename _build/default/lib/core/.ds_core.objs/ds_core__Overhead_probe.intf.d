lib/core/overhead_probe.mli: Ds_workload Protocol Spec
