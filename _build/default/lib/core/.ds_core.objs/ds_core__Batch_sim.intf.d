lib/core/batch_sim.mli: Ds_server Ds_workload Format Protocol Spec
