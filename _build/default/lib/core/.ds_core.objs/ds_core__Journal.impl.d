lib/core/journal.ml: Array Ds_model Ds_relal Ds_workload Hashtbl List Op Printf Relations Request Stdlib String
