open Ds_model

module Int_set = Set.Make (Int)

let ss2pl_qualify ~pending ~history =
  (* Finished transactions hold no locks. *)
  let finished =
    List.fold_left
      (fun acc (r : Request.t) ->
        if Request.is_terminal r then Int_set.add r.Request.ta acc else acc)
      Int_set.empty history
  in
  (* Write locks: (object, ta) for uncommitted writes. *)
  let wlocks = Hashtbl.create 64 in
  List.iter
    (fun (r : Request.t) ->
      match (r.Request.op, r.Request.obj) with
      | Op.Write, Some obj when not (Int_set.mem r.Request.ta finished) ->
        Hashtbl.replace wlocks (obj, r.Request.ta) ()
      | _ -> ())
    history;
  (* Read locks: uncommitted reads not superseded by an own write. *)
  let rlocks = Hashtbl.create 64 in
  List.iter
    (fun (r : Request.t) ->
      match (r.Request.op, r.Request.obj) with
      | Op.Read, Some obj
        when (not (Int_set.mem r.Request.ta finished))
             && not (Hashtbl.mem wlocks (obj, r.Request.ta)) ->
        Hashtbl.replace rlocks (obj, r.Request.ta) ()
      | _ -> ())
    history;
  (* Per-object holder lists for conflict probes. *)
  let w_holders = Hashtbl.create 64 and r_holders = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (obj, ta) () ->
      Hashtbl.replace w_holders obj
        (ta :: Option.value ~default:[] (Hashtbl.find_opt w_holders obj)))
    wlocks;
  Hashtbl.iter
    (fun (obj, ta) () ->
      Hashtbl.replace r_holders obj
        (ta :: Option.value ~default:[] (Hashtbl.find_opt r_holders obj)))
    rlocks;
  (* Pending-pending conflicts: a request is blocked when an earlier (lower
     TA) pending request conflicts on its object. *)
  let pending_by_obj = Hashtbl.create 64 in
  List.iter
    (fun (r : Request.t) ->
      match r.Request.obj with
      | Some obj ->
        Hashtbl.replace pending_by_obj obj
          (r :: Option.value ~default:[] (Hashtbl.find_opt pending_by_obj obj))
      | None -> ())
    pending;
  let blocked (r : Request.t) =
    match r.Request.obj with
    | None -> false (* terminal operations always qualify *)
    | Some obj ->
      let other ta = ta <> r.Request.ta in
      List.exists other
        (Option.value ~default:[] (Hashtbl.find_opt w_holders obj))
      || (Op.equal r.Request.op Op.Write
         && List.exists other
              (Option.value ~default:[] (Hashtbl.find_opt r_holders obj)))
      || List.exists
           (fun (r1 : Request.t) ->
             r1.Request.ta < r.Request.ta
             && (Op.equal r1.Request.op Op.Write
                || Op.equal r.Request.op Op.Write))
           (Option.value ~default:[] (Hashtbl.find_opt pending_by_obj obj))
  in
  List.filter (fun r -> not (blocked r)) pending
  |> List.sort (fun (a : Request.t) b -> Int.compare a.Request.id b.Request.id)
  |> List.map Request.key

(* The qualifier above, from its first binding to its last line; a unit test
   recounts the file so the number stays honest. *)
let implementation_loc = 75
