(** Scheduler trigger conditions (§3.3: "Possible conditions are, e.g. a
    lapse of time, a certain fill level of the incoming queue or a hybrid
    version"; the best one "has to be evaluated experimentally" — ablation
    A1). *)

type t =
  | Time_lapse of float  (** run a cycle every [dt] seconds *)
  | Fill_level of int  (** run a cycle when the queue holds >= [k] requests *)
  | Hybrid of float * int  (** whichever comes first *)

(** Does a cycle fire now, given the queue length and seconds since the last
    cycle? *)
val due : t -> queue_len:int -> elapsed:float -> bool

(** Period of the timer the simulator must run for time-based triggers. *)
val period : t -> float option

val to_string : t -> string
val pp : Format.formatter -> t -> unit
