(** Open-loop batch simulation: the operating mode of the paper's §4.3
    ("pre-scheduled workloads"). Whole transactions arrive as a Poisson
    stream, every request of an arriving transaction enters the incoming
    queue at once, and a periodic scheduler cycle moves the qualified subset
    to the server. A transaction completes when its last request has
    executed.

    Contrast with {!Middleware}, the closed-loop mode where each client holds
    one outstanding request. Open loop exposes saturation: beyond the
    server's capacity the backlog grows without bound. *)

open Ds_workload

type config = {
  arrival_rate : float;  (** transactions per second (Poisson arrivals) *)
  duration : float;  (** virtual seconds *)
  spec : Spec.t;
  cost : Ds_server.Cost_model.t;
  seed : int;
  protocol : Protocol.t;
  cycle_period : float;
  charge_scheduler_time : bool;
}

val default_config : config

type stats = {
  offered_txns : int;  (** arrivals within the window *)
  completed_txns : int;
  completed_stmts : int;
  mean_latency : float;  (** arrival -> last request executed *)
  p95_latency : float;
  cycles : int;
  mean_cycle_time : float;  (** real seconds per scheduler cycle *)
  peak_backlog : int;  (** maximum pending-table size observed *)
  residual_pending : int;  (** requests still pending at the horizon *)
}

val run : config -> stats

val pp_stats : Format.formatter -> stats -> unit
