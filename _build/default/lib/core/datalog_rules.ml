let ss2pl =
  {|% Strong two-phase locking, equivalent to the paper's Listing 1.
finished(TA)   :- history_terminal(_, TA, _, 'c').
finished(TA)   :- history_terminal(_, TA, _, 'a').
wrote(TA, O)   :- history(_, TA, _, 'w', O).
wlocked(O, TA) :- wrote(TA, O), not finished(TA).
rlocked(O, TA) :- history(_, TA, _, 'r', O), not finished(TA), not wrote(TA, O).
blocked(TA, I) :- requests(_, TA, I, _, O), wlocked(O, T2), TA <> T2.
blocked(TA, I) :- requests(_, TA, I, 'w', O), rlocked(O, T2), TA <> T2.
blocked(TA, I) :- requests(_, TA, I, 'w', O), requests(_, T1, _, _, O), TA > T1.
blocked(TA, I) :- requests(_, TA, I, _, O), requests(_, T1, _, 'w', O), TA > T1.
qualified(TA, I) :- requests(_, TA, I, _, _), not blocked(TA, I).
qualified(TA, I) :- terminal_requests(_, TA, I, _).|}

let ss2pl_ordered =
  {|% SS2PL plus intra-transaction ordering: nothing overtakes an earlier
% pending request of its own transaction (terminals included).
finished(TA)   :- history_terminal(_, TA, _, 'c').
finished(TA)   :- history_terminal(_, TA, _, 'a').
wrote(TA, O)   :- history(_, TA, _, 'w', O).
wlocked(O, TA) :- wrote(TA, O), not finished(TA).
rlocked(O, TA) :- history(_, TA, _, 'r', O), not finished(TA), not wrote(TA, O).
blocked(TA, I) :- requests(_, TA, I, _, O), wlocked(O, T2), TA <> T2.
blocked(TA, I) :- requests(_, TA, I, 'w', O), rlocked(O, T2), TA <> T2.
blocked(TA, I) :- requests(_, TA, I, 'w', O), requests(_, T1, _, _, O), TA > T1.
blocked(TA, I) :- requests(_, TA, I, _, O), requests(_, T1, _, 'w', O), TA > T1.
blocked(TA, I) :- requests(_, TA, I, _, _), requests(_, TA, J, _, _), I > J.
blocked(TA, I) :- terminal_requests(_, TA, I, _), requests(_, TA, J, _, _), I > J.
qualified(TA, I) :- requests(_, TA, I, _, _), not blocked(TA, I).
qualified(TA, I) :- terminal_requests(_, TA, I, _), not blocked(TA, I).|}

let read_committed =
  {|% Relaxed: no read locks; writers never wait for readers.
finished(TA)   :- history_terminal(_, TA, _, 'c').
finished(TA)   :- history_terminal(_, TA, _, 'a').
wlocked(O, TA) :- history(_, TA, _, 'w', O), not finished(TA).
blocked(TA, I) :- requests(_, TA, I, _, O), wlocked(O, T2), TA <> T2.
blocked(TA, I) :- requests(_, TA, I, _, O), requests(_, T1, _, 'w', O), TA > T1.
qualified(TA, I) :- requests(_, TA, I, _, _), not blocked(TA, I).
qualified(TA, I) :- terminal_requests(_, TA, I, _).|}
