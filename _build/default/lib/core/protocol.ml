open Ds_model
open Ds_relal

type guarantee = Serializable | Read_committed | Fifo_only | Custom of string

type t = {
  name : string;
  description : string;
  guarantee : guarantee;
  language : [ `Sql | `Datalog | `Ocaml ];
  spec_loc : int;
  prepare : Relations.t -> unit -> (int * int) list;
}

let find_col schema name =
  match Schema.find schema ~rel:None ~name with
  | Ok i -> i
  | Error _ ->
    invalid_arg (Printf.sprintf "Protocol: query output lacks column %s" name)

(* Turns a plan into a per-cycle thunk yielding ordered (TA, INTRATA) keys:
   shared by the static and dynamic SQL constructors. *)
let key_runner ~ordered plan =
  let schema = Ra.schema_of plan in
  let ta_col = find_col schema "ta" in
  let intrata_col = find_col schema "intrata" in
  let id_col = if ordered then -1 else find_col schema "id" in
  fun () ->
    let rows = Eval.run plan in
    let rows =
      if ordered then rows
      else
        List.stable_sort
          (fun (a : Value.t array) b -> Value.compare a.(id_col) b.(id_col))
          rows
    in
    List.map
      (fun (row : Value.t array) ->
        match (row.(ta_col), row.(intrata_col)) with
        | Value.Int ta, Value.Int intrata -> (ta, intrata)
        | _ -> invalid_arg "Protocol: non-integer ta/intrata in query result")
      rows

let of_sql ?(optimize = `Full) ?(description = "") ~name ~guarantee ~ordered sql =
  let prepare (rels : Relations.t) =
    key_runner ~ordered (Ds_sql.Exec.prepare ~optimize rels.Relations.catalog sql)
  in
  {
    name;
    description;
    guarantee;
    language = `Sql;
    spec_loc = Queries.spec_loc sql;
    prepare;
  }

let of_sql_dynamic ?(optimize = `Full) ?(description = "") ~name ~guarantee
    ~ordered ~initial sql =
  (* Every preparation registers its placeholder cells here so the setter
     reaches all schedulers using this protocol. *)
  let current = ref initial in
  let all_binders : (Value.t -> unit) list ref = ref [] in
  let prepare (rels : Relations.t) =
    let prepared =
      Ds_sql.Exec.prepare_params ~optimize rels.Relations.catalog sql
    in
    let plan = Ds_sql.Exec.prepared_plan prepared in
    (* Bind every placeholder to the current value now and remember the
       binder for future updates. *)
    let bind v =
      let k = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        match Ds_sql.Exec.bind prepared !k v with
        | () -> incr k
        | exception Ds_sql.Exec.Exec_error _ -> continue_ := false
      done
    in
    bind !current;
    all_binders := bind :: !all_binders;
    key_runner ~ordered plan
  in
  let set v =
    current := v;
    List.iter (fun bind -> bind v) !all_binders
  in
  ( {
      name;
      description;
      guarantee;
      language = `Sql;
      spec_loc = Queries.spec_loc sql;
      prepare;
    },
    set )

let of_datalog ?(description = "") ~name ~guarantee program_text =
  let program = Ds_datalog.Dl_parser.parse_program program_text in
  let prepare (rels : Relations.t) =
    let engine = Ds_datalog.Dl_engine.create program in
    fun () ->
      Ds_datalog.Dl_engine.clear_facts engine;
      let load (r : Request.t) target_data target_terminal =
        match r.Request.obj with
        | Some obj ->
          Ds_datalog.Dl_engine.add_fact engine target_data
            [
              Value.Int r.Request.id;
              Value.Int r.Request.ta;
              Value.Int r.Request.intrata;
              Value.Str (String.make 1 (Op.to_char r.Request.op));
              Value.Int obj;
            ]
        | None ->
          Ds_datalog.Dl_engine.add_fact engine target_terminal
            [
              Value.Int r.Request.id;
              Value.Int r.Request.ta;
              Value.Int r.Request.intrata;
              Value.Str (String.make 1 (Op.to_char r.Request.op));
            ]
      in
      let pending = Relations.pending rels in
      List.iter (fun r -> load r "requests" "terminal_requests") pending;
      List.iter
        (fun r -> load r "history" "history_terminal")
        (Relations.history_requests rels);
      let qualified = Ds_datalog.Dl_engine.query engine "qualified" in
      let key_set = Hashtbl.create 64 in
      List.iter
        (fun tuple ->
          match tuple with
          | [| Value.Int ta; Value.Int intrata |] ->
            Hashtbl.replace key_set (ta, intrata) ()
          | _ -> invalid_arg "Protocol: qualified/2 must yield integer pairs")
        qualified;
      (* Order by request id, taken from the pending list. *)
      List.filter_map
        (fun (r : Request.t) ->
          let k = Request.key r in
          if Hashtbl.mem key_set k then Some (r.Request.id, k) else None)
        pending
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      |> List.map snd
  in
  {
    name;
    description;
    guarantee;
    language = `Datalog;
    spec_loc = Queries.spec_loc program_text;
    prepare;
  }

let of_fn ?(description = "") ~name ~guarantee ~spec_loc fn =
  let prepare (rels : Relations.t) () =
    fn ~pending:(Relations.pending rels) ~history:(Relations.history_requests rels)
  in
  { name; description; guarantee; language = `Ocaml; spec_loc; prepare }

let guarantee_to_string = function
  | Serializable -> "serializable"
  | Read_committed -> "read-committed"
  | Fifo_only -> "fifo"
  | Custom s -> s

let pp ppf t =
  Format.fprintf ppf "%s (%s, %s, %d spec lines)" t.name
    (match t.language with `Sql -> "SQL" | `Datalog -> "Datalog" | `Ocaml -> "OCaml")
    (guarantee_to_string t.guarantee)
    t.spec_loc
