open Ds_model
open Ds_sim
open Ds_workload

type config = {
  n_clients : int;
  duration : float;
  spec : Spec.t;
  cost : Ds_server.Cost_model.t;
  seed : int;
  protocol : Protocol.t;
  trigger : Trigger.t;
  extended_relations : bool;
  charge_scheduler_time : bool;
  prune_history : bool;
  starvation_cycles : int;
  passthrough : bool;
}

let default_config =
  {
    n_clients = 10;
    duration = 10.;
    spec = Spec.paper_default;
    cost = Ds_server.Cost_model.default;
    seed = 42;
    protocol = Builtin.ss2pl_ocaml;
    trigger = Trigger.Hybrid (0.01, 50);
    extended_relations = false;
    charge_scheduler_time = true;
    prune_history = true;
    starvation_cycles = 50;
    passthrough = false;
  }

type stats = {
  committed_txns : int;
  committed_stmts : int;
  aborted_txns : int;
  cycles : int;
  mean_cycle_time : float;
  p95_cycle_time : float;
  mean_batch : float;
  mean_pending : float;
  scheduler_time : float;
  mean_txn_latency : float;
  p95_txn_latency : float;
  latency_by_tier : (Sla.tier * float * float * int) list;
}

type client = {
  cid : int;
  gen : Generator.t;
  mutable txn : Txn.t;
  mutable remaining : Request.t list;
  mutable txn_start : float;
  mutable outstanding : (int * int) option;
  mutable stall_cycles : int;
  mutable data_stmts : int;  (** executed data statements of current txn *)
}

type sim = {
  cfg : config;
  engine : Engine.t;
  backend : Ds_server.Backend.t;
  sched : Scheduler.t;
  clients : client array;
  by_ta : (int, client) Hashtbl.t;
  rng : Rng.t;
  mutable ta_counter : int;
  mutable req_counter : int;
  mutable cycle_fire_pending : bool;
  mutable last_cycle_at : float;
  mutable committed_txns : int;
  mutable committed_stmts : int;
  mutable aborted_txns : int;
  cycle_times : Ds_stats.Summary.t;
  cycle_times_hist : Ds_stats.Histogram.t;
  batch_sizes : Ds_stats.Summary.t;
  pending_sizes : Ds_stats.Summary.t;
  latencies : Ds_stats.Histogram.t;
  tier_latencies : (Sla.tier, Ds_stats.Histogram.t * int ref) Hashtbl.t;
}

let fresh_ta sim client =
  sim.ta_counter <- sim.ta_counter + 1;
  Hashtbl.replace sim.by_ta sim.ta_counter client;
  sim.ta_counter

let renumber sim (r : Request.t) =
  sim.req_counter <- sim.req_counter + 1;
  { r with Request.id = sim.req_counter; arrival = Engine.now sim.engine }

let rec start_txn sim client =
  let ta = fresh_ta sim client in
  client.txn <- Generator.next_txn client.gen ~ta;
  client.remaining <- client.txn.Txn.requests;
  client.txn_start <- Engine.now sim.engine;
  client.data_stmts <- 0;
  client.stall_cycles <- 0;
  submit_next sim client

and submit_next sim client =
  match client.remaining with
  | [] -> ()
  | req :: rest ->
    client.remaining <- rest;
    let req = renumber sim req in
    client.outstanding <- Some (Request.key req);
    client.stall_cycles <- 0;
    Scheduler.submit sim.sched req;
    maybe_fire sim

and maybe_fire sim =
  let elapsed = Engine.now sim.engine -. sim.last_cycle_at in
  if
    (not sim.cycle_fire_pending)
    && Trigger.due sim.cfg.trigger
         ~queue_len:(Scheduler.queue_length sim.sched)
         ~elapsed
  then begin
    sim.cycle_fire_pending <- true;
    ignore (Engine.schedule sim.engine ~after:0. (fun () -> run_cycle sim))
  end

and run_cycle sim =
  sim.cycle_fire_pending <- false;
  sim.last_cycle_at <- Engine.now sim.engine;
  if Scheduler.queue_length sim.sched > 0 || Scheduler.pending_count sim.sched > 0
  then begin
    let qualified, stats =
      Scheduler.cycle ~passthrough:sim.cfg.passthrough sim.sched
    in
    let dt = Scheduler.total_time stats.Scheduler.times in
    Ds_stats.Summary.add sim.cycle_times dt;
    Ds_stats.Histogram.add sim.cycle_times_hist dt;
    Ds_stats.Summary.add sim.batch_sizes (float_of_int stats.Scheduler.qualified);
    Ds_stats.Summary.add sim.pending_sizes
      (float_of_int stats.Scheduler.pending_before);
    (* Starvation accounting: clients whose outstanding request is still
       pending after this cycle. *)
    let qualified_keys = Hashtbl.create 64 in
    List.iter
      (fun r -> Hashtbl.replace qualified_keys (Request.key r) ())
      qualified;
    Array.iter
      (fun c ->
        match c.outstanding with
        | Some key when not (Hashtbl.mem qualified_keys key) ->
          c.stall_cycles <- c.stall_cycles + 1;
          if c.stall_cycles >= sim.cfg.starvation_cycles then begin
            let ta = fst key in
            ignore (Scheduler.abort_txn sim.sched ta);
            Hashtbl.remove sim.by_ta ta;
            sim.aborted_txns <- sim.aborted_txns + 1;
            c.outstanding <- None;
            let backoff = 0.001 *. (1. +. Rng.float sim.rng) in
            ignore
              (Engine.schedule sim.engine ~after:backoff (fun () ->
                   start_txn sim c))
          end
        | _ -> ())
      sim.clients;
    let dispatch_delay = if sim.cfg.charge_scheduler_time then dt else 0. in
    ignore
      (Engine.schedule sim.engine ~after:dispatch_delay (fun () ->
           Ds_server.Backend.execute_seq sim.backend qualified
             ~on_each:(deliver sim) (fun () -> ())))
  end

and deliver sim (req : Request.t) =
  match Hashtbl.find_opt sim.by_ta req.Request.ta with
  | None -> () (* aborted meanwhile *)
  | Some client -> (
    match client.outstanding with
    | Some key when key = Request.key req ->
      client.outstanding <- None;
      if Request.is_data req then begin
        client.data_stmts <- client.data_stmts + 1;
        submit_next sim client
      end
      else begin
        (* Terminal executed: transaction complete. *)
        let now = Engine.now sim.engine in
        Hashtbl.remove sim.by_ta req.Request.ta;
        if now <= sim.cfg.duration && Op.equal req.Request.op Op.Commit then begin
          sim.committed_txns <- sim.committed_txns + 1;
          sim.committed_stmts <- sim.committed_stmts + client.data_stmts;
          let latency = now -. client.txn_start in
          Ds_stats.Histogram.add sim.latencies latency;
          let tier = client.txn.Txn.sla.Sla.tier in
          let hist, count =
            match Hashtbl.find_opt sim.tier_latencies tier with
            | Some entry -> entry
            | None ->
              let entry = (Ds_stats.Histogram.create (), ref 0) in
              Hashtbl.add sim.tier_latencies tier entry;
              entry
          in
          Ds_stats.Histogram.add hist latency;
          incr count
        end;
        start_txn sim client
      end
    | Some _ | None -> ())

let run_full (cfg : config) =
  (match Spec.validate cfg.spec with
  | Ok () -> ()
  | Error m -> invalid_arg ("Middleware.run: " ^ m));
  let engine = Engine.create () in
  let master = Rng.create cfg.seed in
  let sched =
    Scheduler.create ~extended:cfg.extended_relations
      ~prune_history_each_cycle:cfg.prune_history cfg.protocol
  in
  let sim =
    {
      cfg;
      engine;
      backend = Ds_server.Backend.create engine cfg.cost;
      sched;
      clients =
        Array.init cfg.n_clients (fun i ->
            {
              cid = i;
              gen = Generator.create cfg.spec (Rng.split master);
              txn = Txn.make ~ta:0 [ (Op.Commit, None) ];
              remaining = [];
              txn_start = 0.;
              outstanding = None;
              stall_cycles = 0;
              data_stmts = 0;
            });
      by_ta = Hashtbl.create (4 * cfg.n_clients);
      rng = Rng.split master;
      ta_counter = 0;
      req_counter = 0;
      cycle_fire_pending = false;
      last_cycle_at = 0.;
      committed_txns = 0;
      committed_stmts = 0;
      aborted_txns = 0;
      cycle_times = Ds_stats.Summary.create ();
      cycle_times_hist = Ds_stats.Histogram.create ();
      batch_sizes = Ds_stats.Summary.create ();
      pending_sizes = Ds_stats.Summary.create ();
      latencies = Ds_stats.Histogram.create ();
      tier_latencies = Hashtbl.create 4;
    }
  in
  (* Periodic timer for time-based triggers; it re-checks pending work even
     when no client is submitting. *)
  (match Trigger.period cfg.trigger with
  | Some dt ->
    let rec tick () =
      maybe_fire sim;
      if Engine.now engine < cfg.duration then
        ignore (Engine.schedule engine ~after:dt tick)
    in
    ignore (Engine.schedule engine ~after:dt tick)
  | None ->
    (* Pure fill triggers can stall when every client is blocked; a slow
       fallback timer keeps re-evaluating pending requests. *)
    let rec tick () =
      if Scheduler.pending_count sim.sched > 0 && not sim.cycle_fire_pending
      then begin
        sim.cycle_fire_pending <- true;
        ignore (Engine.schedule engine ~after:0. (fun () -> run_cycle sim))
      end;
      if Engine.now engine < cfg.duration then
        ignore (Engine.schedule engine ~after:0.05 tick)
    in
    ignore (Engine.schedule engine ~after:0.05 tick));
  Array.iter
    (fun c -> ignore (Engine.schedule engine ~after:0. (fun () -> start_txn sim c)))
    sim.clients;
  Engine.run_until engine ~until:cfg.duration;
  let tiers =
    Hashtbl.fold
      (fun tier (hist, count) acc ->
        (tier, Ds_stats.Histogram.mean hist, Ds_stats.Histogram.p95 hist, !count)
        :: acc)
      sim.tier_latencies []
    |> List.sort (fun (a, _, _, _) (b, _, _, _) -> Sla.compare_urgency { Sla.premium with tier = a } { Sla.premium with tier = b })
  in
  ( {
      committed_txns = sim.committed_txns;
      committed_stmts = sim.committed_stmts;
      aborted_txns = sim.aborted_txns;
      cycles = Scheduler.cycles_run sim.sched;
      mean_cycle_time = Ds_stats.Summary.mean sim.cycle_times;
      p95_cycle_time = Ds_stats.Histogram.p95 sim.cycle_times_hist;
      mean_batch = Ds_stats.Summary.mean sim.batch_sizes;
      mean_pending = Ds_stats.Summary.mean sim.pending_sizes;
      scheduler_time = Ds_stats.Summary.sum sim.cycle_times;
      mean_txn_latency = Ds_stats.Histogram.mean sim.latencies;
      p95_txn_latency = Ds_stats.Histogram.p95 sim.latencies;
      latency_by_tier = tiers;
    },
    sched )

let run cfg = fst (run_full cfg)

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "committed=%d stmts=%d aborted=%d cycles=%d cycle(mean=%.2fms p95=%.2fms) \
     batch=%.1f pending=%.1f sched_time=%.2fs latency(mean=%.3fs p95=%.3fs)"
    s.committed_txns s.committed_stmts s.aborted_txns s.cycles
    (1000. *. s.mean_cycle_time)
    (1000. *. s.p95_cycle_time)
    s.mean_batch s.mean_pending s.scheduler_time s.mean_txn_latency
    s.p95_txn_latency
