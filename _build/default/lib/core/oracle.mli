(** Hand-coded SS2PL qualifier: the imperative implementation a developer
    would write today (the paper's state of the art, §1). It doubles as the
    test oracle the declarative formulations are verified against, and as the
    "function points / lines of code" comparison subject of §3.4. *)

open Ds_model

(** Semantics identical to Listing 1 (see {!Queries.ss2pl}): returns the
    (TA, INTRATA) keys of pending requests executable under SS2PL given
    [history], ordered by request id. *)
val ss2pl_qualify :
  pending:Request.t list -> history:Request.t list -> (int * int) list

(** Line count of this module's implementation (kept in sync by a test). *)
val implementation_loc : int
