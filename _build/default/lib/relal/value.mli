(** SQL values. [Null] is a first-class value; three-valued logic over it is
    implemented by the expression evaluator ({!Ra}), while this module's
    [compare]/[equal] are *total* (Null first) so values can key indexes and
    sorts deterministically. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

val null : t
val int : int -> t
val float : float -> t
val str : string -> t
val bool : bool -> t

val is_null : t -> bool

(** Total order: Null < Bool < Int ~ Float (numeric) < Str. Ints and floats
    compare numerically so [Int 1 = Float 1.0] for grouping purposes. *)
val compare : t -> t -> int

val equal : t -> t -> bool
val hash : t -> int

(** SQL-ish rendering: NULL, 42, 4.2, 'text', TRUE. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** Coercions used by the expression evaluator; [None] when not coercible.
    [Null] maps to [None]. *)
val as_int : t -> int option

val as_float : t -> float option
val as_bool : t -> bool option
val as_string : t -> string option
