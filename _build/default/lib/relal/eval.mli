(** Plan evaluation (materializing executor).

    Rows flow as value arrays. [env] is the stack of outer rows for
    correlated subqueries: [Ra.Outer (1, i)] reads column [i] of the head.

    Comparisons follow SQL three-valued logic: any comparison with NULL is
    NULL; [Filter] keeps rows whose predicate is exactly TRUE. *)

(** [run ?env plan] evaluates and materializes the result rows in order. *)
val run : ?env:Value.t array list -> Ra.plan -> Value.t array list

(** [eval_expr ?env ~row e] evaluates a scalar expression against [row]. *)
val eval_expr : ?env:Value.t array list -> row:Value.t array -> Ra.expr -> Value.t

(** [truthy v] is true iff [v] is [Bool true] (SQL WHERE semantics). *)
val truthy : Value.t -> bool

(** When true (the default), a hash join whose right side is a base-table
    scan with a declared index on exactly the join columns probes that index
    instead of building an ephemeral hash table. The persistent index is
    shared by every join over the table within a query (Listing 1 probes
    [history] three times), and across queries until the table changes.
    Toggled off by the optimizer/index ablation bench. *)
val use_table_indexes : bool ref
