type ty = Tint | Tfloat | Tstr | Tbool

type column = { rel : string option; name : string; ty : ty }

type t = column array

let column ?rel name ty = { rel; name; ty }

let of_list = Array.of_list

let arity = Array.length

let ty_to_string = function
  | Tint -> "INT"
  | Tfloat -> "FLOAT"
  | Tstr -> "TEXT"
  | Tbool -> "BOOL"

let pp ppf s =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf c ->
         (match c.rel with
         | Some r -> Format.fprintf ppf "%s." r
         | None -> ());
         Format.fprintf ppf "%s %s" c.name (ty_to_string c.ty)))
    (Array.to_seq s)

let concat = Array.append

let requalify rel s = Array.map (fun c -> { c with rel = Some rel }) s

let lower = String.lowercase_ascii

let find s ~rel ~name =
  let name = lower name in
  let rel = Option.map lower rel in
  let matches c =
    lower c.name = name
    &&
    match rel with
    | None -> true
    | Some r -> ( match c.rel with Some cr -> lower cr = r | None -> false)
  in
  let hits = ref [] in
  Array.iteri (fun i c -> if matches c then hits := i :: !hits) s;
  match !hits with
  | [ i ] -> Ok i
  | [] -> Error `Unknown
  | _ :: _ :: _ -> Error `Ambiguous
