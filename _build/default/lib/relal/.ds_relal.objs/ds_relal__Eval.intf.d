lib/relal/eval.mli: Ra Value
