lib/relal/table.mli: Schema Value
