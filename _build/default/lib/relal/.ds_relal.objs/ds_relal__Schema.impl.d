lib/relal/schema.ml: Array Format Option String
