lib/relal/eval.ml: Array Float Format Hashtbl List Option Ra Schema Table Value
