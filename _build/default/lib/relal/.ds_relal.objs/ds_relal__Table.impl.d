lib/relal/table.ml: Array Ds_util Hashtbl Int List Option Printf Schema Value
