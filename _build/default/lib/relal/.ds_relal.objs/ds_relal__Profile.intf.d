lib/relal/profile.mli: Ra Value
