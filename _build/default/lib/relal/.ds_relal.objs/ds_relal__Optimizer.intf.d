lib/relal/optimizer.mli: Ra
