lib/relal/optimizer.ml: Array Eval Int List Option Ra Schema Set Value
