lib/relal/ra.mli: Format Schema Table Value
