lib/relal/profile.ml: Buffer Eval List Printf Ra Table Unix
