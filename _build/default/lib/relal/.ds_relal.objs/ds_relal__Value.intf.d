lib/relal/value.mli: Format
