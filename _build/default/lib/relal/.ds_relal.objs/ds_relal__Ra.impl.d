lib/relal/ra.ml: Format List Option Schema Table Value
