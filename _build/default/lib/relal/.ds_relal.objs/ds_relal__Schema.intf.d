lib/relal/schema.mli: Format
