module Vec = Ds_util.Vec

module Key = struct
  type t = Value.t list

  let equal = List.equal Value.equal

  let hash k = List.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 k
end

module Key_tbl = Hashtbl.Make (Key)

type index = { cols : int list; mutable map : int list Key_tbl.t option }

(* Ordered index: rows sorted by one column's value (NULLs excluded). *)
type ordered_index = {
  ocol : int;
  mutable sorted : (Value.t * Value.t array) array option;
}

type t = {
  name : string;
  schema : Schema.t;
  rows : Value.t array Vec.t;
  mutable indexes : index list;
  mutable ordered : ordered_index list;
}

let create ~name schema =
  { name; schema; rows = Vec.create (); indexes = []; ordered = [] }

let name t = t.name

let schema t = t.schema

let row_count t = Vec.length t.rows

let invalidate t =
  List.iter (fun ix -> ix.map <- None) t.indexes;
  List.iter (fun ox -> ox.sorted <- None) t.ordered

let insert t row =
  if Array.length row <> Schema.arity t.schema then
    invalid_arg
      (Printf.sprintf "Table.insert(%s): arity %d, schema wants %d" t.name
         (Array.length row) (Schema.arity t.schema));
  Vec.push t.rows row;
  invalidate t

let insert_many t rows = List.iter (insert t) rows

let delete_where t p =
  let kept = Vec.create () in
  let removed = ref 0 in
  Vec.iter
    (fun row -> if p row then incr removed else Vec.push kept row)
    t.rows;
  if !removed > 0 then begin
    Vec.clear t.rows;
    Vec.iter (Vec.push t.rows) kept;
    invalidate t
  end;
  !removed

let update_where t p f =
  let touched = ref 0 in
  Vec.iter
    (fun row ->
      if p row then begin
        f row;
        incr touched
      end)
    t.rows;
  if !touched > 0 then invalidate t;
  !touched

let clear t =
  Vec.clear t.rows;
  invalidate t

let rows t = Vec.to_list t.rows

let iter f t = Vec.iter f t.rows

let fold f acc t = Vec.fold_left f acc t.rows

let same_cols = List.equal Int.equal

let create_index t cols =
  List.iter
    (fun c ->
      if c < 0 || c >= Schema.arity t.schema then
        invalid_arg "Table.create_index: column out of range")
    cols;
  if not (List.exists (fun ix -> same_cols ix.cols cols) t.indexes) then
    t.indexes <- { cols; map = None } :: t.indexes

let has_index t cols = List.exists (fun ix -> same_cols ix.cols cols) t.indexes

let key_of_row cols row = List.map (fun c -> row.(c)) cols

let build ix t =
  let map = Key_tbl.create (max 16 (Vec.length t.rows)) in
  Vec.iteri
    (fun pos row ->
      let key = key_of_row ix.cols row in
      let prev = Option.value ~default:[] (Key_tbl.find_opt map key) in
      Key_tbl.replace map key (pos :: prev))
    t.rows;
  (* Reverse so probe returns rows in insertion order. *)
  Key_tbl.filter_map_inplace (fun _ poss -> Some (List.rev poss)) map;
  ix.map <- Some map;
  map

let probe t cols key =
  match List.find_opt (fun ix -> same_cols ix.cols cols) t.indexes with
  | None -> invalid_arg (Printf.sprintf "Table.probe(%s): no such index" t.name)
  | Some ix ->
    let map = match ix.map with Some m -> m | None -> build ix t in
    (match Key_tbl.find_opt map key with
    | None -> []
    | Some positions -> List.map (Vec.get t.rows) positions)

let create_ordered_index t col =
  if col < 0 || col >= Schema.arity t.schema then
    invalid_arg "Table.create_ordered_index: column out of range";
  if not (List.exists (fun ox -> ox.ocol = col) t.ordered) then
    t.ordered <- { ocol = col; sorted = None } :: t.ordered

let has_ordered_index t col = List.exists (fun ox -> ox.ocol = col) t.ordered

let build_ordered ox t =
  let cells = Vec.create () in
  Vec.iter
    (fun row ->
      let v = row.(ox.ocol) in
      if not (Value.is_null v) then Vec.push cells (v, row))
    t.rows;
  let arr = Vec.to_array cells in
  Array.stable_sort (fun (a, _) (b, _) -> Value.compare a b) arr;
  ox.sorted <- Some arr;
  arr

let range_probe t col ~lo ~hi =
  match List.find_opt (fun ox -> ox.ocol = col) t.ordered with
  | None ->
    invalid_arg (Printf.sprintf "Table.range_probe(%s): no ordered index" t.name)
  | Some ox ->
    let arr = match ox.sorted with Some a -> a | None -> build_ordered ox t in
    let n = Array.length arr in
    (* First position whose key satisfies the lower bound. *)
    let start =
      match lo with
      | None -> 0
      | Some (v, inclusive) ->
        let rec bisect l r =
          if l >= r then l
          else begin
            let m = (l + r) / 2 in
            let c = Value.compare (fst arr.(m)) v in
            if c < 0 || (c = 0 && not inclusive) then bisect (m + 1) r
            else bisect l m
          end
        in
        bisect 0 n
    in
    (* First position whose key violates the upper bound. *)
    let stop =
      match hi with
      | None -> n
      | Some (v, inclusive) ->
        let rec bisect l r =
          if l >= r then l
          else begin
            let m = (l + r) / 2 in
            let c = Value.compare (fst arr.(m)) v in
            if c < 0 || (c = 0 && inclusive) then bisect (m + 1) r
            else bisect l m
          end
        in
        bisect 0 n
    in
    let out = ref [] in
    for i = stop - 1 downto start do
      out := snd arr.(i) :: !out
    done;
    !out

let indexed_columns t = List.map (fun ix -> ix.cols) t.indexes
