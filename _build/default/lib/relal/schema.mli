(** Relation schemas: ordered, possibly qualified column names. Qualifiers
    carry table aliases ("a" in "a.object") through plan composition so the
    binder can resolve names the way SQL scoping requires. *)

type ty = Tint | Tfloat | Tstr | Tbool

type column = { rel : string option; name : string; ty : ty }

type t = column array

val column : ?rel:string -> string -> ty -> column
val of_list : column list -> t
val arity : t -> int
val ty_to_string : ty -> string
val pp : Format.formatter -> t -> unit

(** [concat a b] appends (join output schema). *)
val concat : t -> t -> t

(** [requalify rel s] replaces every column's qualifier by [rel] (applied when
    a subquery or table gets an alias). *)
val requalify : string -> t -> t

(** [find s ~rel ~name] resolves a (possibly qualified) column reference to
    its position.
    - With [rel = Some r]: matches columns whose qualifier is [r].
    - With [rel = None]: matches by name across all columns.
    Matching is case-insensitive.
    @return [Error `Unknown] if no column matches, [Error `Ambiguous] if
    several do. *)
val find :
  t -> rel:string option -> name:string -> (int, [ `Unknown | `Ambiguous ]) result
