type cmp = Eq | Neq | Lt | Leq | Gt | Geq

type arith = Add | Sub | Mul | Div | Mod

type expr =
  | Col of int
  | Outer of int * int
  | Const of Value.t
  | Param of Value.t ref
  | Cmp of cmp * expr * expr
  | Arith of arith * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Is_null of expr
  | Exists of plan
  | In_list of expr * Value.t list
  | Case of (expr * expr) list * expr

and join_kind = Inner | Left | Semi | Anti

and join = {
  kind : join_kind;
  lkeys : expr list;
  rkeys : expr list;
  residual : expr option;
  left : plan;
  right : plan;
}

and agg_fn = Count_star | Count of expr | Sum of expr | Min of expr | Max of expr | Avg of expr

and group = {
  keys : (expr * Schema.column) list;
  aggs : (agg_fn * Schema.column) list;
  input : plan;
}

and plan =
  | Scan of Table.t * string option
  | Values of Schema.t * Value.t array list
  | Filter of expr * plan
  | Project of (expr * Schema.column) list * plan
  | Cross of plan * plan
  | Join of join
  | Union_all of plan * plan
  | Union of plan * plan
  | Except of plan * plan
  | Intersect of plan * plan
  | Distinct of plan
  | Sort of (expr * [ `Asc | `Desc ]) list * plan
  | Limit of int * plan
  | Group of group

exception Type_error of string

let rec schema_of = function
  | Scan (t, alias) -> (
    let s = Table.schema t in
    match alias with None -> s | Some a -> Schema.requalify a s)
  | Values (s, _) -> s
  | Filter (_, p) | Distinct p | Sort (_, p) | Limit (_, p) -> schema_of p
  | Project (cols, _) -> Schema.of_list (List.map snd cols)
  | Cross (l, r) -> Schema.concat (schema_of l) (schema_of r)
  | Join { kind; left; right; _ } -> (
    match kind with
    | Inner | Left -> Schema.concat (schema_of left) (schema_of right)
    | Semi | Anti -> schema_of left)
  | Union_all (l, _) | Union (l, _) | Except (l, _) | Intersect (l, _) ->
    schema_of l
  | Group { keys; aggs; _ } ->
    Schema.of_list (List.map snd keys @ List.map snd aggs)

let rec plan_size = function
  | Scan _ | Values _ -> 1
  | Filter (e, p) -> 1 + expr_size e + plan_size p
  | Project (cols, p) ->
    1 + List.fold_left (fun acc (e, _) -> acc + expr_size e) 0 cols + plan_size p
  | Cross (l, r) -> 1 + plan_size l + plan_size r
  | Join { lkeys; rkeys; residual; left; right; _ } ->
    let exprs = lkeys @ rkeys @ Option.to_list residual in
    1
    + List.fold_left (fun acc e -> acc + expr_size e) 0 exprs
    + plan_size left + plan_size right
  | Union_all (l, r) | Union (l, r) | Except (l, r) | Intersect (l, r) ->
    1 + plan_size l + plan_size r
  | Distinct p | Limit (_, p) -> 1 + plan_size p
  | Sort (keys, p) ->
    1 + List.fold_left (fun acc (e, _) -> acc + expr_size e) 0 keys + plan_size p
  | Group { keys; aggs; input } ->
    let agg_expr = function
      | Count_star -> 0
      | Count e | Sum e | Min e | Max e | Avg e -> expr_size e
    in
    1
    + List.fold_left (fun acc (e, _) -> acc + expr_size e) 0 keys
    + List.fold_left (fun acc (a, _) -> acc + agg_expr a) 0 aggs
    + plan_size input

and expr_size = function
  | Col _ | Outer _ | Const _ | Param _ -> 1
  | Cmp (_, a, b) | Arith (_, a, b) | And (a, b) | Or (a, b) ->
    1 + expr_size a + expr_size b
  | Not e | Is_null e | In_list (e, _) -> 1 + expr_size e
  | Exists p -> 1 + plan_size p
  | Case (arms, default) ->
    1 + expr_size default
    + List.fold_left (fun acc (c, r) -> acc + expr_size c + expr_size r) 0 arms

let expr_children = function
  | Col _ | Outer _ | Const _ | Param _ | Exists _ -> []
  | Cmp (_, a, b) | Arith (_, a, b) | And (a, b) | Or (a, b) -> [ a; b ]
  | Not e | Is_null e | In_list (e, _) -> [ e ]
  | Case (arms, default) ->
    List.concat_map (fun (c, r) -> [ c; r ]) arms @ [ default ]

let rec map_expr_plans f = function
  | (Col _ | Outer _ | Const _ | Param _) as e -> e
  | Cmp (c, a, b) -> Cmp (c, map_expr_plans f a, map_expr_plans f b)
  | Arith (o, a, b) -> Arith (o, map_expr_plans f a, map_expr_plans f b)
  | And (a, b) -> And (map_expr_plans f a, map_expr_plans f b)
  | Or (a, b) -> Or (map_expr_plans f a, map_expr_plans f b)
  | Not e -> Not (map_expr_plans f e)
  | Is_null e -> Is_null (map_expr_plans f e)
  | Exists p -> Exists (f p)
  | In_list (e, vs) -> In_list (map_expr_plans f e, vs)
  | Case (arms, default) ->
    Case
      ( List.map (fun (c, r) -> (map_expr_plans f c, map_expr_plans f r)) arms,
        map_expr_plans f default )

(* Depth is relative: entering an Exists increments the threshold. *)
let rec outer_in_expr d = function
  | Outer (k, _) -> k >= d
  | Col _ | Const _ | Param _ -> false
  | Cmp (_, a, b) | Arith (_, a, b) | And (a, b) | Or (a, b) ->
    outer_in_expr d a || outer_in_expr d b
  | Not e | Is_null e | In_list (e, _) -> outer_in_expr d e
  | Case (arms, default) ->
    outer_in_expr d default
    || List.exists (fun (c, r) -> outer_in_expr d c || outer_in_expr d r) arms
  | Exists p -> outer_in_plan (d + 1) p

and outer_in_plan d = function
  | Scan _ | Values _ -> false
  | Filter (e, p) -> outer_in_expr d e || outer_in_plan d p
  | Project (cols, p) ->
    List.exists (fun (e, _) -> outer_in_expr d e) cols || outer_in_plan d p
  | Cross (l, r) -> outer_in_plan d l || outer_in_plan d r
  | Join { lkeys; rkeys; residual; left; right; _ } ->
    List.exists (outer_in_expr d) (lkeys @ rkeys @ Option.to_list residual)
    || outer_in_plan d left || outer_in_plan d right
  | Union_all (l, r) | Union (l, r) | Except (l, r) | Intersect (l, r) ->
    outer_in_plan d l || outer_in_plan d r
  | Distinct p | Limit (_, p) -> outer_in_plan d p
  | Sort (keys, p) ->
    List.exists (fun (e, _) -> outer_in_expr d e) keys || outer_in_plan d p
  | Group { keys; aggs; input } ->
    List.exists (fun (e, _) -> outer_in_expr d e) keys
    || List.exists
         (fun (a, _) ->
           match a with
           | Count_star -> false
           | Count e | Sum e | Min e | Max e | Avg e -> outer_in_expr d e)
         aggs
    || outer_in_plan d input

let refers_outer ~depth e = outer_in_expr depth e

let plan_refers_outer ~depth p = outer_in_plan depth p

let cmp_to_string = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Leq -> "<="
  | Gt -> ">"
  | Geq -> ">="

let arith_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"

let rec pp_expr ppf = function
  | Col i -> Format.fprintf ppf "$%d" i
  | Outer (d, i) -> Format.fprintf ppf "outer(%d,$%d)" d i
  | Const v -> Value.pp ppf v
  | Param r -> Format.fprintf ppf "?=%a" Value.pp !r
  | Cmp (c, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (cmp_to_string c) pp_expr b
  | Arith (o, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (arith_to_string o) pp_expr b
  | And (a, b) -> Format.fprintf ppf "(%a AND %a)" pp_expr a pp_expr b
  | Or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp_expr a pp_expr b
  | Not e -> Format.fprintf ppf "(NOT %a)" pp_expr e
  | Is_null e -> Format.fprintf ppf "(%a IS NULL)" pp_expr e
  | Exists p -> Format.fprintf ppf "EXISTS(@[%a@])" pp_plan p
  | Case (arms, default) ->
    Format.fprintf ppf "CASE%a ELSE %a END"
      (Format.pp_print_list
         ~pp_sep:(fun _ () -> ())
         (fun ppf (c, r) ->
           Format.fprintf ppf " WHEN %a THEN %a" pp_expr c pp_expr r))
      arms pp_expr default
  | In_list (e, vs) ->
    Format.fprintf ppf "(%a IN (%a))" pp_expr e
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Value.pp)
      vs

and pp_plan ppf plan =
  let kind_str = function
    | Inner -> "INNER"
    | Left -> "LEFT"
    | Semi -> "SEMI"
    | Anti -> "ANTI"
  in
  match plan with
  | Scan (t, alias) ->
    Format.fprintf ppf "Scan(%s%s)" (Table.name t)
      (match alias with Some a -> " AS " ^ a | None -> "")
  | Values (s, rows) ->
    Format.fprintf ppf "Values(arity=%d, rows=%d)" (Schema.arity s)
      (List.length rows)
  | Filter (e, p) ->
    Format.fprintf ppf "@[<v 2>Filter(%a)@,%a@]" pp_expr e pp_plan p
  | Project (cols, p) ->
    Format.fprintf ppf "@[<v 2>Project(%a)@,%a@]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (e, (c : Schema.column)) ->
           Format.fprintf ppf "%a AS %s" pp_expr e c.name))
      cols pp_plan p
  | Cross (l, r) ->
    Format.fprintf ppf "@[<v 2>Cross@,%a@,%a@]" pp_plan l pp_plan r
  | Join { kind; lkeys; rkeys; residual; left; right } ->
    Format.fprintf ppf "@[<v 2>%sJoin(keys=[%a]=[%a]%a)@,%a@,%a@]"
      (kind_str kind)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         pp_expr)
      lkeys
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         pp_expr)
      rkeys
      (fun ppf -> function
        | None -> ()
        | Some e -> Format.fprintf ppf ", residual=%a" pp_expr e)
      residual pp_plan left pp_plan right
  | Union_all (l, r) ->
    Format.fprintf ppf "@[<v 2>UnionAll@,%a@,%a@]" pp_plan l pp_plan r
  | Union (l, r) -> Format.fprintf ppf "@[<v 2>Union@,%a@,%a@]" pp_plan l pp_plan r
  | Except (l, r) ->
    Format.fprintf ppf "@[<v 2>Except@,%a@,%a@]" pp_plan l pp_plan r
  | Intersect (l, r) ->
    Format.fprintf ppf "@[<v 2>Intersect@,%a@,%a@]" pp_plan l pp_plan r
  | Distinct p -> Format.fprintf ppf "@[<v 2>Distinct@,%a@]" pp_plan p
  | Sort (keys, p) ->
    Format.fprintf ppf "@[<v 2>Sort(%a)@,%a@]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (e, dir) ->
           Format.fprintf ppf "%a %s" pp_expr e
             (match dir with `Asc -> "ASC" | `Desc -> "DESC")))
      keys pp_plan p
  | Limit (n, p) -> Format.fprintf ppf "@[<v 2>Limit(%d)@,%a@]" n pp_plan p
  | Group { keys; aggs; input } ->
    let agg_name = function
      | Count_star -> "count(*)"
      | Count _ -> "count"
      | Sum _ -> "sum"
      | Min _ -> "min"
      | Max _ -> "max"
      | Avg _ -> "avg"
    in
    Format.fprintf ppf "@[<v 2>Group(keys=%d, aggs=[%a])@,%a@]"
      (List.length keys)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (a, _) -> Format.pp_print_string ppf (agg_name a)))
      aggs pp_plan input
