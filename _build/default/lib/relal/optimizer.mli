(** Rule-based plan rewriting. The point of the paper's architecture is that
    "optimization techniques from declarative query processing can be used to
    improve scheduler performance without affecting the scheduler
    specification" (§1) — this module is that lever, and the
    [optimizer_ablation] bench measures it.

    Levels:
    - [`None]: plan untouched (evaluates correlated subqueries by nested
      re-execution, crosses by enumeration).
    - [`Basic]: constant folding; conjunction splitting; predicate pushdown
      through project/cross/join/set-ops; equi-join detection over cross
      products (hash joins).
    - [`Full]: [`Basic] plus decorrelation of (NOT) EXISTS subqueries into
      hash semi/anti joins, factoring common conjuncts out of disjunctions to
      expose join keys (this is what turns Listing 1's correlated NOT EXISTS
      into a hash anti join on TA). *)

type level = [ `None | `Basic | `Full ]

val optimize : ?level:level -> Ra.plan -> Ra.plan

(** Exposed for tests. *)

(** Splits nested [And]s into a conjunct list. *)
val conjuncts : Ra.expr -> Ra.expr list

val conjoin : Ra.expr list -> Ra.expr

(** [(A and B...) or (A and C...) --> A and (B... or C...)] for syntactically
    equal conjuncts. *)
val factor_common_disjunction : Ra.expr -> Ra.expr

(** [split_join_on ~left_arity on] splits a join's ON predicate (written over
    the concatenated row) into hash keys and a residual:
    [(lkeys, rkeys, residual)] where [lkeys] read left rows, [rkeys] read
    right rows (columns shifted down by [left_arity]) and [residual] keeps the
    concatenated-row numbering. Used when lowering LEFT JOIN, whose outer
    semantics require keys at plan-build time. *)
val split_join_on :
  left_arity:int -> Ra.expr -> Ra.expr list * Ra.expr list * Ra.expr option
