open Ra

type level = [ `None | `Basic | `Full ]

(* ------------------------------------------------------------------ *)
(* Conjunction utilities                                              *)
(* ------------------------------------------------------------------ *)

let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let conjoin = function
  | [] -> Const (Value.Bool true)
  | e :: rest -> List.fold_left (fun acc c -> And (acc, c)) e rest

let rec expr_equal a b =
  match (a, b) with
  | Col i, Col j -> i = j
  | Outer (d, i), Outer (e, j) -> d = e && i = j
  | Const u, Const v -> Value.compare u v = 0 && Value.is_null u = Value.is_null v
  | Param r, Param r' -> r == r'
  | Cmp (c, x, y), Cmp (d, u, v) -> c = d && expr_equal x u && expr_equal y v
  | Arith (c, x, y), Arith (d, u, v) -> c = d && expr_equal x u && expr_equal y v
  | And (x, y), And (u, v) | Or (x, y), Or (u, v) ->
    expr_equal x u && expr_equal y v
  | Not x, Not u | Is_null x, Is_null u -> expr_equal x u
  | In_list (x, vs), In_list (u, ws) ->
    expr_equal x u && List.equal Value.equal vs ws
  | Case (a1, d1), Case (a2, d2) ->
    List.length a1 = List.length a2
    && List.for_all2
         (fun (c1, r1) (c2, r2) -> expr_equal c1 c2 && expr_equal r1 r2)
         a1 a2
    && expr_equal d1 d2
  | Exists _, Exists _ -> false (* conservative: never equal *)
  | _ -> false

(* (A and B) or (A and C) --> A and (B or C), recursively, for conjuncts
   that appear (syntactically) in every disjunct. *)
let factor_common_disjunction e =
  let rec disjuncts = function Or (a, b) -> disjuncts a @ disjuncts b | e -> [ e ] in
  match disjuncts e with
  | [] | [ _ ] -> e
  | first :: rest as all ->
    let conj_lists = List.map conjuncts all in
    let first_conjs = conjuncts first in
    ignore rest;
    let common =
      List.filter
        (fun c -> List.for_all (fun l -> List.exists (expr_equal c) l) conj_lists)
        first_conjs
    in
    if common = [] then e
    else begin
      let strip l =
        (* Remove one occurrence of each common conjunct. *)
        List.fold_left
          (fun acc c ->
            let rec remove = function
              | [] -> []
              | x :: xs -> if expr_equal x c then xs else x :: remove xs
            in
            remove acc)
          l common
      in
      let residuals = List.map strip conj_lists in
      let residual_or =
        if List.exists (fun l -> l = []) residuals then None
          (* one disjunct reduced to the common part: OR collapses to true *)
        else
          Some
            (match List.map conjoin residuals with
            | [] -> Const (Value.Bool true)
            | d :: ds -> List.fold_left (fun acc x -> Or (acc, x)) d ds)
      in
      match residual_or with
      | None -> conjoin common
      | Some r -> And (conjoin common, r)
    end

(* ------------------------------------------------------------------ *)
(* Column usage and remapping                                         *)
(* ------------------------------------------------------------------ *)

module Int_set = Set.Make (Int)

(* Columns of the *current* row used by [e], including references from
   nested subqueries via Outer at the matching relative depth. *)
let cols_used e =
  let acc = ref Int_set.empty in
  let rec in_expr d = function
    | Col i -> if d = 0 then acc := Int_set.add i !acc
    | Outer (k, i) -> if k = d then acc := Int_set.add i !acc
    | Const _ | Param _ -> ()
    | Cmp (_, a, b) | Arith (_, a, b) | And (a, b) | Or (a, b) ->
      in_expr d a;
      in_expr d b
    | Not e | Is_null e | In_list (e, _) -> in_expr d e
    | Case (arms, default) ->
      List.iter
        (fun (c, r) ->
          in_expr d c;
          in_expr d r)
        arms;
      in_expr d default
    | Exists p -> in_plan (d + 1) p
  and in_plan d = function
    | Scan _ | Values _ -> ()
    | Filter (e, p) ->
      in_expr d e;
      in_plan d p
    | Project (cols, p) ->
      List.iter (fun (e, _) -> in_expr d e) cols;
      in_plan d p
    | Cross (l, r) ->
      in_plan d l;
      in_plan d r
    | Join { lkeys; rkeys; residual; left; right; _ } ->
      List.iter (in_expr d) (lkeys @ rkeys @ Option.to_list residual);
      in_plan d left;
      in_plan d right
    | Union_all (l, r) | Union (l, r) | Except (l, r) | Intersect (l, r) ->
      in_plan d l;
      in_plan d r
    | Distinct p | Limit (_, p) -> in_plan d p
    | Sort (keys, p) ->
      List.iter (fun (e, _) -> in_expr d e) keys;
      in_plan d p
    | Group { keys; aggs; input } ->
      List.iter (fun (e, _) -> in_expr d e) keys;
      List.iter
        (fun (a, _) ->
          match a with
          | Count_star -> ()
          | Count e | Sum e | Min e | Max e | Avg e -> in_expr d e)
        aggs;
      in_plan d input
  in
  in_expr 0 e;
  !acc

(* Remap the current row's columns through [f], following references into
   nested subqueries (Outer at matching depth). *)
let map_cols f e =
  let rec in_expr d = function
    | Col i -> if d = 0 then Col (f i) else Col i
    | Outer (k, i) -> if k = d then Outer (k, f i) else Outer (k, i)
    | (Const _ | Param _) as e -> e
    | Cmp (c, a, b) -> Cmp (c, in_expr d a, in_expr d b)
    | Arith (o, a, b) -> Arith (o, in_expr d a, in_expr d b)
    | And (a, b) -> And (in_expr d a, in_expr d b)
    | Or (a, b) -> Or (in_expr d a, in_expr d b)
    | Not e -> Not (in_expr d e)
    | Is_null e -> Is_null (in_expr d e)
    | In_list (e, vs) -> In_list (in_expr d e, vs)
    | Case (arms, default) ->
      Case
        ( List.map (fun (c, r) -> (in_expr d c, in_expr d r)) arms,
          in_expr d default )
    | Exists p -> Exists (in_plan (d + 1) p)
  and in_plan d = function
    | (Scan _ | Values _) as p -> p
    | Filter (e, p) -> Filter (in_expr d e, in_plan d p)
    | Project (cols, p) ->
      Project (List.map (fun (e, c) -> (in_expr d e, c)) cols, in_plan d p)
    | Cross (l, r) -> Cross (in_plan d l, in_plan d r)
    | Join j ->
      Join
        {
          j with
          lkeys = List.map (in_expr d) j.lkeys;
          rkeys = List.map (in_expr d) j.rkeys;
          residual = Option.map (in_expr d) j.residual;
          left = in_plan d j.left;
          right = in_plan d j.right;
        }
    | Union_all (l, r) -> Union_all (in_plan d l, in_plan d r)
    | Union (l, r) -> Union (in_plan d l, in_plan d r)
    | Except (l, r) -> Except (in_plan d l, in_plan d r)
    | Intersect (l, r) -> Intersect (in_plan d l, in_plan d r)
    | Distinct p -> Distinct (in_plan d p)
    | Limit (n, p) -> Limit (n, in_plan d p)
    | Sort (keys, p) ->
      Sort (List.map (fun (e, dir) -> (in_expr d e, dir)) keys, in_plan d p)
    | Group { keys; aggs; input } ->
      let map_agg = function
        | Count_star -> Count_star
        | Count e -> Count (in_expr d e)
        | Sum e -> Sum (in_expr d e)
        | Min e -> Min (in_expr d e)
        | Max e -> Max (in_expr d e)
        | Avg e -> Avg (in_expr d e)
      in
      Group
        {
          keys = List.map (fun (e, c) -> (in_expr d e, c)) keys;
          aggs = List.map (fun (a, c) -> (map_agg a, c)) aggs;
          input = in_plan d input;
        }
  in
  in_expr 0 e

(* Substitute Col i by [subst.(i)] (used to push filters through Project).
   Only valid when the expression contains no nested subqueries, because the
   substituted expressions' own columns would need depth adjustment inside
   Exists bodies. *)
let rec subst_cols subst = function
  | Col i -> subst i
  | (Outer _ | Const _ | Param _) as e -> e
  | Cmp (c, a, b) -> Cmp (c, subst_cols subst a, subst_cols subst b)
  | Arith (o, a, b) -> Arith (o, subst_cols subst a, subst_cols subst b)
  | And (a, b) -> And (subst_cols subst a, subst_cols subst b)
  | Or (a, b) -> Or (subst_cols subst a, subst_cols subst b)
  | Not e -> Not (subst_cols subst e)
  | Is_null e -> Is_null (subst_cols subst e)
  | In_list (e, vs) -> In_list (subst_cols subst e, vs)
  | Case (arms, default) ->
    Case
      ( List.map (fun (c, r) -> (subst_cols subst c, subst_cols subst r)) arms,
        subst_cols subst default )
  | Exists _ -> assert false

let rec has_exists = function
  | Exists _ -> true
  | e -> List.exists has_exists (expr_children e)

(* ------------------------------------------------------------------ *)
(* Constant folding                                                   *)
(* ------------------------------------------------------------------ *)

let rec fold_expr e =
  let e =
    match e with
    | Cmp (c, a, b) -> Cmp (c, fold_expr a, fold_expr b)
    | Arith (o, a, b) -> Arith (o, fold_expr a, fold_expr b)
    | And (a, b) -> And (fold_expr a, fold_expr b)
    | Or (a, b) -> Or (fold_expr a, fold_expr b)
    | Not e -> Not (fold_expr e)
    | Is_null e -> Is_null (fold_expr e)
    | In_list (e, vs) -> In_list (fold_expr e, vs)
    | Col _ | Outer _ | Const _ | Param _ | Exists _ | Case _ -> e
  in
  match e with
  | Cmp (_, Const _, Const _)
  | Arith (_, Const _, Const _)
  | Not (Const _)
  | Is_null (Const _)
  | In_list (Const _, _) -> Const (Eval.eval_expr ~row:[||] e)
  | And (Const (Value.Bool true), x) | And (x, Const (Value.Bool true)) -> x
  | And (Const (Value.Bool false), _) | And (_, Const (Value.Bool false)) ->
    Const (Value.Bool false)
  | Or (Const (Value.Bool false), x) | Or (x, Const (Value.Bool false)) -> x
  | Or (Const (Value.Bool true), _) | Or (_, Const (Value.Bool true)) ->
    Const (Value.Bool true)
  | e -> e

(* ------------------------------------------------------------------ *)
(* Decorrelation of (NOT) EXISTS                                      *)
(* ------------------------------------------------------------------ *)

(* Shape of a decorrelated subquery: join keys, sub-local filters and a
   residual predicate over the concatenated (outer @ sub) row. *)
type decorrelated = {
  d_lkeys : expr list;
  d_rkeys : expr list;
  d_sub_filters : expr list;
  d_residual : expr list;
}

(* Does [e] reference only Outer (1, _) of the current level (no Col, no
   deeper Outer)? Then it can serve as a left join key. *)
let only_outer1 e =
  let rec loop = function
    | Outer (1, _) -> true
    | Outer _ | Col _ -> false
    | Const _ | Param _ -> true
    | e -> (not (has_exists e)) && List.for_all loop (expr_children e)
  in
  loop e

let only_local e =
  (not (has_exists e)) && not (refers_outer ~depth:1 e)

let rewrite_outer1_to_col e =
  let rec loop = function
    | Outer (1, i) -> Col i
    | (Col _ | Const _ | Param _) as e -> e
    | Outer _ -> assert false
    | Cmp (c, a, b) -> Cmp (c, loop a, loop b)
    | Arith (o, a, b) -> Arith (o, loop a, loop b)
    | And (a, b) -> And (loop a, loop b)
    | Or (a, b) -> Or (loop a, loop b)
    | Not e -> Not (loop e)
    | Is_null e -> Is_null (loop e)
    | In_list (e, vs) -> In_list (loop e, vs)
    | Case (arms, default) ->
      Case (List.map (fun (c, r) -> (loop c, loop r)) arms, loop default)
    | Exists _ -> assert false
  in
  loop e

(* Rewrite a mixed conjunct into residual form over the concatenated row:
   Outer (1, i) -> Col i (outer part), Col j -> Col (left_arity + j). *)
let rewrite_to_residual ~left_arity e =
  let rec loop = function
    | Outer (1, i) -> Col i
    | Col j -> Col (left_arity + j)
    | (Const _ | Param _) as e -> e
    | Outer _ -> assert false
    | Cmp (c, a, b) -> Cmp (c, loop a, loop b)
    | Arith (o, a, b) -> Arith (o, loop a, loop b)
    | And (a, b) -> And (loop a, loop b)
    | Or (a, b) -> Or (loop a, loop b)
    | Not e -> Not (loop e)
    | Is_null e -> Is_null (loop e)
    | In_list (e, vs) -> In_list (loop e, vs)
    | Case (arms, default) ->
      Case (List.map (fun (c, r) -> (loop c, loop r)) arms, loop default)
    | Exists _ -> assert false
  in
  loop e

(* A conjunct may only be handled if its outer references are exactly depth 1
   and it contains no nested subquery. *)
let handleable e =
  let rec max2 = function
    | Outer (k, _) -> k <= 1
    | e -> (not (has_exists e)) && List.for_all max2 (expr_children e)
  in
  max2 e

let decorrelate_pred ~left_arity pred =
  let pred = factor_common_disjunction pred in
  let conj = conjuncts pred in
  if not (List.for_all handleable conj) then None
  else begin
    let acc = { d_lkeys = []; d_rkeys = []; d_sub_filters = []; d_residual = [] } in
    let step acc c =
      match c with
      | Cmp (Eq, a, b) when only_outer1 a && only_local b ->
        { acc with d_lkeys = rewrite_outer1_to_col a :: acc.d_lkeys; d_rkeys = b :: acc.d_rkeys }
      | Cmp (Eq, a, b) when only_outer1 b && only_local a ->
        { acc with d_lkeys = rewrite_outer1_to_col b :: acc.d_lkeys; d_rkeys = a :: acc.d_rkeys }
      | c when only_local c -> { acc with d_sub_filters = c :: acc.d_sub_filters }
      | c -> { acc with d_residual = rewrite_to_residual ~left_arity c :: acc.d_residual }
    in
    Some (List.fold_left step acc conj)
  end

(* Try to decorrelate one Exists payload. The payload must be Filter over an
   uncorrelated plan (the common SQL lowering shape); Distinct and Project-of-
   plain-columns on top are tolerated by unwrapping. *)
let decorrelate_exists ~left_arity sub =
  let rec unwrap = function
    | Distinct p -> unwrap p
    | p -> p
  in
  match unwrap sub with
  | Filter (pred, inner) when not (plan_refers_outer ~depth:1 inner) -> (
    match decorrelate_pred ~left_arity pred with
    | None -> None
    | Some d ->
      let right =
        match d.d_sub_filters with
        | [] -> inner
        | fs -> Filter (conjoin fs, inner)
      in
      Some (d, right))
  | p when not (plan_refers_outer ~depth:1 p) ->
    (* Uncorrelated EXISTS: degenerate zero-key join. *)
    Some ({ d_lkeys = []; d_rkeys = []; d_sub_filters = []; d_residual = [] }, p)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The rewriter                                                       *)
(* ------------------------------------------------------------------ *)

let is_true = function Const (Value.Bool true) -> true | _ -> false

let rec rewrite ~level plan =
  match plan with
  | Scan _ | Values _ -> plan
  | Filter (pred, p) -> rewrite_filter ~level (fold_expr pred) (rewrite ~level p)
  | Project (cols, p) ->
    Project (List.map (fun (e, c) -> (fold_expr e, c)) cols, rewrite ~level p)
  | Cross (l, r) -> Cross (rewrite ~level l, rewrite ~level r)
  | Join j ->
    Join { j with left = rewrite ~level j.left; right = rewrite ~level j.right }
  | Union_all (l, r) -> Union_all (rewrite ~level l, rewrite ~level r)
  | Union (l, r) -> Union (rewrite ~level l, rewrite ~level r)
  | Except (l, r) -> Except (rewrite ~level l, rewrite ~level r)
  | Intersect (l, r) -> Intersect (rewrite ~level l, rewrite ~level r)
  | Distinct (Distinct p) -> rewrite ~level (Distinct p)
  | Distinct p -> Distinct (rewrite ~level p)
  | Sort (keys, p) -> Sort (keys, rewrite ~level p)
  | Limit (n, p) -> Limit (n, rewrite ~level p)
  | Group g -> Group { g with input = rewrite ~level g.input }

and rewrite_filter ~level pred p =
  if is_true pred then p
  else begin
    let conj = conjuncts pred in
    (* Decorrelate (NOT) EXISTS conjuncts first (level `Full). *)
    let plan, remaining =
      if level <> `Full then (p, conj)
      else
        let left_arity = Schema.arity (schema_of p) in
        List.fold_left
          (fun (plan, remaining) c ->
            let attempt kind sub =
              match decorrelate_exists ~left_arity sub with
              | Some (d, right) ->
                let residual =
                  match d.d_residual with [] -> None | rs -> Some (conjoin rs)
                in
                let join =
                  Join
                    {
                      kind;
                      lkeys = List.rev d.d_lkeys;
                      rkeys = List.rev d.d_rkeys;
                      residual;
                      left = plan;
                      right = rewrite ~level right;
                    }
                in
                (join, remaining)
              | None -> (plan, c :: remaining)
            in
            match c with
            | Exists sub -> attempt Semi sub
            | Not (Exists sub) -> attempt Anti sub
            | c -> (plan, c :: remaining))
          (p, []) conj
        |> fun (plan, rem) -> (plan, List.rev rem)
    in
    push_conjuncts ~level remaining plan
  end

(* Push each conjunct as far down as it goes, then try join detection. *)
and push_conjuncts ~level conj plan =
  match plan with
  | Cross (l, r) when level <> `None ->
    let la = Schema.arity (schema_of l) in
    let ra = Schema.arity (schema_of r) in
    let left_only, rest =
      List.partition (fun c -> Int_set.for_all (fun i -> i < la) (cols_used c)) conj
    in
    let right_only, middle =
      List.partition
        (fun c -> Int_set.for_all (fun i -> i >= la && i < la + ra) (cols_used c))
        rest
    in
    let l =
      match left_only with [] -> l | cs -> rewrite_filter ~level (conjoin cs) l
    in
    let r =
      match right_only with
      | [] -> r
      | cs ->
        let shifted = List.map (map_cols (fun i -> i - la)) cs in
        rewrite_filter ~level (conjoin shifted) r
    in
    (* Equi-conjuncts across the boundary become hash join keys. *)
    let keys, residual =
      List.partition
        (fun c ->
          match c with
          | Cmp (Eq, a, b) ->
            let ca = cols_used a and cb = cols_used b in
            (not (has_exists a)) && not (has_exists b)
            && ((Int_set.for_all (fun i -> i < la) ca
                 && Int_set.for_all (fun i -> i >= la) cb
                 && not (Int_set.is_empty cb))
               || (Int_set.for_all (fun i -> i < la) cb
                   && Int_set.for_all (fun i -> i >= la) ca
                   && not (Int_set.is_empty ca)))
          | _ -> false)
        middle
    in
    if keys = [] then
      match residual with
      | [] -> Cross (l, r)
      | cs -> Filter (conjoin cs, Cross (l, r))
    else begin
      let lkeys, rkeys =
        List.split
          (List.map
            (function
              | Cmp (Eq, a, b) ->
                let ca = cols_used a in
                if Int_set.for_all (fun i -> i < la) ca && not (Int_set.is_empty (cols_used b)) then
                  (a, map_cols (fun i -> i - la) b)
                else (b, map_cols (fun i -> i - la) a)
              | _ -> assert false)
            keys)
      in
      let residual = match residual with [] -> None | cs -> Some (conjoin cs) in
      Join { kind = Inner; lkeys; rkeys; residual; left = l; right = r }
    end
  | Project (cols, q)
    when level <> `None
         && List.for_all (fun c -> not (has_exists c)) conj
         && List.for_all (fun (e, _) -> not (has_exists e)) cols ->
    (* Push the filter through the projection by substitution. *)
    let arr = Array.of_list (List.map fst cols) in
    let substituted =
      List.map (fun c -> subst_cols (fun i -> arr.(i)) c) conj
    in
    Project (cols, rewrite_filter ~level (conjoin substituted) q)
  | Union_all (l, r) when level <> `None && not (List.exists has_exists conj) ->
    Union_all
      (rewrite_filter ~level (conjoin conj) l, rewrite_filter ~level (conjoin conj) r)
  | Distinct q when level <> `None -> Distinct (push_conjuncts ~level conj q)
  | _ -> (
    match conj with [] -> plan | cs -> Filter (conjoin cs, plan))

let split_join_on ~left_arity on =
  let conj = conjuncts (factor_common_disjunction on) in
  let left_side e =
    Int_set.for_all (fun i -> i < left_arity) (cols_used e) && not (has_exists e)
  in
  let right_side e =
    let cs = cols_used e in
    Int_set.for_all (fun i -> i >= left_arity) cs
    && (not (Int_set.is_empty cs))
    && not (has_exists e)
  in
  let keys, residual =
    List.partition
      (function
        | Cmp (Eq, a, b) ->
          (left_side a && right_side b) || (left_side b && right_side a)
        | _ -> false)
      conj
  in
  let lkeys, rkeys =
    List.split
      (List.map
         (function
           | Cmp (Eq, a, b) ->
             if left_side a then (a, map_cols (fun i -> i - left_arity) b)
             else (b, map_cols (fun i -> i - left_arity) a)
           | _ -> assert false)
         keys)
  in
  let residual = match residual with [] -> None | cs -> Some (conjoin cs) in
  (lkeys, rkeys, residual)

let optimize ?(level = `Full) plan =
  match level with
  | `None -> plan
  | `Basic | `Full ->
    (* A couple of passes reach the fixpoint for every plan the SQL
       front-end emits; the guard stops pathological ping-pong. *)
    let rec go n plan =
      if n = 0 then plan
      else
        let plan' = rewrite ~level plan in
        if plan_size plan' = plan_size plan then plan' else go (n - 1) plan'
    in
    go 4 plan
