(** Relational algebra: scalar expressions and query plans, with schema
    inference. Evaluation lives in {!Eval}, rewriting in {!Optimizer}.

    Expressions address columns positionally ([Col i] is position [i] of the
    current row). Correlated subqueries reference enclosing rows with
    [Outer (depth, i)]; depth 1 is the nearest enclosing row (the row being
    filtered by the [Filter] whose predicate contains the subquery). *)

type cmp = Eq | Neq | Lt | Leq | Gt | Geq

type arith = Add | Sub | Mul | Div | Mod

type expr =
  | Col of int
  | Outer of int * int
  | Const of Value.t
  | Param of Value.t ref
      (** runtime-settable placeholder ([?] in SQL); the cell is shared by
          the prepared plan, so protocols can be re-tuned without
          recompiling *)
  | Cmp of cmp * expr * expr
  | Arith of arith * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Is_null of expr
  | Exists of plan  (** true iff the subplan yields at least one row *)
  | In_list of expr * Value.t list
  | Case of (expr * expr) list * expr
      (** searched CASE: first true condition selects its result, otherwise
          the default *)

and join_kind =
  | Inner
  | Left  (** unmatched left rows padded with NULLs *)
  | Semi  (** output = left columns of matching left rows *)
  | Anti  (** output = left columns of non-matching left rows *)

and join = {
  kind : join_kind;
  lkeys : expr list;  (** evaluated against left rows *)
  rkeys : expr list;  (** evaluated against right rows; same length *)
  residual : expr option;  (** evaluated against the concatenated row *)
  left : plan;
  right : plan;
}

and agg_fn = Count_star | Count of expr | Sum of expr | Min of expr | Max of expr | Avg of expr

and group = {
  keys : (expr * Schema.column) list;
  aggs : (agg_fn * Schema.column) list;
  input : plan;
}

and plan =
  | Scan of Table.t * string option  (** optional alias requalifies columns *)
  | Values of Schema.t * Value.t array list
  | Filter of expr * plan
  | Project of (expr * Schema.column) list * plan
  | Cross of plan * plan
  | Join of join
  | Union_all of plan * plan
  | Union of plan * plan  (** set union (distinct) *)
  | Except of plan * plan  (** SQL EXCEPT: distinct left rows not in right *)
  | Intersect of plan * plan
  | Distinct of plan
  | Sort of (expr * [ `Asc | `Desc ]) list * plan
  | Limit of int * plan
  | Group of group

exception Type_error of string

(** Output schema of a plan. Project/Group columns are as declared; joins
    concatenate; set operations take the left schema. *)
val schema_of : plan -> Schema.t

(** Structural size (number of plan nodes), used in tests and the optimizer's
    fixpoint guard. *)
val plan_size : plan -> int

val pp_expr : Format.formatter -> expr -> unit
val pp_plan : Format.formatter -> plan -> unit

(** Fold over the immediate sub-expressions of an expression (not descending
    into subplans). *)
val expr_children : expr -> expr list

(** [map_expr_plans f e] rewrites every subplan embedded in [e] (inside
    [Exists]) with [f], recursively through sub-expressions. *)
val map_expr_plans : (plan -> plan) -> expr -> expr

(** True if the expression references [Outer] at the given depth or deeper.
    Depth is relative to the expression: entering an [Exists] raises the
    threshold by one, so a subquery's references to its own enclosing row do
    not count. *)
val refers_outer : depth:int -> expr -> bool

(** Same, for every expression inside a plan. [plan_refers_outer ~depth:1 p]
    is true iff [p] is correlated with its enclosing row. *)
val plan_refers_outer : depth:int -> plan -> bool
