(** In-memory mutable tables with hash indexes.

    Rows are value arrays matching the table schema. Indexes map a key (the
    values of an ordered column subset) to the row positions holding it; they
    are invalidated by any mutation and rebuilt lazily on the next probe, a
    good fit for the scheduler's batch insert / query / batch delete cycle. *)

type t

val create : name:string -> Schema.t -> t
val name : t -> string
val schema : t -> Schema.t
val row_count : t -> int

(** @raise Invalid_argument on arity mismatch with the schema. *)
val insert : t -> Value.t array -> unit

val insert_many : t -> Value.t array list -> unit

(** [delete_where t p] removes rows satisfying [p]; returns how many. *)
val delete_where : t -> (Value.t array -> bool) -> int

(** [update_where t p f] applies the in-place mutation [f] to each row
    satisfying [p]; returns how many rows were touched. *)
val update_where : t -> (Value.t array -> bool) -> (Value.t array -> unit) -> int

val clear : t -> unit

(** Snapshot of live rows in insertion order. *)
val rows : t -> Value.t array list

val iter : (Value.t array -> unit) -> t -> unit
val fold : ('acc -> Value.t array -> 'acc) -> 'acc -> t -> 'acc

(** [create_index t cols] declares an index on the column positions [cols]
    (leftmost significant). Duplicate declarations are no-ops. *)
val create_index : t -> int list -> unit

val has_index : t -> int list -> bool

(** [probe t cols key] returns all rows whose [cols] values equal [key],
    using the index (built on demand).
    @raise Invalid_argument if no such index was declared. *)
val probe : t -> int list -> Value.t list -> Value.t array list

(** [create_ordered_index t col] declares an ordered index on one column,
    enabling {!range_probe}. Rebuilt lazily after mutations, like hash
    indexes. *)
val create_ordered_index : t -> int -> unit

val has_ordered_index : t -> int -> bool

(** [range_probe t col ~lo ~hi] returns the rows whose [col] value lies in
    the given range; each bound is [(value, inclusive)], [None] = unbounded.
    Rows with NULL in [col] are never returned (SQL comparison semantics).
    Results preserve insertion order within equal keys but are ordered by
    key, not by insertion.
    @raise Invalid_argument if no ordered index was declared on [col]. *)
val range_probe :
  t ->
  int ->
  lo:(Value.t * bool) option ->
  hi:(Value.t * bool) option ->
  Value.t array list

(** For the optimizer: lookup cost signal. *)
val indexed_columns : t -> int list list
