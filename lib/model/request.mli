(** Scheduler requests.

    This is exactly the record of the paper's Table 2 — ID, TA, INTRATA,
    Operation, Object — extended with the SLA class and arrival time needed
    by the QoS protocols and the simulator. *)

type t = {
  id : int;  (** consecutive request number, unique per run *)
  ta : int;  (** transaction number *)
  intrata : int;  (** request number within its transaction, starting at 1 *)
  op : Op.t;
  obj : int option;  (** object number; [None] for commit/abort *)
  sla : Sla.t;
  arrival : float;  (** arrival time at the middleware, seconds *)
}

(** @raise Invalid_argument on a malformed request: a data operation without
    an object, a terminal operation with one, or a negative [intrata]
    (reserved for {!abort_marker}). *)
val make :
  ?sla:Sla.t -> ?arrival:float -> id:int -> ta:int -> intrata:int -> op:Op.t ->
  ?obj:int -> unit -> t

(** [abort_marker ~ta ~seq ()] is the synthetic history row recording that
    transaction [ta] was aborted by the scheduler (deadlock victim, dead
    letter, journal replay). Markers carry the reserved sentinel
    [intrata = -1] — which {!make} rejects — and a negative [id] derived
    from [seq], so they can never collide with a real request no matter what
    ids or intrata values the workload uses. *)
val abort_marker : ?arrival:float -> ta:int -> seq:int -> unit -> t

(** [true] exactly for rows built by {!abort_marker}. *)
val is_abort_marker : t -> bool

(** [v ta intrata op obj] — terse constructor used pervasively in tests:
    id defaults to a per-call counter-free [ta * 1000 + intrata]. *)
val v : int -> int -> Op.t -> int -> t

(** Terminal request (commit/abort) shorthand. *)
val terminal : int -> int -> Op.t -> t

val equal : t -> t -> bool

(** Orders by [id] (arrival order). *)
val compare : t -> t -> int

(** [key r] is the pair (TA, INTRATA) which identifies a request within a
    workload, mirroring the paper's [QualifiedSS2PLOps] result shape. *)
val key : t -> int * int

(** Two requests conflict iff they belong to different transactions, both are
    data operations on the same object, and at least one is a write. *)
val conflicts : t -> t -> bool

val is_terminal : t -> bool
val is_data : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
