type t = {
  id : int;
  ta : int;
  intrata : int;
  op : Op.t;
  obj : int option;
  sla : Sla.t;
  arrival : float;
}

let make ?(sla = Sla.standard) ?(arrival = 0.) ~id ~ta ~intrata ~op ?obj () =
  if intrata < 0 then
    invalid_arg "Request.make: negative INTRATA is reserved for abort markers";
  (match (op, obj) with
  | (Op.Read | Op.Write), None ->
    invalid_arg "Request.make: data operation requires an object"
  | (Op.Abort | Op.Commit), Some _ ->
    invalid_arg "Request.make: terminal operation carries no object"
  | _ -> ());
  { id; ta; intrata; op; obj; sla; arrival }

(* The history marker recording an externally triggered abort of [ta]. It
   lives in the same relation as real requests, so it must be impossible to
   confuse with one: INTRATA is the reserved sentinel -1 (which [make]
   rejects) and the id is negative (ids of real requests are non-negative
   and never compared against history rows by the protocol queries). [seq]
   keeps distinct markers distinct for journaling/replay. *)
let abort_marker ?(arrival = 0.) ~ta ~seq () =
  {
    id = -(seq + 1);
    ta;
    intrata = -1;
    op = Op.Abort;
    obj = None;
    sla = Sla.standard;
    arrival;
  }

let is_abort_marker r = r.intrata < 0

let v ta intrata op obj =
  make ~id:((ta * 1000) + intrata) ~ta ~intrata ~op ~obj ()

let terminal ta intrata op =
  make ~id:((ta * 1000) + intrata) ~ta ~intrata ~op ()

let equal a b =
  a.id = b.id && a.ta = b.ta && a.intrata = b.intrata && Op.equal a.op b.op
  && Option.equal Int.equal a.obj b.obj
  && Sla.equal a.sla b.sla
  && Float.equal a.arrival b.arrival

let compare a b = Int.compare a.id b.id

let key r = (r.ta, r.intrata)

let is_terminal r = Op.is_terminal r.op

let is_data r = Op.is_data r.op

let conflicts a b =
  a.ta <> b.ta
  &&
  match (a.obj, b.obj) with
  | Some oa, Some ob -> oa = ob && Op.conflicts a.op b.op
  | None, _ | _, None -> false

let pp ppf r =
  Format.fprintf ppf "#%d %c%d[%a]" r.id (Op.to_char r.op) r.ta
    (fun ppf -> function
      | Some o -> Format.fprintf ppf "x%d" o
      | None -> Format.pp_print_string ppf "-")
    r.obj

let to_string r = Format.asprintf "%a" pp r
