(** Windowed throughput tracking over simulated time: events are recorded
    with a timestamp; the series reports events per window. *)

type t

(** [create ~window ()] with [window] in seconds (default 1.0). *)
val create : ?window:float -> unit -> t

val record : t -> float -> unit

(** [record_n t time n] records [n] simultaneous events. *)
val record_n : t -> float -> int -> unit

val total : t -> int

(** [(window_start, events)] pairs in time order; empty windows between
    populated ones are included with 0. *)
val series : t -> (float * int) list

(** Events in [\[t0, t1)]. *)
val in_range : t -> float -> float -> int

(** Average events/second over the populated span ([t_max - t_min]); 0 when
    empty {e and} when the span is zero (all events share one timestamp) —
    a spanless window has no defined rate, and the count itself would be a
    lie in events/second. *)
val rate : t -> float
