type t = {
  lo : float;
  log_lo : float;
  scale : float; (* buckets per log10 unit *)
  nbuckets : int; (* regular buckets, excluding under/overflow *)
  counts : int array; (* 0 = underflow, nbuckets+1 = overflow *)
  mutable n : int;
  mutable sum : float;
  mutable max_seen : float;
}

let create ?(lo = 1e-6) ?(hi = 1e4) ?(buckets_per_decade = 20) () =
  if lo <= 0. || hi <= lo then invalid_arg "Histogram.create: need 0 < lo < hi";
  let decades = log10 hi -. log10 lo in
  let nbuckets =
    int_of_float (ceil (decades *. float_of_int buckets_per_decade))
  in
  {
    lo;
    log_lo = log10 lo;
    scale = float_of_int buckets_per_decade;
    nbuckets;
    counts = Array.make (nbuckets + 2) 0;
    n = 0;
    sum = 0.;
    max_seen = neg_infinity;
  }

let bucket_of t x =
  if x < t.lo then 0
  else
    let b = int_of_float ((log10 x -. t.log_lo) *. t.scale) in
    if b >= t.nbuckets then t.nbuckets + 1 else b + 1

let add t x =
  (* +infinity would otherwise poison [sum] and make [int_of_float] in
     [bucket_of] undefined, so reject all non-finite values, not just NaN. *)
  if x < 0. || not (Float.is_finite x) then
    invalid_arg "Histogram.add: negative or non-finite";
  let b = bucket_of t x in
  t.counts.(b) <- t.counts.(b) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  if x > t.max_seen then t.max_seen <- x

let count t = t.n

let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n

let bucket_mid t b =
  if b = 0 then t.lo /. 2.
  else if b = t.nbuckets + 1 then t.max_seen
  else
    let lo_exp = t.log_lo +. (float_of_int (b - 1) /. t.scale) in
    let hi_exp = t.log_lo +. (float_of_int b /. t.scale) in
    Float.pow 10. ((lo_exp +. hi_exp) /. 2.)

(* Rank of the q-quantile among n samples, 1-indexed: ceil(q*n), clamped to
   at least 1 so q=0 means "the smallest observed sample" (min-bucket), never
   an empty prefix. The ceil runs on an epsilon-corrected product because
   binary floats make exact boundaries dirty — 0.95 *. 20. is
   19.000000000000004, and ceiling that straight to 20 silently shifts the
   quantile one whole rank at precisely the q values benchmarks report. *)
let rank ~n q =
  let raw = q *. float_of_int n in
  let nearest = Float.round raw in
  let k =
    if Float.abs (raw -. nearest) <= 1e-9 *. Float.max 1. nearest then
      int_of_float nearest
    else int_of_float (ceil raw)
  in
  if k < 1 then 1 else k

let quantile t q =
  if q < 0. || q > 1. then invalid_arg "Histogram.quantile";
  if t.n = 0 then 0.
  else begin
    let target = rank ~n:t.n q in
    let rec loop b acc =
      if b > t.nbuckets + 1 then t.max_seen
      else
        let acc = acc + t.counts.(b) in
        if acc >= target then bucket_mid t b else loop (b + 1) acc
    in
    loop 0 0
  end

let median t = quantile t 0.5

let p95 t = quantile t 0.95

let p99 t = quantile t 0.99

let max_observed t = if t.n = 0 then 0. else t.max_seen

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.n <- 0;
  t.sum <- 0.;
  t.max_seen <- neg_infinity

let merge_into ~dst src =
  if
    dst.nbuckets <> src.nbuckets
    || not (Float.equal dst.lo src.lo && Float.equal dst.scale src.scale)
  then invalid_arg "Histogram.merge_into: incompatible shapes";
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.n <- dst.n + src.n;
  dst.sum <- dst.sum +. src.sum;
  if src.max_seen > dst.max_seen then dst.max_seen <- src.max_seen

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g" t.n
    (mean t) (median t) (p95 t) (p99 t) (max_observed t)
