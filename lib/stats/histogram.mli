(** Latency histograms with geometric (log-scaled) buckets and quantile
    estimation, HDR-histogram style but minimal. Values are non-negative
    floats (typically seconds or milliseconds). *)

type t

(** [create ~lo ~hi ~buckets_per_decade ()] covers [lo, hi] with geometric
    buckets; values below [lo] land in an underflow bucket, above [hi] in an
    overflow bucket. Defaults: [lo = 1e-6], [hi = 1e4],
    [buckets_per_decade = 20]. *)
val create : ?lo:float -> ?hi:float -> ?buckets_per_decade:int -> unit -> t

(** Raises [Invalid_argument] on negative or non-finite values. *)
val add : t -> float -> unit
val count : t -> int
val mean : t -> float

(** [quantile t q] with [0 <= q <= 1]; 0.0 when empty. The estimate is the
    geometric midpoint of the bucket containing the [ceil (q*n)]-th smallest
    sample (computed with an epsilon correction so exact boundaries like
    [0.95 *. 20.] do not round up a rank), clamped to rank 1 — so [q = 0.]
    reports the bucket of the smallest observed sample, and [q = 1.] the
    bucket containing [max_observed]. *)
val quantile : t -> float -> float

val median : t -> float
val p95 : t -> float
val p99 : t -> float
val max_observed : t -> float
val clear : t -> unit
val merge_into : dst:t -> t -> unit
val pp : Format.formatter -> t -> unit
