type t = {
  window : float;
  buckets : (int, int) Hashtbl.t;
  mutable total : int;
  mutable t_min : float;
  mutable t_max : float;
}

let create ?(window = 1.0) () =
  if window <= 0. then invalid_arg "Throughput.create: window <= 0";
  {
    window;
    buckets = Hashtbl.create 64;
    total = 0;
    t_min = infinity;
    t_max = neg_infinity;
  }

let idx t time = int_of_float (floor (time /. t.window))

let record_n t time n =
  let i = idx t time in
  let cur = Option.value ~default:0 (Hashtbl.find_opt t.buckets i) in
  Hashtbl.replace t.buckets i (cur + n);
  t.total <- t.total + n;
  if time < t.t_min then t.t_min <- time;
  if time > t.t_max then t.t_max <- time

let record t time = record_n t time 1

let total t = t.total

let series t =
  if t.total = 0 then []
  else begin
    let lo = idx t t.t_min and hi = idx t t.t_max in
    let out = ref [] in
    for i = hi downto lo do
      let c = Option.value ~default:0 (Hashtbl.find_opt t.buckets i) in
      out := (float_of_int i *. t.window, c) :: !out
    done;
    !out
  end

let in_range t t0 t1 =
  List.fold_left
    (fun acc (w, c) -> if w >= t0 && w < t1 then acc + c else acc)
    0 (series t)

(* Convention: a window with no measurable span (zero or one distinct
   timestamp) has no defined rate and reports 0. — returning the raw count
   would let a single-event window masquerade as "total events per second". *)
let rate t =
  if t.total = 0 then 0.
  else
    let span = t.t_max -. t.t_min in
    if span <= 0. then 0. else float_of_int t.total /. span
