(** In-memory mutable tables with incrementally maintained indexes.

    Rows are value arrays matching the table schema, stored in slots that are
    never reused: [delete_where] tombstones the slot, and the table compacts
    itself in place (remapping index entries rather than rebuilding) once at
    least half the slots are dead. Hash indexes keep per-key posting lists of
    slots updated on every insert/update; ordered indexes keep a large sorted
    main run plus a small overflow run that absorbs new entries and is
    compacted into the main run on probe. Setting {!incremental_maintenance}
    to [false] restores the previous behaviour — any mutation invalidates all
    indexes, which are rebuilt from scratch on the next probe — and is kept
    as the benchmark baseline and differential-testing oracle. *)

type t

val create : name:string -> Schema.t -> t
val name : t -> string
val schema : t -> Schema.t

(** Number of live rows. *)
val row_count : t -> int

(** Number of slots, live + tombstoned (for tests and diagnostics; equals
    {!row_count} right after a compaction). *)
val slot_count : t -> int

(** When [true] (the default), indexes are maintained in place across
    mutations; when [false], any mutation invalidates all indexes and probes
    rebuild them from scratch. Flipping the switch mid-stream is safe: it
    only changes how the *next* mutation treats the indexes. *)
val incremental_maintenance : bool ref

(** Cumulative wall-clock seconds spent on index maintenance (incremental
    updates, lazy builds, overflow merges, compaction) across all tables
    since the last {!reset_maintenance_time}. Also reported per section
    through {!Profile.set_section_observer} under the label
    ["index-maintenance"]. *)
val maintenance_time : unit -> float

val reset_maintenance_time : unit -> unit

(** @raise Invalid_argument on arity mismatch with the schema. *)
val insert : t -> Value.t array -> unit

(** Batch insert: rows are appended first, then every built index is updated
    in one maintenance pass (one timing section per batch, not per row). *)
val insert_many : t -> Value.t array list -> unit

(** [delete_where t p] removes rows satisfying [p]; returns how many.
    Deletion tombstones the row slots — O(1) index work per row — and
    triggers an in-place compaction when at least half the slots (and more
    than 64) are dead. *)
val delete_where : t -> (Value.t array -> bool) -> int

(** [delete_by_key t cols key p] deletes the rows matching [key] on the hash
    index over [cols] that also satisfy [p]; returns how many. Equivalent to
    [delete_where] with a conjunctive key test, but costs O(posting) instead
    of a full scan.
    @raise Invalid_argument if no such index was declared. *)
val delete_by_key :
  t -> int list -> Value.t list -> (Value.t array -> bool) -> int

(** [update_where t p f] applies the in-place mutation [f] to each row
    satisfying [p]; returns how many rows were touched. Hash-index postings
    are moved between keys exactly; ordered indexes get the new value pushed
    to their overflow run, the stale entry self-invalidating on probe. *)
val update_where : t -> (Value.t array -> bool) -> (Value.t array -> unit) -> int

val clear : t -> unit

(** Snapshot of live rows in insertion order. *)
val rows : t -> Value.t array list

val iter : (Value.t array -> unit) -> t -> unit
val fold : ('acc -> Value.t array -> 'acc) -> 'acc -> t -> 'acc

(** [create_index t cols] declares an index on the column positions [cols]
    (leftmost significant). Duplicate declarations are no-ops. *)
val create_index : t -> int list -> unit

val has_index : t -> int list -> bool

(** [probe t cols key] returns all rows whose [cols] values equal [key], in
    insertion order, using the index (built on demand).
    @raise Invalid_argument if no such index was declared. *)
val probe : t -> int list -> Value.t list -> Value.t array list

(** [create_ordered_index t col] declares an ordered index on one column,
    enabling {!range_probe}. Duplicate declarations are no-ops. *)
val create_ordered_index : t -> int -> unit

val has_ordered_index : t -> int -> bool

(** [range_probe t col ~lo ~hi] returns the rows whose [col] value lies in
    the given range; each bound is [(value, inclusive)], [None] = unbounded.
    Rows with NULL in [col] are never returned (SQL comparison semantics).
    Results preserve insertion order within equal keys but are ordered by
    key, not by insertion.
    @raise Invalid_argument if no ordered index was declared on [col]. *)
val range_probe :
  t ->
  int ->
  lo:(Value.t * bool) option ->
  hi:(Value.t * bool) option ->
  Value.t array list

(** For the optimizer: lookup cost signal. *)
val indexed_columns : t -> int list list
