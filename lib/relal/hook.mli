(** Global timing-section observer shared by {!Table} (index-maintenance
    sections) and {!Profile} (query sections). Install through
    {!Profile.set_section_observer}; this module exists only to break the
    [Table] -> [Profile] dependency cycle. *)

val set : (string -> float -> unit) option -> unit
val enabled : unit -> bool

(** [note label dt] notifies the observer, if any, that a section [label]
    took [dt] seconds. No-op (and allocation-free) when no observer is
    installed. *)
val note : string -> float -> unit
