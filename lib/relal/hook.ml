(* The section-observer plumbing lives below Table so that both Table (index
   maintenance) and Profile (query sections) can report through the same
   channel; Profile re-exports the setter as its public API. *)

let observer : (string -> float -> unit) option ref = ref None

let set obs = observer := obs

let enabled () = !observer <> None

let note label dt = match !observer with Some f -> f label dt | None -> ()
