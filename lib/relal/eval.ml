open Ra

let truthy = function Value.Bool true -> true | _ -> false

let use_table_indexes = ref true

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

(* SQL three-valued comparison. *)
let compare_values cmp a b =
  if Value.is_null a || Value.is_null b then Value.Null
  else
    let c = Value.compare a b in
    let r =
      match cmp with
      | Eq -> c = 0
      | Neq -> c <> 0
      | Lt -> c < 0
      | Leq -> c <= 0
      | Gt -> c > 0
      | Geq -> c >= 0
    in
    Value.Bool r

let arith_values op a b =
  if Value.is_null a || Value.is_null b then Value.Null
  else
    match (a, b) with
    | Value.Int x, Value.Int y -> (
      match op with
      | Add -> Value.Int (x + y)
      | Sub -> Value.Int (x - y)
      | Mul -> Value.Int (x * y)
      | Div -> if y = 0 then Value.Null else Value.Int (x / y)
      | Mod -> if y = 0 then Value.Null else Value.Int (x mod y))
    | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
      let x = Option.get (Value.as_float a)
      and y = Option.get (Value.as_float b) in
      (match op with
      | Add -> Value.Float (x +. y)
      | Sub -> Value.Float (x -. y)
      | Mul -> Value.Float (x *. y)
      | Div -> if y = 0. then Value.Null else Value.Float (x /. y)
      | Mod -> if y = 0. then Value.Null else Value.Float (Float.rem x y))
    | _ ->
      type_error "arithmetic on non-numeric values %s and %s"
        (Value.to_string a) (Value.to_string b)

(* Kleene logic. *)
let and_values a b =
  match (a, b) with
  | Value.Bool false, _ | _, Value.Bool false -> Value.Bool false
  | Value.Bool true, Value.Bool true -> Value.Bool true
  | (Value.Null | Value.Bool _), (Value.Null | Value.Bool _) -> Value.Null
  | _ -> type_error "AND on non-boolean values"

let or_values a b =
  match (a, b) with
  | Value.Bool true, _ | _, Value.Bool true -> Value.Bool true
  | Value.Bool false, Value.Bool false -> Value.Bool false
  | (Value.Null | Value.Bool _), (Value.Null | Value.Bool _) -> Value.Null
  | _ -> type_error "OR on non-boolean values"

let not_value = function
  | Value.Bool b -> Value.Bool (not b)
  | Value.Null -> Value.Null
  | v -> type_error "NOT on non-boolean value %s" (Value.to_string v)

module Row_key = struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec loop i =
      i >= Array.length a || (Value.equal a.(i) b.(i) && loop (i + 1))
    in
    loop 0

  let hash row = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 row
end

module Row_tbl = Hashtbl.Make (Row_key)

(* Filter-over-scan with a range predicate on an ordered-indexed column:
   narrow the scan with a range probe. The full predicate is still applied
   afterwards, so the probe only needs to return a superset. *)
let range_candidates pred p =
  if not !use_table_indexes then None
  else
    match p with
    | Scan (t, _) ->
      let rec conjuncts = function
        | And (a, b) -> conjuncts a @ conjuncts b
        | e -> [ e ]
      in
      let const_of = function
        | Const v -> Some v
        | Param r -> Some !r
        | _ -> None
      in
      (* (column, lo bound, hi bound) of one conjunct, if range-shaped. *)
      let bound_of = function
        | Cmp (op, Col i, rhs) when const_of rhs <> None -> (
          let v = Option.get (const_of rhs) in
          if Value.is_null v then None
          else
            match op with
            | Lt -> Some (i, None, Some (v, false))
            | Leq -> Some (i, None, Some (v, true))
            | Gt -> Some (i, Some (v, false), None)
            | Geq -> Some (i, Some (v, true), None)
            | Eq -> Some (i, Some (v, true), Some (v, true))
            | Neq -> None)
        | Cmp (op, lhs, Col i) when const_of lhs <> None -> (
          let v = Option.get (const_of lhs) in
          if Value.is_null v then None
          else
            match op with
            | Lt -> Some (i, Some (v, false), None)
            | Leq -> Some (i, Some (v, true), None)
            | Gt -> Some (i, None, Some (v, false))
            | Geq -> Some (i, None, Some (v, true))
            | Eq -> Some (i, Some (v, true), Some (v, true))
            | Neq -> None)
        | _ -> None
      in
      let tighter_lo a b =
        match (a, b) with
        | None, x | x, None -> x
        | Some (va, ia), Some (vb, ib) ->
          let c = Value.compare va vb in
          if c > 0 then Some (va, ia)
          else if c < 0 then Some (vb, ib)
          else Some (va, ia && ib)
      in
      let tighter_hi a b =
        match (a, b) with
        | None, x | x, None -> x
        | Some (va, ia), Some (vb, ib) ->
          let c = Value.compare va vb in
          if c < 0 then Some (va, ia)
          else if c > 0 then Some (vb, ib)
          else Some (va, ia && ib)
      in
      let bounds =
        List.fold_left
          (fun acc conjunct ->
            match bound_of conjunct with
            | Some (col, lo, hi) when Table.has_ordered_index t col -> (
              match acc with
              | None -> Some (col, lo, hi)
              | Some (col0, lo0, hi0) when col0 = col ->
                Some (col0, tighter_lo lo0 lo, tighter_hi hi0 hi)
              | Some _ -> acc)
            | _ -> acc)
          None (conjuncts pred)
      in
      (match bounds with
      | Some (col, lo, hi) when lo <> None || hi <> None ->
        Some (Table.range_probe t col ~lo ~hi)
      | _ -> None)
    | _ -> None

let rec eval_expr ?(env = []) ~row e =
  match e with
  | Col i ->
    if i < 0 || i >= Array.length row then
      type_error "column $%d out of range (arity %d)" i (Array.length row)
    else row.(i)
  | Outer (depth, i) -> (
    match List.nth_opt env (depth - 1) with
    | Some outer_row ->
      if i < 0 || i >= Array.length outer_row then
        type_error "outer column $%d out of range" i
      else outer_row.(i)
    | None -> type_error "outer reference at depth %d with no outer row" depth)
  | Const v -> v
  | Param r -> !r
  | Cmp (c, a, b) ->
    compare_values c (eval_expr ~env ~row a) (eval_expr ~env ~row b)
  | Arith (op, a, b) ->
    arith_values op (eval_expr ~env ~row a) (eval_expr ~env ~row b)
  | And (a, b) -> (
    (* Short-circuit: FALSE AND x = FALSE without evaluating x. *)
    match eval_expr ~env ~row a with
    | Value.Bool false -> Value.Bool false
    | va -> and_values va (eval_expr ~env ~row b))
  | Or (a, b) -> (
    match eval_expr ~env ~row a with
    | Value.Bool true -> Value.Bool true
    | va -> or_values va (eval_expr ~env ~row b))
  | Not e -> not_value (eval_expr ~env ~row e)
  | Is_null e -> Value.Bool (Value.is_null (eval_expr ~env ~row e))
  | Exists p -> Value.Bool (run ~env:(row :: env) p <> [])
  | In_list (e, vs) -> (
    match eval_expr ~env ~row e with
    | Value.Null -> Value.Null
    | v ->
      if List.exists (Value.equal v) vs then Value.Bool true
      else if List.exists Value.is_null vs then Value.Null
      else Value.Bool false)
  | Case (arms, default) ->
    let rec arm = function
      | [] -> eval_expr ~env ~row default
      | (c, r) :: rest ->
        if truthy (eval_expr ~env ~row c) then eval_expr ~env ~row r
        else arm rest
    in
    arm arms

and run ?(env = []) plan =
  match plan with
  | Scan (t, _) -> Table.rows t
  | Values (_, rows) -> rows
  | Filter (pred, p) ->
    let candidates =
      match range_candidates pred p with
      | Some rows -> rows
      | None -> run ~env p
    in
    List.filter (fun row -> truthy (eval_expr ~env ~row pred)) candidates

  | Project (cols, p) ->
    List.map
      (fun row -> Array.of_list (List.map (fun (e, _) -> eval_expr ~env ~row e) cols))
      (run ~env p)
  | Cross (l, r) ->
    let right_rows = run ~env r in
    List.concat_map
      (fun lrow -> List.map (fun rrow -> Array.append lrow rrow) right_rows)
      (run ~env l)
  | Join j -> eval_join ~env j
  | Union_all (l, r) -> run ~env l @ run ~env r
  | Union (l, r) -> dedup (run ~env l @ run ~env r)
  | Except (l, r) ->
    let right_set = row_set (run ~env r) in
    dedup (List.filter (fun row -> not (Row_tbl.mem right_set row)) (run ~env l))
  | Intersect (l, r) ->
    let right_set = row_set (run ~env r) in
    dedup (List.filter (fun row -> Row_tbl.mem right_set row) (run ~env l))
  | Distinct p -> dedup (run ~env p)
  | Sort (keys, p) ->
    let rows = run ~env p in
    let decorated =
      List.map
        (fun row -> (List.map (fun (e, _) -> eval_expr ~env ~row e) keys, row))
        rows
    in
    let compare_keys (ka, _) (kb, _) =
      let rec loop ks dirs =
        match (ks, dirs) with
        | [], [] -> 0
        | (a, b) :: rest, (_, dir) :: dirs -> (
          let c = Value.compare a b in
          let c = match dir with `Asc -> c | `Desc -> -c in
          match c with 0 -> loop rest dirs | c -> c)
        | _ -> assert false
      in
      loop (List.combine ka kb) keys
    in
    List.map snd (List.stable_sort compare_keys decorated)
  | Limit (n, p) ->
    let rec take n = function
      | [] -> []
      | _ when n <= 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    take n (run ~env p)
  | Group { keys; aggs; input } -> eval_group ~env keys aggs input

and dedup rows =
  let seen = Row_tbl.create 64 in
  List.filter
    (fun row ->
      if Row_tbl.mem seen row then false
      else begin
        Row_tbl.add seen row ();
        true
      end)
    rows

and row_set rows =
  let set = Row_tbl.create (max 16 (List.length rows)) in
  List.iter (fun row -> Row_tbl.replace set row ()) rows;
  set

and eval_join ~env { kind; lkeys; rkeys; residual; left; right } =
  let left_rows = run ~env left in
  let right_arity = Schema.arity (schema_of right) in
  let residual_ok combined =
    match residual with
    | None -> true
    | Some e -> truthy (eval_expr ~env ~row:combined e)
  in
  (* When the right side is a base-table scan carrying an index on exactly
     the join columns, probe it directly; otherwise hash the materialized
     right side. NULL keys never join either way (left NULL keys are
     rejected before probing; the persistent index may file rows under NULL
     keys, but those buckets are unreachable). *)
  let probe =
    let direct =
      if not !use_table_indexes then None
      else
        match right with
        | Scan (t, _) ->
          let cols =
            List.filter_map (function Col i -> Some i | _ -> None) rkeys
          in
          if List.length cols = List.length rkeys && Table.has_index t cols
          then Some (fun key -> Table.probe t cols (Array.to_list key))
          else None
        | _ -> None
    in
    match direct with
    | Some probe -> probe
    | None ->
      let right_rows = run ~env right in
      let index = Row_tbl.create (max 16 (List.length right_rows)) in
      List.iter
        (fun rrow ->
          let key =
            Array.of_list (List.map (fun e -> eval_expr ~env ~row:rrow e) rkeys)
          in
          if not (Array.exists Value.is_null key) then begin
            let prev = Option.value ~default:[] (Row_tbl.find_opt index key) in
            Row_tbl.replace index key (rrow :: prev)
          end)
        right_rows;
      fun key ->
        (match Row_tbl.find_opt index key with
        | None -> []
        | Some rrows -> List.rev rrows)
  in
  let matches lrow =
    let key = Array.of_list (List.map (fun e -> eval_expr ~env ~row:lrow e) lkeys) in
    if Array.exists Value.is_null key then []
    else
      List.filter_map
        (fun rrow ->
          let combined = Array.append lrow rrow in
          if residual_ok combined then Some combined else None)
        (probe key)
  in
  match kind with
  | Inner -> List.concat_map matches left_rows
  | Left ->
    List.concat_map
      (fun lrow ->
        match matches lrow with
        | [] -> [ Array.append lrow (Array.make right_arity Value.Null) ]
        | ms -> ms)
      left_rows
  | Semi -> List.filter (fun lrow -> matches lrow <> []) left_rows
  | Anti -> List.filter (fun lrow -> matches lrow = []) left_rows

and eval_group ~env keys aggs input =
  let rows = run ~env input in
  let groups = Row_tbl.create 64 in
  let order = ref [] in
  List.iter
    (fun row ->
      let key =
        Array.of_list (List.map (fun (e, _) -> eval_expr ~env ~row e) keys)
      in
      match Row_tbl.find_opt groups key with
      | Some members -> members := row :: !members
      | None ->
        Row_tbl.add groups key (ref [ row ]);
        order := key :: !order)
    rows;
  let order = List.rev !order in
  let agg_value members = function
    | Count_star -> Value.Int (List.length members)
    | Count e ->
      Value.Int
        (List.length
           (List.filter
              (fun row -> not (Value.is_null (eval_expr ~env ~row e)))
              members))
    | Sum e -> fold_sum ~env members e
    | Min e -> fold_minmax ~env members e ~better:(fun a b -> Value.compare a b < 0)
    | Max e -> fold_minmax ~env members e ~better:(fun a b -> Value.compare a b > 0)
    | Avg e -> (
      let vals = non_null_floats ~env members e in
      match vals with
      | [] -> Value.Null
      | _ ->
        Value.Float
          (List.fold_left ( +. ) 0. vals /. float_of_int (List.length vals)))
  in
  (* Empty input with no GROUP BY keys still yields one row (SQL aggregate
     over an empty relation). *)
  if order = [] && keys = [] then
    [ Array.of_list (List.map (fun (a, _) -> agg_value [] a) aggs) ]
  else
    List.map
      (fun key ->
        let members = List.rev !(Row_tbl.find groups key) in
        Array.append key (Array.of_list (List.map (fun (a, _) -> agg_value members a) aggs)))
      order

and non_null_floats ~env members e =
  List.filter_map
    (fun row ->
      match eval_expr ~env ~row e with
      | Value.Null -> None
      | v -> (
        match Value.as_float v with
        | Some f -> Some f
        | None -> type_error "aggregate over non-numeric value"))
    members

and fold_sum ~env members e =
  (* Ints fold in the int domain and only widen to float once a float input
     appears, so SUM over a FLOAT column stays a Float even when the total is
     integral (2.5 + 1.5 = 4.0, not 4) and pure-int sums keep exact precision
     beyond 2^53. *)
  let acc =
    List.fold_left
      (fun acc row ->
        match eval_expr ~env ~row e with
        | Value.Null -> acc
        | Value.Int i -> (
          match acc with
          | `Empty -> `Int i
          | `Int s -> `Int (s + i)
          | `Float s -> `Float (s +. float_of_int i))
        | Value.Float f -> (
          match acc with
          | `Empty -> `Float f
          | `Int s -> `Float (float_of_int s +. f)
          | `Float s -> `Float (s +. f))
        | Value.Str _ | Value.Bool _ ->
          type_error "aggregate over non-numeric value")
      `Empty members
  in
  match acc with
  | `Empty -> Value.Null
  | `Int s -> Value.Int s
  | `Float s -> Value.Float s

and fold_minmax ~env members e ~better =
  List.fold_left
    (fun best row ->
      match eval_expr ~env ~row e with
      | Value.Null -> best
      | v -> (
        match best with
        | Value.Null -> v
        | b -> if better v b then v else b))
    Value.Null members
