type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

let null = Null

let int i = Int i

let float f = Float f

let str s = Str s

let bool b = Bool b

let is_null = function Null -> true | Int _ | Float _ | Str _ | Bool _ -> false

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Str _ -> 3

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | (Null | Int _ | Float _ | Str _ | Bool _), _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 0
  | Int i -> Hashtbl.hash (float_of_int i)
  | Float f -> Hashtbl.hash f
  | Str s -> Hashtbl.hash s
  | Bool b -> if b then 3 else 5

let to_string = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> "'" ^ s ^ "'"
  | Bool b -> if b then "TRUE" else "FALSE"

let pp ppf v = Format.pp_print_string ppf (to_string v)

let as_int = function
  | Int i -> Some i
  | Float f -> if Float.is_finite f then Some (int_of_float f) else None
  | Null | Str _ | Bool _ -> None

let as_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Null | Str _ | Bool _ -> None

let as_bool = function Bool b -> Some b | Null | Int _ | Float _ | Str _ -> None

let as_string = function
  | Str s -> Some s
  | Null | Int _ | Float _ | Bool _ -> None
