open Ra

type node_stats = {
  label : string;
  rows : int;
  time : float;
  children : node_stats list;
}

let label_of = function
  | Scan (t, _) -> "Scan(" ^ Table.name t ^ ")"
  | Values _ -> "Values"
  | Filter _ -> "Filter"
  | Project _ -> "Project"
  | Cross _ -> "Cross"
  | Join { kind; _ } -> (
    match kind with
    | Inner -> "INNERJoin"
    | Left -> "LEFTJoin"
    | Semi -> "SEMIJoin"
    | Anti -> "ANTIJoin")
  | Union_all _ -> "UnionAll"
  | Union _ -> "Union"
  | Except _ -> "Except"
  | Intersect _ -> "Intersect"
  | Distinct _ -> "Distinct"
  | Sort _ -> "Sort"
  | Limit (n, _) -> Printf.sprintf "Limit(%d)" n
  | Group _ -> "Group"

let now () = Unix.gettimeofday ()

let set_section_observer obs = Hook.set obs

let timed label f =
  let t0 = now () in
  let res = f () in
  let dt = now () -. t0 in
  Hook.note label dt;
  (res, dt)

(* Replace an evaluated child by its materialized rows. *)
let freeze child rows = Values (schema_of child, rows)

let rec profile plan =
  let timed_leaf () =
    let t0 = now () in
    let rows = Eval.run plan in
    let stats =
      { label = label_of plan; rows = List.length rows; time = now () -. t0; children = [] }
    in
    (rows, stats)
  in
  let unary child rebuild =
    let child_rows, child_stats = profile child in
    let t0 = now () in
    let rows = Eval.run (rebuild (freeze child child_rows)) in
    ( rows,
      {
        label = label_of plan;
        rows = List.length rows;
        time = now () -. t0;
        children = [ child_stats ];
      } )
  in
  let binary l r rebuild =
    let l_rows, l_stats = profile l in
    let r_rows, r_stats = profile r in
    let t0 = now () in
    let rows = Eval.run (rebuild (freeze l l_rows) (freeze r r_rows)) in
    ( rows,
      {
        label = label_of plan;
        rows = List.length rows;
        time = now () -. t0;
        children = [ l_stats; r_stats ];
      } )
  in
  match plan with
  | Scan _ | Values _ -> timed_leaf ()
  | Filter (e, p) -> unary p (fun p -> Filter (e, p))
  | Project (cols, p) -> unary p (fun p -> Project (cols, p))
  | Distinct p -> unary p (fun p -> Distinct p)
  | Sort (keys, p) -> unary p (fun p -> Sort (keys, p))
  | Limit (n, p) -> unary p (fun p -> Limit (n, p))
  | Group g -> unary g.input (fun input -> Group { g with input })
  | Cross (l, r) -> binary l r (fun l r -> Cross (l, r))
  | Union_all (l, r) -> binary l r (fun l r -> Union_all (l, r))
  | Union (l, r) -> binary l r (fun l r -> Union (l, r))
  | Except (l, r) -> binary l r (fun l r -> Except (l, r))
  | Intersect (l, r) -> binary l r (fun l r -> Intersect (l, r))
  | Join j when (match j.right with Scan _ -> true | _ -> false) ->
    (* Keep the base-table right side: the index fast path should be what
       gets measured. *)
    let l_rows, l_stats = profile j.left in
    let r_stats =
      {
        label = label_of j.right;
        rows =
          (match j.right with Scan (t, _) -> Table.row_count t | _ -> 0);
        time = 0.;
        children = [];
      }
    in
    let t0 = now () in
    let rows = Eval.run (Join { j with left = freeze j.left l_rows }) in
    ( rows,
      {
        label = label_of plan;
        rows = List.length rows;
        time = now () -. t0;
        children = [ l_stats; r_stats ];
      } )
  | Join j ->
    binary j.left j.right (fun left right -> Join { j with left; right })

let run plan = profile plan

let render stats =
  let buf = Buffer.create 256 in
  let rec go indent s =
    Buffer.add_string buf
      (Printf.sprintf "%s%s  rows=%d  %.3f ms\n" indent s.label s.rows
         (1000. *. s.time));
    List.iter (go (indent ^ "  ")) s.children
  in
  go "" stats;
  Buffer.contents buf
