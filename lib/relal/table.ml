module Vec = Ds_util.Vec

module Key = struct
  type t = Value.t list

  let equal = List.equal Value.equal

  let hash k = List.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 k
end

module Key_tbl = Hashtbl.Make (Key)

(* Hash index: key -> posting list of row slots, ascending. Postings are kept
   exact under insert/update (slots move between postings); deletions are
   lazy — dead slots stay in the posting and are filtered on probe, and get
   swept out when the table compacts. *)
type index = { cols : int list; mutable map : int Vec.t Key_tbl.t option }

(* Ordered index: (value, slot) entries sorted by (value, slot), NULLs
   excluded. [main] is the big sorted run; inserts and updates append to the
   small [overflow] run, which is sorted lazily on probe and merged into
   [main] once it outgrows the merge threshold. Entries self-invalidate: an
   entry is live iff its slot is live and still holds that value, so deletes
   and updates never have to find old entries — stale ones are skipped on
   probe and dropped at the next merge/compaction. *)
type ordered_index = {
  ocol : int;
  mutable main : (Value.t * int) array;
  mutable overflow : (Value.t * int) Vec.t;
  mutable overflow_sorted : bool;
  mutable built : bool;
}

type t = {
  name : string;
  schema : Schema.t;
  rows : Value.t array Vec.t;  (* slots; dead slots linger until compaction *)
  mutable live : Bytes.t;  (* parallel to [rows]: '\001' live, '\000' dead *)
  mutable n_dead : int;
  mutable indexes : index list;
  mutable ordered : ordered_index list;
}

(* Global switch between incremental maintenance (default) and the
   invalidate-and-rebuild behaviour it replaced; the rebuild path is kept as
   the benchmark baseline and as the differential-testing oracle. *)
let incremental_maintenance = ref true

(* ------------------------------------------------------------------ *)
(* maintenance accounting                                             *)
(* ------------------------------------------------------------------ *)

let maintenance_clock = ref 0.

let maintenance_time () = !maintenance_clock

let reset_maintenance_time () = maintenance_clock := 0.

(* Wall-clock the index work of one mutation/build. Callers only wrap the
   index-maintenance part, never the base row work, so the counter isolates
   what incremental maintenance is supposed to shrink. *)
let timed_maintenance f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  maintenance_clock := !maintenance_clock +. dt;
  Hook.note "index-maintenance" dt;
  r

(* ------------------------------------------------------------------ *)
(* basics                                                             *)
(* ------------------------------------------------------------------ *)

let create ~name schema =
  {
    name;
    schema;
    rows = Vec.create ();
    live = Bytes.create 0;
    n_dead = 0;
    indexes = [];
    ordered = [];
  }

let name t = t.name

let schema t = t.schema

let slot_count t = Vec.length t.rows

let row_count t = Vec.length t.rows - t.n_dead

let is_live t pos = Bytes.unsafe_get t.live pos = '\001'

let invalidate t =
  List.iter (fun ix -> ix.map <- None) t.indexes;
  List.iter
    (fun ox ->
      ox.main <- [||];
      Vec.clear ox.overflow;
      ox.overflow_sorted <- true;
      ox.built <- false)
    t.ordered

let has_built_index t =
  List.exists (fun ix -> ix.map <> None) t.indexes
  || List.exists (fun ox -> ox.built) t.ordered

let key_of_row cols row = List.map (fun c -> row.(c)) cols

(* Compare ordered-index entries by (value, slot): the global probe order. *)
let entry_compare (va, pa) (vb, pb) =
  match Value.compare va vb with 0 -> Int.compare pa pb | c -> c

let ensure_live_capacity t =
  let len = Vec.length t.rows in
  if Bytes.length t.live < len then begin
    let grown = Bytes.make (max 16 (2 * len)) '\000' in
    Bytes.blit t.live 0 grown 0 (Bytes.length t.live);
    t.live <- grown
  end

(* ------------------------------------------------------------------ *)
(* insert                                                             *)
(* ------------------------------------------------------------------ *)

(* Add slot [pos] holding [row] to every *built* index; unbuilt indexes are
   populated wholesale on their next probe. O(#indexes · log) per row. *)
let index_insert t pos row =
  List.iter
    (fun ix ->
      match ix.map with
      | None -> ()
      | Some map -> (
        let key = key_of_row ix.cols row in
        match Key_tbl.find_opt map key with
        | Some posting -> Vec.push posting pos
        | None ->
          let posting = Vec.create () in
          Vec.push posting pos;
          Key_tbl.replace map key posting))
    t.indexes;
  List.iter
    (fun ox ->
      if ox.built then begin
        let v = row.(ox.ocol) in
        if not (Value.is_null v) then begin
          Vec.push ox.overflow (v, pos);
          ox.overflow_sorted <- false
        end
      end)
    t.ordered

let push_row t row =
  let pos = Vec.length t.rows in
  Vec.push t.rows row;
  ensure_live_capacity t;
  Bytes.unsafe_set t.live pos '\001';
  pos

let check_arity t row =
  if Array.length row <> Schema.arity t.schema then
    invalid_arg
      (Printf.sprintf "Table.insert(%s): arity %d, schema wants %d" t.name
         (Array.length row) (Schema.arity t.schema))

let insert t row =
  check_arity t row;
  let pos = push_row t row in
  if not !incremental_maintenance then invalidate t
  else if has_built_index t then
    timed_maintenance (fun () -> index_insert t pos row)

let insert_many t rows =
  match rows with
  | [] -> ()
  | _ when not !incremental_maintenance ->
    List.iter
      (fun row ->
        check_arity t row;
        ignore (push_row t row))
      rows;
    invalidate t
  | _ ->
    let first = ref (-1) in
    List.iter
      (fun row ->
        check_arity t row;
        let pos = push_row t row in
        if !first < 0 then first := pos)
      rows;
    if has_built_index t then
      timed_maintenance (fun () ->
          for pos = !first to Vec.length t.rows - 1 do
            index_insert t pos (Vec.get t.rows pos)
          done)

(* ------------------------------------------------------------------ *)
(* compaction                                                         *)
(* ------------------------------------------------------------------ *)

(* Rewrite one ordered index against [remap] (old slot -> new slot, -1 =
   gone): sort the overflow run, merge it with the main run and keep only
   entries that still validate. Single linear pass; the result is a clean
   [main] and an empty overflow. Must run after the rows vector has been
   compacted (validation reads rows at their *new* slots). *)
let compact_ordered t remap ox =
  if ox.built then begin
    if not ox.overflow_sorted then begin
      Vec.sort entry_compare ox.overflow;
      ox.overflow_sorted <- true
    end;
    let ov = Vec.to_array ox.overflow in
    let merged = Vec.create () in
    let keep (v, old_pos) =
      let pos = remap.(old_pos) in
      if pos >= 0 && Value.equal (Vec.get t.rows pos).(ox.ocol) v then begin
        let entry = (v, pos) in
        if
          Vec.is_empty merged
          || entry_compare (Vec.last merged) entry <> 0 (* drop exact dups *)
        then Vec.push merged entry
      end
    in
    let n_main = Array.length ox.main and n_ov = Array.length ov in
    let i = ref 0 and j = ref 0 in
    while !i < n_main || !j < n_ov do
      if
        !j >= n_ov
        || (!i < n_main && entry_compare ox.main.(!i) ov.(!j) <= 0)
      then begin
        keep ox.main.(!i);
        incr i
      end
      else begin
        keep ov.(!j);
        incr j
      end
    done;
    ox.main <- Vec.to_array merged;
    Vec.clear ox.overflow;
    ox.overflow_sorted <- true
  end

(* Squeeze dead slots out of the rows vector in place (single write-pointer
   pass) and patch every built index through the slot remap instead of
   rebuilding it: postings are filtered/rewritten in place, ordered runs are
   merged/validated. Triggered when at least half the slots are dead, so the
   cost amortizes to O(1) per deleted row. *)
let compact t =
  let n = Vec.length t.rows in
  let remap = Array.make n (-1) in
  let w = ref 0 in
  for i = 0 to n - 1 do
    if is_live t i then begin
      if !w < i then Vec.set t.rows !w (Vec.get t.rows i);
      remap.(i) <- !w;
      incr w
    end
  done;
  Vec.truncate t.rows !w;
  Bytes.fill t.live 0 (Bytes.length t.live) '\000';
  Bytes.fill t.live 0 !w '\001';
  t.n_dead <- 0;
  if !incremental_maintenance then begin
    List.iter
      (fun ix ->
        match ix.map with
        | None -> ()
        | Some map ->
          Key_tbl.filter_map_inplace
            (fun _key posting ->
              ignore
                (Vec.filter_map_in_place
                   (fun pos ->
                     if remap.(pos) >= 0 then Some remap.(pos) else None)
                   posting);
              if Vec.is_empty posting then None else Some posting)
            map)
      t.indexes;
    List.iter (compact_ordered t remap) t.ordered
  end
  else invalidate t

let maybe_compact t =
  if t.n_dead > 64 && 2 * t.n_dead > Vec.length t.rows then
    if has_built_index t then timed_maintenance (fun () -> compact t)
    else compact t

(* ------------------------------------------------------------------ *)
(* delete / update / clear                                            *)
(* ------------------------------------------------------------------ *)

let delete_where t p =
  let removed = ref 0 in
  for pos = 0 to Vec.length t.rows - 1 do
    if is_live t pos && p (Vec.get t.rows pos) then begin
      Bytes.unsafe_set t.live pos '\000';
      incr removed
    end
  done;
  if !removed > 0 then begin
    t.n_dead <- t.n_dead + !removed;
    if not !incremental_maintenance then invalidate t;
    maybe_compact t
  end;
  !removed

(* Move slot [pos] from its old hash-index postings to the new ones after an
   in-place row update. Postings must stay ascending so probes return rows in
   insertion order; the slot is re-inserted at its sorted position. *)
let reindex_hash t pos old_keys row =
  List.iter2
    (fun ix old_key ->
      match ix.map with
      | None -> ()
      | Some map ->
        let new_key = key_of_row ix.cols row in
        if not (Key.equal old_key new_key) then begin
          (match Key_tbl.find_opt map old_key with
          | Some posting ->
            ignore (Vec.filter_in_place (fun p -> p <> pos) posting);
            if Vec.is_empty posting then Key_tbl.remove map old_key
          | None -> ());
          match Key_tbl.find_opt map new_key with
          | Some posting ->
            (* Sorted insert: usually appends (pos is the newest slot with
               this key); bounded by the posting length otherwise. *)
            Vec.push posting pos;
            let i = ref (Vec.length posting - 1) in
            while !i > 0 && Vec.get posting (!i - 1) > pos do
              Vec.set posting !i (Vec.get posting (!i - 1));
              decr i
            done;
            Vec.set posting !i pos
          | None ->
            let posting = Vec.create () in
            Vec.push posting pos;
            Key_tbl.replace map new_key posting
        end)
    t.indexes old_keys

let reindex_ordered t pos old_vals row =
  List.iter2
    (fun ox old_v ->
      if ox.built then begin
        let v = row.(ox.ocol) in
        if (not (Value.equal old_v v)) && not (Value.is_null v) then begin
          (* The stale (old_v, pos) entry self-invalidates on probe; only the
             new value needs an entry. *)
          Vec.push ox.overflow (v, pos);
          ox.overflow_sorted <- false
        end
      end)
    t.ordered old_vals

let update_where t p f =
  let touched = ref 0 in
  let incr_mode = !incremental_maintenance && has_built_index t in
  for pos = 0 to Vec.length t.rows - 1 do
    if is_live t pos then begin
      let row = Vec.get t.rows pos in
      if p row then begin
        if incr_mode then begin
          let old_keys =
            List.map (fun ix -> key_of_row ix.cols row) t.indexes
          in
          let old_vals = List.map (fun ox -> row.(ox.ocol)) t.ordered in
          f row;
          timed_maintenance (fun () ->
              reindex_hash t pos old_keys row;
              reindex_ordered t pos old_vals row)
        end
        else f row;
        incr touched
      end
    end
  done;
  if !touched > 0 && not !incremental_maintenance then invalidate t;
  !touched

let clear t =
  Vec.clear t.rows;
  Bytes.fill t.live 0 (Bytes.length t.live) '\000';
  t.n_dead <- 0;
  invalidate t

(* ------------------------------------------------------------------ *)
(* scans                                                              *)
(* ------------------------------------------------------------------ *)

let rows t =
  let out = ref [] in
  for pos = Vec.length t.rows - 1 downto 0 do
    if is_live t pos then out := Vec.get t.rows pos :: !out
  done;
  !out

let iter f t =
  for pos = 0 to Vec.length t.rows - 1 do
    if is_live t pos then f (Vec.get t.rows pos)
  done

let fold f acc t =
  let acc = ref acc in
  iter (fun row -> acc := f !acc row) t;
  !acc

(* ------------------------------------------------------------------ *)
(* hash indexes                                                       *)
(* ------------------------------------------------------------------ *)

let same_cols = List.equal Int.equal

let create_index t cols =
  List.iter
    (fun c ->
      if c < 0 || c >= Schema.arity t.schema then
        invalid_arg "Table.create_index: column out of range")
    cols;
  if not (List.exists (fun ix -> same_cols ix.cols cols) t.indexes) then
    t.indexes <- { cols; map = None } :: t.indexes

let has_index t cols = List.exists (fun ix -> same_cols ix.cols cols) t.indexes

let build ix t =
  timed_maintenance (fun () ->
      let map = Key_tbl.create (max 16 (row_count t)) in
      for pos = 0 to Vec.length t.rows - 1 do
        if is_live t pos then begin
          let key = key_of_row ix.cols (Vec.get t.rows pos) in
          match Key_tbl.find_opt map key with
          | Some posting -> Vec.push posting pos
          | None ->
            let posting = Vec.create () in
            Vec.push posting pos;
            Key_tbl.replace map key posting
        end
      done;
      ix.map <- Some map;
      map)

let probe t cols key =
  match List.find_opt (fun ix -> same_cols ix.cols cols) t.indexes with
  | None -> invalid_arg (Printf.sprintf "Table.probe(%s): no such index" t.name)
  | Some ix ->
    let map = match ix.map with Some m -> m | None -> build ix t in
    (match Key_tbl.find_opt map key with
    | None -> []
    | Some posting ->
      (* Postings are ascending slots = insertion order; dead slots are
         skipped here and swept out by compaction. *)
      let out = ref [] in
      for i = Vec.length posting - 1 downto 0 do
        let pos = Vec.get posting i in
        if is_live t pos then out := Vec.get t.rows pos :: !out
      done;
      !out)

(* ------------------------------------------------------------------ *)
(* ordered indexes                                                    *)
(* ------------------------------------------------------------------ *)

let create_ordered_index t col =
  if col < 0 || col >= Schema.arity t.schema then
    invalid_arg "Table.create_ordered_index: column out of range";
  if not (List.exists (fun ox -> ox.ocol = col) t.ordered) then
    t.ordered <-
      {
        ocol = col;
        main = [||];
        overflow = Vec.create ();
        overflow_sorted = true;
        built = false;
      }
      :: t.ordered

let has_ordered_index t col = List.exists (fun ox -> ox.ocol = col) t.ordered

let build_ordered ox t =
  timed_maintenance (fun () ->
      let cells = Vec.create () in
      for pos = 0 to Vec.length t.rows - 1 do
        if is_live t pos then begin
          let v = (Vec.get t.rows pos).(ox.ocol) in
          if not (Value.is_null v) then Vec.push cells (v, pos)
        end
      done;
      (* Slots are visited ascending, so this is already (value, slot)
         sorted within equal values after a stable value sort. *)
      let arr = Vec.to_array cells in
      Array.stable_sort entry_compare arr;
      ox.main <- arr;
      Vec.clear ox.overflow;
      ox.overflow_sorted <- true;
      ox.built <- true)

(* Sort the overflow run if dirty, and merge it into the main run once it
   outgrows the threshold (the "compacted on probe" step). Identity remap:
   slots are untouched, only runs move. *)
let settle_overflow ox t =
  let n_ov = Vec.length ox.overflow in
  if n_ov > 0 then
    if n_ov > max 64 (Array.length ox.main / 8) then
      timed_maintenance (fun () ->
          let remap =
            Array.init (Vec.length t.rows) (fun i ->
                if is_live t i then i else -1)
          in
          compact_ordered t remap ox)
    else if not ox.overflow_sorted then
      timed_maintenance (fun () ->
          Vec.sort entry_compare ox.overflow;
          ox.overflow_sorted <- true)

(* First index in [get 0..n) whose entry value satisfies [bound] (for [lo])
   or violates it (for [hi]). *)
let bisect ~n ~get ~crosses =
  let rec go l r =
    if l >= r then l
    else begin
      let m = (l + r) / 2 in
      if crosses (fst (get m)) then go l m else go (m + 1) r
    end
  in
  go 0 n

let lo_crosses lo v =
  match lo with
  | None -> true
  | Some (b, inclusive) ->
    let c = Value.compare v b in
    c > 0 || (c = 0 && inclusive)

let hi_crosses hi v =
  match hi with
  | None -> false
  | Some (b, inclusive) ->
    let c = Value.compare v b in
    c > 0 || (c = 0 && not inclusive)

let range_probe t col ~lo ~hi =
  match List.find_opt (fun ox -> ox.ocol = col) t.ordered with
  | None ->
    invalid_arg (Printf.sprintf "Table.range_probe(%s): no ordered index" t.name)
  | Some ox ->
    if not ox.built then build_ordered ox t;
    settle_overflow ox t;
    let main = ox.main and ov = ox.overflow in
    let m_start =
      bisect ~n:(Array.length main) ~get:(Array.get main)
        ~crosses:(lo_crosses lo)
    and m_stop =
      bisect ~n:(Array.length main) ~get:(Array.get main)
        ~crosses:(hi_crosses hi)
    and o_start =
      bisect ~n:(Vec.length ov) ~get:(Vec.get ov) ~crosses:(lo_crosses lo)
    and o_stop =
      bisect ~n:(Vec.length ov) ~get:(Vec.get ov) ~crosses:(hi_crosses hi)
    in
    (* Merge the two in-range runs by (value, slot); entries validate against
       the current row (alive and value unchanged), and exact duplicates
       (possible after value flip-flops via update) collapse. *)
    let out = ref [] in
    let last = ref None in
    let emit ((v, pos) as entry) =
      if
        (match !last with Some prev -> entry_compare prev entry <> 0 | None -> true)
        && is_live t pos
        && Value.equal (Vec.get t.rows pos).(col) v
      then begin
        out := Vec.get t.rows pos :: !out;
        last := Some entry
      end
      else last := Some entry
    in
    let i = ref m_start and j = ref o_start in
    while !i < m_stop || !j < o_stop do
      if
        !j >= o_stop
        || (!i < m_stop && entry_compare main.(!i) (Vec.get ov !j) <= 0)
      then begin
        emit main.(!i);
        incr i
      end
      else begin
        emit (Vec.get ov !j);
        incr j
      end
    done;
    List.rev !out

let indexed_columns t = List.map (fun ix -> ix.cols) t.indexes

(* Probe the hash index on [cols] for [key] and tombstone every matching live
   row satisfying [p]; returns how many were removed. The batched delete used
   by the scheduler's history pruning: O(posting) instead of a full scan. *)
let delete_by_key t cols key p =
  match List.find_opt (fun ix -> same_cols ix.cols cols) t.indexes with
  | None ->
    invalid_arg (Printf.sprintf "Table.delete_by_key(%s): no such index" t.name)
  | Some ix ->
    let map = match ix.map with Some m -> m | None -> build ix t in
    let removed = ref 0 in
    (match Key_tbl.find_opt map key with
    | None -> ()
    | Some posting ->
      Vec.iter
        (fun pos ->
          if is_live t pos && p (Vec.get t.rows pos) then begin
            Bytes.unsafe_set t.live pos '\000';
            incr removed
          end)
        posting);
    if !removed > 0 then begin
      t.n_dead <- t.n_dead + !removed;
      if not !incremental_maintenance then invalidate t;
      maybe_compact t
    end;
    !removed
