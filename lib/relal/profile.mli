(** Instrumented plan evaluation (EXPLAIN ANALYZE): evaluates a plan once,
    bottom-up, recording output cardinality and wall-clock time per node.

    Implementation note: each child's result is materialized and substituted
    as a literal relation before its parent is timed, so a node's time covers
    that node's own work only. A join whose right side is an indexed base
    table keeps the real scan so the index fast path stays on the measured
    path. Only valid for top-level plans (no outer-row references). *)

type node_stats = {
  label : string;  (** node kind, e.g. "Filter", "INNERJoin" *)
  rows : int;  (** output cardinality *)
  time : float;  (** seconds spent in this node alone *)
  children : node_stats list;
}

(** Evaluates and profiles; returns the final rows and the stats tree. *)
val run : Ra.plan -> Value.t array list * node_stats

(** Multi-line tree rendering with per-node rows and milliseconds. *)
val render : node_stats -> string

(** [timed label f] runs [f ()], wall-clock timing it, and returns the result
    with the elapsed seconds. The scheduler routes its protocol-query phase
    through this so external observers (metrics, tests) can watch query-eval
    time without touching the scheduler. *)
val timed : string -> (unit -> 'a) -> 'a * float

(** Installs (or clears, with [None]) the global section observer notified by
    every {!timed} call with its label and elapsed seconds. {!Table} reports
    its index-maintenance work (incremental updates, lazy builds, merges,
    compaction) through the same observer under the label
    ["index-maintenance"]. *)
val set_section_observer : (string -> float -> unit) option -> unit
