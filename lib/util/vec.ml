type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let make n x = { data = Array.make n x; len = n }

let length v = v.len

let is_empty v = v.len = 0

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i =
  check v i;
  Array.unsafe_get v.data i

let set v i x =
  check v i;
  Array.unsafe_set v.data i x

let ensure_capacity v extra =
  let needed = v.len + extra in
  let cap = Array.length v.data in
  if needed > cap then begin
    let new_cap = max needed (max 8 (2 * cap)) in
    (* [v.len > 0] guarantees a seed element for [Array.make]. *)
    let data =
      if v.len = 0 then Array.make new_cap (Obj.magic 0)
      else begin
        let d = Array.make new_cap v.data.(0) in
        Array.blit v.data 0 d 0 v.len;
        d
      end
    in
    v.data <- data
  end

let push v x =
  if v.len = Array.length v.data then begin
    let new_cap = max 8 (2 * v.len) in
    let data = Array.make new_cap x in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end;
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  Array.unsafe_get v.data v.len

let last v =
  if v.len = 0 then invalid_arg "Vec.last: empty";
  Array.unsafe_get v.data (v.len - 1)

let clear v = v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (Array.unsafe_get v.data i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.len && (p (Array.unsafe_get v.data i) || loop (i + 1)) in
  loop 0

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (get v i :: acc) in
  loop (v.len - 1) []

let of_list l =
  let v = create () in
  List.iter (push v) l;
  v

let to_array v = Array.sub v.data 0 v.len

let of_array a = { data = Array.copy a; len = Array.length a }

let map f v =
  if v.len = 0 then create ()
  else begin
    let out = make v.len (f (get v 0)) in
    for i = 1 to v.len - 1 do
      set out i (f (get v i))
    done;
    out
  end

let filter p v =
  let out = create () in
  iter (fun x -> if p x then push out x) v;
  out

let append v w =
  ensure_capacity v (length w);
  iter (push v) w

let truncate v n =
  if n < 0 then invalid_arg "Vec.truncate";
  if n < v.len then v.len <- n

let filter_in_place p v =
  let w = ref 0 in
  for i = 0 to v.len - 1 do
    let x = Array.unsafe_get v.data i in
    if p x then begin
      if !w < i then Array.unsafe_set v.data !w x;
      incr w
    end
  done;
  let removed = v.len - !w in
  v.len <- !w;
  removed

let filter_map_in_place f v =
  let w = ref 0 in
  for i = 0 to v.len - 1 do
    match f (Array.unsafe_get v.data i) with
    | Some y ->
      Array.unsafe_set v.data !w y;
      incr w
    | None -> ()
  done;
  let removed = v.len - !w in
  v.len <- !w;
  removed

let sort cmp v =
  let a = to_array v in
  Array.stable_sort cmp a;
  Array.blit a 0 v.data 0 v.len

let swap_remove v i =
  check v i;
  let x = Array.unsafe_get v.data i in
  v.len <- v.len - 1;
  if i < v.len then Array.unsafe_set v.data i (Array.unsafe_get v.data v.len);
  x
