(** Growable arrays (OCaml 5.1 has no [Dynarray]; this is the small subset the
    rest of the code base needs). *)

type 'a t

val create : unit -> 'a t
val make : int -> 'a -> 'a t

(** [length v] is the number of elements currently stored. *)
val length : 'a t -> int

val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit

(** [pop v] removes and returns the last element. @raise Invalid_argument on
    an empty vector. *)
val pop : 'a t -> 'a

val last : 'a t -> 'a
val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val map : ('a -> 'b) -> 'a t -> 'b t
val filter : ('a -> bool) -> 'a t -> 'a t
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t
val to_array : 'a t -> 'a array
val of_array : 'a array -> 'a t
val append : 'a t -> 'a t -> unit

(** [truncate v n] drops all elements at index [>= n]. *)
val truncate : 'a t -> int -> unit

(** [filter_in_place p v] keeps only the elements satisfying [p], compacting
    the vector in place with a single write pointer (no intermediate copy);
    relative order is preserved. Returns how many elements were dropped. *)
val filter_in_place : ('a -> bool) -> 'a t -> int

(** [filter_map_in_place f v] rewrites each element to [f x] where that is
    [Some y] and drops the [None]s, in place and order-preserving. Returns
    how many elements were dropped. *)
val filter_map_in_place : ('a -> 'a option) -> 'a t -> int

(** In-place stable sort. *)
val sort : ('a -> 'a -> int) -> 'a t -> unit

(** [swap_remove v i] removes element [i] by moving the last element into its
    place; O(1), does not preserve order. *)
val swap_remove : 'a t -> int -> 'a
