(** Minimal JSON (RFC 8259 subset) — just enough for the trace exporters and
    loaders; the container has no JSON library and the trace format is under
    our control. Numbers parse as floats; strings support the standard
    escapes plus [\uXXXX] (decoded as a byte when < 256, else ['?']). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
val to_buffer : Buffer.t -> t -> unit

(** @raise Parse_error on malformed input or trailing garbage. *)
val of_string : string -> t

(** Object field access helpers ([None] when absent or wrong type). *)
val mem : string -> t -> t option

val str : t -> string option
val num : t -> float option
