(** Tiered latency metrics and per-cycle scheduler metrics.

    A {!t} is an online accumulator fed by the middleware loop: request
    latencies bucketed per SLA tier (one {!Ds_stats.Histogram} each) plus one
    {!cycle_row} per scheduler cycle (drain size, admit ratio, query-eval
    time). The [*_of_events] functions are the offline counterpart used by
    [dsched trace]: they recompute the same latency views from a loaded
    event list. *)

type cycle_row = {
  cycle : int;
  drained : int;  (** requests moved from the incoming queue to [pending] *)
  pending_before : int;  (** pending size when qualification started *)
  qualified : int;  (** requests admitted this cycle *)
  admit_ratio : float;  (** [qualified / max 1 (pending_before + drained)] *)
  query_time : float;  (** seconds spent evaluating the protocol query *)
  index_time : float;
      (** seconds of table index maintenance inside the cycle (subset of the
          cycle's phase times, reported by {!Ds_relal.Table}) *)
}

(** One parallel-backend worker's totals for the run. *)
type worker_row = {
  worker : int;
  executed : int;  (** data statements executed *)
  busy : float;  (** seconds of CPU busy time (virtual) *)
  utilization : float;  (** busy / (elapsed * cores) *)
}

(** Parallel-backend summary set once at end of run by the middleware. *)
type parallel = {
  workers : int;
  batches : int;  (** batches fully drained by the pool *)
  makespan_mean : float;  (** batch dispatch-to-drain, virtual seconds *)
  makespan_p95 : float;
  makespan_max : float;
  per_worker : worker_row list;
}

(** Worker-supervision and recovery summary set once at end of run by the
    middleware: worker faults handled by the pool supervisor, journal
    checkpointing and crash-recovery totals. *)
type supervision = {
  worker_crashes : int;  (** workers crashed between classes (rejoin next batch) *)
  worker_deaths : int;  (** workers removed permanently *)
  stalls_detected : int;  (** classes that overran their execution deadline *)
  reassigned : int;  (** conflict classes moved to a surviving worker *)
  hedged : int;  (** duplicate executions raced against stragglers *)
  checkpoints : int;  (** journal snapshot blocks written *)
  recoveries : int;  (** middleware crashes recovered from the journal *)
  recovery_replayed : int;  (** journal lines replayed across all recoveries *)
  recovery_skipped : int;  (** journal lines skipped thanks to checkpoints *)
  recovery_time : float;  (** total wall-clock seconds spent recovering *)
}

(** Hot-standby replication summary set once at end of run by the
    middleware when a standby was attached (see {!Ds_core.Middleware}). *)
type replication = {
  repl_sync : bool;  (** commit acks gated on the watermark *)
  repl_epoch : int;  (** final promotion epoch (0 = never failed over) *)
  repl_watermark : int;  (** highest contiguous LSN the standby applied *)
  repl_lag : int;  (** primary LSN minus watermark at end of run *)
  repl_fenced : int;  (** stale-epoch records refused after promotion *)
  repl_divergences : int;  (** checkpoint state-hash mismatches *)
  repl_failovers : int;  (** standby promotions during the run *)
}

type t

val create : unit -> t

val set_parallel : t -> parallel -> unit
val parallel : t -> parallel option
val set_supervision : t -> supervision -> unit
val supervision : t -> supervision option
val set_replication : t -> replication -> unit
val replication : t -> replication option

(** [observe_latency t ~tier dt] adds one request latency (seconds) to the
    tier's histogram. *)
val observe_latency : t -> tier:string -> float -> unit

val record_cycle :
  t ->
  drained:int ->
  pending_before:int ->
  qualified:int ->
  query_time:float ->
  ?index_time:float ->
  unit ->
  unit

(** [(tier, n, p50, p95, p99)] per tier with at least one sample, in SLA
    urgency order (premium, standard, free), unknown tiers last. *)
val tier_quantiles : t -> (string * int * float * float * float) list

val cycles : t -> cycle_row list

(** Human-readable report: the tier table, cycle aggregates, and — when
    {!set_parallel} / {!set_supervision} / {!set_replication} were called —
    batch makespans with a per-worker utilization table, the
    supervision/recovery summary, and the replication summary. *)
val render : t -> string

(** Per-transaction latencies from a trace: [(tier, seconds)] for every TA
    whose span tree has a terminal event (see {!Span.latency}). *)
val latencies_of_events : Trace.event list -> (string * float) list

(** Offline version of {!tier_quantiles}. *)
val latency_rows : Trace.event list -> (string * int * float * float * float) list

val render_latency_rows : (string * int * float * float * float) list -> string

(** [lock_wait_offenders events] pairs each [Lock_wait] with the next
    [Lock_grant] for the same [(ta, seq, obj)] and aggregates per object:
    [(obj, total_wait_seconds, n_waits)], sorted by total wait descending,
    truncated to [top] (default 10). *)
val lock_wait_offenders :
  ?top:int -> Trace.event list -> (int * float * int) list
