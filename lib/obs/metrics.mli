(** Tiered latency metrics and per-cycle scheduler metrics.

    A {!t} is an online accumulator fed by the middleware loop: request
    latencies bucketed per SLA tier (one {!Ds_stats.Histogram} each) plus one
    {!cycle_row} per scheduler cycle (drain size, admit ratio, query-eval
    time). The [*_of_events] functions are the offline counterpart used by
    [dsched trace]: they recompute the same latency views from a loaded
    event list. *)

type cycle_row = {
  cycle : int;
  drained : int;  (** requests moved from the incoming queue to [pending] *)
  pending_before : int;  (** pending size when qualification started *)
  qualified : int;  (** requests admitted this cycle *)
  admit_ratio : float;  (** [qualified / max 1 (pending_before + drained)] *)
  query_time : float;  (** seconds spent evaluating the protocol query *)
  index_time : float;
      (** seconds of table index maintenance inside the cycle (subset of the
          cycle's phase times, reported by {!Ds_relal.Table}) *)
}

(** One parallel-backend worker's totals for the run. *)
type worker_row = {
  worker : int;
  executed : int;  (** data statements executed *)
  busy : float;  (** seconds of CPU busy time (virtual) *)
  utilization : float;  (** busy / (elapsed * cores) *)
}

(** Parallel-backend summary set once at end of run by the middleware. *)
type parallel = {
  workers : int;
  batches : int;  (** batches fully drained by the pool *)
  makespan_mean : float;  (** batch dispatch-to-drain, virtual seconds *)
  makespan_p95 : float;
  makespan_max : float;
  per_worker : worker_row list;
}

type t

val create : unit -> t

val set_parallel : t -> parallel -> unit
val parallel : t -> parallel option

(** [observe_latency t ~tier dt] adds one request latency (seconds) to the
    tier's histogram. *)
val observe_latency : t -> tier:string -> float -> unit

val record_cycle :
  t ->
  drained:int ->
  pending_before:int ->
  qualified:int ->
  query_time:float ->
  ?index_time:float ->
  unit ->
  unit

(** [(tier, n, p50, p95, p99)] per tier with at least one sample, in SLA
    urgency order (premium, standard, free), unknown tiers last. *)
val tier_quantiles : t -> (string * int * float * float * float) list

val cycles : t -> cycle_row list

(** Human-readable report: the tier table, cycle aggregates, and — when
    {!set_parallel} was called — batch makespans plus a per-worker
    utilization table. *)
val render : t -> string

(** Per-transaction latencies from a trace: [(tier, seconds)] for every TA
    whose span tree has a terminal event (see {!Span.latency}). *)
val latencies_of_events : Trace.event list -> (string * float) list

(** Offline version of {!tier_quantiles}. *)
val latency_rows : Trace.event list -> (string * int * float * float * float) list

val render_latency_rows : (string * int * float * float * float) list -> string

(** [lock_wait_offenders events] pairs each [Lock_wait] with the next
    [Lock_grant] for the same [(ta, seq, obj)] and aggregates per object:
    [(obj, total_wait_seconds, n_waits)], sorted by total wait descending,
    truncated to [top] (default 10). *)
val lock_wait_offenders :
  ?top:int -> Trace.event list -> (int * float * int) list
