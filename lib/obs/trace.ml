type kind =
  | Enqueued
  | Drained
  | Sched_admit
  | Sched_defer
  | Dispatched
  | Lock_wait
  | Lock_grant
  | Exec_start
  | Exec_done
  | Commit
  | Abort
  | Retry
  | Dead_letter
  | Worker_down
  | Reassign
  | Checkpoint
  | Shard_route
  | Failover
  | Repl_fence
  | Repl_divergence

let kind_to_string = function
  | Enqueued -> "enqueued"
  | Drained -> "drained"
  | Sched_admit -> "sched_admit"
  | Sched_defer -> "sched_defer"
  | Dispatched -> "dispatched"
  | Lock_wait -> "lock_wait"
  | Lock_grant -> "lock_grant"
  | Exec_start -> "exec_start"
  | Exec_done -> "exec_done"
  | Commit -> "commit"
  | Abort -> "abort"
  | Retry -> "retry"
  | Dead_letter -> "dead_letter"
  | Worker_down -> "worker_down"
  | Reassign -> "reassign"
  | Checkpoint -> "checkpoint"
  | Shard_route -> "shard_route"
  | Failover -> "failover"
  | Repl_fence -> "repl_fence"
  | Repl_divergence -> "repl_divergence"

let kind_of_string = function
  | "enqueued" -> Some Enqueued
  | "drained" -> Some Drained
  | "sched_admit" -> Some Sched_admit
  | "sched_defer" -> Some Sched_defer
  | "dispatched" -> Some Dispatched
  | "lock_wait" -> Some Lock_wait
  | "lock_grant" -> Some Lock_grant
  | "exec_start" -> Some Exec_start
  | "exec_done" -> Some Exec_done
  | "commit" -> Some Commit
  | "abort" -> Some Abort
  | "retry" -> Some Retry
  | "dead_letter" -> Some Dead_letter
  | "worker_down" -> Some Worker_down
  | "reassign" -> Some Reassign
  | "checkpoint" -> Some Checkpoint
  | "shard_route" -> Some Shard_route
  | "failover" -> Some Failover
  | "repl_fence" -> Some Repl_fence
  | "repl_divergence" -> Some Repl_divergence
  | _ -> None

let is_terminal = function
  | Commit | Abort | Dead_letter -> true
  | Enqueued | Drained | Sched_admit | Sched_defer | Dispatched | Lock_wait
  | Lock_grant | Exec_start | Exec_done | Retry | Worker_down | Reassign
  | Checkpoint | Shard_route | Failover | Repl_fence | Repl_divergence ->
    false

type event = {
  at : float;
  ta : int;
  seq : int;
  kind : kind;
  op : char;
  obj : int;
  arg : int;
  tier : string;
}

type t = {
  mutable enabled : bool;
  mutable clock : unit -> float;
  buf : event Ds_util.Vec.t;
}

let create ?(enabled = true) () =
  { enabled; clock = (fun () -> 0.); buf = Ds_util.Vec.create () }

let set_clock t clock = t.clock <- clock

let now t = t.clock ()

let enabled t = t.enabled

let set_enabled t b = t.enabled <- b

let is_on = function None -> false | Some t -> t.enabled

let emit sink kind ~ta ~seq ?(op = ' ') ?(obj = -1) ?(arg = -1) ?(tier = "")
    () =
  match sink with
  | None -> ()
  | Some t ->
    if t.enabled then
      Ds_util.Vec.push t.buf
        { at = t.clock (); ta; seq; kind; op; obj; arg; tier }

let emit_req sink ?arg kind (r : Ds_model.Request.t) =
  match sink with
  | None -> ()
  | Some t ->
    if t.enabled then
      Ds_util.Vec.push t.buf
        {
          at = t.clock ();
          ta = r.Ds_model.Request.ta;
          seq = r.Ds_model.Request.intrata;
          kind;
          op = Ds_model.Op.to_char r.Ds_model.Request.op;
          obj = Option.value ~default:(-1) r.Ds_model.Request.obj;
          arg = Option.value ~default:(-1) arg;
          tier = Ds_model.Sla.tier_to_string r.Ds_model.Request.sla.Ds_model.Sla.tier;
        }

let emit_txn sink ?(tier = "") kind ~ta =
  match sink with
  | None -> ()
  | Some t ->
    if t.enabled then
      Ds_util.Vec.push t.buf
        { at = t.clock (); ta; seq = -1; kind; op = ' '; obj = -1; arg = -1; tier }

let count t = Ds_util.Vec.length t.buf

let events t = Ds_util.Vec.to_list t.buf

let clear t = Ds_util.Vec.clear t.buf

let pp_event ppf e =
  Format.fprintf ppf "%.6f ta=%d seq=%d %s" e.at e.ta e.seq
    (kind_to_string e.kind);
  if e.op <> ' ' then Format.fprintf ppf " op=%c" e.op;
  if e.obj >= 0 then Format.fprintf ppf " obj=%d" e.obj;
  if e.arg >= 0 then Format.fprintf ppf " arg=%d" e.arg;
  if e.tier <> "" then Format.fprintf ppf " tier=%s" e.tier

let event_to_string e = Format.asprintf "%a" pp_event e
