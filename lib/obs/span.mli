(** Span trees: the per-transaction view of a trace.

    A transaction's span tree has one root (the transaction, [ta]) and one
    child span per request ([(ta, seq)]), each holding that request's
    lifecycle events in emission order. Transaction-level events
    ([seq = -1]) — the terminals [commit]/[abort]/[dead_letter] among them —
    attach to the root.

    {!validate} checks the well-formedness invariants the tracing subsystem
    guarantees (and the property tests enforce):

    + per transaction, event timestamps are non-decreasing in emission order
      (the discrete-event clock makes exact ties legal; going backwards is
      not);
    + at most one terminal event per transaction, and for every transaction
      that has one, exactly one;
    + no [exec_start] without a prior [sched_admit] for the same
      [(ta, seq)] — the server never executes what the scheduler has not
      qualified. *)

type span = {
  ta : int;
  seq : int;
  events : Trace.event list;  (** emission order *)
}

type tree = {
  ta : int;
  tier : string;  (** first non-empty tier seen, [""] if none *)
  start_at : float;  (** timestamp of the first event *)
  end_at : float;  (** timestamp of the last event *)
  terminal : Trace.kind option;
      (** the transaction's terminal event, if it reached one *)
  txn_events : Trace.event list;  (** [seq = -1] events, emission order *)
  spans : span list;  (** request spans ordered by [seq] *)
}

(** Groups a trace into one tree per transaction, ordered by [ta]. *)
val build : Trace.event list -> tree list

(** First-failure validation of the invariants above. *)
val validate : Trace.event list -> (unit, string) result

(** [latency tree] — [end_at -. start_at] up to the terminal event; [None]
    when the transaction never reached a terminal. *)
val latency : tree -> float option

(** Multi-line rendering of one transaction's span tree. *)
val render : tree -> string
