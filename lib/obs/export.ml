let event_fields (e : Trace.event) =
  [
    ("at", Json.Num e.Trace.at);
    ("ta", Json.Num (float_of_int e.Trace.ta));
    ("seq", Json.Num (float_of_int e.Trace.seq));
    ("kind", Json.Str (Trace.kind_to_string e.Trace.kind));
    ("op", Json.Str (String.make 1 e.Trace.op));
    ("obj", Json.Num (float_of_int e.Trace.obj));
    ("arg", Json.Num (float_of_int e.Trace.arg));
    ("tier", Json.Str e.Trace.tier);
  ]

let field_err what = failwith ("trace event: missing or malformed " ^ what)

let event_of_json j =
  let num name =
    match Option.bind (Json.mem name j) Json.num with
    | Some f -> f
    | None -> field_err name
  in
  let str name =
    match Option.bind (Json.mem name j) Json.str with
    | Some s -> s
    | None -> field_err name
  in
  let kind =
    match Trace.kind_of_string (str "kind") with
    | Some k -> k
    | None -> field_err "kind"
  in
  let op = match str "op" with "" -> ' ' | s -> s.[0] in
  {
    Trace.at = num "at";
    ta = int_of_float (num "ta");
    seq = int_of_float (num "seq");
    kind;
    op;
    obj = int_of_float (num "obj");
    arg = int_of_float (num "arg");
    tier = str "tier";
  }

let to_jsonl events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Json.to_buffer buf (Json.Obj (event_fields e));
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

(* Chrome trace_event: instant events, ts in microseconds, tid = TA. The
   whole event rides along under "args" so load_string can reconstruct it
   exactly. *)
let chrome_event (e : Trace.event) =
  Json.Obj
    [
      ("name", Json.Str (Trace.kind_to_string e.Trace.kind));
      ("cat", Json.Str "dsched");
      ("ph", Json.Str "i");
      ("s", Json.Str "t");
      ("ts", Json.Num (e.Trace.at *. 1e6));
      ("pid", Json.Num 1.);
      ("tid", Json.Num (float_of_int e.Trace.ta));
      ("args", Json.Obj (event_fields e));
    ]

let to_chrome events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      Json.to_buffer buf (chrome_event e))
    events;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

let save path events =
  let data =
    if Filename.check_suffix path ".jsonl" then to_jsonl events
    else to_chrome events
  in
  let oc = open_out path in
  output_string oc data;
  close_out oc

let load_string s =
  let rec first_meaningful i =
    if i >= String.length s then None
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> first_meaningful (i + 1)
      | c -> Some c
  in
  match first_meaningful 0 with
  | None -> []
  | Some '[' -> (
    match Json.of_string s with
    | Json.List items ->
      List.map
        (fun item ->
          match Json.mem "args" item with
          | Some args -> event_of_json args
          | None -> field_err "args")
        items
    | _ -> failwith "trace file: expected a JSON array")
  | Some _ ->
    String.split_on_char '\n' s
    |> List.filter (fun line -> String.trim line <> "")
    |> List.map (fun line -> event_of_json (Json.of_string line))

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  load_string s

let schema =
  Ds_relal.Schema.of_list
    [
      Ds_relal.Schema.column "at" Ds_relal.Schema.Tfloat;
      Ds_relal.Schema.column "ta" Ds_relal.Schema.Tint;
      Ds_relal.Schema.column "seq" Ds_relal.Schema.Tint;
      Ds_relal.Schema.column "kind" Ds_relal.Schema.Tstr;
      Ds_relal.Schema.column "op" Ds_relal.Schema.Tstr;
      Ds_relal.Schema.column "obj" Ds_relal.Schema.Tint;
      Ds_relal.Schema.column "arg" Ds_relal.Schema.Tint;
      Ds_relal.Schema.column "tier" Ds_relal.Schema.Tstr;
    ]

let row_of_event (e : Trace.event) =
  [|
    Ds_relal.Value.float e.Trace.at;
    Ds_relal.Value.int e.Trace.ta;
    Ds_relal.Value.int e.Trace.seq;
    Ds_relal.Value.str (Trace.kind_to_string e.Trace.kind);
    Ds_relal.Value.str (String.make 1 e.Trace.op);
    Ds_relal.Value.int e.Trace.obj;
    Ds_relal.Value.int e.Trace.arg;
    Ds_relal.Value.str e.Trace.tier;
  |]

let to_table events =
  let t = Ds_relal.Table.create ~name:"traces" schema in
  List.iter (fun e -> Ds_relal.Table.insert t (row_of_event e)) events;
  Ds_relal.Table.create_index t [ 1 ];
  t
