type cycle_row = {
  cycle : int;
  drained : int;
  pending_before : int;
  qualified : int;
  admit_ratio : float;
  query_time : float;
  index_time : float;
}

type worker_row = {
  worker : int;
  executed : int;
  busy : float;
  utilization : float;
}

type parallel = {
  workers : int;
  batches : int;
  makespan_mean : float;
  makespan_p95 : float;
  makespan_max : float;
  per_worker : worker_row list;
}

type supervision = {
  worker_crashes : int;
  worker_deaths : int;
  stalls_detected : int;
  reassigned : int;
  hedged : int;
  checkpoints : int;
  recoveries : int;
  recovery_replayed : int;
  recovery_skipped : int;
  recovery_time : float;
}

type replication = {
  repl_sync : bool;
  repl_epoch : int;
  repl_watermark : int;
  repl_lag : int;
  repl_fenced : int;
  repl_divergences : int;
  repl_failovers : int;
}

type t = {
  tiers : (string, Ds_stats.Histogram.t) Hashtbl.t;
  cycle_rows : cycle_row Ds_util.Vec.t;
  mutable n_cycles : int;
  mutable parallel : parallel option;
  mutable supervision : supervision option;
  mutable replication : replication option;
}

let create () =
  {
    tiers = Hashtbl.create 4;
    cycle_rows = Ds_util.Vec.create ();
    n_cycles = 0;
    parallel = None;
    supervision = None;
    replication = None;
  }

let set_parallel t p = t.parallel <- Some p

let parallel t = t.parallel

let set_supervision t s = t.supervision <- Some s

let supervision t = t.supervision

let set_replication t r = t.replication <- Some r

let replication t = t.replication

let tier_hist t tier =
  match Hashtbl.find_opt t.tiers tier with
  | Some h -> h
  | None ->
    let h = Ds_stats.Histogram.create () in
    Hashtbl.add t.tiers tier h;
    h

let observe_latency t ~tier dt = Ds_stats.Histogram.add (tier_hist t tier) dt

let record_cycle t ~drained ~pending_before ~qualified ~query_time
    ?(index_time = 0.) () =
  let row =
    {
      cycle = t.n_cycles;
      drained;
      pending_before;
      qualified;
      (* [pending_before] is sampled before the queue drain, so the work the
         protocol query actually saw is the pending backlog plus the drain. *)
      admit_ratio =
        float_of_int qualified /. float_of_int (max 1 (pending_before + drained));
      query_time;
      index_time;
    }
  in
  t.n_cycles <- t.n_cycles + 1;
  Ds_util.Vec.push t.cycle_rows row

(* Premium, standard, free first (urgency order); anything else after,
   alphabetically, so custom tier labels still render deterministically. *)
let tier_rank tier =
  let known =
    List.mapi
      (fun i tr -> (Ds_model.Sla.tier_to_string tr, i))
      Ds_model.Sla.all_tiers
  in
  match List.assoc_opt tier known with Some i -> (i, "") | None -> (max_int, tier)

let sort_tiers rows =
  List.sort
    (fun (a, _, _, _, _) (b, _, _, _, _) -> compare (tier_rank a) (tier_rank b))
    rows

let tier_quantiles t =
  Hashtbl.fold
    (fun tier h acc ->
      if Ds_stats.Histogram.count h = 0 then acc
      else
        ( tier,
          Ds_stats.Histogram.count h,
          Ds_stats.Histogram.median h,
          Ds_stats.Histogram.p95 h,
          Ds_stats.Histogram.p99 h )
        :: acc)
    t.tiers []
  |> sort_tiers

let cycles t = Ds_util.Vec.to_list t.cycle_rows

let render_latency_rows rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-10s %8s %12s %12s %12s\n" "tier" "n" "p50(s)" "p95(s)"
       "p99(s)");
  List.iter
    (fun (tier, n, p50, p95, p99) ->
      Buffer.add_string buf
        (Printf.sprintf "%-10s %8d %12.6f %12.6f %12.6f\n" tier n p50 p95 p99))
    rows;
  if rows = [] then Buffer.add_string buf "  (no completed transactions)\n";
  Buffer.contents buf

let render t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "latency by SLA tier:\n";
  Buffer.add_string buf (render_latency_rows (tier_quantiles t));
  let rows = cycles t in
  let n = List.length rows in
  Buffer.add_string buf (Printf.sprintf "scheduler cycles: %d\n" n);
  if n > 0 then begin
    let sum f = List.fold_left (fun acc r -> acc +. f r) 0. rows in
    let fn = float_of_int n in
    Buffer.add_string buf
      (Printf.sprintf
         "  mean drain=%.2f  mean pending=%.2f  mean admit ratio=%.3f  mean \
          query time=%.6fs  mean index time=%.6fs\n"
         (sum (fun r -> float_of_int r.drained) /. fn)
         (sum (fun r -> float_of_int r.pending_before) /. fn)
         (sum (fun r -> r.admit_ratio) /. fn)
         (sum (fun r -> r.query_time) /. fn)
         (sum (fun r -> r.index_time) /. fn))
  end;
  (match t.parallel with
  | None -> ()
  | Some p ->
    Buffer.add_string buf
      (Printf.sprintf
         "parallel backend: %d worker(s), %d batch(es), makespan \
          mean=%.3fms p95=%.3fms max=%.3fms\n"
         p.workers p.batches
         (1000. *. p.makespan_mean)
         (1000. *. p.makespan_p95)
         (1000. *. p.makespan_max));
    Buffer.add_string buf
      (Printf.sprintf "%-10s %10s %12s %12s\n" "" "executed" "busy(s)" "util");
    List.iter
      (fun w ->
        Buffer.add_string buf
          (Printf.sprintf "%-10s %10d %12.6f %12.3f\n"
             (Printf.sprintf "worker %d" w.worker)
             w.executed w.busy w.utilization))
      p.per_worker);
  (match t.supervision with
  | None -> ()
  | Some s ->
    Buffer.add_string buf
      (Printf.sprintf
         "supervision: crashes=%d deaths=%d stuck=%d reassigned=%d hedged=%d\n"
         s.worker_crashes s.worker_deaths s.stalls_detected s.reassigned
         s.hedged);
    Buffer.add_string buf
      (Printf.sprintf
         "recovery: checkpoints=%d recoveries=%d replayed=%d skipped=%d \
          time=%.3fms\n"
         s.checkpoints s.recoveries s.recovery_replayed s.recovery_skipped
         (1000. *. s.recovery_time)));
  (match t.replication with
  | None -> ()
  | Some r ->
    Buffer.add_string buf
      (Printf.sprintf
         "replication (%s): epoch=%d watermark=%d lag=%d fenced=%d \
          divergences=%d failovers=%d\n"
         (if r.repl_sync then "sync" else "async")
         r.repl_epoch r.repl_watermark r.repl_lag r.repl_fenced
         r.repl_divergences r.repl_failovers));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* offline analysis over a loaded trace                               *)
(* ------------------------------------------------------------------ *)

let latencies_of_events events =
  Span.build events
  |> List.filter_map (fun (tree : Span.tree) ->
         Option.map (fun l -> (tree.Span.tier, l)) (Span.latency tree))

let latency_rows events =
  let t = create () in
  List.iter (fun (tier, l) -> observe_latency t ~tier l)
    (latencies_of_events events);
  tier_quantiles t

let lock_wait_offenders ?(top = 10) events =
  (* open waits keyed by (ta, seq, obj); totals keyed by obj *)
  let open_waits : (int * int * int, float) Hashtbl.t = Hashtbl.create 64 in
  let totals : (int, float * int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.event) ->
      let key = (e.Trace.ta, e.Trace.seq, e.Trace.obj) in
      match e.Trace.kind with
      | Trace.Lock_wait -> Hashtbl.replace open_waits key e.Trace.at
      | Trace.Lock_grant -> (
        match Hashtbl.find_opt open_waits key with
        | None -> ()
        | Some t0 ->
          Hashtbl.remove open_waits key;
          let wait = e.Trace.at -. t0 in
          let total, n =
            Option.value ~default:(0., 0) (Hashtbl.find_opt totals e.Trace.obj)
          in
          Hashtbl.replace totals e.Trace.obj (total +. wait, n + 1))
      | _ -> ())
    events;
  Hashtbl.fold (fun obj (total, n) acc -> (obj, total, n) :: acc) totals []
  |> List.sort (fun (o1, t1, _) (o2, t2, _) ->
         match compare t2 t1 with 0 -> compare o1 o2 | c -> c)
  |> List.filteri (fun i _ -> i < top)
