(** Request-lifecycle tracing: a low-overhead event sink threaded through the
    scheduling pipeline (middleware, scheduler, backend, lock manager, native
    simulator).

    Every request is keyed by [(ta, seq)] — transaction number and
    intra-transaction sequence number — and moves through timestamped
    lifecycle events: it is enqueued, drained into the pending relation,
    admitted or deferred by the scheduler (with the blocking conflict),
    dispatched to the server, executed, and finally committed, aborted or
    dead-lettered. Transaction-level events use [seq = -1].

    The sink is designed for zero cost when tracing is off: every emitter
    takes a [t option] and the sink threads a mutable [enabled] flag, so a
    [None] sink (or a disabled one) performs no allocation — the event record
    is only built after both checks pass. All state is append-only and none
    of it consumes randomness, so attaching a sink cannot perturb a seeded
    simulation ("no observer effect"). *)

type kind =
  | Enqueued  (** submitted to the scheduler's incoming queue *)
  | Drained  (** moved from the incoming queue into the pending relation *)
  | Sched_admit  (** qualified by the protocol query; part of this cycle's batch *)
  | Sched_defer
      (** left pending by the protocol query; [arg] is the blocking
          transaction (-1 if no conflicting holder was identified) *)
  | Dispatched  (** handed to the server as part of a batch attempt *)
  | Lock_wait
      (** blocked in the native lock manager; [obj] is the lock, [arg] the
          first blocking transaction *)
  | Lock_grant  (** a previously blocked lock request was granted *)
  | Exec_start
      (** the server began charging service time; [arg] is the pool worker
          id when the backend runs in a {!Ds_server.Worker_pool}, [-1]
          otherwise *)
  | Exec_done  (** the server completed the request *)
  | Commit  (** transaction terminal: committed (client-visible) *)
  | Abort  (** transaction terminal: aborted *)
  | Retry  (** a batch attempt failed; this request will be re-dispatched *)
  | Dead_letter  (** transaction terminal: given up on (poison request) *)
  | Worker_down
      (** a pool worker crashed, died or was declared stuck; emitted with
          [ta = -1], [arg] is the worker id *)
  | Reassign
      (** a conflict class was moved to a surviving worker (or hedged);
          [ta = -1], [obj] is the class id, [arg] the new worker *)
  | Checkpoint
      (** the journal wrote a snapshot record; [ta = -1], [arg] is the
          cycle number of the watermark *)
  | Shard_route
      (** the sharding router assigned a transaction to a scheduler lane;
          [seq = -1], [arg] is the lane (shard id, or S for the global
          lane). Only emitted by sharded (S > 1) runs *)
  | Failover
      (** the hot standby was promoted to primary after an injected primary
          crash; [ta = -1], [arg] is the new promotion epoch *)
  | Repl_fence
      (** the standby refused a replicated record from a fenced (stale)
          epoch; [ta = -1], [arg] is the record's epoch *)
  | Repl_divergence
      (** the standby's incremental state hash disagreed with the primary's
          journalled checkpoint hash; [ta = -1], [arg] is the checkpoint
          cycle *)

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

(** [is_terminal k] — [Commit], [Abort] and [Dead_letter] end a transaction's
    span tree. *)
val is_terminal : kind -> bool

type event = {
  at : float;  (** virtual time (seconds) from the sink's clock *)
  ta : int;
  seq : int;  (** INTRATA; [-1] for transaction-level events *)
  kind : kind;
  op : char;  (** 'r' / 'w' / 'a' / 'c', or ' ' when not request-scoped *)
  obj : int;  (** object touched, [-1] when none *)
  arg : int;  (** kind-specific: blocker TA, retry streak…; [-1] when none *)
  tier : string;  (** SLA tier name, [""] when unknown *)
}

type t

(** [create ()] — an enabled sink. The clock defaults to [fun () -> 0.];
    simulations install their virtual clock with {!set_clock} before
    emitting. [~enabled:false] creates a sink that drops everything (for
    overhead tests). *)
val create : ?enabled:bool -> unit -> t

val set_clock : t -> (unit -> float) -> unit
val now : t -> float
val enabled : t -> bool
val set_enabled : t -> bool -> unit

(** [is_on sink] — true iff the sink exists and is enabled. Emitters use it
    to gate work that only matters when events will actually be recorded
    (e.g. computing the blocking conflict for a deferral). *)
val is_on : t option -> bool

(** [emit sink kind ~ta ~seq …] appends one event timestamped with the
    sink's clock. A [None] or disabled sink is a no-op that allocates
    nothing. *)
val emit :
  t option ->
  kind ->
  ta:int ->
  seq:int ->
  ?op:char ->
  ?obj:int ->
  ?arg:int ->
  ?tier:string ->
  unit ->
  unit

(** [emit_req sink kind r] — request-scoped emission: key, operation, object
    and tier are taken from the request. *)
val emit_req : t option -> ?arg:int -> kind -> Ds_model.Request.t -> unit

(** Transaction-level emission ([seq = -1]). *)
val emit_txn : t option -> ?tier:string -> kind -> ta:int -> unit

val count : t -> int
val events : t -> event list
val clear : t -> unit

val pp_event : Format.formatter -> event -> unit
val event_to_string : event -> string
