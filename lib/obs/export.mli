(** Trace serialization.

    Two on-disk formats, round-trippable through {!load}:

    - {b JSONL}: one JSON object per line with the event's own fields
      ([at], [ta], [seq], [kind], [op], [obj], [arg], [tier]) — grep-friendly
      and streamable;
    - {b Chrome [trace_event]}: a JSON array of instant events loadable in
      [chrome://tracing] / Perfetto ([ts] in microseconds, [tid] = TA), with
      the full event under ["args"] so nothing is lost.

    {!to_table} materializes a trace as a [traces] relation (schema
    [at FLOAT | ta INT | seq INT | kind STR | op STR | obj INT | arg INT |
    tier STR]) so schedules can be analyzed with the repo's own SQL and
    Datalog engines — queue state as queryable data, per Gray's "Queues Are
    Databases". *)

val to_jsonl : Trace.event list -> string
val to_chrome : Trace.event list -> string

(** [save path events] — [*.jsonl] saves JSONL, anything else the Chrome
    format. *)
val save : string -> Trace.event list -> unit

(** Parses either format (auto-detected).
    @raise Json.Parse_error or [Failure] on malformed input. *)
val load_string : string -> Trace.event list

val load : string -> Trace.event list

(** The [traces] relation schema. *)
val schema : Ds_relal.Schema.t

val row_of_event : Trace.event -> Ds_relal.Value.t array
val to_table : Trace.event list -> Ds_relal.Table.t
