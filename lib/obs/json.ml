type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* printing                                                           *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    (* Prefer the short form, but never lose precision: timestamps must
       survive an export/load round trip bit-exactly. *)
    let s = Printf.sprintf "%.9g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number_to_string f)
  | Str s -> escape buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* parsing                                                            *)
(* ------------------------------------------------------------------ *)

type state = { src : string; mutable pos : int }

let error st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> error st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else error st ("expected " ^ word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some '"' -> advance st; Buffer.add_char buf '"'; loop ()
      | Some '\\' -> advance st; Buffer.add_char buf '\\'; loop ()
      | Some '/' -> advance st; Buffer.add_char buf '/'; loop ()
      | Some 'n' -> advance st; Buffer.add_char buf '\n'; loop ()
      | Some 'r' -> advance st; Buffer.add_char buf '\r'; loop ()
      | Some 't' -> advance st; Buffer.add_char buf '\t'; loop ()
      | Some 'b' -> advance st; Buffer.add_char buf '\b'; loop ()
      | Some 'f' -> advance st; Buffer.add_char buf '\012'; loop ()
      | Some 'u' ->
        advance st;
        if st.pos + 4 > String.length st.src then error st "bad \\u escape";
        let hex = String.sub st.src st.pos 4 in
        st.pos <- st.pos + 4;
        let code =
          try int_of_string ("0x" ^ hex)
          with Failure _ -> error st "bad \\u escape"
        in
        Buffer.add_char buf (if code < 256 then Char.chr code else '?');
        loop ()
      | _ -> error st "bad escape")
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> error st ("bad number " ^ s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((k, v) :: acc)
        | _ -> error st "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> error st "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> Num (parse_number st)

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then error st "trailing garbage";
  v

let mem key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let str = function Str s -> Some s | _ -> None

let num = function Num f -> Some f | _ -> None
