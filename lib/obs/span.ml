type span = { ta : int; seq : int; events : Trace.event list }

type tree = {
  ta : int;
  tier : string;
  start_at : float;
  end_at : float;
  terminal : Trace.kind option;
  txn_events : Trace.event list;
  spans : span list;
}

let by_ta events =
  let tbl : (int, Trace.event Ds_util.Vec.t) Hashtbl.t = Hashtbl.create 64 in
  let order = Ds_util.Vec.create () in
  List.iter
    (fun (e : Trace.event) ->
      let v =
        match Hashtbl.find_opt tbl e.Trace.ta with
        | Some v -> v
        | None ->
          let v = Ds_util.Vec.create () in
          Hashtbl.add tbl e.Trace.ta v;
          Ds_util.Vec.push order e.Trace.ta;
          v
      in
      Ds_util.Vec.push v e)
    events;
  (tbl, Ds_util.Vec.to_list order)

let tree_of ta (evs : Trace.event list) =
  let tier =
    match List.find_opt (fun (e : Trace.event) -> e.Trace.tier <> "") evs with
    | Some e -> e.Trace.tier
    | None -> ""
  in
  let terminal =
    List.find_opt (fun (e : Trace.event) -> Trace.is_terminal e.Trace.kind) evs
  in
  let txn_events = List.filter (fun (e : Trace.event) -> e.Trace.seq < 0) evs in
  let seqs =
    List.sort_uniq Int.compare
      (List.filter_map
         (fun (e : Trace.event) ->
           if e.Trace.seq >= 0 then Some e.Trace.seq else None)
         evs)
  in
  let spans =
    List.map
      (fun seq ->
        {
          ta;
          seq;
          events = List.filter (fun (e : Trace.event) -> e.Trace.seq = seq) evs;
        })
      seqs
  in
  {
    ta;
    tier;
    start_at = (match evs with e :: _ -> e.Trace.at | [] -> 0.);
    end_at =
      List.fold_left (fun acc (e : Trace.event) -> Float.max acc e.Trace.at)
        neg_infinity evs;
    terminal = Option.map (fun (e : Trace.event) -> e.Trace.kind) terminal;
    txn_events;
    spans;
  }

let build events =
  let tbl, order = by_ta events in
  List.sort Int.compare order
  |> List.map (fun ta -> tree_of ta (Ds_util.Vec.to_list (Hashtbl.find tbl ta)))

let validate events =
  let tbl, order = by_ta events in
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let check ta =
    let evs = Ds_util.Vec.to_list (Hashtbl.find tbl ta) in
    (* 1. non-decreasing timestamps in emission order *)
    let rec mono last = function
      | [] -> Ok ()
      | (e : Trace.event) :: rest ->
        if e.Trace.at < last then
          Error
            (Printf.sprintf
               "ta %d: time went backwards (%s at %.9f after %.9f)" ta
               (Trace.kind_to_string e.Trace.kind)
               e.Trace.at last)
        else mono e.Trace.at rest
    in
    let* () = mono neg_infinity evs in
    (* 2. at most one terminal *)
    let terminals =
      List.filter (fun (e : Trace.event) -> Trace.is_terminal e.Trace.kind) evs
    in
    let* () =
      match terminals with
      | [] | [ _ ] -> Ok ()
      | a :: b :: _ ->
        Error
          (Printf.sprintf "ta %d: multiple terminal events (%s then %s)" ta
             (Trace.kind_to_string a.Trace.kind)
             (Trace.kind_to_string b.Trace.kind))
    in
    (* 3. no exec_start without a prior sched_admit for the same seq *)
    let admitted = Hashtbl.create 8 in
    let rec exec_after_admit = function
      | [] -> Ok ()
      | (e : Trace.event) :: rest -> (
        match e.Trace.kind with
        | Trace.Sched_admit ->
          Hashtbl.replace admitted e.Trace.seq ();
          exec_after_admit rest
        | Trace.Exec_start when not (Hashtbl.mem admitted e.Trace.seq) ->
          Error
            (Printf.sprintf "ta %d seq %d: exec_start without prior sched_admit"
               ta e.Trace.seq)
        | _ -> exec_after_admit rest)
    in
    exec_after_admit evs
  in
  let rec all = function
    | [] -> Ok ()
    | ta :: rest -> ( match check ta with Ok () -> all rest | Error _ as e -> e)
  in
  all order

let latency tree =
  match tree.terminal with
  | None -> None
  | Some _ ->
    (* end at the terminal event, not at trailing wasted-work events *)
    let tbl_end =
      List.fold_left
        (fun acc (e : Trace.event) ->
          if Trace.is_terminal e.Trace.kind then Some e.Trace.at else acc)
        None
        (tree.txn_events
        @ List.concat_map (fun s -> s.events) tree.spans)
    in
    Option.map (fun t -> t -. tree.start_at) tbl_end

let render tree =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "ta %d%s  [%0.6f .. %0.6f]%s%s\n" tree.ta
       (if tree.tier = "" then "" else " (" ^ tree.tier ^ ")")
       tree.start_at tree.end_at
       (match tree.terminal with
       | Some k -> "  terminal=" ^ Trace.kind_to_string k
       | None -> "  (no terminal)")
       (match latency tree with
       | Some l -> Printf.sprintf "  latency=%.6fs" l
       | None -> ""));
  List.iter
    (fun (e : Trace.event) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s\n" (Trace.event_to_string e)))
    tree.txn_events;
  List.iter
    (fun s ->
      Buffer.add_string buf (Printf.sprintf "  seq %d:\n" s.seq);
      List.iter
        (fun (e : Trace.event) ->
          Buffer.add_string buf
            (Printf.sprintf "    %s\n" (Trace.event_to_string e)))
        s.events)
    tree.spans;
  Buffer.contents buf
