open Ds_core
open Ds_sim

(* SplitMix-style finalizer so consecutive indexes land on well-separated
   Rng streams (Rng.create of nearby ints is fine, but keep tokens visibly
   distinct in reports). Masked to a non-negative int. *)
let scenario_seed ~base i =
  let z = (base * 0x9E3779B9) + (i * 0xBF58476D) + 0x94D049BB in
  z land max_int

let pick rng arr = Rng.pick rng arr

(* The replication-link corner of the sweep: clean, lossy/reordering, spiky
   latency, a one-shot partition and a periodic flap. Partition/flap windows
   sit inside every scenario duration (>= 1.0 virtual seconds). *)
let repl_links =
  let open Ds_replica.Link in
  [|
    none;
    { none with drop_rate = 0.05; dup_rate = 0.02; reorder_rate = 0.1 };
    { none with delay_rate = 0.2; spike_delay = 0.2 };
    { none with drop_rate = 0.02; partition_at = Some 0.3; partition_for = 0.5 };
    { none with flap_period = Some 0.4; flap_down = 0.08 };
  |]

let of_seed seed =
  let rng = Rng.create seed in
  let workers = pick rng [| 1; 1; 2; 4; 8 |] in
  let worker_faulty = workers > 1 && Rng.float rng < 0.5 in
  let faults =
    {
      Faults.batch_fail_rate = pick rng [| 0.; 0.; 0.05; 0.15 |];
      stall_rate = pick rng [| 0.; 0.; 0.05 |];
      stall_duration = 0.05;
      poison_rate = pick rng [| 0.; 0.; 0.01 |];
      disconnect_rate = pick rng [| 0.; 0.; 0.05 |];
      crash_at_cycle = pick rng [| None; None; Some 10; Some 25 |];
      worker_crash_rate = (if worker_faulty then pick rng [| 0.; 0.1; 0.2 |] else 0.);
      worker_death_rate = (if worker_faulty then pick rng [| 0.; 0.02 |] else 0.);
      worker_stall_rate = (if worker_faulty then pick rng [| 0.; 0.2 |] else 0.);
      worker_stall_duration = 0.05;
      (* drawn in the post-record repl block below, like shards *)
      pcrash_at_cycle = None;
    }
  in
  let s =
    {
      Scenario.seed = 1 + Rng.int rng 1_000_000;
      clients = pick rng [| 4; 8; 12; 16; 24 |];
      duration = pick rng [| 1.0; 2.0; 3.0 |];
      n_objects = pick rng [| 200; 2000; 20000 |];
      stmts_per_txn = pick rng [| 1; 2; 4; 6 |];
      access = pick rng [| Scenario.Uniform; Scenario.Zipf; Scenario.Hotspot |];
      sla_mix = Rng.bool rng;
      protocol = pick rng (Array.of_list Scenario.protocols);
      workers;
      shards = 1;
      faults;
      checkpoint = pick rng [| None; None; Some 5; Some 20 |];
      queue_cap = pick rng [| None; None; Some 16; Some 48 |];
      hedging = workers > 1 && Rng.bool rng;
      inject = None;
      repl = None;
    }
  in
  (* drawn after the record so every pre-sharding dimension keeps the exact
     same stream position for a given seed *)
  let s = { s with Scenario.shards = pick rng [| 1; 1; 1; 2; 4 |] } in
  (* replication is drawn last of all, and only for single-scheduler runs
     (the middleware refuses repl at S > 1); a replicated run trades the
     crash fault for the pcrash failure model, which is what drives the
     partition-then-promote failover scenarios *)
  if s.Scenario.shards <> 1 then s
  else
    match pick rng [| None; None; None; Some false; Some true |] with
    | None -> s
    | Some sync ->
      {
        s with
        Scenario.repl =
          Some { Scenario.repl_sync = sync; repl_link = pick rng repl_links };
        faults =
          {
            s.Scenario.faults with
            Faults.crash_at_cycle = None;
            pcrash_at_cycle = pick rng [| None; Some 10; Some 25 |];
          };
      }
