open Ds_core
open Ds_sim

(* SplitMix-style finalizer so consecutive indexes land on well-separated
   Rng streams (Rng.create of nearby ints is fine, but keep tokens visibly
   distinct in reports). Masked to a non-negative int. *)
let scenario_seed ~base i =
  let z = (base * 0x9E3779B9) + (i * 0xBF58476D) + 0x94D049BB in
  z land max_int

let pick rng arr = Rng.pick rng arr

let of_seed seed =
  let rng = Rng.create seed in
  let workers = pick rng [| 1; 1; 2; 4; 8 |] in
  let worker_faulty = workers > 1 && Rng.float rng < 0.5 in
  let faults =
    {
      Faults.batch_fail_rate = pick rng [| 0.; 0.; 0.05; 0.15 |];
      stall_rate = pick rng [| 0.; 0.; 0.05 |];
      stall_duration = 0.05;
      poison_rate = pick rng [| 0.; 0.; 0.01 |];
      disconnect_rate = pick rng [| 0.; 0.; 0.05 |];
      crash_at_cycle = pick rng [| None; None; Some 10; Some 25 |];
      worker_crash_rate = (if worker_faulty then pick rng [| 0.; 0.1; 0.2 |] else 0.);
      worker_death_rate = (if worker_faulty then pick rng [| 0.; 0.02 |] else 0.);
      worker_stall_rate = (if worker_faulty then pick rng [| 0.; 0.2 |] else 0.);
      worker_stall_duration = 0.05;
    }
  in
  let s =
    {
      Scenario.seed = 1 + Rng.int rng 1_000_000;
      clients = pick rng [| 4; 8; 12; 16; 24 |];
      duration = pick rng [| 1.0; 2.0; 3.0 |];
      n_objects = pick rng [| 200; 2000; 20000 |];
      stmts_per_txn = pick rng [| 1; 2; 4; 6 |];
      access = pick rng [| Scenario.Uniform; Scenario.Zipf; Scenario.Hotspot |];
      sla_mix = Rng.bool rng;
      protocol = pick rng (Array.of_list Scenario.protocols);
      workers;
      shards = 1;
      faults;
      checkpoint = pick rng [| None; None; Some 5; Some 20 |];
      queue_cap = pick rng [| None; None; Some 16; Some 48 |];
      hedging = workers > 1 && Rng.bool rng;
      inject = None;
    }
  in
  (* drawn after the record so every pre-sharding dimension keeps the exact
     same stream position for a given seed *)
  { s with Scenario.shards = pick rng [| 1; 1; 1; 2; 4 |] }
