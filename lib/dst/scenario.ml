open Ds_core

type access = Uniform | Zipf | Hotspot

type inject =
  | Dup_delivery of int
  | Drop_rte of int
  | Swap_rte of int

type repl = { repl_sync : bool; repl_link : Ds_replica.Link.plan }

type t = {
  seed : int;
  clients : int;
  duration : float;
  n_objects : int;
  stmts_per_txn : int;
  access : access;
  sla_mix : bool;
  protocol : string;
  workers : int;
  shards : int;
  faults : Faults.plan;
  checkpoint : int option;
  queue_cap : int option;
  hedging : bool;
  inject : inject option;
  repl : repl option;
}

(* Every protocol here carries Protocol.Serializable, so the battery's
   serializability predicates apply to its schedules. *)
let protocols =
  [
    "ss2pl-sql";
    "ss2pl-datalog";
    "ss2pl-ocaml";
    "ss2pl-ordered-sql";
    "ss2pl-ordered-datalog";
    "c2pl";
    "sla-ordered";
  ]

let access_to_string = function
  | Uniform -> "uniform"
  | Zipf -> "zipf"
  | Hotspot -> "hotspot"

let access_of_string = function
  | "uniform" -> Ok Uniform
  | "zipf" -> Ok Zipf
  | "hotspot" -> Ok Hotspot
  | s -> Error (Printf.sprintf "unknown access pattern %S" s)

let validate t =
  if not (List.mem t.protocol protocols) then
    Error
      (Printf.sprintf "protocol %S is not in the serializable scenario set"
         t.protocol)
  else if t.clients < 1 then Error "clients must be >= 1"
  else if t.duration <= 0. then Error "duration must be positive"
  else if t.n_objects < 1 then Error "n_objects must be >= 1"
  else if t.stmts_per_txn < 1 then Error "stmts_per_txn must be >= 1"
  else if t.workers < 1 then Error "workers must be >= 1"
  else if t.shards < 1 then Error "shards must be >= 1"
  else if (match t.checkpoint with Some n -> n <= 0 | None -> false) then
    Error "checkpoint must be positive"
  else if (match t.queue_cap with Some n -> n <= 0 | None -> false) then
    Error "queue_cap must be positive"
  else
    (* Mirror the middleware's own replication preconditions so a scenario
       that decodes is a scenario that runs. *)
    match t.repl with
    | Some r ->
      if t.shards > 1 then Error "replication requires shards = 1"
      else if t.faults.Faults.crash_at_cycle <> None then
        Error "crash fault is incompatible with replication (use pcrash)"
      else (
        match Ds_replica.Link.validate r.repl_link with
        | Error m -> Error ("repl link: " ^ m)
        | Ok () -> Faults.validate t.faults)
    | None ->
      if t.faults.Faults.pcrash_at_cycle <> None then
        Error "pcrash fault requires replication (repl)"
      else Faults.validate t.faults

let inject_to_json = function
  | Dup_delivery k ->
    Ds_obs.Json.Obj
      [ ("kind", Ds_obs.Json.Str "dup-delivery"); ("at", Ds_obs.Json.Num (float_of_int k)) ]
  | Drop_rte k ->
    Ds_obs.Json.Obj
      [ ("kind", Ds_obs.Json.Str "drop-rte"); ("at", Ds_obs.Json.Num (float_of_int k)) ]
  | Swap_rte k ->
    Ds_obs.Json.Obj
      [ ("kind", Ds_obs.Json.Str "swap-rte"); ("at", Ds_obs.Json.Num (float_of_int k)) ]

let inject_of_json j =
  let open Ds_obs.Json in
  match (Option.bind (mem "kind" j) str, Option.bind (mem "at" j) num) with
  | Some "dup-delivery", Some k -> Ok (Dup_delivery (int_of_float k))
  | Some "drop-rte", Some k -> Ok (Drop_rte (int_of_float k))
  | Some "swap-rte", Some k -> Ok (Swap_rte (int_of_float k))
  | Some kind, _ -> Error (Printf.sprintf "unknown injection kind %S" kind)
  | None, _ -> Error "injection without a kind"

let repl_to_json r =
  Ds_obs.Json.Obj
    [
      ("sync", Ds_obs.Json.Bool r.repl_sync);
      ("link", Ds_obs.Json.Str (Ds_replica.Link.plan_to_string r.repl_link));
    ]

let repl_of_json j =
  let open Ds_obs.Json in
  match (mem "sync" j, Option.bind (mem "link" j) str) with
  | Some (Bool sync), Some link -> (
    match Ds_replica.Link.plan_of_string link with
    | Ok plan -> Ok { repl_sync = sync; repl_link = plan }
    | Error m -> Error ("repl link: " ^ m))
  | _ -> Error "repl without sync/link fields"

let to_json t =
  let open Ds_obs.Json in
  let opt_int = function None -> Null | Some n -> Num (float_of_int n) in
  Obj
    ([
       ("seed", Num (float_of_int t.seed));
       ("clients", Num (float_of_int t.clients));
       ("duration", Num t.duration);
       ("objects", Num (float_of_int t.n_objects));
       ("stmts", Num (float_of_int t.stmts_per_txn));
       ("access", Str (access_to_string t.access));
       ("sla_mix", Bool t.sla_mix);
       ("protocol", Str t.protocol);
       ("workers", Num (float_of_int t.workers));
       ("shards", Num (float_of_int t.shards));
       ("faults", Str (Faults.plan_to_string t.faults));
       ("checkpoint", opt_int t.checkpoint);
       ("queue_cap", opt_int t.queue_cap);
       ("hedging", Bool t.hedging);
     ]
    @ (match t.inject with None -> [] | Some i -> [ ("inject", inject_to_json i) ])
    @ match t.repl with None -> [] | Some r -> [ ("repl", repl_to_json r) ])

let of_json j =
  let open Ds_obs.Json in
  let ( let* ) = Result.bind in
  let req_num name =
    match Option.bind (mem name j) num with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "scenario: missing number %S" name)
  in
  let req_str name =
    match Option.bind (mem name j) str with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "scenario: missing string %S" name)
  in
  let req_bool name =
    match mem name j with
    | Some (Bool b) -> Ok b
    | _ -> Error (Printf.sprintf "scenario: missing bool %S" name)
  in
  let opt_int name =
    match mem name j with
    | Some (Num v) -> Ok (Some (int_of_float v))
    | Some Null | None -> Ok None
    | Some _ -> Error (Printf.sprintf "scenario: bad field %S" name)
  in
  let* seed = req_num "seed" in
  let* clients = req_num "clients" in
  let* duration = req_num "duration" in
  let* n_objects = req_num "objects" in
  let* stmts = req_num "stmts" in
  let* access_s = req_str "access" in
  let* access = access_of_string access_s in
  let* sla_mix = req_bool "sla_mix" in
  let* protocol = req_str "protocol" in
  let* workers = req_num "workers" in
  (* optional with default 1: scenario files predating sharding replay
     unchanged *)
  let* shards =
    match mem "shards" j with
    | Some (Num v) -> Ok (int_of_float v)
    | None -> Ok 1
    | Some _ -> Error "scenario: bad field \"shards\""
  in
  let* faults_s = req_str "faults" in
  let* faults = Faults.plan_of_string faults_s in
  let* checkpoint = opt_int "checkpoint" in
  let* queue_cap = opt_int "queue_cap" in
  let* hedging = req_bool "hedging" in
  let* inject =
    match mem "inject" j with
    | None -> Ok None
    | Some ij -> Result.map Option.some (inject_of_json ij)
  in
  (* optional with default None: scenario files predating replication replay
     unchanged *)
  let* repl =
    match mem "repl" j with
    | None -> Ok None
    | Some rj -> Result.map Option.some (repl_of_json rj)
  in
  let t =
    {
      seed = int_of_float seed;
      clients = int_of_float clients;
      duration;
      n_objects = int_of_float n_objects;
      stmts_per_txn = int_of_float stmts;
      access;
      sla_mix;
      protocol;
      workers = int_of_float workers;
      shards;
      faults;
      checkpoint;
      queue_cap;
      hedging;
      inject;
      repl;
    }
  in
  let* () = validate t in
  Ok t

let to_string t =
  let opt = function None -> "-" | Some n -> string_of_int n in
  let faults =
    let s = Faults.plan_to_string t.faults in
    if s = "" then "-" else s
  in
  Printf.sprintf
    "seed=%d clients=%d dur=%g obj=%d stmts=%d access=%s mix=%b proto=%s K=%d \
     S=%d faults=%s ckpt=%s cap=%s hedge=%b%s"
    t.seed t.clients t.duration t.n_objects t.stmts_per_txn
    (access_to_string t.access) t.sla_mix t.protocol t.workers t.shards faults
    (opt t.checkpoint) (opt t.queue_cap) t.hedging
    (match t.inject with
    | None -> ""
    | Some i -> " inject=" ^ Ds_obs.Json.to_string (inject_to_json i))
  ^ (match t.repl with
    | None -> ""
    | Some r ->
      Printf.sprintf " repl=%s:%s"
        (if r.repl_sync then "sync" else "async")
        (let l = Ds_replica.Link.plan_to_string r.repl_link in
         if l = "" then "clean" else l))

let pp ppf t = Format.pp_print_string ppf (to_string t)

let equal a b = to_json a = to_json b
