open Ds_obs

type result = {
  scenario_seed : int option;
  outcome : Runner.outcome;
  shrunk : Shrink.result option;
}

type report = {
  base_seed : int;
  n : int;
  shrink_enabled : bool;
  results : result list;
}

let maybe_shrink ~shrink ~max_shrink_runs outcome =
  if not shrink then None
  else
    match Runner.failures outcome with
    | [] -> None
    | failed ->
      Some
        (Shrink.shrink ?max_runs:max_shrink_runs outcome.Runner.scenario
           ~failed:(List.map fst failed))

let replay ?(shrink = true) ?max_shrink_runs ?scenario_seed scenario =
  let outcome = Runner.run scenario in
  { scenario_seed; outcome; shrunk = maybe_shrink ~shrink ~max_shrink_runs outcome }

let run ?(shrink = true) ?max_shrink_runs ?progress ~n ~seed () =
  let results =
    List.init n (fun i ->
        let scenario_seed = Gen.scenario_seed ~base:seed i in
        let scenario = Gen.of_seed scenario_seed in
        let outcome = Runner.run scenario in
        (match progress with Some f -> f i outcome | None -> ());
        {
          scenario_seed = Some scenario_seed;
          outcome;
          shrunk = maybe_shrink ~shrink ~max_shrink_runs outcome;
        })
  in
  { base_seed = seed; n; shrink_enabled = shrink; results }

let failed report =
  List.filter (fun r -> not (Runner.ok r.outcome)) report.results

(* Only counters that are functions of the scenario seed alone: every
   wall-clock-derived stat (cycle times, scheduler_time, recovery_time,
   latencies) is excluded so that report bytes never depend on the host. *)
let counters_json (s : Ds_core.Middleware.stats) =
  let i name v = (name, Json.Num (float_of_int v)) in
  Json.Obj
    [
      i "committed_txns" s.Ds_core.Middleware.committed_txns;
      i "committed_stmts" s.Ds_core.Middleware.committed_stmts;
      i "aborted_txns" s.Ds_core.Middleware.aborted_txns;
      i "cycles" s.Ds_core.Middleware.cycles;
      i "retries" s.Ds_core.Middleware.retries;
      i "timeouts" s.Ds_core.Middleware.timeouts;
      i "injected_failures" s.Ds_core.Middleware.injected_failures;
      i "injected_stalls" s.Ds_core.Middleware.injected_stalls;
      i "shed_txns" s.Ds_core.Middleware.shed_txns;
      i "backpressure_waits" s.Ds_core.Middleware.backpressure_waits;
      i "dead_lettered" s.Ds_core.Middleware.dead_lettered;
      i "disconnects" s.Ds_core.Middleware.disconnects;
      i "crashes" s.Ds_core.Middleware.crashes;
      i "workers" s.Ds_core.Middleware.workers;
      i "batches_dispatched" s.Ds_core.Middleware.batches_dispatched;
      i "worker_crashes" s.Ds_core.Middleware.worker_crashes;
      i "worker_deaths" s.Ds_core.Middleware.worker_deaths;
      i "worker_stalls" s.Ds_core.Middleware.worker_stalls;
      i "reassigned_classes" s.Ds_core.Middleware.reassigned_classes;
      i "hedged_classes" s.Ds_core.Middleware.hedged_classes;
      i "checkpoints" s.Ds_core.Middleware.checkpoints;
      i "recovery_replayed" s.Ds_core.Middleware.recovery_replayed;
      i "recovery_skipped" s.Ds_core.Middleware.recovery_skipped;
      i "failovers" s.Ds_core.Middleware.failovers;
      i "repl_epoch" s.Ds_core.Middleware.repl_epoch;
      i "repl_fenced" s.Ds_core.Middleware.repl_fenced;
      i "repl_divergences" s.Ds_core.Middleware.repl_divergences;
    ]

let invariants_json invariants =
  Json.List
    (List.map
       (fun (name, r) ->
         match r with
         | Ok () ->
           Json.Obj [ ("name", Json.Str name); ("ok", Json.Bool true) ]
         | Error detail ->
           Json.Obj
             [
               ("name", Json.Str name);
               ("ok", Json.Bool false);
               ("detail", Json.Str detail);
             ])
       invariants)

let repro_of result =
  match result.scenario_seed with
  | Some seed -> Printf.sprintf "dsched swarm --replay %d" seed
  | None -> "dsched swarm --replay <scenario-file.json>"

let result_json result =
  let o = result.outcome in
  let base =
    [
      ( "scenario_seed",
        match result.scenario_seed with
        | Some s -> Json.Num (float_of_int s)
        | None -> Json.Null );
      ("ok", Json.Bool (Runner.ok o));
      ("scenario", Scenario.to_json o.Runner.scenario);
      ("counters", counters_json o.Runner.stats);
      ("invariants", invariants_json o.Runner.invariants);
      ("repro", Json.Str (repro_of result));
    ]
  in
  let shrunk =
    match result.shrunk with
    | None -> []
    | Some s ->
      [
        ( "shrunk",
          Json.Obj
            [
              ("scenario", Scenario.to_json s.Shrink.shrunk);
              ("runs", Json.Num (float_of_int s.Shrink.runs));
              ( "failed",
                Json.List
                  (List.map
                     (fun (name, _) -> Json.Str name)
                     (Runner.failures s.Shrink.outcome)) );
              ("counters", counters_json s.Shrink.outcome.Runner.stats);
            ] );
      ]
  in
  Json.Obj (base @ shrunk)

let report_json report =
  let n_failed = List.length (failed report) in
  Stamp.add ~seed:report.base_seed
    ~config:
      [
        ("n", Json.Num (float_of_int report.n));
        ("shrink", Json.Bool report.shrink_enabled);
        ("invariants", Json.List (List.map (fun s -> Json.Str s) Invariant.names));
      ]
    (Json.Obj
       [
         ("scenarios", Json.Num (float_of_int report.n));
         ("failed", Json.Num (float_of_int n_failed));
         ("results", Json.List (List.map result_json report.results));
       ])

let pp_summary fmt report =
  let failures = failed report in
  Format.fprintf fmt "swarm: %d scenario(s), seed %d: %d failed@." report.n
    report.base_seed (List.length failures);
  (* Per-invariant failure tally, battery order. *)
  List.iter
    (fun name ->
      let k =
        List.length
          (List.filter
             (fun r -> List.mem_assoc name (Runner.failures r.outcome))
             failures)
      in
      if k > 0 then Format.fprintf fmt "  %s: %d failure(s)@." name k)
    Invariant.names;
  List.iter
    (fun r ->
      Format.fprintf fmt "FAIL %s@.     %s@."
        (Scenario.to_string r.outcome.Runner.scenario)
        (repro_of r);
      List.iter
        (fun (name, detail) ->
          Format.fprintf fmt "     %s: %s@." name detail)
        (Runner.failures r.outcome);
      match r.shrunk with
      | None -> ()
      | Some s ->
        Format.fprintf fmt "     shrunk (%d runs): %s@." s.Shrink.runs
          (Scenario.to_string s.Shrink.shrunk))
    failures
