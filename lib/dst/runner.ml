open Ds_core
open Ds_model

type outcome = {
  scenario : Scenario.t;
  stats : Middleware.stats;
  invariants : (string * (unit, string) result) list;
}

let spec_of (s : Scenario.t) =
  {
    Ds_workload.Spec.paper_default with
    Ds_workload.Spec.n_objects = s.Scenario.n_objects;
    selects_per_txn = s.Scenario.stmts_per_txn;
    updates_per_txn = s.Scenario.stmts_per_txn;
    access =
      (match s.Scenario.access with
      | Scenario.Uniform -> Ds_workload.Spec.Uniform
      | Scenario.Zipf -> Ds_workload.Spec.Zipf 0.8
      | Scenario.Hotspot -> Ds_workload.Spec.Hotspot (0.1, 0.8));
    sla_mix =
      (if s.Scenario.sla_mix then
         [ (Sla.premium, 0.2); (Sla.standard, 0.5); (Sla.free, 0.3) ]
       else Ds_workload.Spec.paper_default.Ds_workload.Spec.sla_mix);
  }

let config_of (s : Scenario.t) ~journal_path ~trace =
  let protocol =
    match Builtin.find s.Scenario.protocol with
    | Some p -> p
    | None -> invalid_arg ("Runner: unknown protocol " ^ s.Scenario.protocol)
  in
  let faulty = not (Faults.is_none s.Scenario.faults) in
  {
    Middleware.default_config with
    Middleware.n_clients = s.Scenario.clients;
    duration = s.Scenario.duration;
    spec = spec_of s;
    workers = s.Scenario.workers;
    shards = s.Scenario.shards;
    seed = s.Scenario.seed;
    protocol;
    extended_relations = true;
    (* Wall-clock cycle charging would make the simulation depend on the
       host; scenario runs must reproduce exactly from the seed. *)
    charge_scheduler_time = false;
    faults = s.Scenario.faults;
    batch_timeout = (if faulty then Some 0.25 else None);
    queue_capacity = s.Scenario.queue_cap;
    journal_path = Some journal_path;
    checkpoint_interval = s.Scenario.checkpoint;
    hedging = s.Scenario.hedging;
    client_redo = faulty;
    trace = Some trace;
  }

(* The test-only corruption hook: mutate the observed schedules (never the
   run itself) so the failure-reporting and shrinking paths can be exercised
   against a scheduler that is actually correct. Indices wrap so shrunk runs
   keep the injection in range. *)
let apply_inject inject ~rte ~merged =
  match inject with
  | None -> (rte, merged)
  | Some (Scenario.Dup_delivery k) -> (
    match merged with
    | [] -> (rte, merged)
    | _ ->
      let i = k mod List.length merged in
      let dup = List.nth merged i in
      (rte, List.concat_map (fun r -> if Request.key r = Request.key dup then [ r; r ] else [ r ]) merged))
  | Some (Scenario.Drop_rte k) -> (
    match rte with
    | [] -> (rte, merged)
    | _ ->
      let i = k mod List.length rte in
      (List.filteri (fun j _ -> j <> i) rte, merged))
  | Some (Scenario.Swap_rte k) -> (
    match rte with
    | [] | [ _ ] -> (rte, merged)
    | _ ->
      (* Swap the k-th rte entry that has a later conflicting partner with
         that partner. Swapping commuting entries is unobservable, and under
         2PL conflicting requests are never adjacent (locks persist to
         commit), so the swap reaches across the schedule to a pair whose
         order actually matters. No-op when nothing conflicts at all. *)
      let arr = Array.of_list rte in
      let n = Array.length arr in
      let partner i =
        let rec find j =
          if j >= n then None
          else if Request.conflicts arr.(i) arr.(j) then Some j
          else find (j + 1)
        in
        find (i + 1)
      in
      let sites = ref [] in
      for i = n - 2 downto 0 do
        match partner i with
        | Some j -> sites := (i, j) :: !sites
        | None -> ()
      done;
      (match !sites with
      | [] -> ()
      | sites ->
        let i, j = List.nth sites (k mod List.length sites) in
        let tmp = arr.(i) in
        arr.(i) <- arr.(j);
        arr.(j) <- tmp);
      (Array.to_list arr, merged))

(* The failover durability audit, mirroring `bench failover`: which
   transactions were client-acked strictly before the promotion, and which of
   those survive as ['Q'] records on the promoted journal — classified
   against the final replication watermark by
   {!Ds_check.Equivalence.check_failover}. *)
let failover_report session ~trace_events ~standby_path =
  let failover_at =
    List.fold_left
      (fun acc (e : Ds_obs.Trace.event) ->
        match e.Ds_obs.Trace.kind with
        | Ds_obs.Trace.Failover -> Float.min acc e.Ds_obs.Trace.at
        | _ -> acc)
      infinity trace_events
  in
  let lsns = Ds_replica.Session.ta_lsns session in
  let acked =
    List.filter_map
      (fun (e : Ds_obs.Trace.event) ->
        match e.Ds_obs.Trace.kind with
        | Ds_obs.Trace.Commit when e.Ds_obs.Trace.at < failover_at ->
          Some
            ( e.Ds_obs.Trace.ta,
              Option.value ~default:0
                (List.assoc_opt e.Ds_obs.Trace.ta lsns) )
        | _ -> None)
      trace_events
    |> List.sort_uniq compare
  in
  (* Execution records frame as [!crc32 Q <ta> <intrata>]: payload offset 10.
     Checkpoint-block copies are prefixed [c ] and don't count — only the
     continuous log decides survival. *)
  let present = Hashtbl.create 64 in
  In_channel.with_open_text standby_path (fun ic ->
      let rec scan () =
        match In_channel.input_line ic with
        | None -> ()
        | Some line ->
          (if String.length line > 12 && String.sub line 10 2 = "Q " then
             match String.split_on_char ' ' line with
             | _ :: "Q" :: ta :: _ -> (
               match int_of_string_opt ta with
               | Some ta -> Hashtbl.replace present ta ()
               | None -> ())
             | _ -> ());
          scan ()
      in
      scan ());
  Ds_check.Equivalence.check_failover
    ~sync:(Ds_replica.Session.mode session = Ds_replica.Session.Sync)
    ~watermark:(Ds_replica.Session.watermark session)
    ~acked
    ~survived:(fun ta -> Hashtbl.mem present ta)
    ()

let run (s : Scenario.t) =
  (match Scenario.validate s with
  | Ok () -> ()
  | Error m -> invalid_arg ("Runner.run: " ^ m));
  let sharded = s.Scenario.shards > 1 in
  let journal_path =
    if sharded then begin
      (* sharded runs journal into a segment directory; reserve the name and
         let the middleware create the directory + manifest *)
      let p = Filename.temp_file "ds_swarm" ".journal.d" in
      Sys.remove p;
      p
    end
    else Filename.temp_file "ds_swarm" ".journal"
  in
  let repl_dir =
    Option.map
      (fun _ ->
        (* reserve a fresh directory name; Session.create makes it *)
        let d = Filename.temp_file "ds_swarm" ".repl.d" in
        Sys.remove d;
        d)
      s.Scenario.repl
  in
  let cleanup () =
    (if Journal.is_segment_dir journal_path then begin
       List.iter
         (fun p -> try Sys.remove p with Sys_error _ -> ())
         (Journal.segment_paths journal_path);
       (try Sys.remove (Filename.concat journal_path "MANIFEST")
        with Sys_error _ -> ());
       try Sys.rmdir journal_path with Sys_error _ -> ()
     end
     else try Sys.remove journal_path with Sys_error _ -> ());
    Option.iter
      (fun d ->
        List.iter
          (fun p -> try Sys.remove p with Sys_error _ -> ())
          [ Ds_replica.Session.standby_path_of d; Filename.concat d "REPL" ];
        try Sys.rmdir d with Sys_error _ -> ())
      repl_dir
  in
  Fun.protect ~finally:cleanup (fun () ->
      let trace = Ds_obs.Trace.create () in
      let session =
        match (s.Scenario.repl, repl_dir) with
        | Some r, Some dir ->
          Some
            (Ds_replica.Session.create
               ~mode:
                 (if r.Scenario.repl_sync then Ds_replica.Session.Sync
                  else Ds_replica.Session.Async)
               ~plan:r.Scenario.repl_link ~seed:s.Scenario.seed ~trace ~dir ())
        | _ -> None
      in
      let cfg =
        {
          (config_of s ~journal_path ~trace) with
          Middleware.repl = Option.map Ds_replica.Session.hooks session;
        }
      in
      let stats, h = Middleware.run_sharded cfg in
      Option.iter Ds_replica.Session.close session;
      (* At S=1 these are exactly the single lane's rte and delivery order;
         at S>1 the stamp-merged cross-lane equivalents. *)
      let rte = h.Middleware.merged_rte in
      let by_key = Hashtbl.create (2 * List.length rte) in
      List.iter (fun r -> Hashtbl.replace by_key (Request.key r) r) rte;
      let merged =
        List.filter_map
          (fun key -> Hashtbl.find_opt by_key key)
          h.Middleware.merged_execution_order
      in
      let rte, merged = apply_inject s.Scenario.inject ~rte ~merged in
      let promoted =
        match session with
        | Some sess -> Ds_replica.Session.promoted sess
        | None -> false
      in
      let recovered =
        (* After a failover the run's journal of record is the promoted
           standby journal — the primary file is the crashed instance's
           abandoned prefix. *)
        if promoted then
          Journal.recover
            (Ds_replica.Session.standby_path (Option.get session))
        else if sharded then Journal.recover_dir journal_path
        else Journal.recover journal_path
      in
      let lane_rels =
        Array.to_list
          (Array.map Scheduler.relations h.Middleware.lane_schedulers)
      in
      let ctx =
        {
          Invariant.scenario = s;
          stats;
          rte;
          merged;
          trace_events = Ds_obs.Trace.events trace;
          recovered;
          pending_live = List.concat_map Relations.pending lane_rels;
          history_live = List.concat_map Relations.history_requests lane_rels;
          dead_live = List.concat_map Relations.dead_requests lane_rels;
          shards = s.Scenario.shards;
          shard_of = h.Middleware.shard_of;
          repl_promoted = promoted;
          repl_divergences =
            (match session with
            | Some sess -> Ds_replica.Session.divergences sess
            | None -> 0);
          repl_failover =
            (match session with
            | Some sess when promoted ->
              Some
                (failover_report sess
                   ~trace_events:(Ds_obs.Trace.events trace)
                   ~standby_path:(Ds_replica.Session.standby_path sess))
            | _ -> None);
        }
      in
      { scenario = s; stats; invariants = Invariant.apply ctx })

let failures o =
  List.filter_map
    (fun (name, r) ->
      match r with Ok () -> None | Error detail -> Some (name, detail))
    o.invariants

let ok o = failures o = []
