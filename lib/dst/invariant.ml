open Ds_model

type ctx = {
  scenario : Scenario.t;
  stats : Ds_core.Middleware.stats;
  rte : Request.t list;
  merged : Request.t list;
  trace_events : Ds_obs.Trace.event list;
  recovered : Ds_core.Journal.recovered;
  pending_live : Request.t list;
  history_live : Request.t list;
  dead_live : Request.t list;
  shards : int;
  shard_of : int -> int option;
  repl_promoted : bool;
  repl_divergences : int;
  repl_failover : Ds_check.Equivalence.failover_report option;
}

let sorted_keys rs =
  List.sort_uniq compare (List.map Request.key rs)

let check_serializability ctx =
  let report =
    Ds_check.Serializability.check_committed
      (Ds_check.Conflict_graph.events_of_requests ctx.rte)
  in
  if Ds_check.Serializability.is_clean report then Ok ()
  else
    Error (Format.asprintf "%a" Ds_check.Serializability.pp_report report)

(* A crash replaces the scheduler: pre-crash assignment rows (the merged
   delivery order) are discarded with it, and recovered work is re-delivered
   as if newly admitted. Conflicting pairs that span the crash can therefore
   legitimately reorder against the surviving rte log, so for crash scenarios
   the ordering clause is checked per incarnation only (vacuously here) while
   the set-level clauses — no duplicate deliveries, no deliveries the
   scheduler never admitted — still hold unconditionally. *)
let check_equivalence ctx =
  let report =
    if ctx.shards > 1 then
      Ds_check.Equivalence.check_sharded ~shards:ctx.shards
        ~shard_of:ctx.shard_of ~reference:ctx.rte ~candidate:ctx.merged ()
    else Ds_check.Equivalence.check ~reference:ctx.rte ~candidate:ctx.merged ()
  in
  (* A failover replaces the scheduler exactly like a crash does (the
     standby's recovered work is re-delivered), so promoted runs get the same
     per-incarnation relaxation of the ordering clause. *)
  let crashed =
    ctx.scenario.Scenario.faults.Ds_core.Faults.crash_at_cycle <> None
    || ctx.stats.Ds_core.Middleware.failovers > 0
  in
  let fatal =
    List.filter
      (fun v ->
        match v with
        | Ds_check.Equivalence.Conflict_reordered _ -> not crashed
        | Ds_check.Equivalence.Unknown_request _
        | Ds_check.Equivalence.Duplicate_delivery _
        | Ds_check.Equivalence.Missing_request _
        (* router soundness never relaxes: a conflict split across shard
           lanes is a bug whether or not the run crashed *)
        | Ds_check.Equivalence.Cross_shard_conflict _ -> true)
      report.Ds_check.Equivalence.violations
  in
  if fatal = [] then Ok ()
  else
    Error
      (Format.asprintf "%a" Ds_check.Equivalence.pp_report
         { report with Ds_check.Equivalence.violations = fatal })

let check_trace ctx = Ds_obs.Span.validate ctx.trace_events

(* The journal must replay into exactly the state the scheduler is left
   holding. Dead letters are durable facts (never pruned), so the sets must
   coincide. Pending and history are compared by containment: the replay
   additionally holds queue-resident submissions the scheduler never drained
   (pending) and already-pruned rows of finished transactions (history) —
   both journalled facts the live tables legitimately dropped. *)
let check_recovery ctx =
  let r = ctx.recovered in
  let subset ~what smaller larger =
    let keys = Hashtbl.create (2 * List.length larger) in
    List.iter (fun k -> Hashtbl.replace keys k ()) (List.map Request.key larger);
    match
      List.find_opt
        (fun req -> not (Hashtbl.mem keys (Request.key req)))
        smaller
    with
    | None -> Ok ()
    | Some req ->
      Error
        (Printf.sprintf "%s row %s missing from the journal replay" what
           (Request.to_string req))
  in
  if r.Ds_core.Journal.corrupt_dropped > 0 then
    Error
      (Printf.sprintf "journal dropped %d corrupt line(s) after a clean close"
         r.Ds_core.Journal.corrupt_dropped)
  else if
    sorted_keys r.Ds_core.Journal.dead <> sorted_keys ctx.dead_live
  then Error "recovered dead-letter set differs from the dead relation"
  else
    match subset ~what:"pending" ctx.pending_live r.Ds_core.Journal.pending with
    | Error _ as e -> e
    | Ok () ->
      (* Abort markers live in history only as synthetic rows; the journal
         records them as 'A' lines, not 'Q' lines. *)
      let data_history =
        List.filter (fun req -> not (Request.is_abort_marker req)) ctx.history_live
      in
      subset ~what:"history" data_history r.Ds_core.Journal.history

let check_dead_letter ctx =
  let s = ctx.stats in
  let n_dead = List.length ctx.dead_live in
  (* An async failover may lose pre-crash dead-letter records above the
     replication watermark, so a promoted run's dead relation is allowed to
     undershoot the counter — never to exceed it. *)
  let dead_mismatch =
    if ctx.repl_promoted then n_dead > s.Ds_core.Middleware.dead_lettered
    else n_dead <> s.Ds_core.Middleware.dead_lettered
  in
  if dead_mismatch then
    Error
      (Printf.sprintf "dead relation has %d rows but dead_lettered=%d" n_dead
         s.Ds_core.Middleware.dead_lettered)
  else if
    s.Ds_core.Middleware.aborted_txns
    < s.Ds_core.Middleware.dead_lettered + s.Ds_core.Middleware.shed_txns
      + s.Ds_core.Middleware.disconnects
  then
    Error
      (Printf.sprintf
         "abort accounting: aborted=%d < dead=%d + shed=%d + disconnects=%d"
         s.Ds_core.Middleware.aborted_txns s.Ds_core.Middleware.dead_lettered
         s.Ds_core.Middleware.shed_txns s.Ds_core.Middleware.disconnects)
  else Ok ()

(* Whether whole transactions fit in the virtual window is a workload-length
   property (hotspot contention with long transactions legitimately commits
   nothing in a short run); a wedged scheduler shows up as an empty execution
   log. *)
let check_progress ctx =
  if ctx.stats.Ds_core.Middleware.committed_txns > 0 || ctx.rte <> [] then
    Ok ()
  else Error "scheduler executed nothing (empty rte log, no commits)"

(* Replication verdicts. A checkpoint-hash divergence between the primary
   and standby mirrors is a bug in any replicated run. After a promotion,
   {!Ds_check.Equivalence.check_failover} has already classified every
   client-acked transaction: loss at or below the watermark is always a bug,
   loss above it only in sync mode (async's documented loss window). *)
let check_failover ctx =
  if ctx.scenario.Scenario.repl = None then Ok ()
  else if ctx.repl_divergences > 0 then
    Error
      (Printf.sprintf
         "%d checkpoint-hash divergence(s) between primary and standby"
         ctx.repl_divergences)
  else
    match ctx.repl_failover with
    | None -> Ok ()
    | Some r ->
      if Ds_check.Equivalence.failover_ok r then Ok ()
      else
        Error (Format.asprintf "%a" Ds_check.Equivalence.pp_failover_report r)

let battery =
  [
    ("serializability", check_serializability);
    ("conflict-equivalence", check_equivalence);
    ("trace-wellformed", check_trace);
    ("recovery-identity", check_recovery);
    ("dead-letter", check_dead_letter);
    ("failover", check_failover);
    ("progress", check_progress);
  ]

let names = List.map fst battery

let apply ctx = List.map (fun (name, check) -> (name, check ctx)) battery
