open Ds_core

type result = {
  shrunk : Scenario.t;
  outcome : Runner.outcome;
  runs : int;
}

(* The transformation ladder, strongest reductions first. Each entry maps a
   scenario to a strictly "smaller" candidate, or None when it no longer
   applies; [shrink] retries the whole ladder after every acceptance, so
   halving steps compose into full binary search per dimension. *)
let transformations : (string * (Scenario.t -> Scenario.t option)) list =
  let some_if cond s = if cond then Some s else None in
  [
    ( "halve-duration",
      fun s ->
        some_if (s.Scenario.duration > 0.5)
          { s with Scenario.duration = Float.max 0.5 (s.Scenario.duration /. 2.) } );
    ( "halve-clients",
      fun s ->
        some_if (s.Scenario.clients > 1)
          { s with Scenario.clients = max 1 (s.Scenario.clients / 2) } );
    ( "halve-stmts",
      fun s ->
        some_if (s.Scenario.stmts_per_txn > 1)
          { s with Scenario.stmts_per_txn = max 1 (s.Scenario.stmts_per_txn / 2) } );
    ( "single-worker",
      fun s ->
        some_if (s.Scenario.workers > 1)
          {
            s with
            Scenario.workers = 1;
            hedging = false;
            faults =
              {
                s.Scenario.faults with
                Faults.worker_crash_rate = 0.;
                worker_death_rate = 0.;
                worker_stall_rate = 0.;
              };
          } );
    ( "single-shard",
      fun s ->
        some_if (s.Scenario.shards > 1) { s with Scenario.shards = 1 } );
    ( "drop-crash",
      fun s ->
        some_if (s.Scenario.faults.Faults.crash_at_cycle <> None)
          { s with Scenario.faults = { s.Scenario.faults with Faults.crash_at_cycle = None } } );
    ( "drop-pcrash",
      fun s ->
        some_if (s.Scenario.faults.Faults.pcrash_at_cycle <> None)
          { s with Scenario.faults = { s.Scenario.faults with Faults.pcrash_at_cycle = None } } );
    ( "clean-repl-link",
      fun s ->
        match s.Scenario.repl with
        | Some r when not (Ds_replica.Link.is_none r.Scenario.repl_link) ->
          Some
            {
              s with
              Scenario.repl =
                Some { r with Scenario.repl_link = Ds_replica.Link.none };
            }
        | _ -> None );
    (* pcrash requires a session, so this rung only fires once drop-pcrash
       has landed — the ladder restarts after every acceptance. *)
    ( "drop-repl",
      fun s ->
        some_if
          (s.Scenario.repl <> None
          && s.Scenario.faults.Faults.pcrash_at_cycle = None)
          { s with Scenario.repl = None } );
    ( "zero-batch-failures",
      fun s ->
        some_if (s.Scenario.faults.Faults.batch_fail_rate > 0.)
          { s with Scenario.faults = { s.Scenario.faults with Faults.batch_fail_rate = 0. } } );
    ( "zero-stalls",
      fun s ->
        some_if (s.Scenario.faults.Faults.stall_rate > 0.)
          { s with Scenario.faults = { s.Scenario.faults with Faults.stall_rate = 0. } } );
    ( "zero-poison",
      fun s ->
        some_if (s.Scenario.faults.Faults.poison_rate > 0.)
          { s with Scenario.faults = { s.Scenario.faults with Faults.poison_rate = 0. } } );
    ( "zero-disconnects",
      fun s ->
        some_if (s.Scenario.faults.Faults.disconnect_rate > 0.)
          { s with Scenario.faults = { s.Scenario.faults with Faults.disconnect_rate = 0. } } );
    ( "drop-checkpoint",
      fun s ->
        some_if (s.Scenario.checkpoint <> None) { s with Scenario.checkpoint = None } );
    ( "drop-queue-cap",
      fun s ->
        some_if (s.Scenario.queue_cap <> None) { s with Scenario.queue_cap = None } );
    ( "drop-hedging",
      fun s -> some_if s.Scenario.hedging { s with Scenario.hedging = false } );
    ( "uniform-access",
      fun s ->
        some_if (s.Scenario.access <> Scenario.Uniform)
          { s with Scenario.access = Scenario.Uniform } );
    ( "single-tier",
      fun s -> some_if s.Scenario.sla_mix { s with Scenario.sla_mix = false } );
    ( "oracle-protocol",
      fun s ->
        some_if (s.Scenario.protocol <> "ss2pl-ocaml")
          { s with Scenario.protocol = "ss2pl-ocaml" } );
    ( "shrink-objects",
      fun s ->
        some_if (s.Scenario.n_objects > 100) { s with Scenario.n_objects = 100 } );
  ]

let shrink ?(max_runs = 120) scenario ~failed =
  if failed = [] then invalid_arg "Shrink.shrink: empty failure set";
  let still_fails outcome =
    List.exists (fun (name, _) -> List.mem name failed) (Runner.failures outcome)
  in
  let runs = ref 0 in
  let try_run s =
    incr runs;
    Runner.run s
  in
  (* Re-run the starting point so the returned outcome always matches the
     returned scenario (the caller's outcome may predate a prior shrink). *)
  let best = ref scenario in
  let best_outcome = ref (try_run scenario) in
  if not (still_fails !best_outcome) then
    invalid_arg "Shrink.shrink: scenario does not fail the given invariants";
  let progress = ref true in
  while !progress && !runs < max_runs do
    progress := false;
    List.iter
      (fun (_name, tf) ->
        if (not !progress) && !runs < max_runs then
          match tf !best with
          | None -> ()
          | Some candidate ->
            let outcome = try_run candidate in
            if still_fails outcome then begin
              best := candidate;
              best_outcome := outcome;
              progress := true
            end)
      transformations
  done;
  { shrunk = !best; outcome = !best_outcome; runs = !runs }
