(** The swarm driver: sample N scenarios from the cross-product, run each
    through the real stack with the complete invariant battery, shrink every
    failure to a minimal repro, and render a deterministic JSON report.

    Determinism contract: [run ~n ~seed] twice yields byte-identical
    {!report_json} output (no timestamps, no wall-clock-derived numbers),
    and replaying any reported scenario — by its scenario seed or from its
    embedded JSON — reproduces its outcome bit-identically. *)

type result = {
  scenario_seed : int option;
      (** the {!Gen.of_seed} token; [None] for file-replayed scenarios *)
  outcome : Runner.outcome;
  shrunk : Shrink.result option;  (** present iff the scenario failed and shrinking ran *)
}

type report = {
  base_seed : int;
  n : int;
  shrink_enabled : bool;
  results : result list;  (** in scenario-index order *)
}

(** [run ~n ~seed ()] — scenarios [Gen.of_seed (Gen.scenario_seed ~base:seed i)]
    for [i < n]. [shrink] (default true) minimizes each failure.
    [progress] is called after each scenario (index, outcome) for live
    output. *)
val run :
  ?shrink:bool ->
  ?max_shrink_runs:int ->
  ?progress:(int -> Runner.outcome -> unit) ->
  n:int ->
  seed:int ->
  unit ->
  report

(** Replay one scenario (the [--replay] path) under the same battery and
    shrinking policy. *)
val replay :
  ?shrink:bool ->
  ?max_shrink_runs:int ->
  ?scenario_seed:int ->
  Scenario.t ->
  result

val failed : report -> result list

val result_json : result -> Ds_obs.Json.t

(** The full report, stamped (git commit, base seed, sweep config). *)
val report_json : report -> Ds_obs.Json.t

(** Human summary: totals, per-invariant failure counts, repro commands. *)
val pp_summary : Format.formatter -> report -> unit
