(** Seeded scenario generator: samples the full configuration cross-product
    the swarm sweeps — workload shape x SLA mix x protocol x worker count x
    fault plan (worker faults and crash points included) x checkpoint
    interval x queue bound x hedging.

    One integer fully determines one scenario ({!of_seed}), so a scenario
    seed printed in a swarm report is itself a replayable repro token.
    Generated scenarios never carry a test-only injection. *)

(** Derive the [i]-th scenario seed of a sweep from its base seed. Pure
    mixing — scenario [i] can be regenerated without generating [0..i-1]. *)
val scenario_seed : base:int -> int -> int

(** The scenario fully determined by one seed; always passes
    {!Scenario.validate}. *)
val of_seed : int -> Scenario.t
