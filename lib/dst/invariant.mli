(** The invariant battery: every correctness predicate the repo knows, run
    against the artifacts of one completed scenario. The paper's central
    claim is that a declarative scheduler is auditable — the protocol is a
    query, so its decisions can be checked against the data it ran on; the
    battery is that audit, applied end to end (middleware, scheduler, worker
    pool, journal) instead of per-subsystem:

    - {b serializability}: the committed projection of the continuous [rte]
      log passes conflict-serializability (with witness cycle), strictness,
      rigor and commit-order consistency ({!Ds_check.Serializability});
    - {b conflict-equivalence}: the merged (delivery-order) schedule of the
      worker pool agrees with the admitted [rte] order on every conflicting
      pair ({!Ds_check.Equivalence});
    - {b trace-wellformed}: the lifecycle trace passes the span battery —
      per-transaction time monotonicity, exactly one terminal per terminated
      transaction, no execution without admission ({!Ds_obs.Span.validate});
    - {b recovery-identity}: replaying the run's journal reproduces the live
      scheduler state — equal dead set, live pending/history contained in
      the replay, no corrupt records after a clean close;
    - {b dead-letter}: the dead relation, the dead-letter counter and the
      abort accounting agree (every shed/disconnected/dead-lettered
      transaction was aborted);
    - {b failover}: on replicated scenarios, no checkpoint-hash divergence
      between the primary and standby mirrors; after a promotion, no
      client-acked transaction at or below the replication watermark was
      lost (and in sync mode, none at all —
      {!Ds_check.Equivalence.check_failover});
    - {b progress}: the run committed at least one transaction (scenario
      ranges are sized so a live system always can). *)

open Ds_model

(** Everything a completed scenario run leaves behind. [rte] and [merged]
    are the {e observed} schedules — a test-only {!Scenario.inject} has
    already been applied to them when the scenario carries one. *)
type ctx = {
  scenario : Scenario.t;
  stats : Ds_core.Middleware.stats;
  rte : Request.t list;  (** the continuous execution log, qualification order *)
  merged : Request.t list;  (** delivery order across workers ([assignment].pos) *)
  trace_events : Ds_obs.Trace.event list;
  recovered : Ds_core.Journal.recovered;  (** post-run journal replay *)
  pending_live : Request.t list;
      (** scheduler [requests] tables at run end (all lanes) *)
  history_live : Request.t list;
      (** scheduler [history] tables at run end (all lanes) *)
  dead_live : Request.t list;  (** dead-letter relations at run end (all lanes) *)
  shards : int;  (** lanes the run executed with (1 = single scheduler) *)
  shard_of : int -> int option;
      (** routed lane per transaction; drives the cross-shard router
          soundness clause of the equivalence check when [shards > 1] *)
  repl_promoted : bool;  (** the run failed over to its hot standby *)
  repl_divergences : int;
      (** checkpoint-hash mismatches the replication session detected *)
  repl_failover : Ds_check.Equivalence.failover_report option;
      (** durability audit of a promoted run ([None] when no failover
          happened): client-acked transactions vs the promoted journal,
          classified against the replication watermark *)
}

(** The battery, in reporting order. Names are stable — they key the swarm
    report and the shrinker's failure-preservation test. *)
val battery : (string * (ctx -> (unit, string) result)) list

val names : string list

(** Run the complete battery (never short-circuits: every invariant is
    checked on every scenario). *)
val apply : ctx -> (string * (unit, string) result) list
