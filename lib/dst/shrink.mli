(** Delta-debugging shrinker: minimize a failing scenario while preserving
    its failure.

    Greedy fixed-point reduction over a transformation ladder — halve the
    run (duration, clients, statements per transaction), collapse the pool
    (K -> 1), zero each fault channel, drop the crash point / checkpointing
    / queue bound / hedging, strip the replication dimension (drop the
    pcrash failover point, clean the faulty link, then drop the standby
    entirely), and simplify workload and protocol. A candidate
    is accepted when re-running it still fails {e at least one of the
    invariants the original failed} (secondary failures are allowed to
    disappear); the pass restarts after every acceptance and the whole
    process stops at a fixed point or after [max_runs] re-executions.

    Because every step re-runs the scenario through the real stack, the
    shrunk scenario is a genuine minimal repro: replaying it reproduces the
    minimized failure bit-identically. *)

type result = {
  shrunk : Scenario.t;
  outcome : Runner.outcome;  (** the shrunk scenario's (failing) outcome *)
  runs : int;  (** scenario re-executions the search spent *)
}

(** [shrink scenario ~failed] — [failed] is the original failing invariant
    name set ({!Runner.failures} names). [max_runs] defaults to 120.
    @raise Invalid_argument when [failed] is empty. *)
val shrink : ?max_runs:int -> Scenario.t -> failed:string list -> result
