(** Artifact stamping: every bench/swarm JSON artifact carries the git
    commit, the seed and the configuration that produced it, so result
    trajectories are comparable across PRs without guessing which build a
    file came from.

    The commit is resolved without spawning a process: [DS_GIT_COMMIT] (CI
    can inject it) wins, else [.git/HEAD] is read (walking up from the
    working directory and following one level of [ref:] indirection), else
    ["unknown"]. No timestamps — artifacts from the same commit and seed
    must be byte-identical. *)

(** The resolved commit hash, or ["unknown"]. *)
val git_commit : unit -> string

(** [fields ~seed ~config ()] — the standard stamp object:
    [{"commit": .., "seed": .., "config": ..}]. *)
val fields :
  seed:int -> config:(string * Ds_obs.Json.t) list -> unit -> Ds_obs.Json.t

(** [add ~seed ~config payload] prepends a ["stamp"] member to a JSON
    object payload (returns non-objects unchanged). *)
val add :
  seed:int ->
  config:(string * Ds_obs.Json.t) list ->
  Ds_obs.Json.t ->
  Ds_obs.Json.t
