(** Executes one scenario through the {e real} middleware / scheduler /
    worker-pool / journal stack (no mocks: {!Ds_core.Middleware.run_full}
    with a live write-ahead journal and a lifecycle trace sink), then applies
    the complete {!Invariant} battery to what the run left behind.

    Runs are deterministic: wall-clock cycle charging is off, every
    probabilistic draw comes from the scenario seed, and the outcome carries
    no wall-clock-derived data — the same scenario always yields the same
    outcome, which is what makes swarm reports diffable and failures
    replayable bit-for-bit. *)

type outcome = {
  scenario : Scenario.t;
  stats : Ds_core.Middleware.stats;
  invariants : (string * (unit, string) result) list;
      (** complete battery, in {!Invariant.battery} order *)
}

(** @raise Invalid_argument when the scenario fails {!Scenario.validate}. *)
val run : Scenario.t -> outcome

(** Failed invariants as [(name, detail)], battery order. *)
val failures : outcome -> (string * string) list

val ok : outcome -> bool
