(** Deterministic-simulation scenarios: one point in the configuration
    cross-product the swarm harness sweeps.

    A scenario fully determines a middleware run — workload shape, SLA mix,
    protocol, worker count, fault plan (worker faults and crash/recover
    points included), checkpoint interval and queue bound — plus the
    middleware seed. Running the same scenario twice produces bit-identical
    schedules and counters, so a scenario value {e is} the repro: the swarm
    report embeds it as JSON and [dsched swarm --replay] re-runs it.

    Scenarios only use protocols with a serializability guarantee, because
    the invariant battery ({!Invariant}) checks the executed schedule with
    the full serializability predicate set. *)

open Ds_core

type access = Uniform | Zipf | Hotspot

(** Test-only fault hook: a deterministic corruption applied to the {e
    observed} run artifacts (the rte log and the merged delivery order)
    before the invariant battery runs — never to the run itself. It
    simulates a buggy scheduler so the shrinker and the failure-reporting
    path can be exercised (and regression-tested) without actually breaking
    the scheduler. The generator never samples injections; they enter only
    through hand-written scenarios and replay files. Indices wrap modulo the
    artifact length, so a shrunk run keeps its injection valid. *)
type inject =
  | Dup_delivery of int  (** duplicate the k-th entry of the merged order *)
  | Drop_rte of int  (** delete the k-th rte entry (merged keeps it) *)
  | Swap_rte of int
      (** swap the k-th rte entry that has a later conflicting partner with
          that partner (commuting swaps are unobservable, and under 2PL
          conflicting entries are never adjacent; no-op if nothing
          conflicts) *)

(** Hot-standby replication dimension: the run streams its journal to a warm
    standby over a faulty {!Ds_replica.Link}, and a [pcrash=N] fault in the
    scenario's plan fails over to it mid-run (epoch-fenced promotion). *)
type repl = {
  repl_sync : bool;  (** gate commit acks on the replication watermark *)
  repl_link : Ds_replica.Link.plan;
}

type t = {
  seed : int;  (** middleware + workload seed *)
  clients : int;
  duration : float;  (** virtual seconds *)
  n_objects : int;
  stmts_per_txn : int;  (** SELECTs and UPDATEs per transaction (each) *)
  access : access;
  sla_mix : bool;  (** premium/standard/free mix vs all-standard *)
  protocol : string;  (** a {!Ds_core.Builtin} name from {!protocols} *)
  workers : int;  (** pool size K *)
  shards : int;
      (** scheduler lanes S ({!Ds_core.Middleware.config.shards}); [1] is
          the single-scheduler middleware. Optional in the JSON codec
          (default 1), so pre-sharding scenario files replay unchanged. *)
  faults : Faults.plan;
  checkpoint : int option;  (** journal checkpoint interval, cycles *)
  queue_cap : int option;  (** incoming-queue bound (shedding/backpressure) *)
  hedging : bool;
  inject : inject option;
  repl : repl option;
      (** hot-standby replication session; requires [shards = 1], excludes
          the [crash] fault ([pcrash] is the failure model for replicated
          runs and requires this). Optional in the JSON codec (default
          [None]), so pre-replication scenario files replay unchanged. *)
}

(** Builtin protocol names eligible for scenarios (serializable guarantee
    only). *)
val protocols : string list

(** @return [Error _] on an unknown/non-serializable protocol, non-positive
    sizes, or an invalid fault plan. *)
val validate : t -> (unit, string) result

val to_json : t -> Ds_obs.Json.t

(** @return [Error _] on malformed JSON or a scenario failing {!validate}. *)
val of_json : Ds_obs.Json.t -> (t, string) result

(** One-line [key=value] rendering for logs and failure messages. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
