let read_first_line path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> try Some (String.trim (input_line ic)) with End_of_file -> None)

(* Walk up from [dir] looking for .git/HEAD; follow one "ref: ..." hop. *)
let rec head_of dir depth =
  if depth > 12 then None
  else
    let head = Filename.concat (Filename.concat dir ".git") "HEAD" in
    match read_first_line head with
    | Some line -> (
      match String.split_on_char ' ' line with
      | [ "ref:"; ref ] ->
        read_first_line (Filename.concat (Filename.concat dir ".git") ref)
      | _ -> Some line)
    | None ->
      let parent = Filename.dirname dir in
      if parent = dir then None else head_of parent (depth + 1)

let git_commit () =
  match Sys.getenv_opt "DS_GIT_COMMIT" with
  | Some c when String.trim c <> "" -> String.trim c
  | _ -> (
    match head_of (Sys.getcwd ()) 0 with
    | Some c when c <> "" -> c
    | _ -> "unknown")

let fields ~seed ~config () =
  Ds_obs.Json.Obj
    [
      ("commit", Ds_obs.Json.Str (git_commit ()));
      ("seed", Ds_obs.Json.Num (float_of_int seed));
      ("config", Ds_obs.Json.Obj config);
    ]

let add ~seed ~config payload =
  match payload with
  | Ds_obs.Json.Obj members ->
    Ds_obs.Json.Obj (("stamp", fields ~seed ~config ()) :: members)
  | other -> other
