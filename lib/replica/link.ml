open Ds_sim

type plan = {
  drop_rate : float;
  dup_rate : float;
  reorder_rate : float;
  delay_rate : float;
  base_delay : float;
  spike_delay : float;
  partition_at : float option;
  partition_for : float;
  flap_period : float option;
  flap_down : float;
}

let none =
  {
    drop_rate = 0.;
    dup_rate = 0.;
    reorder_rate = 0.;
    delay_rate = 0.;
    base_delay = 0.002;
    spike_delay = 0.05;
    partition_at = None;
    partition_for = 0.5;
    flap_period = None;
    flap_down = 0.05;
  }

let is_none p =
  p.drop_rate = 0. && p.dup_rate = 0. && p.reorder_rate = 0.
  && p.delay_rate = 0.
  && p.partition_at = None
  && p.flap_period = None

let validate p =
  let rate name v =
    if v < 0. || v > 1. then Error (Printf.sprintf "%s must be in [0,1]" name)
    else Ok ()
  in
  let ( >>= ) r f = Result.bind r (fun () -> f ()) in
  rate "drop_rate" p.drop_rate
  >>= fun () ->
  rate "dup_rate" p.dup_rate
  >>= fun () ->
  rate "reorder_rate" p.reorder_rate
  >>= fun () ->
  rate "delay_rate" p.delay_rate
  >>= fun () ->
  if p.base_delay < 0. then Error "base_delay must be non-negative"
  else if p.spike_delay < 0. then Error "spike_delay must be non-negative"
  else if p.partition_for < 0. then Error "partition_for must be non-negative"
  else if p.flap_down < 0. then Error "flap_down must be non-negative"
  else
    match p.partition_at with
    | Some t when t < 0. -> Error "partition time must be non-negative"
    | _ -> (
      match p.flap_period with
      | Some t when t <= 0. -> Error "flap period must be positive"
      | _ -> Ok ())

let plan_of_string s =
  let parse_field plan kv =
    match String.split_on_char '=' (String.trim kv) with
    | [ "" ] -> Ok plan
    (* plan_to_string renders the empty plan as "none"; accept it back. *)
    | [ "none" ] -> Ok plan
    | [ key; value ] -> (
      let fl () =
        match float_of_string_opt value with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "bad number %S for %s" value key)
      in
      match key with
      | "drop" -> Result.map (fun f -> { plan with drop_rate = f }) (fl ())
      | "dup" -> Result.map (fun f -> { plan with dup_rate = f }) (fl ())
      | "reorder" -> Result.map (fun f -> { plan with reorder_rate = f }) (fl ())
      | "delay" -> Result.map (fun f -> { plan with delay_rate = f }) (fl ())
      | "base" -> Result.map (fun f -> { plan with base_delay = f }) (fl ())
      | "spike" -> Result.map (fun f -> { plan with spike_delay = f }) (fl ())
      | "partition" ->
        Result.map (fun f -> { plan with partition_at = Some f }) (fl ())
      | "partition-dur" ->
        Result.map (fun f -> { plan with partition_for = f }) (fl ())
      | "flap" ->
        Result.map (fun f -> { plan with flap_period = Some f }) (fl ())
      | "flap-down" -> Result.map (fun f -> { plan with flap_down = f }) (fl ())
      | _ -> Error (Printf.sprintf "unknown link fault key %S" key))
    | _ -> Error (Printf.sprintf "expected key=value, got %S" kv)
  in
  let parsed =
    List.fold_left
      (fun acc kv -> Result.bind acc (fun plan -> parse_field plan kv))
      (Ok none)
      (String.split_on_char ',' s)
  in
  Result.bind parsed (fun plan -> Result.map (fun () -> plan) (validate plan))

let plan_to_string p =
  let parts =
    List.filter_map
      (fun x -> x)
      [
        (if p.drop_rate > 0. then Some (Printf.sprintf "drop=%g" p.drop_rate)
         else None);
        (if p.dup_rate > 0. then Some (Printf.sprintf "dup=%g" p.dup_rate)
         else None);
        (if p.reorder_rate > 0. then
           Some (Printf.sprintf "reorder=%g" p.reorder_rate)
         else None);
        (if p.delay_rate > 0. then Some (Printf.sprintf "delay=%g" p.delay_rate)
         else None);
        (if p.delay_rate > 0. then
           Some (Printf.sprintf "spike=%g" p.spike_delay)
         else None);
        Option.map (Printf.sprintf "partition=%g") p.partition_at;
        (if p.partition_at <> None then
           Some (Printf.sprintf "partition-dur=%g" p.partition_for)
         else None);
        Option.map (Printf.sprintf "flap=%g") p.flap_period;
        (if p.flap_period <> None then
           Some (Printf.sprintf "flap-down=%g" p.flap_down)
         else None);
      ]
  in
  if parts = [] then "none" else String.concat "," parts

let pp_plan ppf p = Format.pp_print_string ppf (plan_to_string p)

type message = {
  m_epoch : int;
  m_lsn : int;
  m_payload : string;
  m_sent_at : float;
}

(* In-flight copies, kept sorted lazily at delivery time.  Holding (not
   dropping) messages across a partition or flap-down window is what makes
   the interesting failure mode reachable: records sent by the old primary
   just before it died arrive *after* the standby was promoted, and must be
   fenced by their stale epoch. *)
type inflight = { msg : message; deliver_at : float }

type t = {
  plan : plan;
  rng : Rng.t;
  mutable queue : inflight list;  (* unsorted; sorted on deliver *)
  mutable n_dropped : int;
  mutable n_duplicated : int;
  mutable n_held : int;  (* copies postponed to a heal time *)
}

let create plan rng =
  { plan; rng; queue = []; n_dropped = 0; n_duplicated = 0; n_held = 0 }

(* The link is down inside the one-shot partition window and during the
   trailing [flap_down] slice of every flap period. *)
let down t ~now =
  (match t.plan.partition_at with
  | Some at -> now >= at && now < at +. t.plan.partition_for
  | None -> false)
  ||
  match t.plan.flap_period with
  | Some period ->
    let phase = Float.rem now period in
    phase >= period -. t.plan.flap_down
  | None -> false

(* Earliest instant at or after [now] when the link is up again. *)
let heal_time t ~now =
  let after_partition =
    match t.plan.partition_at with
    | Some at when now >= at && now < at +. t.plan.partition_for ->
      at +. t.plan.partition_for
    | _ -> now
  in
  match t.plan.flap_period with
  | Some period ->
    let phase = Float.rem after_partition period in
    if phase >= period -. t.plan.flap_down then
      after_partition +. (period -. phase)
    else after_partition
  | None -> after_partition

let enqueue_copy t ~now msg =
  let p = t.plan in
  let jitter = p.base_delay *. Rng.float t.rng in
  let delay = p.base_delay +. jitter in
  let delay =
    if p.delay_rate > 0. && Rng.float t.rng < p.delay_rate then
      delay +. p.spike_delay
    else delay
  in
  let delay =
    (* reordering: an extra delay long enough to land behind records sent
       several base-delays later *)
    if p.reorder_rate > 0. && Rng.float t.rng < p.reorder_rate then
      delay +. (3. *. p.base_delay *. (1. +. Rng.float t.rng))
    else delay
  in
  let base = if down t ~now then (t.n_held <- t.n_held + 1; heal_time t ~now) else now in
  t.queue <- { msg; deliver_at = base +. delay } :: t.queue

let send t ~now ~epoch ~lsn ~payload =
  let msg = { m_epoch = epoch; m_lsn = lsn; m_payload = payload; m_sent_at = now } in
  if t.plan.drop_rate > 0. && Rng.float t.rng < t.plan.drop_rate then
    t.n_dropped <- t.n_dropped + 1
  else begin
    enqueue_copy t ~now msg;
    if t.plan.dup_rate > 0. && Rng.float t.rng < t.plan.dup_rate then begin
      t.n_duplicated <- t.n_duplicated + 1;
      enqueue_copy t ~now msg
    end
  end

let deliver t ~now =
  let due, rest =
    List.partition (fun m -> m.deliver_at <= now) t.queue
  in
  t.queue <- rest;
  List.stable_sort
    (fun a b ->
      match compare a.deliver_at b.deliver_at with
      | 0 -> compare a.msg.m_lsn b.msg.m_lsn
      | c -> c)
    due
  |> List.map (fun m -> m.msg)

let in_flight t = List.length t.queue
let dropped t = t.n_dropped
let duplicated t = t.n_duplicated
let held t = t.n_held
