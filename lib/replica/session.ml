open Ds_core

type mode = Async | Sync

let mode_to_string = function Async -> "async" | Sync -> "sync"

let mode_of_string = function
  | "async" -> Some Async
  | "sync" -> Some Sync
  | _ -> None

type promotion = {
  p_recovered : Journal.recovered;
  p_journal : Journal.t;
  p_epoch : int;
}

(* Retransmission timeout: an unacked record older than this is re-sent on
   the next pump.  Well above the link's default base delay, well below a
   scheduler cycle's worth of traffic. *)
let rto = 0.02

type t = {
  mode : mode;
  link : Link.t;
  dir : string;
  standby_path : string;
  mutable standby : Journal.t option;  (* [None] once promoted *)
  mutable clock : unit -> float;
  trace : Ds_obs.Trace.t option;
  mutable epoch : int;  (* current promotion epoch; 0 until a failover *)
  mutable primary_lsn : int;  (* last record streamed off the primary *)
  mutable watermark : int;  (* highest contiguous LSN applied + acked *)
  outbox : (int, string * float ref) Hashtbl.t;
      (* primary-side retention of unacked records: lsn -> payload, last
         send time (retransmission source for dropped records) *)
  reorder : (int, string) Hashtbl.t;
      (* standby-side buffer of records that arrived ahead of a gap *)
  ta_lsn : (int, int) Hashtbl.t;
      (* per-transaction high-water LSN of its Q records: the sync-mode
         commit gate ([synced]) compares it against the watermark *)
  mutable promoted : bool;
  mutable n_fenced : int;
  mutable n_divergences : int;
  mutable n_retransmits : int;
  mutable n_stale : int;  (* duplicate deliveries at or below the watermark *)
  mutable n_hash_checks : int;
}

let manifest_magic = "dsched-repl 1"
let manifest_path dir = Filename.concat dir "REPL"
let standby_path_of dir = Filename.concat dir "standby.journal"

let is_repl_dir dir =
  Sys.file_exists dir
  && Sys.is_directory dir
  && Sys.file_exists (manifest_path dir)

let mode_of_dir dir =
  let ic = open_in_bin (manifest_path dir) in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let magic = try input_line ic with End_of_file -> "" in
  if String.trim magic <> manifest_magic then
    failwith (Printf.sprintf "%s: not a replication session directory" dir);
  let mode_line = try input_line ic with End_of_file -> "" in
  match String.split_on_char ' ' (String.trim mode_line) with
  | [ "mode"; m ] -> (
    match mode_of_string m with
    | Some m -> m
    | None -> failwith (Printf.sprintf "%s: bad mode in REPL manifest" dir))
  | _ -> failwith (Printf.sprintf "%s: bad mode in REPL manifest" dir)

let create ~mode ~plan ~seed ?trace ~dir () =
  (match Link.validate plan with
  | Ok () -> ()
  | Error m -> invalid_arg ("Session.create: link faults: " ^ m));
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    failwith (Printf.sprintf "%s: exists and is not a directory" dir);
  let oc = open_out_bin (manifest_path dir) in
  output_string oc
    (Printf.sprintf "%s\nmode %s\n" manifest_magic (mode_to_string mode));
  close_out oc;
  let standby_path = standby_path_of dir in
  (* a stale standby file from a previous session would not be a prefix of
     this primary's stream *)
  if Sys.file_exists standby_path then Sys.remove standby_path;
  {
    mode;
    link = Link.create plan (Ds_sim.Rng.create seed);
    dir;
    standby_path;
    standby = Some (Journal.open_ standby_path);
    clock = (fun () -> 0.);
    trace;
    epoch = 0;
    primary_lsn = 0;
    watermark = 0;
    outbox = Hashtbl.create 256;
    reorder = Hashtbl.create 64;
    ta_lsn = Hashtbl.create 256;
    promoted = false;
    n_fenced = 0;
    n_divergences = 0;
    n_retransmits = 0;
    n_stale = 0;
    n_hash_checks = 0;
  }

let set_clock t f = t.clock <- f

(* Q records are the logical execution facts; a transaction is sync-safe
   once every Q record it produced is at or below the standby's watermark. *)
let note_record t lsn payload =
  if String.length payload >= 2 && payload.[0] = 'Q' then
    match String.split_on_char ' ' payload with
    | "Q" :: ta :: _ -> (
      match int_of_string_opt ta with
      | Some ta -> Hashtbl.replace t.ta_lsn ta lsn
      | None -> ())
    | _ -> ()

let on_record t lsn payload =
  if not t.promoted then begin
    let now = t.clock () in
    t.primary_lsn <- max t.primary_lsn lsn;
    Hashtbl.replace t.outbox lsn (payload, ref now);
    note_record t lsn payload;
    Link.send t.link ~now ~epoch:t.epoch ~lsn ~payload
  end

let attach t journal =
  Journal.set_hash_checkpoints journal true;
  Journal.set_sink journal (fun lsn payload -> on_record t lsn payload)

(* Apply the contiguous prefix sitting in the reorder buffer.  'H' records
   carry the primary's state hash for the checkpoint just written; comparing
   it against the standby mirror's own hash is the divergence detector. *)
let drain t =
  match t.standby with
  | None -> ()
  | Some j ->
    let continue_ = ref true in
    while !continue_ do
      match Hashtbl.find_opt t.reorder (t.watermark + 1) with
      | None -> continue_ := false
      | Some payload ->
        Hashtbl.remove t.reorder (t.watermark + 1);
        Journal.append_raw j payload;
        t.watermark <- t.watermark + 1;
        Hashtbl.remove t.outbox t.watermark;
        if String.length payload >= 2 && payload.[0] = 'H' then begin
          match String.split_on_char ' ' payload with
          | [ "H"; cycle; hash ] -> (
            match
              (int_of_string_opt cycle, int_of_string_opt ("0x" ^ hash))
            with
            | Some cycle, Some h ->
              t.n_hash_checks <- t.n_hash_checks + 1;
              if Journal.state_hash j <> h then begin
                t.n_divergences <- t.n_divergences + 1;
                Ds_obs.Trace.emit t.trace Ds_obs.Trace.Repl_divergence
                  ~ta:(-1) ~seq:(-1) ~arg:cycle ()
              end
            | _ -> ())
          | _ -> ()
        end
    done

let pump t ~now =
  List.iter
    (fun (m : Link.message) ->
      if t.promoted || m.Link.m_epoch < t.epoch then begin
        (* a record from a fenced incarnation of the primary (typically held
           across a partition that outlived it): refused, never applied *)
        t.n_fenced <- t.n_fenced + 1;
        Ds_obs.Trace.emit t.trace Ds_obs.Trace.Repl_fence ~ta:(-1) ~seq:(-1)
          ~arg:m.Link.m_epoch ()
      end
      else if m.Link.m_lsn <= t.watermark then t.n_stale <- t.n_stale + 1
      else Hashtbl.replace t.reorder m.Link.m_lsn m.Link.m_payload)
    (Link.deliver t.link ~now);
  drain t;
  (* Retransmit unacked records the link lost (or is still holding past the
     RTO); duplicates are harmless — the watermark filter ignores them. *)
  if not t.promoted then
    Hashtbl.iter
      (fun lsn (payload, sent_at) ->
        if lsn > t.watermark && now -. !sent_at > rto then begin
          sent_at := now;
          t.n_retransmits <- t.n_retransmits + 1;
          Link.send t.link ~now ~epoch:t.epoch ~lsn ~payload
        end)
      t.outbox

let synced t ~ta =
  match Hashtbl.find_opt t.ta_lsn ta with
  | None -> true (* nothing journalled for it: nothing to lose *)
  | Some lsn -> lsn <= t.watermark

let promote t =
  if t.promoted then invalid_arg "Session.promote: already promoted";
  t.promoted <- true;
  (match t.standby with
  | Some j ->
    Journal.flush j;
    Journal.close j;
    t.standby <- None
  | None -> ());
  (* Everything above the watermark is gone with the primary; retransmission
     state is meaningless now. *)
  Hashtbl.reset t.outbox;
  Hashtbl.reset t.reorder;
  let recovered = Journal.recover ~repair:true t.standby_path in
  let epoch = max t.epoch recovered.Journal.epoch + 1 in
  let j = Journal.open_ ~state:recovered t.standby_path in
  Journal.log_epoch j epoch;
  Journal.flush j;
  t.epoch <- epoch;
  { p_recovered = recovered; p_journal = j; p_epoch = epoch }

let finish t =
  match t.standby with
  | Some j -> Journal.flush j
  | None -> ()

let close t =
  match t.standby with
  | Some j ->
    Journal.flush j;
    Journal.close j;
    t.standby <- None
  | None -> ()

let dir t = t.dir
let standby_path t = t.standby_path
let mode t = t.mode
let epoch t = t.epoch
let primary_lsn t = t.primary_lsn
let watermark t = t.watermark
let lag t = t.primary_lsn - t.watermark
let fenced t = t.n_fenced
let divergences t = t.n_divergences
let retransmits t = t.n_retransmits
let stale_deliveries t = t.n_stale
let hash_checks t = t.n_hash_checks
let promoted t = t.promoted
let link t = t.link

let ta_lsns t =
  Hashtbl.fold (fun ta lsn acc -> (ta, lsn) :: acc) t.ta_lsn []
  |> List.sort compare

(* The middleware-facing closure record: [Middleware] drives the session
   through these without depending on this library. *)
let hooks t : Middleware.repl_hooks =
  {
    Middleware.repl_attach = attach t;
    repl_set_clock = set_clock t;
    repl_pump = (fun ~now -> pump t ~now);
    repl_synced = (fun ~ta -> synced t ~ta);
    repl_promote =
      (fun () ->
        let p = promote t in
        {
          Middleware.rp_recovered = p.p_recovered;
          rp_journal = p.p_journal;
          rp_epoch = p.p_epoch;
        });
    repl_status =
      (fun () ->
        {
          Middleware.rs_epoch = t.epoch;
          rs_watermark = t.watermark;
          rs_primary_lsn = t.primary_lsn;
          rs_lag = t.primary_lsn - t.watermark;
          rs_fenced = t.n_fenced;
          rs_divergences = t.n_divergences;
          rs_sync = t.mode = Sync;
        });
  }
