(** A hot-standby replication session: the primary scheduler's journal is
    tapped record-by-record ({!Ds_core.Journal.set_sink}), streamed over a
    faulty {!Link}, and replayed on the standby side into a warm mirror
    journal that stays a byte-prefix of the primary's.

    The protocol is a cumulative-ack sliding window: the standby applies
    records strictly in LSN order (out-of-order arrivals wait in a reorder
    buffer), the {e watermark} is the highest contiguous LSN applied, and
    the primary retransmits unacked records past an RTO — so drops,
    duplicates and reorderings are all absorbed. Each checkpoint the primary
    writes is followed by an ['H'] record carrying its state-mirror hash;
    the standby compares it against its own mirror ({e divergence
    detection}).

    {!promote} turns the standby into the new primary: its journal is
    recovered (torn tail repaired), stamped with a fresh monotonic
    {e promotion epoch} ['E' record], and handed to the middleware to
    continue the run. From that instant every late arrival from the old
    primary — typically records held across a partition that outlived it —
    is {e fenced} by its stale epoch and refused.

    In [Sync] mode the middleware holds terminal commit acknowledgements
    until the committing transaction's journal records are at or below the
    watermark ({!synced}) — zero admitted-transaction loss across failover.
    In [Async] mode acks return immediately and a failover may lose at most
    the records above the watermark (the lag, which {!Middleware} reports). *)

open Ds_core

type mode = Async | Sync

val mode_to_string : mode -> string
val mode_of_string : string -> mode option

(** What {!promote} hands the middleware: the recovered standby state, the
    reopened journal (epoch already stamped) and the new epoch. *)
type promotion = {
  p_recovered : Journal.recovered;
  p_journal : Journal.t;
  p_epoch : int;
}

type t

(** [create ~mode ~plan ~seed ~dir ()] starts a session journalling the
    standby mirror into [dir/standby.journal] ([dir] is created, gets a
    [REPL] manifest recording the mode, and a stale standby file is
    removed). [seed] drives the link's fault draws. *)
val create :
  mode:mode ->
  plan:Link.plan ->
  seed:int ->
  ?trace:Ds_obs.Trace.t ->
  dir:string ->
  unit ->
  t

(** Installs the replication tap on the primary's journal (and enables
    hash-stamped checkpoints on it). Call before the run starts. *)
val attach : t -> Journal.t -> unit

(** The virtual clock used to timestamp sends and drive the RTO. *)
val set_clock : t -> (unit -> float) -> unit

(** Deliver due messages, apply the contiguous prefix to the standby,
    advance the watermark, check divergence hashes and retransmit lost
    records. Driven periodically by the middleware's engine. *)
val pump : t -> now:float -> unit

(** Sync-mode commit gate: true iff every journal record of transaction
    [ta] is at or below the standby's watermark. *)
val synced : t -> ta:int -> bool

(** Promote the standby to primary (see module doc).
    @raise Invalid_argument if already promoted. *)
val promote : t -> promotion

(** Flush the standby mirror (end of a run that never failed over, so
    [dsched failover] can promote the directory offline later). *)
val finish : t -> unit

(** Flush and close the standby journal (no-op after {!promote}). *)
val close : t -> unit

(** {2 Session directories} *)

(** True iff [dir] holds a session's [REPL] manifest — how the CLI
    recognizes a promotable standby directory. *)
val is_repl_dir : string -> bool

(** The mode recorded in [dir]'s manifest.
    @raise Failure on a missing or malformed manifest. *)
val mode_of_dir : string -> mode

val dir : t -> string
val standby_path : t -> string

(** The standby journal path a session rooted at [dir] would use
    ([dir/standby.journal]) — for offline tooling that works on a session
    directory without a live session. *)
val standby_path_of : string -> string

(** {2 Observability} *)

val mode : t -> mode
val epoch : t -> int
val primary_lsn : t -> int
val watermark : t -> int

(** [primary_lsn - watermark]: records the standby has not yet acked — the
    async-mode loss bound at any instant. *)
val lag : t -> int

(** Stale-epoch records refused after a promotion. *)
val fenced : t -> int

(** Checkpoint-hash mismatches between primary and standby mirrors. *)
val divergences : t -> int

val retransmits : t -> int

(** Duplicate deliveries ignored at or below the watermark. *)
val stale_deliveries : t -> int

(** Checkpoint hashes compared so far. *)
val hash_checks : t -> int

val promoted : t -> bool
val link : t -> Link.t

(** [(ta, lsn)] per transaction streamed: the highest LSN among its ['Q']
    records — what {!Ds_check.Equivalence.check_failover} takes as [acked]
    once filtered to client-acknowledged transactions. *)
val ta_lsns : t -> (int * int) list

(** The {!Ds_core.Middleware.repl_hooks} closure record over this session —
    what [Middleware.config.repl] takes. *)
val hooks : t -> Middleware.repl_hooks
