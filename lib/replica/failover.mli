(** Offline standby promotion — the [dsched failover <dir>] path.

    Works on a session directory written by {!Session} after the primary is
    gone: recovers the standby journal (repairing any torn tail), stamps the
    next promotion epoch into it and returns what was recovered. The
    directory's journal is then a valid primary journal for a new run
    ([--journal dir/standby.journal]) and any late write from the fenced old
    epoch is refused at replay. *)

open Ds_core

type report = {
  mode : Session.mode;  (** the replication mode the session ran with *)
  epoch : int;  (** the promotion epoch stamped by this call *)
  recovered : Journal.recovered;  (** standby state as of its watermark *)
}

(** @raise Failure if [dir] has no [REPL] manifest or no standby journal. *)
val promote : string -> report
