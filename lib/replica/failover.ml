open Ds_core

type report = {
  mode : Session.mode;
  epoch : int;
  recovered : Journal.recovered;
}

let promote dir =
  if not (Session.is_repl_dir dir) then
    failwith
      (Printf.sprintf "%s: not a replication session directory (no REPL manifest)"
         dir);
  let mode = Session.mode_of_dir dir in
  let path = Session.standby_path_of dir in
  if not (Sys.file_exists path) then
    failwith (Printf.sprintf "%s: no standby journal" dir);
  let recovered = Journal.recover ~repair:true path in
  let epoch = recovered.Journal.epoch + 1 in
  let j = Journal.open_ ~state:recovered path in
  Journal.log_epoch j epoch;
  Journal.flush j;
  Journal.close j;
  { mode; epoch; recovered }
