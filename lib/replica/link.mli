(** Simulated replication link between the primary scheduler and its hot
    standby: a seeded fault {e plan} over an in-flight message queue.

    The channel mirrors real WAN replication pathologies: records can be
    {b dropped} (recovered by the session's retransmission), {b duplicated},
    {b reordered} (an extra delay lets a later record overtake), hit by
    {b latency spikes}, and the link itself can go down — a one-shot
    {b partition} window or a periodic {b flap}. Down windows {e hold}
    messages until the heal instant rather than dropping them; that is what
    produces the signature failure mode of hot-standby replication: records
    sent by the old primary just before it died arrive {e after} the standby
    was promoted and must be refused by their stale epoch (see
    {!Session.pump}).

    All randomness comes from one {!Ds_sim.Rng} stream, so a seeded run with
    a fixed plan is exactly reproducible. *)

type plan = {
  drop_rate : float;  (** per record: lost in flight (retransmission recovers) *)
  dup_rate : float;  (** per record: a second copy is also delivered *)
  reorder_rate : float;
      (** per record: extra delay long enough to overtake later records *)
  delay_rate : float;  (** per record: latency spike of [spike_delay] *)
  base_delay : float;  (** one-way latency floor, in virtual seconds *)
  spike_delay : float;  (** extra delay of a spiked record *)
  partition_at : float option;
      (** one-shot partition onset (virtual seconds); in-flight and
          newly-sent records are held until it heals *)
  partition_for : float;  (** partition duration *)
  flap_period : float option;
      (** link flap: every period, the trailing [flap_down] seconds are a
          down window *)
  flap_down : float;  (** down slice per flap period *)
}

(** The zero plan: lossless ordered-ish delivery at [base_delay]. *)
val none : plan

val is_none : plan -> bool

(** @return [Error _] on out-of-range rates or negative durations. *)
val validate : plan -> (unit, string) result

(** Parses a compact spec like
    ["drop=0.1,dup=0.05,reorder=0.2,delay=0.1,spike=0.05,partition=1.5,partition-dur=0.5,flap=0.4,flap-down=0.05"].
    Every key is optional ([base=S] sets the latency floor); unknown keys are
    errors; [""] and ["none"] parse to {!none}. *)
val plan_of_string : string -> (plan, string) result

val plan_to_string : plan -> string
val pp_plan : Format.formatter -> plan -> unit

type message = {
  m_epoch : int;  (** sender's promotion epoch at send time *)
  m_lsn : int;  (** journal line number of the replicated record *)
  m_payload : string;  (** the journal record, unframed *)
  m_sent_at : float;
}

type t

(** [create plan rng] — [rng] drives every probabilistic draw. *)
val create : plan -> Ds_sim.Rng.t -> t

(** [send t ~now ~epoch ~lsn ~payload] puts one record on the wire (possibly
    dropping, duplicating, delaying or holding it per the plan). *)
val send : t -> now:float -> epoch:int -> lsn:int -> payload:string -> unit

(** Due messages at [now], removed from the queue, in delivery order
    (deliver-time, then LSN). The receiver must tolerate gaps, duplicates
    and stale epochs. *)
val deliver : t -> now:float -> message list

(** True iff the link is inside a partition or flap-down window at [now]. *)
val down : t -> now:float -> bool

val in_flight : t -> int
val dropped : t -> int
val duplicated : t -> int

(** Copies that were postponed to a heal time by a down window. *)
val held : t -> int
