open Ds_model
open Ds_sim

type t = {
  spec : Spec.t;
  rng : Rng.t;
  zipf : Dist.Zipf.gen option;
  total_sla_weight : float;
}

let create spec rng =
  (match Spec.validate spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Generator.create: " ^ msg));
  let zipf =
    match spec.Spec.access with
    | Spec.Zipf theta -> Some (Dist.Zipf.create ~n:spec.Spec.n_objects ~theta)
    | Spec.Uniform | Spec.Hotspot _ | Spec.Partitioned _ -> None
  in
  let total_sla_weight =
    List.fold_left (fun acc (_, w) -> acc +. w) 0. spec.Spec.sla_mix
  in
  { spec; rng; zipf; total_sla_weight }

let draw_sla t =
  let x = Rng.float t.rng *. t.total_sla_weight in
  let rec pick acc = function
    | [] -> fst (List.hd (List.rev t.spec.Spec.sla_mix))
    | (sla, w) :: rest -> if x < acc +. w then sla else pick (acc +. w) rest
  in
  pick 0. t.spec.Spec.sla_mix

(* [home] is the transaction's object group for [Partitioned] access (drawn
   once per transaction in [next_txn]); unused by the other patterns. *)
let draw_object ?home t =
  let spec = t.spec in
  match spec.Spec.access with
  | Spec.Uniform -> Rng.int t.rng spec.Spec.n_objects
  | Spec.Zipf _ -> Dist.Zipf.sample (Option.get t.zipf) t.rng
  | Spec.Hotspot (frac, prob) ->
    let hot_count = max 1 (int_of_float (frac *. float_of_int spec.Spec.n_objects)) in
    if Rng.float t.rng < prob then Rng.int t.rng hot_count
    else hot_count + Rng.int t.rng (spec.Spec.n_objects - hot_count)
  | Spec.Partitioned (groups, escape) ->
    let g = match home with Some g -> g | None -> Rng.int t.rng groups in
    if escape > 0. && Rng.float t.rng < escape then
      Rng.int t.rng spec.Spec.n_objects
    else begin
      (* objects of group g are g, g+groups, g+2*groups, ... *)
      let group_size = (spec.Spec.n_objects - g + groups - 1) / groups in
      g + (groups * Rng.int t.rng group_size)
    end

let draw_objects ?home t n =
  if not t.spec.Spec.distinct_objects then
    List.init n (fun _ -> draw_object ?home t)
  else begin
    let seen = Hashtbl.create (2 * n) in
    let rec draw acc k =
      if k = 0 then List.rev acc
      else
        let o = draw_object ?home t in
        if Hashtbl.mem seen o then draw acc k
        else begin
          Hashtbl.add seen o ();
          draw (o :: acc) (k - 1)
        end
    in
    draw [] n
  end

let next_txn t ~ta =
  let spec = t.spec in
  let ns = spec.Spec.selects_per_txn and nu = spec.Spec.updates_per_txn in
  (* A read-only transaction does the same number of statements, all reads. *)
  let ns, nu =
    if
      spec.Spec.read_only_fraction > 0.
      && Rng.float t.rng < spec.Spec.read_only_fraction
    then (ns + nu, 0)
    else (ns, nu)
  in
  let home =
    match spec.Spec.access with
    | Spec.Partitioned (groups, _) -> Some (Rng.int t.rng groups)
    | Spec.Uniform | Spec.Zipf _ | Spec.Hotspot _ -> None
  in
  let objects = Array.of_list (draw_objects ?home t (ns + nu)) in
  let ops =
    match spec.Spec.order with
    | Spec.Reads_first ->
      List.init ns (fun i -> (Op.Read, Some objects.(i)))
      @ List.init nu (fun i -> (Op.Write, Some objects.(ns + i)))
    | Spec.Interleaved ->
      (* Alternate while both kinds remain, then the surplus kind. *)
      let rec weave i r w acc =
        if r = 0 && w = 0 then List.rev acc
        else if (i mod 2 = 0 && r > 0) || w = 0 then
          weave (i + 1) (r - 1) w ((Op.Read, Some objects.(ns - r)) :: acc)
        else weave (i + 1) r (w - 1) ((Op.Write, Some objects.(ns + nu - w)) :: acc)
      in
      weave 0 ns nu []
    | Spec.Shuffled ->
      let kinds =
        Array.append (Array.make ns Op.Read) (Array.make nu Op.Write)
      in
      Rng.shuffle t.rng kinds;
      Array.to_list (Array.mapi (fun i k -> (k, Some objects.(i))) kinds)
  in
  let terminal =
    if Rng.float t.rng < spec.Spec.abort_fraction then Op.Abort else Op.Commit
  in
  let sla = draw_sla t in
  Txn.make ~ta ~sla (ops @ [ (terminal, None) ])

let txns t ~first_ta n = List.init n (fun i -> next_txn t ~ta:(first_ta + i))

let interleave txn_list =
  let queues = List.map (fun (txn : Txn.t) -> ref txn.Txn.requests) txn_list in
  let out = ref [] in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    List.iter
      (fun q ->
        match !q with
        | [] -> ()
        | r :: rest ->
          q := rest;
          out := r :: !out;
          continue_ := true)
      queues
  done;
  List.rev !out
