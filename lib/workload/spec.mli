(** Workload specifications.

    [paper_default] reproduces §4.2.1: "transactions with 20 SELECT and 20
    UPDATE statements against a single table of 100000 rows. Each statement
    affected exactly one random row, with a uniform probability for each
    row"; additionally each transaction touches an object at most once, the
    assumption the paper's Listing 1 makes explicit. *)

open Ds_model

type order =
  | Interleaved  (** select, update, select, update, ... *)
  | Reads_first  (** all selects then all updates *)
  | Shuffled  (** random permutation per transaction *)

type access =
  | Uniform
  | Zipf of float  (** skew theta in [0,1) *)
  | Hotspot of float * float  (** (hot fraction of objects, prob of hot access) *)
  | Partitioned of int * float
      (** [(groups, escape)]: each transaction homes on one of [groups]
          object groups (object [o] belongs to group [o mod groups]) and
          draws its objects there; each statement instead escapes to a
          uniform draw over {e all} objects with probability [escape]. The
          workload shape behind the shard-sweep benchmark — group-local
          transactions route to one shard lane, escapes exercise the
          cross-shard global lane. *)

type t = {
  n_objects : int;
  selects_per_txn : int;
  updates_per_txn : int;
  order : order;
  access : access;
  abort_fraction : float;  (** transactions ending in abort instead of commit *)
  read_only_fraction : float;
      (** fraction of transactions that are read-only: their updates are
          replaced by additional selects (browsing traffic, the workload the
          Ganymed-style protocols exploit) *)
  sla_mix : (Sla.t * float) list;  (** weighted SLA classes; must be non-empty *)
  distinct_objects : bool;  (** sample objects without replacement per txn *)
}

val paper_default : t

(** Smaller variant for unit tests (fewer objects/statements). *)
val small : t

(** High-contention variant (hotspot access, used by the relaxed-consistency
    experiments). *)
val contended : t

val statements_per_txn : t -> int
val validate : t -> (unit, string) result
val pp : Format.formatter -> t -> unit
