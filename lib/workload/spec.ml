open Ds_model

type order = Interleaved | Reads_first | Shuffled

type access =
  | Uniform
  | Zipf of float
  | Hotspot of float * float
  | Partitioned of int * float
      (* (groups, escape): each transaction homes on one of [groups] object
         groups (object o belongs to group [o mod groups]) and draws its
         objects there; each statement escapes to a uniform draw over all
         objects with probability [escape]. The workload shape behind the
         shard-sweep benchmark: group-local transactions stay on one shard
         lane, escapes exercise the global lane. *)

type t = {
  n_objects : int;
  selects_per_txn : int;
  updates_per_txn : int;
  order : order;
  access : access;
  abort_fraction : float;
  read_only_fraction : float;
  sla_mix : (Sla.t * float) list;
  distinct_objects : bool;
}

let paper_default =
  {
    n_objects = 100_000;
    selects_per_txn = 20;
    updates_per_txn = 20;
    order = Shuffled;
    access = Uniform;
    abort_fraction = 0.;
    read_only_fraction = 0.;
    sla_mix = [ (Sla.standard, 1.) ];
    distinct_objects = true;
  }

let small =
  {
    paper_default with
    n_objects = 100;
    selects_per_txn = 3;
    updates_per_txn = 3;
  }

let contended =
  {
    paper_default with
    n_objects = 10_000;
    access = Hotspot (0.01, 0.75);
  }

let statements_per_txn t = t.selects_per_txn + t.updates_per_txn + 1

let validate t =
  if t.n_objects <= 0 then Error "n_objects must be positive"
  else if t.selects_per_txn < 0 || t.updates_per_txn < 0 then
    Error "statement counts must be non-negative"
  else if t.selects_per_txn + t.updates_per_txn = 0 then
    Error "transactions must contain at least one statement"
  else if t.abort_fraction < 0. || t.abort_fraction > 1. then
    Error "abort_fraction must be within [0,1]"
  else if t.read_only_fraction < 0. || t.read_only_fraction > 1. then
    Error "read_only_fraction must be within [0,1]"
  else if t.sla_mix = [] then Error "sla_mix must be non-empty"
  else if List.exists (fun (_, w) -> w < 0.) t.sla_mix then
    Error "sla_mix weights must be non-negative"
  else if List.fold_left (fun acc (_, w) -> acc +. w) 0. t.sla_mix <= 0. then
    Error "sla_mix weights must not all be zero"
  else if
    t.distinct_objects
    && t.selects_per_txn + t.updates_per_txn > t.n_objects
  then Error "distinct_objects needs n_objects >= statements per transaction"
  else
    match t.access with
    | Zipf theta when theta < 0. || theta >= 1. ->
      Error "zipf skew must be within [0,1)"
    | Hotspot (frac, prob)
      when frac <= 0. || frac >= 1. || prob < 0. || prob > 1. ->
      Error "hotspot parameters out of range"
    | Partitioned (groups, escape)
      when groups < 1 || groups > t.n_objects || escape < 0. || escape > 1. ->
      Error "partitioned parameters out of range"
    | Partitioned (groups, escape)
      when t.distinct_objects && escape = 0.
           && t.selects_per_txn + t.updates_per_txn > t.n_objects / groups ->
      (* with no escape every draw stays in the home group, which must then
         hold enough distinct objects for a whole transaction *)
      Error "partitioned groups too small for distinct_objects"
    | Uniform | Zipf _ | Hotspot _ | Partitioned _ -> Ok ()

let pp ppf t =
  Format.fprintf ppf
    "{objects=%d; selects=%d; updates=%d; order=%s; access=%s; aborts=%.2f}"
    t.n_objects t.selects_per_txn t.updates_per_txn
    (match t.order with
    | Interleaved -> "interleaved"
    | Reads_first -> "reads-first"
    | Shuffled -> "shuffled")
    (match t.access with
    | Uniform -> "uniform"
    | Zipf theta -> Printf.sprintf "zipf(%.2f)" theta
    | Hotspot (f, p) -> Printf.sprintf "hotspot(%.2f,%.2f)" f p
    | Partitioned (g, e) -> Printf.sprintf "partitioned(%d,%.2f)" g e)
    t.abort_fraction
