(** Discrete-event simulation engine: a virtual clock plus an event queue of
    callbacks. All "time" in experiments is virtual time of this clock, which
    is what makes 600 concurrent clients reproducible on one core. *)

type t

val create : unit -> t

(** Current virtual time, seconds. *)
val now : t -> float

(** [schedule t ~after f] runs [f ()] at [now t +. after].
    @raise Invalid_argument if [after < 0]. *)
val schedule : t -> after:float -> (unit -> unit) -> Event_heap.token

(** [schedule_at t ~time f] runs [f ()] at absolute [time >= now]. *)
val schedule_at : t -> time:float -> (unit -> unit) -> Event_heap.token

val cancel : Event_heap.token -> unit

(** Number of pending (non-cancelled) events. *)
val pending : t -> int

(** Runs events until the queue empties. *)
val run : t -> unit

(** Runs events with time <= [until]; afterwards [now t = until] (even if the
    queue emptied earlier) so measurement windows close crisply. *)
val run_until : t -> until:float -> unit

(** Runs at most one event; false if the queue was empty. *)
val step : t -> bool

(** [join n k] is a fork-join barrier for merging concurrent spans: it
    returns a callback whose [n]-th invocation runs [k ()]. Invoking it more
    than [n] times raises. Used to join per-worker sub-batch completions
    into one batch completion.
    @raise Invalid_argument if [n <= 0]. *)
val join : int -> (unit -> unit) -> unit -> unit
