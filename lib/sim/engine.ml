type t = { mutable now : float; heap : (unit -> unit) Event_heap.t }

let create () = { now = 0.; heap = Event_heap.create () }

let now t = t.now

let schedule_at t ~time f =
  if time < t.now then invalid_arg "Engine.schedule_at: time in the past";
  Event_heap.push t.heap ~time f

let schedule t ~after f =
  if after < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.now +. after) f

let cancel = Event_heap.cancel

let pending t = Event_heap.size t.heap

let step t =
  match Event_heap.pop t.heap with
  | None -> false
  | Some (time, f) ->
    t.now <- time;
    f ();
    true

let run t = while step t do () done

let join n k =
  if n <= 0 then invalid_arg "Engine.join: n must be positive";
  let remaining = ref n in
  fun () ->
    if !remaining <= 0 then invalid_arg "Engine.join: already released";
    decr remaining;
    if !remaining = 0 then k ()

let run_until t ~until =
  let rec loop () =
    match Event_heap.peek_time t.heap with
    | Some time when time <= until ->
      if step t then loop ()
    | Some _ | None -> ()
  in
  loop ();
  if t.now < until then t.now <- until
