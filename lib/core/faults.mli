(** Deterministic fault injection for the middleware loop.

    The paper positions the declarative scheduler as middleware for highly
    scalable systems; a middleware is only a system once it survives the
    failures such systems produce (Gray, "Queues Are Databases"). This module
    is a seeded fault {e plan} plus the runtime state needed to inject it:

    - {b transient batch failures}: a dispatched server batch fails at a
      random request; the remaining suffix must be retried;
    - {b stalls}: one request of a batch takes [stall_duration] extra
      seconds, tripping the middleware's per-batch timeout;
    - {b poison requests}: requests that fail on {e every} execution attempt
      (decided by a deterministic hash, so a poison request is still poison
      after a retry or a crash recovery);
    - {b client disconnects}: a client abandons its transaction after a few
      statements, leaving the middleware to clean up;
    - {b a middleware crash} at a chosen scheduler cycle, followed by a live
      {!Journal.recover}/{!Journal.restore} and continuation of the run.

    All randomness is drawn from a {!Ds_sim.Rng} stream, so a run with a
    fixed seed and a fixed plan is exactly reproducible. *)

open Ds_model

type plan = {
  batch_fail_rate : float;  (** per batch attempt: whole-batch transient failure *)
  stall_rate : float;  (** per batch attempt: one request stalls *)
  stall_duration : float;  (** seconds a stalled request hangs before completing *)
  poison_rate : float;  (** per data request: always-failing request *)
  disconnect_rate : float;  (** per transaction: client disconnects mid-txn *)
  crash_at_cycle : int option;
      (** crash the middleware at this scheduler cycle and recover from the
          journal *)
  worker_crash_rate : float;
      (** per dispatched batch: one pool worker crashes between conflict
          classes; its unstarted classes are reassigned and it rejoins at the
          next batch *)
  worker_death_rate : float;
      (** per dispatched batch: one pool worker dies permanently for the rest
          of the run *)
  worker_stall_rate : float;
      (** per dispatched batch: one pool worker turns straggler, adding
          [worker_stall_duration]-scaled latency to each class it runs *)
  worker_stall_duration : float;  (** straggler slowdown scale, in seconds *)
  pcrash_at_cycle : int option;
      (** kill the {e primary} permanently at this scheduler cycle and
          promote the hot standby (needs a replication session — see
          [Middleware.config.repl]); unlike [crash_at_cycle] the dead
          primary's disk is never consulted *)
}

(** The zero plan: no faults. [Middleware.default_config] uses it. *)
val none : plan

val is_none : plan -> bool

(** True iff the plan injects any worker-scoped fault (crash, permanent
    death or straggler stall). *)
val has_worker_faults : plan -> bool

(** @return [Error _] on negative rates, rates above 1, or a non-positive
    crash cycle. *)
val validate : plan -> (unit, string) result

(** Parses a compact spec like
    ["batch=0.1,stall=0.05,stall-dur=0.05,poison=0.01,disconnect=0.02,crash=40"].
    Worker-scoped faults use [wcrash=R,wdeath=R,wstall=R,wstall-dur=S];
    [pcrash=N] kills the primary at cycle [N] (hot-standby failover).
    Every key is optional; unknown keys are errors. *)
val plan_of_string : string -> (plan, string) result

val plan_to_string : plan -> string
val pp_plan : Format.formatter -> plan -> unit

(** [backoff ~base ~cap ~attempt] — capped exponential retry backoff:
    [min cap (base *. 2^(min 10 attempt))]. The exponent clamp keeps the
    shift well inside native-int range for any attempt count; the result is
    monotone non-decreasing in [attempt] and never exceeds [cap]. *)
val backoff : base:float -> cap:float -> attempt:int -> float

type t

(** [create plan rng] — [rng] drives every probabilistic draw. *)
val create : plan -> Ds_sim.Rng.t -> t

val plan : t -> plan

(** Draw this batch attempt's fate: possibly choose a victim request that
    will fail and/or one that will stall. Must be called once per dispatch
    attempt (retries included) before the batch executes. *)
val begin_attempt : t -> Request.t list -> unit

(** The backend's per-request failure hook (see
    {!Ds_server.Backend.set_fault_hook}): poison and the current attempt's
    victims fail or stall, everything else proceeds. *)
val request_outcome : t -> Request.t -> [ `Ok | `Fail | `Stall of float ]

(** Deterministic per-request poison predicate (stable across retries and
    crash recovery; terminals are never poison). *)
val is_poison : t -> Request.t -> bool

(** Drawn at transaction start: [Some n] means the client disconnects after
    its [n]-th executed data statement. *)
val draw_disconnect_after : t -> data_stmts:int -> int option

(** Injected-fault counters (transient batch failures / stalls drawn so
    far). *)
val injected_failures : t -> int

val injected_stalls : t -> int

(** A worker-scoped fault drawn for one dispatched batch. [Worker_crash]
    fires {e between} conflict classes — the victim completes [after] more
    classes, then its remaining unstarted classes are reassigned (safe
    because classes are disjoint) and the worker rejoins at the next batch.
    [Worker_death] removes the worker for the rest of the run.
    [Worker_stall] slows every class the victim runs by [delay], making it a
    straggler that the pool's hedging can race. *)
type worker_fault =
  | Worker_crash of { worker : int; after : int }
  | Worker_death of { worker : int }
  | Worker_stall of { worker : int; delay : float }

(** [draw_worker_faults t ~alive] — draw this batch's worker fates among the
    currently-alive worker ids. At most one fault per channel per batch;
    crash/death need at least two alive workers (never kill the last
    survivor). Draws are gated on nonzero rates so zero-rate plans consume
    no randomness from this channel. *)
val draw_worker_faults : t -> alive:int list -> worker_fault list

val injected_worker_crashes : t -> int
val injected_worker_deaths : t -> int
val injected_worker_stalls : t -> int
