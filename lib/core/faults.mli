(** Deterministic fault injection for the middleware loop.

    The paper positions the declarative scheduler as middleware for highly
    scalable systems; a middleware is only a system once it survives the
    failures such systems produce (Gray, "Queues Are Databases"). This module
    is a seeded fault {e plan} plus the runtime state needed to inject it:

    - {b transient batch failures}: a dispatched server batch fails at a
      random request; the remaining suffix must be retried;
    - {b stalls}: one request of a batch takes [stall_duration] extra
      seconds, tripping the middleware's per-batch timeout;
    - {b poison requests}: requests that fail on {e every} execution attempt
      (decided by a deterministic hash, so a poison request is still poison
      after a retry or a crash recovery);
    - {b client disconnects}: a client abandons its transaction after a few
      statements, leaving the middleware to clean up;
    - {b a middleware crash} at a chosen scheduler cycle, followed by a live
      {!Journal.recover}/{!Journal.restore} and continuation of the run.

    All randomness is drawn from a {!Ds_sim.Rng} stream, so a run with a
    fixed seed and a fixed plan is exactly reproducible. *)

open Ds_model

type plan = {
  batch_fail_rate : float;  (** per batch attempt: whole-batch transient failure *)
  stall_rate : float;  (** per batch attempt: one request stalls *)
  stall_duration : float;  (** seconds a stalled request hangs before completing *)
  poison_rate : float;  (** per data request: always-failing request *)
  disconnect_rate : float;  (** per transaction: client disconnects mid-txn *)
  crash_at_cycle : int option;
      (** crash the middleware at this scheduler cycle and recover from the
          journal *)
}

(** The zero plan: no faults. [Middleware.default_config] uses it. *)
val none : plan

val is_none : plan -> bool

(** @return [Error _] on negative rates, rates above 1, or a non-positive
    crash cycle. *)
val validate : plan -> (unit, string) result

(** Parses a compact spec like
    ["batch=0.1,stall=0.05,stall-dur=0.05,poison=0.01,disconnect=0.02,crash=40"].
    Every key is optional; unknown keys are errors. *)
val plan_of_string : string -> (plan, string) result

val plan_to_string : plan -> string
val pp_plan : Format.formatter -> plan -> unit

type t

(** [create plan rng] — [rng] drives every probabilistic draw. *)
val create : plan -> Ds_sim.Rng.t -> t

val plan : t -> plan

(** Draw this batch attempt's fate: possibly choose a victim request that
    will fail and/or one that will stall. Must be called once per dispatch
    attempt (retries included) before the batch executes. *)
val begin_attempt : t -> Request.t list -> unit

(** The backend's per-request failure hook (see
    {!Ds_server.Backend.set_fault_hook}): poison and the current attempt's
    victims fail or stall, everything else proceeds. *)
val request_outcome : t -> Request.t -> [ `Ok | `Fail | `Stall of float ]

(** Deterministic per-request poison predicate (stable across retries and
    crash recovery; terminals are never poison). *)
val is_poison : t -> Request.t -> bool

(** Drawn at transaction start: [Some n] means the client disconnects after
    its [n]-th executed data statement. *)
val draw_disconnect_after : t -> data_stmts:int -> int option

(** Injected-fault counters (transient batch failures / stalls drawn so
    far). *)
val injected_failures : t -> int

val injected_stalls : t -> int
