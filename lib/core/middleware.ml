open Ds_model
open Ds_sim
open Ds_workload

(* Hot-standby replication is provided by the [ds_replica] library, which
   depends on this one; the middleware sees it only through this closure
   record (constructed by [Ds_replica.Session.hooks]) so the dependency
   stays one-way. *)
type repl_promotion = {
  rp_recovered : Journal.recovered;
  rp_journal : Journal.t;
  rp_epoch : int;
}

type repl_status = {
  rs_epoch : int;
  rs_watermark : int;
  rs_primary_lsn : int;
  rs_lag : int;
  rs_fenced : int;
  rs_divergences : int;
  rs_sync : bool;
}

type repl_hooks = {
  repl_attach : Journal.t -> unit;
  repl_set_clock : (unit -> float) -> unit;
  repl_pump : now:float -> unit;
  repl_synced : ta:int -> bool;
  repl_promote : unit -> repl_promotion;
  repl_status : unit -> repl_status;
}

type config = {
  n_clients : int;
  duration : float;
  spec : Spec.t;
  cost : Ds_server.Cost_model.t;
  workers : int;
  shards : int;
  seed : int;
  protocol : Protocol.t;
  trigger : Trigger.t;
  extended_relations : bool;
  charge_scheduler_time : bool;
  prune_history : bool;
  starvation_cycles : int;
  passthrough : bool;
  faults : Faults.plan;
  max_retries : int;
  retry_base : float;
  retry_cap : float;
  batch_timeout : float option;
  queue_capacity : int option;
  journal_path : string option;
  sync_journal : bool;
  checkpoint_interval : int option;
  deadline_factor : float option;
  hedging : bool;
  client_redo : bool;
  repl : repl_hooks option;
  trace : Ds_obs.Trace.t option;
  metrics : Ds_obs.Metrics.t option;
}

let default_config =
  {
    n_clients = 10;
    duration = 10.;
    spec = Spec.paper_default;
    cost = Ds_server.Cost_model.default;
    workers = 1;
    shards = 1;
    seed = 42;
    protocol = Builtin.ss2pl_ocaml;
    trigger = Trigger.Hybrid (0.01, 50);
    extended_relations = false;
    charge_scheduler_time = true;
    prune_history = true;
    starvation_cycles = 50;
    passthrough = false;
    faults = Faults.none;
    max_retries = 3;
    retry_base = 0.01;
    retry_cap = 0.5;
    batch_timeout = None;
    queue_capacity = None;
    journal_path = None;
    sync_journal = false;
    checkpoint_interval = None;
    deadline_factor = None;
    hedging = false;
    client_redo = false;
    repl = None;
    trace = None;
    metrics = None;
  }

type stats = {
  committed_txns : int;
  committed_stmts : int;
  aborted_txns : int;
  cycles : int;
  mean_cycle_time : float;
  p95_cycle_time : float;
  mean_batch : float;
  mean_pending : float;
  scheduler_time : float;
  mean_txn_latency : float;
  p95_txn_latency : float;
  latency_by_tier : (Sla.tier * float * float * int) list;
  retries : int;
  timeouts : int;
  injected_failures : int;
  injected_stalls : int;
  shed_txns : int;
  backpressure_waits : int;
  dead_lettered : int;
  disconnects : int;
  crashes : int;
  workers : int;
  batches_dispatched : int;
  mean_batch_makespan : float;
  p95_batch_makespan : float;
  worker_crashes : int;
  worker_deaths : int;
  worker_stalls : int;
  reassigned_classes : int;
  hedged_classes : int;
  checkpoints : int;
  recovery_replayed : int;
  recovery_skipped : int;
  recovery_time : float;
  shards : int;
  global_lane_txns : int;
  shard_deferrals : int;
  failovers : int;
  repl_epoch : int;
  repl_watermark : int;
  repl_lag : int;
  repl_fenced : int;
  repl_divergences : int;
}

type client = {
  cid : int;
  gen : Generator.t;
  mutable txn : Txn.t;
  mutable remaining : Request.t list;
  mutable txn_start : float;
  mutable outstanding : Request.t option;
  mutable stall_cycles : int;
  mutable data_stmts : int;  (** executed data statements of current txn *)
  mutable disconnect_after : int option;
      (** injected fault: client disconnects after this many data stmts *)
  mutable redo : Txn.t option;
      (** with [client_redo], the txn to re-run after a middleware abort *)
  mutable lane : int;  (** scheduler lane the current txn is routed to *)
  mutable entered : bool;
      (** the current txn has submitted at least one request to its lane
          (counted in the lane's [active]) and has not yet ended *)
}

(* One dispatch attempt of a batch. [closed] flips when the attempt ends
   (completion, failure handling, timeout) and suppresses late events from the
   server — after a timeout the server may still grind through the abandoned
   suffix, but those completions are wasted work, not deliveries. *)
type attempt = {
  mutable closed : bool;
  mutable undelivered : Request.t list;
}

(* One scheduler lane. At S=1 there is exactly one lane holding today's
   single scheduler; at S>1 there are S shard lanes (lane [i] owns object
   group [i]) plus the global lane at index S, which runs the multi-group
   transactions behind a drain barrier. Each lane owns a full scheduler
   (requests/history relations, prepared protocol query), its own backend
   pool and its own journal segment. *)
type lane = {
  lane_id : int;
  pool : Ds_server.Worker_pool.t;
  mutable sched : Scheduler.t;
  mutable journal : Journal.t option;
  journal_path : string option;
  mutable fire_pending : bool;
  mutable last_cycle_at : float;
  mutable active : int;
      (** entered, unfinished transactions routed to this lane *)
  mutable holding : int;
      (** transactions with admitted (= lock-holding, under SS2PL)
          requests in this lane; only maintained at S>1 *)
}

type sim = {
  cfg : config;
  engine : Engine.t;
  lanes : lane array;
  clients : client array;
  by_ta : (int, client) Hashtbl.t;
  rng : Rng.t;
  route_of : (int, int) Hashtbl.t;
      (** ta -> lane id, for the whole run (never pruned: the checker's
          shard_of view) *)
  holding_tas : (int, unit) Hashtbl.t;
      (** transactions currently counted in some lane's [holding] *)
  stamps : (int * int, int) Hashtbl.t;
      (** qualified key -> global admission sequence (S>1 only) *)
  gseq : int ref;  (** next global admission sequence number *)
  stamp : (Request.t -> int) option;
      (** the {!Scheduler.create} stamp hook shared by every lane (S>1) *)
  mutable faults : Faults.t option;
  mutable epoch : int;  (** bumped at crash; stale server callbacks check it *)
  mutable crash_done : bool;
  mutable pcrash_done : bool;
  mutable failed_over : bool;
      (** the standby was promoted; sync-mode ack gating is off from here *)
  mutable failovers : int;
  repl_sync : bool;  (** replication session present and in sync mode *)
  mutable cycles_done : int;
  mutable ta_counter : int;
  mutable req_counter : int;
  mutable deliveries : int;
      (** run-global delivery counter — the [pos] column of [assignment] *)
  mutable committed_txns : int;
  mutable committed_stmts : int;
  mutable aborted_txns : int;
  fail_streaks : (int * int, int) Hashtbl.t;
      (** consecutive failed attempts per request key; cleared on delivery *)
  mutable retries : int;
  mutable timeouts : int;
  mutable shed_txns : int;
  mutable backpressure_waits : int;
  mutable dead_lettered : int;
  mutable disconnects : int;
  mutable crashes : int;
  mutable global_lane_txns : int;
  mutable shard_deferrals : int;
  mutable checkpoints_acc : int;
      (** checkpoints written by journals already crashed and replaced *)
  mutable recovery_replayed : int;
  mutable recovery_skipped : int;
  mutable recovery_time : float;
  cycle_times : Ds_stats.Summary.t;
  cycle_times_hist : Ds_stats.Histogram.t;
  batch_sizes : Ds_stats.Summary.t;
  pending_sizes : Ds_stats.Summary.t;
  latencies : Ds_stats.Histogram.t;
  tier_latencies : (Sla.tier, Ds_stats.Histogram.t * int ref) Hashtbl.t;
}

let fresh_ta sim client =
  sim.ta_counter <- sim.ta_counter + 1;
  Hashtbl.replace sim.by_ta sim.ta_counter client;
  sim.ta_counter

let renumber sim (r : Request.t) =
  sim.req_counter <- sim.req_counter + 1;
  { r with Request.id = sim.req_counter; arrival = Engine.now sim.engine }

(* Deterministic shard router: a transaction's object-group footprint is the
   set of [obj mod S] over its data operations. Single-group transactions go
   to the owning shard lane; terminal-only ones (no data footprint) hash by
   TA; multi-group transactions escalate to the global lane [S]. *)
let route sim (txn : Txn.t) ~ta =
  let s = sim.cfg.shards in
  if s <= 1 then 0
  else begin
    let groups = Hashtbl.create 8 in
    List.iter
      (fun (r : Request.t) ->
        match r.Request.obj with
        | Some o -> Hashtbl.replace groups (o mod s) ()
        | None -> ())
      txn.Txn.requests;
    match Hashtbl.length groups with
    | 0 -> ta mod s
    | 1 -> Hashtbl.fold (fun g () _ -> g) groups 0
    | _ -> s
  end

let lane_of sim ta =
  match Hashtbl.find_opt sim.route_of ta with
  | Some l -> sim.lanes.(l)
  | None -> sim.lanes.(0)

(* A lane with queued, pending or in-flight transactions. "In-flight"
   ([active]) matters because a transaction between statements — last
   response delivered, next not yet submitted — is invisible to both queue
   and pending counts. *)
let lane_busy lane =
  lane.active > 0
  || Scheduler.queue_length lane.sched > 0
  || Scheduler.pending_count lane.sched > 0

(* SS2PL across lanes: the global lane admits work only when every shard
   lane is fully drained (its conflicts may span any pair of shards), and
   shard lanes admit work only while no global transaction holds locks.
   Global transactions merely *queued* don't block shard cycles — the
   shard lanes must keep cycling to drain toward the barrier. *)
let barrier_clear sim lane =
  let s = sim.cfg.shards in
  if s <= 1 then true
  else if lane.lane_id = s then begin
    let clear = ref true in
    for i = 0 to s - 1 do
      if lane_busy sim.lanes.(i) then clear := false
    done;
    !clear
  end
  else sim.lanes.(s).holding = 0

(* Centralized transaction teardown: every way a transaction leaves the
   system (terminal delivered, starved, shed, dead-lettered, disconnected,
   reconciled away after a crash) goes through here so the lane [active] /
   [holding] counts the barrier relies on stay consistent. *)
let end_txn sim ta =
  (match Hashtbl.find_opt sim.by_ta ta with
  | Some c ->
    Hashtbl.remove sim.by_ta ta;
    if c.entered then begin
      c.entered <- false;
      let l = lane_of sim ta in
      l.active <- l.active - 1
    end
  | None -> ());
  if Hashtbl.mem sim.holding_tas ta then begin
    Hashtbl.remove sim.holding_tas ta;
    let l = lane_of sim ta in
    l.holding <- l.holding - 1
  end

let rec start_txn sim client =
  let ta = fresh_ta sim client in
  (match client.redo with
  | Some txn ->
    (* Client-side transaction retry: re-run the aborted transaction's
       operations under a fresh TA (new locks, new poison hash). *)
    client.redo <- None;
    let ops =
      List.map
        (fun (r : Request.t) -> (r.Request.op, r.Request.obj))
        txn.Txn.requests
    in
    client.txn <- Txn.make ~ta ~sla:txn.Txn.sla ops
  | None -> client.txn <- Generator.next_txn client.gen ~ta);
  client.remaining <- client.txn.Txn.requests;
  client.txn_start <- Engine.now sim.engine;
  client.data_stmts <- 0;
  client.stall_cycles <- 0;
  (client.disconnect_after <-
     (match sim.faults with
     | Some f ->
       let data =
         List.length (List.filter Request.is_data client.txn.Txn.requests)
       in
       Faults.draw_disconnect_after f ~data_stmts:data
     | None -> None));
  let lane_id = route sim client.txn ~ta in
  client.lane <- lane_id;
  client.entered <- false;
  Hashtbl.replace sim.route_of ta lane_id;
  if sim.cfg.shards > 1 then begin
    if lane_id = sim.cfg.shards then
      sim.global_lane_txns <- sim.global_lane_txns + 1;
    Relations.record_shard_assignment
      (Scheduler.relations sim.lanes.(lane_id).sched)
      ~cycle:sim.cycles_done ~shard:lane_id ~ta;
    Ds_obs.Trace.emit sim.cfg.trace Ds_obs.Trace.Shard_route ~ta ~seq:(-1)
      ~arg:lane_id ()
  end;
  begin_txn sim client

(* Lane admission control: a NEW shard-lane transaction holds off (timer
   retry) while the global lane has outstanding work, so the shard lanes
   drain toward the barrier instead of starving the global lane forever.
   Global-lane transactions enqueue immediately — they wait at the barrier
   inside their own lane. Never defers at S=1. *)
and begin_txn sim client =
  let s = sim.cfg.shards in
  if s > 1 && client.lane < s && lane_busy sim.lanes.(s) then begin
    sim.shard_deferrals <- sim.shard_deferrals + 1;
    ignore
      (Engine.schedule sim.engine ~after:0.001 (fun () -> begin_txn sim client))
  end
  else begin
    client.entered <- true;
    let l = sim.lanes.(client.lane) in
    l.active <- l.active + 1;
    submit_next sim client
  end

and restart_client ?(redo = false) sim client =
  if redo && sim.cfg.client_redo then client.redo <- Some client.txn;
  let backoff = 0.001 *. (1. +. Rng.float sim.rng) in
  ignore (Engine.schedule sim.engine ~after:backoff (fun () -> start_txn sim client))

and submit_next sim client =
  match client.remaining with
  | [] -> ()
  | req :: rest -> (
    let req = renumber sim req in
    let lane = sim.lanes.(client.lane) in
    let accept () =
      client.remaining <- rest;
      client.outstanding <- Some req;
      client.stall_cycles <- 0
    in
    match sim.cfg.queue_capacity with
    | None ->
      accept ();
      Scheduler.submit lane.sched req;
      maybe_fire sim lane
    | Some cap -> (
      match Scheduler.submit_bounded lane.sched ~capacity:cap req with
      | `Accepted ->
        accept ();
        maybe_fire sim lane
      | `Accepted_shed victim ->
        (* Overload: the queue made room by shedding its least urgent
           request; that transaction is aborted and its client restarts.
           The victim was queued in this same lane, so the abort marker
           lands in the right history. *)
        accept ();
        sim.shed_txns <- sim.shed_txns + 1;
        sim.aborted_txns <- sim.aborted_txns + 1;
        let vta = victim.Request.ta in
        ignore (Scheduler.abort_txn lane.sched vta);
        (match Hashtbl.find_opt sim.by_ta vta with
        | Some vc ->
          end_txn sim vta;
          vc.outstanding <- None;
          restart_client ~redo:true sim vc
        | None -> ());
        maybe_fire sim lane
      | `Rejected ->
        (* Backpressure: nothing queued, nothing journalled — hold the
           request at the client and try again shortly. *)
        sim.backpressure_waits <- sim.backpressure_waits + 1;
        let wait = 0.005 *. (1. +. Rng.float sim.rng) in
        ignore
          (Engine.schedule sim.engine ~after:wait (fun () ->
               submit_next sim client))))

and maybe_fire sim lane =
  let elapsed = Engine.now sim.engine -. lane.last_cycle_at in
  if
    (not lane.fire_pending)
    && Trigger.due sim.cfg.trigger
         ~queue_len:(Scheduler.queue_length lane.sched)
         ~elapsed
  then begin
    lane.fire_pending <- true;
    ignore (Engine.schedule sim.engine ~after:0. (fun () -> run_cycle sim lane))
  end

and run_cycle sim lane =
  lane.fire_pending <- false;
  lane.last_cycle_at <- Engine.now sim.engine;
  let crash_now =
    match sim.faults with
    | Some f -> (
      match (Faults.plan f).Faults.crash_at_cycle with
      | Some c -> (not sim.crash_done) && sim.cycles_done + 1 >= c
      | None -> false)
    | None -> false
  in
  let pcrash_now =
    match sim.faults with
    | Some f -> (
      match (Faults.plan f).Faults.pcrash_at_cycle with
      | Some c -> (not sim.pcrash_done) && sim.cycles_done + 1 >= c
      | None -> false)
    | None -> false
  in
  if crash_now then begin
    sim.crash_done <- true;
    crash_and_recover sim
  end
  else if pcrash_now then begin
    sim.pcrash_done <- true;
    failover_promote sim
  end
  else if not (barrier_clear sim lane) then begin
    (* Cross-shard barrier: this lane may not admit work right now. Hold
       the fire and retry shortly — deliveries on the other lanes are what
       eventually clear it. Never taken at S=1. *)
    lane.fire_pending <- true;
    ignore
      (Engine.schedule sim.engine ~after:0.001 (fun () -> run_cycle sim lane))
  end
  else if
    Scheduler.queue_length lane.sched > 0
    || Scheduler.pending_count lane.sched > 0
  then begin
    let qualified, stats =
      Scheduler.cycle ~passthrough:sim.cfg.passthrough lane.sched
    in
    sim.cycles_done <- sim.cycles_done + 1;
    (match sim.cfg.repl with
    | Some h ->
      let st = h.repl_status () in
      Relations.record_replication
        (Scheduler.relations lane.sched)
        ~cycle:sim.cycles_done ~epoch:st.rs_epoch ~watermark:st.rs_watermark
        ~lag:st.rs_lag
    | None -> ());
    if sim.cfg.shards > 1 then
      (* lock-holder accounting for the barrier: a transaction holds locks
         from its first admitted request until it ends *)
      List.iter
        (fun (r : Request.t) ->
          let ta = r.Request.ta in
          if not (Hashtbl.mem sim.holding_tas ta) then begin
            Hashtbl.replace sim.holding_tas ta ();
            lane.holding <- lane.holding + 1
          end)
        qualified;
    let dt = Scheduler.total_time stats.Scheduler.times in
    Ds_stats.Summary.add sim.cycle_times dt;
    Ds_stats.Histogram.add sim.cycle_times_hist dt;
    Ds_stats.Summary.add sim.batch_sizes (float_of_int stats.Scheduler.qualified);
    Ds_stats.Summary.add sim.pending_sizes
      (float_of_int stats.Scheduler.pending_before);
    Option.iter
      (fun m ->
        Ds_obs.Metrics.record_cycle m ~drained:stats.Scheduler.drained
          ~pending_before:stats.Scheduler.pending_before
          ~qualified:stats.Scheduler.qualified
          ~query_time:stats.Scheduler.times.Scheduler.query
          ~index_time:stats.Scheduler.index_time ())
      sim.cfg.metrics;
    (* Starvation accounting: clients routed to THIS lane whose outstanding
       request is still pending after this cycle. (A request can only ever
       qualify in its own lane's cycles, so other lanes' clients are not
       stalled by this one.) At S=1 every client is on lane 0, which is the
       historical behavior. *)
    let qualified_keys = Hashtbl.create 64 in
    List.iter
      (fun r -> Hashtbl.replace qualified_keys (Request.key r) ())
      qualified;
    Array.iter
      (fun c ->
        match c.outstanding with
        | Some o
          when c.lane = lane.lane_id
               && not (Hashtbl.mem qualified_keys (Request.key o)) ->
          c.stall_cycles <- c.stall_cycles + 1;
          if c.stall_cycles >= sim.cfg.starvation_cycles then begin
            let ta = o.Request.ta in
            ignore (Scheduler.abort_txn lane.sched ta);
            end_txn sim ta;
            sim.aborted_txns <- sim.aborted_txns + 1;
            c.outstanding <- None;
            restart_client ~redo:true sim c
          end
        | _ -> ())
      sim.clients;
    let dispatch_delay = if sim.cfg.charge_scheduler_time then dt else 0. in
    let epoch = sim.epoch in
    let cycle = sim.cycles_done in
    ignore
      (Engine.schedule sim.engine ~after:dispatch_delay (fun () ->
           if sim.epoch = epoch then dispatch sim lane ~epoch ~cycle qualified))
  end

and dispatch sim lane ~epoch ~cycle requests =
  if requests <> [] then begin
    List.iter
      (fun r -> Ds_obs.Trace.emit_req sim.cfg.trace Ds_obs.Trace.Dispatched r)
      requests;
    Option.iter (fun f -> Faults.begin_attempt f requests) sim.faults;
    let att = { closed = false; undelivered = requests } in
    let live () = (not att.closed) && sim.epoch = epoch in
    Option.iter
      (fun d ->
        ignore
          (Engine.schedule sim.engine ~after:d (fun () ->
               if live () then begin
                 att.closed <- true;
                 sim.timeouts <- sim.timeouts + 1;
                 match att.undelivered with
                 | [] -> ()
                 | r :: _ ->
                   handle_failure sim lane ~epoch ~cycle r att.undelivered
               end)))
      sim.cfg.batch_timeout;
    Ds_server.Worker_pool.execute lane.pool requests
      ~on_each:(fun ~worker ~cls ~pos:_ r ->
        if live () then begin
          (* Parallel workers complete out of batch order, so drop the
             delivered request by key rather than by head match. *)
          let key = Request.key r in
          att.undelivered <-
            List.filter (fun q -> Request.key q <> key) att.undelivered;
          Hashtbl.remove sim.fail_streaks key;
          let pos = sim.deliveries in
          sim.deliveries <- sim.deliveries + 1;
          Relations.record_assignment
            (Scheduler.relations lane.sched)
            ~cycle ~cls ~worker ~pos r;
          deliver sim r
        end)
      (fun result ->
        if live () then begin
          att.closed <- true;
          match result with
          | `Completed -> ()
          | `Failed r -> handle_failure sim lane ~epoch ~cycle r att.undelivered
        end)
  end

and handle_failure sim lane ~epoch ~cycle failed undelivered =
  let key = Request.key failed in
  let streak =
    1 + Option.value ~default:0 (Hashtbl.find_opt sim.fail_streaks key)
  in
  Hashtbl.replace sim.fail_streaks key streak;
  if streak > sim.cfg.max_retries then begin
    (* Poison: the same request failed every attempt. Dead-letter it, abort
       its transaction and keep the rest of the batch moving. *)
    Hashtbl.remove sim.fail_streaks key;
    sim.dead_lettered <- sim.dead_lettered + 1;
    sim.aborted_txns <- sim.aborted_txns + 1;
    Scheduler.dead_letter lane.sched failed;
    let ta = failed.Request.ta in
    ignore (Scheduler.abort_txn lane.sched ta);
    (match Hashtbl.find_opt sim.by_ta ta with
    | Some c ->
      end_txn sim ta;
      c.outstanding <- None;
      restart_client ~redo:true sim c
    | None -> ());
    let rest = List.filter (fun q -> Request.key q <> key) undelivered in
    dispatch sim lane ~epoch ~cycle rest
  end
  else begin
    sim.retries <- sim.retries + 1;
    Ds_obs.Trace.emit_req sim.cfg.trace ~arg:streak Ds_obs.Trace.Retry failed;
    let backoff =
      Faults.backoff ~base:sim.cfg.retry_base ~cap:sim.cfg.retry_cap
        ~attempt:(streak - 1)
      *. (1. +. (0.5 *. Rng.float sim.rng))
    in
    ignore
      (Engine.schedule sim.engine ~after:backoff (fun () ->
           if sim.epoch = epoch then dispatch sim lane ~epoch ~cycle undelivered))
  end

and deliver sim (req : Request.t) =
  match Hashtbl.find_opt sim.by_ta req.Request.ta with
  | None -> () (* aborted meanwhile *)
  | Some client -> (
    match client.outstanding with
    | Some o
      when Request.key o = Request.key req
           && (not (Request.is_data req))
           && sim.repl_sync
           && (not sim.failed_over)
           && not
                (match sim.cfg.repl with
                | Some h -> h.repl_synced ~ta:req.Request.ta
                | None -> true) ->
      (* Sync replication gates the commit ack: the response stays with the
         middleware until the transaction's journal records are at or below
         the standby's watermark. The epoch capture kills a held ack if the
         primary dies meanwhile — the promoted standby's reconciliation
         decides the transaction's fate instead. *)
      let epoch = sim.epoch in
      ignore
        (Engine.schedule sim.engine ~after:0.002 (fun () ->
             if sim.epoch = epoch then deliver sim req))
    | Some o when Request.key o = Request.key req ->
      client.outstanding <- None;
      if Request.is_data req then begin
        client.data_stmts <- client.data_stmts + 1;
        match client.disconnect_after with
        | Some n when client.data_stmts >= n ->
          (* Injected fault: the client vanishes mid-transaction; the
             middleware aborts the orphan and the client reconnects. *)
          sim.disconnects <- sim.disconnects + 1;
          sim.aborted_txns <- sim.aborted_txns + 1;
          let ta = req.Request.ta in
          ignore (Scheduler.abort_txn (lane_of sim ta).sched ta);
          end_txn sim ta;
          restart_client sim client
        | _ -> submit_next sim client
      end
      else begin
        (* Terminal executed: transaction complete. *)
        let now = Engine.now sim.engine in
        end_txn sim req.Request.ta;
        Ds_obs.Trace.emit_txn sim.cfg.trace
          ~tier:(Sla.tier_to_string client.txn.Txn.sla.Sla.tier)
          (if Op.equal req.Request.op Op.Commit then Ds_obs.Trace.Commit
           else Ds_obs.Trace.Abort)
          ~ta:req.Request.ta;
        if now <= sim.cfg.duration && Op.equal req.Request.op Op.Commit then begin
          sim.committed_txns <- sim.committed_txns + 1;
          sim.committed_stmts <- sim.committed_stmts + client.data_stmts;
          let latency = now -. client.txn_start in
          Ds_stats.Histogram.add sim.latencies latency;
          Option.iter
            (fun m ->
              Ds_obs.Metrics.observe_latency m
                ~tier:(Sla.tier_to_string client.txn.Txn.sla.Sla.tier)
                latency)
            sim.cfg.metrics;
          let tier = client.txn.Txn.sla.Sla.tier in
          let hist, count =
            match Hashtbl.find_opt sim.tier_latencies tier with
            | Some entry -> entry
            | None ->
              let entry = (Ds_stats.Histogram.create (), ref 0) in
              Hashtbl.add sim.tier_latencies tier entry;
              entry
          in
          Ds_stats.Histogram.add hist latency;
          incr count
        end;
        start_txn sim client
      end
    | Some _ | None -> ())

and crash_and_recover sim =
  sim.crashes <- sim.crashes + 1;
  (* The epoch bump orphans every in-flight server callback: whatever the
     backends were executing dies with the middleware process. *)
  sim.epoch <- sim.epoch + 1;
  (* Recovery is wall-clock timed end to end (read + replay + restore): with
     checkpointing on, this is the number the recovery bench shows staying
     sublinear in journal length. ~repair truncates any torn tail so the
     reopened journal appends after the trusted prefix. Every lane crashes
     and recovers its own journal segment. *)
  let t0 = Unix.gettimeofday () in
  let recovered_by_lane =
    Array.map
      (fun lane ->
        let path =
          match lane.journal_path with
          | Some p -> p
          | None -> invalid_arg "Middleware: crash fault requires a journal"
        in
        (match lane.journal with
        | Some j ->
          sim.checkpoints_acc <-
            sim.checkpoints_acc + Journal.checkpoints_written j;
          Journal.crash j
        | None -> assert false);
        let recovered = Journal.recover ~repair:true path in
        (* ~state seeds the new journal's state mirror; a checkpoint written
           after a blind reopen would snapshot an empty state. *)
        let j =
          Journal.open_ ~sync:sim.cfg.sync_journal ~state:recovered path
        in
        let sched =
          Scheduler.create ~extended:sim.cfg.extended_relations
            ~prune_history_each_cycle:sim.cfg.prune_history ~journal:j
            ?checkpoint_every:sim.cfg.checkpoint_interval ?trace:sim.cfg.trace
            ?stamp:sim.stamp sim.cfg.protocol
        in
        (* ~rte keeps the execution log continuous across the crash, so the
           whole run still check-validates as one schedule. *)
        Journal.restore ~rte:true recovered (Scheduler.relations sched);
        sim.recovery_replayed <-
          sim.recovery_replayed + recovered.Journal.replayed;
        sim.recovery_skipped <- sim.recovery_skipped + recovered.Journal.skipped;
        Relations.register_workers (Scheduler.relations sched)
          ~workers:sim.cfg.workers
          ~cores:sim.cfg.cost.Ds_server.Cost_model.n_cores;
        Relations.register_shards (Scheduler.relations sched)
          ~shards:sim.cfg.shards;
        lane.journal <- Some j;
        lane.sched <- sched;
        lane.fire_pending <- false;
        recovered)
      sim.lanes
  in
  sim.recovery_time <- sim.recovery_time +. (Unix.gettimeofday () -. t0);
  (* The admission-order clock survives the crash: reseed the stamp table
     from the recovered segments and continue the gseq sequence past the
     largest stamp any segment persisted. *)
  if sim.cfg.shards > 1 then begin
    Hashtbl.reset sim.stamps;
    Array.iter
      (fun (r : Journal.recovered) ->
        List.iter
          (fun ((req : Request.t), g) ->
            match g with
            | Some g ->
              Hashtbl.replace sim.stamps (Request.key req) g;
              if g >= !(sim.gseq) then sim.gseq := g + 1
            | None -> ())
          r.Journal.history_stamped)
      recovered_by_lane
  end;
  (* In-flight retry bookkeeping died with the process. *)
  Hashtbl.reset sim.fail_streaks;
  reconcile_clients sim recovered_by_lane;
  (* Rebuild the barrier accounting from surviving state: [active] from the
     clients still connected to a live transaction, [holding] from the
     restored (lock-holding) histories. *)
  if sim.cfg.shards > 1 then begin
    Hashtbl.reset sim.holding_tas;
    Array.iter
      (fun l ->
        l.active <- 0;
        l.holding <- 0)
      sim.lanes;
    Array.iter
      (fun c ->
        if c.entered then begin
          let l = sim.lanes.(c.lane) in
          l.active <- l.active + 1
        end)
      sim.clients;
    Array.iter
      (fun l ->
        List.iter
          (fun (r : Request.t) ->
            let ta = r.Request.ta in
            if
              (not (Request.is_abort_marker r))
              && Hashtbl.mem sim.by_ta ta
              && not (Hashtbl.mem sim.holding_tas ta)
            then begin
              Hashtbl.replace sim.holding_tas ta ();
              l.holding <- l.holding + 1
            end)
          (Relations.history_requests (Scheduler.relations l.sched)))
      sim.lanes
  end;
  Array.iter (fun l -> maybe_fire sim l) sim.lanes

(* Reconcile every connected client against its own lane's recovered
   relations (at S=1 there is exactly one lane, the historical path). Shared
   by live crash recovery and hot-standby failover — the client contract is
   the same either way. *)
and reconcile_clients sim recovered_by_lane =
  let mem_keys rs =
    let tbl = Hashtbl.create (2 * List.length rs) in
    List.iter (fun r -> Hashtbl.replace tbl (Request.key r) ()) rs;
    fun key -> Hashtbl.mem tbl key
  in
  let views =
    Array.map
      (fun (r : Journal.recovered) ->
        let aborted = Hashtbl.create 16 in
        List.iter
          (fun ta -> Hashtbl.replace aborted ta ())
          r.Journal.aborted;
        ( mem_keys r.Journal.history,
          mem_keys r.Journal.dead,
          mem_keys r.Journal.pending,
          aborted ))
      recovered_by_lane
  in
  Array.iter
    (fun c ->
      match c.outstanding with
      | None -> ()
      | Some req ->
        let in_history, in_dead, in_pending, aborted = views.(c.lane) in
        let lane = sim.lanes.(c.lane) in
        let key = Request.key req in
        let ta = req.Request.ta in
        if Hashtbl.mem aborted ta || in_dead key then begin
          (* The middleware had already given up on this transaction. *)
          end_txn sim ta;
          c.outstanding <- None;
          restart_client ~redo:true sim c
        end
        else if in_history key then begin
          match sim.faults with
          | Some f when Faults.is_poison f req ->
            (* Qualified before the crash but can never execute; dead-letter
               it now instead of re-delivering. *)
            sim.dead_lettered <- sim.dead_lettered + 1;
            sim.aborted_txns <- sim.aborted_txns + 1;
            Scheduler.dead_letter lane.sched req;
            ignore (Scheduler.abort_txn lane.sched ta);
            end_txn sim ta;
            c.outstanding <- None;
            restart_client ~redo:true sim c
          | _ ->
            (* Qualified (= logically executed) but the response was lost in
               the crash: re-deliver it. *)
            ignore
              (Engine.schedule sim.engine ~after:0. (fun () -> deliver sim req))
        end
        else if in_pending key then
          (* Restored into the pending table; it will qualify in a later
             cycle and the client keeps waiting. *)
          ()
        else
          (* The S record was still in the channel buffer when the process
             died; the client resubmits. *)
          Scheduler.submit lane.sched req)
    sim.clients

(* Hot-standby failover: the primary dies permanently (its disk is never
   consulted) and the replication session promotes the warm standby under
   the next epoch.  Structurally a sibling of [crash_and_recover], but the
   continuation state comes from the standby's journal — whatever had not
   crossed the replication watermark is gone, and the client reconciliation
   below is what turns that loss into resubmissions and redos. *)
and failover_promote sim =
  let h =
    match sim.cfg.repl with Some h -> h | None -> assert false
    (* validated: pcrash requires a replication session *)
  in
  sim.failovers <- sim.failovers + 1;
  (* The epoch bump orphans every in-flight server callback and every held
     sync-mode ack: whatever the dead primary still owed its clients is now
     decided by the promoted standby's recovered state. *)
  sim.epoch <- sim.epoch + 1;
  sim.failed_over <- true;
  let lane = sim.lanes.(0) in
  (match lane.journal with
  | Some j ->
    sim.checkpoints_acc <- sim.checkpoints_acc + Journal.checkpoints_written j;
    Journal.crash j
  | None -> assert false);
  let t0 = Unix.gettimeofday () in
  let p = h.repl_promote () in
  let recovered = p.rp_recovered in
  let j = p.rp_journal in
  let sched =
    Scheduler.create ~extended:sim.cfg.extended_relations
      ~prune_history_each_cycle:sim.cfg.prune_history ~journal:j
      ?checkpoint_every:sim.cfg.checkpoint_interval ?trace:sim.cfg.trace
      ?stamp:sim.stamp sim.cfg.protocol
  in
  (* ~rte keeps the execution log continuous across the failover, so the
     whole run still check-validates as one schedule (now truncated at the
     watermark and continued by the new primary). *)
  Journal.restore ~rte:true recovered (Scheduler.relations sched);
  sim.recovery_replayed <- sim.recovery_replayed + recovered.Journal.replayed;
  sim.recovery_skipped <- sim.recovery_skipped + recovered.Journal.skipped;
  Relations.register_workers (Scheduler.relations sched)
    ~workers:sim.cfg.workers
    ~cores:sim.cfg.cost.Ds_server.Cost_model.n_cores;
  Relations.register_shards (Scheduler.relations sched) ~shards:sim.cfg.shards;
  Relations.record_failover
    (Scheduler.relations sched)
    ~epoch:p.rp_epoch ~cycle:sim.cycles_done ~reason:"pcrash";
  Ds_obs.Trace.emit sim.cfg.trace Ds_obs.Trace.Failover ~ta:(-1) ~seq:(-1)
    ~arg:p.rp_epoch ();
  lane.journal <- Some j;
  lane.sched <- sched;
  lane.fire_pending <- false;
  sim.recovery_time <- sim.recovery_time +. (Unix.gettimeofday () -. t0);
  (* In-flight retry bookkeeping died with the primary. *)
  Hashtbl.reset sim.fail_streaks;
  reconcile_clients sim [| recovered |];
  maybe_fire sim lane

let run_sim (cfg : config) =
  (match Spec.validate cfg.spec with
  | Ok () -> ()
  | Error m -> invalid_arg ("Middleware.run: " ^ m));
  (match Faults.validate cfg.faults with
  | Ok () -> ()
  | Error m -> invalid_arg ("Middleware.run: faults: " ^ m));
  if cfg.max_retries < 0 then
    invalid_arg "Middleware.run: max_retries must be non-negative";
  if cfg.workers < 1 then invalid_arg "Middleware.run: workers must be >= 1";
  if cfg.shards < 1 then invalid_arg "Middleware.run: shards must be >= 1";
  (match cfg.checkpoint_interval with
  | Some n when n <= 0 ->
    invalid_arg "Middleware.run: checkpoint_interval must be positive"
  | _ -> ());
  (match cfg.deadline_factor with
  | Some f when f <= 0. ->
    invalid_arg "Middleware.run: deadline_factor must be positive"
  | _ -> ());
  (match cfg.repl with
  | Some _ ->
    if cfg.shards > 1 then
      invalid_arg "Middleware.run: replication requires shards = 1";
    if cfg.journal_path = None then
      invalid_arg "Middleware.run: replication requires a journal";
    if cfg.faults.Faults.crash_at_cycle <> None then
      invalid_arg
        "Middleware.run: crash fault is incompatible with replication (use \
         pcrash)"
  | None ->
    if cfg.faults.Faults.pcrash_at_cycle <> None then
      invalid_arg "Middleware.run: pcrash fault requires a replication session");
  let engine = Engine.create () in
  Option.iter
    (fun tr -> Ds_obs.Trace.set_clock tr (fun () -> Engine.now engine))
    cfg.trace;
  let master = Rng.create cfg.seed in
  (* S shard lanes + 1 global lane; at S=1 a single lane, the historical
     single-scheduler layout. *)
  let n_lanes = if cfg.shards > 1 then cfg.shards + 1 else 1 in
  let journal_path, auto_journal =
    match (cfg.journal_path, cfg.faults.Faults.crash_at_cycle) with
    | Some p, _ -> (Some p, false)
    | None, Some _ ->
      let p =
        if cfg.shards > 1 then begin
          (* temp_file both reserves and creates the name; drop the file so
             init_segment_dir can make the directory. *)
          let p = Filename.temp_file "dsched" ".journal.d" in
          Sys.remove p;
          p
        end
        else Filename.temp_file "dsched" ".journal"
      in
      (Some p, true)
    | None, None -> (None, false)
  in
  let lane_paths =
    match journal_path with
    | None -> Array.make n_lanes None
    | Some p ->
      if cfg.shards > 1 then
        Array.of_list
          (List.map Option.some (Journal.init_segment_dir p ~shards:cfg.shards))
      else [| Some p |]
  in
  (* The global admission clock (S>1 only): every qualification, in every
     lane, draws the next gseq through this hook. The scheduler journals the
     stamp with the Q record, so the merged order is recoverable. *)
  let stamps = Hashtbl.create 1024 in
  let gseq = ref 0 in
  let stamp_hook =
    if cfg.shards > 1 then
      Some
        (fun (r : Request.t) ->
          let g = !gseq in
          incr gseq;
          Hashtbl.replace stamps (Request.key r) g;
          g)
    else None
  in
  let lanes =
    Array.init n_lanes (fun i ->
        let journal =
          Option.map
            (fun p -> Journal.open_ ~sync:cfg.sync_journal p)
            lane_paths.(i)
        in
        let sched =
          Scheduler.create ~extended:cfg.extended_relations
            ~prune_history_each_cycle:cfg.prune_history ?journal
            ?checkpoint_every:cfg.checkpoint_interval ?trace:cfg.trace
            ?stamp:stamp_hook cfg.protocol
        in
        {
          lane_id = i;
          pool = Ds_server.Worker_pool.create engine cfg.cost ~workers:cfg.workers;
          sched;
          journal;
          journal_path = lane_paths.(i);
          fire_pending = false;
          last_cycle_at = 0.;
          active = 0;
          holding = 0;
        })
  in
  let sim =
    {
      cfg;
      engine;
      lanes;
      clients =
        Array.init cfg.n_clients (fun i ->
            {
              cid = i;
              gen = Generator.create cfg.spec (Rng.split master);
              txn = Txn.make ~ta:0 [ (Op.Commit, None) ];
              remaining = [];
              txn_start = 0.;
              outstanding = None;
              stall_cycles = 0;
              data_stmts = 0;
              disconnect_after = None;
              redo = None;
              lane = 0;
              entered = false;
            });
      by_ta = Hashtbl.create (4 * cfg.n_clients);
      rng = Rng.split master;
      route_of = Hashtbl.create (4 * cfg.n_clients);
      holding_tas = Hashtbl.create 64;
      stamps;
      gseq;
      stamp = stamp_hook;
      faults = None;
      epoch = 0;
      crash_done = false;
      pcrash_done = false;
      failed_over = false;
      failovers = 0;
      repl_sync =
        (match cfg.repl with
        | Some h -> (h.repl_status ()).rs_sync
        | None -> false);
      cycles_done = 0;
      ta_counter = 0;
      req_counter = 0;
      deliveries = 0;
      committed_txns = 0;
      committed_stmts = 0;
      aborted_txns = 0;
      fail_streaks = Hashtbl.create 16;
      retries = 0;
      timeouts = 0;
      shed_txns = 0;
      backpressure_waits = 0;
      dead_lettered = 0;
      disconnects = 0;
      crashes = 0;
      global_lane_txns = 0;
      shard_deferrals = 0;
      checkpoints_acc = 0;
      recovery_replayed = 0;
      recovery_skipped = 0;
      recovery_time = 0.;
      cycle_times = Ds_stats.Summary.create ();
      cycle_times_hist = Ds_stats.Histogram.create ();
      batch_sizes = Ds_stats.Summary.create ();
      pending_sizes = Ds_stats.Summary.create ();
      latencies = Ds_stats.Histogram.create ();
      tier_latencies = Hashtbl.create 4;
    }
  in
  (* Split the fault stream after clients and sim.rng so no-fault runs keep
     the exact RNG draws (and behavior) they had before faults existed. *)
  Array.iter
    (fun lane ->
      Ds_server.Worker_pool.set_trace lane.pool cfg.trace;
      Relations.register_workers (Scheduler.relations lane.sched)
        ~workers:cfg.workers ~cores:cfg.cost.Ds_server.Cost_model.n_cores;
      Relations.register_shards (Scheduler.relations lane.sched)
        ~shards:cfg.shards;
      (* Supervision deadlines: explicit factor wins; otherwise armed with a
         conservative default only when the plan injects worker faults (so
         fault-free runs keep their exact event timing). *)
      (match cfg.deadline_factor with
      | Some f -> Ds_server.Worker_pool.set_deadline_factor lane.pool (Some f)
      | None ->
        if Faults.has_worker_faults cfg.faults then
          Ds_server.Worker_pool.set_deadline_factor lane.pool (Some 4.0));
      if cfg.hedging then Ds_server.Worker_pool.set_hedging lane.pool true;
      if cfg.workers > 1 then
        (* Supervisor decisions land in the [supervision] relation and the
           trace. The hook reads [lane.sched] at event time, so it survives
           the scheduler swap done by crash recovery. *)
        Ds_server.Worker_pool.set_event_hook lane.pool
          (Some
             (fun ev ->
               let rels = Scheduler.relations lane.sched in
               let cycle = sim.cycles_done in
               match ev with
               | Ds_server.Worker_pool.Worker_crashed { worker } ->
                 Relations.record_supervision rels ~cycle ~worker ~event:"crash"
                   ~cls:(-1);
                 Ds_obs.Trace.emit cfg.trace Ds_obs.Trace.Worker_down ~ta:(-1)
                   ~seq:(-1) ~arg:worker ()
               | Ds_server.Worker_pool.Worker_died { worker } ->
                 Relations.record_supervision rels ~cycle ~worker ~event:"death"
                   ~cls:(-1);
                 Ds_obs.Trace.emit cfg.trace Ds_obs.Trace.Worker_down ~ta:(-1)
                   ~seq:(-1) ~arg:worker ()
               | Ds_server.Worker_pool.Worker_stuck { worker; cls } ->
                 Relations.record_supervision rels ~cycle ~worker ~event:"stuck"
                   ~cls;
                 Ds_obs.Trace.emit cfg.trace Ds_obs.Trace.Worker_down ~ta:(-1)
                   ~seq:(-1) ~obj:cls ~arg:worker ()
               | Ds_server.Worker_pool.Class_reassigned { cls; from_; to_ } ->
                 Relations.record_supervision rels ~cycle ~worker:from_
                   ~event:"reassign" ~cls;
                 Ds_obs.Trace.emit cfg.trace Ds_obs.Trace.Reassign ~ta:(-1)
                   ~seq:(-1) ~obj:cls ~arg:to_ ()
               | Ds_server.Worker_pool.Class_hedged { cls; from_; to_ } ->
                 Relations.record_supervision rels ~cycle ~worker:from_
                   ~event:"hedge" ~cls;
                 Ds_obs.Trace.emit cfg.trace Ds_obs.Trace.Reassign ~ta:(-1)
                   ~seq:(-1) ~obj:cls ~arg:to_ ())))
    sim.lanes;
  if not (Faults.is_none cfg.faults) then begin
    let f = Faults.create cfg.faults (Rng.split master) in
    sim.faults <- Some f;
    Array.iter
      (fun lane ->
        Ds_server.Worker_pool.set_fault_hook lane.pool (Faults.request_outcome f);
        if Faults.has_worker_faults cfg.faults then
          Ds_server.Worker_pool.set_worker_fault_hook lane.pool
            (Some
               (fun ~alive ->
                 List.map
                   (function
                     | Faults.Worker_crash { worker; after } ->
                       Ds_server.Worker_pool.Crash { worker; after }
                     | Faults.Worker_death { worker } ->
                       Ds_server.Worker_pool.Die { worker }
                     | Faults.Worker_stall { worker; delay } ->
                       Ds_server.Worker_pool.Slow { worker; delay })
                   (Faults.draw_worker_faults f ~alive))))
      sim.lanes
  end;
  (* Replication wiring: tap the primary's journal, drive the session's
     virtual clock off the engine, and pump the link on a short periodic
     timer (delivery, watermark advance, retransmission). *)
  Option.iter
    (fun h ->
      h.repl_set_clock (fun () -> Engine.now engine);
      (match sim.lanes.(0).journal with
      | Some j -> h.repl_attach j
      | None -> assert false (* validated: repl requires a journal *));
      let rec rtick () =
        h.repl_pump ~now:(Engine.now engine);
        if Engine.now engine < cfg.duration then
          ignore (Engine.schedule engine ~after:0.005 rtick)
      in
      ignore (Engine.schedule engine ~after:0.005 rtick))
    cfg.repl;
  (* Periodic timer for time-based triggers; it re-checks pending work even
     when no client is submitting. *)
  (match Trigger.period cfg.trigger with
  | Some dt ->
    let rec tick () =
      Array.iter (fun l -> maybe_fire sim l) sim.lanes;
      if Engine.now engine < cfg.duration then
        ignore (Engine.schedule engine ~after:dt tick)
    in
    ignore (Engine.schedule engine ~after:dt tick)
  | None ->
    (* Pure fill triggers can stall when every client is blocked with
       queue_len < k; a slow fallback timer keeps firing as long as work is
       sitting in an incoming queue or a pending table. *)
    let rec tick () =
      Array.iter
        (fun l ->
          if
            (Scheduler.queue_length l.sched > 0
            || Scheduler.pending_count l.sched > 0)
            && not l.fire_pending
          then begin
            l.fire_pending <- true;
            ignore (Engine.schedule engine ~after:0. (fun () -> run_cycle sim l))
          end)
        sim.lanes;
      if Engine.now engine < cfg.duration then
        ignore (Engine.schedule engine ~after:0.05 tick)
    in
    ignore (Engine.schedule engine ~after:0.05 tick));
  Array.iter
    (fun c -> ignore (Engine.schedule engine ~after:0. (fun () -> start_txn sim c)))
    sim.clients;
  Engine.run_until engine ~until:cfg.duration;
  (* Bounded post-run settle: keep pumping past the end of the run so
     end-of-run lag reflects genuine loss, not records still on the wire
     (a partition that outlives the run heals inside this window; after a
     failover the same pumps surface — and fence — the old primary's
     stragglers). *)
  Option.iter
    (fun h ->
      let i = ref 0 in
      while !i < 120 && ((h.repl_status ()).rs_lag > 0 || !i < 20) do
        incr i;
        h.repl_pump ~now:(cfg.duration +. (0.025 *. float_of_int !i))
      done)
    cfg.repl;
  let repl_final = Option.map (fun h -> h.repl_status ()) cfg.repl in
  let sum_pools f = Array.fold_left (fun acc l -> acc + f l.pool) 0 sim.lanes in
  let makespans =
    if n_lanes = 1 then Ds_server.Worker_pool.makespans sim.lanes.(0).pool
    else begin
      let merged = Ds_stats.Histogram.create () in
      Array.iter
        (fun l ->
          Ds_stats.Histogram.merge_into ~dst:merged
            (Ds_server.Worker_pool.makespans l.pool))
        sim.lanes;
      merged
    end
  in
  Option.iter
    (fun m ->
      Ds_obs.Metrics.set_parallel m
        {
          Ds_obs.Metrics.workers = cfg.workers;
          batches = sum_pools Ds_server.Worker_pool.batch_count;
          makespan_mean = Ds_stats.Histogram.mean makespans;
          makespan_p95 = Ds_stats.Histogram.p95 makespans;
          makespan_max = Ds_stats.Histogram.max_observed makespans;
          per_worker =
            List.concat_map
              (fun l ->
                List.map
                  (fun (worker, executed, busy, utilization) ->
                    { Ds_obs.Metrics.worker; executed; busy; utilization })
                  (Ds_server.Worker_pool.worker_stats l.pool))
              (Array.to_list sim.lanes);
        })
    cfg.metrics;
  let checkpoints =
    sim.checkpoints_acc
    + Array.fold_left
        (fun acc l ->
          acc
          +
          match l.journal with
          | Some j -> Journal.checkpoints_written j
          | None -> 0)
        0 sim.lanes
  in
  Option.iter
    (fun m ->
      Ds_obs.Metrics.set_supervision m
        {
          Ds_obs.Metrics.worker_crashes =
            sum_pools Ds_server.Worker_pool.worker_crashes;
          worker_deaths = sum_pools Ds_server.Worker_pool.worker_deaths;
          stalls_detected =
            sum_pools Ds_server.Worker_pool.worker_stalls_detected;
          reassigned = sum_pools Ds_server.Worker_pool.reassigned_classes;
          hedged = sum_pools Ds_server.Worker_pool.hedged_classes;
          checkpoints;
          recoveries = sim.crashes;
          recovery_replayed = sim.recovery_replayed;
          recovery_skipped = sim.recovery_skipped;
          recovery_time = sim.recovery_time;
        })
    cfg.metrics;
  Option.iter
    (fun m ->
      match repl_final with
      | None -> ()
      | Some s ->
        Ds_obs.Metrics.set_replication m
          {
            Ds_obs.Metrics.repl_sync = s.rs_sync;
            repl_epoch = s.rs_epoch;
            repl_watermark = s.rs_watermark;
            repl_lag = s.rs_lag;
            repl_fenced = s.rs_fenced;
            repl_divergences = s.rs_divergences;
            repl_failovers = sim.failovers;
          })
    cfg.metrics;
  Array.iter (fun l -> Option.iter Journal.close l.journal) sim.lanes;
  if auto_journal then
    Option.iter
      (fun p ->
        if cfg.shards > 1 then (
          try
            List.iter
              (fun seg -> try Sys.remove seg with Sys_error _ -> ())
              (Journal.segment_paths p);
            Sys.remove (Filename.concat p "MANIFEST");
            Sys.rmdir p
          with Sys_error _ | Failure _ -> ())
        else try Sys.remove p with Sys_error _ -> ())
      journal_path;
  let tiers =
    Hashtbl.fold
      (fun tier (hist, count) acc ->
        (tier, Ds_stats.Histogram.mean hist, Ds_stats.Histogram.p95 hist, !count)
        :: acc)
      sim.tier_latencies []
    |> List.sort (fun (a, _, _, _) (b, _, _, _) -> Sla.compare_urgency { Sla.premium with tier = a } { Sla.premium with tier = b })
  in
  ( {
      committed_txns = sim.committed_txns;
      committed_stmts = sim.committed_stmts;
      aborted_txns = sim.aborted_txns;
      cycles = sim.cycles_done;
      mean_cycle_time = Ds_stats.Summary.mean sim.cycle_times;
      p95_cycle_time = Ds_stats.Histogram.p95 sim.cycle_times_hist;
      mean_batch = Ds_stats.Summary.mean sim.batch_sizes;
      mean_pending = Ds_stats.Summary.mean sim.pending_sizes;
      scheduler_time = Ds_stats.Summary.sum sim.cycle_times;
      mean_txn_latency = Ds_stats.Histogram.mean sim.latencies;
      p95_txn_latency = Ds_stats.Histogram.p95 sim.latencies;
      latency_by_tier = tiers;
      retries = sim.retries;
      timeouts = sim.timeouts;
      injected_failures =
        (match sim.faults with Some f -> Faults.injected_failures f | None -> 0);
      injected_stalls =
        (match sim.faults with Some f -> Faults.injected_stalls f | None -> 0);
      shed_txns = sim.shed_txns;
      backpressure_waits = sim.backpressure_waits;
      dead_lettered = sim.dead_lettered;
      disconnects = sim.disconnects;
      crashes = sim.crashes;
      workers = cfg.workers;
      batches_dispatched = sum_pools Ds_server.Worker_pool.batch_count;
      mean_batch_makespan = Ds_stats.Histogram.mean makespans;
      p95_batch_makespan = Ds_stats.Histogram.p95 makespans;
      worker_crashes = sum_pools Ds_server.Worker_pool.worker_crashes;
      worker_deaths = sum_pools Ds_server.Worker_pool.worker_deaths;
      worker_stalls = sum_pools Ds_server.Worker_pool.worker_stalls_detected;
      reassigned_classes = sum_pools Ds_server.Worker_pool.reassigned_classes;
      hedged_classes = sum_pools Ds_server.Worker_pool.hedged_classes;
      checkpoints;
      recovery_replayed = sim.recovery_replayed;
      recovery_skipped = sim.recovery_skipped;
      recovery_time = sim.recovery_time;
      shards = cfg.shards;
      global_lane_txns = sim.global_lane_txns;
      shard_deferrals = sim.shard_deferrals;
      failovers = sim.failovers;
      repl_epoch =
        (match repl_final with Some s -> s.rs_epoch | None -> 0);
      repl_watermark =
        (match repl_final with Some s -> s.rs_watermark | None -> 0);
      repl_lag = (match repl_final with Some s -> s.rs_lag | None -> 0);
      repl_fenced = (match repl_final with Some s -> s.rs_fenced | None -> 0);
      repl_divergences =
        (match repl_final with Some s -> s.rs_divergences | None -> 0);
    },
    sim )

let run_full (cfg : config) =
  if cfg.shards > 1 then
    invalid_arg "Middleware.run_full: shards > 1 requires run_sharded";
  let stats, sim = run_sim cfg in
  (stats, sim.lanes.(0).sched)

let run cfg = fst (run_sim cfg)

type handle = {
  lane_schedulers : Scheduler.t array;
  shard_of : int -> int option;
  merged_rte : Request.t list;
  merged_execution_order : (int * int) list;
}

let run_sharded (cfg : config) =
  let stats, sim = run_sim cfg in
  let lane_schedulers = Array.map (fun l -> l.sched) sim.lanes in
  let shard_of ta = Hashtbl.find_opt sim.route_of ta in
  let merged_rte =
    if Array.length sim.lanes = 1 then
      Relations.rte_requests (Scheduler.relations sim.lanes.(0).sched)
    else
      (* The per-lane rte logs interleave by admission stamp: every executed
         request was qualified, hence stamped, so the merge reconstructs the
         one global admission order the stamp hook handed out. *)
      Array.to_list sim.lanes
      |> List.concat_map (fun l ->
             Relations.rte_requests (Scheduler.relations l.sched))
      |> List.map (fun (r : Request.t) ->
             ( (match Hashtbl.find_opt sim.stamps (Request.key r) with
               | Some g -> g
               | None -> max_int),
               r ))
      |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
      |> List.map snd
  in
  let merged_execution_order =
    if Array.length sim.lanes = 1 then
      Relations.execution_order (Scheduler.relations sim.lanes.(0).sched)
    else
      (* Delivery positions come from the run-global [sim.deliveries]
         counter, so sorting the union of per-lane assignment rows by [pos]
         is the actual cross-lane delivery order. *)
      Array.to_list sim.lanes
      |> List.concat_map (fun l ->
             List.filter_map
               (fun row ->
                 match row with
                 | [|
                     _;
                     _;
                     _;
                     Ds_relal.Value.Int ta;
                     Ds_relal.Value.Int intrata;
                     Ds_relal.Value.Int pos;
                   |] ->
                   Some (pos, (ta, intrata))
                 | _ -> None)
               (Relations.table_facts (Scheduler.relations l.sched) "assignment"))
      |> List.sort compare
      |> List.map snd
  in
  (stats, { lane_schedulers; shard_of; merged_rte; merged_execution_order })

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "committed=%d stmts=%d aborted=%d cycles=%d cycle(mean=%.2fms p95=%.2fms) \
     batch=%.1f pending=%.1f sched_time=%.2fs latency(mean=%.3fs p95=%.3fs)"
    s.committed_txns s.committed_stmts s.aborted_txns s.cycles
    (1000. *. s.mean_cycle_time)
    (1000. *. s.p95_cycle_time)
    s.mean_batch s.mean_pending s.scheduler_time s.mean_txn_latency
    s.p95_txn_latency;
  if
    s.retries > 0 || s.timeouts > 0 || s.injected_failures > 0
    || s.injected_stalls > 0 || s.shed_txns > 0 || s.backpressure_waits > 0
    || s.dead_lettered > 0 || s.disconnects > 0 || s.crashes > 0
  then
    Format.fprintf ppf
      " faults(injected=%d stalls=%d retries=%d timeouts=%d shed=%d \
       backpressure=%d dead=%d disconnects=%d crashes=%d)"
      s.injected_failures s.injected_stalls s.retries s.timeouts s.shed_txns
      s.backpressure_waits s.dead_lettered s.disconnects s.crashes;
  if s.workers > 1 then
    Format.fprintf ppf
      " parallel(workers=%d batches=%d makespan(mean=%.2fms p95=%.2fms))"
      s.workers s.batches_dispatched
      (1000. *. s.mean_batch_makespan)
      (1000. *. s.p95_batch_makespan);
  if
    s.worker_crashes > 0 || s.worker_deaths > 0 || s.worker_stalls > 0
    || s.reassigned_classes > 0 || s.hedged_classes > 0
  then
    Format.fprintf ppf
      " supervision(crashes=%d deaths=%d stuck=%d reassigned=%d hedged=%d)"
      s.worker_crashes s.worker_deaths s.worker_stalls s.reassigned_classes
      s.hedged_classes;
  if s.checkpoints > 0 || s.crashes > 0 then
    Format.fprintf ppf
      " recovery(checkpoints=%d replayed=%d skipped=%d time=%.3fms)"
      s.checkpoints s.recovery_replayed s.recovery_skipped
      (1000. *. s.recovery_time);
  if s.shards > 1 then
    Format.fprintf ppf " shards(lanes=%d global_txns=%d deferrals=%d)" s.shards
      s.global_lane_txns s.shard_deferrals;
  if s.repl_watermark > 0 || s.failovers > 0 || s.repl_fenced > 0 then
    Format.fprintf ppf
      " replication(epoch=%d watermark=%d lag=%d fenced=%d divergences=%d \
       failovers=%d)"
      s.repl_epoch s.repl_watermark s.repl_lag s.repl_fenced
      s.repl_divergences s.failovers
