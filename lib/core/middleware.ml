open Ds_model
open Ds_sim
open Ds_workload

type config = {
  n_clients : int;
  duration : float;
  spec : Spec.t;
  cost : Ds_server.Cost_model.t;
  workers : int;
  seed : int;
  protocol : Protocol.t;
  trigger : Trigger.t;
  extended_relations : bool;
  charge_scheduler_time : bool;
  prune_history : bool;
  starvation_cycles : int;
  passthrough : bool;
  faults : Faults.plan;
  max_retries : int;
  retry_base : float;
  retry_cap : float;
  batch_timeout : float option;
  queue_capacity : int option;
  journal_path : string option;
  sync_journal : bool;
  checkpoint_interval : int option;
  deadline_factor : float option;
  hedging : bool;
  client_redo : bool;
  trace : Ds_obs.Trace.t option;
  metrics : Ds_obs.Metrics.t option;
}

let default_config =
  {
    n_clients = 10;
    duration = 10.;
    spec = Spec.paper_default;
    cost = Ds_server.Cost_model.default;
    workers = 1;
    seed = 42;
    protocol = Builtin.ss2pl_ocaml;
    trigger = Trigger.Hybrid (0.01, 50);
    extended_relations = false;
    charge_scheduler_time = true;
    prune_history = true;
    starvation_cycles = 50;
    passthrough = false;
    faults = Faults.none;
    max_retries = 3;
    retry_base = 0.01;
    retry_cap = 0.5;
    batch_timeout = None;
    queue_capacity = None;
    journal_path = None;
    sync_journal = false;
    checkpoint_interval = None;
    deadline_factor = None;
    hedging = false;
    client_redo = false;
    trace = None;
    metrics = None;
  }

type stats = {
  committed_txns : int;
  committed_stmts : int;
  aborted_txns : int;
  cycles : int;
  mean_cycle_time : float;
  p95_cycle_time : float;
  mean_batch : float;
  mean_pending : float;
  scheduler_time : float;
  mean_txn_latency : float;
  p95_txn_latency : float;
  latency_by_tier : (Sla.tier * float * float * int) list;
  retries : int;
  timeouts : int;
  injected_failures : int;
  injected_stalls : int;
  shed_txns : int;
  backpressure_waits : int;
  dead_lettered : int;
  disconnects : int;
  crashes : int;
  workers : int;
  batches_dispatched : int;
  mean_batch_makespan : float;
  p95_batch_makespan : float;
  worker_crashes : int;
  worker_deaths : int;
  worker_stalls : int;
  reassigned_classes : int;
  hedged_classes : int;
  checkpoints : int;
  recovery_replayed : int;
  recovery_skipped : int;
  recovery_time : float;
}

type client = {
  cid : int;
  gen : Generator.t;
  mutable txn : Txn.t;
  mutable remaining : Request.t list;
  mutable txn_start : float;
  mutable outstanding : Request.t option;
  mutable stall_cycles : int;
  mutable data_stmts : int;  (** executed data statements of current txn *)
  mutable disconnect_after : int option;
      (** injected fault: client disconnects after this many data stmts *)
  mutable redo : Txn.t option;
      (** with [client_redo], the txn to re-run after a middleware abort *)
}

(* One dispatch attempt of a batch. [closed] flips when the attempt ends
   (completion, failure handling, timeout) and suppresses late events from the
   server — after a timeout the server may still grind through the abandoned
   suffix, but those completions are wasted work, not deliveries. *)
type attempt = {
  mutable closed : bool;
  mutable undelivered : Request.t list;
}

type sim = {
  cfg : config;
  engine : Engine.t;
  pool : Ds_server.Worker_pool.t;
  mutable sched : Scheduler.t;
  clients : client array;
  by_ta : (int, client) Hashtbl.t;
  rng : Rng.t;
  journal_path : string option;
  mutable journal : Journal.t option;
  mutable faults : Faults.t option;
  mutable epoch : int;  (** bumped at crash; stale server callbacks check it *)
  mutable crash_done : bool;
  mutable cycles_done : int;
  mutable ta_counter : int;
  mutable req_counter : int;
  mutable cycle_fire_pending : bool;
  mutable last_cycle_at : float;
  mutable deliveries : int;
      (** run-global delivery counter — the [pos] column of [assignment] *)
  mutable committed_txns : int;
  mutable committed_stmts : int;
  mutable aborted_txns : int;
  fail_streaks : (int * int, int) Hashtbl.t;
      (** consecutive failed attempts per request key; cleared on delivery *)
  mutable retries : int;
  mutable timeouts : int;
  mutable shed_txns : int;
  mutable backpressure_waits : int;
  mutable dead_lettered : int;
  mutable disconnects : int;
  mutable crashes : int;
  mutable checkpoints_acc : int;
      (** checkpoints written by journals already crashed and replaced *)
  mutable recovery_replayed : int;
  mutable recovery_skipped : int;
  mutable recovery_time : float;
  cycle_times : Ds_stats.Summary.t;
  cycle_times_hist : Ds_stats.Histogram.t;
  batch_sizes : Ds_stats.Summary.t;
  pending_sizes : Ds_stats.Summary.t;
  latencies : Ds_stats.Histogram.t;
  tier_latencies : (Sla.tier, Ds_stats.Histogram.t * int ref) Hashtbl.t;
}

let fresh_ta sim client =
  sim.ta_counter <- sim.ta_counter + 1;
  Hashtbl.replace sim.by_ta sim.ta_counter client;
  sim.ta_counter

let renumber sim (r : Request.t) =
  sim.req_counter <- sim.req_counter + 1;
  { r with Request.id = sim.req_counter; arrival = Engine.now sim.engine }

let rec start_txn sim client =
  let ta = fresh_ta sim client in
  (match client.redo with
  | Some txn ->
    (* Client-side transaction retry: re-run the aborted transaction's
       operations under a fresh TA (new locks, new poison hash). *)
    client.redo <- None;
    let ops =
      List.map
        (fun (r : Request.t) -> (r.Request.op, r.Request.obj))
        txn.Txn.requests
    in
    client.txn <- Txn.make ~ta ~sla:txn.Txn.sla ops
  | None -> client.txn <- Generator.next_txn client.gen ~ta);
  client.remaining <- client.txn.Txn.requests;
  client.txn_start <- Engine.now sim.engine;
  client.data_stmts <- 0;
  client.stall_cycles <- 0;
  (client.disconnect_after <-
     (match sim.faults with
     | Some f ->
       let data =
         List.length (List.filter Request.is_data client.txn.Txn.requests)
       in
       Faults.draw_disconnect_after f ~data_stmts:data
     | None -> None));
  submit_next sim client

and restart_client ?(redo = false) sim client =
  if redo && sim.cfg.client_redo then client.redo <- Some client.txn;
  let backoff = 0.001 *. (1. +. Rng.float sim.rng) in
  ignore (Engine.schedule sim.engine ~after:backoff (fun () -> start_txn sim client))

and submit_next sim client =
  match client.remaining with
  | [] -> ()
  | req :: rest -> (
    let req = renumber sim req in
    let accept () =
      client.remaining <- rest;
      client.outstanding <- Some req;
      client.stall_cycles <- 0
    in
    match sim.cfg.queue_capacity with
    | None ->
      accept ();
      Scheduler.submit sim.sched req;
      maybe_fire sim
    | Some cap -> (
      match Scheduler.submit_bounded sim.sched ~capacity:cap req with
      | `Accepted ->
        accept ();
        maybe_fire sim
      | `Accepted_shed victim ->
        (* Overload: the queue made room by shedding its least urgent
           request; that transaction is aborted and its client restarts. *)
        accept ();
        sim.shed_txns <- sim.shed_txns + 1;
        sim.aborted_txns <- sim.aborted_txns + 1;
        let vta = victim.Request.ta in
        ignore (Scheduler.abort_txn sim.sched vta);
        (match Hashtbl.find_opt sim.by_ta vta with
        | Some vc ->
          Hashtbl.remove sim.by_ta vta;
          vc.outstanding <- None;
          restart_client ~redo:true sim vc
        | None -> ());
        maybe_fire sim
      | `Rejected ->
        (* Backpressure: nothing queued, nothing journalled — hold the
           request at the client and try again shortly. *)
        sim.backpressure_waits <- sim.backpressure_waits + 1;
        let wait = 0.005 *. (1. +. Rng.float sim.rng) in
        ignore
          (Engine.schedule sim.engine ~after:wait (fun () ->
               submit_next sim client))))

and maybe_fire sim =
  let elapsed = Engine.now sim.engine -. sim.last_cycle_at in
  if
    (not sim.cycle_fire_pending)
    && Trigger.due sim.cfg.trigger
         ~queue_len:(Scheduler.queue_length sim.sched)
         ~elapsed
  then begin
    sim.cycle_fire_pending <- true;
    ignore (Engine.schedule sim.engine ~after:0. (fun () -> run_cycle sim))
  end

and run_cycle sim =
  sim.cycle_fire_pending <- false;
  sim.last_cycle_at <- Engine.now sim.engine;
  let crash_now =
    match sim.faults with
    | Some f -> (
      match (Faults.plan f).Faults.crash_at_cycle with
      | Some c -> (not sim.crash_done) && sim.cycles_done + 1 >= c
      | None -> false)
    | None -> false
  in
  if crash_now then begin
    sim.crash_done <- true;
    crash_and_recover sim
  end
  else if
    Scheduler.queue_length sim.sched > 0 || Scheduler.pending_count sim.sched > 0
  then begin
    let qualified, stats =
      Scheduler.cycle ~passthrough:sim.cfg.passthrough sim.sched
    in
    sim.cycles_done <- sim.cycles_done + 1;
    let dt = Scheduler.total_time stats.Scheduler.times in
    Ds_stats.Summary.add sim.cycle_times dt;
    Ds_stats.Histogram.add sim.cycle_times_hist dt;
    Ds_stats.Summary.add sim.batch_sizes (float_of_int stats.Scheduler.qualified);
    Ds_stats.Summary.add sim.pending_sizes
      (float_of_int stats.Scheduler.pending_before);
    Option.iter
      (fun m ->
        Ds_obs.Metrics.record_cycle m ~drained:stats.Scheduler.drained
          ~pending_before:stats.Scheduler.pending_before
          ~qualified:stats.Scheduler.qualified
          ~query_time:stats.Scheduler.times.Scheduler.query
          ~index_time:stats.Scheduler.index_time ())
      sim.cfg.metrics;
    (* Starvation accounting: clients whose outstanding request is still
       pending after this cycle. *)
    let qualified_keys = Hashtbl.create 64 in
    List.iter
      (fun r -> Hashtbl.replace qualified_keys (Request.key r) ())
      qualified;
    Array.iter
      (fun c ->
        match c.outstanding with
        | Some o when not (Hashtbl.mem qualified_keys (Request.key o)) ->
          c.stall_cycles <- c.stall_cycles + 1;
          if c.stall_cycles >= sim.cfg.starvation_cycles then begin
            let ta = o.Request.ta in
            ignore (Scheduler.abort_txn sim.sched ta);
            Hashtbl.remove sim.by_ta ta;
            sim.aborted_txns <- sim.aborted_txns + 1;
            c.outstanding <- None;
            restart_client ~redo:true sim c
          end
        | _ -> ())
      sim.clients;
    let dispatch_delay = if sim.cfg.charge_scheduler_time then dt else 0. in
    let epoch = sim.epoch in
    let cycle = sim.cycles_done in
    ignore
      (Engine.schedule sim.engine ~after:dispatch_delay (fun () ->
           if sim.epoch = epoch then dispatch sim ~epoch ~cycle qualified))
  end

and dispatch sim ~epoch ~cycle requests =
  if requests <> [] then begin
    List.iter
      (fun r -> Ds_obs.Trace.emit_req sim.cfg.trace Ds_obs.Trace.Dispatched r)
      requests;
    Option.iter (fun f -> Faults.begin_attempt f requests) sim.faults;
    let att = { closed = false; undelivered = requests } in
    let live () = (not att.closed) && sim.epoch = epoch in
    Option.iter
      (fun d ->
        ignore
          (Engine.schedule sim.engine ~after:d (fun () ->
               if live () then begin
                 att.closed <- true;
                 sim.timeouts <- sim.timeouts + 1;
                 match att.undelivered with
                 | [] -> ()
                 | r :: _ -> handle_failure sim ~epoch ~cycle r att.undelivered
               end)))
      sim.cfg.batch_timeout;
    Ds_server.Worker_pool.execute sim.pool requests
      ~on_each:(fun ~worker ~cls ~pos:_ r ->
        if live () then begin
          (* Parallel workers complete out of batch order, so drop the
             delivered request by key rather than by head match. *)
          let key = Request.key r in
          att.undelivered <-
            List.filter (fun q -> Request.key q <> key) att.undelivered;
          Hashtbl.remove sim.fail_streaks key;
          let pos = sim.deliveries in
          sim.deliveries <- sim.deliveries + 1;
          Relations.record_assignment
            (Scheduler.relations sim.sched)
            ~cycle ~cls ~worker ~pos r;
          deliver sim r
        end)
      (fun result ->
        if live () then begin
          att.closed <- true;
          match result with
          | `Completed -> ()
          | `Failed r -> handle_failure sim ~epoch ~cycle r att.undelivered
        end)
  end

and handle_failure sim ~epoch ~cycle failed undelivered =
  let key = Request.key failed in
  let streak =
    1 + Option.value ~default:0 (Hashtbl.find_opt sim.fail_streaks key)
  in
  Hashtbl.replace sim.fail_streaks key streak;
  if streak > sim.cfg.max_retries then begin
    (* Poison: the same request failed every attempt. Dead-letter it, abort
       its transaction and keep the rest of the batch moving. *)
    Hashtbl.remove sim.fail_streaks key;
    sim.dead_lettered <- sim.dead_lettered + 1;
    sim.aborted_txns <- sim.aborted_txns + 1;
    Scheduler.dead_letter sim.sched failed;
    let ta = failed.Request.ta in
    ignore (Scheduler.abort_txn sim.sched ta);
    (match Hashtbl.find_opt sim.by_ta ta with
    | Some c ->
      Hashtbl.remove sim.by_ta ta;
      c.outstanding <- None;
      restart_client ~redo:true sim c
    | None -> ());
    let rest = List.filter (fun q -> Request.key q <> key) undelivered in
    dispatch sim ~epoch ~cycle rest
  end
  else begin
    sim.retries <- sim.retries + 1;
    Ds_obs.Trace.emit_req sim.cfg.trace ~arg:streak Ds_obs.Trace.Retry failed;
    let backoff =
      let exp = float_of_int (1 lsl min 10 (streak - 1)) in
      Float.min sim.cfg.retry_cap (sim.cfg.retry_base *. exp)
      *. (1. +. (0.5 *. Rng.float sim.rng))
    in
    ignore
      (Engine.schedule sim.engine ~after:backoff (fun () ->
           if sim.epoch = epoch then dispatch sim ~epoch ~cycle undelivered))
  end

and deliver sim (req : Request.t) =
  match Hashtbl.find_opt sim.by_ta req.Request.ta with
  | None -> () (* aborted meanwhile *)
  | Some client -> (
    match client.outstanding with
    | Some o when Request.key o = Request.key req ->
      client.outstanding <- None;
      if Request.is_data req then begin
        client.data_stmts <- client.data_stmts + 1;
        match client.disconnect_after with
        | Some n when client.data_stmts >= n ->
          (* Injected fault: the client vanishes mid-transaction; the
             middleware aborts the orphan and the client reconnects. *)
          sim.disconnects <- sim.disconnects + 1;
          sim.aborted_txns <- sim.aborted_txns + 1;
          let ta = req.Request.ta in
          ignore (Scheduler.abort_txn sim.sched ta);
          Hashtbl.remove sim.by_ta ta;
          restart_client sim client
        | _ -> submit_next sim client
      end
      else begin
        (* Terminal executed: transaction complete. *)
        let now = Engine.now sim.engine in
        Hashtbl.remove sim.by_ta req.Request.ta;
        Ds_obs.Trace.emit_txn sim.cfg.trace
          ~tier:(Sla.tier_to_string client.txn.Txn.sla.Sla.tier)
          (if Op.equal req.Request.op Op.Commit then Ds_obs.Trace.Commit
           else Ds_obs.Trace.Abort)
          ~ta:req.Request.ta;
        if now <= sim.cfg.duration && Op.equal req.Request.op Op.Commit then begin
          sim.committed_txns <- sim.committed_txns + 1;
          sim.committed_stmts <- sim.committed_stmts + client.data_stmts;
          let latency = now -. client.txn_start in
          Ds_stats.Histogram.add sim.latencies latency;
          Option.iter
            (fun m ->
              Ds_obs.Metrics.observe_latency m
                ~tier:(Sla.tier_to_string client.txn.Txn.sla.Sla.tier)
                latency)
            sim.cfg.metrics;
          let tier = client.txn.Txn.sla.Sla.tier in
          let hist, count =
            match Hashtbl.find_opt sim.tier_latencies tier with
            | Some entry -> entry
            | None ->
              let entry = (Ds_stats.Histogram.create (), ref 0) in
              Hashtbl.add sim.tier_latencies tier entry;
              entry
          in
          Ds_stats.Histogram.add hist latency;
          incr count
        end;
        start_txn sim client
      end
    | Some _ | None -> ())

and crash_and_recover sim =
  let path =
    match sim.journal_path with
    | Some p -> p
    | None -> invalid_arg "Middleware: crash fault requires a journal"
  in
  sim.crashes <- sim.crashes + 1;
  (* The epoch bump orphans every in-flight server callback: whatever the
     backend was executing dies with the middleware process. *)
  sim.epoch <- sim.epoch + 1;
  (match sim.journal with
  | Some j ->
    sim.checkpoints_acc <- sim.checkpoints_acc + Journal.checkpoints_written j;
    Journal.crash j
  | None -> assert false);
  (* Recovery is wall-clock timed end to end (read + replay + restore): with
     checkpointing on, this is the number the recovery bench shows staying
     sublinear in journal length. ~repair truncates any torn tail so the
     reopened journal appends after the trusted prefix. *)
  let t0 = Unix.gettimeofday () in
  let recovered = Journal.recover ~repair:true path in
  (* ~state seeds the new journal's state mirror; a checkpoint written after
     a blind reopen would snapshot an empty state. *)
  let j = Journal.open_ ~sync:sim.cfg.sync_journal ~state:recovered path in
  let sched =
    Scheduler.create ~extended:sim.cfg.extended_relations
      ~prune_history_each_cycle:sim.cfg.prune_history ~journal:j
      ?checkpoint_every:sim.cfg.checkpoint_interval ?trace:sim.cfg.trace
      sim.cfg.protocol
  in
  (* ~rte keeps the execution log continuous across the crash, so the whole
     run still check-validates as one schedule. *)
  Journal.restore ~rte:true recovered (Scheduler.relations sched);
  sim.recovery_time <- sim.recovery_time +. (Unix.gettimeofday () -. t0);
  sim.recovery_replayed <- sim.recovery_replayed + recovered.Journal.replayed;
  sim.recovery_skipped <- sim.recovery_skipped + recovered.Journal.skipped;
  Relations.register_workers (Scheduler.relations sched)
    ~workers:sim.cfg.workers ~cores:sim.cfg.cost.Ds_server.Cost_model.n_cores;
  sim.journal <- Some j;
  sim.sched <- sched;
  sim.cycle_fire_pending <- false;
  (* In-flight retry bookkeeping died with the process. *)
  Hashtbl.reset sim.fail_streaks;
  (* Reconcile every connected client against the recovered relations. *)
  let mem_keys rs =
    let tbl = Hashtbl.create (2 * List.length rs) in
    List.iter (fun r -> Hashtbl.replace tbl (Request.key r) ()) rs;
    fun key -> Hashtbl.mem tbl key
  in
  let in_history = mem_keys recovered.Journal.history in
  let in_dead = mem_keys recovered.Journal.dead in
  let in_pending = mem_keys recovered.Journal.pending in
  let aborted = Hashtbl.create 16 in
  List.iter (fun ta -> Hashtbl.replace aborted ta ()) recovered.Journal.aborted;
  Array.iter
    (fun c ->
      match c.outstanding with
      | None -> ()
      | Some req ->
        let key = Request.key req in
        let ta = req.Request.ta in
        if Hashtbl.mem aborted ta || in_dead key then begin
          (* The middleware had already given up on this transaction. *)
          Hashtbl.remove sim.by_ta ta;
          c.outstanding <- None;
          restart_client ~redo:true sim c
        end
        else if in_history key then begin
          match sim.faults with
          | Some f when Faults.is_poison f req ->
            (* Qualified before the crash but can never execute; dead-letter
               it now instead of re-delivering. *)
            sim.dead_lettered <- sim.dead_lettered + 1;
            sim.aborted_txns <- sim.aborted_txns + 1;
            Scheduler.dead_letter sim.sched req;
            ignore (Scheduler.abort_txn sim.sched ta);
            Hashtbl.remove sim.by_ta ta;
            c.outstanding <- None;
            restart_client ~redo:true sim c
          | _ ->
            (* Qualified (= logically executed) but the response was lost in
               the crash: re-deliver it. *)
            ignore
              (Engine.schedule sim.engine ~after:0. (fun () -> deliver sim req))
        end
        else if in_pending key then
          (* Restored into the pending table; it will qualify in a later
             cycle and the client keeps waiting. *)
          ()
        else
          (* The S record was still in the channel buffer when the process
             died; the client resubmits. *)
          Scheduler.submit sim.sched req)
    sim.clients;
  maybe_fire sim

let run_full (cfg : config) =
  (match Spec.validate cfg.spec with
  | Ok () -> ()
  | Error m -> invalid_arg ("Middleware.run: " ^ m));
  (match Faults.validate cfg.faults with
  | Ok () -> ()
  | Error m -> invalid_arg ("Middleware.run: faults: " ^ m));
  if cfg.max_retries < 0 then
    invalid_arg "Middleware.run: max_retries must be non-negative";
  if cfg.workers < 1 then invalid_arg "Middleware.run: workers must be >= 1";
  (match cfg.checkpoint_interval with
  | Some n when n <= 0 ->
    invalid_arg "Middleware.run: checkpoint_interval must be positive"
  | _ -> ());
  (match cfg.deadline_factor with
  | Some f when f <= 0. ->
    invalid_arg "Middleware.run: deadline_factor must be positive"
  | _ -> ());
  let engine = Engine.create () in
  Option.iter
    (fun tr -> Ds_obs.Trace.set_clock tr (fun () -> Engine.now engine))
    cfg.trace;
  let master = Rng.create cfg.seed in
  let journal_path, auto_journal =
    match (cfg.journal_path, cfg.faults.Faults.crash_at_cycle) with
    | Some p, _ -> (Some p, false)
    | None, Some _ -> (Some (Filename.temp_file "dsched" ".journal"), true)
    | None, None -> (None, false)
  in
  let journal = Option.map (fun p -> Journal.open_ ~sync:cfg.sync_journal p) journal_path in
  let sched =
    Scheduler.create ~extended:cfg.extended_relations
      ~prune_history_each_cycle:cfg.prune_history ?journal
      ?checkpoint_every:cfg.checkpoint_interval ?trace:cfg.trace cfg.protocol
  in
  let sim =
    {
      cfg;
      engine;
      pool = Ds_server.Worker_pool.create engine cfg.cost ~workers:cfg.workers;
      sched;
      clients =
        Array.init cfg.n_clients (fun i ->
            {
              cid = i;
              gen = Generator.create cfg.spec (Rng.split master);
              txn = Txn.make ~ta:0 [ (Op.Commit, None) ];
              remaining = [];
              txn_start = 0.;
              outstanding = None;
              stall_cycles = 0;
              data_stmts = 0;
              disconnect_after = None;
              redo = None;
            });
      by_ta = Hashtbl.create (4 * cfg.n_clients);
      rng = Rng.split master;
      journal_path;
      journal;
      faults = None;
      epoch = 0;
      crash_done = false;
      cycles_done = 0;
      ta_counter = 0;
      req_counter = 0;
      cycle_fire_pending = false;
      last_cycle_at = 0.;
      deliveries = 0;
      committed_txns = 0;
      committed_stmts = 0;
      aborted_txns = 0;
      fail_streaks = Hashtbl.create 16;
      retries = 0;
      timeouts = 0;
      shed_txns = 0;
      backpressure_waits = 0;
      dead_lettered = 0;
      disconnects = 0;
      crashes = 0;
      checkpoints_acc = 0;
      recovery_replayed = 0;
      recovery_skipped = 0;
      recovery_time = 0.;
      cycle_times = Ds_stats.Summary.create ();
      cycle_times_hist = Ds_stats.Histogram.create ();
      batch_sizes = Ds_stats.Summary.create ();
      pending_sizes = Ds_stats.Summary.create ();
      latencies = Ds_stats.Histogram.create ();
      tier_latencies = Hashtbl.create 4;
    }
  in
  (* Split the fault stream after clients and sim.rng so no-fault runs keep
     the exact RNG draws (and behavior) they had before faults existed. *)
  Ds_server.Worker_pool.set_trace sim.pool cfg.trace;
  Relations.register_workers (Scheduler.relations sched) ~workers:cfg.workers
    ~cores:cfg.cost.Ds_server.Cost_model.n_cores;
  (* Supervision deadlines: explicit factor wins; otherwise armed with a
     conservative default only when the plan injects worker faults (so
     fault-free runs keep their exact event timing). *)
  (match cfg.deadline_factor with
  | Some f -> Ds_server.Worker_pool.set_deadline_factor sim.pool (Some f)
  | None ->
    if Faults.has_worker_faults cfg.faults then
      Ds_server.Worker_pool.set_deadline_factor sim.pool (Some 4.0));
  if cfg.hedging then Ds_server.Worker_pool.set_hedging sim.pool true;
  if cfg.workers > 1 then
    (* Supervisor decisions land in the [supervision] relation and the trace.
       The hook reads [sim.sched] at event time, so it survives the scheduler
       swap done by crash recovery. *)
    Ds_server.Worker_pool.set_event_hook sim.pool
      (Some
         (fun ev ->
           let rels = Scheduler.relations sim.sched in
           let cycle = sim.cycles_done in
           match ev with
           | Ds_server.Worker_pool.Worker_crashed { worker } ->
             Relations.record_supervision rels ~cycle ~worker ~event:"crash"
               ~cls:(-1);
             Ds_obs.Trace.emit cfg.trace Ds_obs.Trace.Worker_down ~ta:(-1)
               ~seq:(-1) ~arg:worker ()
           | Ds_server.Worker_pool.Worker_died { worker } ->
             Relations.record_supervision rels ~cycle ~worker ~event:"death"
               ~cls:(-1);
             Ds_obs.Trace.emit cfg.trace Ds_obs.Trace.Worker_down ~ta:(-1)
               ~seq:(-1) ~arg:worker ()
           | Ds_server.Worker_pool.Worker_stuck { worker; cls } ->
             Relations.record_supervision rels ~cycle ~worker ~event:"stuck"
               ~cls;
             Ds_obs.Trace.emit cfg.trace Ds_obs.Trace.Worker_down ~ta:(-1)
               ~seq:(-1) ~obj:cls ~arg:worker ()
           | Ds_server.Worker_pool.Class_reassigned { cls; from_; to_ } ->
             Relations.record_supervision rels ~cycle ~worker:from_
               ~event:"reassign" ~cls;
             Ds_obs.Trace.emit cfg.trace Ds_obs.Trace.Reassign ~ta:(-1)
               ~seq:(-1) ~obj:cls ~arg:to_ ()
           | Ds_server.Worker_pool.Class_hedged { cls; from_; to_ } ->
             Relations.record_supervision rels ~cycle ~worker:from_
               ~event:"hedge" ~cls;
             Ds_obs.Trace.emit cfg.trace Ds_obs.Trace.Reassign ~ta:(-1)
               ~seq:(-1) ~obj:cls ~arg:to_ ()));
  if not (Faults.is_none cfg.faults) then begin
    let f = Faults.create cfg.faults (Rng.split master) in
    sim.faults <- Some f;
    Ds_server.Worker_pool.set_fault_hook sim.pool (Faults.request_outcome f);
    if Faults.has_worker_faults cfg.faults then
      Ds_server.Worker_pool.set_worker_fault_hook sim.pool
        (Some
           (fun ~alive ->
             List.map
               (function
                 | Faults.Worker_crash { worker; after } ->
                   Ds_server.Worker_pool.Crash { worker; after }
                 | Faults.Worker_death { worker } ->
                   Ds_server.Worker_pool.Die { worker }
                 | Faults.Worker_stall { worker; delay } ->
                   Ds_server.Worker_pool.Slow { worker; delay })
               (Faults.draw_worker_faults f ~alive)))
  end;
  (* Periodic timer for time-based triggers; it re-checks pending work even
     when no client is submitting. *)
  (match Trigger.period cfg.trigger with
  | Some dt ->
    let rec tick () =
      maybe_fire sim;
      if Engine.now engine < cfg.duration then
        ignore (Engine.schedule engine ~after:dt tick)
    in
    ignore (Engine.schedule engine ~after:dt tick)
  | None ->
    (* Pure fill triggers can stall when every client is blocked with
       queue_len < k; a slow fallback timer keeps firing as long as work is
       sitting in the incoming queue or the pending table. *)
    let rec tick () =
      if
        (Scheduler.queue_length sim.sched > 0
        || Scheduler.pending_count sim.sched > 0)
        && not sim.cycle_fire_pending
      then begin
        sim.cycle_fire_pending <- true;
        ignore (Engine.schedule engine ~after:0. (fun () -> run_cycle sim))
      end;
      if Engine.now engine < cfg.duration then
        ignore (Engine.schedule engine ~after:0.05 tick)
    in
    ignore (Engine.schedule engine ~after:0.05 tick));
  Array.iter
    (fun c -> ignore (Engine.schedule engine ~after:0. (fun () -> start_txn sim c)))
    sim.clients;
  Engine.run_until engine ~until:cfg.duration;
  let makespans = Ds_server.Worker_pool.makespans sim.pool in
  Option.iter
    (fun m ->
      Ds_obs.Metrics.set_parallel m
        {
          Ds_obs.Metrics.workers = cfg.workers;
          batches = Ds_server.Worker_pool.batch_count sim.pool;
          makespan_mean = Ds_stats.Histogram.mean makespans;
          makespan_p95 = Ds_stats.Histogram.p95 makespans;
          makespan_max = Ds_stats.Histogram.max_observed makespans;
          per_worker =
            List.map
              (fun (worker, executed, busy, utilization) ->
                { Ds_obs.Metrics.worker; executed; busy; utilization })
              (Ds_server.Worker_pool.worker_stats sim.pool);
        })
    cfg.metrics;
  let checkpoints =
    sim.checkpoints_acc
    + (match sim.journal with
      | Some j -> Journal.checkpoints_written j
      | None -> 0)
  in
  Option.iter
    (fun m ->
      Ds_obs.Metrics.set_supervision m
        {
          Ds_obs.Metrics.worker_crashes =
            Ds_server.Worker_pool.worker_crashes sim.pool;
          worker_deaths = Ds_server.Worker_pool.worker_deaths sim.pool;
          stalls_detected =
            Ds_server.Worker_pool.worker_stalls_detected sim.pool;
          reassigned = Ds_server.Worker_pool.reassigned_classes sim.pool;
          hedged = Ds_server.Worker_pool.hedged_classes sim.pool;
          checkpoints;
          recoveries = sim.crashes;
          recovery_replayed = sim.recovery_replayed;
          recovery_skipped = sim.recovery_skipped;
          recovery_time = sim.recovery_time;
        })
    cfg.metrics;
  Option.iter Journal.close sim.journal;
  if auto_journal then
    Option.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) journal_path;
  let tiers =
    Hashtbl.fold
      (fun tier (hist, count) acc ->
        (tier, Ds_stats.Histogram.mean hist, Ds_stats.Histogram.p95 hist, !count)
        :: acc)
      sim.tier_latencies []
    |> List.sort (fun (a, _, _, _) (b, _, _, _) -> Sla.compare_urgency { Sla.premium with tier = a } { Sla.premium with tier = b })
  in
  ( {
      committed_txns = sim.committed_txns;
      committed_stmts = sim.committed_stmts;
      aborted_txns = sim.aborted_txns;
      cycles = sim.cycles_done;
      mean_cycle_time = Ds_stats.Summary.mean sim.cycle_times;
      p95_cycle_time = Ds_stats.Histogram.p95 sim.cycle_times_hist;
      mean_batch = Ds_stats.Summary.mean sim.batch_sizes;
      mean_pending = Ds_stats.Summary.mean sim.pending_sizes;
      scheduler_time = Ds_stats.Summary.sum sim.cycle_times;
      mean_txn_latency = Ds_stats.Histogram.mean sim.latencies;
      p95_txn_latency = Ds_stats.Histogram.p95 sim.latencies;
      latency_by_tier = tiers;
      retries = sim.retries;
      timeouts = sim.timeouts;
      injected_failures =
        (match sim.faults with Some f -> Faults.injected_failures f | None -> 0);
      injected_stalls =
        (match sim.faults with Some f -> Faults.injected_stalls f | None -> 0);
      shed_txns = sim.shed_txns;
      backpressure_waits = sim.backpressure_waits;
      dead_lettered = sim.dead_lettered;
      disconnects = sim.disconnects;
      crashes = sim.crashes;
      workers = cfg.workers;
      batches_dispatched = Ds_server.Worker_pool.batch_count sim.pool;
      mean_batch_makespan = Ds_stats.Histogram.mean makespans;
      p95_batch_makespan = Ds_stats.Histogram.p95 makespans;
      worker_crashes = Ds_server.Worker_pool.worker_crashes sim.pool;
      worker_deaths = Ds_server.Worker_pool.worker_deaths sim.pool;
      worker_stalls = Ds_server.Worker_pool.worker_stalls_detected sim.pool;
      reassigned_classes = Ds_server.Worker_pool.reassigned_classes sim.pool;
      hedged_classes = Ds_server.Worker_pool.hedged_classes sim.pool;
      checkpoints;
      recovery_replayed = sim.recovery_replayed;
      recovery_skipped = sim.recovery_skipped;
      recovery_time = sim.recovery_time;
    },
    sim.sched )

let run cfg = fst (run_full cfg)

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "committed=%d stmts=%d aborted=%d cycles=%d cycle(mean=%.2fms p95=%.2fms) \
     batch=%.1f pending=%.1f sched_time=%.2fs latency(mean=%.3fs p95=%.3fs)"
    s.committed_txns s.committed_stmts s.aborted_txns s.cycles
    (1000. *. s.mean_cycle_time)
    (1000. *. s.p95_cycle_time)
    s.mean_batch s.mean_pending s.scheduler_time s.mean_txn_latency
    s.p95_txn_latency;
  if
    s.retries > 0 || s.timeouts > 0 || s.injected_failures > 0
    || s.injected_stalls > 0 || s.shed_txns > 0 || s.backpressure_waits > 0
    || s.dead_lettered > 0 || s.disconnects > 0 || s.crashes > 0
  then
    Format.fprintf ppf
      " faults(injected=%d stalls=%d retries=%d timeouts=%d shed=%d \
       backpressure=%d dead=%d disconnects=%d crashes=%d)"
      s.injected_failures s.injected_stalls s.retries s.timeouts s.shed_txns
      s.backpressure_waits s.dead_lettered s.disconnects s.crashes;
  if s.workers > 1 then
    Format.fprintf ppf
      " parallel(workers=%d batches=%d makespan(mean=%.2fms p95=%.2fms))"
      s.workers s.batches_dispatched
      (1000. *. s.mean_batch_makespan)
      (1000. *. s.p95_batch_makespan);
  if
    s.worker_crashes > 0 || s.worker_deaths > 0 || s.worker_stalls > 0
    || s.reassigned_classes > 0 || s.hedged_classes > 0
  then
    Format.fprintf ppf
      " supervision(crashes=%d deaths=%d stuck=%d reassigned=%d hedged=%d)"
      s.worker_crashes s.worker_deaths s.worker_stalls s.reassigned_classes
      s.hedged_classes;
  if s.checkpoints > 0 || s.crashes > 0 then
    Format.fprintf ppf
      " recovery(checkpoints=%d replayed=%d skipped=%d time=%.3fms)"
      s.checkpoints s.recovery_replayed s.recovery_skipped
      (1000. *. s.recovery_time)
