(** Write-ahead journal for the scheduler state.

    In the paper's architecture the request relations live in a DBMS and are
    durable; our embedded relations are not, so a middleware crash would lose
    the pending backlog. The journal records every state transition as one
    line:

    {v
    S id,ta,intrata,op,obj,sla,arrival    request submitted (Trace format)
    Q ta intrata                          request qualified -> history
    A ta                                  transaction aborted by the scheduler
    D id,ta,intrata,op,obj,sla,arrival    request dead-lettered (poison)
    P                                     history pruned
    v}

    Recovery replays a journal — possibly truncated mid-write by a crash —
    into a fresh relation set: submitted-but-unqualified requests are pending
    again, qualified ones are back in history, and a trailing partial line is
    ignored. The replay is protocol-independent: scheduling decisions are
    facts in the log, not re-derived. *)

open Ds_model

type t

(** [open_ path] appends to [path] (created if missing). With [~sync:true],
    every {!flush} additionally calls [Unix.fsync], so a process kill cannot
    lose a cycle the scheduler already acknowledged. *)
val open_ : ?sync:bool -> string -> t

val close : t -> unit
val log_submit : t -> Request.t -> unit
val log_qualified : t -> (int * int) list -> unit
val log_abort : t -> int -> unit

(** Records a dead-lettered (poison) request so recovery keeps it out of
    pending and in the dead relation. *)
val log_dead : t -> Request.t -> unit

val log_prune : t -> unit

(** Flushes buffered entries to the OS (called by the scheduler at the end of
    every cycle); fsyncs too when the journal was opened with [~sync:true]. *)
val flush : t -> unit

(** Bytes known durable — the journal size as of the last {!flush}. Used by
    the kill-point recovery property to enumerate crash offsets. *)
val size : t -> int

(** Simulates a middleware crash: closes the channel and truncates the file
    back to the last flushed position, discarding entries a real crash would
    have lost from the channel buffer. The journal is unusable afterwards;
    recover with {!recover}/{!restore} and a fresh {!open_}. *)
val crash : t -> unit

type recovered = {
  pending : Request.t list;  (** submitted, not yet qualified, not aborted *)
  history : Request.t list;  (** qualified, in qualification order *)
  aborted : int list;  (** transactions aborted by the middleware *)
  dead : Request.t list;  (** dead-lettered (poison) requests *)
  replayed : int;  (** journal lines applied *)
}

(** Replays a journal file. Unparseable trailing data is tolerated (torn
    write); unparseable data in the middle raises [Failure]. *)
val recover : string -> recovered

(** Rebuilds a relation set from a recovery result: pending requests are
    reinserted into [requests]; the history is restored in order, with abort
    markers for aborted transactions; dead-lettered requests go to the dead
    relation. With [~rte:true] the recovered history is also replayed into
    [rte], so the execution log stays continuous across a mid-run crash
    (used by the live-recovery path in {!Middleware}). *)
val restore : ?rte:bool -> recovered -> Relations.t -> unit
