(** Write-ahead journal for the scheduler state.

    In the paper's architecture the request relations live in a DBMS and are
    durable; our embedded relations are not, so a middleware crash would lose
    the pending backlog. The journal records every state transition as one
    line:

    {v
    S id,ta,intrata,op,obj,sla,arrival    request submitted (Trace format)
    Q ta intrata [gseq]                   request qualified -> history
    A ta                                  transaction aborted by the scheduler
    D id,ta,intrata,op,obj,sla,arrival    request dead-lettered (poison)
    P                                     history pruned
    E epoch                               promotion epoch (failover fencing)
    H cycle hash                          state hash (replication divergence)
    v}

    The optional third [Q] field is the {e global admission sequence}
    (gseq), written only by sharded runs ({!log_qualified_stamped}): each
    scheduler lane journals into its own segment, and the gseq is the merge
    key that lets {!recover_dir} reassemble one continuous rte across
    segments. Unsharded journals keep the 2-field record byte-for-byte.

    Every record is framed as [!crc32 payload] (8 lowercase hex digits), so
    recovery can tell a torn or corrupted record from a valid one instead of
    trusting whatever parses. Unframed records written by older journals are
    still readable.

    Periodic {e checkpoints} snapshot the journal's logical state as a block
    of framed lines ([C BEGIN cycle lines] / [c P|H|G|A|D entry]* /
    [C END n] — [c G gseq request] is a history entry carrying its admission
    stamp),
    where [lines] counts the journal lines preceding the block. Recovery
    seeks backwards for the last complete, checksum-valid block, reads
    {e only} the tail from that point, loads the snapshot directly and
    replays the suffix — recovery work is proportional to live state plus
    the tail written since the last checkpoint, not to journal length.
    Blocks written by older journals (no line count) are still readable via
    a full-file fallback.

    Recovery replays a journal — possibly truncated mid-write by a crash —
    into a fresh relation set: submitted-but-unqualified requests are pending
    again, qualified ones are back in history. A checksum-invalid tail is
    dropped (and physically truncated with [~repair:true]); a checksum
    mismatch {e followed by valid records} is mid-file rot and raises
    [Failure]. The replay is protocol-independent: scheduling decisions are
    facts in the log, not re-derived. *)

open Ds_model

type t

type recovered = {
  pending : Request.t list;  (** submitted, not yet qualified, not aborted *)
  history : Request.t list;  (** qualified, in qualification order *)
  history_stamped : (Request.t * int option) list;
      (** [history] paired with each entry's global admission sequence when
          the journal recorded one ([None] for unsharded journals) *)
  aborted : int list;  (** transactions aborted by the middleware *)
  dead : Request.t list;  (** dead-lettered (poison) requests *)
  replayed : int;  (** journal lines applied (suffix only when a checkpoint was used) *)
  checkpoint_cycle : int option;
      (** watermark of the checkpoint the recovery started from, if any *)
  skipped : int;  (** journal lines before the checkpoint, not replayed *)
  corrupt_dropped : int;  (** torn/corrupt tail lines dropped *)
  valid_bytes : int;  (** length of the trusted prefix, in bytes *)
  epoch : int;
      (** highest promotion epoch replayed (['E'] records); [0] for a
          journal that never went through a failover *)
}

(** [open_ path] appends to [path] (created if missing). With [~sync:true],
    every {!flush} additionally calls [Unix.fsync], so a process kill cannot
    lose a cycle the scheduler already acknowledged.

    The writer mirrors the journal's logical state so {!checkpoint} can
    snapshot it. When reopening an existing journal after a recovery, pass
    the {!recover} result as [~state] to seed that mirror — a checkpoint
    written after a blind reopen would otherwise snapshot an empty state. *)
val open_ : ?sync:bool -> ?state:recovered -> string -> t

val close : t -> unit
val log_submit : t -> Request.t -> unit
val log_qualified : t -> (int * int) list -> unit

(** Sharded variant of {!log_qualified}: each key carries its global
    admission sequence number, persisted as a 3-field [Q] record. The gseq
    is the cross-segment merge key for {!recover_dir}. *)
val log_qualified_stamped : t -> ((int * int) * int) list -> unit

val log_abort : t -> int -> unit

(** Records a dead-lettered (poison) request so recovery keeps it out of
    pending and in the dead relation. *)
val log_dead : t -> Request.t -> unit

(** Records a history prune. The writer's state mirror drops finished
    transactions (terminal op in history, abort markers included) exactly
    like [Relations.prune_history], so later checkpoints snapshot the
    {e live} relation state — bounded by the active-transaction count — not
    the full log. Replaying the ['P'] record itself is a no-op: a
    checkpoint-free replay keeps the complete history so a restored [rte]
    log spans the whole run. *)
val log_prune : t -> unit

(** [checkpoint t ~cycle] writes a snapshot block of the journal's current
    logical state (pending, history, aborts, dead letters) with [cycle] as
    its watermark. Recovery replays only what follows the last complete
    block. The caller is responsible for {!flush}ing. *)
val checkpoint : t -> cycle:int -> unit

(** Snapshot blocks written through this handle. *)
val checkpoints_written : t -> int

(** {2 Replication hooks}

    A replication session taps the primary's journal writer with
    {!set_sink} and applies the streamed records on the standby side with
    {!append_raw}; {!state_hash} + hash-stamped checkpoints
    ({!set_hash_checkpoints}) give both ends a cheap divergence witness,
    and ['E'] epoch records ({!log_epoch}) fence stale-primary writes. *)

(** [set_sink t f] installs a replication tap: [f lsn payload] fires for
    every record written through [t], where [lsn] is the record's 1-based
    line number in the file. *)
val set_sink : t -> (int -> string -> unit) -> unit

val clear_sink : t -> unit

(** Enables the ['H cycle hash'] record after each checkpoint block: the
    CRC32 of the writer mirror's canonical serialization. Off by default so
    unreplicated journals stay byte-identical to previous versions
    (replaying ['H'] is always a no-op). *)
val set_hash_checkpoints : t -> bool -> unit

(** Records written through this handle so far (the next record's LSN minus
    one). *)
val lines_written : t -> int

(** CRC32 over the writer mirror's canonical serialization — equal on
    primary and standby iff their replayed states agree. *)
val state_hash : t -> int

(** [append_raw t payload] applies one replicated record to the writer
    mirror with {e writer} semantics (['P'] prunes the mirror exactly like
    {!log_prune} on the primary did) and appends the identical framed line,
    so the standby file stays a byte-prefix of the primary's.
    @raise Failure on a malformed record or a fenced stale epoch. *)
val append_raw : t -> string -> unit

(** [log_epoch t e] stamps promotion epoch [e] (an ['E'] record). Replay
    fences: an ['E'] record with a lower epoch than the replay state already
    carries raises [Failure] — a stale primary from a fenced old epoch
    cannot sneak its writes past a promotion. *)
val log_epoch : t -> int -> unit

(** The writer mirror's current promotion epoch. *)
val writer_epoch : t -> int

(** Flushes buffered entries to the OS (called by the scheduler at the end of
    every cycle); fsyncs too when the journal was opened with [~sync:true]. *)
val flush : t -> unit

(** Bytes known durable — the journal size as of the last {!flush}. Used by
    the kill-point recovery property to enumerate crash offsets. *)
val size : t -> int

(** Simulates a middleware crash: closes the channel and truncates the file
    back to the last flushed position, discarding entries a real crash would
    have lost from the channel buffer. The journal is unusable afterwards;
    recover with {!recover}/{!restore} and a fresh {!open_}. *)
val crash : t -> unit

(** Replays a journal file, starting from the last complete checkpoint when
    one exists. A checksum-invalid or unparseable tail is dropped and
    reported in [corrupt_dropped]/[valid_bytes]; with [~repair:true] the
    file is also truncated to the trusted prefix so a subsequent append
    cannot bury garbage between valid records. Corruption in the {e middle}
    of the file (a bad record with checksum-valid records after it, or
    unparseable legacy data before the end) raises [Failure]. *)
val recover : ?repair:bool -> string -> recovered

(** {2 Segment directories (sharded journals)}

    A sharded run ([--shards S], S > 1) journals into a {e directory} of
    per-lane segment files instead of one flat file:

    {v
    dir/MANIFEST           "dsched-journal-segments 1" + "shards S"
    dir/shard-<i>.journal  lane i's records, i in 0..S-1
    dir/global.journal     the cross-shard (global) lane's records
    v}

    Each segment is an ordinary journal whose [Q] records carry the global
    admission sequence, so the per-segment histories can be merged back
    into the one continuous rte the run actually produced. *)

(** [init_segment_dir dir ~shards] creates [dir] (if missing) and its
    manifest, returning the lane-ordered segment paths: shards [0..S-1]
    followed by the global lane.
    @raise Invalid_argument for [shards < 2]. *)
val init_segment_dir : string -> shards:int -> string list

(** True iff [path] is a directory containing a segment manifest — how the
    CLI and recovery tell a sharded journal from a flat file. *)
val is_segment_dir : string -> bool

(** Lane-ordered segment paths per the directory's manifest.
    @raise Failure on a missing or malformed manifest. *)
val segment_paths : string -> string list

(** Recovers every segment in the directory and merges the results into one
    logical journal: histories interleave by gseq (stable — unstamped
    legacy entries sort last in lane order), pending/aborted/dead
    concatenate in lane order, counters sum, and [checkpoint_cycle] is the
    max across segments. Missing segment files recover as empty (a lane
    that never journaled anything). [~repair] is applied per segment, so a
    torn tail in one segment never blocks recovery of its siblings; a
    mid-file corruption [Failure] is prefixed with the segment basename. *)
val recover_dir : ?repair:bool -> string -> recovered

(** Per-segment recovery results in lane order, keyed by segment basename
    ([shard-<i>.journal], [global.journal]) — the per-segment truncation
    counts behind [recover --repair] reporting. Corruption failures are
    prefixed with the segment basename. *)
val recover_segments : ?repair:bool -> string -> (string * recovered) list

(** Rebuilds a relation set from a recovery result: pending requests are
    reinserted into [requests]; the history is restored in order, with abort
    markers for aborted transactions; dead-lettered requests go to the dead
    relation. With [~rte:true] the recovered history is also replayed into
    [rte], so the execution log stays continuous across a mid-run crash
    (used by the live-recovery path in {!Middleware}). *)
val restore : ?rte:bool -> recovered -> Relations.t -> unit
