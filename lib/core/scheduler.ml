open Ds_model

type phase_times = { drain_insert : float; query : float; move : float }

let total_time t = t.drain_insert +. t.query +. t.move

type cycle_stats = {
  drained : int;
  pending_before : int;
  history_before : int;
  qualified : int;
  times : phase_times;
  index_time : float;
}

type t = {
  rels : Relations.t;
  proto : Protocol.t;
  qualify : unit -> (int * int) list;
  queue : Request.t Queue.t;
  prune : bool;
  journal : Journal.t option;
  checkpoint_every : int option;
  trace : Ds_obs.Trace.t option;
  stamp : (Request.t -> int) option;
      (* sharded runs: assigns each qualified request its global admission
         sequence number at cycle time; journals the 3-field Q record *)
  terminated : (int, unit) Hashtbl.t;
      (* transactions that already got their terminal trace event. A
         dead-letter is followed by an abort_txn, and a starved (aborted)
         transaction can still be dead-lettered when its in-flight retry
         exhausts; either way only the first terminal is recorded. *)
  mutable abort_seq : int;
  mutable cycles : int;
  mutable cum : phase_times;
}

let create ?(extended = false) ?(prune_history_each_cycle = true) ?journal
    ?checkpoint_every ?trace ?stamp proto =
  (match checkpoint_every with
  | Some n when n <= 0 ->
    invalid_arg "Scheduler.create: checkpoint_every must be positive"
  | _ -> ());
  let rels = Relations.create ~extended () in
  {
    rels;
    proto;
    qualify = proto.Protocol.prepare rels;
    queue = Queue.create ();
    prune = prune_history_each_cycle;
    journal;
    checkpoint_every;
    trace;
    stamp;
    terminated = Hashtbl.create 16;
    abort_seq = 0;
    cycles = 0;
    cum = { drain_insert = 0.; query = 0.; move = 0. };
  }

let relations t = t.rels

let protocol t = t.proto

let submit t r =
  Option.iter (fun j -> Journal.log_submit j r) t.journal;
  Ds_obs.Trace.emit_req t.trace Ds_obs.Trace.Enqueued r;
  Queue.push r t.queue

let queue_length t = Queue.length t.queue

let submit_bounded t ~capacity r =
  if capacity <= 0 then
    invalid_arg "Scheduler.submit_bounded: capacity must be positive";
  if Queue.length t.queue < capacity then begin
    submit t r;
    `Accepted
  end
  else begin
    let items = ref [] in
    while not (Queue.is_empty t.queue) do
      items := Queue.pop t.queue :: !items
    done;
    let items = List.rev !items in
    (* Least urgent queued request, preferring the most recently queued on
       tier ties (drop from the tail of the lowest tier). *)
    let victim =
      List.fold_left
        (fun worst (q : Request.t) ->
          match worst with
          | None -> Some q
          | Some (w : Request.t) ->
            if Sla.compare_urgency q.Request.sla w.Request.sla >= 0 then Some q
            else worst)
        None items
    in
    match victim with
    | Some v when Sla.compare_urgency r.Request.sla v.Request.sla < 0 ->
      List.iter (fun q -> if not (q == v) then Queue.push q t.queue) items;
      submit t r;
      `Accepted_shed v
    | _ ->
      List.iter (fun q -> Queue.push q t.queue) items;
      `Rejected
  end

let dead_letter t r =
  Option.iter
    (fun j ->
      Journal.log_dead j r;
      Journal.flush j)
    t.journal;
  if not (Hashtbl.mem t.terminated r.Request.ta) then begin
    Hashtbl.replace t.terminated r.Request.ta ();
    Ds_obs.Trace.emit_req t.trace Ds_obs.Trace.Dead_letter r
  end;
  (* Normally the request already left [requests] when it qualified; the
     delete covers dead-lettering straight out of pending. *)
  let ta, intrata = Request.key r in
  ignore
    (Ds_relal.Table.delete_by_key t.rels.Relations.requests [ 1 ]
       [ Ds_relal.Value.Int ta ]
       (fun row ->
         match row.(2) with
         | Ds_relal.Value.Int intrata' -> intrata' = intrata
         | _ -> false));
  Relations.insert_dead t.rels r

let pending_count t = Relations.pending_count t.rels

let now () = Unix.gettimeofday ()

let drain t =
  let drained = ref [] in
  while not (Queue.is_empty t.queue) do
    drained := Queue.pop t.queue :: !drained
  done;
  List.rev !drained

(* End-of-cycle snapshot: every [checkpoint_every] cycles the journal writes
   its logical state as a checkpoint block, so recovery replays only the
   suffix written since. The snapshot is also a supervision fact and a trace
   event — checkpointing is observable like every other decision. *)
let maybe_checkpoint t j =
  match t.checkpoint_every with
  | Some n when t.cycles mod n = 0 ->
    Journal.checkpoint j ~cycle:t.cycles;
    Journal.flush j;
    Relations.record_supervision t.rels ~cycle:t.cycles ~worker:(-1)
      ~event:"checkpoint" ~cls:(-1);
    Ds_obs.Trace.emit t.trace Ds_obs.Trace.Checkpoint ~ta:(-1) ~seq:(-1)
      ~arg:t.cycles ()
  | _ -> ()

(* Stamps are drawn in admission order whether or not a journal is attached,
   so a sharded run's merged rte order is well-defined even unjournaled. *)
let stamp_batch t reqs =
  Option.map (fun f -> List.map (fun r -> (Request.key r, f r)) reqs) t.stamp

let journal_qualified j ~stamped reqs =
  match stamped with
  | Some entries -> Journal.log_qualified_stamped j entries
  | None -> Journal.log_qualified j (List.map Request.key reqs)

let cycle ?(passthrough = false) t =
  t.cycles <- t.cycles + 1;
  if passthrough then begin
    (* Non-scheduling mode: forward without consulting the relations. *)
    let reqs = drain t in
    List.iter
      (fun r ->
        Ds_obs.Trace.emit_req t.trace Ds_obs.Trace.Drained r;
        Ds_obs.Trace.emit_req t.trace Ds_obs.Trace.Sched_admit r)
      reqs;
    let stamped = stamp_batch t reqs in
    Option.iter
      (fun j ->
        journal_qualified j ~stamped reqs;
        Journal.flush j;
        maybe_checkpoint t j)
      t.journal;
    let stats =
      {
        drained = List.length reqs;
        pending_before = Relations.pending_count t.rels;
        history_before = Relations.history_count t.rels;
        qualified = List.length reqs;
        times = { drain_insert = 0.; query = 0.; move = 0. };
        index_time = 0.;
      }
    in
    (reqs, stats)
  end
  else begin
    let pending_before = Relations.pending_count t.rels in
    let history_before = Relations.history_count t.rels in
    let maint0 = Ds_relal.Table.maintenance_time () in
    let t0 = now () in
    let incoming = drain t in
    List.iter
      (fun r -> Ds_obs.Trace.emit_req t.trace Ds_obs.Trace.Drained r)
      incoming;
    Relations.insert_pending_batch t.rels incoming;
    let t1 = now () in
    let keys, query_dt =
      Ds_relal.Profile.timed "protocol-query" t.qualify
    in
    let t2 = now () in
    let qualified = Relations.move_to_history t.rels keys in
    if t.prune then ignore (Relations.prune_history t.rels);
    List.iter
      (fun r -> Ds_obs.Trace.emit_req t.trace Ds_obs.Trace.Sched_admit r)
      qualified;
    if Ds_obs.Trace.is_on t.trace then begin
      (* Deferrals, with the blocking conflict: anything still pending lost
         to some conflicting request of an active transaction in history. *)
      let active = Relations.history_requests t.rels in
      List.iter
        (fun (r : Request.t) ->
          let blocker =
            List.find_opt (fun h -> Request.conflicts r h) active
          in
          Ds_obs.Trace.emit_req t.trace
            ?arg:(Option.map (fun (h : Request.t) -> h.Request.ta) blocker)
            Ds_obs.Trace.Sched_defer r)
        (Relations.pending t.rels)
    end;
    let stamped = stamp_batch t qualified in
    Option.iter
      (fun j ->
        journal_qualified j ~stamped qualified;
        if t.prune then Journal.log_prune j;
        Journal.flush j;
        maybe_checkpoint t j)
      t.journal;
    let t3 = now () in
    let times = { drain_insert = t1 -. t0; query = query_dt; move = t3 -. t2 } in
    t.cum <-
      {
        drain_insert = t.cum.drain_insert +. times.drain_insert;
        query = t.cum.query +. times.query;
        move = t.cum.move +. times.move;
      };
    let stats =
      {
        drained = List.length incoming;
        pending_before;
        history_before;
        qualified = List.length qualified;
        times;
        index_time = Ds_relal.Table.maintenance_time () -. maint0;
      }
    in
    (qualified, stats)
  end

let abort_txn t ta =
  Option.iter
    (fun j ->
      Journal.log_abort j ta;
      Journal.flush j)
    t.journal;
  if not (Hashtbl.mem t.terminated ta) then begin
    Hashtbl.replace t.terminated ta ();
    Ds_obs.Trace.emit_txn t.trace Ds_obs.Trace.Abort ~ta
  end;
  let dropped =
    Ds_relal.Table.delete_by_key t.rels.Relations.requests [ 1 ]
      [ Ds_relal.Value.Int ta ]
      (fun _ -> true)
  in
  (* Record the abort so the protocol sees the transaction's locks as
     released. The marker's reserved sentinel (negative INTRATA/id) cannot
     collide with any real request, whatever ids the workload uses. *)
  t.abort_seq <- t.abort_seq + 1;
  let marker = Request.abort_marker ~ta ~seq:t.abort_seq () in
  assert (Request.is_abort_marker marker);
  Ds_relal.Table.insert t.rels.Relations.history
    (Relations.row_of_request ~extended:t.rels.Relations.extended marker);
  dropped

let cycles_run t = t.cycles

let cumulative_times t = t.cum
